// Combustion-corridor reproduces the April 2000 "first light" campaign end to
// end with real components: a DPSS cluster (master + block servers) is
// started in-process, synthetic combustion timesteps are staged into the
// cache, the WAN between the cache and the back end is emulated by shaping
// the block servers' responses to the NTON OC-12 rate, and the overlapped
// back end streams its slab textures to the viewer.
//
// It then runs the same campaign on the virtual-clock simulator at the
// paper's full 160 MB-per-timestep scale and prints the Figure 10 numbers.
//
//	go run ./examples/combustion-corridor
package main

import (
	"context"
	"fmt"
	"log"

	"visapult/pkg/visapult"
	"visapult/pkg/visapult/dpss"
	"visapult/pkg/visapult/netlog"
)

func main() {
	ctx := context.Background()

	// --- Part 1: a real, miniaturized corridor -----------------------------
	// Scaled-down grid so the example finishes in seconds; the data path and
	// code are identical to a full-scale run.
	const (
		nx, ny, nz = 80, 32, 32
		steps      = 3
		pes        = 4
	)

	// The WAN: all block servers sit behind one shared OC-12; a single token
	// bucket shared by every server models the bottleneck. The rate is scaled
	// with the data so the example shows WAN-bound loads without taking
	// minutes.
	wan := visapult.NTON
	wan.Bandwidth = 200e6 // a scaled-down "OC-12" for the miniature dataset
	shaper := visapult.ShaperForLink(wan)

	cluster, err := dpss.StartCluster(dpss.ClusterConfig{Servers: 4, DisksPerServer: 4, ServerShaper: shaper})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// Stage the synthetic combustion timesteps into the cache (the paper's
	// HPSS-to-DPSS migration step).
	loaderClient := cluster.NewClient()
	if _, _, err := dpss.StageCombustion(loaderClient, "combustion", nx, ny, nz, steps, dpss.DefaultBlockSize, 2000); err != nil {
		log.Fatal(err)
	}
	loaderClient.Close()
	fmt.Printf("staged %d timesteps (%s each) on a 4-server DPSS behind a shared %s link\n",
		steps, visapult.HumanBytes(int64(nx*ny*nz*4)), wan.Name)

	// The back end reads its slabs from the cache through the block-level
	// client API.
	client := cluster.NewClient()
	defer client.Close()
	src, err := visapult.NewDPSSSource(client, "combustion", nx, ny, nz, steps)
	if err != nil {
		log.Fatal(err)
	}
	defer src.Close()

	// Slabs along Z match the file's storage order, so each PE's load is one
	// contiguous block-aligned range — the access pattern the DPSS serves
	// best.
	p, err := visapult.New(
		visapult.WithSource(src),
		visapult.WithPEs(pes),
		visapult.WithMode(visapult.Overlapped),
		visapult.WithAxis(visapult.AxisZ),
		visapult.WithTransport(visapult.TransportTCP),
		visapult.WithInstrumentation(),
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := p.Run(ctx)
	if err != nil {
		log.Fatal(err)
	}
	a := netlog.Analyze(res.Events)
	load := a.SummarizePhase(netlog.BELoadStart, netlog.BELoadEnd)
	fmt.Printf("real run : %d frames on %d PEs, per-PE load mean %v, aggregate %s loaded in %v\n",
		res.Backend.Frames, pes, load.Mean.Round(1e6), visapult.HumanBytes(res.Backend.BytesIn), res.Elapsed.Round(1e6))
	fmt.Printf("           viewer received %s (%.1fx reduction)\n",
		visapult.HumanBytes(res.Backend.BytesOut), res.TrafficRatio())

	// --- Part 2: the same campaign at paper scale, on the virtual clock ----
	sim, err := visapult.FirstLightCampaign().Run(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfirst-light campaign at paper scale (virtual clock):")
	fmt.Printf("  160 MB load per timestep : %v (paper: ~3 s)\n", sim.MeanLoad().Round(1e7))
	fmt.Printf("  achieved bandwidth       : %.0f Mbps (paper: ~433 Mbps, 70%% of OC-12)\n", sim.LoadMbps())
	fmt.Printf("  render on 4 CPlant PEs   : %v (paper: 8-9 s)\n", sim.MeanRender().Round(1e8))
	fmt.Printf("  total for %d timesteps   : %v\n", sim.Campaign.Timesteps, sim.Total.Round(1e8))
}
