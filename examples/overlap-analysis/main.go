// Overlap-analysis studies the paper's central performance idea (section
// 4.3): overlapping data loading with rendering turns the per-timestep cost
// from L+R into max(L,R). The example
//
//  1. measures a real serial and a real overlapped back end on this machine,
//     with a sleep-shaped data source standing in for the WAN;
//
//  2. compares the measurement with the analytic model Ts = N(L+R),
//     To = N*max(L,R) + min(L,R);
//
//  3. sweeps the L/R ratio on the virtual-clock simulator to show where
//     overlapping pays off and where it cannot (the paper's "at one extreme
//     ... nearly twice as fast; at the other ... nearly equal").
//
//     go run ./examples/overlap-analysis
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"visapult/internal/backend"
	"visapult/internal/netsim"
	"visapult/internal/platform"
	"visapult/internal/transfer"
	"visapult/internal/volume"

	"visapult/internal/core"
)

// slowSource injects a fixed delay in front of every load, standing in for a
// bandwidth-limited WAN between the DPSS and the back end.
type slowSource struct {
	backend.DataSource
	delay time.Duration
}

func (s *slowSource) LoadRegion(t int, r volume.Region) (*volume.Volume, int64, error) {
	time.Sleep(s.delay)
	return s.DataSource.LoadRegion(t, r)
}

func main() {
	const steps = 6
	const loadDelay = 10 * time.Millisecond

	// A volume big enough that software rendering takes a comparable time to
	// the injected load delay, so L ~= R — the regime where overlap helps most.
	vols := make([]*volume.Volume, steps)
	for i := range vols {
		v := volume.MustNew(192, 192, 96)
		for z := 0; z < v.NZ; z++ {
			for y := 0; y < v.NY; y++ {
				for x := 0; x < v.NX; x++ {
					v.Set(x, y, z, float32((x+y+z+i)%97)/97)
				}
			}
		}
		vols[i] = v
	}
	mem, err := backend.NewMemorySource(vols...)
	if err != nil {
		log.Fatal(err)
	}
	src := &slowSource{DataSource: mem, delay: loadDelay}

	run := func(mode backend.Mode) backend.RunStats {
		be, err := backend.New(backend.Config{
			PEs: 1, Source: src, Mode: mode, Sinks: []backend.FrameSink{&backend.NullSink{}},
		})
		if err != nil {
			log.Fatal(err)
		}
		st, err := be.Run()
		if err != nil {
			log.Fatal(err)
		}
		return st
	}

	fmt.Printf("1. real back end on this machine (%d CPUs, sleep-shaped loads):\n", runtime.NumCPU())
	serial := run(backend.Serial)
	over := run(backend.Overlapped)
	measured := float64(serial.Elapsed) / float64(over.Elapsed)
	fmt.Printf("   serial     : %v  (mean L %v, mean R %v)\n",
		serial.Elapsed.Round(time.Millisecond), serial.MeanLoad().Round(time.Millisecond), serial.MeanRender().Round(time.Millisecond))
	fmt.Printf("   overlapped : %v\n", over.Elapsed.Round(time.Millisecond))
	fmt.Printf("   speedup    : %.2fx measured\n", measured)

	l, r := serial.MeanLoad(), serial.MeanRender()+serial.MeanSend()
	fmt.Printf("   model      : Ts=%v To=%v -> %.2fx predicted (ideal 2N/(N+1) = %.2fx)\n",
		transfer.SerialTime(steps, l, r).Round(time.Millisecond),
		transfer.OverlappedTime(steps, l, r).Round(time.Millisecond),
		transfer.Speedup(steps, l, r), transfer.IdealSpeedup(steps))
	// The paper's section 4.4.1 lesson reproduces itself on small hosts: when
	// the reader and the renderer share one CPU, the overlap benefit shrinks
	// (and load times inflate), exactly as on CPlant's single-CPU nodes.
	if runtime.NumCPU() < 2 || measured < 1.05 {
		fmt.Println("   host note  : loader and renderer are sharing CPUs here, so the measured benefit is")
		fmt.Println("                limited — the CPlant contention effect of Figure 15. The SMP-style,")
		fmt.Println("                contention-free behaviour is shown by the simulator sweep below.")
	}
	fmt.Println()

	fmt.Println("2. L/R sweep on the virtual-clock simulator (10 timesteps, 1 PE):")
	fmt.Println("   L/R    serial      overlapped  speedup  model")
	for _, ratio := range []float64{0.25, 0.5, 1, 2, 4} {
		renderSec := 10.0
		loadSec := renderSec * ratio
		plat := platform.Platform{
			Name: "sweep", Kind: platform.SMP, Nodes: 1, CPUsPerNode: 2,
			RenderSecPerMVoxel: renderSec, NIC: netsim.GigE,
		}
		mk := func(mode backend.Mode) *core.CampaignResult {
			res, err := (core.Campaign{
				Name: "sweep", Platform: plat, PEs: 1, Mode: mode, Timesteps: 10,
				FrameBytes: int64(loadSec * 100e6 / 8),
				VolumeDims: [3]int{100, 100, 100},
				DataPath:   netsim.NewPath("sweep", netsim.Link{Name: "100Mbps", Bandwidth: 100e6, MTU: 1500}),
			}).Run()
			if err != nil {
				log.Fatal(err)
			}
			return res
		}
		s, o := mk(backend.Serial), mk(backend.Overlapped)
		lDur := time.Duration(loadSec * float64(time.Second))
		rDur := time.Duration(renderSec * float64(time.Second))
		fmt.Printf("   %-5.2f  %-10v  %-10v  %.2fx    %.2fx\n",
			ratio, s.Total.Round(time.Second), o.Total.Round(time.Second),
			float64(s.Total)/float64(o.Total), transfer.Speedup(10, lDur, rDur))
	}
	fmt.Println("\n   overlap pays the most when L and R are balanced; when one side dominates,")
	fmt.Println("   the pipeline is bound by it and the two modes converge — exactly section 4.3.")
}
