// Overlap-analysis studies the paper's central performance idea (section
// 4.3): overlapping data loading with rendering turns the per-timestep cost
// from L+R into max(L,R). The example
//
//  1. measures a real serial and a real overlapped back end on this machine,
//     with a sleep-shaped data source standing in for the WAN;
//
//  2. compares the measurement with the analytic model Ts = N(L+R),
//     To = N*max(L,R) + min(L,R);
//
//  3. sweeps the L/R ratio on the virtual-clock simulator to show where
//     overlapping pays off and where it cannot (the paper's "at one extreme
//     ... nearly twice as fast; at the other ... nearly equal").
//
//     go run ./examples/overlap-analysis
package main

import (
	"context"
	"fmt"
	"log"
	"runtime"
	"time"

	"visapult/pkg/visapult"
)

// slowSource injects a fixed delay in front of every load, standing in for a
// bandwidth-limited WAN between the DPSS and the back end. Wrapping another
// Source is all it takes to plug into the pipeline.
type slowSource struct {
	visapult.Source
	delay time.Duration
}

func (s *slowSource) LoadRegion(ctx context.Context, t int, r visapult.Region) (*visapult.Volume, int64, error) {
	time.Sleep(s.delay)
	return s.Source.LoadRegion(ctx, t, r)
}

func main() {
	ctx := context.Background()
	const steps = 6
	const loadDelay = 10 * time.Millisecond

	// A volume big enough that software rendering takes a comparable time to
	// the injected load delay, so L ~= R — the regime where overlap helps most.
	vols := make([]*visapult.Volume, steps)
	for i := range vols {
		v := visapult.NewVolume(192, 192, 96)
		for z := 0; z < v.NZ; z++ {
			for y := 0; y < v.NY; y++ {
				for x := 0; x < v.NX; x++ {
					v.Set(x, y, z, float32((x+y+z+i)%97)/97)
				}
			}
		}
		vols[i] = v
	}
	mem, err := visapult.NewMemorySource(vols...)
	if err != nil {
		log.Fatal(err)
	}
	src := &slowSource{Source: mem, delay: loadDelay}

	run := func(mode visapult.Mode) visapult.RunStats {
		p, err := visapult.New(
			visapult.WithSource(src),
			visapult.WithPEs(1),
			visapult.WithMode(mode),
			visapult.WithoutViewer(), // measure only the load/render pipeline
		)
		if err != nil {
			log.Fatal(err)
		}
		res, err := p.Run(ctx)
		if err != nil {
			log.Fatal(err)
		}
		return res.Backend
	}

	fmt.Printf("1. real back end on this machine (%d CPUs, sleep-shaped loads):\n", runtime.NumCPU())
	serial := run(visapult.Serial)
	over := run(visapult.Overlapped)
	measured := float64(serial.Elapsed) / float64(over.Elapsed)
	fmt.Printf("   serial     : %v  (mean L %v, mean R %v)\n",
		serial.Elapsed.Round(time.Millisecond), serial.MeanLoad().Round(time.Millisecond), serial.MeanRender().Round(time.Millisecond))
	fmt.Printf("   overlapped : %v\n", over.Elapsed.Round(time.Millisecond))
	fmt.Printf("   speedup    : %.2fx measured\n", measured)

	l, r := serial.MeanLoad(), serial.MeanRender()+serial.MeanSend()
	fmt.Printf("   model      : Ts=%v To=%v -> %.2fx predicted (ideal 2N/(N+1) = %.2fx)\n",
		visapult.SerialTime(steps, l, r).Round(time.Millisecond),
		visapult.OverlappedTime(steps, l, r).Round(time.Millisecond),
		visapult.Speedup(steps, l, r), visapult.IdealSpeedup(steps))
	// The paper's section 4.4.1 lesson reproduces itself on small hosts: when
	// the reader and the renderer share one CPU, the overlap benefit shrinks
	// (and load times inflate), exactly as on CPlant's single-CPU nodes.
	if runtime.NumCPU() < 2 || measured < 1.05 {
		fmt.Println("   host note  : loader and renderer are sharing CPUs here, so the measured benefit is")
		fmt.Println("                limited — the CPlant contention effect of Figure 15. The SMP-style,")
		fmt.Println("                contention-free behaviour is shown by the simulator sweep below.")
	}
	fmt.Println()

	fmt.Println("2. L/R sweep on the virtual-clock simulator (10 timesteps, 1 PE):")
	fmt.Println("   L/R    serial      overlapped  speedup  model")
	for _, ratio := range []float64{0.25, 0.5, 1, 2, 4} {
		renderSec := 10.0
		loadSec := renderSec * ratio
		plat := visapult.Platform{
			Name: "sweep", Kind: visapult.SMPPlatform, Nodes: 1, CPUsPerNode: 2,
			RenderSecPerMVoxel: renderSec, NIC: visapult.GigE,
		}
		mk := func(mode visapult.Mode) *visapult.CampaignResult {
			res, err := (visapult.Campaign{
				Name: "sweep", Platform: plat, PEs: 1, Mode: mode, Timesteps: 10,
				FrameBytes: int64(loadSec * 100e6 / 8),
				VolumeDims: [3]int{100, 100, 100},
				DataPath:   visapult.NewPath("sweep", visapult.Link{Name: "100Mbps", Bandwidth: 100e6, MTU: 1500}),
			}).Run(ctx)
			if err != nil {
				log.Fatal(err)
			}
			return res
		}
		s, o := mk(visapult.Serial), mk(visapult.Overlapped)
		lDur := time.Duration(loadSec * float64(time.Second))
		rDur := time.Duration(renderSec * float64(time.Second))
		fmt.Printf("   %-5.2f  %-10v  %-10v  %.2fx    %.2fx\n",
			ratio, s.Total.Round(time.Second), o.Total.Round(time.Second),
			float64(s.Total)/float64(o.Total), visapult.Speedup(10, lDur, rDur))
	}
	fmt.Println("\n   overlap pays the most when L and R are balanced; when one side dominates,")
	fmt.Println("   the pipeline is bound by it and the two modes converge — exactly section 4.3.")
}
