// Quickstart runs the whole Visapult pipeline inside one process in a few
// seconds: synthetic combustion data is slab-decomposed across four back-end
// processing elements, each slab is software volume-rendered, the textures
// flow through the wire protocol into the viewer's scene graph, and the
// viewer composites them IBRAVR-style into a final image.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"visapult/pkg/visapult"
	"visapult/pkg/visapult/netlog"
)

func main() {
	// A reduced-resolution stand-in for the paper's 640x256x256 combustion
	// dataset (use NewPaperCombustionSource(1, ...) for the full 160
	// MB-per-timestep grid).
	src := visapult.NewCombustionSource(visapult.CombustionSpec{
		NX: 80, NY: 32, NZ: 32, Timesteps: 4, Seed: 2000,
	})

	p, err := visapult.New(
		visapult.WithSource(src),
		visapult.WithPEs(4),                           // four processing elements, like the first-light campaign
		visapult.WithMode(visapult.Overlapped),        // load timestep t+1 while rendering timestep t
		visapult.WithTransport(visapult.TransportTCP), // real sockets, one connection per PE
		visapult.WithFollowView(),                     // viewer steers the slab axis (IBRAVR axis switching)
		visapult.WithInstrumentation(),                // NetLogger events for NLV-style analysis
		visapult.WithRenderLoop(),                     // decoupled viewer render thread
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := p.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Visapult quickstart")
	fmt.Printf("  back end : %d frames x %d PEs, mean load %v, mean render %v\n",
		res.Backend.Frames, res.Backend.PEs, res.Backend.MeanLoad(), res.Backend.MeanRender())
	fmt.Printf("  traffic  : %d bytes from data source, %d bytes to viewer (%.1fx reduction)\n",
		res.Backend.BytesIn, res.Backend.BytesOut, res.TrafficRatio())
	fmt.Printf("  viewer   : %d frames assembled, scene version %d\n",
		res.Viewer.FramesCompleted, res.Viewer.SceneVersion)

	// The session captured the same event vocabulary the paper's NLV plots
	// use; summarize the per-phase timings.
	a := netlog.Analyze(res.Events)
	load := a.SummarizePhase(netlog.BELoadStart, netlog.BELoadEnd)
	render := a.SummarizePhase(netlog.BERenderStart, netlog.BERenderEnd)
	fmt.Printf("  phases   : load mean %v, render mean %v (from %d NetLogger events)\n",
		load.Mean, render.Mean, len(res.Events))

	// Write the viewer's final composited image.
	if res.FinalImage != nil {
		if err := visapult.WritePPM("quickstart.ppm", res.FinalImage); err != nil {
			log.Fatal(err)
		}
		fmt.Println("  image    : wrote quickstart.ppm")
	}
}
