// Quickstart runs the whole Visapult pipeline inside one process in a few
// seconds: synthetic combustion data is slab-decomposed across four back-end
// processing elements, each slab is software volume-rendered, the textures
// flow through the wire protocol into the viewer's scene graph, and the
// viewer composites them IBRAVR-style into a final image.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"visapult/internal/backend"
	"visapult/internal/core"
	"visapult/internal/datagen"
	"visapult/internal/netlogger"
)

func main() {
	// A reduced-resolution stand-in for the paper's 640x256x256 combustion
	// dataset (use scale 1 for the full 160 MB-per-timestep grid).
	gen := datagen.NewCombustion(datagen.CombustionConfig{
		NX: 80, NY: 32, NZ: 32, Timesteps: 4, Seed: 2000,
	})
	src := backend.NewSyntheticSource(gen)

	res, err := core.RunSession(core.SessionConfig{
		PEs:        4,                  // four processing elements, like the first-light campaign
		Mode:       backend.Overlapped, // load timestep t+1 while rendering timestep t
		Source:     src,
		Transport:  core.TransportTCP, // real sockets, one connection per PE
		FollowView: true,              // viewer steers the slab axis (IBRAVR axis switching)
		Instrument: true,              // NetLogger events for NLV-style analysis
		RenderLoop: true,              // decoupled viewer render thread
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Visapult quickstart")
	fmt.Printf("  back end : %d frames x %d PEs, mean load %v, mean render %v\n",
		res.Backend.Frames, res.Backend.PEs, res.Backend.MeanLoad(), res.Backend.MeanRender())
	fmt.Printf("  traffic  : %d bytes from data source, %d bytes to viewer (%.1fx reduction)\n",
		res.Backend.BytesIn, res.Backend.BytesOut, res.TrafficRatio())
	fmt.Printf("  viewer   : %d frames assembled, scene version %d\n",
		res.Viewer.FramesCompleted, res.Viewer.SceneVersion)

	// The session captured the same event vocabulary the paper's NLV plots
	// use; summarize the per-phase timings.
	a := netlogger.Analyze(res.Events)
	load := a.SummarizePhase(netlogger.BELoadStart, netlogger.BELoadEnd)
	render := a.SummarizePhase(netlogger.BERenderStart, netlogger.BERenderEnd)
	fmt.Printf("  phases   : load mean %v, render mean %v (from %d NetLogger events)\n",
		load.Mean, render.Mean, len(res.Events))

	// Write the viewer's final composited image.
	if res.FinalImage != nil {
		f, err := os.Create("quickstart.ppm")
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := res.FinalImage.WritePPM(f); err != nil {
			log.Fatal(err)
		}
		fmt.Println("  image    : wrote quickstart.ppm")
	}
}
