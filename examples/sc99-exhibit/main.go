// Sc99-exhibit recreates the SC99 research exhibit configuration of Figure 8:
// two datasets (cosmology and combustion) stored at different sites, two
// compute platforms running Visapult back ends, and two network paths of very
// different capacity. The example runs both corridors on the virtual-clock
// campaign simulator, prints the sustained transfer rates the paper reports
// (250 Mbps over NTON to CPlant, 150 Mbps over NTON+SciNet to the show
// floor), and renders an NLV-style lifeline plot for one of them.
//
// It also runs a small real pipeline on the cosmology dataset so both code
// paths — simulated campaigns and live sessions — appear side by side.
//
//	go run ./examples/sc99-exhibit
package main

import (
	"context"
	"fmt"
	"log"

	"visapult/pkg/visapult"
	"visapult/pkg/visapult/netlog"
)

func main() {
	ctx := context.Background()
	fmt.Println("SC99 research exhibit (Figure 8)")

	// --- The two SC99 corridors at paper scale, on the virtual clock -------
	corridors := []visapult.Campaign{
		visapult.SC99CPlantCampaign(),    // LBL DPSS -> SNL CPlant over NTON
		visapult.SC99ShowFloorCampaign(), // LBL DPSS -> LBL booth cluster over NTON + SciNet
	}
	paper := []string{"250 Mbps", "150 Mbps"}
	var showFloor *visapult.CampaignResult
	for i, c := range corridors {
		res, err := c.Run(ctx)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-55s %4.0f Mbps sustained (paper: %s)\n", c.Name, res.LoadMbps(), paper[i])
		showFloor = res
	}

	// An excerpt of the NLV lifeline for the show-floor corridor, the moral
	// equivalent of the paper's profile figures.
	fmt.Println("\nNLV lifelines for the show-floor corridor (first frames):")
	plot := netlog.RenderNLV(showFloor.Events, netlog.NLVOptions{
		Width:    96,
		TagOrder: append(append([]string{}, netlog.BackEndTags...), netlog.ViewerTags...),
	})
	fmt.Println(plot)

	// --- A live miniature of the cosmology corridor ------------------------
	// Cosmology data volume-rendered with the cool transfer function, striped
	// sockets between back end and viewer (the SC99 viewer drove an
	// ImmersaDesk and a tiled display; here the output is a PPM-sized image).
	p, err := visapult.New(
		visapult.WithSource(visapult.NewCosmologySource(visapult.CosmologySpec{
			NX: 64, NY: 64, NZ: 64, Timesteps: 2, Seed: 99,
		})),
		visapult.WithPEs(8),
		visapult.WithMode(visapult.Overlapped),
		visapult.WithTransferFunction(visapult.CosmologyTF()),
		visapult.WithTransport(visapult.TransportStriped),
		visapult.WithStripeLanes(3),
		visapult.WithRenderLoop(),
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := p.Run(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("live cosmology run: %d PEs over striped sockets, %d frames assembled, %.1fx traffic reduction\n",
		res.Backend.PEs, res.Viewer.FramesCompleted, res.TrafficRatio())
}
