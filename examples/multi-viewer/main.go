// Multi-viewer reproduces the paper's marquee deployment shape in one
// process: a single Visapult back end renders each frame once and multicasts
// the per-slab textures to three concurrently attached viewers — the SC 2000
// exhibit drove an ImmersaDesk and a tiled display from one back end this
// way. Each viewer owns a bounded send queue, so a slow or dead display
// loses frames instead of stalling the render loop or the other viewers.
//
//	go run ./examples/multi-viewer
package main

import (
	"context"
	"fmt"
	"log"

	"visapult/pkg/visapult"
)

func main() {
	src := visapult.NewCombustionSource(visapult.CombustionSpec{
		NX: 80, NY: 32, NZ: 32, Timesteps: 4, Seed: 2000,
	})

	p, err := visapult.New(
		visapult.WithSource(src),
		visapult.WithPEs(4),
		visapult.WithMode(visapult.Overlapped),
		visapult.WithTransport(visapult.TransportTCP), // per-viewer sockets, one connection per PE
		visapult.WithViewers(3),                       // the fan-out: one render, three viewers
		visapult.WithViewerQueue(16),                  // per-viewer send queue bound in frames
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := p.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("one back end: %d PEs, %d frames, %s in -> %s out (reduction %.0fx)\n",
		res.Backend.PEs, res.Backend.Frames,
		visapult.HumanBytes(res.Backend.BytesIn), visapult.HumanBytes(res.Backend.BytesOut),
		res.TrafficRatio())
	for _, vr := range res.Viewers {
		fmt.Printf("viewer %-9s frames sent %2d  dropped %d  %s received  %d frames assembled\n",
			vr.ID+":", vr.Delivery.FramesSent, vr.Delivery.FramesDropped,
			visapult.HumanBytes(vr.Stats.BytesReceived), vr.Stats.FramesCompleted)
	}
}
