package visapult

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"visapult/internal/backend/framecache"
	"visapult/internal/wire"
)

// The multi-backend scheduler: Manager places spec-described runs onto a
// registry of remote visapult-backend workers (the paper's distributed
// back-end pool) instead of executing them in-process. Placement picks the
// least-loaded live worker with a free capacity slot; a run whose worker dies
// or errors is re-queued and retried on another worker up to a bounded
// attempt count, with the full placement history recorded in
// RunStatus.Attempts. With no live workers the scheduler falls back to local
// in-process execution, so a worker-less Manager behaves exactly as before.

// Scheduler error conditions.
var (
	// ErrUnknownWorker: the worker ID does not exist.
	ErrUnknownWorker = errors.New("visapult: unknown worker")
	// ErrWorkerExists: RegisterWorker was called with an address already
	// registered and not dead.
	ErrWorkerExists = errors.New("visapult: worker already registered")
)

// defaultMaxAttempts bounds how many placements one run may consume before
// it is failed for good.
const defaultMaxAttempts = 3

// WorkerState is the lifecycle state of a registered worker.
type WorkerState int

const (
	// WorkerLive: healthy, eligible for placements.
	WorkerLive WorkerState = iota
	// WorkerDraining: finishes its active runs but receives no new ones.
	WorkerDraining
	// WorkerDead: a dispatch hit a transport-level failure; the worker
	// receives no placements until re-registered.
	WorkerDead
)

// String implements fmt.Stringer.
func (s WorkerState) String() string {
	switch s {
	case WorkerLive:
		return "live"
	case WorkerDraining:
		return "draining"
	case WorkerDead:
		return "dead"
	default:
		return fmt.Sprintf("workerstate(%d)", int(s))
	}
}

// WorkerStatus is a point-in-time snapshot of one registered worker.
type WorkerStatus struct {
	ID       string
	Addr     string
	Capacity int
	// Active is the number of runs currently placed on the worker.
	Active     int
	State      WorkerState
	Registered time.Time
	// Failures counts transport-level dispatch failures; LastError is the
	// most recent one.
	Failures  int
	LastError string
	// Wire is the dispatch protocol version negotiated at registration:
	// min(the worker's advertised maximum, the manager's cap).
	Wire int
}

// poolWorker is the pool-side record of one worker.
type poolWorker struct {
	id         string
	addr       string
	capacity   int
	active     int
	state      WorkerState
	registered time.Time
	failures   int
	lastErr    string
	wire       int
}

func (w *poolWorker) status() WorkerStatus {
	return WorkerStatus{
		ID: w.id, Addr: w.addr, Capacity: w.capacity, Active: w.active,
		State: w.state, Registered: w.registered,
		Failures: w.failures, LastError: w.lastErr,
		Wire: w.wire,
	}
}

// workerPool is the registry the placement loop draws from. All methods are
// safe for concurrent use; waiters blocked in acquire are woken whenever
// capacity may have appeared (registration, slot release, death, removal).
type workerPool struct {
	mu      sync.Mutex
	workers map[string]*poolWorker // guarded by mu
	// order preserves registration order for deterministic tie-breaks.
	// guarded by mu
	order  []string
	nextID int // guarded by mu
	// wait is the broadcast channel capacity waiters block on; replaced
	// (closed and remade) on every wake.
	// guarded by mu
	wait chan struct{}
}

func newWorkerPool() *workerPool {
	return &workerPool{
		workers: make(map[string]*poolWorker),
		nextID:  1,
		wait:    make(chan struct{}),
	}
}

// notifyLocked wakes every acquire waiter to re-evaluate the pool.
func (p *workerPool) notifyLocked() {
	close(p.wait)
	p.wait = make(chan struct{})
}

// add registers a worker and wakes waiters; duplicate live addresses are
// rejected so one flaky operator script cannot double-book a worker.
func (p *workerPool) add(addr string, capacity, wireVer int) (WorkerStatus, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, id := range p.order {
		if w := p.workers[id]; w.addr == addr && w.state != WorkerDead {
			return WorkerStatus{}, fmt.Errorf("worker %s (%s): %w", w.id, addr, ErrWorkerExists)
		}
	}
	// Re-registering is the documented recovery path for a dead worker:
	// prune its old record so a flapping worker does not grow the registry
	// without bound.
	for i := 0; i < len(p.order); {
		w := p.workers[p.order[i]]
		if w.addr == addr && w.state == WorkerDead {
			delete(p.workers, w.id)
			p.order = append(p.order[:i], p.order[i+1:]...)
			continue
		}
		i++
	}
	w := &poolWorker{
		id:         fmt.Sprintf("w%d", p.nextID),
		addr:       addr,
		capacity:   capacity,
		state:      WorkerLive,
		registered: time.Now(),
		wire:       wireVer,
	}
	p.nextID++
	p.workers[w.id] = w
	p.order = append(p.order, w.id)
	p.notifyLocked()
	return w.status(), nil
}

// list snapshots every worker in registration order.
func (p *workerPool) list() []WorkerStatus {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]WorkerStatus, 0, len(p.order))
	for _, id := range p.order {
		out = append(out, p.workers[id].status())
	}
	return out
}

// drain stops new placements on the worker; its active runs finish.
func (p *workerPool) drain(id string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	w, ok := p.workers[id]
	if !ok {
		return fmt.Errorf("worker %q: %w", id, ErrUnknownWorker)
	}
	if w.state == WorkerLive {
		w.state = WorkerDraining
		// Wake queued acquirers: with the last live worker gone they must
		// re-evaluate and take the local-fallback path now, not whenever the
		// next unrelated pool event fires.
		p.notifyLocked()
	}
	return nil
}

// remove forgets the worker. Dispatches already in flight on it complete (or
// fail) over their own connections.
func (p *workerPool) remove(id string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.workers[id]; !ok {
		return fmt.Errorf("worker %q: %w", id, ErrUnknownWorker)
	}
	delete(p.workers, id)
	for i, oid := range p.order {
		if oid == id {
			p.order = append(p.order[:i], p.order[i+1:]...)
			break
		}
	}
	p.notifyLocked()
	return nil
}

// markDead records a transport-level dispatch failure: the worker stops
// receiving placements until it is re-registered.
func (p *workerPool) markDead(w *poolWorker, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	w.state = WorkerDead
	w.failures++
	if err != nil {
		w.lastErr = err.Error()
	}
	p.notifyLocked()
}

// release returns a worker's capacity slot and wakes waiters.
func (p *workerPool) release(w *poolWorker) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if w.active > 0 {
		w.active--
	}
	p.notifyLocked()
}

// clampCapacity lowers the pool's capacity belief for a worker that just
// rejected a dispatch as busy: the worker's own gate is the ground truth, so
// the registered capacity overstated it (or an external party shares the
// worker). Capacity never drops below one, so the worker stays placeable
// once its real slots free up.
func (p *workerPool) clampCapacity(w *poolWorker) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if c := max(1, w.active); c < w.capacity {
		w.capacity = c
	}
}

// pickLocked chooses the least-loaded live worker with a free slot — lowest
// active/capacity ratio, ties broken by registration order — or nil. The
// avoid worker (the one that just failed the caller's run) is chosen only
// when it is the sole candidate, so a retry lands elsewhere whenever
// anywhere else exists.
func (p *workerPool) pickLocked(avoid string) *poolWorker {
	var best, avoided *poolWorker
	for _, id := range p.order {
		w := p.workers[id]
		if w.state != WorkerLive || w.active >= w.capacity {
			continue
		}
		if w.id == avoid {
			avoided = w
			continue
		}
		// w is less loaded than best iff w.active/w.capacity <
		// best.active/best.capacity, cross-multiplied to stay integral.
		if best == nil || w.active*best.capacity < best.active*w.capacity {
			best = w
		}
	}
	if best == nil {
		return avoided
	}
	return best
}

// liveLocked counts workers eligible for placements now or soon.
func (p *workerPool) liveLocked() int {
	n := 0
	for _, w := range p.workers {
		if w.state == WorkerLive {
			n++
		}
	}
	return n
}

// acquire blocks until it can claim a slot on the least-loaded live worker,
// preferring any worker other than avoid (pass "" for no preference). It
// returns (nil, nil) when no live workers exist at all — the caller's cue
// to fall back to local execution — and ctx's error when cancelled while
// queued. Live-but-full pools make it wait: exhausted capacity means the run
// queues for a slot rather than silently spilling onto the local machine.
func (p *workerPool) acquire(ctx context.Context, avoid string) (*poolWorker, error) {
	for {
		p.mu.Lock()
		if w := p.pickLocked(avoid); w != nil {
			w.active++
			p.mu.Unlock()
			return w, nil
		}
		if p.liveLocked() == 0 {
			p.mu.Unlock()
			return nil, nil
		}
		wait := p.wait
		p.mu.Unlock()
		select {
		case <-wait:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// RegisterWorker adds a remote visapult-backend worker (started with
// -serve-control) to the manager's pool after verifying it answers the
// control protocol. capacity <= 0 adopts the capacity the worker advertises.
// The returned status carries the assigned worker ID used by DrainWorker and
// RemoveWorker.
func (m *Manager) RegisterWorker(ctx context.Context, addr string, capacity int) (WorkerStatus, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if addr == "" {
		return WorkerStatus{}, errors.New("visapult: worker address must not be empty")
	}
	m.mu.Lock()
	closed := m.closed
	m.mu.Unlock()
	if closed {
		return WorkerStatus{}, ErrManagerClosed
	}
	hello, err := pingWorker(ctx, addr)
	if err != nil {
		return WorkerStatus{}, fmt.Errorf("visapult: worker %s unreachable: %w", addr, err)
	}
	if capacity <= 0 {
		capacity = hello.Capacity
	}
	if capacity <= 0 {
		capacity = 1
	}
	// Negotiate the dispatch wire once, here: the worker's hello advertises
	// the highest version it speaks (absent means the pre-v2 JSON protocol),
	// and the pool records min(worker, manager). Every dispatch to this
	// worker then opens with the version both ends are known to accept.
	wireVer := hello.Wire
	if wireVer < wire.DispatchV1 {
		wireVer = wire.DispatchV1
	}
	wireVer = min(wireVer, m.maxWireVersion())
	return m.pool.add(addr, capacity, wireVer)
}

// Workers snapshots the registered workers in registration order.
func (m *Manager) Workers() []WorkerStatus { return m.pool.list() }

// DrainWorker stops new placements on the worker; runs already placed on it
// finish normally. Draining a drained or dead worker is a no-op.
func (m *Manager) DrainWorker(id string) error { return m.pool.drain(id) }

// RemoveWorker forgets the worker. Runs already dispatched to it keep their
// connections and finish (or fail and re-queue) as usual.
func (m *Manager) RemoveWorker(id string) error { return m.pool.remove(id) }

// SetMaxAttempts bounds how many placements (local or remote) one run may
// consume before it is failed; n <= 0 restores the default of 3.
func (m *Manager) SetMaxAttempts(n int) {
	if n <= 0 {
		n = defaultMaxAttempts
	}
	m.mu.Lock()
	m.maxAttempts = n
	m.mu.Unlock()
}

func (m *Manager) attemptBudget() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.maxAttempts
}

// slabSinkFor builds the receiver that absorbs a v2 worker's streamed slab
// payloads into the manager's own frame cache, so a run rendered remotely
// seeds the same replay cache a local run would — the manager's next local
// execution (fallback or otherwise) of the same content replays textures it
// never rendered. Returns nil (no slab delivery requested) when the wire
// version cannot carry slabs, caching is disabled, or the spec has no cache
// identity.
func (m *Manager) slabSinkFor(spec *RunSpec, wireVer int) slabSink {
	if wireVer < wire.DispatchV2 {
		return nil
	}
	cache := m.frameCacheHandle()
	if cache == nil {
		return nil
	}
	dataset, tf := spec.cacheIdentity()
	if dataset == "" {
		return nil
	}
	return func(light *wire.LightPayload, heavy *wire.HeavyPayload) {
		if light.SlabCount <= 0 {
			return
		}
		key := framecache.Key{
			Dataset:  framecache.DatasetKey(dataset, int(light.Axis), light.SlabCount),
			Timestep: light.Frame,
			TF:       tf,
		}
		// The decode path copied these payloads out of the read buffer and
		// hands them to no one else: ownership transfers to the cache.
		cache.PutSlabOwned(key, light.PE, light.SlabCount, framecache.Slab{Light: light, Heavy: heavy})
	}
}

// executeRemote is the placement loop of one spec-described run: claim the
// least-loaded live worker, dispatch, and on failure re-queue and try
// another — up to the manager's attempt budget. With no live workers the run
// executes locally, so a pool that empties out degrades to the in-process
// Manager instead of wedging.
func (m *Manager) executeRemote(r *managedRun, ctx context.Context, spec RunSpec) {
	// avoid is the worker that most recently failed this run: the next
	// placement prefers anywhere else, so a deterministic per-worker problem
	// doesn't burn the whole attempt budget in one place.
	var avoid string
	// busyBackoff grows exponentially across consecutive busy rejections
	// (reset whenever a dispatch is actually accepted), bounding the dial
	// rate against an externally shared worker that stays full.
	busyBackoff := 50 * time.Millisecond
	for {
		w, err := m.pool.acquire(ctx, avoid)
		if err != nil { // cancelled while queued for a slot
			r.finish(nil, err)
			return
		}
		if w == nil { // no live workers: local fallback
			m.executeLocal(r, ctx)
			return
		}
		if !r.beginAttempt(w.id, w.addr) { // cancelled in the meantime
			m.pool.release(w)
			return
		}
		// Publish the live dispatch handle as the run's viewer port so
		// attach/detach (and coalesced followers' viewers) reach the remote
		// fan-out; retract it when this placement ends either way.
		res, err := dispatchRun(ctx, w.addr, r.name, spec, w.wire, r.observe,
			func(h *dispatchHandle) { r.setPort(remotePort{h}) },
			m.slabSinkFor(&spec, w.wire))
		r.clearPort()
		m.pool.release(w)
		if err == nil {
			r.finish(res, nil)
			return
		}
		if ctx.Err() != nil {
			r.finish(nil, ctx.Err())
			return
		}
		if errors.Is(err, errWorkerBusy) {
			// The worker rejected the placement before running anything: a
			// scheduling miss, not a run failure. Correct the pool's
			// capacity belief, drop the phantom attempt, and re-queue — the
			// run must wait for real capacity, not burn its attempt budget.
			// The growing pause avoids hammering an externally shared
			// worker that keeps answering busy.
			m.pool.clampCapacity(w)
			avoid = w.id
			if !r.dropAttempt() {
				return
			}
			select {
			case <-time.After(busyBackoff):
			case <-ctx.Done():
				r.finish(nil, ctx.Err())
				return
			}
			busyBackoff = min(2*busyBackoff, 2*time.Second)
			continue
		}
		busyBackoff = 50 * time.Millisecond
		// A dropped connection condemns the worker; an error reported over a
		// healthy connection condemns only this attempt.
		var runErr *remoteRunError
		if !errors.As(err, &runErr) {
			m.pool.markDead(w, err)
		}
		avoid = w.id
		if r.attemptCount() >= m.attemptBudget() {
			r.finish(nil, fmt.Errorf("visapult: run %q failed after %d attempts: %w", r.name, r.attemptCount(), err))
			return
		}
		if !r.requeue(err.Error()) {
			return
		}
	}
}
