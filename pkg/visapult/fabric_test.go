package visapult_test

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"

	"visapult/pkg/visapult"
	vdpss "visapult/pkg/visapult/dpss"
)

// startFacadeFederation launches n clusters and returns their specs plus a
// live fabric handle.
func startFacadeFederation(t *testing.T, n int) ([]visapult.FabricClusterSpec, *visapult.Fabric) {
	t.Helper()
	var specs []visapult.FabricClusterSpec
	var cfg visapult.FabricConfig
	for i := 0; i < n; i++ {
		cl, err := vdpss.StartCluster(vdpss.ClusterConfig{Servers: 2, DisksPerServer: 2})
		if err != nil {
			t.Fatalf("starting cluster %d: %v", i, err)
		}
		t.Cleanup(func() { cl.Close() })
		name := fmt.Sprintf("site%d", i)
		specs = append(specs, visapult.FabricClusterSpec{Name: name, Master: cl.MasterAddr})
		cfg.Clusters = append(cfg.Clusters, visapult.FabricCluster{Name: name, Master: cl.MasterAddr})
	}
	cfg.Replication = 2
	cfg.AttemptTimeout = time.Second
	fb, err := visapult.NewFabric(cfg)
	if err != nil {
		t.Fatalf("building fabric: %v", err)
	}
	t.Cleanup(func() { fb.Close() })
	return specs, fb
}

func TestPipelineWithFabric(t *testing.T) {
	_, fb := startFacadeFederation(t, 2)
	const (
		nx, ny, nz = 16, 8, 8
		steps      = 3
	)
	if _, err := vdpss.WarmCombustion(context.Background(), fb, "facade", nx, ny, nz, steps, 0,
		vdpss.WarmConfig{BlockSize: 16 * 1024}); err != nil {
		t.Fatalf("warming: %v", err)
	}

	p, err := visapult.New(
		visapult.WithFabric(fb, visapult.FabricDataset{Base: "facade", NX: nx, NY: ny, NZ: nz, Timesteps: steps}),
		visapult.WithPEs(2),
	)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := p.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Backend.Frames != steps {
		t.Fatalf("frames = %d, want %d", res.Backend.Frames, steps)
	}
	if res.Backend.BytesIn == 0 {
		t.Fatal("no bytes crossed the fabric boundary")
	}
	// A Pipeline stays reusable: the second Run resolves a fresh source.
	if _, err := p.Run(context.Background()); err != nil {
		t.Fatalf("second Run: %v", err)
	}
}

func TestRunSpecFabricRoundTripAndExecution(t *testing.T) {
	specs, fb := startFacadeFederation(t, 2)
	const (
		nx, ny, nz = 16, 8, 8
		steps      = 2
	)
	if _, err := vdpss.WarmCombustion(context.Background(), fb, "specrun", nx, ny, nz, steps, 0,
		vdpss.WarmConfig{BlockSize: 16 * 1024}); err != nil {
		t.Fatalf("warming: %v", err)
	}

	spec := visapult.RunSpec{
		Source: visapult.SourceSpec{Kind: "fabric", Base: "specrun", NX: nx, NY: ny, NZ: nz, Timesteps: steps},
		PEs:    2,
		Fabric: &visapult.FabricSpec{
			Clusters:         specs,
			Replication:      2,
			AttemptTimeoutMs: 1000,
		},
	}
	// The spec must survive the wire: this is what the dispatch protocol
	// ships to a remote worker.
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"fabric"`) {
		t.Fatalf("serialized spec lacks fabric config: %s", data)
	}
	var decoded visapult.RunSpec
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}

	mgr := visapult.NewManager(1)
	defer mgr.Close()
	if err := mgr.CreateSpec("fabric-run", decoded); err != nil {
		t.Fatalf("CreateSpec: %v", err)
	}
	if err := mgr.Start("fabric-run"); err != nil {
		t.Fatalf("Start: %v", err)
	}
	res, err := mgr.Wait(context.Background(), "fabric-run")
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if res.Backend.Frames != steps {
		t.Fatalf("frames = %d, want %d", res.Backend.Frames, steps)
	}
}

func TestFabricSpecValidation(t *testing.T) {
	// Fabric kind without a fabric config fails at spec translation.
	spec := visapult.RunSpec{
		Source: visapult.SourceSpec{Kind: "fabric", Base: "x", NX: 8, NY: 8, NZ: 8, Timesteps: 1},
	}
	if _, err := spec.Options(); err == nil {
		t.Fatal("fabric source without fabric config validated")
	}

	// WithSource and WithFabric are mutually exclusive.
	src := visapult.NewCombustionSource(visapult.CombustionSpec{NX: 8, NY: 8, NZ: 8, Timesteps: 1})
	_, fb := startFacadeFederation(t, 2)
	_, err := visapult.New(
		visapult.WithSource(src),
		visapult.WithFabric(fb, visapult.FabricDataset{Base: "x", NX: 8, NY: 8, NZ: 8, Timesteps: 1}),
	)
	if err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("WithSource+WithFabric error = %v", err)
	}

	// A fabric dataset without geometry fails at New.
	if _, err := visapult.New(visapult.WithFabric(fb, visapult.FabricDataset{Base: "x"})); err == nil {
		t.Fatal("fabric dataset without geometry validated")
	}

	// An empty fabric spec fails at New (not mid-queue).
	_, err = visapult.New(visapult.WithFabricSpec(visapult.FabricSpec{},
		visapult.FabricDataset{Base: "x", NX: 8, NY: 8, NZ: 8, Timesteps: 1}))
	if err == nil {
		t.Fatal("empty fabric spec validated")
	}
}

func TestWithReplicationOverridesSpecFabric(t *testing.T) {
	specs, fb := startFacadeFederation(t, 2)
	const (
		nx, ny, nz = 8, 8, 8
		steps      = 1
	)
	if _, err := vdpss.WarmCombustion(context.Background(), fb, "repl", nx, ny, nz, steps, 0,
		vdpss.WarmConfig{BlockSize: 16 * 1024}); err != nil {
		t.Fatalf("warming: %v", err)
	}
	// Replication 1 in the spec, overridden to 2 — the build must accept it
	// and the run must read fine either way.
	p, err := visapult.New(
		visapult.WithFabricSpec(
			visapult.FabricSpec{Clusters: specs, Replication: 1},
			visapult.FabricDataset{Base: "repl", NX: nx, NY: ny, NZ: nz, Timesteps: steps}),
		visapult.WithReplication(2),
		visapult.WithPEs(1),
	)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := p.Run(context.Background()); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// TestFabricSpecEpochRoundTrip pins the epoch-aware remote-placement
// contract: a fabric mid-migration serializes its epoch into the spec, the
// spec survives JSON (the dispatch wire), and a fabric rebuilt from it
// computes identical placements — including consulting the previous epoch.
func TestFabricSpecEpochRoundTrip(t *testing.T) {
	specs, fb := startFacadeFederation(t, 3)

	// Advance the live fabric onto an epoch without site0, mid-migration.
	var eligible []string
	for _, cs := range specs[1:] {
		eligible = append(eligible, cs.Name)
	}
	if _, err := fb.AdvanceEpoch(eligible); err != nil {
		t.Fatal(err)
	}

	spec := visapult.FabricSpec{Clusters: specs, Replication: 2, Epoch: visapult.FabricEpochSpecOf(fb)}
	raw, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"epoch"`) || !strings.Contains(string(raw), `"prevEligible"`) {
		t.Fatalf("serialized spec lacks epoch state: %s", raw)
	}
	var decoded visapult.FabricSpec
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	remote, err := decoded.Build(0)
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	if got, want := remote.Epoch(), fb.Epoch(); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("rebuilt epoch = %+v, want %+v", got, want)
	}
	for i := 0; i < 32; i++ {
		name := fmt.Sprintf("combustion.t%04d", i)
		local, remotePlacement := fb.Placement(name), remote.Placement(name)
		if fmt.Sprint(local) != fmt.Sprint(remotePlacement) {
			t.Fatalf("placement of %s disagrees across the wire: %v vs %v", name, local, remotePlacement)
		}
		for _, c := range remotePlacement {
			if c == specs[0].Name {
				t.Fatalf("rebuilt fabric placed %s on the excluded member: %v", name, remotePlacement)
			}
		}
	}
}
