package visapult

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// smallSource returns a synthetic source small enough for real sessions in
// tests.
func smallSource(steps int) Source {
	return NewCombustionSource(CombustionSpec{NX: 24, NY: 16, NZ: 16, Timesteps: steps, Seed: 42})
}

// checkNoGoroutineLeak fails the test if the goroutine count has not settled
// back to (close to) its starting value.
func checkNoGoroutineLeak(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	var after int
	for time.Now().Before(deadline) {
		runtime.GC()
		after = runtime.NumGoroutine()
		if after <= before {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d before, %d after", before, after)
}

func TestNewValidation(t *testing.T) {
	if _, err := New(); err == nil {
		t.Error("expected error for missing source")
	}
	if _, err := New(WithSource(smallSource(1)), WithPEs(0)); err == nil {
		t.Error("expected error for zero PEs")
	}
	if _, err := New(WithSource(smallSource(1)), WithStripeLanes(-1)); err == nil {
		t.Error("expected error for negative stripe lanes")
	}
	if _, err := New(WithSource(smallSource(1)), WithTransport(Transport(99))); err == nil {
		t.Error("expected error for unknown transport")
	}
	if _, err := New(WithSource(smallSource(1)), WithoutViewer(), WithTransport(TransportTCP)); err == nil {
		t.Error("expected error for WithoutViewer over TCP")
	}
}

// TestRoundTripPerTransport drives a full pipeline through each transport
// and checks the frames arrive, the traffic contracts, and nothing leaks.
func TestRoundTripPerTransport(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts []Option
	}{
		{"local", []Option{WithTransport(TransportLocal)}},
		{"tcp", []Option{WithTransport(TransportTCP)}},
		{"striped", []Option{WithTransport(TransportStriped), WithStripeLanes(3)}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const pes, steps = 2, 3
			before := runtime.NumGoroutine()
			opts := append([]Option{
				WithSource(smallSource(steps)),
				WithPEs(pes),
				WithMode(Overlapped),
				WithInstrumentation(),
			}, tc.opts...)
			p, err := New(opts...)
			if err != nil {
				t.Fatal(err)
			}
			res, err := p.Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if res.Viewer.FramesCompleted != steps {
				t.Errorf("viewer completed %d frames, want %d", res.Viewer.FramesCompleted, steps)
			}
			if res.Backend.Frames != steps || res.Backend.PEs != pes {
				t.Errorf("backend stats %+v unexpected", res.Backend)
			}
			if res.TrafficRatio() <= 1 {
				t.Errorf("traffic ratio %.2f not > 1", res.TrafficRatio())
			}
			if len(res.Events) == 0 {
				t.Error("instrumented run produced no events")
			}
			checkNoGoroutineLeak(t, before)
		})
	}
}

// slowTestSource wraps a Source with a per-load delay so cancellation can
// land mid-run.
type slowTestSource struct {
	Source
	delay time.Duration
	loads atomic.Int64
}

func (s *slowTestSource) LoadRegion(ctx context.Context, t int, r Region) (*Volume, int64, error) {
	s.loads.Add(1)
	time.Sleep(s.delay)
	return s.Source.LoadRegion(ctx, t, r)
}

// TestRunCancellation cancels a pipeline mid-run and checks it unwinds with
// the context error and without leaking the overlapped readers.
func TestRunCancellation(t *testing.T) {
	for _, mode := range []Mode{Serial, Overlapped} {
		t.Run(mode.String(), func(t *testing.T) {
			before := runtime.NumGoroutine()
			src := &slowTestSource{Source: smallSource(50), delay: 20 * time.Millisecond}
			p, err := New(
				WithSource(src),
				WithPEs(2),
				WithMode(mode),
				WithTransport(TransportTCP),
			)
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			go func() {
				time.Sleep(100 * time.Millisecond)
				cancel()
			}()
			start := time.Now()
			_, err = p.Run(ctx)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("Run returned %v, want context.Canceled", err)
			}
			// 50 steps x 20 ms per load would take > 1 s per PE; cancellation
			// must cut that short.
			if elapsed := time.Since(start); elapsed > 2*time.Second {
				t.Errorf("cancelled run took %v", elapsed)
			}
			checkNoGoroutineLeak(t, before)
		})
	}
}

// TestRunDeadline exercises the context deadline path.
func TestRunDeadline(t *testing.T) {
	src := &slowTestSource{Source: smallSource(50), delay: 20 * time.Millisecond}
	p, err := New(WithSource(src), WithPEs(1), WithMode(Overlapped))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 80*time.Millisecond)
	defer cancel()
	if _, err := p.Run(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Run returned %v, want context.DeadlineExceeded", err)
	}
}

// TestWithoutViewer measures the backend-only path.
func TestWithoutViewer(t *testing.T) {
	p, err := New(WithSource(smallSource(2)), WithPEs(2), WithoutViewer())
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Backend.Frames != 2 {
		t.Errorf("frames = %d, want 2", res.Backend.Frames)
	}
	if res.Viewer.FramesCompleted != 0 {
		t.Errorf("viewerless run reported viewer stats %+v", res.Viewer)
	}
}

// TestFrameHook checks the per-frame callback sees every (PE, timestep).
func TestFrameHook(t *testing.T) {
	var frames atomic.Int64
	p, err := New(
		WithSource(smallSource(3)),
		WithPEs(2),
		WithFrameHook(func(fm FrameMetric) { frames.Add(1) }),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := frames.Load(); got != 2*3 {
		t.Errorf("frame hook fired %d times, want 6", got)
	}
}

// TestFollowViewThroughFacade checks the axis-steering option survives the
// facade translation.
func TestFollowViewThroughFacade(t *testing.T) {
	p, err := New(
		WithSource(smallSource(4)),
		WithPEs(2),
		WithFollowView(),
		WithViewAngle(1.5707963), // ~90 degrees: best axis flips to X
		WithAxis(AxisZ),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Backend.AxisFlips == 0 {
		t.Error("expected the viewer's axis hint to flip the decomposition")
	}
}

// TestShapedViewerPath checks the bandwidth-shaping option delivers every
// payload.
func TestShapedViewerPath(t *testing.T) {
	p, err := New(
		WithSource(smallSource(2)),
		WithPEs(1),
		WithTransport(TransportTCP),
		WithViewerBandwidth(20e6),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Viewer.FramesCompleted != 2 {
		t.Errorf("viewer completed %d frames over the shaped path, want 2", res.Viewer.FramesCompleted)
	}
}

// TestPipelineReuse runs the same pipeline twice; sessions must be
// independent.
func TestPipelineReuse(t *testing.T) {
	p, err := New(WithSource(smallSource(2)), WithPEs(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		res, err := p.Run(context.Background())
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if res.Viewer.FramesCompleted != 2 {
			t.Fatalf("run %d completed %d frames", i, res.Viewer.FramesCompleted)
		}
	}
}
