// Package netlog is the public NetLogger surface of the Visapult facade:
// event collection, ULM serialization, the netlogd daemon, phase analysis,
// and the textual NLV lifeline plots of the paper's section 3.6.
//
// It re-exports the internal netlogger implementation as aliases, so events
// flow between this package and pipeline results (visapult.Result.Events)
// without conversion.
package netlog

import (
	"io"

	"visapult/internal/netlogger"
)

// Event is one timestamped, tagged log record in the paper's ULM vocabulary.
type Event = netlogger.Event

// Field is one key=value annotation on an event.
type Field = netlogger.Field

// Logger produces events for one (host, program) pair.
type Logger = netlogger.Logger

// New builds a logger for the given host and program name.
var New = netlogger.New

// Collector merges event streams from several loggers.
type Collector = netlogger.Collector

// NewCollector builds an empty collector.
var NewCollector = netlogger.NewCollector

// Daemon is the netlogd accumulation daemon: components stream ULM events to
// it over TCP and it merges them into one log.
type Daemon = netlogger.Daemon

// NewDaemon builds a daemon; call Listen to serve.
var NewDaemon = netlogger.NewDaemon

// ParseLog parses a ULM-formatted event log.
var ParseLog = netlogger.ParseLog

// Analysis offers phase extraction and summaries over an event stream.
type Analysis = netlogger.Analysis

// PhaseSummary aggregates one phase's durations across PEs and frames.
type PhaseSummary = netlogger.PhaseSummary

// Analyze indexes an event stream for phase analysis.
var Analyze = netlogger.Analyze

// NLVOptions configures the textual lifeline plot renderer.
type NLVOptions = netlogger.NLVOptions

// RenderNLV renders the textual equivalent of the paper's NLV lifeline
// plots.
var RenderNLV = netlogger.RenderNLV

// PhaseReport renders the per-phase timing report.
var PhaseReport = netlogger.PhaseReport

// WriteCSV exports events as CSV for external plotting.
func WriteCSV(w io.Writer, events []Event) error { return netlogger.WriteCSV(w, events) }

// The paper's Table 1 and Table 2 tag vocabulary.
const (
	BEFrameStart  = netlogger.BEFrameStart
	BEFrameEnd    = netlogger.BEFrameEnd
	BELoadStart   = netlogger.BELoadStart
	BELoadEnd     = netlogger.BELoadEnd
	BERenderStart = netlogger.BERenderStart
	BERenderEnd   = netlogger.BERenderEnd

	VFrameStart = netlogger.VFrameStart
	VFrameEnd   = netlogger.VFrameEnd
)

// Tag orderings used by the NLV plots.
var (
	BackEndTags = netlogger.BackEndTags
	ViewerTags  = netlogger.ViewerTags
)
