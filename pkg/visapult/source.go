package visapult

import (
	"visapult/internal/backend"
	"visapult/internal/datagen"
	"visapult/internal/dpss"
)

// Source supplies the raw scientific data a pipeline visualizes. The paper's
// back end "reads raw scientific data from one of a number of different data
// sources"; the three constructors below cover the same ground — volumes
// already in memory, the synthetic combustion/cosmology generators, and the
// DPSS network data cache of all the paper's field tests. Any type
// implementing the interface (dimensions, timestep count, per-step size, and
// region loads) works; wrap an existing Source to inject delays or faults.
type Source = backend.DataSource

// NewMemorySource serves timesteps already resident in memory. All volumes
// must share the same dimensions. It is the fastest source, used by tests
// and by viewer-side work where no network cache is involved.
func NewMemorySource(steps ...*Volume) (Source, error) {
	return backend.NewMemorySource(steps...)
}

// CombustionSpec configures the synthetic stand-in for the paper's
// combustion dataset. The zero value of NX/NY/NZ selects the paper's
// 640x256x256 grid divided by 8; Timesteps defaults to 5.
type CombustionSpec struct {
	NX, NY, NZ int
	Timesteps  int
	Seed       int64
}

// NewCombustionSource builds a synthetic combustion source. Generated
// timesteps are cached so all PEs of one back end share a single generation
// pass.
func NewCombustionSource(spec CombustionSpec) Source {
	if spec.NX <= 0 || spec.NY <= 0 || spec.NZ <= 0 {
		spec.NX, spec.NY, spec.NZ = 640/8, 256/8, 256/8
	}
	if spec.Timesteps <= 0 {
		spec.Timesteps = 5
	}
	if spec.Seed == 0 {
		spec.Seed = 2000
	}
	return backend.NewSyntheticSource(datagen.NewCombustion(datagen.CombustionConfig{
		NX: spec.NX, NY: spec.NY, NZ: spec.NZ,
		Timesteps: spec.Timesteps, Seed: spec.Seed,
	}))
}

// CosmologySpec configures the synthetic stand-in for the SC99 cosmology
// dataset. The zero value selects a 64^3 grid with 2 timesteps.
type CosmologySpec struct {
	NX, NY, NZ int
	Timesteps  int
	Seed       int64
}

// NewCosmologySource builds a synthetic cosmology source; pair it with
// CosmologyTF for the SC99 palette.
func NewCosmologySource(spec CosmologySpec) Source {
	if spec.NX <= 0 || spec.NY <= 0 || spec.NZ <= 0 {
		spec.NX, spec.NY, spec.NZ = 64, 64, 64
	}
	if spec.Timesteps <= 0 {
		spec.Timesteps = 2
	}
	if spec.Seed == 0 {
		spec.Seed = 99
	}
	return backend.NewSyntheticSource(datagen.NewCosmology(datagen.CosmologyConfig{
		NX: spec.NX, NY: spec.NY, NZ: spec.NZ,
		Timesteps: spec.Timesteps, Seed: spec.Seed,
	}))
}

// NewPaperCombustionSource returns the combustion dataset at the paper's
// 640x256x256 resolution divided by scale (use 1 for the full 160
// MB-per-timestep grid).
func NewPaperCombustionSource(scale, timesteps int) Source {
	if scale < 1 {
		scale = 1
	}
	if timesteps < 1 {
		timesteps = 1
	}
	return NewCombustionSource(CombustionSpec{
		NX: 640 / scale, NY: 256 / scale, NZ: 256 / scale,
		Timesteps: timesteps,
	})
}

// DPSSSource reads timesteps from a DPSS cache through the block-level
// client API — the configuration of all the paper's field tests. It
// implements Source; Close releases the cached dataset handles.
type DPSSSource = backend.DPSSSource

// NewDPSSSource builds a source reading from the given DPSS client. base is
// the dataset base name (each timestep is a separate dataset named
// base.tNNNN); nx, ny, nz are the per-timestep volume dimensions; steps is
// the number of timesteps staged in the cache.
func NewDPSSSource(client *DPSSClient, base string, nx, ny, nz, steps int) (*DPSSSource, error) {
	return backend.NewDPSSSource(client, base, nx, ny, nz, steps)
}

// DPSSClient is the block-level client of the DPSS network data cache; see
// the visapult/pkg/visapult/dpss package for the full client and cluster
// API.
type DPSSClient = dpss.Client
