package visapult

import (
	"errors"
	"fmt"

	"visapult/internal/backend"
	"visapult/internal/backend/framecache"
	"visapult/internal/core"
	"visapult/internal/netsim"
	"visapult/internal/wire"
)

// config collects everything the options can set; New validates it and Run
// translates it into the internal session configuration.
type config struct {
	source        Source
	pes           int
	timesteps     int
	mode          Mode
	axis          Axis
	tf            TransferFunction
	transport     Transport
	stripeLanes   int
	viewerShaper  *Shaper
	followView    bool
	viewAngle     float64
	instrument    bool
	renderLoop    bool
	discardViewer bool
	onFrame       func(FrameMetric)
	onSlab        func(light *wire.LightPayload, heavy *wire.HeavyPayload)
	viewers       int
	viewerQueue   int
	renderWorkers int
	onFanout      func(*core.FanoutControl)
	// fabric / fabricSpec select a federation-fed source (mutually exclusive
	// with an explicit source): a live handle the caller owns, or a
	// serializable spec the pipeline builds (and closes) per run.
	fabric      *Fabric
	fabricSpec  *FabricSpec
	fabricDS    FabricDataset
	replication int
	// frameCache / cacheDataset / cacheTF wire a shared slab-texture cache
	// into the back end; set only through the unexported withFrameCache, so
	// the cache identity is always derived from a canonicalized RunSpec.
	frameCache   *framecache.Cache
	cacheDataset string
	cacheTF      string
}

func defaultConfig() config {
	return config{pes: 4, stripeLanes: 2}
}

func (c *config) validate() error {
	hasFabric := c.fabric != nil || c.fabricSpec != nil
	if c.source == nil && !hasFabric {
		return errors.New("visapult: a Source is required (use WithSource or WithFabric)")
	}
	if c.source != nil && hasFabric {
		return errors.New("visapult: WithSource and WithFabric are mutually exclusive")
	}
	if c.fabric != nil && c.fabricSpec != nil {
		return errors.New("visapult: WithFabric and WithFabricSpec are mutually exclusive")
	}
	if hasFabric {
		if err := c.fabricDS.validate(); err != nil {
			return err
		}
		if c.fabricSpec != nil {
			// Validate the spec without dialing anything: fabric construction
			// is connection-free, so a throwaway build catches bad configs at
			// New instead of mid-queue.
			fb, err := c.fabricSpec.Build(c.replication)
			if err != nil {
				return err
			}
			fb.Close()
		}
	}
	if c.replication < 0 {
		return fmt.Errorf("visapult: replication must be non-negative, got %d", c.replication)
	}
	if c.pes <= 0 {
		return fmt.Errorf("visapult: PEs must be positive, got %d", c.pes)
	}
	if c.timesteps < 0 {
		return fmt.Errorf("visapult: timesteps must be non-negative, got %d", c.timesteps)
	}
	if c.stripeLanes <= 0 {
		return fmt.Errorf("visapult: stripe lanes must be positive, got %d", c.stripeLanes)
	}
	switch c.transport {
	case TransportLocal, TransportTCP, TransportStriped:
	default:
		return fmt.Errorf("visapult: unknown transport %d", c.transport)
	}
	if c.discardViewer && c.transport != TransportLocal {
		return errors.New("visapult: WithoutViewer requires the local transport")
	}
	if c.viewers < 0 {
		return fmt.Errorf("visapult: viewer count must be non-negative, got %d", c.viewers)
	}
	if c.renderWorkers < 0 {
		return fmt.Errorf("visapult: render workers must be non-negative, got %d", c.renderWorkers)
	}
	if c.discardViewer && c.viewers > 0 {
		return errors.New("visapult: WithViewers and WithoutViewer are mutually exclusive")
	}
	return nil
}

// resolveSource returns the run's data source — the explicit one, or a
// fabric-backed source built from the WithFabric handle or the
// WithFabricSpec description — plus a cleanup releasing whatever the
// resolution created (dataset handles always; the federation itself only
// when this run built it from a spec).
func (c *config) resolveSource() (Source, func(), error) {
	if c.source != nil {
		return c.source, func() {}, nil
	}
	fb := c.fabric
	owned := false
	if fb == nil {
		var err error
		fb, err = c.fabricSpec.Build(c.replication)
		if err != nil {
			return nil, nil, err
		}
		owned = true
	}
	ds := c.fabricDS
	src, err := NewFabricSource(fb, ds.Base, ds.NX, ds.NY, ds.NZ, ds.Timesteps)
	if err != nil {
		if owned {
			fb.Close()
		}
		return nil, nil, err
	}
	cleanup := func() {
		src.Close()
		if owned {
			fb.Close()
		}
	}
	return src, cleanup, nil
}

func (c *config) sessionConfig() core.SessionConfig {
	sc := core.SessionConfig{
		PEs:           c.pes,
		Timesteps:     c.timesteps,
		Mode:          c.mode,
		Axis:          c.axis,
		Source:        c.source,
		TF:            c.tf,
		Transport:     c.transport,
		StripeLanes:   c.stripeLanes,
		ViewerShaper:  c.viewerShaper,
		FollowView:    c.followView,
		ViewAngle:     c.viewAngle,
		Instrument:    c.instrument,
		RenderLoop:    c.renderLoop,
		OnFrame:       c.onFrame,
		OnSlab:        c.onSlab,
		Viewers:       c.viewers,
		ViewerQueue:   c.viewerQueue,
		RenderWorkers: c.renderWorkers,
		Cache:         c.frameCache,
		CacheDataset:  c.cacheDataset,
		CacheTF:       c.cacheTF,
	}
	if c.viewers >= 1 {
		sc.OnFanout = c.onFanout
	}
	return sc
}

// Option configures a Pipeline built by New.
type Option func(*config)

// WithSource sets the data source feeding the back end. Required.
func WithSource(s Source) Option {
	return func(c *config) { c.source = s }
}

// WithPEs sets the number of back-end processing elements (default 4, the
// paper's first-light configuration).
func WithPEs(n int) Option {
	return func(c *config) { c.pes = n }
}

// WithTimesteps bounds the number of timesteps processed; 0 (the default)
// processes every timestep the source offers.
func WithTimesteps(n int) Option {
	return func(c *config) { c.timesteps = n }
}

// WithMode selects how each PE schedules loading relative to rendering:
// Serial, Overlapped, or OverlappedProcessPair (default Serial).
func WithMode(m Mode) Option {
	return func(c *config) { c.mode = m }
}

// WithAxis sets the initial slab decomposition axis (default X).
func WithAxis(a Axis) Option {
	return func(c *config) { c.axis = a }
}

// WithTransferFunction overrides the volume-rendering transfer function; the
// default is the combustion palette.
func WithTransferFunction(tf TransferFunction) Option {
	return func(c *config) { c.tf = tf }
}

// WithTransport selects how payloads reach the viewer: TransportLocal (an
// in-process sink, the default), TransportTCP (one connection per PE, the
// paper's layout), or TransportStriped (a striped socket bundle per PE,
// section 3.4).
func WithTransport(t Transport) Option {
	return func(c *config) { c.transport = t }
}

// WithStripeLanes sets the number of sockets per PE for TransportStriped
// (default 2).
func WithStripeLanes(n int) Option {
	return func(c *config) { c.stripeLanes = n }
}

// WithViewerShaper throttles the back-end-to-viewer writes through the given
// token-bucket shaper, emulating a WAN between them.
func WithViewerShaper(s *Shaper) Option {
	return func(c *config) { c.viewerShaper = s }
}

// WithViewerBandwidth is WithViewerShaper for the common case: it caps the
// back-end-to-viewer path at the given rate in bits per second.
func WithViewerBandwidth(bitsPerSec float64) Option {
	return func(c *config) { c.viewerShaper = netsim.NewShaper(bitsPerSec/8, 64<<10) }
}

// WithFollowView makes the viewer feed best-axis hints back to the back end
// after every completed frame (section 3.3's IBRAVR axis switching).
func WithFollowView() Option {
	return func(c *config) { c.followView = true }
}

// WithViewAngle sets the viewer camera's rotation about Y in radians.
func WithViewAngle(radians float64) Option {
	return func(c *config) { c.viewAngle = radians }
}

// WithInstrumentation enables NetLogger instrumentation on both components;
// the merged event stream is returned in Result.Events.
func WithInstrumentation() Option {
	return func(c *config) { c.instrument = true }
}

// WithRenderLoop starts the viewer's decoupled render goroutine for the
// duration of the run (the paper's desktop interactivity thread).
func WithRenderLoop() Option {
	return func(c *config) { c.renderLoop = true }
}

// WithoutViewer replaces the viewer with a discarding sink so the run
// measures only the load/render pipeline. Requires the local transport.
func WithoutViewer() Option {
	return func(c *config) { c.discardViewer = true }
}

// WithViewers runs the pipeline through the back end's fan-out stage with n
// concurrently attached in-process viewers: each frame is rendered once and
// its per-slab textures are multicast to every viewer (the paper's
// ImmersaDesk + tiled display exhibit). Every viewer gets its own bounded
// send queue, so one slow or dead viewer loses frames instead of stalling
// the render loop or the other viewers. The per-viewer outcome is reported
// in Result.Viewers. n = 0 (the default) selects the classic single-viewer
// pipeline without the fan-out stage.
func WithViewers(n int) Option {
	return func(c *config) { c.viewers = n }
}

// WithViewerQueue bounds each fan-out viewer's send queue in (PE, frame)
// texture pairs (default 32). Past the bound, frames are dropped for that
// viewer only.
func WithViewerQueue(n int) Option {
	return func(c *config) { c.viewerQueue = n }
}

// WithRenderWorkers sizes the back end's shared render pool: each slab
// render is tiled across min(GOMAXPROCS, n) goroutines that all PEs share,
// so concurrent PEs never oversubscribe the machine. n = 0 (the default)
// sizes the pool to GOMAXPROCS. The pool is bit-exact at any worker count —
// this knob changes frame latency, never pixels.
func WithRenderWorkers(n int) Option {
	return func(c *config) { c.renderWorkers = n }
}

// WithFabric feeds the pipeline from a live DPSS federation handle instead
// of a WithSource-supplied source: ds names the warmed time-series (each
// timestep a dataset base.tNNNN sharded and replicated across the fabric's
// clusters) and every region load is replica-aware — a dark or wedged
// cluster fails over to the next replica mid-run. The caller owns fb and its
// lifetime; the pipeline only opens dataset handles on it.
func WithFabric(fb *Fabric, ds FabricDataset) Option {
	return func(c *config) {
		c.fabric = fb
		c.fabricDS = ds
	}
}

// WithFabricSpec is WithFabric from a serializable federation description:
// the pipeline builds the fabric per run and closes it afterwards. This is
// the form RunSpec-described runs use, so a remote worker resolves the same
// clusters, placement and replication as the scheduler that dispatched it.
func WithFabricSpec(spec FabricSpec, ds FabricDataset) Option {
	return func(c *config) {
		c.fabricSpec = &spec
		c.fabricDS = ds
	}
}

// WithReplication overrides the replication factor of a WithFabricSpec- or
// RunSpec-built federation (the number of clusters each dataset is written
// to, default 2). It has no effect on a live WithFabric handle, whose factor
// was fixed when the fabric was built.
func WithReplication(r int) Option {
	return func(c *config) { c.replication = r }
}

// withFrameCache wires the shared slab-texture cache into the run. dataset
// and tf are the cache-identity strings derived from the run's canonicalized
// spec (RunSpec.cacheIdentity); a nil cache or empty dataset disables
// caching. Unexported: only spec-described runs have a content identity.
func withFrameCache(cache *framecache.Cache, dataset, tf string) Option {
	return func(c *config) {
		c.frameCache = cache
		c.cacheDataset = dataset
		c.cacheTF = tf
	}
}

// withSlabHook registers a callback receiving every rendered (or replayed)
// slab payload pair after it has been sent. Dispatch workers use it to
// stream raw slab textures back to the scheduler over the v2 wire; the
// payloads are shared immutable data and the hook runs concurrently from
// the PE goroutines. Unexported: slab delivery is a protocol concern.
func withSlabHook(fn func(light *wire.LightPayload, heavy *wire.HeavyPayload)) Option {
	return func(c *config) { c.onSlab = fn }
}

// withFanoutControl registers a callback receiving the fan-out control
// handle once a WithViewers run is live; Manager uses it to expose dynamic
// viewer attach/detach.
func withFanoutControl(fn func(*core.FanoutControl)) Option {
	return func(c *config) { c.onFanout = fn }
}

// WithFrameHook registers a callback invoked once per (PE, timestep) as soon
// as that PE finishes sending the frame. It is called concurrently from the
// PE goroutines; Manager uses it to stream live metrics.
func WithFrameHook(fn func(FrameMetric)) Option {
	return func(c *config) {
		if fn == nil {
			return
		}
		prev := c.onFrame
		c.onFrame = func(fs backend.FrameStats) {
			if prev != nil {
				prev(fs)
			}
			fn(fs)
		}
	}
}
