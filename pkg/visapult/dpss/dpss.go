// Package dpss is the public surface of the Distributed-Parallel Storage
// System reproduction: the network data cache of the paper's section 3.2
// (master catalog, striped block servers, block-level client API).
//
// It re-exports the internal implementation as aliases, so clients built
// here plug straight into visapult.NewDPSSSource, and adds the staging
// helpers the administrative tools use.
package dpss

import (
	"context"
	"fmt"
	"time"

	"visapult/internal/datagen"
	"visapult/internal/dpss"
	"visapult/internal/dpss/fabric"
	"visapult/internal/hpss"
	"visapult/internal/offline"
	"visapult/internal/render"
	"visapult/internal/volume"
)

// Volume is a dense float32 scalar field (the same type as
// visapult.Volume).
type Volume = volume.Volume

// Image is a float RGBA image (the same type as visapult.Image).
type Image = render.Image

// Client is the block-level DPSS client: Create, Open, Stat, and striped
// parallel block reads across the cluster's servers.
type Client = dpss.Client

// ClientOption configures a client.
type ClientOption = dpss.ClientOption

// NewClient connects to the master at the given address.
var NewClient = dpss.NewClient

// WithClientCompression requests DEFLATE-compressed block reads at the given
// level — the paper's section 5 "wire level compression" extension.
var WithClientCompression = dpss.WithClientCompression

// WithClientShaper shapes the client's reads to emulate a WAN.
var WithClientShaper = dpss.WithClientShaper

// WithStripes sets how many parallel striped connections the client keeps
// per block server (the paper's parallel-socket data path).
var WithStripes = dpss.WithStripes

// WithStripeWindow bounds how many pipelined requests may be in flight per
// stripe connection.
var WithStripeWindow = dpss.WithStripeWindow

// Extent is one (offset, length, destination) piece of a vectored read; see
// File.ReadvScatter.
type Extent = dpss.Extent

// StripeStat is a per-stripe-connection transfer counter snapshot.
type StripeStat = dpss.StripeStat

// File is an open dataset handle; it implements io.ReaderAt over the
// cluster's blocks.
type File = dpss.File

// DatasetInfo describes one cached dataset.
type DatasetInfo = dpss.DatasetInfo

// Master is the dataset catalog and logical-to-physical block mapper.
type Master = dpss.Master

// NewMaster builds a master; call Listen to serve.
var NewMaster = dpss.NewMaster

// BlockServer serves blocks striped over several in-memory disks.
type BlockServer = dpss.BlockServer

// ServerOption configures a block server.
type ServerOption = dpss.ServerOption

// NewBlockServer builds a block server; call Listen to serve.
var NewBlockServer = dpss.NewBlockServer

// WithDisks sets the number of disks a block server stripes over.
var WithDisks = dpss.WithDisks

// WithPipelineWorkers bounds how many pipelined (v2) requests a block server
// services concurrently per client connection.
var WithPipelineWorkers = dpss.WithPipelineWorkers

// Cluster is an in-process DPSS installation (master plus block servers),
// the stand-in for the paper's four-server terabyte DPSS at LBL.
type Cluster = dpss.Cluster

// ClusterConfig sizes a cluster.
type ClusterConfig = dpss.ClusterConfig

// StartCluster starts an in-process cluster.
var StartCluster = dpss.StartCluster

// DefaultBlockSize is the cache's default logical block size.
const DefaultBlockSize = dpss.DefaultBlockSize

// TimestepDatasetName names timestep t of a multi-step dataset (base.tNNNN).
var TimestepDatasetName = dpss.TimestepDatasetName

// Fabric federates several DPSS clusters into one logical cache: rendezvous
// placement, R-way replication, health-tracked client-side failover.
type Fabric = fabric.Fabric

// FabricConfig sizes a Fabric.
type FabricConfig = fabric.Config

// FabricClusterSpec names one member cluster and its master address.
type FabricClusterSpec = fabric.ClusterSpec

// FabricClusterHealth is one member's health snapshot.
type FabricClusterHealth = fabric.ClusterHealth

// FabricDatasetReplicas describes one dataset's replica presence.
type FabricDatasetReplicas = fabric.DatasetReplicas

// FabricEpochState is the serializable placement-epoch snapshot (see
// Fabric.Epoch, Fabric.AdvanceEpoch, Fabric.SealEpoch).
type FabricEpochState = fabric.EpochState

// RebalanceOptions shapes one rebalance-engine run; RebalanceReport
// summarizes it; DatasetMove is one live (dataset, target) copy record. The
// engine itself is driven through Fabric.Rebalance, Fabric.Repair and
// Fabric.DrainToEmpty.
type (
	RebalanceOptions = fabric.RebalanceOptions
	RebalanceReport  = fabric.RebalanceReport
	DatasetMove      = fabric.DatasetMove
)

// NewFabric builds a federation handle; no connection is made until use.
var NewFabric = fabric.New

// Archive is the simulated HPSS tertiary store warming pipelines stage from.
type Archive = hpss.Archive

// NewArchive creates an empty archive with no delay model.
var NewArchive = hpss.NewArchive

// NewArchiveWithModel creates an archive paced like late-1990s tape staging.
var NewArchiveWithModel = hpss.NewArchiveWithModel

// WarmConfig shapes a fabric cache-warming run.
type WarmConfig = hpss.WarmConfig

// WarmProgress is one per-cluster progress event of a warming run.
type WarmProgress = hpss.WarmProgress

// WarmReport summarizes a warming run.
type WarmReport = hpss.WarmReport

// WarmFabric stages archive files into every placement replica of the
// federation — the HPSS-to-DPSS migration step, scaled to multiple caches.
var WarmFabric = hpss.WarmFabric

// WarmTimesteps warms base's timesteps [0, steps) into the federation.
var WarmTimesteps = hpss.WarmTimesteps

// ThumbnailOptions configures offline preview generation.
type ThumbnailOptions = offline.ThumbnailOptions

// ThumbnailMetadata is the catalog metadata produced next to a preview.
type ThumbnailMetadata = offline.Metadata

// Thumbnail renders a preview image plus catalog metadata for one cached
// timestep — the paper's section 5 offline visualization service. Cancelling
// ctx aborts the cache reads in flight.
func Thumbnail(ctx context.Context, client *Client, base string, nx, ny, nz, timestep int, opts ThumbnailOptions) (*Image, *ThumbnailMetadata, error) {
	return offline.Thumbnail(ctx, client, base, nx, ny, nz, timestep, opts)
}

// StageCombustion generates the synthetic combustion dataset and writes each
// timestep into the cache through the ordinary client API (the paper's
// HPSS-to-DPSS migration step). It returns the per-timestep encoded size and
// the time spent in cache writes alone — data generation excluded — so
// callers can report genuine cache throughput.
func StageCombustion(client *Client, base string, nx, ny, nz, steps, blockSize int, seed int64) (stepBytes int64, writeTime time.Duration, err error) {
	if seed == 0 {
		seed = 2000
	}
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	gen := datagen.NewCombustion(datagen.CombustionConfig{
		NX: nx, NY: ny, NZ: nz, Timesteps: steps, Seed: seed,
	})
	for t := 0; t < steps; t++ {
		name := TimestepDatasetName(base, t)
		data := gen.Generate(t).Marshal()
		stepBytes = int64(len(data))
		if _, err := client.Create(name, int64(len(data)), blockSize); err != nil {
			return stepBytes, writeTime, fmt.Errorf("creating %s: %w", name, err)
		}
		f, err := client.Open(name)
		if err != nil {
			return stepBytes, writeTime, fmt.Errorf("opening %s: %w", name, err)
		}
		start := time.Now()
		_, werr := f.WriteAt(data, 0)
		writeTime += time.Since(start)
		if werr != nil {
			return stepBytes, writeTime, fmt.Errorf("writing %s: %w", name, werr)
		}
	}
	return stepBytes, writeTime, nil
}

// WarmCombustion generates the synthetic combustion dataset and warms it
// into the federation through the HPSS staging pipeline: every timestep is
// stored whole-file in an in-memory archive, then staged into all of its
// placement replicas concurrently with the warm-ahead window — the
// federation-scale version of StageCombustion.
func WarmCombustion(ctx context.Context, fb *Fabric, base string, nx, ny, nz, steps int, seed int64, cfg WarmConfig) (*WarmReport, error) {
	if seed == 0 {
		seed = 2000
	}
	if cfg.BlockSize <= 0 {
		cfg.BlockSize = DefaultBlockSize
	}
	gen := datagen.NewCombustion(datagen.CombustionConfig{
		NX: nx, NY: ny, NZ: nz, Timesteps: steps, Seed: seed,
	})
	a := NewArchive()
	for t := 0; t < steps; t++ {
		a.Store(TimestepDatasetName(base, t), gen.Generate(t).Marshal())
	}
	return WarmTimesteps(ctx, a, fb, base, steps, cfg)
}

// StageVolumes writes pre-built volumes into the cache as consecutive
// timesteps of base.
func StageVolumes(cluster *Cluster, client *Client, base string, blockSize int, vols ...*Volume) error {
	for t, v := range vols {
		if _, err := cluster.LoadVolume(client, TimestepDatasetName(base, t), v, blockSize); err != nil {
			return err
		}
	}
	return nil
}
