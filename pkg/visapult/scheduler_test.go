package visapult

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"
)

// startTestWorker stands up a real in-process dispatch worker (the same
// ServeWorker cmd/visapult-backend -serve-control runs) on an ephemeral port.
// The returned stop function kills it abruptly — listener and in-flight
// connections drop, exactly like a crashed worker process.
func startTestWorker(t *testing.T, capacity int) (addr string, stop func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := ServeWorker(ctx, ln, WorkerConfig{Capacity: capacity}); err != nil {
			t.Errorf("ServeWorker: %v", err)
		}
	}()
	var once sync.Once
	stop = func() {
		once.Do(func() {
			cancel()
			<-done
		})
	}
	t.Cleanup(stop)
	// Wait until the worker answers: from here its goroutine count is
	// stable, so tests can take goroutine-leak baselines after this point.
	pctx, pcancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer pcancel()
	if _, err := pingWorker(pctx, ln.Addr().String()); err != nil {
		t.Fatalf("test worker never came up: %v", err)
	}
	return ln.Addr().String(), stop
}

// startFaultyWorker speaks the control protocol but reports a run failure
// for every dispatch — a healthy worker whose runs always break.
func startFaultyWorker(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				var req workerRequest
				if json.NewDecoder(c).Decode(&req) != nil {
					return
				}
				enc := json.NewEncoder(c)
				if req.Op == opPing {
					enc.Encode(workerReply{Pong: &WorkerHello{Capacity: 1}})
					return
				}
				enc.Encode(workerReply{Error: "synthetic run failure"})
			}(conn)
		}
	}()
	return ln.Addr().String()
}

// quickSpec finishes in tens of milliseconds; slowSpec runs for a few
// hundred, long enough to kill its worker mid-flight.
func quickSpec() RunSpec {
	return RunSpec{
		Source: SourceSpec{Kind: "combustion", NX: 24, NY: 16, NZ: 16, Timesteps: 2, Seed: 42},
		PEs:    2, Mode: "overlapped",
	}
}

// slowSpec describes a run that stays in flight long enough for tests to
// interact with it mid-run (kill its worker, attach late viewers, observe
// coalescing). The generous volume and timestep count keep that window open:
// per-frame cost is dominated by data generation, so the window survives
// raycaster speedups.
func slowSpec() RunSpec {
	return RunSpec{
		Source: SourceSpec{Kind: "combustion", NX: 96, NY: 48, NZ: 48, Timesteps: 30, Seed: 42},
		PEs:    2, Mode: "overlapped",
	}
}

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestWorkerRegistryLifecycle(t *testing.T) {
	m := NewManager(1)
	defer m.Close()

	addr, _ := startTestWorker(t, 3)

	if _, err := m.RegisterWorker(context.Background(), "", 0); err == nil {
		t.Error("expected error registering an empty address")
	}
	// Nothing listens on this port after the listener closes immediately.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr().String()
	dead.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if _, err := m.RegisterWorker(ctx, deadAddr, 0); err == nil {
		t.Error("expected error registering an unreachable worker")
	}

	ws, err := m.RegisterWorker(context.Background(), addr, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ws.Capacity != 3 {
		t.Errorf("capacity %d, want the worker's advertised 3", ws.Capacity)
	}
	if ws.State != WorkerLive {
		t.Errorf("fresh worker state %s, want live", ws.State)
	}
	if _, err := m.RegisterWorker(context.Background(), addr, 0); !errors.Is(err, ErrWorkerExists) {
		t.Errorf("duplicate registration: got %v, want ErrWorkerExists", err)
	}

	list := m.Workers()
	if len(list) != 1 || list[0].ID != ws.ID {
		t.Fatalf("worker list %+v, want just %s", list, ws.ID)
	}

	if err := m.DrainWorker(ws.ID); err != nil {
		t.Fatal(err)
	}
	if got := m.Workers()[0].State; got != WorkerDraining {
		t.Errorf("drained worker state %s, want draining", got)
	}
	if err := m.DrainWorker("w999"); !errors.Is(err, ErrUnknownWorker) {
		t.Errorf("draining unknown worker: got %v, want ErrUnknownWorker", err)
	}

	if err := m.RemoveWorker(ws.ID); err != nil {
		t.Fatal(err)
	}
	if len(m.Workers()) != 0 {
		t.Error("worker list not empty after remove")
	}
	if err := m.RemoveWorker(ws.ID); !errors.Is(err, ErrUnknownWorker) {
		t.Errorf("removing removed worker: got %v, want ErrUnknownWorker", err)
	}
}

// TestRemoteDispatchCompletes places a run on a real worker and checks the
// result, metrics, and placement record all round-trip the control protocol.
func TestRemoteDispatchCompletes(t *testing.T) {
	// The worker outlives the leak check (t.Cleanup), so it starts before
	// the baseline.
	addr, _ := startTestWorker(t, 2)
	before := runtime.NumGoroutine()
	m := NewManager(1)
	ws, err := m.RegisterWorker(context.Background(), addr, 0)
	if err != nil {
		t.Fatal(err)
	}

	if err := m.CreateSpec("remote", quickSpec()); err != nil {
		t.Fatal(err)
	}
	if err := m.Start("remote"); err != nil {
		t.Fatal(err)
	}
	res, err := m.Wait(context.Background(), "remote")
	if err != nil {
		t.Fatal(err)
	}
	if res.Backend.Frames != 2 || res.Backend.PEs != 2 {
		t.Errorf("remote result stats %+v unexpected", res.Backend)
	}
	if res.Viewer.FramesCompleted != 2 {
		t.Errorf("remote viewer completed %d frames, want 2", res.Viewer.FramesCompleted)
	}

	st, err := m.Status("remote")
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone {
		t.Fatalf("remote run state %s, want done", st.State)
	}
	if st.Worker != ws.ID {
		t.Errorf("run worker %q, want %s", st.Worker, ws.ID)
	}
	if len(st.Attempts) != 1 || st.Attempts[0].Worker != ws.ID || st.Attempts[0].Addr != addr {
		t.Errorf("attempts %+v, want one on %s@%s", st.Attempts, ws.ID, addr)
	}
	if st.Attempts[0].Ended.IsZero() || st.Attempts[0].Error != "" {
		t.Errorf("attempt not closed cleanly: %+v", st.Attempts[0])
	}
	if st.FramesSent != 2*2 { // PEs x timesteps, streamed over the protocol
		t.Errorf("framesSent %d, want 4", st.FramesSent)
	}
	if active := m.Workers()[0].Active; active != 0 {
		t.Errorf("worker still shows %d active runs", active)
	}

	m.Close()
	checkNoGoroutineLeak(t, before)
}

// TestKilledWorkerRequeuesOntoSecondWorker is the acceptance scenario: a run
// dispatched to a worker that dies mid-run is re-queued and completes on a
// second worker, with both placements in the attempt history.
func TestKilledWorkerRequeuesOntoSecondWorker(t *testing.T) {
	m := NewManager(1)
	defer m.Close()

	// Registration order breaks the 0/0 load tie, so the run lands on w1.
	addr1, stop1 := startTestWorker(t, 1)
	w1, err := m.RegisterWorker(context.Background(), addr1, 0)
	if err != nil {
		t.Fatal(err)
	}
	addr2, _ := startTestWorker(t, 1)
	w2, err := m.RegisterWorker(context.Background(), addr2, 0)
	if err != nil {
		t.Fatal(err)
	}

	if err := m.CreateSpec("victim", slowSpec()); err != nil {
		t.Fatal(err)
	}
	ch, unsub, err := m.Subscribe("victim")
	if err != nil {
		t.Fatal(err)
	}
	defer unsub()
	if err := m.Start("victim"); err != nil {
		t.Fatal(err)
	}

	// Kill worker 1 once the run demonstrably executes on it.
	if _, ok := <-ch; !ok {
		t.Fatal("metric stream closed before the first frame")
	}
	if st, _ := m.Status("victim"); st.Worker != w1.ID {
		t.Fatalf("run placed on %q, want %s", st.Worker, w1.ID)
	}
	stop1()

	res, err := m.Wait(context.Background(), "victim")
	if err != nil {
		t.Fatalf("run did not recover from the killed worker: %v", err)
	}
	wantFrames := slowSpec().Source.Timesteps
	if res.Backend.Frames != wantFrames {
		t.Errorf("recovered run rendered %d frames, want %d", res.Backend.Frames, wantFrames)
	}

	st, err := m.Status("victim")
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone {
		t.Fatalf("final state %s, want done", st.State)
	}
	if st.Worker != w2.ID {
		t.Errorf("final worker %q, want %s", st.Worker, w2.ID)
	}
	if len(st.Attempts) != 2 {
		t.Fatalf("attempt history %+v, want 2 entries", st.Attempts)
	}
	if st.Attempts[0].Worker != w1.ID || st.Attempts[0].Error == "" {
		t.Errorf("first attempt %+v, want a failure on %s", st.Attempts[0], w1.ID)
	}
	if st.Attempts[1].Worker != w2.ID || st.Attempts[1].Error != "" {
		t.Errorf("second attempt %+v, want a clean run on %s", st.Attempts[1], w2.ID)
	}
	if st.FramesSent != 2*wantFrames { // re-streamed in full by the second worker
		t.Errorf("framesSent %d, want %d", st.FramesSent, 2*wantFrames)
	}

	// The dead worker is quarantined, not forgotten.
	for _, ws := range m.Workers() {
		if ws.ID == w1.ID {
			if ws.State != WorkerDead || ws.Failures == 0 {
				t.Errorf("killed worker status %+v, want dead with failures", ws)
			}
		}
	}
}

// TestCapacityExhaustionQueues checks a run waits for a worker slot instead
// of spilling anywhere else while live capacity exists.
func TestCapacityExhaustionQueues(t *testing.T) {
	m := NewManager(1)
	defer m.Close()

	addr, _ := startTestWorker(t, 1)
	ws, err := m.RegisterWorker(context.Background(), addr, 0)
	if err != nil {
		t.Fatal(err)
	}

	if err := m.CreateSpec("hog", slowSpec()); err != nil {
		t.Fatal(err)
	}
	if err := m.CreateSpec("patient", quickSpec()); err != nil {
		t.Fatal(err)
	}
	if err := m.Start("hog"); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "hog to occupy the worker", func() bool {
		st, _ := m.Status("hog")
		return st.State == StateRunning
	})
	if err := m.Start("patient"); err != nil {
		t.Fatal(err)
	}

	// The single slot is taken: the second run must sit in the queue.
	time.Sleep(50 * time.Millisecond)
	if st, _ := m.Status("patient"); st.State != StateQueued {
		t.Fatalf("second run state %s, want queued behind the full worker", st.State)
	}

	if _, err := m.Wait(context.Background(), "hog"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Wait(context.Background(), "patient"); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"hog", "patient"} {
		st, _ := m.Status(name)
		if st.Worker != ws.ID {
			t.Errorf("run %s finished on %q, want %s", name, st.Worker, ws.ID)
		}
	}
	if active := m.Workers()[0].Active; active != 0 {
		t.Errorf("worker still shows %d active runs", active)
	}
}

// TestSpecRunsLocallyWithoutWorkers checks the scheduler's fallback: a
// spec-described run on a worker-less manager executes in-process.
func TestSpecRunsLocallyWithoutWorkers(t *testing.T) {
	m := NewManager(1)
	defer m.Close()

	if err := m.CreateSpec("solo", quickSpec()); err != nil {
		t.Fatal(err)
	}
	if err := m.Start("solo"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Wait(context.Background(), "solo"); err != nil {
		t.Fatal(err)
	}
	st, _ := m.Status("solo")
	if st.Worker != "local" {
		t.Errorf("worker-less run placed on %q, want local", st.Worker)
	}
	if len(st.Attempts) != 1 || st.Attempts[0].Worker != "local" || st.Attempts[0].Addr != "" {
		t.Errorf("attempts %+v, want a single local placement", st.Attempts)
	}
}

// TestDeadPoolFallsBackToLocal kills the only worker before dispatch: the
// failed attempt re-queues and, with no live workers left, completes
// locally instead of wedging.
func TestDeadPoolFallsBackToLocal(t *testing.T) {
	m := NewManager(1)
	defer m.Close()

	addr, stop := startTestWorker(t, 1)
	w1, err := m.RegisterWorker(context.Background(), addr, 0)
	if err != nil {
		t.Fatal(err)
	}
	stop() // dies between registration and dispatch

	if err := m.CreateSpec("survivor", quickSpec()); err != nil {
		t.Fatal(err)
	}
	if err := m.Start("survivor"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Wait(context.Background(), "survivor"); err != nil {
		t.Fatal(err)
	}
	st, _ := m.Status("survivor")
	if st.State != StateDone {
		t.Fatalf("state %s, want done", st.State)
	}
	if len(st.Attempts) != 2 || st.Attempts[0].Worker != w1.ID || st.Attempts[1].Worker != "local" {
		t.Errorf("attempts %+v, want [%s, local]", st.Attempts, w1.ID)
	}
	if got := m.Workers()[0].State; got != WorkerDead {
		t.Errorf("worker state %s after failed dispatch, want dead", got)
	}

	// Re-registering the same address (the worker came back) is the
	// recovery path: it must replace the dead record, not pile up next to
	// it.
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	wctx, wcancel := context.WithCancel(context.Background())
	wdone := make(chan struct{})
	go func() { defer close(wdone); ServeWorker(wctx, ln, WorkerConfig{Capacity: 1}) }()
	t.Cleanup(func() { wcancel(); <-wdone })
	w2, err := m.RegisterWorker(context.Background(), addr, 0)
	if err != nil {
		t.Fatalf("re-registering a revived worker: %v", err)
	}
	workers := m.Workers()
	if len(workers) != 1 {
		t.Fatalf("worker list %+v after re-registration, want the dead record pruned", workers)
	}
	if workers[0].ID != w2.ID || workers[0].State != WorkerLive {
		t.Errorf("re-registered worker %+v, want live %s", workers[0], w2.ID)
	}
}

// TestDrainedWorkerReceivesNothing drains the only worker and checks new
// runs bypass it (local fallback) while its state survives.
func TestDrainedWorkerReceivesNothing(t *testing.T) {
	m := NewManager(1)
	defer m.Close()

	addr, _ := startTestWorker(t, 2)
	ws, err := m.RegisterWorker(context.Background(), addr, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.DrainWorker(ws.ID); err != nil {
		t.Fatal(err)
	}
	if err := m.CreateSpec("bypasses", quickSpec()); err != nil {
		t.Fatal(err)
	}
	if err := m.Start("bypasses"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Wait(context.Background(), "bypasses"); err != nil {
		t.Fatal(err)
	}
	if st, _ := m.Status("bypasses"); st.Worker != "local" {
		t.Errorf("run on a drained pool placed on %q, want local", st.Worker)
	}
}

// TestDrainWakesQueuedRun drains the pool's last live worker while a run
// waits for its only slot: the waiter must wake immediately and take the
// local-fallback path instead of sitting parked until the slot frees.
func TestDrainWakesQueuedRun(t *testing.T) {
	m := NewManager(1)
	defer m.Close()

	addr, _ := startTestWorker(t, 1)
	ws, err := m.RegisterWorker(context.Background(), addr, 0)
	if err != nil {
		t.Fatal(err)
	}
	// An extra-slow hog widens the window between the drain-triggered local
	// completion of the waiter and the hog's own release of the slot.
	hogSpec := slowSpec()
	hogSpec.Source.Timesteps = 40
	if err := m.CreateSpec("hog", hogSpec); err != nil {
		t.Fatal(err)
	}
	if err := m.CreateSpec("waiter", quickSpec()); err != nil {
		t.Fatal(err)
	}
	if err := m.Start("hog"); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "hog to occupy the worker", func() bool {
		st, _ := m.Status("hog")
		return st.State == StateRunning
	})
	if err := m.Start("waiter"); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "waiter to queue for the full worker", func() bool {
		st, _ := m.Status("waiter")
		return st.State == StateQueued
	})

	if err := m.DrainWorker(ws.ID); err != nil {
		t.Fatal(err)
	}
	// The waiter must complete locally well before the hog frees the slot.
	hogDone := make(chan struct{})
	go func() { m.Wait(context.Background(), "hog"); close(hogDone) }()
	if _, err := m.Wait(context.Background(), "waiter"); err != nil {
		t.Fatal(err)
	}
	st, _ := m.Status("waiter")
	if st.Worker != "local" {
		t.Errorf("woken waiter placed on %q, want local", st.Worker)
	}
	select {
	case <-hogDone:
		t.Error("waiter only completed after the hog released the slot — drain did not wake it")
	default:
	}
	<-hogDone
}

// TestOverstatedCapacityQueuesOnBusy registers a worker with a higher
// capacity than its own gate admits: the surplus dispatches are rejected as
// busy, which must re-queue the runs (correcting the pool's capacity belief)
// rather than burn their attempt budgets — every run still completes.
func TestOverstatedCapacityQueuesOnBusy(t *testing.T) {
	m := NewManager(1)
	defer m.Close()

	addr, _ := startTestWorker(t, 1) // the worker's real gate: one run at a time
	if _, err := m.RegisterWorker(context.Background(), addr, 3); err != nil {
		t.Fatal(err)
	}

	names := []string{"busy-0", "busy-1", "busy-2"}
	for i, name := range names {
		spec := slowSpec()
		if i > 0 {
			spec = quickSpec()
		}
		if err := m.CreateSpec(name, spec); err != nil {
			t.Fatal(err)
		}
		if err := m.Start(name); err != nil {
			t.Fatal(err)
		}
	}
	for _, name := range names {
		if _, err := m.Wait(context.Background(), name); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	for _, name := range names {
		st, _ := m.Status(name)
		if st.State != StateDone {
			t.Errorf("run %s finished in state %s (attempts %+v)", name, st.State, st.Attempts)
		}
		// Busy rejections are scheduling misses: the history must only hold
		// the one placement that actually executed.
		if len(st.Attempts) != 1 {
			t.Errorf("run %s has %d attempts, want 1: %+v", name, len(st.Attempts), st.Attempts)
		}
	}
	// The busy replies taught the pool the capacity was overstated. The
	// exact converged value depends on how the rejections interleave, so
	// only the direction is asserted.
	if got := m.Workers()[0].Capacity; got >= 3 {
		t.Errorf("pool capacity belief %d after busy rejections, want clamped below the registered 3", got)
	}
	if got := m.Workers()[0].State; got != WorkerLive {
		t.Errorf("worker state %s after busy rejections, want live", got)
	}
}

// TestRunErrorRetriesAreBounded drives a run against a healthy worker that
// fails every dispatch: the scheduler must retry up to the attempt budget
// and then fail the run — without declaring the worker dead.
func TestRunErrorRetriesAreBounded(t *testing.T) {
	m := NewManager(1)
	defer m.Close()
	m.SetMaxAttempts(2)

	addr := startFaultyWorker(t)
	if _, err := m.RegisterWorker(context.Background(), addr, 1); err != nil {
		t.Fatal(err)
	}

	if err := m.CreateSpec("doomed", quickSpec()); err != nil {
		t.Fatal(err)
	}
	if err := m.Start("doomed"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Wait(context.Background(), "doomed"); err == nil {
		t.Fatal("run succeeded against a worker that fails every dispatch")
	}
	st, _ := m.Status("doomed")
	if st.State != StateFailed {
		t.Fatalf("state %s, want failed", st.State)
	}
	if len(st.Attempts) != 2 {
		t.Errorf("attempt history %+v, want exactly the budget of 2", st.Attempts)
	}
	// A run error over a healthy connection condemns the run, not the
	// worker.
	if got := m.Workers()[0].State; got != WorkerLive {
		t.Errorf("worker state %s after run errors, want live", got)
	}
}

// TestRunErrorRetriesElsewhere checks the "retry elsewhere" contract: when
// a healthy worker reports a run failure and another live worker exists, the
// retry is placed on the other worker — not back on the one that just
// failed it.
func TestRunErrorRetriesElsewhere(t *testing.T) {
	m := NewManager(1)
	defer m.Close()

	// The faulty worker registers first, so the 0/0 load tie places the
	// first attempt on it.
	faultyAddr := startFaultyWorker(t)
	faulty, err := m.RegisterWorker(context.Background(), faultyAddr, 1)
	if err != nil {
		t.Fatal(err)
	}
	goodAddr, _ := startTestWorker(t, 1)
	good, err := m.RegisterWorker(context.Background(), goodAddr, 0)
	if err != nil {
		t.Fatal(err)
	}

	if err := m.CreateSpec("rescued", quickSpec()); err != nil {
		t.Fatal(err)
	}
	if err := m.Start("rescued"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Wait(context.Background(), "rescued"); err != nil {
		t.Fatalf("run was not rescued by the second worker: %v", err)
	}
	st, _ := m.Status("rescued")
	if st.State != StateDone {
		t.Fatalf("state %s, want done", st.State)
	}
	if len(st.Attempts) != 2 {
		t.Fatalf("attempts %+v, want 2", st.Attempts)
	}
	if st.Attempts[0].Worker != faulty.ID || st.Attempts[0].Error == "" {
		t.Errorf("first attempt %+v, want a failure on %s", st.Attempts[0], faulty.ID)
	}
	if st.Attempts[1].Worker != good.ID {
		t.Errorf("retry placed on %q, want the other worker %s", st.Attempts[1].Worker, good.ID)
	}
}

// TestManagerCloseTerminatesRemoteQueue closes a manager while one run
// executes remotely and another waits for the full worker — both must reach
// a terminal state.
func TestManagerCloseTerminatesRemoteQueue(t *testing.T) {
	// The worker outlives the leak check (t.Cleanup), so it starts before
	// the baseline.
	addr, _ := startTestWorker(t, 1)
	before := runtime.NumGoroutine()
	m := NewManager(1)
	if _, err := m.RegisterWorker(context.Background(), addr, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.CreateSpec("running", slowSpec()); err != nil {
		t.Fatal(err)
	}
	if err := m.CreateSpec("queued", quickSpec()); err != nil {
		t.Fatal(err)
	}
	if err := m.Start("running"); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "the run to occupy the worker", func() bool {
		st, _ := m.Status("running")
		return st.State == StateRunning
	})
	if err := m.Start("queued"); err != nil {
		t.Fatal(err)
	}

	m.Close()
	for _, st := range m.List() {
		if !st.State.Terminal() {
			t.Errorf("run %s left in state %s after Close", st.Name, st.State)
		}
	}
	checkNoGoroutineLeak(t, before)
}

// TestSchedulerRequeueRaceStress hammers dispatch and re-queue concurrently:
// several runs across two workers, one of which is killed mid-flight. Run
// with -race in CI; every run must still reach StateDone.
func TestSchedulerRequeueRaceStress(t *testing.T) {
	m := NewManager(2)
	defer m.Close()

	addr1, stop1 := startTestWorker(t, 2)
	if _, err := m.RegisterWorker(context.Background(), addr1, 0); err != nil {
		t.Fatal(err)
	}
	addr2, _ := startTestWorker(t, 2)
	if _, err := m.RegisterWorker(context.Background(), addr2, 0); err != nil {
		t.Fatal(err)
	}

	const n = 6
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("stress-%d", i)
		spec := quickSpec()
		spec.Source.Timesteps = 6 // long enough that the kill lands mid-run
		if err := m.CreateSpec(name, spec); err != nil {
			t.Fatal(err)
		}
		if err := m.Start(name); err != nil {
			t.Fatal(err)
		}
	}
	// Kill one worker while the fleet executes.
	waitUntil(t, "any run to start executing", func() bool {
		for _, st := range m.List() {
			if st.State == StateRunning {
				return true
			}
		}
		return false
	})
	stop1()

	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			if _, err := m.Wait(context.Background(), name); err != nil {
				t.Errorf("%s: %v", name, err)
			}
		}(fmt.Sprintf("stress-%d", i))
	}
	wg.Wait()
	for _, st := range m.List() {
		if st.State != StateDone {
			t.Errorf("run %s finished in state %s (attempts %+v)", st.Name, st.State, st.Attempts)
		}
	}
}
