package visapult

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// TransferSpec is the serializable form of a volume-rendering transfer
// function, so a RunSpec fully determines the rendered pixels (and therefore
// a render hash). Kind selects one of the built-in colormaps; the numeric
// fields refine it, with zero values selecting that colormap's defaults.
type TransferSpec struct {
	Kind string `json:"kind"` // fire | grayscale | cool | piecewise
	// Threshold below which samples are fully transparent (fire only;
	// 0 selects the fire default of 0.05).
	Threshold float64 `json:"threshold,omitempty"`
	// OpacityScale multiplies per-sample alpha (0 selects the colormap
	// default: fire 0.7, grayscale 1, cool 0.5).
	OpacityScale float64 `json:"opacityScale,omitempty"`
	// Points is the control-point table for kind "piecewise", in increasing
	// Value order.
	Points []TransferPoint `json:"points,omitempty"`
}

// TransferPoint is one (value -> color) entry of a piecewise TransferSpec.
type TransferPoint struct {
	Value float64 `json:"value"`
	R     float64 `json:"r"`
	G     float64 `json:"g"`
	B     float64 `json:"b"`
	A     float64 `json:"a"`
}

// transferFunction builds the render-layer transfer function the spec
// describes. Callers validate first; an unknown kind falls back to the
// default combustion colormap.
func (t *TransferSpec) transferFunction() TransferFunction {
	if t == nil {
		return nil
	}
	switch strings.ToLower(t.Kind) {
	case "", "fire":
		return FireTF{Threshold: float32(t.Threshold), OpacityScale: float32(t.OpacityScale)}
	case "grayscale":
		return GrayscaleTF{OpacityScale: float32(t.OpacityScale)}
	case "cool":
		return CoolTF{OpacityScale: float32(t.OpacityScale)}
	case "piecewise":
		pts := make([]TransferControlPoint, len(t.Points))
		for i, p := range t.Points {
			pts[i] = TransferControlPoint{
				Value: float32(p.Value),
				R:     float32(p.R), G: float32(p.G), B: float32(p.B), A: float32(p.A),
			}
		}
		return PiecewiseTF{Points: pts}
	default:
		return nil
	}
}

// ErrInvalidSpec is the sentinel all RunSpec validation failures match:
// errors.Is(err, ErrInvalidSpec) is true for every ValidationError.
var ErrInvalidSpec = errors.New("visapult: invalid run spec")

// FieldError pins one validation failure to the JSON field that caused it.
type FieldError struct {
	Field   string `json:"field"`
	Code    string `json:"code"`
	Message string `json:"message"`
}

func (e FieldError) Error() string { return e.Field + ": " + e.Message }

// ValidationError aggregates every field failure of one RunSpec.Validate
// call, so callers (and the daemon's 400 responses) report all problems at
// once instead of the first.
type ValidationError struct {
	Fields []FieldError `json:"fields"`
}

// Error implements error.
func (e *ValidationError) Error() string {
	msgs := make([]string, len(e.Fields))
	for i, f := range e.Fields {
		msgs[i] = f.Error()
	}
	return "visapult: invalid run spec: " + strings.Join(msgs, "; ")
}

// Is reports ErrInvalidSpec as this error's sentinel.
func (e *ValidationError) Is(target error) bool { return target == ErrInvalidSpec }

// Validate checks the spec without normalizing it. It returns nil or a
// *ValidationError carrying one FieldError per problem; errors.Is(err,
// ErrInvalidSpec) matches. The facade (New via RunSpec.Options), the
// scheduler (Manager.CreateSpec) and visapultd's submit handler all call this
// one path, so an invalid spec fails identically everywhere: at the API with
// a 400, never later at dispatch time.
func (spec *RunSpec) Validate() error {
	var fields []FieldError
	add := func(field, code, msg string) {
		fields = append(fields, FieldError{Field: field, Code: code, Message: msg})
	}

	kind := strings.ToLower(spec.Source.Kind)
	switch kind {
	case "", "combustion", "cosmology", "paper", "fabric":
	default:
		add("source.kind", "unknown_enum", fmt.Sprintf("unknown source kind %q (want combustion, cosmology, paper or fabric)", spec.Source.Kind))
	}
	if spec.Source.NX < 0 || spec.Source.NY < 0 || spec.Source.NZ < 0 {
		add("source.nx", "negative", "volume dimensions must be >= 0")
	}
	if spec.Source.Timesteps < 0 {
		add("source.timesteps", "negative", "source timesteps must be >= 0")
	}
	if spec.Source.Scale < 0 {
		add("source.scale", "negative", "paper scale divisor must be >= 0")
	}
	if kind == "fabric" {
		if spec.Fabric == nil {
			add("fabric", "required", `source kind "fabric" requires a fabric config`)
		} else if len(spec.Fabric.Clusters) == 0 {
			add("fabric.clusters", "required", "fabric needs at least one cluster")
		}
		if spec.Source.Base == "" {
			add("source.base", "required", `source kind "fabric" requires a dataset base name`)
		}
	}

	if spec.PEs < 0 {
		add("pes", "negative", "pes must be >= 0")
	}
	if spec.Timesteps < 0 {
		add("timesteps", "negative", "timesteps must be >= 0")
	}
	switch strings.ToLower(spec.Mode) {
	case "", "serial", "overlapped", "process-pair":
	default:
		add("mode", "unknown_enum", fmt.Sprintf("unknown mode %q (want serial, overlapped or process-pair)", spec.Mode))
	}
	switch strings.ToLower(spec.Transport) {
	case "", "local", "tcp", "striped":
	default:
		add("transport", "unknown_enum", fmt.Sprintf("unknown transport %q (want local, tcp or striped)", spec.Transport))
	}
	if spec.StripeLanes < 0 {
		add("stripeLanes", "negative", "stripeLanes must be >= 0")
	}
	if spec.ViewerBandwidthMbps < 0 {
		add("viewerBandwidthMbps", "negative", "viewer bandwidth must be >= 0")
	}
	if spec.Viewers < 0 {
		add("viewers", "negative", "viewers must be >= 0")
	}
	if spec.ViewerQueue < 0 {
		add("viewerQueue", "negative", "viewerQueue must be >= 0")
	}
	if spec.RenderWorkers < 0 {
		add("renderWorkers", "negative", "renderWorkers must be >= 0")
	}

	if tf := spec.TF; tf != nil {
		switch strings.ToLower(tf.Kind) {
		case "", "fire", "grayscale", "cool":
		case "piecewise":
			if len(tf.Points) == 0 {
				add("tf.points", "required", "piecewise transfer function needs at least one control point")
			}
			// Check Map's documented precondition on the float32 points the
			// renderer will actually see (so float64 values that collapse to
			// the same float32 are caught as duplicates here, not later).
			if pw, ok := tf.transferFunction().(PiecewiseTF); ok {
				if i, duplicate, valid := pw.Check(); !valid {
					if duplicate {
						add("tf.points", "duplicate", fmt.Sprintf("piecewise control point %d repeats the previous value; values must be distinct", i))
					} else {
						add("tf.points", "unordered", "piecewise control points must be in strictly increasing value order")
					}
				}
			}
		default:
			add("tf.kind", "unknown_enum", fmt.Sprintf("unknown transfer function kind %q (want fire, grayscale, cool or piecewise)", tf.Kind))
		}
		if tf.Threshold < 0 || tf.OpacityScale < 0 {
			add("tf", "negative", "transfer function threshold and opacity scale must be >= 0")
		}
	}

	if len(fields) == 0 {
		return nil
	}
	return &ValidationError{Fields: fields}
}

// Canonical returns the spec with every render-relevant field normalized to
// the value the pipeline would actually use: enums lowercased, empty
// selectors replaced by their defaults, zero sizes replaced by the data
// generator's defaults, fields the selected source kind ignores zeroed, and
// a nil transfer function replaced by the concrete default colormap. Two
// specs that describe the same render canonicalize to equal values, which is
// what makes RenderHash a coalescing key. The receiver is not modified.
func (spec RunSpec) Canonical() RunSpec {
	c := spec

	c.Source.Kind = strings.ToLower(c.Source.Kind)
	if c.Source.Kind == "" {
		c.Source.Kind = "combustion"
	}
	switch c.Source.Kind {
	case "combustion", "cosmology":
		// datagen defaults: 64^3 volume, one timestep.
		if c.Source.NX <= 0 {
			c.Source.NX = 64
		}
		if c.Source.NY <= 0 {
			c.Source.NY = 64
		}
		if c.Source.NZ <= 0 {
			c.Source.NZ = 64
		}
		if c.Source.Timesteps <= 0 {
			c.Source.Timesteps = 1
		}
		c.Source.Scale = 0
		c.Source.Base = ""
	case "paper":
		// The paper source derives its grid from the scale divisor alone.
		if c.Source.Scale <= 0 {
			c.Source.Scale = 8
		}
		if c.Source.Timesteps <= 0 {
			c.Source.Timesteps = 1
		}
		c.Source.NX, c.Source.NY, c.Source.NZ = 0, 0, 0
		c.Source.Seed = 0
		c.Source.Base = ""
	case "fabric":
		c.Source.Seed = 0
		c.Source.Scale = 0
	}

	if c.PEs <= 0 {
		c.PEs = 4
	}
	if c.Timesteps < 0 {
		c.Timesteps = 0
	}
	c.Mode = strings.ToLower(c.Mode)
	if c.Mode == "" {
		c.Mode = "serial"
	}
	c.Transport = strings.ToLower(c.Transport)
	if c.Transport == "" {
		c.Transport = "local"
	}
	// The render pool is bit-exact at any worker count, so RenderWorkers is a
	// throughput knob like the transport fields — two submissions differing
	// only here describe the same render. Canonicalization drops it, which is
	// what keeps it out of RenderHash and the coalescing key.
	c.RenderWorkers = 0

	tf := TransferSpec{Kind: "fire"}
	if c.TF != nil {
		tf = *c.TF
		tf.Kind = strings.ToLower(tf.Kind)
		if tf.Kind == "" {
			tf.Kind = "fire"
		}
		tf.Points = append([]TransferPoint(nil), tf.Points...)
	}
	switch tf.Kind {
	case "fire":
		if tf.Threshold == 0 {
			tf.Threshold = 0.05
		}
		if tf.OpacityScale == 0 {
			tf.OpacityScale = 0.7
		}
	case "grayscale":
		if tf.OpacityScale == 0 {
			tf.OpacityScale = 1
		}
		tf.Threshold = 0
	case "cool":
		if tf.OpacityScale == 0 {
			tf.OpacityScale = 0.5
		}
		tf.Threshold = 0
	case "piecewise":
		tf.Threshold = 0
		tf.OpacityScale = 0
	}
	c.TF = &tf

	return c
}

// RenderHash is the content address of the frames this spec renders: a
// stable hex digest over the canonicalized render-relevant subset — source
// identity, decomposition, timestep count, render mode, transfer function
// and view parameters. Delivery concerns (transport, stripe lanes, viewer
// count and queues, bandwidth shaping, instrumentation) are deliberately
// excluded: two submissions that differ only in how frames are delivered
// render identical pixels, so the scheduler coalesces them onto one live
// run and the frame cache serves both. The leading "v1|" versions the hash
// layout; bump it whenever a render-relevant field is added.
func (spec RunSpec) RenderHash() string {
	c := spec.Canonical()
	var b strings.Builder
	b.WriteString("v1")
	kv := func(k, v string) {
		b.WriteByte('|')
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(v)
	}
	kvi := func(k string, v int64) { kv(k, strconv.FormatInt(v, 10)) }
	kvf := func(k string, v float64) { kv(k, strconv.FormatFloat(v, 'g', -1, 64)) }

	kv("src", c.Source.Kind)
	kvi("nx", int64(c.Source.NX))
	kvi("ny", int64(c.Source.NY))
	kvi("nz", int64(c.Source.NZ))
	kvi("sts", int64(c.Source.Timesteps))
	kvi("seed", c.Source.Seed)
	kvi("scale", int64(c.Source.Scale))
	kv("base", c.Source.Base)
	if c.Source.Kind == "fabric" && c.Fabric != nil {
		// Cluster identity only: epoch, replication and timeouts change where
		// blocks live, not what the frames look like.
		for _, cl := range c.Fabric.Clusters {
			kv("cluster", cl.Name+"@"+cl.Master)
		}
	}
	kvi("pes", int64(c.PEs))
	kvi("ts", int64(c.Timesteps))
	kv("mode", c.Mode)
	kv("tf", c.TF.canonicalString())
	if c.FollowView {
		kv("follow", "1")
	}
	kvf("angle", c.ViewAngleDeg)

	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}

// canonicalString flattens a (canonicalized) transfer spec into a stable
// textual form for hashing and cache keys.
func (t *TransferSpec) canonicalString() string {
	var b strings.Builder
	b.WriteString(t.Kind)
	f := func(v float64) {
		b.WriteByte(',')
		b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
	}
	f(t.Threshold)
	f(t.OpacityScale)
	for _, p := range t.Points {
		b.WriteByte(';')
		for i, v := range []float64{p.Value, p.R, p.G, p.B, p.A} {
			if i > 0 {
				b.WriteByte(':')
			}
			b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
		}
	}
	return b.String()
}

// cacheIdentity derives the frame-cache key components for this spec: the
// dataset identity string and the transfer-function string. The dataset
// identity spans everything that changes the voxels of a timestep — source
// kind, dimensions, seed, scale, base and fabric identity — but not the
// render mode (serial and overlapped rasterize the same pixels) or delivery
// fields. The per-frame decomposition (axis, PE count) is folded in by the
// back end, which knows the axis schedule.
func (spec RunSpec) cacheIdentity() (dataset, tf string) {
	c := spec.Canonical()
	var b strings.Builder
	b.WriteString(c.Source.Kind)
	for _, v := range []int64{int64(c.Source.NX), int64(c.Source.NY), int64(c.Source.NZ), int64(c.Source.Timesteps), c.Source.Seed, int64(c.Source.Scale)} {
		b.WriteByte('/')
		b.WriteString(strconv.FormatInt(v, 10))
	}
	b.WriteByte('/')
	b.WriteString(c.Source.Base)
	if c.Source.Kind == "fabric" && c.Fabric != nil {
		for _, cl := range c.Fabric.Clusters {
			b.WriteByte('/')
			b.WriteString(cl.Name + "@" + cl.Master)
		}
	}
	return b.String(), c.TF.canonicalString()
}
