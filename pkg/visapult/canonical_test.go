package visapult

import (
	"encoding/json"
	"errors"
	"reflect"
	"testing"
)

// Golden hashes pin the v1 render-hash layout: if any of these change, a
// coalescing or cache key changed meaning and the "v1|" prefix in RenderHash
// must be bumped alongside a deliberate update here.
func TestRenderHashGolden(t *testing.T) {
	cases := []struct {
		name string
		spec RunSpec
		want string
	}{
		{"default", RunSpec{},
			"5ed524b415f9349d79fd2f3fef051c824516bd601385268f84f76fbb1736c792"},
		{"quick-combustion", RunSpec{
			Source: SourceSpec{Kind: "combustion", NX: 24, NY: 16, NZ: 16, Timesteps: 2, Seed: 42},
			PEs:    2, Mode: "overlapped"},
			"ccf58422de0ea3abb46297f054889c8b2744a7700579cc1ee5a89a748b711544"},
		{"paper-grayscale", RunSpec{
			Source: SourceSpec{Kind: "paper"},
			TF:     &TransferSpec{Kind: "grayscale"}},
			"46df7487a1323e825ffdb85e6c06ed2657cc721ad8fcaf3622ca61f92aacc17d"},
	}
	for _, tc := range cases {
		if got := tc.spec.RenderHash(); got != tc.want {
			t.Errorf("%s: RenderHash = %s, want %s", tc.name, got, tc.want)
		}
	}
}

// A zero-valued spec and a spec spelling out every default must hash equal:
// canonicalization replaces zero values with the defaults the pipeline would
// actually use.
func TestRenderHashZeroValueIndependence(t *testing.T) {
	explicit := RunSpec{
		Source: SourceSpec{Kind: "combustion", NX: 64, NY: 64, NZ: 64, Timesteps: 1},
		PEs:    4, Mode: "serial",
		TF: &TransferSpec{Kind: "fire", Threshold: 0.05, OpacityScale: 0.7},
	}
	if got, want := explicit.RenderHash(), (RunSpec{}).RenderHash(); got != want {
		t.Errorf("explicit defaults hash %s, zero spec hashes %s", got, want)
	}
}

// Enum case and every delivery-only field must not move the hash: two
// submissions that differ only in how frames are delivered render the same
// pixels and must coalesce.
func TestRenderHashDeliveryIndependence(t *testing.T) {
	base := quickSpec()
	want := base.RenderHash()

	variants := []RunSpec{}
	v := base
	v.Mode = "Overlapped" // case only
	variants = append(variants, v)
	v = base
	v.Source.Kind = "COMBUSTION"
	variants = append(variants, v)
	v = base
	v.Transport = "striped"
	v.StripeLanes = 8
	variants = append(variants, v)
	v = base
	v.Viewers = 5
	v.ViewerQueue = 64
	variants = append(variants, v)
	v = base
	v.ViewerBandwidthMbps = 45
	v.Instrument = true
	v.RenderLoop = true
	variants = append(variants, v)

	for i, spec := range variants {
		if got := spec.RenderHash(); got != want {
			t.Errorf("variant %d: delivery-only change moved the hash: %s != %s", i, got, want)
		}
	}
}

// Render-relevant changes must move the hash.
func TestRenderHashSensitivity(t *testing.T) {
	base := quickSpec()
	want := base.RenderHash()

	change := func(name string, mut func(*RunSpec)) {
		spec := base
		mut(&spec)
		if got := spec.RenderHash(); got == want {
			t.Errorf("%s: render-relevant change did not move the hash", name)
		}
	}
	change("seed", func(s *RunSpec) { s.Source.Seed = 7 })
	change("dims", func(s *RunSpec) { s.Source.NX = 32 })
	change("pes", func(s *RunSpec) { s.PEs = 4 })
	change("mode", func(s *RunSpec) { s.Mode = "serial" })
	change("tf-kind", func(s *RunSpec) { s.TF = &TransferSpec{Kind: "grayscale"} })
	change("tf-threshold", func(s *RunSpec) { s.TF = &TransferSpec{Kind: "fire", Threshold: 0.2} })
	change("tf-opacity", func(s *RunSpec) { s.TF = &TransferSpec{Kind: "fire", OpacityScale: 0.3} })
	change("tf-points", func(s *RunSpec) {
		s.TF = &TransferSpec{Kind: "piecewise", Points: []TransferPoint{{Value: 0.5, R: 1, A: 1}}}
	})
	change("view-angle", func(s *RunSpec) { s.ViewAngleDeg = 30 })
	change("follow-view", func(s *RunSpec) { s.FollowView = true })

	// Two distinct piecewise tables must hash differently from each other.
	a, b := base, base
	a.TF = &TransferSpec{Kind: "piecewise", Points: []TransferPoint{{Value: 0.2, R: 1, A: 0.5}}}
	b.TF = &TransferSpec{Kind: "piecewise", Points: []TransferPoint{{Value: 0.2, R: 1, A: 0.6}}}
	if a.RenderHash() == b.RenderHash() {
		t.Error("distinct piecewise control points hashed equal")
	}
}

// RenderWorkers tunes how the pixels are computed, never which pixels: the
// parallel kernel is bit-exact against the serial one, so the field must stay
// out of the render identity. Any worker count must coalesce, cache-hit, and
// hash with any other — this test pins that exclusion so the field is never
// accidentally folded into Canonical()'s surviving fields or RenderHash.
func TestRenderWorkersOutsideRenderIdentity(t *testing.T) {
	base := quickSpec()
	want := base.RenderHash()
	wd, wt := base.cacheIdentity()

	for _, workers := range []int{1, 2, 8, 64} {
		spec := base
		spec.RenderWorkers = workers
		if got := spec.RenderHash(); got != want {
			t.Errorf("renderWorkers=%d moved the render hash: %s != %s", workers, got, want)
		}
		gd, gt := spec.cacheIdentity()
		if gd != wd || gt != wt {
			t.Errorf("renderWorkers=%d moved the cache identity", workers)
		}
		if c := spec.Canonical(); c.RenderWorkers != 0 {
			t.Errorf("Canonical kept renderWorkers=%d; execution tuning must not survive canonicalization", c.RenderWorkers)
		}
	}
}

// Canonical is a value transformation: the receiver (including its TF
// pointer) must not be mutated.
func TestCanonicalDoesNotMutate(t *testing.T) {
	tf := &TransferSpec{Kind: "Fire"}
	spec := RunSpec{Mode: "Overlapped", TF: tf}
	c := spec.Canonical()

	if spec.Mode != "Overlapped" || tf.Kind != "Fire" || tf.Threshold != 0 {
		t.Errorf("Canonical mutated its receiver: %+v tf=%+v", spec, tf)
	}
	if c.Mode != "overlapped" || c.TF.Kind != "fire" || c.TF.Threshold != 0.05 {
		t.Errorf("Canonical did not normalize: %+v tf=%+v", c, c.TF)
	}
}

// The new RunSpec fields (the TF table) must survive the dispatch protocol's
// JSON framing byte-for-byte: a worker must reconstruct the same render (and
// the same cache identity) the scheduler hashed.
func TestRunSpecJSONRoundTripThroughDispatch(t *testing.T) {
	spec := quickSpec()
	spec.Viewers = 2
	spec.TF = &TransferSpec{Kind: "piecewise", Points: []TransferPoint{
		{Value: 0.1, R: 0.2, G: 0.3, B: 0.4, A: 0.5},
		{Value: 0.9, R: 1, G: 0.5, B: 0, A: 1},
	}}

	raw, err := json.Marshal(workerRequest{Op: opRun, Name: "rt", Spec: &spec})
	if err != nil {
		t.Fatal(err)
	}
	var req workerRequest
	if err := json.Unmarshal(raw, &req); err != nil {
		t.Fatal(err)
	}
	if req.Spec == nil {
		t.Fatal("spec lost in round trip")
	}
	if !reflect.DeepEqual(*req.Spec, spec) {
		t.Errorf("round trip changed the spec:\n got %+v\nwant %+v", *req.Spec, spec)
	}
	if got, want := req.Spec.RenderHash(), spec.RenderHash(); got != want {
		t.Errorf("round trip moved the render hash: %s != %s", got, want)
	}
	gd, gt := req.Spec.cacheIdentity()
	wd, wt := spec.cacheIdentity()
	if gd != wd || gt != wt {
		t.Errorf("round trip moved the cache identity: (%s, %s) != (%s, %s)", gd, gt, wd, wt)
	}
}

func TestValidateFieldErrors(t *testing.T) {
	spec := RunSpec{
		Source:        SourceSpec{Kind: "volcano", Timesteps: -1},
		PEs:           -2,
		Mode:          "quantum",
		Transport:     "carrier-pigeon",
		TF:            &TransferSpec{Kind: "piecewise"},
		RenderWorkers: -1,
	}
	err := spec.Validate()
	if err == nil {
		t.Fatal("expected a validation error")
	}
	if !errors.Is(err, ErrInvalidSpec) {
		t.Errorf("validation error does not match ErrInvalidSpec: %v", err)
	}
	var verr *ValidationError
	if !errors.As(err, &verr) {
		t.Fatalf("expected *ValidationError, got %T", err)
	}
	got := make(map[string]string)
	for _, f := range verr.Fields {
		got[f.Field] = f.Code
	}
	want := map[string]string{
		"source.kind":      "unknown_enum",
		"source.timesteps": "negative",
		"pes":              "negative",
		"mode":             "unknown_enum",
		"transport":        "unknown_enum",
		"tf.points":        "required",
		"renderWorkers":    "negative",
	}
	for field, code := range want {
		if got[field] != code {
			t.Errorf("field %s: code %q, want %q (all: %v)", field, got[field], code, got)
		}
	}

	// Unordered piecewise points.
	spec = quickSpec()
	spec.TF = &TransferSpec{Kind: "piecewise", Points: []TransferPoint{{Value: 0.9}, {Value: 0.1}}}
	err = spec.Validate()
	if !errors.As(err, &verr) {
		t.Fatalf("expected *ValidationError for unordered points, got %v", err)
	}
	if len(verr.Fields) != 1 || verr.Fields[0].Code != "unordered" {
		t.Errorf("unordered points: got %+v", verr.Fields)
	}

	// Duplicate control points get their own code: the binary-search Map
	// precondition is *strictly* increasing values, and "you listed 0.5
	// twice" is a better diagnostic than "unordered".
	spec = quickSpec()
	spec.TF = &TransferSpec{Kind: "piecewise", Points: []TransferPoint{{Value: 0.1}, {Value: 0.5}, {Value: 0.5}}}
	err = spec.Validate()
	if !errors.As(err, &verr) {
		t.Fatalf("expected *ValidationError for duplicate points, got %v", err)
	}
	if len(verr.Fields) != 1 || verr.Fields[0].Code != "duplicate" {
		t.Errorf("duplicate points: got %+v", verr.Fields)
	}

	// A healthy spec validates clean.
	healthy := quickSpec()
	if err := healthy.Validate(); err != nil {
		t.Errorf("quickSpec should validate: %v", err)
	}
	zero := &RunSpec{}
	if err := zero.Validate(); err != nil {
		t.Errorf("zero spec should validate: %v", err)
	}
}

// Options must reject an invalid spec through the same shared Validate path
// the scheduler and the daemon use.
func TestOptionsValidates(t *testing.T) {
	spec := quickSpec()
	spec.Mode = "quantum"
	if _, err := spec.Options(); !errors.Is(err, ErrInvalidSpec) {
		t.Errorf("Options: got %v, want ErrInvalidSpec", err)
	}
	m := NewManager(1)
	defer m.Close()
	if err := m.CreateSpec("bad", spec); !errors.Is(err, ErrInvalidSpec) {
		t.Errorf("CreateSpec: got %v, want ErrInvalidSpec", err)
	}
}
