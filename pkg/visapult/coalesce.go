package visapult

import (
	"context"
	"errors"
	"fmt"
	"time"

	"visapult/internal/core"
)

// Run coalescing: spec-described submissions whose canonical render hash
// (RunSpec.RenderHash) matches a live run do not render again. The first
// submission of a hash becomes the coalesce leader and executes normally —
// locally or on a remote worker — while later identical submissions become
// followers: they receive the leader's frame metrics live, attach their
// viewers to the leader's fan-out (locally through the FanoutControl, or
// across the dispatch protocol for remotely placed leaders), and adopt the
// leader's result. At the paper's million-viewer scale this is the request
// dedup in front of the frame cache: N identical submissions cost one render.
//
// Coalescing is wire-version neutral: a remotely placed leader's frame
// metrics arrive through whichever dispatch wire the worker negotiated
// (binary v2 frames or JSON v1 lines — see internal/wire's dispatch codec),
// and the relay below fans the decoded FrameMetric values out to followers
// identically. Followers never hold their own dispatch connection.

// viewerPort abstracts where a run's fan-out lives: in-process behind a
// core.FanoutControl, or on a remote worker behind the dispatch protocol's
// attach/detach/viewers control messages.
type viewerPort interface {
	attach(ctx context.Context, id string) error
	detach(ctx context.Context, id string) error
	viewers(ctx context.Context) ([]ViewerDelivery, error)
}

// localPort adapts a live in-process fan-out control.
type localPort struct{ fc *core.FanoutControl }

func (p localPort) attach(_ context.Context, id string) error { return p.fc.Attach(id) }
func (p localPort) detach(_ context.Context, id string) error { return p.fc.Detach(id) }
func (p localPort) viewers(_ context.Context) ([]ViewerDelivery, error) {
	return p.fc.Viewers(), nil
}

// viewerOpTimeout bounds one remote viewer control exchange when the caller
// supplies no deadline of its own.
const viewerOpTimeout = 30 * time.Second

// coalesceRetry paces follower attach retries while the leader's fan-out is
// not live yet (its pipeline is still starting on the worker).
const coalesceRetry = 100 * time.Millisecond

// claimCoalesce resolves the coalesce leadership for run r: it returns nil
// when r becomes (or already is) the leader for its render key, or the
// current live leader r must follow. Runs without a render key (non-spec) are
// always their own leader.
func (m *Manager) claimCoalesce(r *managedRun) *managedRun {
	if r.renderKey == "" {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	cur, ok := m.coalesce[r.renderKey]
	if ok && cur != r {
		cur.mu.Lock()
		terminal := cur.state.Terminal()
		cur.mu.Unlock()
		if !terminal {
			return cur
		}
	}
	m.coalesce[r.renderKey] = r
	return nil
}

// releaseCoalesce drops r's leadership claim once its execution ends, so the
// next identical submission starts a fresh render (typically served straight
// from the frame cache).
func (m *Manager) releaseCoalesce(r *managedRun) {
	if r.renderKey == "" {
		return
	}
	m.mu.Lock()
	if m.coalesce[r.renderKey] == r {
		delete(m.coalesce, r.renderKey)
	}
	m.mu.Unlock()
}

// executeSpec is the execution loop of a spec-described run: follow the live
// leader rendering the same content if there is one, otherwise lead — place
// the run through the scheduler. A follower whose leader fails or is
// cancelled re-enters the loop (it may then become the leader itself),
// bounded by the same attempt budget remote placement uses.
func (m *Manager) executeSpec(r *managedRun, ctx context.Context) {
	for {
		leader := m.claimCoalesce(r)
		if leader == nil {
			m.executeRemote(r, ctx, *r.spec)
			m.releaseCoalesce(r)
			return
		}
		retry := m.follow(r, ctx, leader)
		if !retry {
			return
		}
	}
}

// follow rides run r on the given coalesce leader: relay the leader's frame
// metrics (history first, then live), attach r's viewers to the leader's
// fan-out, and adopt the leader's result. It reports whether r should
// re-enter the execution loop because the leader did not finish successfully.
func (m *Manager) follow(r *managedRun, ctx context.Context, leader *managedRun) (retry bool) {
	if !r.beginAttempt("coalesced:"+leader.name, "") {
		return false // cancelled in the meantime
	}
	leader.addFollower(r)
	defer leader.removeFollower(r)

	// Attach this submission's viewers to the leader's fan-out. Best-effort:
	// a leader submitted without viewers has no fan-out to join, and the
	// follower still shares the metrics stream and the result.
	if r.spec.Viewers >= 1 {
		for i := 0; i < r.spec.Viewers; i++ {
			id := fmt.Sprintf("%s/v%d", r.name, i)
			if err := m.attachToLeader(ctx, leader, id); err != nil {
				break // leader finished or has no fan-out; stop trying
			}
		}
	}

	select {
	case <-leader.done:
	case <-ctx.Done():
		r.finish(nil, ctx.Err())
		return false
	}

	leader.mu.Lock()
	state, res, lerr := leader.state, leader.result, leader.err
	leader.mu.Unlock()
	if state == StateDone {
		r.finish(res, nil)
		return false
	}
	// The leader failed or was cancelled; that outcome is the leader's, not
	// this submission's. Re-queue and try again — the retry claims leadership
	// (rendering from the frame cache where the dead leader got far enough to
	// populate it) unless another submission already took over.
	if lerr == nil {
		lerr = errors.New("visapult: coalesce leader ended without a result")
	}
	errMsg := fmt.Sprintf("coalesce leader %q: %v", leader.name, lerr)
	if r.attemptCount() >= m.attemptBudget() {
		r.finish(nil, fmt.Errorf("visapult: run %q failed after %d attempts: %s", r.name, r.attemptCount(), errMsg))
		return false
	}
	return r.requeue(errMsg)
}

// attachToLeader attaches one viewer id to the leader's fan-out, waiting for
// the leader's viewer port to come live first (the leader may still be
// queued, or its pipeline still starting on a remote worker). It returns nil
// on success and an error once attaching is hopeless (leader finished, ctx
// cancelled, or the fan-out rejected the viewer for a non-transient reason).
func (m *Manager) attachToLeader(ctx context.Context, leader *managedRun, id string) error {
	for {
		port, portChange := leader.portState()
		if port != nil {
			err := port.attach(ctx, id)
			if err == nil || !errors.Is(err, ErrNoFanout) {
				return err
			}
			// The port is live but the fan-out is not (pipeline still
			// starting, or the leader has no viewers at all). Retry on a
			// short pace until the leader's run settles it.
			select {
			case <-time.After(coalesceRetry):
				continue
			case <-leader.done:
				return fmt.Errorf("run %q finished before viewer %q attached: %w", leader.name, id, ErrNoFanout)
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		select {
		case <-portChange:
		case <-leader.done:
			return fmt.Errorf("run %q finished before viewer %q attached: %w", leader.name, id, ErrNoFanout)
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// addFollower registers f to receive r's frame metrics: the history recorded
// so far is replayed first, then live frames are relayed as r observes them.
// The replay nests f.observe (follower's mu) under r.mu — lock order is
// always leader before follower, and a follower never takes its leader's mu.
func (r *managedRun) addFollower(f *managedRun) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, fm := range r.metrics {
		f.observe(fm)
	}
	r.relays = append(r.relays, f)
}

// removeFollower unregisters f from r's metric relay.
func (r *managedRun) removeFollower(f *managedRun) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, g := range r.relays {
		if g == f {
			r.relays = append(r.relays[:i], r.relays[i+1:]...)
			return
		}
	}
}

// setPort publishes the run's live viewer port and wakes every waiter
// blocked in portState.
func (r *managedRun) setPort(p viewerPort) {
	r.mu.Lock()
	r.port = p
	close(r.portWait)
	r.portWait = make(chan struct{})
	r.mu.Unlock()
}

// clearPort retracts the viewer port when a placement ends (the next attempt
// publishes a new one). Waiters keep waiting; they only care about a port
// appearing.
func (r *managedRun) clearPort() {
	r.mu.Lock()
	r.port = nil
	r.mu.Unlock()
}

// portState snapshots the run's viewer port and the channel that closes next
// time the port changes.
func (r *managedRun) portState() (viewerPort, <-chan struct{}) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.port, r.portWait
}

// viewerPortOf resolves the port viewer operations on run r should use: the
// run's own, or — while r is live as a coalesced follower — its leader's.
func (m *Manager) viewerPortOf(r *managedRun) (viewerPort, error) {
	port, _ := r.portState()
	if port != nil {
		return port, nil
	}
	// A live follower proxies viewer operations to its leader.
	if leader := m.leaderOf(r); leader != nil {
		if port, _ = leader.portState(); port != nil {
			return port, nil
		}
	}
	return nil, fmt.Errorf("run %q: %w", r.name, ErrNoFanout)
}

// leaderOf returns the live coalesce leader run r currently follows, nil
// when r is not following anyone.
func (m *Manager) leaderOf(r *managedRun) *managedRun {
	if r.renderKey == "" {
		return nil
	}
	m.mu.Lock()
	leader := m.coalesce[r.renderKey]
	m.mu.Unlock()
	if leader == nil || leader == r {
		return nil
	}
	// Only a run actually riding the leader proxies to it.
	r.mu.Lock()
	following := r.state == StateRunning && r.workerID == "coalesced:"+leader.name
	r.mu.Unlock()
	if !following {
		return nil
	}
	return leader
}

// viewerCtx bounds one viewer control operation against the manager's
// lifetime: remote attaches travel the dispatch connection and must not
// outlive Close.
func (m *Manager) viewerCtx() (context.Context, context.CancelFunc) {
	return context.WithTimeout(m.baseCtx, viewerOpTimeout)
}
