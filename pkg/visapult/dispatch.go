package visapult

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"visapult/internal/wire"
)

// Client side of the scheduler's control protocol: dial a worker, ship a
// RunSpec, relay the frame stream, and classify how the exchange ended. The
// classification is what drives the Manager's failure handling — a
// remoteRunError means the worker is healthy and the run itself failed (retry
// elsewhere, worker stays live), while any transport-level error means the
// worker is gone (retry elsewhere AND mark the worker dead).
//
// The conversation runs over whichever wire version the pool negotiated for
// the worker (the ping reply's advertised maximum, capped by the manager's):
// v1 is newline-delimited JSON, v2 the binary framing of
// internal/wire/dispatch.go. Both carry the same message flow; v2
// additionally streams raw slab payloads back when asked, so the dispatcher
// can seed its own frame cache from remote renders.

// remoteRunError is a run failure reported by a live worker over the
// protocol, as opposed to a dropped connection.
type remoteRunError struct{ msg string }

func (e *remoteRunError) Error() string { return e.msg }

// errWorkerBusy is a dispatch rejected by a worker's own capacity gate. The
// pool's slot accounting makes this rare (another client of the same worker,
// or a capacity registered higher than the worker's); it is retried without
// declaring the worker dead.
var errWorkerBusy = errors.New("visapult: worker at capacity")

// errDispatchClosed reports a viewer control operation attempted after the
// run's dispatch connection ended.
var errDispatchClosed = errors.New("visapult: dispatch connection closed")

// dispatchHandle is the client end of a live dispatched run's control
// channel: it multiplexes seq-numbered viewer operations (attach, detach,
// viewers) onto the same connection the frame stream rides, and correlates
// the worker's ctrl acks back to their waiting callers. The wire version is
// abstracted behind sendCtrl.
type dispatchHandle struct {
	conn net.Conn

	wmu      sync.Mutex                                      // serializes control writes on conn
	sendCtrl func(op string, seq int64, viewer string) error // guarded by wmu

	mu      sync.Mutex
	seq     int64                  // guarded by mu
	pending map[int64]chan ctrlAck // guarded by mu
	closed  bool                   // guarded by mu
}

// newJSONDispatchHandle builds the v1 handle: control ops go out as JSON
// workerRequest lines.
func newJSONDispatchHandle(conn net.Conn, enc *json.Encoder) *dispatchHandle {
	sendCtrl := func(op string, seq int64, viewer string) error {
		return enc.Encode(workerRequest{Op: op, Seq: seq, Viewer: viewer})
	}
	return &dispatchHandle{conn: conn, sendCtrl: sendCtrl, pending: make(map[int64]chan ctrlAck)}
}

// newV2DispatchHandle builds the binary handle: control ops go out as
// fixed-layout DCtrl frames through pooled encode buffers.
func newV2DispatchHandle(conn net.Conn, dc *wire.DispatchConn) *dispatchHandle {
	sendCtrl := func(op string, seq int64, viewer string) error {
		var wop wire.DispatchCtrlOp
		switch op {
		case opCancel:
			wop = wire.DCtrlCancel
		case opAttach:
			wop = wire.DCtrlAttach
		case opDetach:
			wop = wire.DCtrlDetach
		case opViewers:
			wop = wire.DCtrlViewers
		default:
			return fmt.Errorf("visapult: unknown control op %q", op)
		}
		c := wire.DispatchCtrl{Op: wop, Seq: seq, Viewer: viewer}
		buf := wire.GetDispatchBuf()
		*buf = c.Append(*buf)
		err := dc.WriteFrame(wire.DCtrl, *buf)
		wire.PutDispatchBuf(buf)
		return err
	}
	return &dispatchHandle{conn: conn, sendCtrl: sendCtrl, pending: make(map[int64]chan ctrlAck)}
}

// roundTrip sends one control request and waits for its ack. The write is
// deadline-bounded; the wait is bounded by ctx and by the connection's
// lifetime (fail closes every pending channel).
func (h *dispatchHandle) roundTrip(ctx context.Context, op, viewer string) (ctrlAck, error) {
	ch := make(chan ctrlAck, 1)
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return ctrlAck{}, errDispatchClosed
	}
	h.seq++
	seq := h.seq
	h.pending[seq] = ch
	h.mu.Unlock()

	h.wmu.Lock()
	h.conn.SetWriteDeadline(time.Now().Add(workerIOTimeout)) //nolint:errcheck
	err := h.sendCtrl(op, seq, viewer)
	h.wmu.Unlock()
	if err != nil {
		h.drop(seq)
		return ctrlAck{}, fmt.Errorf("visapult: sending %s to worker: %w", op, err)
	}
	select {
	case ack, ok := <-ch:
		if !ok {
			return ctrlAck{}, errDispatchClosed
		}
		return ack, nil
	case <-ctx.Done():
		h.drop(seq)
		return ctrlAck{}, ctx.Err()
	}
}

func (h *dispatchHandle) drop(seq int64) {
	h.mu.Lock()
	delete(h.pending, seq)
	h.mu.Unlock()
}

// deliver routes one ctrl ack from the frame-stream decode loop to the
// round-trip waiting on its sequence number.
func (h *dispatchHandle) deliver(ack ctrlAck) {
	h.mu.Lock()
	ch := h.pending[ack.Seq]
	delete(h.pending, ack.Seq)
	h.mu.Unlock()
	if ch != nil {
		ch <- ack
	}
}

// fail marks the connection ended and releases every pending round-trip.
func (h *dispatchHandle) fail() {
	h.mu.Lock()
	h.closed = true
	for seq, ch := range h.pending {
		close(ch)
		delete(h.pending, seq)
	}
	h.mu.Unlock()
}

// viewerOp runs one attach/detach against the remote fan-out, translating a
// NoFanout ack back into the ErrNoFanout sentinel local runs produce.
func (h *dispatchHandle) viewerOp(ctx context.Context, op, id string) error {
	ack, err := h.roundTrip(ctx, op, id)
	if err != nil {
		return err
	}
	if ack.NoFanout {
		return fmt.Errorf("remote viewer %q: %w", id, ErrNoFanout)
	}
	if ack.Err != "" {
		return errors.New(ack.Err)
	}
	return nil
}

// remotePort is the viewerPort of a run placed on a remote worker: viewer
// operations travel the run's dispatch connection as control messages.
type remotePort struct{ h *dispatchHandle }

func (p remotePort) attach(ctx context.Context, id string) error {
	return p.h.viewerOp(ctx, opAttach, id)
}

func (p remotePort) detach(ctx context.Context, id string) error {
	return p.h.viewerOp(ctx, opDetach, id)
}

func (p remotePort) viewers(ctx context.Context) ([]ViewerDelivery, error) {
	ack, err := p.h.roundTrip(ctx, opViewers, "")
	if err != nil {
		return nil, err
	}
	if ack.NoFanout {
		return nil, fmt.Errorf("remote run: %w", ErrNoFanout)
	}
	if ack.Err != "" {
		return nil, errors.New(ack.Err)
	}
	return ack.Viewers, nil
}

// pingTimeout bounds a health probe when the caller's context has no
// deadline of its own.
const pingTimeout = 5 * time.Second

// pingWorker checks that a worker answers the control protocol and returns
// its advertised capacity, load and wire version. Pings are always JSON —
// they are the channel wire negotiation itself rides on.
func pingWorker(ctx context.Context, addr string) (WorkerHello, error) {
	// Bound the whole probe — including the dial, which against a
	// blackholed address would otherwise block for the kernel's SYN retry
	// timeout (minutes) when the caller's context has no deadline.
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, pingTimeout)
		defer cancel()
	}
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return WorkerHello{}, err
	}
	defer conn.Close()
	dl, _ := ctx.Deadline()
	conn.SetDeadline(dl)
	if err := json.NewEncoder(conn).Encode(workerRequest{Op: opPing}); err != nil {
		return WorkerHello{}, err
	}
	var rep workerReply
	if err := json.NewDecoder(conn).Decode(&rep); err != nil {
		return WorkerHello{}, err
	}
	if rep.Pong == nil {
		if rep.Error != "" {
			return WorkerHello{}, errors.New(rep.Error)
		}
		return WorkerHello{}, errors.New("visapult: malformed ping reply")
	}
	return *rep.Pong, nil
}

// slabSink receives raw slab payload pairs streamed back by a v2 worker; the
// payloads are freshly decoded and owned by the callee.
type slabSink func(light *wire.LightPayload, heavy *wire.HeavyPayload)

// dispatchRun executes one spec on the worker at addr over the negotiated
// wire version, invoking onFrame for every streamed frame metric, and
// returns the run's result. onHandle, when non-nil, receives the live
// dispatch handle once the run request is on the wire — the scheduler
// publishes it as the run's viewer port so attach/detach reach the worker's
// fan-out; the handle dies with this call. onSlab, when non-nil and the wire
// is v2, asks the worker to stream rendered slab payloads back. Cancelling
// ctx closes the connection, which cancels the run on the worker too.
func dispatchRun(ctx context.Context, addr, name string, spec RunSpec, wireVer int,
	onFrame func(FrameMetric), onHandle func(*dispatchHandle), onSlab slabSink) (*Result, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("visapult: dialing worker %s: %w", addr, err)
	}
	defer conn.Close()

	if wireVer >= wire.DispatchV2 {
		return dispatchRunV2(ctx, conn, addr, name, spec, onFrame, onHandle, onSlab)
	}
	return dispatchRunV1(ctx, conn, addr, name, spec, onFrame, onHandle)
}

// dispatchRunV1 is the JSON leg of dispatchRun.
func dispatchRunV1(ctx context.Context, conn net.Conn, addr, name string, spec RunSpec,
	onFrame func(FrameMetric), onHandle func(*dispatchHandle)) (*Result, error) {
	// A cancelled dispatch context closes the connection: that bounds every
	// exchange below and tells the worker to abort the run.
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()
	enc := json.NewEncoder(conn)
	h := newJSONDispatchHandle(conn, enc)
	defer h.fail()
	h.wmu.Lock()
	conn.SetWriteDeadline(time.Now().Add(workerIOTimeout)) //nolint:errcheck
	err := enc.Encode(workerRequest{Op: opRun, Name: name, Spec: &spec})
	h.wmu.Unlock()
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, ctxErr
		}
		return nil, fmt.Errorf("visapult: sending run %q to worker %s: %w", name, addr, err)
	}
	if onHandle != nil {
		onHandle(h)
	}
	dec := json.NewDecoder(conn)
	for {
		var rep workerReply
		if err := dec.Decode(&rep); err != nil {
			if ctxErr := ctx.Err(); ctxErr != nil {
				return nil, ctxErr
			}
			// The stream ended without a terminal reply: the worker died.
			return nil, fmt.Errorf("visapult: worker %s dropped run %q: %w", addr, name, err)
		}
		switch {
		case rep.Frame != nil:
			if onFrame != nil {
				onFrame(*rep.Frame)
			}
		case rep.Ctrl != nil:
			h.deliver(*rep.Ctrl)
		case rep.Result != nil:
			return rep.Result.result(), nil
		case rep.Error != "":
			if rep.Busy {
				return nil, errWorkerBusy
			}
			return nil, &remoteRunError{rep.Error}
		}
	}
}

// dispatchRunV2 is the binary leg of dispatchRun: magic preamble, one DRun
// frame, then the reply stream.
func dispatchRunV2(ctx context.Context, conn net.Conn, addr, name string, spec RunSpec,
	onFrame func(FrameMetric), onHandle func(*dispatchHandle), onSlab slabSink) (*Result, error) {
	specJSON, err := json.Marshal(&spec)
	if err != nil {
		return nil, fmt.Errorf("visapult: encoding run %q spec: %w", name, err)
	}
	// A cancelled dispatch context closes the connection: that bounds every
	// exchange below and tells the worker to abort the run.
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()
	dc := wire.NewDispatchConn(conn, conn)
	h := newV2DispatchHandle(conn, dc)
	defer h.fail()

	conn.SetWriteDeadline(time.Now().Add(workerIOTimeout)) //nolint:errcheck // re-armed per control write
	if err := wire.WriteDispatchMagic(conn); err == nil {
		rm := wire.DispatchRun{WantSlabs: onSlab != nil, Name: name, Spec: specJSON}
		buf := wire.GetDispatchBuf()
		*buf = rm.Append(*buf)
		err = dc.WriteFrame(wire.DRun, *buf)
		wire.PutDispatchBuf(buf)
	}
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, ctxErr
		}
		return nil, fmt.Errorf("visapult: sending run %q to worker %s: %w", name, addr, err)
	}
	if onHandle != nil {
		onHandle(h)
	}
	for {
		t, payload, err := dc.ReadFrame()
		if err != nil {
			if ctxErr := ctx.Err(); ctxErr != nil {
				return nil, ctxErr
			}
			// The stream ended without a terminal reply: the worker died.
			return nil, fmt.Errorf("visapult: worker %s dropped run %q: %w", addr, name, err)
		}
		switch t {
		case wire.DFrame:
			var df wire.DispatchFrame
			if err := df.Decode(payload); err != nil {
				return nil, fmt.Errorf("visapult: worker %s run %q: %w", addr, name, err)
			}
			if onFrame != nil {
				onFrame(frameMetricOf(df))
			}
		case wire.DCtrlAck:
			var wa wire.DispatchCtrlAck
			if err := wa.Decode(payload); err != nil {
				return nil, fmt.Errorf("visapult: worker %s run %q: %w", addr, name, err)
			}
			ack := ctrlAck{Seq: wa.Seq, Err: wa.Err, NoFanout: wa.NoFanout}
			if len(wa.Viewers) > 0 {
				ack.Viewers = make([]ViewerDelivery, len(wa.Viewers))
				for i, v := range wa.Viewers {
					ack.Viewers[i] = viewerDeliveryOf(v)
				}
			}
			h.deliver(ack)
		case wire.DSlab:
			// DecodeDispatchSlab copies the texture out of the read buffer,
			// so the payloads handed to onSlab are safe to retain.
			light, heavy, err := wire.DecodeDispatchSlab(payload)
			if err != nil {
				return nil, fmt.Errorf("visapult: worker %s run %q slab: %w", addr, name, err)
			}
			if onSlab != nil {
				onSlab(light, heavy)
			}
		case wire.DResult:
			var rr RemoteResult
			if err := json.Unmarshal(payload, &rr); err != nil {
				return nil, fmt.Errorf("visapult: worker %s run %q result: %w", addr, name, err)
			}
			return rr.result(), nil
		case wire.DError:
			var de wire.DispatchError
			if err := de.Decode(payload); err != nil {
				return nil, fmt.Errorf("visapult: worker %s run %q: %w", addr, name, err)
			}
			if de.Busy {
				return nil, errWorkerBusy
			}
			return nil, &remoteRunError{de.Msg}
		default:
			return nil, fmt.Errorf("visapult: worker %s run %q: unexpected %v frame", addr, name, t)
		}
	}
}
