package visapult

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"time"
)

// Client side of the scheduler's control protocol: dial a worker, ship a
// RunSpec, relay the frame stream, and classify how the exchange ended. The
// classification is what drives the Manager's failure handling — a
// remoteRunError means the worker is healthy and the run itself failed (retry
// elsewhere, worker stays live), while any transport-level error means the
// worker is gone (retry elsewhere AND mark the worker dead).

// remoteRunError is a run failure reported by a live worker over the
// protocol, as opposed to a dropped connection.
type remoteRunError struct{ msg string }

func (e *remoteRunError) Error() string { return e.msg }

// errWorkerBusy is a dispatch rejected by a worker's own capacity gate. The
// pool's slot accounting makes this rare (another client of the same worker,
// or a capacity registered higher than the worker's); it is retried without
// declaring the worker dead.
var errWorkerBusy = errors.New("visapult: worker at capacity")

// pingTimeout bounds a health probe when the caller's context has no
// deadline of its own.
const pingTimeout = 5 * time.Second

// pingWorker checks that a worker answers the control protocol and returns
// its advertised capacity and load.
func pingWorker(ctx context.Context, addr string) (WorkerHello, error) {
	// Bound the whole probe — including the dial, which against a
	// blackholed address would otherwise block for the kernel's SYN retry
	// timeout (minutes) when the caller's context has no deadline.
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, pingTimeout)
		defer cancel()
	}
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return WorkerHello{}, err
	}
	defer conn.Close()
	dl, _ := ctx.Deadline()
	conn.SetDeadline(dl)
	if err := json.NewEncoder(conn).Encode(workerRequest{Op: opPing}); err != nil {
		return WorkerHello{}, err
	}
	var rep workerReply
	if err := json.NewDecoder(conn).Decode(&rep); err != nil {
		return WorkerHello{}, err
	}
	if rep.Pong == nil {
		if rep.Error != "" {
			return WorkerHello{}, errors.New(rep.Error)
		}
		return WorkerHello{}, errors.New("visapult: malformed ping reply")
	}
	return *rep.Pong, nil
}

// dispatchRun executes one spec on the worker at addr, invoking onFrame for
// every streamed frame metric, and returns the run's result. Cancelling ctx
// closes the connection, which cancels the run on the worker too.
func dispatchRun(ctx context.Context, addr, name string, spec RunSpec, onFrame func(FrameMetric)) (*Result, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("visapult: dialing worker %s: %w", addr, err)
	}
	defer conn.Close()
	// A cancelled dispatch context closes the connection: that both unblocks
	// the decode loop below and tells the worker to abort the run.
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()

	if err := json.NewEncoder(conn).Encode(workerRequest{Op: opRun, Name: name, Spec: &spec}); err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, ctxErr
		}
		return nil, fmt.Errorf("visapult: sending run %q to worker %s: %w", name, addr, err)
	}
	dec := json.NewDecoder(conn)
	for {
		var rep workerReply
		if err := dec.Decode(&rep); err != nil {
			if ctxErr := ctx.Err(); ctxErr != nil {
				return nil, ctxErr
			}
			// The stream ended without a terminal reply: the worker died.
			return nil, fmt.Errorf("visapult: worker %s dropped run %q: %w", addr, name, err)
		}
		switch {
		case rep.Frame != nil:
			if onFrame != nil {
				onFrame(*rep.Frame)
			}
		case rep.Result != nil:
			return rep.Result.result(), nil
		case rep.Error != "":
			if rep.Busy {
				return nil, errWorkerBusy
			}
			return nil, &remoteRunError{rep.Error}
		}
	}
}
