package visapult

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// Client side of the scheduler's control protocol: dial a worker, ship a
// RunSpec, relay the frame stream, and classify how the exchange ended. The
// classification is what drives the Manager's failure handling — a
// remoteRunError means the worker is healthy and the run itself failed (retry
// elsewhere, worker stays live), while any transport-level error means the
// worker is gone (retry elsewhere AND mark the worker dead).

// remoteRunError is a run failure reported by a live worker over the
// protocol, as opposed to a dropped connection.
type remoteRunError struct{ msg string }

func (e *remoteRunError) Error() string { return e.msg }

// errWorkerBusy is a dispatch rejected by a worker's own capacity gate. The
// pool's slot accounting makes this rare (another client of the same worker,
// or a capacity registered higher than the worker's); it is retried without
// declaring the worker dead.
var errWorkerBusy = errors.New("visapult: worker at capacity")

// errDispatchClosed reports a viewer control operation attempted after the
// run's dispatch connection ended.
var errDispatchClosed = errors.New("visapult: dispatch connection closed")

// dispatchHandle is the client end of a live dispatched run's control
// channel: it multiplexes seq-numbered viewer operations (attach, detach,
// viewers) onto the same connection the frame stream rides, and correlates
// the worker's ctrl acks back to their waiting callers.
type dispatchHandle struct {
	conn net.Conn

	wmu sync.Mutex    // serializes control writes on conn
	enc *json.Encoder // guarded by wmu

	mu      sync.Mutex
	seq     int64                  // guarded by mu
	pending map[int64]chan ctrlAck // guarded by mu
	closed  bool                   // guarded by mu
}

func newDispatchHandle(conn net.Conn) *dispatchHandle {
	conn.SetWriteDeadline(time.Now().Add(workerIOTimeout)) //nolint:errcheck // re-armed per control write
	return &dispatchHandle{conn: conn, enc: json.NewEncoder(conn),
		pending: make(map[int64]chan ctrlAck)}
}

// roundTrip sends one control request and waits for its ack. The write is
// deadline-bounded; the wait is bounded by ctx and by the connection's
// lifetime (fail closes every pending channel).
func (h *dispatchHandle) roundTrip(ctx context.Context, req workerRequest) (ctrlAck, error) {
	ch := make(chan ctrlAck, 1)
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return ctrlAck{}, errDispatchClosed
	}
	h.seq++
	req.Seq = h.seq
	h.pending[req.Seq] = ch
	h.mu.Unlock()

	h.wmu.Lock()
	h.conn.SetWriteDeadline(time.Now().Add(workerIOTimeout)) //nolint:errcheck
	err := h.enc.Encode(req)
	h.wmu.Unlock()
	if err != nil {
		h.drop(req.Seq)
		return ctrlAck{}, fmt.Errorf("visapult: sending %s to worker: %w", req.Op, err)
	}
	select {
	case ack, ok := <-ch:
		if !ok {
			return ctrlAck{}, errDispatchClosed
		}
		return ack, nil
	case <-ctx.Done():
		h.drop(req.Seq)
		return ctrlAck{}, ctx.Err()
	}
}

func (h *dispatchHandle) drop(seq int64) {
	h.mu.Lock()
	delete(h.pending, seq)
	h.mu.Unlock()
}

// deliver routes one ctrl ack from the frame-stream decode loop to the
// round-trip waiting on its sequence number.
func (h *dispatchHandle) deliver(ack ctrlAck) {
	h.mu.Lock()
	ch := h.pending[ack.Seq]
	delete(h.pending, ack.Seq)
	h.mu.Unlock()
	if ch != nil {
		ch <- ack
	}
}

// fail marks the connection ended and releases every pending round-trip.
func (h *dispatchHandle) fail() {
	h.mu.Lock()
	h.closed = true
	for seq, ch := range h.pending {
		close(ch)
		delete(h.pending, seq)
	}
	h.mu.Unlock()
}

// viewerOp runs one attach/detach against the remote fan-out, translating a
// NoFanout ack back into the ErrNoFanout sentinel local runs produce.
func (h *dispatchHandle) viewerOp(ctx context.Context, op, id string) error {
	ack, err := h.roundTrip(ctx, workerRequest{Op: op, Viewer: id})
	if err != nil {
		return err
	}
	if ack.NoFanout {
		return fmt.Errorf("remote viewer %q: %w", id, ErrNoFanout)
	}
	if ack.Err != "" {
		return errors.New(ack.Err)
	}
	return nil
}

// remotePort is the viewerPort of a run placed on a remote worker: viewer
// operations travel the run's dispatch connection as control messages.
type remotePort struct{ h *dispatchHandle }

func (p remotePort) attach(ctx context.Context, id string) error {
	return p.h.viewerOp(ctx, opAttach, id)
}

func (p remotePort) detach(ctx context.Context, id string) error {
	return p.h.viewerOp(ctx, opDetach, id)
}

func (p remotePort) viewers(ctx context.Context) ([]ViewerDelivery, error) {
	ack, err := p.h.roundTrip(ctx, workerRequest{Op: opViewers})
	if err != nil {
		return nil, err
	}
	if ack.NoFanout {
		return nil, fmt.Errorf("remote run: %w", ErrNoFanout)
	}
	if ack.Err != "" {
		return nil, errors.New(ack.Err)
	}
	return ack.Viewers, nil
}

// pingTimeout bounds a health probe when the caller's context has no
// deadline of its own.
const pingTimeout = 5 * time.Second

// pingWorker checks that a worker answers the control protocol and returns
// its advertised capacity and load.
func pingWorker(ctx context.Context, addr string) (WorkerHello, error) {
	// Bound the whole probe — including the dial, which against a
	// blackholed address would otherwise block for the kernel's SYN retry
	// timeout (minutes) when the caller's context has no deadline.
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, pingTimeout)
		defer cancel()
	}
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return WorkerHello{}, err
	}
	defer conn.Close()
	dl, _ := ctx.Deadline()
	conn.SetDeadline(dl)
	if err := json.NewEncoder(conn).Encode(workerRequest{Op: opPing}); err != nil {
		return WorkerHello{}, err
	}
	var rep workerReply
	if err := json.NewDecoder(conn).Decode(&rep); err != nil {
		return WorkerHello{}, err
	}
	if rep.Pong == nil {
		if rep.Error != "" {
			return WorkerHello{}, errors.New(rep.Error)
		}
		return WorkerHello{}, errors.New("visapult: malformed ping reply")
	}
	return *rep.Pong, nil
}

// dispatchRun executes one spec on the worker at addr, invoking onFrame for
// every streamed frame metric, and returns the run's result. onHandle, when
// non-nil, receives the live dispatch handle once the run request is on the
// wire — the scheduler publishes it as the run's viewer port so attach/detach
// reach the worker's fan-out; the handle dies with this call. Cancelling ctx
// closes the connection, which cancels the run on the worker too.
func dispatchRun(ctx context.Context, addr, name string, spec RunSpec, onFrame func(FrameMetric), onHandle func(*dispatchHandle)) (*Result, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("visapult: dialing worker %s: %w", addr, err)
	}
	defer conn.Close()
	// A cancelled dispatch context closes the connection: that both unblocks
	// the decode loop below and tells the worker to abort the run.
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()

	h := newDispatchHandle(conn)
	defer h.fail()
	h.wmu.Lock()
	err = h.enc.Encode(workerRequest{Op: opRun, Name: name, Spec: &spec})
	h.wmu.Unlock()
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, ctxErr
		}
		return nil, fmt.Errorf("visapult: sending run %q to worker %s: %w", name, addr, err)
	}
	if onHandle != nil {
		onHandle(h)
	}
	dec := json.NewDecoder(conn)
	for {
		var rep workerReply
		if err := dec.Decode(&rep); err != nil {
			if ctxErr := ctx.Err(); ctxErr != nil {
				return nil, ctxErr
			}
			// The stream ended without a terminal reply: the worker died.
			return nil, fmt.Errorf("visapult: worker %s dropped run %q: %w", addr, name, err)
		}
		switch {
		case rep.Frame != nil:
			if onFrame != nil {
				onFrame(*rep.Frame)
			}
		case rep.Ctrl != nil:
			h.deliver(*rep.Ctrl)
		case rep.Result != nil:
			return rep.Result.result(), nil
		case rep.Error != "":
			if rep.Busy {
				return nil, errWorkerBusy
			}
			return nil, &remoteRunError{rep.Error}
		}
	}
}
