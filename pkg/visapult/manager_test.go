package visapult

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"
)

func smallOpts() []Option {
	return []Option{
		WithSource(smallSource(2)),
		WithPEs(2),
		WithMode(Overlapped),
	}
}

func TestManagerLifecycleValidation(t *testing.T) {
	m := NewManager(2)
	defer m.Close()

	if err := m.Create(""); err == nil {
		t.Error("expected error for empty run name")
	}
	if err := m.Create("bad"); err == nil {
		t.Error("expected error for a spec with no source")
	}
	if err := m.Create("a", smallOpts()...); err != nil {
		t.Fatal(err)
	}
	if err := m.Create("a", smallOpts()...); err == nil {
		t.Error("expected error for duplicate run name")
	}
	if err := m.Start("nope"); err == nil {
		t.Error("expected error starting an unknown run")
	}
	if _, err := m.Status("nope"); err == nil {
		t.Error("expected error for unknown run status")
	}
	if err := m.Remove("a"); err == nil {
		t.Error("expected error removing a pending run")
	}

	st, err := m.Status("a")
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StatePending {
		t.Errorf("fresh run state %s, want pending", st.State)
	}
}

// TestManagerConcurrentRuns drives more parallel runs than the worker pool
// admits and checks they all complete — the acceptance bar is >= 4
// concurrent sessions with clean teardown.
func TestManagerConcurrentRuns(t *testing.T) {
	before := runtime.NumGoroutine()
	m := NewManager(4)

	const n = 6
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("run-%d", i)
		if err := m.Create(name, smallOpts()...); err != nil {
			t.Fatal(err)
		}
		if err := m.Start(name); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			res, err := m.Wait(context.Background(), name)
			if err != nil {
				t.Errorf("%s: %v", name, err)
				return
			}
			if res.Viewer.FramesCompleted != 2 {
				t.Errorf("%s completed %d frames, want 2", name, res.Viewer.FramesCompleted)
			}
		}(fmt.Sprintf("run-%d", i))
	}
	wg.Wait()

	for _, st := range m.List() {
		if st.State != StateDone {
			t.Errorf("run %s finished in state %s", st.Name, st.State)
		}
		if st.FramesSent != 2*2 {
			t.Errorf("run %s streamed %d frame metrics, want 4", st.Name, st.FramesSent)
		}
		if st.Started.IsZero() || st.Finished.IsZero() {
			t.Errorf("run %s missing lifecycle timestamps: %+v", st.Name, st)
		}
	}

	m.Close()
	checkNoGoroutineLeak(t, before)
}

// TestManagerCancelMidRun cancels a slow running pipeline and checks the
// state lands in Canceled without leaking goroutines.
func TestManagerCancelMidRun(t *testing.T) {
	before := runtime.NumGoroutine()
	m := NewManager(2)

	src := &slowTestSource{Source: smallSource(100), delay: 20 * time.Millisecond}
	if err := m.Create("slow", WithSource(src), WithPEs(2), WithMode(Overlapped)); err != nil {
		t.Fatal(err)
	}
	if err := m.Start("slow"); err != nil {
		t.Fatal(err)
	}

	// Let it get going, then cancel.
	deadline := time.Now().Add(5 * time.Second)
	for src.loads.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if err := m.Cancel("slow"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Wait(context.Background(), "slow"); err == nil {
		t.Fatal("cancelled run returned a nil error from Wait")
	}
	st, err := m.Status("slow")
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCanceled {
		t.Fatalf("cancelled run in state %s", st.State)
	}
	// Cancelling again is a no-op.
	if err := m.Cancel("slow"); err != nil {
		t.Errorf("re-cancel errored: %v", err)
	}

	m.Close()
	checkNoGoroutineLeak(t, before)
}

// TestManagerCancelQueued checks a run cancelled while waiting for a worker
// slot never executes.
func TestManagerCancelQueued(t *testing.T) {
	m := NewManager(1)
	defer m.Close()

	hog := &slowTestSource{Source: smallSource(100), delay: 20 * time.Millisecond}
	if err := m.Create("hog", WithSource(hog), WithPEs(1)); err != nil {
		t.Fatal(err)
	}
	queued := &slowTestSource{Source: smallSource(2), delay: 0}
	if err := m.Create("queued", WithSource(queued), WithPEs(1)); err != nil {
		t.Fatal(err)
	}
	if err := m.Start("hog"); err != nil {
		t.Fatal(err)
	}
	// Wait until the hog actually holds the single worker slot; only then is
	// the second run guaranteed to queue rather than race it for the slot.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if st, _ := m.Status("hog"); st.State == StateRunning {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := m.Start("queued"); err != nil {
		t.Fatal(err)
	}

	if st, _ := m.Status("queued"); st.State != StateQueued {
		t.Fatalf("second run state %s, want queued behind the single worker", st.State)
	}
	if err := m.Cancel("queued"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Wait(context.Background(), "queued"); err == nil {
		t.Fatal("cancelled queued run returned nil from Wait")
	}
	if st, _ := m.Status("queued"); st.State != StateCanceled {
		t.Fatalf("queued run state %s, want canceled", st.State)
	}
	if queued.loads.Load() != 0 {
		t.Errorf("cancelled queued run performed %d loads", queued.loads.Load())
	}
	if err := m.Cancel("hog"); err != nil {
		t.Fatal(err)
	}
	m.Wait(context.Background(), "hog")
}

// TestManagerStateTransitions watches one run move pending -> queued/running
// -> done.
func TestManagerStateTransitions(t *testing.T) {
	m := NewManager(1)
	defer m.Close()

	if err := m.Create("r", smallOpts()...); err != nil {
		t.Fatal(err)
	}
	st, _ := m.Status("r")
	if st.State != StatePending {
		t.Fatalf("state %s, want pending", st.State)
	}
	if err := m.Start("r"); err != nil {
		t.Fatal(err)
	}
	if err := m.Start("r"); err == nil {
		t.Error("double start succeeded")
	}
	if _, err := m.Wait(context.Background(), "r"); err != nil {
		t.Fatal(err)
	}
	st, _ = m.Status("r")
	if st.State != StateDone {
		t.Fatalf("final state %s, want done", st.State)
	}
	if !st.State.Terminal() {
		t.Error("done state not terminal")
	}
	if _, err := m.Result("r"); err != nil {
		t.Errorf("result unavailable after done: %v", err)
	}
	if err := m.Remove("r"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Status("r"); err == nil {
		t.Error("removed run still has status")
	}
}

// TestManagerSubscribe streams metrics while the run executes.
func TestManagerSubscribe(t *testing.T) {
	m := NewManager(1)
	defer m.Close()

	src := &slowTestSource{Source: smallSource(3), delay: 10 * time.Millisecond}
	if err := m.Create("s", WithSource(src), WithPEs(2)); err != nil {
		t.Fatal(err)
	}
	ch, cancel, err := m.Subscribe("s")
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	if err := m.Start("s"); err != nil {
		t.Fatal(err)
	}

	var streamed int
	for range ch {
		streamed++
	}
	if streamed != 2*3 {
		t.Errorf("streamed %d metrics, want 6", streamed)
	}
	snapshot, err := m.Metrics("s")
	if err != nil {
		t.Fatal(err)
	}
	if len(snapshot) != 6 {
		t.Errorf("metrics snapshot has %d entries, want 6", len(snapshot))
	}
	// Subscribing to a finished run yields a closed channel, not an error.
	ch2, cancel2, err := m.Subscribe("s")
	if err != nil {
		t.Fatal(err)
	}
	defer cancel2()
	if _, ok := <-ch2; ok {
		t.Error("subscription to a finished run delivered a metric")
	}
}

// TestManagerWaitContext checks Wait respects its own context.
func TestManagerWaitContext(t *testing.T) {
	m := NewManager(1)
	defer m.Close()

	src := &slowTestSource{Source: smallSource(100), delay: 20 * time.Millisecond}
	if err := m.Create("w", WithSource(src), WithPEs(1)); err != nil {
		t.Fatal(err)
	}
	if err := m.Start("w"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := m.Wait(ctx, "w"); err == nil {
		t.Fatal("Wait ignored its context deadline")
	}
	m.Cancel("w")
	m.Wait(context.Background(), "w")
}

// TestManagerClose cancels everything in flight.
func TestManagerClose(t *testing.T) {
	before := runtime.NumGoroutine()
	m := NewManager(2)

	src := func() Source {
		return &slowTestSource{Source: smallSource(100), delay: 20 * time.Millisecond}
	}
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("c-%d", i)
		if err := m.Create(name, WithSource(src()), WithPEs(1)); err != nil {
			t.Fatal(err)
		}
		if err := m.Start(name); err != nil {
			t.Fatal(err)
		}
	}
	// One run never started: Close must finish it too.
	if err := m.Create("never-started", smallOpts()...); err != nil {
		t.Fatal(err)
	}

	m.Close()
	for _, st := range m.List() {
		if !st.State.Terminal() {
			t.Errorf("run %s left in state %s after Close", st.Name, st.State)
		}
	}
	if err := m.Create("late", smallOpts()...); err == nil {
		t.Error("Create succeeded on a closed manager")
	}
	checkNoGoroutineLeak(t, before)
}

// TestManagerCloseFailsPendingRun is the regression test for the
// never-started-run case: Close must move a run that was created but never
// started to a terminal failed state — not leave it Pending forever — so a
// Wait on it returns instead of blocking.
func TestManagerCloseFailsPendingRun(t *testing.T) {
	m := NewManager(1)
	if err := m.Create("never-started", smallOpts()...); err != nil {
		t.Fatal(err)
	}
	m.Close()

	st, err := m.Status("never-started")
	if err != nil {
		t.Fatal(err)
	}
	if !st.State.Terminal() {
		t.Fatalf("pending run left in non-terminal state %s after Close", st.State)
	}
	if st.State != StateFailed {
		t.Errorf("pending run state %s after Close, want failed", st.State)
	}

	// Wait must return immediately with the terminal error, not block.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := m.Wait(ctx, "never-started"); !errors.Is(err, ErrManagerClosed) {
		t.Errorf("Wait returned %v, want ErrManagerClosed", err)
	}
}

// TestManagerPrune covers the run GC policy: only terminal runs older than
// the retention window are dropped, active and young runs survive.
func TestManagerPrune(t *testing.T) {
	m := NewManager(2)
	defer m.Close()

	if err := m.Create("finished", smallOpts()...); err != nil {
		t.Fatal(err)
	}
	if err := m.Start("finished"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := m.Wait(ctx, "finished"); err != nil {
		t.Fatal(err)
	}
	if err := m.Create("still-pending", smallOpts()...); err != nil {
		t.Fatal(err)
	}

	if n := m.Prune(time.Hour); n != 0 {
		t.Fatalf("Prune(1h) dropped %d young runs", n)
	}
	if n := m.Prune(0); n != 1 {
		t.Fatalf("Prune(0) dropped %d runs, want 1", n)
	}
	if _, err := m.Status("finished"); !errors.Is(err, ErrUnknownRun) {
		t.Fatalf("pruned run still present: %v", err)
	}
	// The pending run is untouchable by Prune regardless of age.
	if _, err := m.Status("still-pending"); err != nil {
		t.Fatalf("pending run pruned: %v", err)
	}
	if n := m.Prune(0); n != 0 {
		t.Fatalf("second Prune dropped %d, want 0", n)
	}
}

// TestSubscribeMetricsCountsDrops pins the backpressure accounting: a
// subscriber that never drains its bounded buffer loses the overflow — and
// the subscription reports exactly how much.
func TestSubscribeMetricsCountsDrops(t *testing.T) {
	m := NewManager(1)
	defer m.Close()
	if err := m.Create("lossy", smallOpts()...); err != nil {
		t.Fatal(err)
	}
	sub, err := m.SubscribeMetrics("lossy")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Cancel()

	r, err := m.get("lossy")
	if err != nil {
		t.Fatal(err)
	}
	// Push past the 64-slot buffer without draining: the excess must be
	// counted, not block the producer.
	const pushed = 70
	for i := 0; i < pushed; i++ {
		r.observe(FrameMetric{Frame: i})
	}
	if d := sub.Dropped(); d != pushed-64 {
		t.Fatalf("Dropped() = %d, want %d", d, pushed-64)
	}
	// The full record is still in the snapshot for re-sync.
	metrics, err := m.Metrics("lossy")
	if err != nil {
		t.Fatal(err)
	}
	if len(metrics) != pushed {
		t.Fatalf("snapshot has %d metrics, want %d", len(metrics), pushed)
	}
}

// TestManagerSlots covers the pool occupancy gauge the /metrics endpoint
// scrapes.
func TestManagerSlots(t *testing.T) {
	m := NewManager(3)
	defer m.Close()
	used, capacity := m.Slots()
	if used != 0 || capacity != 3 {
		t.Fatalf("Slots() = (%d, %d), want (0, 3)", used, capacity)
	}
}
