// Package visapult is the public API of the Visapult reproduction: a remote
// and distributed visualization pipeline after Bethel, Tierney, Lee, Gunter
// and Lau, "Using High-Speed WANs and Network Data Caches to Enable Remote
// and Distributed Visualization" (SC 2000).
//
// The package is the one way to build and run pipelines. A pipeline couples
// a data source (in-memory volumes, a synthetic generator, or a live DPSS
// network cache — all behind the Source interface), the parallel back end
// (slab decomposition, software volume rendering), a transport to the viewer
// (in-process, one TCP connection per PE, or striped sockets), and the
// viewer's scene-graph compositor. Build one with functional options and run
// it under a context:
//
//	p, err := visapult.New(
//		visapult.WithSource(visapult.NewCombustionSource(visapult.CombustionSpec{
//			NX: 80, NY: 32, NZ: 32, Timesteps: 4,
//		})),
//		visapult.WithPEs(4),
//		visapult.WithMode(visapult.Overlapped),
//		visapult.WithTransport(visapult.TransportTCP),
//		visapult.WithInstrumentation(),
//	)
//	if err != nil { ... }
//	res, err := p.Run(ctx)
//
// Cancelling ctx aborts the run at the next phase boundary and tears the
// transport down; no back-end goroutines outlive Run.
//
// For serving many pipelines at once, Manager owns a set of named runs
// behind a bounded worker pool (create, start, cancel, status, live
// per-frame metrics); cmd/visapultd exposes a Manager over HTTP.
//
// The virtual-clock reproduction of the paper's field tests is available
// through Campaign and the campaign presets, and the full E1-E12/X1
// evaluation through Experiments and Extensions.
package visapult

import (
	"context"
	"time"

	"visapult/internal/backend"
	"visapult/internal/core"
)

// Pipeline is one configured end-to-end Visapult run. Create it with New and
// execute it with Run; a Pipeline is reusable — each Run call is an
// independent session.
type Pipeline struct {
	cfg config
}

// New validates the options and builds a pipeline. A Source is required;
// everything else defaults to the paper's first-light shape: 4 PEs, serial
// mode, in-process transport, every timestep the source offers.
func New(opts ...Option) (*Pipeline, error) {
	cfg := defaultConfig()
	for _, opt := range opts {
		opt(&cfg)
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Pipeline{cfg: cfg}, nil
}

// Run executes the pipeline and blocks until every timestep has been loaded,
// rendered, transmitted and assembled — or until ctx is cancelled, which
// aborts the back end at the next phase boundary and returns ctx's error.
func (p *Pipeline) Run(ctx context.Context) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	// Work on a copy: resolving a fabric-fed source mutates the source slot,
	// and a Pipeline must stay reusable across Runs.
	cfg := p.cfg
	src, cleanup, err := cfg.resolveSource()
	if err != nil {
		return nil, err
	}
	defer cleanup()
	cfg.source = src
	if cfg.discardViewer {
		return runBackendOnly(ctx, &cfg)
	}
	sr, err := core.RunSession(ctx, cfg.sessionConfig())
	if err != nil {
		return nil, err
	}
	return &Result{
		Backend:    sr.Backend,
		Viewer:     sr.Viewer,
		Viewers:    sr.Viewers,
		Events:     sr.Events,
		Elapsed:    sr.Elapsed,
		FinalImage: sr.FinalImage,
	}, nil
}

// runBackendOnly executes the back end against a discarding sink — the
// configuration benchmarks use to measure the load/render pipeline without a
// viewer.
func runBackendOnly(ctx context.Context, cfg *config) (*Result, error) {
	be, err := backend.New(backend.Config{
		PEs:       cfg.pes,
		Timesteps: cfg.timesteps,
		Mode:      cfg.mode,
		Axis:      cfg.axis,
		Source:    cfg.source,
		TF:        cfg.tf,
		Sinks:     []backend.FrameSink{&backend.NullSink{}},
		OnFrame:   cfg.onFrame,
	})
	if err != nil {
		return nil, err
	}
	start := time.Now()
	stats, err := be.Run(ctx)
	if err != nil {
		return nil, err
	}
	return &Result{Backend: stats, Elapsed: time.Since(start)}, nil
}

// Result reports what a pipeline run did.
type Result struct {
	// Backend aggregates the back end's per-PE, per-frame phase timings and
	// traffic counters.
	Backend RunStats
	// Viewer is the viewer-side counter snapshot (zero-valued for
	// WithoutViewer runs; the primary viewer's for WithViewers runs).
	Viewer ViewerStats
	// Viewers reports every viewer of a WithViewers fan-out run, in attach
	// order: receive-side counters plus the sender-side delivery record
	// (frames sent and dropped, bytes, queue depth). Empty for classic
	// single-viewer runs.
	Viewers []ViewerResult
	// Events is the merged NetLogger stream (empty unless instrumentation
	// was enabled).
	Events []Event
	// Elapsed is the end-to-end wall-clock time of the run.
	Elapsed time.Duration
	// FinalImage is the viewer's last composited view, nil if the scene
	// stayed empty or the run had no viewer.
	FinalImage *Image
}

// TrafficRatio returns source-side bytes over viewer-side bytes — the
// pipeline reduction factor that makes remote visualization over a WAN
// practical (the paper's experiment E10).
func (r *Result) TrafficRatio() float64 {
	if r.Backend.BytesOut == 0 {
		return 0
	}
	return float64(r.Backend.BytesIn) / float64(r.Backend.BytesOut)
}
