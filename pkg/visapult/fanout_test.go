package visapult

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"
)

// fanoutTestSource returns a small source sized so runs finish quickly but
// still span several frames.
func fanoutTestSource(steps int) Source {
	return NewCombustionSource(CombustionSpec{NX: 16, NY: 8, NZ: 8, Timesteps: steps})
}

func TestPipelineWithViewersMulticastsOverTCP(t *testing.T) {
	const pes, steps, viewers = 2, 3, 3
	p, err := New(
		WithSource(fanoutTestSource(steps)),
		WithPEs(pes),
		WithViewers(viewers),
		WithTransport(TransportTCP),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Viewers) != viewers {
		t.Fatalf("got %d viewer results, want %d", len(res.Viewers), viewers)
	}
	want := pes * steps
	for _, vr := range res.Viewers {
		if vr.Delivery.FramesSent != want || vr.Delivery.FramesDropped != 0 {
			t.Errorf("viewer %s delivery = %+v, want %d sent / 0 dropped", vr.ID, vr.Delivery, want)
		}
		if vr.Stats.PayloadsReceived != want {
			t.Errorf("viewer %s received %d payloads, want %d", vr.ID, vr.Stats.PayloadsReceived, want)
		}
		if vr.Stats.FramesCompleted != steps {
			t.Errorf("viewer %s completed %d frames, want %d", vr.ID, vr.Stats.FramesCompleted, steps)
		}
		if vr.Err != "" {
			t.Errorf("viewer %s serve error: %s", vr.ID, vr.Err)
		}
	}
	// The primary viewer's stats are surfaced in the classic field too.
	if res.Viewer.PayloadsReceived != want {
		t.Errorf("primary viewer stats = %+v, want %d payloads", res.Viewer, want)
	}
	if res.FinalImage == nil {
		t.Error("fan-out run produced no final image")
	}
}

func TestPipelineWithViewersLocalTransport(t *testing.T) {
	const pes, steps, viewers = 2, 2, 2
	p, err := New(
		WithSource(fanoutTestSource(steps)),
		WithPEs(pes),
		WithViewers(viewers),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Viewers) != viewers {
		t.Fatalf("got %d viewer results, want %d", len(res.Viewers), viewers)
	}
	for _, vr := range res.Viewers {
		if vr.Stats.PayloadsReceived != pes*steps {
			t.Errorf("viewer %s received %d payloads, want %d", vr.ID, vr.Stats.PayloadsReceived, pes*steps)
		}
	}
}

func TestWithViewersRejectsWithoutViewer(t *testing.T) {
	_, err := New(WithSource(fanoutTestSource(1)), WithViewers(2), WithoutViewer())
	if err == nil {
		t.Fatal("WithViewers + WithoutViewer validated")
	}
}

func TestManagerAttachDetachViewerMidRun(t *testing.T) {
	mgr := NewManager(2)
	defer mgr.Close()

	// A slow source keeps the run alive long enough to attach mid-run.
	slow := &slowTestSource{Source: fanoutTestSource(8), delay: 30 * time.Millisecond}
	if err := mgr.Create("fan", WithSource(slow), WithPEs(2), WithViewers(1)); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Start("fan"); err != nil {
		t.Fatal(err)
	}

	// Wait for the fan-out to come live.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := mgr.Viewers("fan"); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("run never exposed its fan-out")
		}
		time.Sleep(5 * time.Millisecond)
	}

	if err := mgr.AttachViewer("fan", "late"); err != nil {
		t.Fatalf("AttachViewer: %v", err)
	}
	if err := mgr.AttachViewer("fan", "late"); err == nil {
		t.Fatal("double attach under one id succeeded")
	}
	if err := mgr.AttachViewer("fan", "transient"); err != nil {
		t.Fatalf("AttachViewer transient: %v", err)
	}
	if err := mgr.DetachViewer("fan", "transient"); err != nil {
		t.Fatalf("DetachViewer: %v", err)
	}

	if _, err := mgr.Wait(context.Background(), "fan"); err != nil {
		t.Fatalf("Wait: %v", err)
	}

	vds, err := mgr.Viewers("fan")
	if err != nil {
		t.Fatalf("Viewers after finish: %v", err)
	}
	byID := map[string]ViewerDelivery{}
	for _, d := range vds {
		byID[d.ID] = d
	}
	if len(byID) != 3 {
		t.Fatalf("got %d viewers %v, want viewer-0, late, transient", len(byID), byID)
	}
	if d := byID["late"]; d.FramesSent == 0 {
		t.Errorf("late viewer delivered nothing: %+v", d)
	}
	if d := byID["transient"]; !d.Detached {
		t.Errorf("transient viewer not marked detached: %+v", d)
	}
	if d := byID["viewer-0"]; d.StartFrame != 0 || d.FramesSent == 0 {
		t.Errorf("primary viewer delivery = %+v", d)
	}

	// The run status carries the same snapshot.
	st, err := mgr.Status("fan")
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Viewers) != 3 {
		t.Errorf("status reports %d viewers, want 3", len(st.Viewers))
	}

	// Attach after the run finished must fail: the fan-out is closed.
	if err := mgr.AttachViewer("fan", "too-late"); err == nil {
		t.Error("attach after run end succeeded")
	}
}

func TestManagerViewerOpsWithoutFanout(t *testing.T) {
	mgr := NewManager(1)
	defer mgr.Close()
	if err := mgr.Create("plain", WithSource(fanoutTestSource(1)), WithPEs(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Viewers("plain"); !errors.Is(err, ErrNoFanout) {
		t.Fatalf("Viewers on plain run = %v, want ErrNoFanout", err)
	}
	if err := mgr.AttachViewer("plain", "v"); !errors.Is(err, ErrNoFanout) {
		t.Fatalf("AttachViewer on plain run = %v, want ErrNoFanout", err)
	}
	if _, err := mgr.Viewers("missing"); !errors.Is(err, ErrUnknownRun) {
		t.Fatalf("Viewers on unknown run = %v, want ErrUnknownRun", err)
	}
}

func TestRunSpecViewersRoundTrip(t *testing.T) {
	spec := RunSpec{
		Source:      SourceSpec{Kind: "combustion", NX: 16, NY: 8, NZ: 8, Timesteps: 2},
		PEs:         2,
		Viewers:     2,
		ViewerQueue: 8,
	}
	opts, err := spec.Options()
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Viewers) != 2 {
		t.Fatalf("spec-built run reported %d viewers, want 2", len(res.Viewers))
	}
}

// TestRunBackendMulticast drives the split-process deployment's multicast
// path in-process: one RunBackend feeding two ServeViewer instances, every
// viewer assembling the full frame sequence.
func TestRunBackendMulticast(t *testing.T) {
	const pes, steps, nViewers = 2, 3, 2

	type viewerRun struct {
		addr string
		rep  *ViewerReport
		err  error
		done chan struct{}
	}
	viewers := make([]*viewerRun, nViewers)
	for i := range viewers {
		vr := &viewerRun{done: make(chan struct{})}
		ready := make(chan string, 1)
		go func() {
			defer close(vr.done)
			vr.rep, vr.err = ServeViewer(context.Background(), ViewerConfig{
				ListenAddr: "127.0.0.1:0",
				PEs:        pes,
				OnListen:   func(addr net.Addr) { ready <- addr.String() },
			})
		}()
		select {
		case vr.addr = <-ready:
		case <-time.After(5 * time.Second):
			t.Fatal("viewer never started listening")
		}
		viewers[i] = vr
	}

	addrs := make([]string, nViewers)
	for i, vr := range viewers {
		addrs[i] = vr.addr
	}
	rep, err := RunBackend(context.Background(), BackendConfig{
		ViewerAddrs: addrs,
		PEs:         pes,
		Timesteps:   steps,
		Source:      fanoutTestSource(steps),
	})
	if err != nil {
		t.Fatalf("RunBackend: %v", err)
	}
	if len(rep.Viewers) != nViewers {
		t.Fatalf("report carries %d viewer deliveries, want %d", len(rep.Viewers), nViewers)
	}
	want := pes * steps
	for _, d := range rep.Viewers {
		if d.FramesSent != want || d.FramesDropped != 0 {
			t.Errorf("delivery %s = %+v, want %d sent / 0 dropped", d.ID, d, want)
		}
	}

	for i, vr := range viewers {
		select {
		case <-vr.done:
		case <-time.After(10 * time.Second):
			t.Fatalf("viewer %d never finished", i)
		}
		if vr.err != nil {
			t.Fatalf("viewer %d: %v", i, vr.err)
		}
		if vr.rep.Stats.PayloadsReceived != want {
			t.Errorf("viewer %d received %d payloads, want %d", i, vr.rep.Stats.PayloadsReceived, want)
		}
		if vr.rep.Stats.FramesCompleted != steps {
			t.Errorf("viewer %d completed %d frames, want %d", i, vr.rep.Stats.FramesCompleted, steps)
		}
	}
}

// TestFanoutSpecPlacedOnRemoteWorker: a multi-viewer spec dispatched to a
// remote worker fans out on the worker, and the per-viewer results come back
// over the control protocol.
func TestFanoutSpecPlacedOnRemoteWorker(t *testing.T) {
	addr, stop := startTestWorker(t, 2)
	defer stop()

	mgr := NewManager(1)
	defer mgr.Close()
	if _, err := mgr.RegisterWorker(context.Background(), addr, 0); err != nil {
		t.Fatalf("RegisterWorker: %v", err)
	}

	spec := RunSpec{
		Source:  SourceSpec{Kind: "combustion", NX: 16, NY: 8, NZ: 8, Timesteps: 2},
		PEs:     2,
		Viewers: 2,
	}
	if err := mgr.CreateSpec("remote-fan", spec); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Start("remote-fan"); err != nil {
		t.Fatal(err)
	}
	res, err := mgr.Wait(context.Background(), "remote-fan")
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	st, _ := mgr.Status("remote-fan")
	if st.Worker == "local" || st.Worker == "" {
		t.Fatalf("run executed on %q, want the remote worker", st.Worker)
	}
	if len(res.Viewers) != 2 {
		t.Fatalf("remote result carries %d viewer records, want 2", len(res.Viewers))
	}
	for _, vr := range res.Viewers {
		if vr.Delivery.FramesSent != 2*2 {
			t.Errorf("remote viewer %s delivery = %+v, want 4 pairs", vr.ID, vr.Delivery)
		}
	}
	// Dynamic attach is local-only: a remotely placed run has no local
	// fan-out to attach to.
	if err := mgr.AttachViewer("remote-fan", "extra"); !errors.Is(err, ErrNoFanout) {
		t.Errorf("AttachViewer on remote run = %v, want ErrNoFanout", err)
	}
}
