package visapult

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"visapult/internal/backend/framecache"
	"visapult/internal/core"
	"visapult/internal/wire"
)

// FrameCacheStats is the frame cache's counter snapshot; see
// Manager.FrameCacheStats.
type FrameCacheStats = framecache.Stats

// RunState is the lifecycle state of a managed run.
type RunState int

// Managed run states. Transitions: Pending -> Queued -> Running ->
// {Done, Failed, Canceled}; Cancel short-circuits Pending/Queued runs
// straight to Canceled.
const (
	// StatePending: created, not yet started.
	StatePending RunState = iota
	// StateQueued: started, waiting for a worker-pool slot.
	StateQueued
	// StateRunning: executing on a worker.
	StateRunning
	// StateDone: completed successfully; the Result is available.
	StateDone
	// StateFailed: completed with an error.
	StateFailed
	// StateCanceled: cancelled before or during execution.
	StateCanceled
)

// String implements fmt.Stringer.
func (s RunState) String() string {
	switch s {
	case StatePending:
		return "pending"
	case StateQueued:
		return "queued"
	case StateRunning:
		return "running"
	case StateDone:
		return "done"
	case StateFailed:
		return "failed"
	case StateCanceled:
		return "canceled"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Terminal reports whether the state is final.
func (s RunState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// RunStatus is a point-in-time snapshot of one managed run.
type RunStatus struct {
	Name  string
	State RunState
	// Error is the failure message (empty unless State is Failed or
	// Canceled).
	Error string
	// FramesSent counts (PE, timestep) frame records emitted so far by the
	// current placement — a live progress indicator while the run executes.
	FramesSent int
	// Created, Started and Finished are the lifecycle timestamps; Started
	// and Finished are zero until the run reaches the corresponding state.
	Created  time.Time
	Started  time.Time
	Finished time.Time
	// Worker is the ID of the worker currently (or finally) executing the
	// run — "local" for in-process execution, empty before placement.
	Worker string
	// Attempts is the placement history: one entry per time the scheduler
	// put the run somewhere, including the re-queues after worker failures.
	Attempts []RunAttempt
	// Viewers is the per-viewer delivery snapshot of a fan-out run (one
	// created with a Viewers >= 1 spec or WithViewers), in attach order:
	// frames sent and dropped, queue depth, bytes. Empty for single-viewer
	// runs and for runs placed on remote workers (the deliveries stay with
	// the worker's viewers).
	Viewers []ViewerDelivery
}

// RunAttempt records one placement of a run on a worker (or locally).
type RunAttempt struct {
	// Worker is the pool ID of the worker, or "local".
	Worker string
	// Addr is the worker's control address; empty for local execution.
	Addr    string
	Started time.Time
	// Ended is zero while the attempt is still executing.
	Ended time.Time
	// Error is why the attempt ended, empty on success.
	Error string
}

// Manager error conditions, distinguishable with errors.Is so callers (the
// visapultd HTTP layer, for one) can map them to responses without parsing
// messages.
var (
	// ErrUnknownRun: the named run does not exist.
	ErrUnknownRun = errors.New("visapult: unknown run")
	// ErrRunExists: Create was called with a name already in use.
	ErrRunExists = errors.New("visapult: run already exists")
	// ErrManagerClosed: the manager is shut down.
	ErrManagerClosed = errors.New("visapult: manager is closed")
	// ErrRunNotPending: Start was called on a run past the pending state.
	ErrRunNotPending = errors.New("visapult: run is not pending")
	// ErrRunActive: Remove was called on a run that has not finished.
	ErrRunActive = errors.New("visapult: run is still active")
	// ErrNoResult: Result was called on a run not in StateDone.
	ErrNoResult = errors.New("visapult: run has no result")
	// ErrNoFanout: a viewer operation was attempted on a run without a live
	// fan-out stage — it was not created with Viewers >= 1, or its pipeline
	// has not started executing yet. Runs placed on remote workers are
	// reachable: their viewer operations travel the dispatch connection.
	ErrNoFanout = errors.New("visapult: run has no viewer fan-out")
)

// Manager owns a set of named pipeline runs and executes them on a bounded
// local worker pool — or, once remote workers are registered with
// RegisterWorker, schedules spec-described runs across them with
// failure-aware re-queueing. All methods are safe for concurrent use.
type Manager struct {
	sem  chan struct{}
	pool *workerPool

	mu          sync.Mutex
	runs        map[string]*managedRun // guarded by mu
	closed      bool                   // guarded by mu
	maxAttempts int                    // guarded by mu
	// coalesce maps each render hash to the run currently leading it: the
	// run identical submissions ride instead of rendering again.
	coalesce map[string]*managedRun // guarded by mu
	// frameCache is the shared slab-texture cache spec-described local runs
	// render into and replay from; nil until SetFrameCacheCapacity enables it.
	// Runs placed on v2 workers seed it remotely through slab delivery.
	frameCache *framecache.Cache // guarded by mu
	// maxWire caps the dispatch wire version negotiated with workers;
	// SetMaxWireVersion(1) pins every dispatch to JSON v1.
	maxWire int // guarded by mu
	// renderWorkers is the default render-pool size applied to locally
	// executed runs that do not set their own; 0 leaves the facade default
	// (GOMAXPROCS). guarded by mu
	renderWorkers int

	baseCtx   context.Context
	cancelAll context.CancelFunc
	wg        sync.WaitGroup
}

// managedRun is the manager-side record of one run.
type managedRun struct {
	name string
	opts []Option
	// spec is non-nil for runs registered through CreateSpec; only those are
	// eligible for remote placement (options are closures and cannot cross
	// the wire).
	spec *RunSpec
	// renderKey is the spec's canonical render hash (empty for option-built
	// runs): submissions sharing it coalesce onto one live render.
	renderKey string

	mu       sync.Mutex
	state    RunState           // guarded by mu
	err      error              // guarded by mu
	result   *Result            // guarded by mu
	metrics  []FrameMetric      // guarded by mu
	subs     map[int]*metricSub // guarded by mu
	nextSub  int                // guarded by mu
	created  time.Time
	startedT time.Time // guarded by mu
	finished time.Time // guarded by mu
	cancel   context.CancelFunc
	done     chan struct{}
	workerID string
	attempts []RunAttempt
	// fanout is the live fan-out control of a WithViewers run executing
	// locally; nil otherwise. It stays readable after the run finishes.
	fanout *core.FanoutControl
	// port is the run's live viewer attach/detach channel: a localPort over
	// fanout for in-process execution, a remotePort over the dispatch
	// connection for runs placed on a worker; nil while no placement is live.
	port viewerPort // guarded by mu
	// portWait is closed (and remade) whenever port is published, waking
	// coalesced followers waiting to attach their viewers.
	portWait chan struct{} // guarded by mu
	// relays are the coalesced follower runs live frame metrics are copied
	// to. Lock order: this run's mu strictly before any follower's.
	relays []*managedRun // guarded by mu
}

// NewManager builds a manager executing at most workers runs concurrently on
// the local machine; workers <= 0 selects 4 (the paper's first-light PE
// count, a sane default for pipelines that are themselves parallel). Remote
// capacity is added separately with RegisterWorker.
func NewManager(workers int) *Manager {
	if workers <= 0 {
		workers = 4
	}
	// The manager owns this root: every run derives from baseCtx and Close
	// cancels it, which is the manager's whole lifecycle contract.
	ctx, cancel := context.WithCancel(context.Background()) //vislint:ignore ctxbackground the manager is a lifecycle root; Close cancels everything derived from it
	return &Manager{
		sem:         make(chan struct{}, workers),
		pool:        newWorkerPool(),
		runs:        make(map[string]*managedRun),
		coalesce:    make(map[string]*managedRun),
		maxAttempts: defaultMaxAttempts,
		maxWire:     wire.DispatchV2,
		baseCtx:     ctx,
		cancelAll:   cancel,
	}
}

// SetFrameCacheCapacity (re)configures the manager's content-addressed
// slab-texture cache to the given byte bound; bytes <= 0 disables caching.
// The cache is shared by every spec-described run the manager executes
// locally: a replay of an already-rendered spec is served finished frames
// without touching the data source or the raycaster. Reconfiguring replaces
// the cache, so previously cached frames are dropped.
func (m *Manager) SetFrameCacheCapacity(bytes int64) {
	m.mu.Lock()
	m.frameCache = framecache.New(bytes)
	m.mu.Unlock()
}

// SetDefaultRenderWorkers sets the render-pool size applied to every run the
// manager executes locally that does not carry its own WithRenderWorkers /
// RunSpec.RenderWorkers; n <= 0 restores the facade default (GOMAXPROCS).
// Worker counts never change pixels, so this affects latency only.
func (m *Manager) SetDefaultRenderWorkers(n int) {
	if n < 0 {
		n = 0
	}
	m.mu.Lock()
	m.renderWorkers = n
	m.mu.Unlock()
}

// defaultRenderWorkers reads the manager-wide render-pool default.
func (m *Manager) defaultRenderWorkers() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.renderWorkers
}

// FrameCacheStats snapshots the frame cache's hit/miss/eviction counters and
// residency. All zeros when the cache is disabled.
func (m *Manager) FrameCacheStats() FrameCacheStats {
	m.mu.Lock()
	c := m.frameCache
	m.mu.Unlock()
	return c.Stats()
}

// FlushFrameCache drops every cached frame, keeping the counters and the
// configured capacity.
func (m *Manager) FlushFrameCache() {
	m.mu.Lock()
	c := m.frameCache
	m.mu.Unlock()
	c.Clear()
}

// frameCacheHandle returns the live cache (nil when disabled).
func (m *Manager) frameCacheHandle() *framecache.Cache {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.frameCache
}

// SetMaxWireVersion caps the dispatch wire version this manager negotiates
// with workers registered from now on: 1 pins every dispatch to the JSON v1
// protocol, 2 (the default; also any out-of-range value) allows the binary
// v2 wire for workers that advertise it. Workers already registered keep
// their negotiated version.
func (m *Manager) SetMaxWireVersion(v int) {
	if v < wire.DispatchV1 || v > wire.DispatchV2 {
		v = wire.DispatchV2
	}
	m.mu.Lock()
	m.maxWire = v
	m.mu.Unlock()
}

// maxWireVersion returns the manager's dispatch wire version cap.
func (m *Manager) maxWireVersion() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.maxWire
}

// Create registers a new named run with the given pipeline options. The
// options are validated immediately; the run starts executing only when
// Start is called. Option-built runs always execute locally — use CreateSpec
// for runs the scheduler may place on remote workers.
func (m *Manager) Create(name string, opts ...Option) error {
	return m.create(name, opts, nil)
}

// CreateSpec registers a new named run from a serializable RunSpec. Unlike
// Create, spec-described runs are eligible for placement on the remote
// workers registered with RegisterWorker; with none live they execute
// locally, exactly like Create.
func (m *Manager) CreateSpec(name string, spec RunSpec) error {
	opts, err := spec.Options()
	if err != nil {
		return err
	}
	return m.create(name, opts, &spec)
}

func (m *Manager) create(name string, opts []Option, spec *RunSpec) error {
	if name == "" {
		return errors.New("visapult: run name must not be empty")
	}
	// Validate eagerly so a bad spec fails at Create, not mid-queue.
	if _, err := New(opts...); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrManagerClosed
	}
	if _, ok := m.runs[name]; ok {
		return fmt.Errorf("run %q: %w", name, ErrRunExists)
	}
	r := &managedRun{
		name:     name,
		opts:     opts,
		spec:     spec,
		state:    StatePending,
		subs:     make(map[int]*metricSub),
		created:  time.Now(),
		done:     make(chan struct{}),
		portWait: make(chan struct{}),
	}
	if spec != nil {
		r.renderKey = spec.RenderHash()
	}
	m.runs[name] = r
	return nil
}

// get returns the named run or an error.
func (m *Manager) get(name string) (*managedRun, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, ok := m.runs[name]
	if !ok {
		return nil, fmt.Errorf("run %q: %w", name, ErrUnknownRun)
	}
	return r, nil
}

// Start queues the named run for execution. It returns immediately; the run
// executes as soon as a worker-pool slot frees up.
//
// Lock order is m.mu strictly before r.mu, matching every other method, and
// the closed-check and wg.Add form one atomic step — otherwise Start could
// pass the check, Close could run to completion, and the worker goroutine
// would outlive Close (tripping the WaitGroup's add-during-wait detector).
func (m *Manager) Start(name string) error {
	m.mu.Lock()
	r, ok := m.runs[name]
	if !ok {
		m.mu.Unlock()
		return fmt.Errorf("run %q: %w", name, ErrUnknownRun)
	}
	if m.closed {
		m.mu.Unlock()
		return ErrManagerClosed
	}
	m.wg.Add(1)
	m.mu.Unlock()

	r.mu.Lock()
	if r.state != StatePending {
		st := r.state
		r.mu.Unlock()
		m.wg.Done() // the reservation above goes unused
		return fmt.Errorf("visapult: run %q is %s: %w", name, st, ErrRunNotPending)
	}
	ctx, cancel := context.WithCancel(m.baseCtx)
	r.state = StateQueued
	r.cancel = cancel
	r.mu.Unlock()

	go m.execute(r, ctx)
	return nil
}

// execute routes a queued run to the coalescing scheduler (spec-described
// runs) or the local worker pool (option-built runs).
func (m *Manager) execute(r *managedRun, ctx context.Context) {
	defer m.wg.Done()
	if r.spec != nil {
		m.executeSpec(r, ctx)
		return
	}
	m.executeLocal(r, ctx)
}

// executeLocal acquires a local pool slot and runs the pipeline in-process,
// moving the run through its lifecycle states.
func (m *Manager) executeLocal(r *managedRun, ctx context.Context) {
	// Wait for a worker slot — or for cancellation while still queued.
	select {
	case m.sem <- struct{}{}:
		defer func() { <-m.sem }()
	case <-ctx.Done():
		r.finish(nil, ctx.Err())
		return
	}

	if !r.beginAttempt("local", "") { // cancelled while waiting for the slot
		return
	}

	// The manager-wide render-worker default is prepended so a run's own
	// WithRenderWorkers (later in the slice) wins.
	var opts []Option
	if def := m.defaultRenderWorkers(); def > 0 {
		opts = append(opts, WithRenderWorkers(def))
	}
	opts = append(append(opts, r.opts...),
		WithFrameHook(r.observe), withFanoutControl(r.setFanout))
	if r.spec != nil {
		// Spec-described runs have a content identity, so they render into —
		// and replay from — the manager's shared frame cache.
		if cache := m.frameCacheHandle(); cache != nil {
			dataset, tf := r.spec.cacheIdentity()
			opts = append(opts, withFrameCache(cache, dataset, tf))
		}
	}
	p, err := New(opts...)
	if err != nil { // cannot happen: validated at Create
		r.finish(nil, err)
		return
	}
	res, err := p.Run(ctx)
	if err == nil {
		r.finish(res, nil)
		return
	}
	// Prefer the cancellation cause when the context was cancelled: the
	// pipeline may surface it as a transport error instead of ctx.Err().
	if ctxErr := ctx.Err(); ctxErr != nil {
		err = ctxErr
	}
	r.finish(nil, err)
}

// beginAttempt moves a queued run to Running on the given worker ("local"
// for in-process execution) and opens an attempt record. It reports false —
// placement must not proceed — if the run left the queued state meanwhile.
func (r *managedRun) beginAttempt(workerID, addr string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.state != StateQueued {
		return false
	}
	r.state = StateRunning
	if r.startedT.IsZero() {
		r.startedT = time.Now()
	}
	r.workerID = workerID
	r.attempts = append(r.attempts, RunAttempt{
		Worker: workerID, Addr: addr, Started: time.Now(),
	})
	return true
}

// requeue returns a running run to the queue after a failed attempt, closing
// the attempt record with the failure. It reports false if the run reached a
// terminal state meanwhile.
func (r *managedRun) requeue(errMsg string) bool {
	return r.backToQueue(errMsg, true)
}

// dropAttempt returns a running run to the queue and erases its open
// attempt record — for placements the worker rejected before executing
// anything (busy), which are scheduling misses rather than run history. It
// reports false if the run reached a terminal state meanwhile.
func (r *managedRun) dropAttempt() bool {
	return r.backToQueue("", false)
}

// backToQueue moves a running run back to the queue, disposing of the open
// attempt record (closed with errMsg, or erased entirely) and resetting the
// per-placement frame metrics — the next attempt re-streams the run from
// scratch.
func (r *managedRun) backToQueue(errMsg string, keepAttempt bool) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if keepAttempt {
		r.closeAttemptLocked(time.Now(), errMsg)
	} else if n := len(r.attempts); n > 0 && r.attempts[n-1].Ended.IsZero() {
		r.attempts = r.attempts[:n-1]
	}
	if r.state != StateRunning {
		return false
	}
	r.state = StateQueued
	r.workerID = ""
	r.metrics = nil
	return true
}

// attemptCount returns how many placements the run has consumed.
func (r *managedRun) attemptCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.attempts)
}

// closeAttemptLocked stamps the open attempt record, if any, with r.mu held.
func (r *managedRun) closeAttemptLocked(when time.Time, errMsg string) {
	if n := len(r.attempts); n > 0 && r.attempts[n-1].Ended.IsZero() {
		r.attempts[n-1].Ended = when
		r.attempts[n-1].Error = errMsg
	}
}

// setFanout records the fan-out control of a locally executing WithViewers
// run and publishes it as the run's viewer port, waking coalesced followers
// waiting to attach. A re-queued run replaces the handle of its dead attempt.
func (r *managedRun) setFanout(fc *core.FanoutControl) {
	r.mu.Lock()
	r.fanout = fc
	r.port = localPort{fc}
	close(r.portWait)
	r.portWait = make(chan struct{})
	r.mu.Unlock()
}

// fanoutControl returns the run's live fan-out control, or ErrNoFanout.
func (r *managedRun) fanoutControl() (*core.FanoutControl, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.fanout == nil {
		return nil, fmt.Errorf("run %q: %w", r.name, ErrNoFanout)
	}
	return r.fanout, nil
}

// observe records one frame metric, fans it out to subscribers, and relays
// it to coalesced followers (lock order: this run's mu, then each
// follower's inside its own observe).
func (r *managedRun) observe(fm FrameMetric) {
	r.mu.Lock()
	r.metrics = append(r.metrics, fm)
	for _, sub := range r.subs {
		select {
		case sub.ch <- fm:
		default:
			// Slow subscriber: drop rather than stall the pipeline, but keep
			// the tally so the SSE layer can surface the backpressure.
			sub.dropped.Add(1)
		}
	}
	relays := append([]*managedRun(nil), r.relays...)
	r.mu.Unlock()
	for _, f := range relays {
		f.observe(fm)
	}
}

// finish moves the run to its terminal state and closes subscriptions.
func (r *managedRun) finish(res *Result, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.finishLocked(res, err)
}

// finishLocked is finish with r.mu already held.
func (r *managedRun) finishLocked(res *Result, err error) {
	if r.state.Terminal() {
		return
	}
	// Release the run's child context: without this every completed run
	// stays registered on the manager's base context for the daemon's
	// lifetime.
	if r.cancel != nil {
		r.cancel()
	}
	r.finished = time.Now()
	var errMsg string
	if err != nil {
		errMsg = err.Error()
	}
	r.closeAttemptLocked(r.finished, errMsg)
	switch {
	case err == nil:
		r.state = StateDone
		r.result = res
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		r.state = StateCanceled
		r.err = err
	default:
		r.state = StateFailed
		r.err = err
	}
	for id, sub := range r.subs {
		close(sub.ch)
		delete(r.subs, id)
	}
	close(r.done)
}

// Cancel stops the named run. A pending run moves straight to Canceled; a
// queued or running run is cancelled through its context and reaches
// Canceled when the pipeline unwinds. Cancelling a finished run is a no-op.
func (m *Manager) Cancel(name string) error {
	r, err := m.get(name)
	if err != nil {
		return err
	}
	// Decide and act under one critical section: releasing r.mu between the
	// state check and the action would let a concurrent Start promote a
	// Pending run to Running after we chose the pending path, leaving a
	// "canceled" run whose pipeline keeps executing.
	r.mu.Lock()
	defer r.mu.Unlock()
	switch {
	case r.state.Terminal():
		return nil
	case r.state == StatePending:
		r.finishLocked(nil, context.Canceled)
		return nil
	default:
		r.cancel()
		return nil
	}
}

// Wait blocks until the named run reaches a terminal state and returns its
// result (nil unless it finished in StateDone, in which case err is nil).
func (m *Manager) Wait(ctx context.Context, name string) (*Result, error) {
	r, err := m.get(name)
	if err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case <-r.done:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.result, r.err
}

// Status returns a snapshot of the named run.
func (m *Manager) Status(name string) (RunStatus, error) {
	r, err := m.get(name)
	if err != nil {
		return RunStatus{}, err
	}
	return r.status(), nil
}

func (r *managedRun) status() RunStatus {
	r.mu.Lock()
	fanout := r.fanout
	st := RunStatus{
		Name:       r.name,
		State:      r.state,
		FramesSent: len(r.metrics),
		Created:    r.created,
		Started:    r.startedT,
		Finished:   r.finished,
		Worker:     r.workerID,
		Attempts:   append([]RunAttempt(nil), r.attempts...),
	}
	if r.err != nil {
		st.Error = r.err.Error()
	}
	r.mu.Unlock()
	// Snapshot the deliveries outside r.mu: the fan-out has its own lock.
	if fanout != nil {
		st.Viewers = fanout.Viewers()
	}
	return st
}

// List returns a snapshot of every run, sorted by name.
func (m *Manager) List() []RunStatus {
	m.mu.Lock()
	runs := make([]*managedRun, 0, len(m.runs))
	for _, r := range m.runs {
		runs = append(runs, r)
	}
	m.mu.Unlock()
	out := make([]RunStatus, len(runs))
	for i, r := range runs {
		out[i] = r.status()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Metrics returns a copy of the per-frame metrics recorded so far for the
// named run.
func (m *Manager) Metrics(name string) ([]FrameMetric, error) {
	r, err := m.get(name)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]FrameMetric(nil), r.metrics...), nil
}

// metricSub is one live frame-metric subscription: its bounded channel plus
// the count of frames dropped because the subscriber fell behind.
type metricSub struct {
	ch      chan FrameMetric
	dropped atomic.Int64
}

// MetricSubscription is a handle on one live frame-metric subscription. C is
// closed when the run finishes; Dropped reports how many frames the bounded
// buffer discarded because this subscriber fell behind — the backpressure
// signal the SSE layer surfaces to streaming clients.
type MetricSubscription struct {
	C      <-chan FrameMetric
	sub    *metricSub
	cancel func()
}

// Dropped returns the frames discarded for this subscriber so far.
func (s *MetricSubscription) Dropped() int64 {
	if s.sub == nil {
		return 0
	}
	return s.sub.dropped.Load()
}

// Cancel releases the subscription. Safe to call more than once.
func (s *MetricSubscription) Cancel() { s.cancel() }

// Subscribe returns a channel of live frame metrics for the named run and a
// cancel function releasing the subscription. The channel is closed when the
// run finishes. A subscriber that falls behind misses frames rather than
// stalling the pipeline; pair Subscribe with Metrics for a complete record,
// or use SubscribeMetrics to observe the drop count as well.
func (m *Manager) Subscribe(name string) (<-chan FrameMetric, func(), error) {
	s, err := m.SubscribeMetrics(name)
	if err != nil {
		return nil, nil, err
	}
	return s.C, s.Cancel, nil
}

// SubscribeMetrics is Subscribe with drop accounting: the returned handle
// exposes how many frames the subscription's bounded buffer discarded.
func (m *Manager) SubscribeMetrics(name string) (*MetricSubscription, error) {
	r, err := m.get(name)
	if err != nil {
		return nil, err
	}
	sub := &metricSub{ch: make(chan FrameMetric, 64)}
	r.mu.Lock()
	if r.state.Terminal() {
		r.mu.Unlock()
		close(sub.ch)
		return &MetricSubscription{C: sub.ch, sub: sub, cancel: func() {}}, nil
	}
	id := r.nextSub
	r.nextSub++
	r.subs[id] = sub
	r.mu.Unlock()
	once := sync.Once{}
	cancel := func() {
		once.Do(func() {
			r.mu.Lock()
			if s, ok := r.subs[id]; ok {
				close(s.ch)
				delete(r.subs, id)
			}
			r.mu.Unlock()
		})
	}
	return &MetricSubscription{C: sub.ch, sub: sub, cancel: cancel}, nil
}

// AttachViewer adds a viewer named viewerID to an executing fan-out run (one
// created with Viewers >= 1). For local execution a fresh in-process viewer
// is built with the run's transport; for a run placed on a remote worker the
// attach travels the dispatch connection and the viewer is built worker-side.
// Either way it starts receiving at the next frame boundary. A run riding a
// coalesce leader proxies the attach to that leader's fan-out. Runs without a
// live fan-out — single-viewer runs, or runs not yet executing — report
// ErrNoFanout.
func (m *Manager) AttachViewer(name, viewerID string) error {
	r, err := m.get(name)
	if err != nil {
		return err
	}
	port, err := m.viewerPortOf(r)
	if err != nil {
		return err
	}
	ctx, cancel := m.viewerCtx()
	defer cancel()
	return port.attach(ctx, viewerID)
}

// DetachViewer removes a previously attached viewer from a fan-out run,
// tearing its transport down. Its delivery record remains visible in the
// run's status and final result. Works across the dispatch protocol for
// remotely placed runs, like AttachViewer.
func (m *Manager) DetachViewer(name, viewerID string) error {
	r, err := m.get(name)
	if err != nil {
		return err
	}
	port, err := m.viewerPortOf(r)
	if err != nil {
		return err
	}
	ctx, cancel := m.viewerCtx()
	defer cancel()
	return port.detach(ctx, viewerID)
}

// Viewers returns the per-viewer delivery snapshot of a fan-out run, in
// attach order (including viewers that already detached or failed). For a
// finished local run the final snapshot stays readable; for a remotely
// placed run the snapshot is fetched over the live dispatch connection.
func (m *Manager) Viewers(name string) ([]ViewerDelivery, error) {
	r, err := m.get(name)
	if err != nil {
		return nil, err
	}
	// A finished (or still-local) fan-out run answers from its control even
	// after the placement's port was retracted.
	if fc, err := r.fanoutControl(); err == nil {
		return fc.Viewers(), nil
	}
	port, err := m.viewerPortOf(r)
	if err != nil {
		return nil, err
	}
	ctx, cancel := m.viewerCtx()
	defer cancel()
	return port.viewers(ctx)
}

// Result returns the finished run's result; an error if the run is not in
// StateDone.
func (m *Manager) Result(name string) (*Result, error) {
	r, err := m.get(name)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.state != StateDone {
		return nil, fmt.Errorf("run %q is %s: %w", name, r.state, ErrNoResult)
	}
	return r.result, nil
}

// Remove deletes a terminal run from the manager's table.
func (m *Manager) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, ok := m.runs[name]
	if !ok {
		return fmt.Errorf("run %q: %w", name, ErrUnknownRun)
	}
	r.mu.Lock()
	terminal := r.state.Terminal()
	r.mu.Unlock()
	if !terminal {
		return fmt.Errorf("run %q is %s, cancel it first: %w", name, r.status().State, ErrRunActive)
	}
	delete(m.runs, name)
	return nil
}

// Prune removes every terminal run that finished more than olderThan ago and
// returns how many were dropped — the retention policy keeping a long-lived
// daemon's run table (and its per-frame metric buffers) bounded. A negative
// or zero olderThan prunes every terminal run. Active runs are never touched,
// and neither are runs still serving someone: the standing coalesce target
// of its render hash (a new identical submission would ride it), a run whose
// frame metrics are still being relayed to coalesced followers, or a run
// whose fan-out still has viewers attached.
func (m *Manager) Prune(olderThan time.Duration) int {
	cutoff := time.Now().Add(-olderThan)
	m.mu.Lock()
	defer m.mu.Unlock()
	pruned := 0
	for name, r := range m.runs {
		if r.renderKey != "" && m.coalesce[r.renderKey] == r {
			continue
		}
		r.mu.Lock()
		expired := r.state.Terminal() && !r.finished.After(cutoff) && len(r.relays) == 0
		fanout := r.fanout
		r.mu.Unlock()
		if !expired {
			continue
		}
		if fanout != nil && fanout.Active() && hasAttachedViewer(fanout.Viewers()) {
			continue
		}
		delete(m.runs, name)
		pruned++
	}
	return pruned
}

// hasAttachedViewer reports whether any delivery record is still attached.
func hasAttachedViewer(deliveries []ViewerDelivery) bool {
	for _, d := range deliveries {
		if !d.Detached {
			return true
		}
	}
	return false
}

// Slots reports the local worker pool's occupancy: slots executing right now
// and the pool capacity. Remote capacity is reported per worker by Workers.
func (m *Manager) Slots() (used, capacity int) {
	return len(m.sem), cap(m.sem)
}

// Close cancels every run, waits for the workers to unwind, and marks the
// manager closed. Safe to call more than once.
//
// Runs that were created but never started have no execute goroutine to
// unwind them, so Close fails them directly with ErrManagerClosed — without
// this they would sit in StatePending forever and wedge any Wait on them.
// Queued and running runs (local or remotely placed) are cancelled through
// the shared base context and reach their terminal state before Close
// returns.
func (m *Manager) Close() {
	m.mu.Lock()
	m.closed = true
	runs := make([]*managedRun, 0, len(m.runs))
	for _, r := range m.runs {
		runs = append(runs, r)
	}
	m.mu.Unlock()
	m.cancelAll()
	for _, r := range runs {
		r.mu.Lock()
		pending := r.state == StatePending
		r.mu.Unlock()
		if pending {
			r.finish(nil, fmt.Errorf("run %q never started: %w", r.name, ErrManagerClosed))
		}
	}
	m.wg.Wait()
}
