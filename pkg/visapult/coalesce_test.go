package visapult

import (
	"context"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// startCachingWorker is startTestWorker with a slab-texture cache, so repeat
// dispatches of the same content replay instead of re-rendering.
func startCachingWorker(t *testing.T, capacity int, cacheBytes int64) (addr string, stop func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := ServeWorker(ctx, ln, WorkerConfig{Capacity: capacity, FrameCacheBytes: cacheBytes}); err != nil {
			t.Errorf("ServeWorker: %v", err)
		}
	}()
	var once sync.Once
	stop = func() {
		once.Do(func() {
			cancel()
			<-done
		})
	}
	t.Cleanup(stop)
	pctx, pcancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer pcancel()
	if _, err := pingWorker(pctx, ln.Addr().String()); err != nil {
		t.Fatalf("test worker never came up: %v", err)
	}
	return ln.Addr().String(), stop
}

// coalesceSpec renders long enough for followers to ride it and carries a
// viewer so the fan-out stage exists.
func coalesceSpec() RunSpec {
	s := slowSpec()
	s.Viewers = 1
	return s
}

func isCoalesced(st RunStatus) bool {
	return strings.HasPrefix(st.Worker, "coalesced:")
}

// Identical submissions must coalesce onto one live local render: the leader
// runs once, followers relay its metrics and adopt its result, and their
// viewers join the leader's fan-out.
func TestCoalesceLocal(t *testing.T) {
	m := NewManager(4)
	defer m.Close()

	spec := coalesceSpec()
	if err := m.CreateSpec("leader", spec); err != nil {
		t.Fatal(err)
	}
	if err := m.Start("leader"); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "leader running", func() bool {
		st, err := m.Status("leader")
		return err == nil && st.State == StateRunning
	})

	for _, name := range []string{"f1", "f2"} {
		if err := m.CreateSpec(name, spec); err != nil {
			t.Fatal(err)
		}
		if err := m.Start(name); err != nil {
			t.Fatal(err)
		}
	}

	results := make(map[string]*Result)
	for _, name := range []string{"leader", "f1", "f2"} {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		res, err := m.Wait(ctx, name)
		cancel()
		if err != nil {
			t.Fatalf("run %s: %v", name, err)
		}
		results[name] = res
	}

	// Exactly one render happened: the leader executed locally, both
	// followers rode it.
	lst, _ := m.Status("leader")
	if isCoalesced(lst) {
		t.Errorf("leader should have executed itself, worker = %q", lst.Worker)
	}
	for _, name := range []string{"f1", "f2"} {
		st, _ := m.Status(name)
		if !isCoalesced(st) {
			t.Errorf("run %s should have coalesced, worker = %q", name, st.Worker)
		}
		if st.Worker != "coalesced:leader" {
			t.Errorf("run %s coalesced onto %q, want coalesced:leader", name, st.Worker)
		}
	}

	// Followers adopt the leader's result, so the frame totals agree.
	for _, name := range []string{"f1", "f2"} {
		if got, want := results[name].Backend.Frames, results["leader"].Backend.Frames; got != want {
			t.Errorf("run %s result frames = %d, leader rendered %d", name, got, want)
		}
	}

	// The followers' viewers joined the leader's fan-out under
	// "<follower>/v<i>" ids, and every viewer of the shared run saw the same
	// frame sequence (no drops on an unloaded local sink).
	seen := make(map[string]ViewerResult)
	for _, d := range results["leader"].Viewers {
		seen[d.ID] = d
	}
	for _, id := range []string{"f1/v0", "f2/v0"} {
		if _, ok := seen[id]; !ok {
			t.Errorf("leader result is missing coalesced viewer %s (have %v)", id, resultIDs(results["leader"].Viewers))
		}
	}
	for _, d := range results["leader"].Viewers {
		if d.Delivery.FramesDropped != 0 {
			t.Errorf("viewer %s dropped %d frames", d.ID, d.Delivery.FramesDropped)
		}
	}

	// Metric relay: followers hold the same (frame, PE) set the leader does.
	lm, err := m.Metrics("leader")
	if err != nil {
		t.Fatal(err)
	}
	want := metricKeys(lm)
	for _, name := range []string{"f1", "f2"} {
		fm, err := m.Metrics(name)
		if err != nil {
			t.Fatal(err)
		}
		got := metricKeys(fm)
		if len(got) != len(want) {
			t.Errorf("run %s relayed %d distinct frame metrics, leader has %d", name, len(got), len(want))
		}
		for k := range want {
			if _, ok := got[k]; !ok {
				t.Errorf("run %s is missing relayed metric %v", name, k)
			}
		}
	}
}

func viewerIDs(ds []ViewerDelivery) []string {
	ids := make([]string, len(ds))
	for i, d := range ds {
		ids[i] = d.ID
	}
	return ids
}

func resultIDs(ds []ViewerResult) []string {
	ids := make([]string, len(ds))
	for i, d := range ds {
		ids[i] = d.ID
	}
	return ids
}

func metricKeys(ms []FrameMetric) map[[2]int]struct{} {
	keys := make(map[[2]int]struct{})
	for _, fm := range ms {
		keys[[2]int{fm.Frame, fm.PE}] = struct{}{}
	}
	return keys
}

// Coalescing must hold across remote placement: with one single-slot worker,
// N identical submissions produce exactly one dispatched render, and the
// followers' viewer attaches travel the dispatch protocol to the worker's
// fan-out.
func TestCoalesceRemote(t *testing.T) {
	m := NewManager(4)
	defer m.Close()
	addr, _ := startTestWorker(t, 1)
	if _, err := m.RegisterWorker(context.Background(), addr, 0); err != nil {
		t.Fatal(err)
	}

	spec := coalesceSpec()
	if err := m.CreateSpec("leader", spec); err != nil {
		t.Fatal(err)
	}
	if err := m.Start("leader"); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "leader running remotely", func() bool {
		st, err := m.Status("leader")
		return err == nil && st.State == StateRunning && st.Worker != "" && st.Worker != "local"
	})
	for _, name := range []string{"f1", "f2"} {
		if err := m.CreateSpec(name, spec); err != nil {
			t.Fatal(err)
		}
		if err := m.Start(name); err != nil {
			t.Fatal(err)
		}
	}

	// While the shared render is live, the followers' viewers must become
	// visible through the leader's remote fan-out.
	waitUntil(t, "coalesced viewers visible over the dispatch protocol", func() bool {
		vds, err := m.Viewers("leader")
		if err != nil {
			return false
		}
		found := 0
		for _, d := range vds {
			if d.ID == "f1/v0" || d.ID == "f2/v0" {
				found++
			}
		}
		return found == 2
	})

	for _, name := range []string{"leader", "f1", "f2"} {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		if _, err := m.Wait(ctx, name); err != nil {
			t.Fatalf("run %s: %v", name, err)
		}
		cancel()
	}
	lst, _ := m.Status("leader")
	if lst.Worker == "" || lst.Worker == "local" || isCoalesced(lst) {
		t.Errorf("leader should have been placed on the remote worker, got %q", lst.Worker)
	}
	for _, name := range []string{"f1", "f2"} {
		st, _ := m.Status(name)
		if st.Worker != "coalesced:leader" {
			t.Errorf("run %s worker = %q, want coalesced:leader", name, st.Worker)
		}
	}
}

// A viewer attached through the manager while the run executes on a remote
// worker must reach the worker's fan-out over the dispatch connection.
func TestRemoteViewerAttachDetach(t *testing.T) {
	m := NewManager(2)
	defer m.Close()
	addr, _ := startTestWorker(t, 1)
	if _, err := m.RegisterWorker(context.Background(), addr, 0); err != nil {
		t.Fatal(err)
	}

	spec := coalesceSpec()
	if err := m.CreateSpec("remote", spec); err != nil {
		t.Fatal(err)
	}
	if err := m.Start("remote"); err != nil {
		t.Fatal(err)
	}
	// Attach retries until the worker's pipeline publishes its fan-out.
	waitUntil(t, "late viewer attached across the dispatch protocol", func() bool {
		return m.AttachViewer("remote", "late-wall") == nil
	})
	vds, err := m.Viewers("remote")
	if err != nil {
		t.Fatalf("Viewers over dispatch: %v", err)
	}
	found := false
	for _, d := range vds {
		if d.ID == "late-wall" && !d.Detached {
			found = true
		}
	}
	if !found {
		t.Errorf("late-wall not in remote viewer list: %v", viewerIDs(vds))
	}
	if err := m.DetachViewer("remote", "late-wall"); err != nil {
		t.Errorf("remote detach: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := m.Wait(ctx, "remote"); err != nil {
		t.Fatal(err)
	}
}

// A replay of an already-rendered spec must be served from the frame cache:
// hit counters move, the raycaster is skipped (CacheHit on every frame
// metric), and the rendered output still reaches the viewer.
func TestReplayServedFromFrameCache(t *testing.T) {
	m := NewManager(2)
	defer m.Close()
	m.SetFrameCacheCapacity(64 << 20)

	spec := quickSpec()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	if err := m.CreateSpec("cold", spec); err != nil {
		t.Fatal(err)
	}
	if err := m.Start("cold"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Wait(ctx, "cold"); err != nil {
		t.Fatal(err)
	}
	cold := m.FrameCacheStats()
	if cold.Misses == 0 || cold.Entries == 0 {
		t.Fatalf("cold run should have populated the cache: %+v", cold)
	}
	if cold.Hits != 0 {
		t.Fatalf("cold run should not hit: %+v", cold)
	}
	for _, fm := range mustMetrics(t, m, "cold") {
		if fm.CacheHit {
			t.Errorf("cold frame (%d, PE %d) claims a cache hit", fm.Frame, fm.PE)
		}
	}

	if err := m.CreateSpec("replay", spec); err != nil {
		t.Fatal(err)
	}
	if err := m.Start("replay"); err != nil {
		t.Fatal(err)
	}
	res, err := m.Wait(ctx, "replay")
	if err != nil {
		t.Fatal(err)
	}
	warm := m.FrameCacheStats()
	if warm.Hits == 0 {
		t.Errorf("replay produced no cache hits: %+v", warm)
	}
	if warm.Misses != cold.Misses {
		t.Errorf("replay missed the cache: misses %d -> %d", cold.Misses, warm.Misses)
	}
	metrics := mustMetrics(t, m, "replay")
	if len(metrics) == 0 {
		t.Fatal("replay produced no frame metrics")
	}
	for _, fm := range metrics {
		if !fm.CacheHit {
			t.Errorf("replay frame (%d, PE %d) was re-rendered", fm.Frame, fm.PE)
		}
		if fm.BytesLoaded != 0 || fm.Render != 0 {
			t.Errorf("replay frame (%d, PE %d) touched the source or raycaster: loaded %d, render %v",
				fm.Frame, fm.PE, fm.BytesLoaded, fm.Render)
		}
	}
	if res.Viewer.FramesCompleted == 0 {
		t.Error("replayed frames never reached the viewer")
	}

	// Flush drops frames but keeps counters; the next run re-renders.
	m.FlushFrameCache()
	flushed := m.FrameCacheStats()
	if flushed.Entries != 0 || flushed.Bytes != 0 {
		t.Errorf("flush left residue: %+v", flushed)
	}
	if flushed.Hits != warm.Hits {
		t.Errorf("flush reset the hit counter: %+v", flushed)
	}
}

// A worker-side cache serves repeat dispatches of the same content: the
// second remote run's frames come back flagged as cache hits.
func TestWorkerFrameCacheReplay(t *testing.T) {
	m := NewManager(2)
	defer m.Close()
	addr, _ := startCachingWorker(t, 1, 64<<20)
	if _, err := m.RegisterWorker(context.Background(), addr, 0); err != nil {
		t.Fatal(err)
	}

	spec := quickSpec()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for _, name := range []string{"first", "second"} {
		if err := m.CreateSpec(name, spec); err != nil {
			t.Fatal(err)
		}
		if err := m.Start(name); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Wait(ctx, name); err != nil {
			t.Fatal(err)
		}
	}
	for _, fm := range mustMetrics(t, m, "first") {
		if fm.CacheHit {
			t.Errorf("first dispatch frame (%d, PE %d) claims a cache hit", fm.Frame, fm.PE)
		}
	}
	metrics := mustMetrics(t, m, "second")
	if len(metrics) == 0 {
		t.Fatal("second dispatch streamed no metrics")
	}
	for _, fm := range metrics {
		if !fm.CacheHit {
			t.Errorf("second dispatch frame (%d, PE %d) was re-rendered on the worker", fm.Frame, fm.PE)
		}
	}
}

func mustMetrics(t *testing.T, m *Manager, name string) []FrameMetric {
	t.Helper()
	ms, err := m.Metrics(name)
	if err != nil {
		t.Fatal(err)
	}
	return ms
}

// The pruner must never collect a run that is still the coalesce target of a
// live submission or still relaying metrics to followers.
func TestPruneSparesCoalesceTargetAndRelays(t *testing.T) {
	m := NewManager(1)
	defer m.Close()
	spec := quickSpec()
	if err := m.CreateSpec("leader", spec); err != nil {
		t.Fatal(err)
	}
	if err := m.Start("leader"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := m.Wait(ctx, "leader"); err != nil {
		t.Fatal(err)
	}

	// Simulate the window where a terminal run is still the coalesce target
	// of a submission that has not resolved leadership yet.
	m.mu.Lock()
	r := m.runs["leader"]
	m.coalesce[r.renderKey] = r
	m.mu.Unlock()
	if n := m.Prune(0); n != 0 {
		t.Errorf("pruned %d runs while one was a live coalesce target", n)
	}
	m.mu.Lock()
	delete(m.coalesce, r.renderKey)
	m.mu.Unlock()

	// A follower still riding the metric relay also pins the run.
	follower := &managedRun{name: "follower"}
	r.addFollower(follower)
	if n := m.Prune(0); n != 0 {
		t.Errorf("pruned %d runs while one had a live relay", n)
	}
	r.removeFollower(follower)

	// With both released, the terminal run is collectable again.
	if n := m.Prune(0); n != 1 {
		t.Errorf("pruned %d runs, want 1", n)
	}
}

func TestHasAttachedViewer(t *testing.T) {
	if hasAttachedViewer(nil) {
		t.Error("empty list should have no attached viewer")
	}
	if hasAttachedViewer([]ViewerDelivery{{ID: "a", Detached: true}}) {
		t.Error("all-detached list should have no attached viewer")
	}
	if !hasAttachedViewer([]ViewerDelivery{{ID: "a", Detached: true}, {ID: "b"}}) {
		t.Error("list with a live viewer should report attached")
	}
}
