package visapult

import (
	"context"
	"encoding/json"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"visapult/internal/backend/framecache"
	"visapult/internal/core"
)

// The scheduler's control protocol: newline-delimited JSON over one TCP
// connection per dispatched run, mirroring the paper's deployment where a
// pool of back-end workers executes sessions near the data while a control
// plane places work on them.
//
// Client -> worker: one workerRequest ("ping" or "run"), optionally followed
// by further control messages on the same connection: {"op":"cancel"}, or
// seq-numbered viewer operations ("attach", "detach", "viewers") that
// manipulate the dispatched run's fan-out stage remotely — each answered by a
// ctrl reply echoing the sequence number. Worker -> client: for "ping" a
// single pong reply; for "run" a stream of frame replies (one per (PE,
// timestep), feeding the same Subscribe/SSE path local runs use) interleaved
// with ctrl acks and terminated by exactly one result or error reply. A
// worker that dies mid-run simply drops the connection — the missing terminal
// reply is how the dispatcher distinguishes a dead worker (re-queue the run
// elsewhere) from a run that failed on a healthy one.

// Control protocol operations.
const (
	opPing    = "ping"
	opRun     = "run"
	opCancel  = "cancel"
	opAttach  = "attach"
	opDetach  = "detach"
	opViewers = "viewers"
)

// workerIOTimeout bounds the dispatch handshake read and each reply write on
// a worker control connection: a peer that connects and goes silent, or stops
// draining replies, breaks its own connection instead of pinning the worker.
const workerIOTimeout = 30 * time.Second

// workerRequest is a client -> worker control message.
type workerRequest struct {
	Op   string   `json:"op"`
	Name string   `json:"name,omitempty"`
	Spec *RunSpec `json:"spec,omitempty"`
	// Viewer names the fan-out viewer an attach/detach operation targets.
	Viewer string `json:"viewer,omitempty"`
	// Seq correlates a viewer operation with its ctrl ack; the client picks
	// it, the worker echoes it.
	Seq int64 `json:"seq,omitempty"`
}

// workerReply is a worker -> client control message; exactly one field is
// populated per message.
type workerReply struct {
	Pong   *WorkerHello  `json:"pong,omitempty"`
	Frame  *FrameMetric  `json:"frame,omitempty"`
	Result *RemoteResult `json:"result,omitempty"`
	Error  string        `json:"error,omitempty"`
	// Busy marks an Error reply caused by capacity, not by the run itself.
	Busy bool `json:"busy,omitempty"`
	// Ctrl acknowledges one viewer control operation (attach/detach/viewers).
	Ctrl *ctrlAck `json:"ctrl,omitempty"`
}

// ctrlAck is the worker's answer to one seq-numbered viewer operation. A
// NoFanout ack maps back to ErrNoFanout on the client, which is how a
// coalesced follower knows to retry its attach while the remote pipeline is
// still starting.
type ctrlAck struct {
	Seq      int64            `json:"seq"`
	Err      string           `json:"err,omitempty"`
	NoFanout bool             `json:"noFanout,omitempty"`
	Viewers  []ViewerDelivery `json:"viewers,omitempty"`
}

// WorkerHello is a worker's answer to a ping: its configured capacity and
// current load.
type WorkerHello struct {
	Capacity int `json:"capacity"`
	Active   int `json:"active"`
}

// RemoteResult is the summary a worker ships back for a completed run. It
// carries the full per-frame statistics but not the NetLogger event stream or
// the final image — those stay with the worker (remote runs report metrics;
// pixels belong to the viewer the worker's pipeline fed).
type RemoteResult struct {
	Backend RunStats      `json:"backend"`
	Viewer  ViewerStats   `json:"viewer"`
	Elapsed time.Duration `json:"elapsed"`
	// Viewers carries the per-viewer receive and delivery records of a
	// multi-viewer (fan-out) spec executed on the worker.
	Viewers []ViewerResult `json:"viewers,omitempty"`
}

// result converts the wire summary back into a facade Result.
func (rr *RemoteResult) result() *Result {
	return &Result{Backend: rr.Backend, Viewer: rr.Viewer, Viewers: rr.Viewers, Elapsed: rr.Elapsed}
}

// WorkerConfig configures ServeWorker.
type WorkerConfig struct {
	// Capacity is the number of dispatched runs the worker executes
	// concurrently (default 2); beyond it, dispatch requests are rejected
	// with a busy reply.
	Capacity int
	// FrameCacheBytes bounds a slab-texture cache shared by every run this
	// worker executes: repeat dispatches of a spec with the same content
	// identity replay rendered frames instead of raycasting again. Zero or
	// negative disables caching.
	FrameCacheBytes int64
	// Logf, when non-nil, receives one line per accepted and completed run.
	Logf func(format string, args ...any)
}

// ServeWorker turns the calling process into a dispatch worker: it accepts
// control connections on l and executes each dispatched RunSpec as an
// in-process pipeline, streaming per-frame metrics back as they happen.
// cmd/visapult-backend's -serve-control mode is this function; tests use it
// directly to stand up in-process fake workers.
//
// ServeWorker blocks until ctx is cancelled (returning nil) or the listener
// fails (returning the error). Cancelling ctx closes the listener and every
// in-flight connection first, then aborts the running pipelines — so a
// killed worker looks like a dropped connection to its dispatchers, which is
// what triggers their re-queue path.
func ServeWorker(ctx context.Context, l net.Listener, cfg WorkerConfig) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.Capacity <= 0 {
		cfg.Capacity = 2
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	ws := &workerServer{ctx: ctx, capacity: cfg.Capacity, logf: logf,
		cache: framecache.New(cfg.FrameCacheBytes),
		conns: make(map[net.Conn]struct{})}

	// Close the listener AND the accepted connections on cancellation, in
	// that order: connections dropping before any polite error reply can be
	// written is what makes a shutdown indistinguishable from a crash to the
	// dispatchers — exactly the signal their re-queueing needs.
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			l.Close()
			ws.closeConns()
		case <-watchDone:
		}
	}()

	var err error
	backoff := 5 * time.Millisecond
	for {
		conn, aerr := l.Accept()
		if aerr != nil {
			if ctx.Err() != nil || errors.Is(aerr, net.ErrClosed) {
				break
			}
			// Transient accept failures (fd exhaustion, aborted handshakes)
			// must not take the whole worker out of the pool; back off and
			// keep serving, like net/http.Server does.
			if isTransientAccept(aerr) {
				logf("worker: accept: %v (retrying in %v)", aerr, backoff)
				select {
				case <-time.After(backoff):
				case <-ctx.Done():
				}
				backoff = min(2*backoff, time.Second)
				continue
			}
			err = aerr
			break
		}
		backoff = 5 * time.Millisecond
		if !ws.track(conn) {
			conn.Close()
			break
		}
		ws.wg.Add(1)
		go ws.handle(conn)
	}
	ws.wg.Wait()
	return err
}

// isTransientAccept reports whether an Accept error is worth retrying
// rather than shutting the worker down.
func isTransientAccept(err error) bool {
	return errors.Is(err, syscall.EMFILE) ||
		errors.Is(err, syscall.ENFILE) ||
		errors.Is(err, syscall.ECONNABORTED) ||
		errors.Is(err, syscall.EINTR)
}

// workerServer is the shared state of one ServeWorker invocation.
type workerServer struct {
	ctx      context.Context
	capacity int
	logf     func(string, ...any)
	cache    *framecache.Cache // shared across runs; nil = caching disabled
	active   atomic.Int64
	wg       sync.WaitGroup

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
}

// track records an accepted connection for shutdown; false once closing.
func (ws *workerServer) track(c net.Conn) bool {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	if ws.closed {
		return false
	}
	ws.conns[c] = struct{}{}
	return true
}

func (ws *workerServer) untrack(c net.Conn) {
	ws.mu.Lock()
	delete(ws.conns, c)
	ws.mu.Unlock()
}

func (ws *workerServer) closeConns() {
	ws.mu.Lock()
	ws.closed = true
	conns := make([]net.Conn, 0, len(ws.conns))
	for c := range ws.conns {
		conns = append(conns, c)
	}
	ws.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// tryAcquire claims a capacity slot, failing when the worker is full.
func (ws *workerServer) tryAcquire() bool {
	for {
		a := ws.active.Load()
		if int(a) >= ws.capacity {
			return false
		}
		if ws.active.CompareAndSwap(a, a+1) {
			return true
		}
	}
}

// handle services one control connection: a single request, then (for runs)
// the reply stream.
func (ws *workerServer) handle(conn net.Conn) {
	defer ws.wg.Done()
	defer ws.untrack(conn)
	defer conn.Close()

	// The first decode is a handshake: a client that connects and then sends
	// nothing must not pin this goroutine forever.
	conn.SetReadDeadline(time.Now().Add(workerIOTimeout)) //nolint:errcheck
	dec := json.NewDecoder(conn)
	var req workerRequest
	if err := dec.Decode(&req); err != nil {
		return
	}
	// Past the handshake the request stream is the run-cancel monitor, which
	// legitimately waits as long as the run does.
	conn.SetReadDeadline(time.Time{}) //nolint:errcheck
	// Frame replies come concurrently from the PE goroutines while the
	// terminal reply comes from this goroutine; one mutex serializes them on
	// the wire, and a per-reply write deadline keeps a stalled dispatcher
	// from wedging the run's frame hooks.
	conn.SetWriteDeadline(time.Now().Add(workerIOTimeout)) //nolint:errcheck // re-armed per send below
	enc := json.NewEncoder(conn)
	var sendMu sync.Mutex
	send := func(rep workerReply) {
		sendMu.Lock()
		defer sendMu.Unlock()
		conn.SetWriteDeadline(time.Now().Add(workerIOTimeout)) //nolint:errcheck
		enc.Encode(rep)                                        // a failed write means the dispatcher is gone; nothing to do
	}

	switch req.Op {
	case opPing:
		send(workerReply{Pong: &WorkerHello{Capacity: ws.capacity, Active: int(ws.active.Load())}})
	case opRun:
		ws.run(req, dec, send)
	default:
		send(workerReply{Error: "visapult: unknown control op " + req.Op})
	}
}

// run executes one dispatched spec, streaming frames and a terminal reply.
func (ws *workerServer) run(req workerRequest, dec *json.Decoder, send func(workerReply)) {
	if req.Spec == nil {
		send(workerReply{Error: "visapult: dispatch request carries no spec"})
		return
	}
	if !ws.tryAcquire() {
		send(workerReply{Error: "visapult: worker at capacity", Busy: true})
		return
	}
	defer ws.active.Add(-1)

	opts, err := req.Spec.Options()
	if err != nil {
		send(workerReply{Error: err.Error()})
		return
	}
	opts = append(opts, WithFrameHook(func(fm FrameMetric) {
		send(workerReply{Frame: &fm})
	}))
	if ws.cache != nil {
		dataset, tf := req.Spec.cacheIdentity()
		opts = append(opts, withFrameCache(ws.cache, dataset, tf))
	}
	// Capture the run's fan-out control once its pipeline goes live, so the
	// monitor goroutine can service remote viewer attach/detach against it.
	var fanoutMu sync.Mutex
	var fanout *core.FanoutControl // guarded by fanoutMu
	opts = append(opts, withFanoutControl(func(fc *core.FanoutControl) {
		fanoutMu.Lock()
		fanout = fc
		fanoutMu.Unlock()
	}))
	p, err := New(opts...)
	if err != nil {
		send(workerReply{Error: err.Error()})
		return
	}

	// viewerOp services one attach/detach/viewers control message against the
	// live fan-out. Before the pipeline publishes its control (or for a spec
	// without viewers) the ack carries NoFanout, which the client maps back to
	// ErrNoFanout — the retryable "not live yet" signal.
	viewerOp := func(msg workerRequest) *ctrlAck {
		ack := &ctrlAck{Seq: msg.Seq}
		fanoutMu.Lock()
		fc := fanout
		fanoutMu.Unlock()
		if fc == nil || !fc.Active() {
			ack.NoFanout = true
			ack.Err = ErrNoFanout.Error()
			return ack
		}
		switch msg.Op {
		case opAttach:
			if err := fc.Attach(msg.Viewer); err != nil {
				ack.Err = err.Error()
			}
		case opDetach:
			if err := fc.Detach(msg.Viewer); err != nil {
				ack.Err = err.Error()
			}
		case opViewers:
			ack.Viewers = fc.Viewers()
		}
		return ack
	}

	// The run lives as long as the worker and the dispatcher both do: the
	// monitor goroutine cancels it when the client drops the connection or
	// sends an explicit cancel, and services viewer control operations in
	// between.
	runCtx, cancel := context.WithCancel(ws.ctx)
	defer cancel()
	go func() {
		for {
			var msg workerRequest
			if err := dec.Decode(&msg); err != nil {
				cancel()
				return
			}
			switch msg.Op {
			case opCancel:
				cancel()
				return
			case opAttach, opDetach, opViewers:
				send(workerReply{Ctrl: viewerOp(msg)})
			}
		}
	}()

	ws.logf("worker: run %q dispatched (%d active)", req.Name, ws.active.Load())
	res, err := p.Run(runCtx)
	if err != nil {
		// On worker shutdown, say nothing: the dropped connection is the
		// protocol's "worker died" signal and must not be softened into a
		// run error, which dispatchers attribute to the run, not the worker.
		if ws.ctx.Err() != nil {
			return
		}
		ws.logf("worker: run %q failed: %v", req.Name, err)
		send(workerReply{Error: err.Error()})
		return
	}
	ws.logf("worker: run %q done in %v", req.Name, res.Elapsed)
	send(workerReply{Result: &RemoteResult{
		Backend: res.Backend, Viewer: res.Viewer, Viewers: res.Viewers, Elapsed: res.Elapsed,
	}})
}
