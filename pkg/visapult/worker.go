package visapult

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"visapult/internal/backend/framecache"
	"visapult/internal/core"
	"visapult/internal/wire"
)

// The scheduler's control protocol, in two wire versions over one TCP
// connection per dispatched run — mirroring the paper's deployment where a
// pool of back-end workers executes sessions near the data while a control
// plane places work on them.
//
// Version 1 is newline-delimited JSON. Client -> worker: one workerRequest
// ("ping" or "run"), optionally followed by further control messages on the
// same connection: {"op":"cancel"}, or seq-numbered viewer operations
// ("attach", "detach", "viewers") that manipulate the dispatched run's
// fan-out stage remotely — each answered by a ctrl reply echoing the sequence
// number. Worker -> client: for "ping" a single pong reply; for "run" a
// stream of frame replies (one per (PE, timestep), feeding the same
// Subscribe/SSE path local runs use) interleaved with ctrl acks and
// terminated by exactly one result or error reply.
//
// Version 2 (internal/wire/dispatch.go) carries the same conversation in
// length-prefixed CRC-checked binary frames: the spec and terminal result
// stay JSON inside their frames, while per-frame metrics, control ops and
// acks are fixed-layout, and rendered slab payloads stream back raw for
// dispatcher-side cache seeding. Negotiation is two-sided: the worker's ping
// reply advertises the highest version it speaks (WorkerHello.Wire; absent
// means 1), and the first byte of each connection tells the worker what the
// dispatcher chose — '{' opens a JSON request, the "VPD2" magic opens a v2
// stream — so either end can lag the other and the pair still talks.
//
// In both versions a worker that dies mid-run simply drops the connection —
// the missing terminal reply is how the dispatcher distinguishes a dead
// worker (re-queue the run elsewhere) from a run that failed on a healthy
// one. Pings are always JSON: they predate v2 and are the negotiation
// channel itself.

// Control protocol operations.
const (
	opPing    = "ping"
	opRun     = "run"
	opCancel  = "cancel"
	opAttach  = "attach"
	opDetach  = "detach"
	opViewers = "viewers"
)

// workerIOTimeout bounds the dispatch handshake read and each reply write on
// a worker control connection: a peer that connects and goes silent, or stops
// draining replies, breaks its own connection instead of pinning the worker.
const workerIOTimeout = 30 * time.Second

// workerRequest is a client -> worker control message (JSON form; the v2
// equivalents are wire.DispatchRun and wire.DispatchCtrl).
type workerRequest struct {
	Op   string   `json:"op"`
	Name string   `json:"name,omitempty"`
	Spec *RunSpec `json:"spec,omitempty"`
	// Viewer names the fan-out viewer an attach/detach operation targets.
	Viewer string `json:"viewer,omitempty"`
	// Seq correlates a viewer operation with its ctrl ack; the client picks
	// it, the worker echoes it.
	Seq int64 `json:"seq,omitempty"`
}

// workerReply is a worker -> client control message; exactly one field is
// populated per message.
type workerReply struct {
	Pong   *WorkerHello  `json:"pong,omitempty"`
	Frame  *FrameMetric  `json:"frame,omitempty"`
	Result *RemoteResult `json:"result,omitempty"`
	Error  string        `json:"error,omitempty"`
	// Busy marks an Error reply caused by capacity, not by the run itself.
	Busy bool `json:"busy,omitempty"`
	// Ctrl acknowledges one viewer control operation (attach/detach/viewers).
	Ctrl *ctrlAck `json:"ctrl,omitempty"`
}

// ctrlAck is the worker's answer to one seq-numbered viewer operation. A
// NoFanout ack maps back to ErrNoFanout on the client, which is how a
// coalesced follower knows to retry its attach while the remote pipeline is
// still starting.
type ctrlAck struct {
	Seq      int64            `json:"seq"`
	Err      string           `json:"err,omitempty"`
	NoFanout bool             `json:"noFanout,omitempty"`
	Viewers  []ViewerDelivery `json:"viewers,omitempty"`
}

// WorkerHello is a worker's answer to a ping: its configured capacity,
// current load, and the highest dispatch wire version it speaks.
type WorkerHello struct {
	Capacity int `json:"capacity"`
	Active   int `json:"active"`
	// Wire is the highest dispatch protocol version this worker accepts;
	// absent (zero) means a pre-v2 worker, i.e. JSON only. Dispatchers use
	// min(their own max, Wire) per worker.
	Wire int `json:"wire,omitempty"`
}

// RemoteResult is the summary a worker ships back for a completed run. It
// carries the full per-frame statistics but not the NetLogger event stream or
// the final image — those stay with the worker (remote runs report metrics;
// pixels belong to the viewer the worker's pipeline fed).
type RemoteResult struct {
	Backend RunStats      `json:"backend"`
	Viewer  ViewerStats   `json:"viewer"`
	Elapsed time.Duration `json:"elapsed"`
	// Viewers carries the per-viewer receive and delivery records of a
	// multi-viewer (fan-out) spec executed on the worker.
	Viewers []ViewerResult `json:"viewers,omitempty"`
}

// result converts the wire summary back into a facade Result.
func (rr *RemoteResult) result() *Result {
	return &Result{Backend: rr.Backend, Viewer: rr.Viewer, Viewers: rr.Viewers, Elapsed: rr.Elapsed}
}

// WorkerConfig configures ServeWorker.
type WorkerConfig struct {
	// Capacity is the number of dispatched runs the worker executes
	// concurrently (default 2); beyond it, dispatch requests are rejected
	// with a busy reply.
	Capacity int
	// FrameCacheBytes bounds a slab-texture cache shared by every run this
	// worker executes: repeat dispatches of a spec with the same content
	// identity replay rendered frames instead of raycasting again. Zero or
	// negative disables caching.
	FrameCacheBytes int64
	// MaxWireVersion caps the dispatch protocol version this worker
	// advertises and accepts: 1 pins it to JSON (exercising dispatcher
	// fallback), 0 or 2 selects the binary v2 wire.
	MaxWireVersion int
	// RenderWorkers is the default render-pool size for dispatched runs that
	// do not carry their own RunSpec.RenderWorkers; 0 leaves the facade
	// default (GOMAXPROCS).
	RenderWorkers int
	// Logf, when non-nil, receives one line per accepted and completed run.
	Logf func(format string, args ...any)
}

// ServeWorker turns the calling process into a dispatch worker: it accepts
// control connections on l and executes each dispatched RunSpec as an
// in-process pipeline, streaming per-frame metrics back as they happen.
// cmd/visapult-backend's -serve-control mode is this function; tests use it
// directly to stand up in-process fake workers.
//
// ServeWorker blocks until ctx is cancelled (returning nil) or the listener
// fails (returning the error). Cancelling ctx closes the listener and every
// in-flight connection first, then aborts the running pipelines — so a
// killed worker looks like a dropped connection to its dispatchers, which is
// what triggers their re-queue path.
func ServeWorker(ctx context.Context, l net.Listener, cfg WorkerConfig) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.Capacity <= 0 {
		cfg.Capacity = 2
	}
	maxWire := cfg.MaxWireVersion
	switch {
	case maxWire <= 0 || maxWire > wire.DispatchV2:
		maxWire = wire.DispatchV2
	case maxWire < wire.DispatchV1:
		maxWire = wire.DispatchV1
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	ws := &workerServer{ctx: ctx, capacity: cfg.Capacity, maxWire: maxWire, logf: logf,
		cache:         framecache.New(cfg.FrameCacheBytes),
		renderWorkers: cfg.RenderWorkers,
		conns:         make(map[net.Conn]struct{})}

	// Close the listener AND the accepted connections on cancellation, in
	// that order: connections dropping before any polite error reply can be
	// written is what makes a shutdown indistinguishable from a crash to the
	// dispatchers — exactly the signal their re-queueing needs.
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			l.Close()
			ws.closeConns()
		case <-watchDone:
		}
	}()

	var err error
	backoff := 5 * time.Millisecond
	for {
		conn, aerr := l.Accept()
		if aerr != nil {
			if ctx.Err() != nil || errors.Is(aerr, net.ErrClosed) {
				break
			}
			// Transient accept failures (fd exhaustion, aborted handshakes)
			// must not take the whole worker out of the pool; back off and
			// keep serving, like net/http.Server does.
			if isTransientAccept(aerr) {
				logf("worker: accept: %v (retrying in %v)", aerr, backoff)
				select {
				case <-time.After(backoff):
				case <-ctx.Done():
				}
				backoff = min(2*backoff, time.Second)
				continue
			}
			err = aerr
			break
		}
		backoff = 5 * time.Millisecond
		if !ws.track(conn) {
			conn.Close()
			break
		}
		ws.wg.Add(1)
		go ws.handle(conn)
	}
	ws.wg.Wait()
	return err
}

// isTransientAccept reports whether an Accept error is worth retrying
// rather than shutting the worker down.
func isTransientAccept(err error) bool {
	return errors.Is(err, syscall.EMFILE) ||
		errors.Is(err, syscall.ENFILE) ||
		errors.Is(err, syscall.ECONNABORTED) ||
		errors.Is(err, syscall.EINTR)
}

// workerServer is the shared state of one ServeWorker invocation.
type workerServer struct {
	ctx      context.Context
	capacity int
	maxWire  int
	logf     func(string, ...any)
	cache    *framecache.Cache // shared across runs; nil = caching disabled
	// renderWorkers is the default render-pool size for dispatched runs.
	renderWorkers int
	active        atomic.Int64
	wg            sync.WaitGroup

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
}

// track records an accepted connection for shutdown; false once closing.
func (ws *workerServer) track(c net.Conn) bool {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	if ws.closed {
		return false
	}
	ws.conns[c] = struct{}{}
	return true
}

func (ws *workerServer) untrack(c net.Conn) {
	ws.mu.Lock()
	delete(ws.conns, c)
	ws.mu.Unlock()
}

func (ws *workerServer) closeConns() {
	ws.mu.Lock()
	ws.closed = true
	conns := make([]net.Conn, 0, len(ws.conns))
	for c := range ws.conns {
		conns = append(conns, c)
	}
	ws.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// tryAcquire claims a capacity slot, failing when the worker is full.
func (ws *workerServer) tryAcquire() bool {
	for {
		a := ws.active.Load()
		if int(a) >= ws.capacity {
			return false
		}
		if ws.active.CompareAndSwap(a, a+1) {
			return true
		}
	}
}

// ctrlMsg is one decoded client control message, wire-version neutral.
type ctrlMsg struct {
	op     string
	seq    int64
	viewer string
}

// replyLink abstracts one dispatched run's control connection over the wire
// version the dispatcher chose. Send methods are safe for concurrent use
// (frames arrive from the PE goroutines while acks and the terminal reply
// come from others); next is called only by the run's monitor goroutine. A
// failed send is deliberately swallowed — a dispatcher that stopped reading
// is indistinguishable from a dead one, and the monitor's read error is what
// cancels the run.
type replyLink interface {
	// next decodes the next control message from the dispatcher.
	next() (ctrlMsg, error)
	sendFrame(fm FrameMetric)
	sendCtrlAck(ack ctrlAck)
	sendResult(rr *RemoteResult)
	sendError(msg string, busy bool)
	// sendSlab ships one rendered slab payload pair; a no-op on links whose
	// wire version (or dispatcher) does not take slab delivery.
	sendSlab(light *wire.LightPayload, heavy *wire.HeavyPayload)
	// wantSlabs reports whether the dispatcher asked for slab delivery.
	wantSlabs() bool
}

// jsonLink is the v1 replyLink: newline-delimited JSON both ways.
type jsonLink struct {
	conn net.Conn
	dec  *json.Decoder

	mu  sync.Mutex    // serializes reply writes on conn
	enc *json.Encoder // guarded by mu
}

func newJSONLink(conn net.Conn, r io.Reader) *jsonLink {
	// The encoder captures conn as a bare io.Writer, so arm the initial
	// write deadline here; send re-arms it before every reply.
	conn.SetWriteDeadline(time.Now().Add(workerIOTimeout)) //nolint:errcheck
	return &jsonLink{conn: conn, dec: json.NewDecoder(r), enc: json.NewEncoder(conn)}
}

// send writes one reply under a fresh deadline. A failed write means the
// dispatcher is gone; nothing to do.
func (l *jsonLink) send(rep workerReply) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.conn.SetWriteDeadline(time.Now().Add(workerIOTimeout)) //nolint:errcheck
	l.enc.Encode(rep)                                        //nolint:errcheck
}

func (l *jsonLink) next() (ctrlMsg, error) {
	var msg workerRequest
	if err := l.dec.Decode(&msg); err != nil {
		return ctrlMsg{}, err
	}
	return ctrlMsg{op: msg.Op, seq: msg.Seq, viewer: msg.Viewer}, nil
}

func (l *jsonLink) sendFrame(fm FrameMetric)    { l.send(workerReply{Frame: &fm}) }
func (l *jsonLink) sendCtrlAck(ack ctrlAck)     { l.send(workerReply{Ctrl: &ack}) }
func (l *jsonLink) sendResult(rr *RemoteResult) { l.send(workerReply{Result: rr}) }
func (l *jsonLink) sendError(msg string, busy bool) {
	l.send(workerReply{Error: msg, Busy: busy})
}
func (l *jsonLink) sendSlab(*wire.LightPayload, *wire.HeavyPayload) {}
func (l *jsonLink) wantSlabs() bool                                 { return false }

// v2Link is the binary replyLink: fixed-layout frames through a
// wire.DispatchConn, with pooled encode buffers and vectored writes.
type v2Link struct {
	conn  net.Conn
	dc    *wire.DispatchConn
	slabs bool
}

// write arms a fresh write deadline and sends one frame. DispatchConn
// serializes concurrent writers internally.
func (l *v2Link) write(t wire.DType, segs ...[]byte) {
	l.conn.SetWriteDeadline(time.Now().Add(workerIOTimeout)) //nolint:errcheck
	l.dc.WriteFrame(t, segs...)                              //nolint:errcheck // see replyLink: a failed send means the dispatcher is gone
}

func (l *v2Link) next() (ctrlMsg, error) {
	t, payload, err := l.dc.ReadFrame()
	if err != nil {
		return ctrlMsg{}, err
	}
	if t != wire.DCtrl {
		return ctrlMsg{}, fmt.Errorf("visapult: unexpected %v frame on dispatch control stream", t)
	}
	var c wire.DispatchCtrl
	if err := c.Decode(payload); err != nil {
		return ctrlMsg{}, err
	}
	var op string
	switch c.Op {
	case wire.DCtrlCancel:
		op = opCancel
	case wire.DCtrlAttach:
		op = opAttach
	case wire.DCtrlDetach:
		op = opDetach
	case wire.DCtrlViewers:
		op = opViewers
	default:
		return ctrlMsg{}, fmt.Errorf("visapult: unknown dispatch control op %d", c.Op)
	}
	return ctrlMsg{op: op, seq: c.Seq, viewer: c.Viewer}, nil
}

func (l *v2Link) sendFrame(fm FrameMetric) {
	df := dispatchFrameOf(fm)
	buf := wire.GetDispatchBuf()
	*buf = df.Append(*buf)
	l.write(wire.DFrame, *buf)
	wire.PutDispatchBuf(buf)
}

func (l *v2Link) sendCtrlAck(ack ctrlAck) {
	wa := wire.DispatchCtrlAck{Seq: ack.Seq, NoFanout: ack.NoFanout, Err: ack.Err}
	if len(ack.Viewers) > 0 {
		wa.Viewers = make([]wire.DispatchViewer, len(ack.Viewers))
		for i, v := range ack.Viewers {
			wa.Viewers[i] = dispatchViewerOf(v)
		}
	}
	buf := wire.GetDispatchBuf()
	*buf = wa.Append(*buf)
	l.write(wire.DCtrlAck, *buf)
	wire.PutDispatchBuf(buf)
}

func (l *v2Link) sendResult(rr *RemoteResult) {
	// The terminal result is sent once per run: JSON inside a binary frame
	// keeps the cold path simple without reopening the schema.
	data, err := json.Marshal(rr)
	if err != nil {
		l.sendError("visapult: encoding run result: "+err.Error(), false)
		return
	}
	l.write(wire.DResult, data)
}

func (l *v2Link) sendError(msg string, busy bool) {
	de := wire.DispatchError{Busy: busy, Msg: msg}
	buf := wire.GetDispatchBuf()
	*buf = de.Append(*buf)
	l.write(wire.DError, *buf)
	wire.PutDispatchBuf(buf)
}

func (l *v2Link) sendSlab(light *wire.LightPayload, heavy *wire.HeavyPayload) {
	buf := wire.GetDispatchBuf()
	hdr, err := wire.AppendDispatchSlabHeader(*buf, light, heavy)
	*buf = hdr
	if err == nil {
		// Header and texture go out as two segments of one vectored write;
		// the texture bytes are never copied.
		l.write(wire.DSlab, *buf, heavy.Texture)
	}
	wire.PutDispatchBuf(buf)
}

func (l *v2Link) wantSlabs() bool { return l.slabs }

// dispatchFrameOf converts a frame metric to its fixed-layout wire form.
func dispatchFrameOf(fm FrameMetric) wire.DispatchFrame {
	return wire.DispatchFrame{
		Frame: fm.Frame, PE: fm.PE,
		LoadNS: int64(fm.Load), RenderNS: int64(fm.Render),
		SendNS: int64(fm.Send), CopyNS: int64(fm.Copy),
		BytesLoaded: fm.BytesLoaded, BytesSent: fm.BytesSent,
		CacheHit: fm.CacheHit,
	}
}

// frameMetricOf is the inverse of dispatchFrameOf.
func frameMetricOf(df wire.DispatchFrame) FrameMetric {
	return FrameMetric{
		Frame: df.Frame, PE: df.PE,
		Load: time.Duration(df.LoadNS), Render: time.Duration(df.RenderNS),
		Send: time.Duration(df.SendNS), Copy: time.Duration(df.CopyNS),
		BytesLoaded: df.BytesLoaded, BytesSent: df.BytesSent,
		CacheHit: df.CacheHit,
	}
}

// dispatchViewerOf converts a delivery record to its wire form.
func dispatchViewerOf(v ViewerDelivery) wire.DispatchViewer {
	var attached int64
	if !v.Attached.IsZero() {
		attached = v.Attached.UnixNano()
	}
	return wire.DispatchViewer{
		ID: v.ID, AttachedUnixNano: attached,
		StartFrame: v.StartFrame, FramesSent: v.FramesSent,
		FramesDropped: v.FramesDropped, QueueDepth: v.QueueDepth,
		BytesSent: v.BytesSent, Detached: v.Detached, Error: v.Error,
	}
}

// viewerDeliveryOf is the inverse of dispatchViewerOf.
func viewerDeliveryOf(v wire.DispatchViewer) ViewerDelivery {
	var attached time.Time
	if v.AttachedUnixNano != 0 {
		attached = time.Unix(0, v.AttachedUnixNano)
	}
	return ViewerDelivery{
		ID: v.ID, Attached: attached,
		StartFrame: v.StartFrame, FramesSent: v.FramesSent,
		FramesDropped: v.FramesDropped, QueueDepth: v.QueueDepth,
		BytesSent: v.BytesSent, Detached: v.Detached, Error: v.Error,
	}
}

// handle services one control connection: a peek decides the wire version,
// then a single request, then (for runs) the reply stream.
func (ws *workerServer) handle(conn net.Conn) {
	defer ws.wg.Done()
	defer ws.untrack(conn)
	defer conn.Close()

	// The first read is a handshake: a client that connects and then sends
	// nothing must not pin this goroutine forever.
	conn.SetReadDeadline(time.Now().Add(workerIOTimeout)) //nolint:errcheck
	br := bufio.NewReaderSize(conn, 64<<10)
	first, err := br.Peek(1)
	if err != nil {
		return
	}
	if first[0] != '{' {
		// Not JSON: this must be the v2 preamble. A JSON-pinned worker
		// (MaxWireVersion 1) never advertised v2, so a binary opener is a
		// protocol violation — drop it.
		if ws.maxWire < wire.DispatchV2 {
			return
		}
		var magic [len(wire.DispatchMagic)]byte
		if _, err := io.ReadFull(br, magic[:]); err != nil || string(magic[:]) != wire.DispatchMagic {
			return
		}
		ws.handleV2(conn, br)
		return
	}
	ws.handleJSON(conn, br)
}

// handleJSON services a v1 (JSON) connection: ping, or a run request.
func (ws *workerServer) handleJSON(conn net.Conn, br *bufio.Reader) {
	link := newJSONLink(conn, br)
	var req workerRequest
	if err := link.dec.Decode(&req); err != nil {
		return
	}
	// Past the handshake the request stream is the run-cancel monitor, which
	// legitimately waits as long as the run does.
	conn.SetReadDeadline(time.Time{}) //nolint:errcheck

	switch req.Op {
	case opPing:
		link.send(workerReply{Pong: &WorkerHello{
			Capacity: ws.capacity,
			Active:   int(ws.active.Load()),
			Wire:     ws.maxWire,
		}})
	case opRun:
		ws.run(req.Name, req.Spec, link)
	default:
		link.sendError("visapult: unknown control op "+req.Op, false)
	}
}

// handleV2 services a binary connection whose magic has been consumed: the
// first frame must be the run request.
func (ws *workerServer) handleV2(conn net.Conn, br *bufio.Reader) {
	// The framing captures conn as a bare io.Writer, so arm the initial
	// write deadline here; v2Link.write re-arms it before every reply.
	conn.SetWriteDeadline(time.Now().Add(workerIOTimeout)) //nolint:errcheck
	dc := wire.NewDispatchConn(br, conn)
	link := &v2Link{conn: conn, dc: dc}
	t, payload, err := dc.ReadFrame()
	if err != nil || t != wire.DRun {
		return
	}
	var rm wire.DispatchRun
	if err := rm.Decode(payload); err != nil {
		return
	}
	spec := new(RunSpec)
	// Decode the spec before the monitor goroutine's next ReadFrame recycles
	// the buffer rm.Spec aliases.
	if err := json.Unmarshal(rm.Spec, spec); err != nil {
		link.sendError("visapult: malformed run spec: "+err.Error(), false)
		return
	}
	conn.SetReadDeadline(time.Time{}) //nolint:errcheck // the control stream waits as long as the run
	link.slabs = rm.WantSlabs
	ws.run(rm.Name, spec, link)
}

// run executes one dispatched spec, streaming frames and a terminal reply.
func (ws *workerServer) run(name string, spec *RunSpec, link replyLink) {
	if spec == nil {
		link.sendError("visapult: dispatch request carries no spec", false)
		return
	}
	if !ws.tryAcquire() {
		link.sendError("visapult: worker at capacity", true)
		return
	}
	defer ws.active.Add(-1)

	opts, err := spec.Options()
	if err != nil {
		link.sendError(err.Error(), false)
		return
	}
	// The worker-wide render-pool default applies only when the dispatched
	// spec does not size the pool itself.
	if ws.renderWorkers > 0 && spec.RenderWorkers == 0 {
		opts = append(opts, WithRenderWorkers(ws.renderWorkers))
	}
	opts = append(opts, WithFrameHook(func(fm FrameMetric) {
		link.sendFrame(fm)
	}))
	if link.wantSlabs() {
		opts = append(opts, withSlabHook(func(light *wire.LightPayload, heavy *wire.HeavyPayload) {
			link.sendSlab(light, heavy)
		}))
	}
	if ws.cache != nil {
		dataset, tf := spec.cacheIdentity()
		opts = append(opts, withFrameCache(ws.cache, dataset, tf))
	}
	// Capture the run's fan-out control once its pipeline goes live, so the
	// monitor goroutine can service remote viewer attach/detach against it.
	var fanoutMu sync.Mutex
	var fanout *core.FanoutControl // guarded by fanoutMu
	opts = append(opts, withFanoutControl(func(fc *core.FanoutControl) {
		fanoutMu.Lock()
		fanout = fc
		fanoutMu.Unlock()
	}))
	p, err := New(opts...)
	if err != nil {
		link.sendError(err.Error(), false)
		return
	}

	// viewerOp services one attach/detach/viewers control message against the
	// live fan-out. Before the pipeline publishes its control (or for a spec
	// without viewers) the ack carries NoFanout, which the client maps back to
	// ErrNoFanout — the retryable "not live yet" signal.
	viewerOp := func(msg ctrlMsg) ctrlAck {
		ack := ctrlAck{Seq: msg.seq}
		fanoutMu.Lock()
		fc := fanout
		fanoutMu.Unlock()
		if fc == nil || !fc.Active() {
			ack.NoFanout = true
			ack.Err = ErrNoFanout.Error()
			return ack
		}
		switch msg.op {
		case opAttach:
			if err := fc.Attach(msg.viewer); err != nil {
				ack.Err = err.Error()
			}
		case opDetach:
			if err := fc.Detach(msg.viewer); err != nil {
				ack.Err = err.Error()
			}
		case opViewers:
			ack.Viewers = fc.Viewers()
		}
		return ack
	}

	// The run lives as long as the worker and the dispatcher both do: the
	// monitor goroutine cancels it when the client drops the connection or
	// sends an explicit cancel, and services viewer control operations in
	// between.
	runCtx, cancel := context.WithCancel(ws.ctx)
	defer cancel()
	go func() {
		for {
			msg, err := link.next()
			if err != nil {
				cancel()
				return
			}
			switch msg.op {
			case opCancel:
				cancel()
				return
			case opAttach, opDetach, opViewers:
				link.sendCtrlAck(viewerOp(msg))
			}
		}
	}()

	ws.logf("worker: run %q dispatched (%d active)", name, ws.active.Load())
	res, err := p.Run(runCtx)
	if err != nil {
		// On worker shutdown, say nothing: the dropped connection is the
		// protocol's "worker died" signal and must not be softened into a
		// run error, which dispatchers attribute to the run, not the worker.
		if ws.ctx.Err() != nil {
			return
		}
		ws.logf("worker: run %q failed: %v", name, err)
		link.sendError(err.Error(), false)
		return
	}
	ws.logf("worker: run %q done in %v", name, res.Elapsed)
	link.sendResult(&RemoteResult{
		Backend: res.Backend, Viewer: res.Viewer, Viewers: res.Viewers, Elapsed: res.Elapsed,
	})
}
