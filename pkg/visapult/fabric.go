package visapult

import (
	"fmt"
	"time"

	"visapult/internal/backend"
	"visapult/internal/dpss/fabric"
)

// Fabric is a federation of DPSS clusters behind one placement and failover
// layer: datasets are sharded across the member clusters by rendezvous
// hashing (timestep-granular for time-series), written to R replicas, and
// read with transparent client-side failover — the paper's Combustion
// Corridor topology of multiple geographically distinct caches. See
// visapult/internal/dpss/fabric for the full semantics.
type Fabric = fabric.Fabric

// FabricConfig sizes a Fabric built with NewFabric.
type FabricConfig = fabric.Config

// FabricCluster names one member cluster and its master address.
type FabricCluster = fabric.ClusterSpec

// FabricHealth is a point-in-time snapshot of one member cluster's health.
type FabricHealth = fabric.ClusterHealth

// FabricDatasetReplicas describes one dataset's presence across the
// federation, replicas in read-priority order.
type FabricDatasetReplicas = fabric.DatasetReplicas

// FabricEpoch is the serializable placement-epoch state: the member subset
// new placements hash over, plus — mid-migration — the previous epoch reads
// still consult. See Fabric.Epoch / Fabric.AdvanceEpoch.
type FabricEpoch = fabric.EpochState

// FabricRebalanceOptions shapes one rebalance-engine run (progress callback,
// migration parallelism).
type FabricRebalanceOptions = fabric.RebalanceOptions

// FabricRebalanceReport summarizes one rebalance-engine run: the moves, the
// bytes migrated, the epoch migrated onto.
type FabricRebalanceReport = fabric.RebalanceReport

// FabricDatasetMove is the live progress record of copying one dataset onto
// one target cluster during a rebalance, repair or drain-to-empty.
type FabricDatasetMove = fabric.DatasetMove

// NewFabric validates the config and builds a federation handle. No
// connection is made until first use.
var NewFabric = fabric.New

// FabricSource reads timesteps from a federated DPSS fabric with
// replica-aware failover. It implements Source; Close releases the cached
// dataset handles (the fabric itself stays up).
type FabricSource = backend.FabricSource

// NewFabricSource builds a source reading from the given fabric. base is the
// dataset base name (each timestep is a separate dataset named base.tNNNN,
// sharded and replicated across the federation); nx, ny, nz are the
// per-timestep volume dimensions; steps is the number of timesteps warmed
// into the fabric.
func NewFabricSource(fb *Fabric, base string, nx, ny, nz, steps int) (*FabricSource, error) {
	return backend.NewFabricSource(fb, base, nx, ny, nz, steps)
}

// FabricSpec is the serializable description of a federation: everything a
// remote worker needs to resolve the same clusters, placement and
// replication as the scheduler that shipped it the run (it rides in
// RunSpec.Fabric across the dispatch protocol).
type FabricSpec struct {
	Clusters []FabricClusterSpec `json:"clusters"`
	// Replication is the replica count per dataset (0 selects the fabric
	// default of 2, capped at the cluster count).
	Replication int `json:"replication,omitempty"`
	// AttemptTimeoutMs bounds one read attempt against one replica before
	// failing over (0 = no bound).
	AttemptTimeoutMs int `json:"attemptTimeoutMs,omitempty"`
	// Stripes is how many parallel striped connections each member client
	// keeps per block server (0 selects the dpss client default). It shapes
	// only the data path, not placement, so it is excluded from the canonical
	// run-spec hash.
	Stripes int `json:"stripes,omitempty"`
	// Epoch, when non-nil, seeds the resolved fabric's placement epoch. A
	// scheduler mid-rebalance stamps its own epoch state here (see
	// Fabric.Epoch), so a remote worker resolving the spec computes the same
	// placements — including the previous-epoch replicas a migration is still
	// draining from. Nil selects the birth epoch over every member.
	Epoch *FabricEpochSpec `json:"epoch,omitempty"`
}

// FabricClusterSpec is the serializable form of one member cluster.
type FabricClusterSpec struct {
	Name   string `json:"name"`
	Master string `json:"master"`
}

// FabricEpochSpec is the JSON form of a placement epoch (FabricEpoch).
type FabricEpochSpec struct {
	Version      int      `json:"version"`
	Eligible     []string `json:"eligible,omitempty"`
	PrevEligible []string `json:"prevEligible,omitempty"`
}

// FabricEpochSpecOf captures a live fabric's current epoch in spec form, for
// stamping into the RunSpecs shipped to remote workers.
func FabricEpochSpecOf(fb *Fabric) *FabricEpochSpec {
	e := fb.Epoch()
	return &FabricEpochSpec{Version: e.Version, Eligible: e.Eligible, PrevEligible: e.PrevEligible}
}

// Build constructs the federation handle the spec describes. replication >
// 0 overrides the spec's own factor (the WithReplication hook).
func (s *FabricSpec) Build(replication int) (*Fabric, error) {
	if s == nil || len(s.Clusters) == 0 {
		return nil, fmt.Errorf("visapult: fabric spec needs at least one cluster")
	}
	cfg := FabricConfig{
		Replication:    s.Replication,
		AttemptTimeout: time.Duration(s.AttemptTimeoutMs) * time.Millisecond,
		Stripes:        s.Stripes,
	}
	if s.Epoch != nil {
		cfg.Epoch = &FabricEpoch{
			Version:      s.Epoch.Version,
			Eligible:     s.Epoch.Eligible,
			PrevEligible: s.Epoch.PrevEligible,
		}
	}
	if replication > 0 {
		cfg.Replication = replication
	}
	for _, c := range s.Clusters {
		cfg.Clusters = append(cfg.Clusters, FabricCluster{Name: c.Name, Master: c.Master})
	}
	return NewFabric(cfg)
}

// FabricDataset describes the warmed time-series a fabric-fed pipeline
// reads: the dataset base name, the per-timestep volume dimensions, and how
// many timesteps were staged.
type FabricDataset struct {
	Base      string `json:"base"`
	NX        int    `json:"nx"`
	NY        int    `json:"ny"`
	NZ        int    `json:"nz"`
	Timesteps int    `json:"timesteps"`
}

func (ds FabricDataset) validate() error {
	if ds.Base == "" {
		return fmt.Errorf("visapult: fabric dataset needs a base name")
	}
	if ds.NX <= 0 || ds.NY <= 0 || ds.NZ <= 0 || ds.Timesteps <= 0 {
		return fmt.Errorf("visapult: invalid fabric dataset geometry %dx%dx%d x %d steps",
			ds.NX, ds.NY, ds.NZ, ds.Timesteps)
	}
	return nil
}
