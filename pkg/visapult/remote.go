package visapult

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"visapult/internal/backend"
	"visapult/internal/netlogger"
	"visapult/internal/viewer"
	"visapult/internal/wire"
)

// The split-process deployment of the paper's field tests: the back end runs
// near the data (RunBackend) and streams slab textures over one TCP
// connection per PE to a viewer on the desktop (ServeViewer). The in-process
// equivalent is Pipeline with TransportTCP.

// BackendConfig describes a standalone back-end process.
type BackendConfig struct {
	// ViewerAddr is the host:port of the viewer accepting PE connections.
	ViewerAddr string
	// ViewerAddrs, when non-empty, multicasts the run to several viewer
	// processes at once through the back end's fan-out stage (the paper's
	// ImmersaDesk + tiled display exhibit): every frame is rendered once and
	// its per-slab textures are shipped to each address over that viewer's
	// own connections and bounded send queue, so one slow or dead viewer
	// loses frames instead of stalling the render loop or the others.
	// ViewerAddr is ignored when ViewerAddrs is set.
	ViewerAddrs []string
	// ViewerQueue bounds each fan-out viewer's send queue in (PE, frame)
	// pairs; 0 selects the default (32). Only used with ViewerAddrs.
	ViewerQueue int
	// PEs is the number of processing elements (default 4).
	PEs int
	// Timesteps bounds the run; 0 means every timestep of the source.
	Timesteps int
	// Mode selects serial or overlapped loading.
	Mode Mode
	// Source supplies the raw data. Required.
	Source Source
	// FollowView applies the viewer's best-axis hints to the slab
	// decomposition (section 3.3). When false the hints are still drained
	// off the connections — required for a clean teardown — but ignored.
	FollowView bool
	// RenderWorkers sizes the back end's shared render pool; <= 0 selects
	// GOMAXPROCS. See backend.Config.RenderWorkers.
	RenderWorkers int
	// Instrument enables NetLogger instrumentation; the events are returned
	// in BackendReport.Events.
	Instrument bool
}

// BackendReport is what a standalone back-end run did.
type BackendReport struct {
	Stats  RunStats
	Events []Event
	// Viewers is the per-viewer delivery record of a multicast run (one
	// entry per ViewerAddrs address, in order); empty for single-viewer
	// runs.
	Viewers []ViewerDelivery
}

// RunBackend dials one viewer connection per PE, executes the back end, and
// announces end-of-stream. Cancelling ctx aborts the run at the next phase
// boundary.
func RunBackend(ctx context.Context, cfg BackendConfig) (*BackendReport, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.Source == nil {
		return nil, errors.New("visapult: BackendConfig.Source is required")
	}
	if cfg.PEs <= 0 {
		cfg.PEs = 4
	}
	if len(cfg.ViewerAddrs) > 0 {
		return runBackendFanout(ctx, cfg)
	}
	if cfg.ViewerAddr == "" {
		return nil, errors.New("visapult: BackendConfig.ViewerAddr is required")
	}

	var dialer net.Dialer
	sinks := make([]backend.FrameSink, cfg.PEs)
	conns := make([]*wire.Conn, cfg.PEs)
	defer func() {
		for _, c := range conns {
			if c != nil {
				c.Close()
			}
		}
	}()
	for i := range sinks {
		c, err := dialer.DialContext(ctx, "tcp", cfg.ViewerAddr)
		if err != nil {
			return nil, fmt.Errorf("visapult: connecting PE %d to viewer %s: %w", i, cfg.ViewerAddr, err)
		}
		conns[i] = wire.NewConn(c)
		sinks[i] = conns[i]
	}

	var logger *netlogger.Logger
	if cfg.Instrument {
		logger = netlogger.New(hostname("backend-host"), "backend")
	}
	be, err := backend.New(backend.Config{
		PEs: cfg.PEs, Timesteps: cfg.Timesteps, Mode: cfg.Mode,
		Source: cfg.Source, Sinks: sinks, Logger: logger,
		RenderWorkers: cfg.RenderWorkers,
	})
	if err != nil {
		return nil, err
	}

	// A cancelled context closes the connections immediately: that is what
	// unblocks a PE stuck mid-write against a stalled viewer (the barrier
	// abort alone cannot interrupt a full TCP send buffer).
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			for _, c := range conns {
				c.Close()
			}
		case <-watchDone:
		}
	}()

	// Drain each connection's return channel, steering the decomposition by
	// the viewer's axis hints (section 3.3). Draining also keeps the socket's
	// receive buffer empty so the teardown below is a clean FIN, not a reset.
	var hintWG sync.WaitGroup
	for _, c := range conns {
		hintWG.Add(1)
		go func(c *wire.Conn) {
			defer hintWG.Done()
			for {
				m, err := c.ReadMessage()
				if err != nil {
					return
				}
				if m.Type != wire.MsgAxisHint || !cfg.FollowView {
					continue
				}
				if hint, err := wire.DecodeAxisHint(m); err == nil {
					be.SetAxis(hint.Axis)
				}
			}
		}(c)
	}

	stats, err := be.Run(ctx)
	if err != nil {
		return nil, err
	}
	for _, c := range conns {
		c.SendDone()
	}
	// Wait for the viewer to read the end-of-stream marker and close its
	// side (the hint readers end on EOF) before closing ours; bounded so a
	// stuck viewer cannot wedge the shutdown.
	drained := make(chan struct{})
	go func() { hintWG.Wait(); close(drained) }()
	select {
	case <-drained:
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
	}
	rep := &BackendReport{Stats: stats}
	if logger != nil {
		col := netlogger.NewCollector()
		col.AddLogger(logger)
		rep.Events = col.Events()
	}
	return rep, nil
}

// runBackendFanout is RunBackend's multicast path: one render, N viewer
// processes, each fed through the fan-out stage over its own per-PE
// connections.
func runBackendFanout(ctx context.Context, cfg BackendConfig) (*BackendReport, error) {
	fan, err := backend.NewFanout(cfg.PEs, cfg.ViewerQueue)
	if err != nil {
		return nil, err
	}

	var dialer net.Dialer
	var conns []*wire.Conn // every dialed connection, for teardown
	closeConns := func() {
		for _, c := range conns {
			c.Close()
		}
	}
	// Setup-failure cleanup: viewers attached before the failure already
	// have sender goroutines parked on their queues; closing the fan ends
	// them (queues are empty this early, so the grace is never consumed).
	failCleanup := func() {
		closeConns()
		fan.Close(time.Second)
	}
	var logger *netlogger.Logger
	if cfg.Instrument {
		logger = netlogger.New(hostname("backend-host"), "backend")
	}
	be, err := backend.New(backend.Config{
		PEs: cfg.PEs, Timesteps: cfg.Timesteps, Mode: cfg.Mode,
		Source: cfg.Source, Sinks: fan.Sinks(), Logger: logger,
		RenderWorkers: cfg.RenderWorkers,
	})
	if err != nil {
		return nil, err
	}

	// Dial one connection per PE per viewer and attach each viewer to the
	// fan-out. The first viewer's axis hints steer the decomposition when
	// FollowView is set; every connection's return channel is drained either
	// way so teardown ends in a clean FIN.
	var hintWG sync.WaitGroup
	for vi, addr := range cfg.ViewerAddrs {
		sinks := make([]backend.FrameSink, cfg.PEs)
		for pe := 0; pe < cfg.PEs; pe++ {
			c, err := dialer.DialContext(ctx, "tcp", addr)
			if err != nil {
				failCleanup()
				return nil, fmt.Errorf("visapult: connecting PE %d to viewer %s: %w", pe, addr, err)
			}
			conn := wire.NewConn(c)
			conns = append(conns, conn)
			sinks[pe] = conn
			primary := vi == 0
			hintWG.Add(1)
			go func(conn *wire.Conn) {
				defer hintWG.Done()
				for {
					m, err := conn.ReadMessage()
					if err != nil {
						return
					}
					if m.Type != wire.MsgAxisHint || !cfg.FollowView || !primary {
						continue
					}
					if hint, err := wire.DecodeAxisHint(m); err == nil {
						be.SetAxis(hint.Axis)
					}
				}
			}(conn)
		}
		if err := fan.Attach(fmt.Sprintf("viewer-%d:%s", vi, addr), sinks); err != nil {
			failCleanup()
			return nil, err
		}
	}

	// A cancelled context closes every connection: that unblocks fan-out
	// senders stuck mid-write against stalled viewers.
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			closeConns()
		case <-watchDone:
		}
	}()

	stats, runErr := be.Run(ctx)
	// Flush the queues, announce end-of-stream on every healthy connection,
	// give the viewers a moment to read it, then tear the sockets down. The
	// done markers go out concurrently and the wait is bounded: a connection
	// wedged behind a stalled viewer would otherwise block the teardown on
	// its write lock.
	fan.Close(5 * time.Second)
	var doneWG sync.WaitGroup
	for _, c := range conns {
		doneWG.Add(1)
		go func(c *wire.Conn) { defer doneWG.Done(); c.SendDone() }(c)
	}
	drained := make(chan struct{})
	go func() { doneWG.Wait(); hintWG.Wait(); close(drained) }()
	select {
	case <-drained:
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
	}
	closeConns()
	if runErr != nil {
		return nil, runErr
	}

	rep := &BackendReport{Stats: stats, Viewers: fan.Viewers()}
	if logger != nil {
		col := netlogger.NewCollector()
		col.AddLogger(logger)
		rep.Events = col.Events()
	}
	return rep, nil
}

// ViewerConfig describes a standalone viewer process.
type ViewerConfig struct {
	// ListenAddr is the host:port to accept back-end connections on.
	ListenAddr string
	// PEs is the number of back-end connections to expect (default 4).
	PEs int
	// Width and Height size the rendered view (default 512x512).
	Width, Height int
	// ViewAngle is the camera rotation about Y in radians.
	ViewAngle float64
	// RenderLoop starts the decoupled render goroutine while serving.
	RenderLoop bool
	// Instrument enables NetLogger instrumentation.
	Instrument bool
	// OnListen, when non-nil, is called with the bound address before the
	// viewer starts accepting (useful with a ":0" listen address).
	OnListen func(addr net.Addr)
}

// ViewerReport is what a standalone viewer served.
type ViewerReport struct {
	Stats      ViewerStats
	Events     []Event
	FinalImage *Image
}

// ServeViewer accepts one TCP connection per expected PE, services them
// concurrently until every stream ends, and returns the assembled view.
// Cancelling ctx closes the listener and unwinds the service goroutines.
func ServeViewer(ctx context.Context, cfg ViewerConfig) (*ViewerReport, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.PEs <= 0 {
		cfg.PEs = 4
	}
	if cfg.ListenAddr == "" {
		return nil, errors.New("visapult: ViewerConfig.ListenAddr is required")
	}

	var logger *netlogger.Logger
	if cfg.Instrument {
		logger = netlogger.New(hostname("viewer-host"), "viewer")
	}
	vw, err := viewer.New(viewer.Config{
		PEs: cfg.PEs, Logger: logger,
		ViewWidth: cfg.Width, ViewHeight: cfg.Height,
	})
	if err != nil {
		return nil, err
	}
	vw.SetViewAngle(cfg.ViewAngle)
	if cfg.RenderLoop {
		vw.StartRenderLoop(0)
		defer vw.Stop()
	}

	var lc net.ListenConfig
	inner, err := lc.Listen(ctx, "tcp", cfg.ListenAddr)
	if err != nil {
		return nil, err
	}
	l := &trackingListener{Listener: inner}
	defer l.CloseAll()
	if cfg.OnListen != nil {
		cfg.OnListen(l.Addr())
	}

	// A cancelled context closes the listener (failing a pending Accept) AND
	// every accepted PE connection, so service goroutines blocked reading a
	// stalled back end unwind too.
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			l.CloseAll()
		case <-watchDone:
		}
	}()

	serveErr := vw.Serve(l)
	if ctxErr := ctx.Err(); ctxErr != nil {
		return nil, ctxErr
	}
	if serveErr != nil {
		return nil, serveErr
	}

	rep := &ViewerReport{Stats: vw.Stats()}
	if img, err := vw.CompositeView(); err == nil {
		rep.FinalImage = img
	}
	if logger != nil {
		col := netlogger.NewCollector()
		col.AddLogger(logger)
		rep.Events = col.Events()
	}
	return rep, nil
}

// trackingListener remembers the connections it accepts so a cancellation
// can close them along with the listener itself.
type trackingListener struct {
	net.Listener
	mu     sync.Mutex
	closed bool
	conns  []net.Conn
}

// Accept implements net.Listener, recording the accepted connection. A
// connection that lands in the window between CloseAll's snapshot and the
// append is closed here instead of escaping the teardown.
func (t *trackingListener) Accept() (net.Conn, error) {
	c, err := t.Listener.Accept()
	if err != nil {
		return nil, err
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		c.Close()
		return nil, net.ErrClosed
	}
	t.conns = append(t.conns, c)
	t.mu.Unlock()
	return c, nil
}

// CloseAll closes the listener and every connection accepted through it.
func (t *trackingListener) CloseAll() {
	t.Listener.Close()
	t.mu.Lock()
	t.closed = true
	conns := t.conns
	t.conns = nil
	t.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// hostname returns the OS hostname, falling back to def.
func hostname(def string) string {
	h, err := os.Hostname()
	if err != nil || h == "" {
		return def
	}
	return h
}

// WriteULM serializes events as a ULM log to a file, the format netlogd and
// nlv consume.
func WriteULM(path string, events []Event) error {
	if len(events) == 0 {
		return errors.New("visapult: no events to write")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	c := netlogger.NewCollector()
	c.Add(events...)
	if err := c.WriteULM(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// WritePPM serializes an image as a PPM file.
func WritePPM(path string, img *Image) error {
	if img == nil {
		return errors.New("visapult: nil image")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := img.WritePPM(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Deadline is a tiny helper: it returns a context cancelled after d, or the
// parent unchanged when d <= 0.
func Deadline(parent context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	if parent == nil {
		parent = context.Background()
	}
	if d <= 0 {
		return context.WithCancel(parent)
	}
	return context.WithTimeout(parent, d)
}
