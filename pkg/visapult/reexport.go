package visapult

import (
	"visapult/internal/backend"
	"visapult/internal/core"
	"visapult/internal/netlogger"
	"visapult/internal/netsim"
	"visapult/internal/platform"
	"visapult/internal/render"
	"visapult/internal/stats"
	"visapult/internal/transfer"
	"visapult/internal/viewer"
	"visapult/internal/volume"
)

// This file is the curated alias surface of the facade: the internal types a
// public consumer legitimately touches when building pipelines, wrapping
// sources, or reproducing the paper's campaigns. Aliases (type X = internal.Y)
// rather than wrappers, so values flow between the facade and the pipeline
// internals without conversion.

// Mode selects how each PE schedules data loading relative to rendering
// (section 4.3 and Appendix B of the paper).
type Mode = backend.Mode

// Back-end execution modes.
const (
	// Serial loads timestep t, renders it, sends it, then starts t+1.
	Serial = backend.Serial
	// Overlapped loads timestep t+1 while rendering t (the paper's pthread +
	// shared-memory design).
	Overlapped = backend.Overlapped
	// OverlappedProcessPair is the rejected MPI-only alternative of Appendix
	// B: the loaded timestep is copied between reader and renderer.
	OverlappedProcessPair = backend.OverlappedProcessPair
)

// Transport selects how the back end's payloads reach the viewer.
type Transport = core.Transport

// Pipeline transports.
const (
	// TransportLocal delivers payloads with an in-process sink (no sockets).
	TransportLocal = core.TransportLocal
	// TransportTCP gives every PE its own TCP connection to the viewer.
	TransportTCP = core.TransportTCP
	// TransportStriped gives every PE a striped bundle of TCP connections
	// (section 3.4's "striped sockets").
	TransportStriped = core.TransportStriped
)

// Axis identifies a slab decomposition axis.
type Axis = volume.Axis

// Decomposition axes.
const (
	AxisX = volume.AxisX
	AxisY = volume.AxisY
	AxisZ = volume.AxisZ
)

// Volume is a dense float32 scalar field; the payload of every Source.
type Volume = volume.Volume

// NewVolume allocates a zero-filled volume, panicking on non-positive
// dimensions.
func NewVolume(nx, ny, nz int) *Volume { return volume.MustNew(nx, ny, nz) }

// Region is an axis-aligned sub-box of a volume, the unit of a Source load.
type Region = volume.Region

// RunStats aggregates one back-end run; FrameMetric records one (PE,
// timestep) within it.
type (
	RunStats    = backend.RunStats
	FrameMetric = backend.FrameStats
)

// ViewerStats is the viewer-side counter snapshot of a run.
type ViewerStats = viewer.Stats

// ViewerDelivery is the fan-out stage's delivery record for one attached
// viewer: frames sent and dropped, queue depth, bytes, and whether (and why)
// the viewer detached.
type ViewerDelivery = backend.ViewerDelivery

// ViewerResult reports one viewer of a WithViewers fan-out run: its
// receive-side counters plus its ViewerDelivery record.
type ViewerResult = core.ViewerResult

// Image is a float RGBA image; WritePPM serializes it for display.
type Image = render.Image

// TransferFunction maps a scalar voxel value to premultiplied RGBA.
type TransferFunction = render.TransferFunction

// CombustionTF returns the default combustion (fire) transfer function.
func CombustionTF() TransferFunction { return render.DefaultCombustionTF() }

// CosmologyTF returns the cool-palette transfer function used for the SC99
// cosmology dataset.
func CosmologyTF() TransferFunction { return render.DefaultCosmologyTF() }

// FireTF is the black-body combustion colormap (TransferSpec kind "fire").
type FireTF = render.FireTF

// GrayscaleTF is the linear gray ramp (TransferSpec kind "grayscale").
type GrayscaleTF = render.Grayscale

// CoolTF is the blue/white cosmology colormap (TransferSpec kind "cool").
type CoolTF = render.CoolTF

// PiecewiseTF is a table-driven transfer function (TransferSpec kind
// "piecewise"): control points are linearly interpolated.
type PiecewiseTF = render.Piecewise

// TransferControlPoint is one (value -> color) entry of a PiecewiseTF.
type TransferControlPoint = render.ControlPoint

// RenderPoolStats is a process-wide snapshot of render-pool occupancy:
// live/busy workers, queued slab renders, and completed frame/tile counts.
type RenderPoolStats = render.PoolStats

// GlobalRenderPoolStats reports render-pool occupancy aggregated across every
// pool in the process; the daemons expose it on /metrics.
func GlobalRenderPoolStats() RenderPoolStats { return render.GlobalPoolStats() }

// Event is one NetLogger event; see package visapult/pkg/visapult/netlog for
// analysis, ULM serialization and NLV rendering.
type Event = netlogger.Event

// Shaper is a token-bucket bandwidth shaper used to emulate WAN links on
// real connections.
type Shaper = netsim.Shaper

// NewShaper builds a shaper from a byte rate and a burst size in bytes.
func NewShaper(rateBytesPerSec, burstBytes float64) *Shaper {
	return netsim.NewShaper(rateBytesPerSec, burstBytes)
}

// ShaperForLink builds a shaper matching a testbed link's bandwidth.
func ShaperForLink(l Link) *Shaper { return netsim.ShaperForLink(l) }

// Link is one modelled network segment; Path a sequence of them.
type (
	Link = netsim.Link
	Path = netsim.Path
)

// NewPath builds a path from hops; its bandwidth is the bottleneck hop's.
func NewPath(name string, hops ...Link) Path { return netsim.NewPath(name, hops...) }

// The paper's testbed links.
var (
	NTON   = netsim.NTON
	OC48   = netsim.OC48
	OC192  = netsim.OC192
	ESnet  = netsim.ESnet
	SciNet = netsim.SciNet
	GigE   = netsim.GigE
)

// Platform models a back-end compute platform for campaign simulation.
type Platform = platform.Platform

// PlatformKind distinguishes clusters (shared CPU per node) from SMPs.
type PlatformKind = platform.Kind

// Platform kinds.
const (
	ClusterPlatform = platform.Cluster
	SMPPlatform     = platform.SMP
)

// The paper's field-test platforms.
var (
	CPlant = platform.CPlant
	Onyx2  = platform.Onyx2
	E4500  = platform.E4500
)

// Campaign is a virtual-clock simulation of one of the paper's field tests;
// CampaignResult its outcome. Campaigns regenerate the paper's 160
// MB-per-timestep WAN runs in milliseconds of real time.
type (
	Campaign       = core.Campaign
	CampaignResult = core.CampaignResult
)

// The paper's campaign presets (Figures 10-17).
var (
	FirstLightCampaign    = core.FirstLightCampaign
	SC99CPlantCampaign    = core.SC99CPlantCampaign
	SC99ShowFloorCampaign = core.SC99ShowFloorCampaign
	E4500LANCampaign      = core.E4500LANCampaign
	CPlantNTONCampaign    = core.CPlantNTONCampaign
	ANLESnetCampaign      = core.ANLESnetCampaign
)

// Experiment is one entry of the paper's evaluation (E1-E12) or of the
// section 5 extension studies (X1...); Table its printable result.
type (
	Experiment = core.Experiment
	Table      = core.Table
)

// Experiments returns the E1-E12 index of the paper's evaluation.
func Experiments() []Experiment { return core.Experiments() }

// Extensions returns the X-series studies of the paper's section 5
// proposals.
func Extensions() []Experiment { return core.Extensions() }

// Overlap pipeline model (section 4.3): serial and overlapped totals for n
// timesteps with per-timestep load and render costs, and their ratio.
var (
	SerialTime     = transfer.SerialTime
	OverlappedTime = transfer.OverlappedTime
	Speedup        = transfer.Speedup
	IdealSpeedup   = transfer.IdealSpeedup
)

// Formatting helpers shared by the command-line tools.
var (
	HumanBytes = stats.HumanBytes
	Mbps       = stats.Mbps
	MBps       = stats.MBps
)
