package visapult

import (
	"fmt"
	"math"
	"strings"
)

// RunSpec is the serializable description of a pipeline: everything the
// functional options can express with data alone (no closures), in the JSON
// shape the visapultd control plane accepts. A spec-described run can be
// executed anywhere — in-process through Options, or shipped over the
// scheduler's control protocol to a remote visapult-backend worker. Runs
// registered with Manager.CreateSpec are eligible for remote placement; runs
// registered with Manager.Create carry arbitrary options (closures, custom
// Sources) and always execute locally.
type RunSpec struct {
	Source SourceSpec `json:"source"`
	// PEs, Timesteps, Mode, Transport, StripeLanes mirror the facade
	// options; zero values select the facade defaults.
	PEs         int    `json:"pes,omitempty"`
	Timesteps   int    `json:"timesteps,omitempty"`
	Mode        string `json:"mode,omitempty"`      // serial | overlapped | process-pair
	Transport   string `json:"transport,omitempty"` // local | tcp | striped
	StripeLanes int    `json:"stripeLanes,omitempty"`
	// ViewerBandwidthMbps caps the back-end-to-viewer path (0 = unshaped).
	ViewerBandwidthMbps float64 `json:"viewerBandwidthMbps,omitempty"`
	FollowView          bool    `json:"followView,omitempty"`
	ViewAngleDeg        float64 `json:"viewAngleDeg,omitempty"`
	Instrument          bool    `json:"instrument,omitempty"`
	RenderLoop          bool    `json:"renderLoop,omitempty"`
	// Viewers >= 1 runs the pipeline through the back end's fan-out stage
	// with that many concurrently attached viewers; such runs also accept
	// dynamic viewer attach/detach through the manager. 0 selects the
	// classic single-viewer pipeline.
	Viewers int `json:"viewers,omitempty"`
	// ViewerQueue bounds each fan-out viewer's send queue in (PE, frame)
	// pairs; 0 selects the default (32).
	ViewerQueue int `json:"viewerQueue,omitempty"`
	// RenderWorkers sizes the back end's shared render pool (0 = GOMAXPROCS).
	// Like the transport knobs it changes how fast frames appear, never what
	// they look like — the pool is bit-exact at any worker count — so it is
	// deliberately excluded from RenderHash and never coalesces runs apart.
	RenderWorkers int `json:"renderWorkers,omitempty"`
	// TF selects the volume-rendering transfer function; nil selects the
	// default combustion colormap (fire). It is part of the render identity:
	// two specs differing only here hash (and cache) differently.
	TF *TransferSpec `json:"tf,omitempty"`
	// Fabric is the serializable federation config a source of kind "fabric"
	// resolves against: cluster names and master addresses, replication,
	// attempt timeout. Because it is part of the spec, a run placed on a
	// remote worker reconstructs exactly the federation the scheduler saw.
	Fabric *FabricSpec `json:"fabric,omitempty"`
}

// SourceSpec selects and sizes the data source of a RunSpec.
type SourceSpec struct {
	Kind      string `json:"kind"` // combustion | cosmology | paper | fabric
	NX        int    `json:"nx,omitempty"`
	NY        int    `json:"ny,omitempty"`
	NZ        int    `json:"nz,omitempty"`
	Timesteps int    `json:"timesteps,omitempty"`
	Seed      int64  `json:"seed,omitempty"`
	// Scale divides the paper's 640x256x256 grid for kind "paper".
	Scale int `json:"scale,omitempty"`
	// Base is the dataset base name for kind "fabric" (each timestep is
	// dataset base.tNNNN warmed across the federation in RunSpec.Fabric).
	Base string `json:"base,omitempty"`
}

// source builds the described data source.
func (s *SourceSpec) source() (Source, error) {
	switch strings.ToLower(s.Kind) {
	case "", "combustion":
		return NewCombustionSource(CombustionSpec{
			NX: s.NX, NY: s.NY, NZ: s.NZ,
			Timesteps: s.Timesteps, Seed: s.Seed,
		}), nil
	case "cosmology":
		return NewCosmologySource(CosmologySpec{
			NX: s.NX, NY: s.NY, NZ: s.NZ,
			Timesteps: s.Timesteps, Seed: s.Seed,
		}), nil
	case "paper":
		scale := s.Scale
		if scale <= 0 {
			scale = 8
		}
		return NewPaperCombustionSource(scale, s.Timesteps), nil
	default:
		return nil, fmt.Errorf("visapult: unknown source kind %q", s.Kind)
	}
}

// Options translates the spec into facade options for New. It validates
// first, so every consumer of a spec — local facade, scheduler, remote
// worker — rejects a bad spec with the same typed field errors.
func (spec *RunSpec) Options() ([]Option, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	var opts []Option
	if strings.EqualFold(spec.Source.Kind, "fabric") {
		if spec.Fabric == nil {
			return nil, fmt.Errorf("visapult: source kind %q requires a fabric config in the spec", spec.Source.Kind)
		}
		opts = append(opts, WithFabricSpec(*spec.Fabric, FabricDataset{
			Base: spec.Source.Base,
			NX:   spec.Source.NX, NY: spec.Source.NY, NZ: spec.Source.NZ,
			Timesteps: spec.Source.Timesteps,
		}))
	} else {
		src, err := spec.Source.source()
		if err != nil {
			return nil, err
		}
		opts = append(opts, WithSource(src))
	}

	if spec.PEs > 0 {
		opts = append(opts, WithPEs(spec.PEs))
	}
	if spec.Timesteps > 0 {
		opts = append(opts, WithTimesteps(spec.Timesteps))
	}
	switch strings.ToLower(spec.Mode) {
	case "", "serial":
	case "overlapped":
		opts = append(opts, WithMode(Overlapped))
	case "process-pair":
		opts = append(opts, WithMode(OverlappedProcessPair))
	default:
		return nil, fmt.Errorf("visapult: unknown mode %q", spec.Mode)
	}
	switch strings.ToLower(spec.Transport) {
	case "", "local":
	case "tcp":
		opts = append(opts, WithTransport(TransportTCP))
	case "striped":
		opts = append(opts, WithTransport(TransportStriped))
	default:
		return nil, fmt.Errorf("visapult: unknown transport %q", spec.Transport)
	}
	if spec.StripeLanes > 0 {
		opts = append(opts, WithStripeLanes(spec.StripeLanes))
	}
	if spec.ViewerBandwidthMbps > 0 {
		opts = append(opts, WithViewerBandwidth(spec.ViewerBandwidthMbps*1e6))
	}
	if spec.FollowView {
		opts = append(opts, WithFollowView())
	}
	if spec.ViewAngleDeg != 0 {
		opts = append(opts, WithViewAngle(spec.ViewAngleDeg*math.Pi/180))
	}
	if spec.Instrument {
		opts = append(opts, WithInstrumentation())
	}
	if spec.RenderLoop {
		opts = append(opts, WithRenderLoop())
	}
	// != 0 so a negative count reaches the facade's validation and fails at
	// Create instead of silently running single-viewer.
	if spec.Viewers != 0 {
		opts = append(opts, WithViewers(spec.Viewers))
	}
	if spec.ViewerQueue > 0 {
		opts = append(opts, WithViewerQueue(spec.ViewerQueue))
	}
	if spec.RenderWorkers > 0 {
		opts = append(opts, WithRenderWorkers(spec.RenderWorkers))
	}
	if tf := spec.TF.transferFunction(); tf != nil {
		opts = append(opts, WithTransferFunction(tf))
	}
	return opts, nil
}
