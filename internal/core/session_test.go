package core

import (
	"context"
	"math"
	"strings"
	"testing"

	"visapult/internal/backend"
	"visapult/internal/datagen"
	"visapult/internal/netlogger"
	"visapult/internal/netsim"
	"visapult/internal/volume"
)

// smallSource returns a synthetic combustion source small enough for real
// (non-simulated) sessions in tests.
func smallSource(steps int) *backend.SyntheticSource {
	return backend.NewSyntheticSource(datagen.NewCombustion(datagen.CombustionConfig{
		NX: 24, NY: 16, NZ: 16, Timesteps: steps, Seed: 42,
	}))
}

func TestRunSessionValidation(t *testing.T) {
	if _, err := RunSession(context.Background(), SessionConfig{PEs: 2}); err == nil {
		t.Fatal("expected error for missing source")
	}
	if _, err := RunSession(context.Background(), SessionConfig{Source: smallSource(1)}); err == nil {
		t.Fatal("expected error for missing PE count")
	}
	if _, err := RunSession(context.Background(), SessionConfig{Source: smallSource(1), PEs: 1, Transport: Transport(99)}); err == nil {
		t.Fatal("expected error for unknown transport")
	}
}

func TestRunSessionLocal(t *testing.T) {
	const pes, steps = 4, 3
	res, err := RunSession(context.Background(), SessionConfig{
		PEs: pes, Source: smallSource(steps), Mode: backend.Overlapped,
		Transport: TransportLocal, Instrument: true, RenderLoop: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Viewer.FramesCompleted != steps {
		t.Fatalf("viewer completed %d frames, want %d", res.Viewer.FramesCompleted, steps)
	}
	if res.Backend.Frames != steps || res.Backend.PEs != pes {
		t.Fatalf("backend stats %+v unexpected", res.Backend)
	}
	if res.FinalImage == nil {
		t.Fatal("no final image")
	}
	// The architecture's core claim: viewer-bound traffic is much smaller
	// than source-bound traffic.
	if res.TrafficRatio() < 4 {
		t.Errorf("traffic reduction %.1fx too small", res.TrafficRatio())
	}
	// Instrumentation captured both back-end and viewer tags.
	a := netlogger.Analyze(res.Events)
	tags := strings.Join(a.Tags(), ",")
	if !strings.Contains(tags, "BE_LOAD_START") || !strings.Contains(tags, "V_HEAVYPAYLOAD_END") {
		t.Errorf("event stream missing expected tags: %s", tags)
	}
}

func TestRunSessionTCP(t *testing.T) {
	const pes, steps = 2, 2
	res, err := RunSession(context.Background(), SessionConfig{
		PEs: pes, Source: smallSource(steps), Transport: TransportTCP, Instrument: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Viewer.FramesCompleted != steps {
		t.Fatalf("viewer completed %d frames over TCP, want %d", res.Viewer.FramesCompleted, steps)
	}
	if res.Viewer.BytesReceived == 0 {
		t.Fatal("no bytes crossed the TCP transport")
	}
}

func TestRunSessionStriped(t *testing.T) {
	const pes, steps = 2, 2
	res, err := RunSession(context.Background(), SessionConfig{
		PEs: pes, Source: smallSource(steps), Transport: TransportStriped, StripeLanes: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Viewer.FramesCompleted != steps {
		t.Fatalf("viewer completed %d frames over striped sockets, want %d", res.Viewer.FramesCompleted, steps)
	}
}

func TestRunSessionShapedViewerPath(t *testing.T) {
	// Shaping the back-end-to-viewer path must not lose any payloads.
	shaper := netsim.NewShaper(20e6/8, 64<<10) // 20 Mbps
	res, err := RunSession(context.Background(), SessionConfig{
		PEs: 1, Source: smallSource(2), Transport: TransportTCP, ViewerShaper: shaper,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Viewer.FramesCompleted != 2 {
		t.Fatalf("viewer completed %d frames over the shaped path, want 2", res.Viewer.FramesCompleted)
	}
}

func TestRunSessionFollowViewSwitchesAxis(t *testing.T) {
	// With the camera rotated 90 degrees about Y, the viewer should steer the
	// back end to an X-axis decomposition after the first completed frame.
	res, err := RunSession(context.Background(), SessionConfig{
		PEs: 2, Source: smallSource(4), Transport: TransportLocal,
		FollowView: true, ViewAngle: math.Pi / 2, Axis: volume.AxisZ,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Backend.AxisFlips == 0 {
		t.Error("expected the viewer's axis hint to flip the back-end decomposition")
	}
}

func TestTransportString(t *testing.T) {
	if TransportLocal.String() != "local" || TransportTCP.String() != "tcp" || TransportStriped.String() != "striped-tcp" {
		t.Fatal("unexpected transport names")
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{ID: "T", Title: "demo", Columns: []string{"a", "bb"}}
	tbl.AddRow("1")
	tbl.AddRow("22", "333")
	tbl.AddNote("n=%d", 2)
	out := tbl.String()
	for _, want := range []string{"== T: demo ==", "a", "bb", "22", "333", "note: n=2"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestPipelineTrafficGrowsWithResolution(t *testing.T) {
	if testing.Short() {
		t.Skip("renders several volumes")
	}
	r, err := RunE10()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) < 3 {
		t.Fatal("expected several resolutions")
	}
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].Ratio <= r.Rows[i-1].Ratio {
			t.Errorf("traffic reduction did not grow with resolution: %.1f then %.1f",
				r.Rows[i-1].Ratio, r.Rows[i].Ratio)
		}
	}
	// O(n^3)/O(n^2) = O(n): doubling n should roughly double the ratio.
	first, last := r.Rows[0], r.Rows[len(r.Rows)-1]
	scale := float64(last.Dims[0]) / float64(first.Dims[0])
	growth := last.Ratio / first.Ratio
	if growth < 0.5*scale || growth > 2*scale {
		t.Errorf("ratio growth %.2f not roughly linear in resolution scale %.2f", growth, scale)
	}
}

func TestDPSSThroughputModelMatchesPaper(t *testing.T) {
	r := RunE1()
	var fourLAN, fourWAN float64
	for _, row := range r.Rows {
		if row.Servers == 4 {
			fourLAN, fourWAN = row.LANMbps, row.WANMbps
		}
	}
	if fourLAN < 880 || fourLAN > 1000 {
		t.Errorf("4-server LAN throughput %.0f Mbps, paper reports 980 Mbps", fourLAN)
	}
	if fourWAN < 500 || fourWAN > 640 {
		t.Errorf("4-server WAN throughput %.0f Mbps, paper reports 570 Mbps", fourWAN)
	}
	if r.FourServerMBps < 150 {
		t.Errorf("4-server aggregate %.0f MB/s, paper reports over 150 MB/s", r.FourServerMBps)
	}
	// Throughput scales with server count until another stage saturates.
	if r.Rows[0].LANMbps >= r.Rows[len(r.Rows)-1].LANMbps {
		t.Error("adding servers should not reduce LAN throughput")
	}
}
