package core

import (
	"strings"
	"testing"
)

func TestQoSStudyShapes(t *testing.T) {
	r, err := RunX1()
	if err != nil {
		t.Fatal(err)
	}
	alone := r.Row(QoSAlone)
	shared := r.Row(QoSShared)
	reserved := r.Row(QoSReserved)
	if alone == nil || shared == nil || reserved == nil {
		t.Fatal("missing scenario rows")
	}

	// Alone, Visapult saturates the link (the paper's observation).
	if alone.VisapultMbps < 90 || alone.VisapultMbps > 105 {
		t.Errorf("alone: %.0f Mbps, expected to saturate the ~100 Mbps link", alone.VisapultMbps)
	}
	if alone.BackgroundMbps != 0 {
		t.Error("alone: no background traffic should be reported")
	}

	// Without QoS, the many striped Visapult flows crowd out the background
	// application: it gets far less than a fair half of the link, and
	// Visapult itself slows relative to running alone.
	if shared.BackgroundMbps <= 0 {
		t.Fatal("shared: background traffic should make some progress")
	}
	if shared.BackgroundMbps > 0.35*alone.VisapultMbps {
		t.Errorf("shared: background got %.0f Mbps; the unreserved link should let Visapult crowd it out",
			shared.BackgroundMbps)
	}
	if shared.VisapultLoad <= alone.VisapultLoad {
		t.Error("shared: Visapult loads should be slower than when it has the link to itself")
	}

	// With a reservation, the background application is guaranteed the
	// unreserved share, and Visapult's loads are bounded by its reservation.
	if reserved.BackgroundMbps <= shared.BackgroundMbps {
		t.Errorf("reservation should protect the background traffic: %.0f vs %.0f Mbps",
			reserved.BackgroundMbps, shared.BackgroundMbps)
	}
	expectedVis := alone.VisapultMbps * r.ReservedFraction
	if reserved.VisapultMbps < 0.9*expectedVis || reserved.VisapultMbps > 1.1*expectedVis {
		t.Errorf("reserved: Visapult got %.0f Mbps, expected about %.0f (its reservation)",
			reserved.VisapultMbps, expectedVis)
	}

	// Table renders.
	out := r.Table().String()
	if !strings.Contains(out, "X1") || !strings.Contains(out, "reserved") {
		t.Errorf("table output unexpected:\n%s", out)
	}
}

func TestExtensionsRegistry(t *testing.T) {
	exts := Extensions()
	if len(exts) == 0 {
		t.Fatal("no extensions registered")
	}
	for _, e := range exts {
		tbl, err := e.Run()
		if err != nil {
			t.Errorf("%s: %v", e.ID, err)
			continue
		}
		if len(tbl.Rows) == 0 {
			t.Errorf("%s: empty table", e.ID)
		}
	}
}
