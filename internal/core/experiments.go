package core

import (
	"context"
	"fmt"
	"time"

	"visapult/internal/backend"
	"visapult/internal/datagen"
	"visapult/internal/dpss"
	"visapult/internal/ibr"
	"visapult/internal/netsim"
	"visapult/internal/platform"
	"visapult/internal/render"
	"visapult/internal/transfer"
	"visapult/internal/volume"
)

// bg is the experiment suite's context root. The E1-E12 drivers are the
// harness-facing "main" of the evaluation: they run complete campaigns on a
// virtual clock, finishing in milliseconds of real time, so there is no
// caller cancellation to plumb through and nothing long-lived to detach.
func bg() context.Context {
	return context.Background() //vislint:ignore ctxbackground experiment drivers are the suite's context roots; campaigns finish in milliseconds on a virtual clock
}

// This file maps every quantitative claim of the paper's evaluation (Figures
// 10-17 and the numbers embedded in sections 2, 4 and 5) onto a runnable
// experiment. DESIGN.md's experiment index (E1-E12) names each one; the
// visharness command and bench_test.go call these functions.

// ---------------------------------------------------------------------------
// E1: DPSS throughput versus server count, LAN versus WAN (section 2.0/3.5).

// E1Row is one configuration of the DPSS throughput model.
type E1Row struct {
	Servers        int
	DisksPerServer int
	LANMbps        float64
	WANMbps        float64
	LANBottleneck  string
	WANBottleneck  string
}

// E1Result reproduces the paper's DPSS headline numbers: 980 Mbps across a
// LAN, 570 Mbps across a WAN, and >150 MB/s from a four-server, one-terabyte
// configuration.
type E1Result struct {
	Rows []E1Row
	// FourServerMBps is the aggregate delivery of the paper's four-server
	// configuration in megabytes per second.
	FourServerMBps float64
}

// RunE1 evaluates the DPSS throughput model over a server-count sweep.
func RunE1() *E1Result {
	res := &E1Result{}
	for servers := 1; servers <= 8; servers *= 2 {
		lan := dpss.PaperLANModel().WithServers(servers)
		wan := dpss.PaperWANModel().WithServers(servers)
		res.Rows = append(res.Rows, E1Row{
			Servers:        servers,
			DisksPerServer: lan.DisksPerServer,
			LANMbps:        lan.AggregateMbps(),
			WANMbps:        wan.AggregateMbps(),
			LANBottleneck:  lan.Bottleneck(),
			WANBottleneck:  wan.Bottleneck(),
		})
	}
	// The paper's ">150 MB/s from a four-server DPSS" is the server-side
	// delivery capability (15-20 parallel disks), before any single client's
	// NIC becomes the limit.
	res.FourServerMBps = dpss.PaperLANModel().DiskAggregateMBps()
	return res
}

// Table renders the result.
func (r *E1Result) Table() *Table {
	t := &Table{
		ID:      "E1",
		Title:   "DPSS aggregate throughput vs servers (paper: 980 Mbps LAN, 570 Mbps WAN, >150 MB/s from 4 servers)",
		Columns: []string{"servers", "disks/server", "LAN", "LAN bottleneck", "WAN", "WAN bottleneck"},
	}
	for _, row := range r.Rows {
		t.AddRow(fmt.Sprint(row.Servers), fmt.Sprint(row.DisksPerServer),
			fmtMbps(row.LANMbps), row.LANBottleneck, fmtMbps(row.WANMbps), row.WANBottleneck)
	}
	t.AddNote("four-server aggregate: %.0f MB/s (paper: over 150 MB/s)", r.FourServerMBps)
	return t
}

// ---------------------------------------------------------------------------
// E2: SC99 topology comparison (section 4.1).

// E2Result holds the two SC99 transfer-rate measurements.
type E2Result struct {
	CPlantMbps    float64
	ShowFloorMbps float64
}

// RunE2 simulates the two SC99 data paths.
func RunE2() (*E2Result, error) {
	cp, err := SC99CPlantCampaign().Run(bg())
	if err != nil {
		return nil, err
	}
	sf, err := SC99ShowFloorCampaign().Run(bg())
	if err != nil {
		return nil, err
	}
	return &E2Result{CPlantMbps: cp.LoadMbps(), ShowFloorMbps: sf.LoadMbps()}, nil
}

// Table renders the result.
func (r *E2Result) Table() *Table {
	t := &Table{
		ID:      "E2",
		Title:   "SC99 sustained transfer rates by topology",
		Columns: []string{"path", "measured (sim)", "paper"},
	}
	t.AddRow("LBL DPSS -> CPlant (NTON)", fmtMbps(r.CPlantMbps), "250 Mbps")
	t.AddRow("LBL DPSS -> show floor (NTON+SciNet)", fmtMbps(r.ShowFloorMbps), "150 Mbps")
	return t
}

// ---------------------------------------------------------------------------
// E3: the April 2000 "first light" profile (Figure 10, section 4.2).

// E3Result reproduces the Figure 10 numbers: ~3 s to load 160 MB over NTON,
// ~433 Mbps, ~70% utilization of the OC-12, and 8-9 s of rendering on four
// CPlant processors.
type E3Result struct {
	LoadSeconds   float64
	LoadMbps      float64
	Utilization   float64
	RenderSeconds float64
	Result        *CampaignResult
}

// RunE3 simulates the first-light campaign.
func RunE3() (*E3Result, error) {
	res, err := FirstLightCampaign().Run(bg())
	if err != nil {
		return nil, err
	}
	spans := res.FrameLoadSpans()
	var mean time.Duration
	for _, s := range spans {
		mean += s
	}
	mean /= time.Duration(len(spans))
	return &E3Result{
		LoadSeconds:   mean.Seconds(),
		LoadMbps:      res.LoadMbps(),
		Utilization:   res.Utilization(),
		RenderSeconds: res.MeanRender().Seconds(),
		Result:        res,
	}, nil
}

// Table renders the result.
func (r *E3Result) Table() *Table {
	t := &Table{
		ID:      "E3",
		Title:   "First-light campaign, serial back end on 4 CPlant nodes over NTON (Figure 10)",
		Columns: []string{"quantity", "measured (sim)", "paper"},
	}
	t.AddRow("160 MB load time", fmtSeconds(r.LoadSeconds), "~3 s")
	t.AddRow("achieved bandwidth", fmtMbps(r.LoadMbps), "~433 Mbps")
	t.AddRow("OC-12 utilization", fmt.Sprintf("%.0f%%", r.Utilization*100), "~70%")
	t.AddRow("render time (4 PEs)", fmtSeconds(r.RenderSeconds), "8-9 s")
	return t
}

// ---------------------------------------------------------------------------
// E4: serial versus overlapped on the Sun E4500 over gigabit LAN
// (Figures 12-13, section 4.3).

// E4Result holds both runs plus the analytic model's prediction.
type E4Result struct {
	SerialTotal      time.Duration
	OverlappedTotal  time.Duration
	MeanLoad         time.Duration
	MeanRender       time.Duration
	MeasuredSpeedup  float64
	PredictedSpeedup float64
	Serial           *CampaignResult
	Overlapped       *CampaignResult
}

// RunE4 simulates the serial and overlapped E4500 runs.
func RunE4() (*E4Result, error) {
	serial, err := E4500LANCampaign(backend.Serial).Run(bg())
	if err != nil {
		return nil, err
	}
	over, err := E4500LANCampaign(backend.Overlapped).Run(bg())
	if err != nil {
		return nil, err
	}
	r := &E4Result{
		SerialTotal:     serial.Total,
		OverlappedTotal: over.Total,
		MeanLoad:        serial.MeanLoad(),
		MeanRender:      serial.MeanRender(),
		Serial:          serial,
		Overlapped:      over,
	}
	if over.Total > 0 {
		r.MeasuredSpeedup = float64(serial.Total) / float64(over.Total)
	}
	r.PredictedSpeedup = transfer.Speedup(serial.Campaign.Timesteps, r.MeanLoad, r.MeanRender)
	return r, nil
}

// Table renders the result.
func (r *E4Result) Table() *Table {
	t := &Table{
		ID:      "E4",
		Title:   "Serial vs overlapped back end, Sun E4500 over gigabit LAN, 10 timesteps (Figures 12-13)",
		Columns: []string{"quantity", "measured (sim)", "paper"},
	}
	t.AddRow("per-frame load L", fmtSeconds(r.MeanLoad.Seconds()), "~15 s")
	t.AddRow("per-frame render R", fmtSeconds(r.MeanRender.Seconds()), "~12 s")
	t.AddRow("serial total", fmtSeconds(r.SerialTotal.Seconds()), "~265 s")
	t.AddRow("overlapped total", fmtSeconds(r.OverlappedTotal.Seconds()), "~169 s")
	t.AddRow("speedup", fmt.Sprintf("%.2fx", r.MeasuredSpeedup),
		fmt.Sprintf("%.2fx (model %.2fx)", 265.0/169.0, r.PredictedSpeedup))
	return t
}

// ---------------------------------------------------------------------------
// E5: CPlant over NTON, node scaling and overlap contention
// (Figures 14-15, section 4.4.1).

// E5Row is one CPlant configuration.
type E5Row struct {
	Nodes      int
	Mode       backend.Mode
	MeanLoad   time.Duration
	MeanRender time.Duration
	LoadCV     float64
	Total      time.Duration
}

// E5Result holds the node-scaling and overlap-contention measurements.
type E5Result struct {
	Rows []E5Row
}

// RunE5 simulates the CPlant/NTON configurations: four and eight nodes,
// serial and overlapped.
func RunE5() (*E5Result, error) {
	res := &E5Result{}
	for _, nodes := range []int{4, 8} {
		for _, mode := range []backend.Mode{backend.Serial, backend.Overlapped} {
			cr, err := CPlantNTONCampaign(nodes, mode).Run(bg())
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, E5Row{
				Nodes:      nodes,
				Mode:       mode,
				MeanLoad:   cr.MeanLoad(),
				MeanRender: cr.MeanRender(),
				LoadCV:     cr.LoadCV(),
				Total:      cr.Total,
			})
		}
	}
	return res, nil
}

// Row returns the row for the given configuration, or nil.
func (r *E5Result) Row(nodes int, mode backend.Mode) *E5Row {
	for i := range r.Rows {
		if r.Rows[i].Nodes == nodes && r.Rows[i].Mode == mode {
			return &r.Rows[i]
		}
	}
	return nil
}

// Table renders the result.
func (r *E5Result) Table() *Table {
	t := &Table{
		ID:      "E5",
		Title:   "CPlant over NTON: node scaling and overlapped-load contention (Figures 14-15)",
		Columns: []string{"nodes", "mode", "mean load", "mean render", "load CV", "total"},
	}
	for _, row := range r.Rows {
		t.AddRow(fmt.Sprint(row.Nodes), row.Mode.String(),
			fmtSeconds(row.MeanLoad.Seconds()), fmtSeconds(row.MeanRender.Seconds()),
			fmt.Sprintf("%.2f", row.LoadCV), fmtSeconds(row.Total.Seconds()))
	}
	t.AddNote("paper: load time flat from 4 to 8 nodes (network saturated); render halves;")
	t.AddNote("overlapped loads on single-CPU nodes are longer and more variable (Figure 15).")
	return t
}

// ---------------------------------------------------------------------------
// E6: the ANL Onyx2 SMP over ESnet (Figures 16-17, section 4.4.2).

// E6Result holds the serial and overlapped SMP runs.
type E6Result struct {
	SerialLoad      time.Duration
	SerialMbps      float64
	SerialRender    time.Duration
	OverlappedLoad  time.Duration
	OverlappedCV    float64
	SerialTotal     time.Duration
	OverlappedTotal time.Duration
}

// RunE6 simulates the ANL/ESnet runs.
func RunE6() (*E6Result, error) {
	serial, err := ANLESnetCampaign(backend.Serial).Run(bg())
	if err != nil {
		return nil, err
	}
	over, err := ANLESnetCampaign(backend.Overlapped).Run(bg())
	if err != nil {
		return nil, err
	}
	return &E6Result{
		SerialLoad:      serial.MeanLoad(),
		SerialMbps:      serial.LoadMbps(),
		SerialRender:    serial.MeanRender(),
		OverlappedLoad:  over.MeanLoad(),
		OverlappedCV:    over.LoadCV(),
		SerialTotal:     serial.Total,
		OverlappedTotal: over.Total,
	}, nil
}

// Table renders the result.
func (r *E6Result) Table() *Table {
	t := &Table{
		ID:      "E6",
		Title:   "Onyx2 SMP at ANL over ESnet, serial vs overlapped (Figures 16-17)",
		Columns: []string{"quantity", "measured (sim)", "paper"},
	}
	t.AddRow("160 MB load time (serial)", fmtSeconds(r.SerialLoad.Seconds()), "~10 s")
	t.AddRow("achieved bandwidth", fmtMbps(r.SerialMbps), "~128 Mbps (iperf ~100)")
	t.AddRow("render time (8 PEs)", fmtSeconds(r.SerialRender.Seconds()), "< load (load-dominated)")
	t.AddRow("overlapped load time", fmtSeconds(r.OverlappedLoad.Seconds()), "slightly above serial")
	t.AddRow("overlapped load CV", fmt.Sprintf("%.2f", r.OverlappedCV), "small (no CPU contention)")
	t.AddRow("serial total", fmtSeconds(r.SerialTotal.Seconds()), "-")
	t.AddRow("overlapped total", fmtSeconds(r.OverlappedTotal.Seconds()), "-")
	return t
}

// ---------------------------------------------------------------------------
// E7: the overlapped-pipeline analytic model (section 4.3).

// E7Row compares the analytic speedup with a simulated pipeline for one
// load-to-render ratio.
type E7Row struct {
	Timesteps     int
	LoadSeconds   float64
	RenderSeconds float64
	Analytic      float64
	Simulated     float64
	Ideal         float64
}

// E7Result is the model-validation sweep.
type E7Result struct {
	Rows []E7Row
}

// RunE7 sweeps the L/R ratio and the timestep count, comparing Ts/To from
// the closed-form model with a simulated single-PE pipeline.
func RunE7() (*E7Result, error) {
	res := &E7Result{}
	ratios := []float64{0.25, 0.5, 1, 2, 4}
	for _, n := range []int{5, 10, 50} {
		for _, ratio := range ratios {
			renderSec := 10.0
			loadSec := renderSec * ratio
			// Build a campaign whose single PE loads loadSec worth of data
			// and renders for renderSec.
			frameBytes := int64(loadSec * 100e6 / 8) // over a 100 Mbps link
			plat := platform.Platform{
				Name: "model-validation", Kind: platform.SMP, Nodes: 1, CPUsPerNode: 1,
				RenderSecPerMVoxel: renderSec, // 1 Mvoxel volume => renderSec per frame
				NIC:                netsim.GigE,
			}
			serialCR, err := (Campaign{
				Name: "e7-serial", Platform: plat, PEs: 1, Mode: backend.Serial, Timesteps: n,
				FrameBytes: frameBytes, VolumeDims: [3]int{100, 100, 100},
				DataPath: netsim.NewPath("model-link", netsim.Link{Name: "100Mbps", Bandwidth: 100e6, MTU: 1500}),
			}).Run(bg())
			if err != nil {
				return nil, err
			}
			overCR, err := (Campaign{
				Name: "e7-overlapped", Platform: plat, PEs: 1, Mode: backend.Overlapped, Timesteps: n,
				FrameBytes: frameBytes, VolumeDims: [3]int{100, 100, 100},
				DataPath: netsim.NewPath("model-link", netsim.Link{Name: "100Mbps", Bandwidth: 100e6, MTU: 1500}),
			}).Run(bg())
			if err != nil {
				return nil, err
			}
			simSpeedup := float64(serialCR.Total) / float64(overCR.Total)
			l := time.Duration(loadSec * float64(time.Second))
			r := time.Duration(renderSec * float64(time.Second))
			res.Rows = append(res.Rows, E7Row{
				Timesteps:     n,
				LoadSeconds:   loadSec,
				RenderSeconds: renderSec,
				Analytic:      transfer.Speedup(n, l, r),
				Simulated:     simSpeedup,
				Ideal:         transfer.IdealSpeedup(n),
			})
		}
	}
	return res, nil
}

// Table renders the result.
func (r *E7Result) Table() *Table {
	t := &Table{
		ID:      "E7",
		Title:   "Overlap model validation: Ts=N(L+R), To=N*max(L,R)+min(L,R), ideal 2N/(N+1)",
		Columns: []string{"N", "L", "R", "analytic speedup", "simulated speedup", "ideal (L=R)"},
	}
	for _, row := range r.Rows {
		t.AddRow(fmt.Sprint(row.Timesteps), fmtSeconds(row.LoadSeconds), fmtSeconds(row.RenderSeconds),
			fmt.Sprintf("%.3f", row.Analytic), fmt.Sprintf("%.3f", row.Simulated),
			fmt.Sprintf("%.3f", row.Ideal))
	}
	return t
}

// ---------------------------------------------------------------------------
// E8: IBRAVR off-axis artifacts and the axis-switching remedy
// (Figure 6, section 3.3).

// E8Result is the artifact-error sweep.
type E8Result struct {
	Points []ibr.ConePoint
	// ConeDegrees is the largest angle whose error stays below the
	// artifact threshold, the paper's "cone of about sixteen degrees".
	ConeDegrees float64
}

// RunE8 measures IBRAVR compositing error versus rotation angle on a
// synthetic combustion volume, with and without axis switching.
func RunE8() (*E8Result, error) {
	gen := datagen.NewCombustion(datagen.CombustionConfig{NX: 48, NY: 48, NZ: 48, Timesteps: 1, Seed: 7})
	v := gen.Generate(0)
	tf := render.DefaultCombustionTF()
	angles := []float64{0, 5, 10, 16, 25, 35, 45, 60, 75, 90}
	points, err := ibr.ArtifactSweep(v, tf, 8, angles)
	if err != nil {
		return nil, err
	}
	// The cone criterion follows the ibr package's convention: the error must
	// stay below a fraction (0.35) of the worst-case 45-degree error.
	cone, err := ibr.ArtifactFreeCone(v, tf, 8, 0.35, 45)
	if err != nil {
		return nil, err
	}
	return &E8Result{Points: points, ConeDegrees: cone}, nil
}

// Table renders the result.
func (r *E8Result) Table() *Table {
	t := &Table{
		ID:      "E8",
		Title:   "IBRAVR off-axis artifact error vs rotation angle (Figure 6)",
		Columns: []string{"angle (deg)", "RMSE (fixed axis)", "RMSE (axis switching)"},
	}
	for _, p := range r.Points {
		t.AddRow(fmt.Sprintf("%.0f", p.AngleDegrees),
			fmt.Sprintf("%.4f", p.RMSE), fmt.Sprintf("%.4f", p.WithSwitchingRMSE))
	}
	t.AddNote("artifact-free cone: %.0f degrees (paper: ~16 degrees)", r.ConeDegrees)
	return t
}

// ---------------------------------------------------------------------------
// E9: terascale projections (section 5).

// E9Result carries the dataset-transfer projections and the bandwidth needed
// for the five-timesteps-per-second target.
type E9Result struct {
	NTONTransfer      time.Duration
	ESnetTransfer     time.Duration
	NTONPerStep       time.Duration
	ESnetPerStep      time.Duration
	RequiredMbps      float64
	MultipleOfOC12    float64
	OC192SufficientBy float64
}

// RunE9 evaluates the section 5 projections.
func RunE9() *E9Result {
	nton := netsim.NewPath("NTON", netsim.NTON)
	esnet := netsim.NewPath("ESnet", netsim.ESnet)
	cmNTON := transfer.CampaignModel{
		Frame: transfer.FrameSpec{Bytes: paperFrameBytes}, Path: nton, Timesteps: 265,
	}
	cmESnet := transfer.CampaignModel{
		Frame: transfer.FrameSpec{Bytes: paperFrameBytes}, Path: esnet, Timesteps: 265,
	}
	required := transfer.RequiredBandwidth(paperFrameBytes, TerascaleTargetRate)
	return &E9Result{
		NTONTransfer:      cmNTON.DatasetTransferTime(),
		ESnetTransfer:     cmESnet.DatasetTransferTime(),
		NTONPerStep:       cmNTON.LoadTime(),
		ESnetPerStep:      cmESnet.LoadTime(),
		RequiredMbps:      required / 1e6,
		MultipleOfOC12:    transfer.RequiredBandwidthMultiple(paperFrameBytes, TerascaleTargetRate, nton),
		OC192SufficientBy: netsim.OC192.Bandwidth / required,
	}
}

// Table renders the result.
func (r *E9Result) Table() *Table {
	t := &Table{
		ID:      "E9",
		Title:   "Terascale projections for the 265-step, 41.4 GB dataset (section 5)",
		Columns: []string{"quantity", "measured (model)", "paper"},
	}
	t.AddRow("full dataset over NTON", r.NTONTransfer.Round(time.Second).String(), "~8 minutes")
	t.AddRow("full dataset over ESnet", r.ESnetTransfer.Round(time.Second).String(), "~44 minutes")
	t.AddRow("new timestep over NTON", r.NTONPerStep.Round(100*time.Millisecond).String(), "every 3 s")
	t.AddRow("new timestep over ESnet", r.ESnetPerStep.Round(100*time.Millisecond).String(), "every 10 s")
	t.AddRow("bandwidth for 5 steps/s", fmtMbps(r.RequiredMbps), "~fifteen times OC-12 (~= OC-192)")
	t.AddRow("multiple of OC-12 needed", fmt.Sprintf("%.1fx", r.MultipleOfOC12), "~15x")
	t.AddRow("OC-192 headroom", fmt.Sprintf("%.2fx", r.OC192SufficientBy), ">= 1x")
	t.AddNote("the ESnet rows use the link's nominal 100 Mbps; the paper's 44-minute figure assumes the")
	t.AddNote("128 Mbps the parallel loader actually achieved (which would give ~43 minutes here too)")
	return t
}

// ---------------------------------------------------------------------------
// E10: pipeline traffic asymmetry (sections 3.4 and 4.1).

// E10Row is the traffic breakdown for one volume resolution.
type E10Row struct {
	Dims        [3]int
	SourceBytes int64
	ViewerBytes int64
	Ratio       float64
}

// E10Result shows that back-end-to-viewer traffic is O(n^2) while
// source-to-back-end traffic is O(n^3).
type E10Result struct {
	Rows []E10Row
}

// RunE10 runs real in-process sessions at increasing resolution and measures
// the bytes crossing each pipeline hop.
func RunE10() (*E10Result, error) {
	res := &E10Result{}
	for _, n := range []int{16, 24, 32, 48} {
		dims := [3]int{n, n, n}
		gen := datagen.NewCombustion(datagen.CombustionConfig{NX: n, NY: n, NZ: n, Timesteps: 1, Seed: 10})
		src := backend.NewSyntheticSource(gen)
		sr, err := RunSession(bg(), SessionConfig{
			PEs: 4, Source: src, Mode: backend.Serial, Transport: TransportLocal,
		})
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, E10Row{
			Dims:        dims,
			SourceBytes: sr.Backend.BytesIn,
			ViewerBytes: sr.Backend.BytesOut,
			Ratio:       sr.TrafficRatio(),
		})
	}
	return res, nil
}

// Table renders the result.
func (r *E10Result) Table() *Table {
	t := &Table{
		ID:      "E10",
		Title:   "Pipeline traffic: source->back end is O(n^3), back end->viewer is O(n^2)",
		Columns: []string{"volume", "source->backend bytes", "backend->viewer bytes", "reduction"},
	}
	for _, row := range r.Rows {
		t.AddRow(fmt.Sprintf("%dx%dx%d", row.Dims[0], row.Dims[1], row.Dims[2]),
			fmt.Sprint(row.SourceBytes), fmt.Sprint(row.ViewerBytes),
			fmt.Sprintf("%.1fx", row.Ratio))
	}
	t.AddNote("the reduction factor grows roughly linearly with resolution, as O(n^3)/O(n^2) predicts")
	return t
}

// ---------------------------------------------------------------------------
// E11: platform contention and MTU ablation (sections 4.4.1, 4.4.2, 5).

// E11Row is one platform/MTU configuration of the overlapped back end.
type E11Row struct {
	Label           string
	OverlapPenalty  float64
	MeanLoad        time.Duration
	LoadCV          float64
	Total           time.Duration
	SpeedupVsSerial float64
}

// E11Result is the contention ablation.
type E11Result struct {
	Rows []E11Row
}

// RunE11 compares the overlapped back end on platforms with different
// loader/renderer contention characteristics, including the jumbo-frame
// variant the paper discusses.
func RunE11() (*E11Result, error) {
	res := &E11Result{}
	configs := []struct {
		label string
		plat  platform.Platform
	}{
		{"CPlant (1 CPU/node, 1500 B MTU)", platform.CPlant.WithNodes(8)},
		{"CPlant (1 CPU/node, jumbo frames)", platform.CPlant.WithNodes(8).WithJumboFrames()},
		{"hypothetical 2-CPU cluster nodes", func() platform.Platform {
			p := platform.CPlant.WithNodes(8)
			p.Name = "CPlant (2 CPUs/node)"
			p.CPUsPerNode = 2
			return p
		}()},
		{"Onyx2 SMP (shared NIC)", platform.Onyx2.WithNodes(8)},
	}
	for _, cfg := range configs {
		campaign := CPlantNTONCampaign(8, backend.Overlapped)
		campaign.Platform = cfg.plat
		over, err := campaign.Run(bg())
		if err != nil {
			return nil, err
		}
		serialCampaign := campaign
		serialCampaign.Mode = backend.Serial
		serial, err := serialCampaign.Run(bg())
		if err != nil {
			return nil, err
		}
		speedup := 0.0
		if over.Total > 0 {
			speedup = float64(serial.Total) / float64(over.Total)
		}
		res.Rows = append(res.Rows, E11Row{
			Label:           cfg.label,
			OverlapPenalty:  cfg.plat.EffectiveOverlapPenalty(),
			MeanLoad:        over.MeanLoad(),
			LoadCV:          over.LoadCV(),
			Total:           over.Total,
			SpeedupVsSerial: speedup,
		})
	}
	return res, nil
}

// Table renders the result.
func (r *E11Result) Table() *Table {
	t := &Table{
		ID:      "E11",
		Title:   "Overlap benefit vs platform contention and MTU (ablation of sections 4.4.1-4.4.2)",
		Columns: []string{"platform", "load penalty", "mean load", "load CV", "overlapped total", "speedup vs serial"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Label, fmt.Sprintf("%.2fx", row.OverlapPenalty),
			fmtSeconds(row.MeanLoad.Seconds()), fmt.Sprintf("%.2f", row.LoadCV),
			fmtSeconds(row.Total.Seconds()), fmt.Sprintf("%.2fx", row.SpeedupVsSerial))
	}
	return t
}

// ---------------------------------------------------------------------------
// E12: domain decomposition comparison (Figure 4, section 3.2).

// E12Row is one decomposition strategy evaluated on the paper grid.
type E12Row struct {
	Strategy        string
	Regions         int
	Imbalance       float64
	PerPEBytes      int64
	OrderedCompose  bool
	RenderImbalance float64
}

// E12Result compares slab, shaft and block decompositions.
type E12Result struct {
	Rows []E12Row
}

// RunE12 evaluates the three object-order decompositions of Figure 4 on the
// paper's 640x256x256 grid (for the byte accounting) and on a reduced grid
// (for measured render-work imbalance).
func RunE12() (*E12Result, error) {
	const pes = 8
	nx, ny, nz := paperDims[0], paperDims[1], paperDims[2]
	gen := datagen.NewCombustion(datagen.CombustionConfig{NX: 64, NY: 32, NZ: 32, Timesteps: 1, Seed: 12})
	small := gen.Generate(0)
	tf := render.DefaultCombustionTF()

	eval := func(strategy string, regions []volume.Region, smallRegions []volume.Region) E12Row {
		row := E12Row{
			Strategy:       strategy,
			Regions:        len(regions),
			Imbalance:      volume.LoadImbalance(regions),
			OrderedCompose: true, // all object-order decompositions need ordered compositing
		}
		if len(regions) > 0 {
			row.PerPEBytes = regions[0].Bytes()
		}
		// Measured render cost imbalance on the reduced grid.
		var times []float64
		for _, r := range smallRegions {
			start := time.Now()
			render.RenderSlab(small, r, tf, volume.AxisZ)
			times = append(times, time.Since(start).Seconds())
		}
		var maxT, sumT float64
		for _, x := range times {
			if x > maxT {
				maxT = x
			}
			sumT += x
		}
		if len(times) > 0 && sumT > 0 {
			row.RenderImbalance = maxT / (sumT / float64(len(times)))
		}
		return row
	}

	res := &E12Result{}
	res.Rows = append(res.Rows,
		eval("slab (Z)", volume.Slabs(nx, ny, nz, volume.AxisZ, pes),
			volume.Slabs(small.NX, small.NY, small.NZ, volume.AxisZ, pes)),
		eval("shaft (YxZ)", volume.Shafts(nx, ny, nz, volume.AxisX, 2, 4),
			volume.Shafts(small.NX, small.NY, small.NZ, volume.AxisX, 2, 4)),
		eval("block (2x2x2)", volume.Blocks(nx, ny, nz, 2, 2, 2),
			volume.Blocks(small.NX, small.NY, small.NZ, 2, 2, 2)),
	)
	return res, nil
}

// Table renders the result.
func (r *E12Result) Table() *Table {
	t := &Table{
		ID:      "E12",
		Title:   "Slab, shaft and block decompositions of the 640x256x256 grid across 8 PEs (Figure 4)",
		Columns: []string{"strategy", "regions", "voxel imbalance", "bytes/PE", "ordered composite", "render imbalance"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Strategy, fmt.Sprint(row.Regions), fmt.Sprintf("%.3f", row.Imbalance),
			fmt.Sprint(row.PerPEBytes), fmt.Sprint(row.OrderedCompose),
			fmt.Sprintf("%.2f", row.RenderImbalance))
	}
	t.AddNote("IBRAVR uses the slab decomposition: equal-size slabs, one texture per PE, depth-ordered compositing")
	return t
}

// ---------------------------------------------------------------------------

// Experiment couples an identifier with a runner, for the harness.
type Experiment struct {
	ID    string
	Title string
	Run   func() (*Table, error)
}

// Experiments lists every experiment in DESIGN.md order.
func Experiments() []Experiment {
	return []Experiment{
		{"e1", "DPSS throughput", func() (*Table, error) { return RunE1().Table(), nil }},
		{"e2", "SC99 topologies", func() (*Table, error) { r, err := RunE2(); return tableOrNil(r, err) }},
		{"e3", "First-light campaign", func() (*Table, error) { r, err := RunE3(); return tableOrNil(r, err) }},
		{"e4", "Serial vs overlapped (E4500/LAN)", func() (*Table, error) { r, err := RunE4(); return tableOrNil(r, err) }},
		{"e5", "CPlant/NTON scaling", func() (*Table, error) { r, err := RunE5(); return tableOrNil(r, err) }},
		{"e6", "Onyx2/ESnet", func() (*Table, error) { r, err := RunE6(); return tableOrNil(r, err) }},
		{"e7", "Overlap model validation", func() (*Table, error) { r, err := RunE7(); return tableOrNil(r, err) }},
		{"e8", "IBRAVR artifacts", func() (*Table, error) { r, err := RunE8(); return tableOrNil(r, err) }},
		{"e9", "Terascale projections", func() (*Table, error) { return RunE9().Table(), nil }},
		{"e10", "Pipeline traffic", func() (*Table, error) { r, err := RunE10(); return tableOrNil(r, err) }},
		{"e11", "Contention/MTU ablation", func() (*Table, error) { r, err := RunE11(); return tableOrNil(r, err) }},
		{"e12", "Decomposition comparison", func() (*Table, error) { r, err := RunE12(); return tableOrNil(r, err) }},
	}
}

// tabler is any experiment result that can render itself.
type tabler interface{ Table() *Table }

func tableOrNil[T tabler](r T, err error) (*Table, error) {
	if err != nil {
		return nil, err
	}
	return r.Table(), nil
}
