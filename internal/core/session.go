// Package core orchestrates complete Visapult sessions and reproduces the
// paper's field-test campaigns.
//
// It offers two complementary execution paths:
//
//   - Session (session.go): a real, concurrent pipeline — data source
//     (in-memory, synthetic or DPSS), the parallel back end of
//     internal/backend, the wire protocol of internal/wire (optionally over
//     real TCP, optionally striped and bandwidth-shaped), and the viewer of
//     internal/viewer. Everything actually runs; NetLogger events carry real
//     wall-clock timestamps.
//
//   - Campaign (campaign.go): a virtual-clock simulation of the paper's
//     year-2000 field tests. The WAN testbeds (NTON, ESnet, SciNet), the
//     terabyte DPSS installations and the CPlant/Onyx2/E4500 platforms are
//     modelled with internal/netsim, internal/dpss.ThroughputModel and
//     internal/platform, so the experiments of Figures 10-17 can be
//     regenerated at the paper's scale (160 MB per timestep) in milliseconds
//     of real time.
//
// experiments.go maps every table and figure of the paper's evaluation onto
// one of those two paths (experiments E1-E12 of DESIGN.md).
package core

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"visapult/internal/backend"
	"visapult/internal/backend/framecache"
	"visapult/internal/netlogger"
	"visapult/internal/netsim"
	"visapult/internal/render"
	"visapult/internal/viewer"
	"visapult/internal/volume"
	"visapult/internal/wire"
)

// Transport selects how the back end's payloads reach the viewer in a
// Session.
type Transport int

// Session transports.
const (
	// TransportLocal delivers payloads with an in-process sink (no sockets).
	TransportLocal Transport = iota
	// TransportTCP gives every PE its own TCP connection to the viewer, the
	// paper's one-connection-per-PE layout.
	TransportTCP
	// TransportStriped gives every PE a striped bundle of TCP connections
	// (section 3.4's "striped sockets").
	TransportStriped
)

// String implements fmt.Stringer.
func (t Transport) String() string {
	switch t {
	case TransportTCP:
		return "tcp"
	case TransportStriped:
		return "striped-tcp"
	default:
		return "local"
	}
}

// SessionConfig describes one end-to-end Visapult run.
type SessionConfig struct {
	// PEs is the number of back-end processing elements.
	PEs int
	// Timesteps bounds the run; 0 means every timestep of the source.
	Timesteps int
	// Mode selects serial or overlapped loading in the back end.
	Mode backend.Mode
	// Axis is the initial slab decomposition axis.
	Axis volume.Axis
	// Source supplies the raw data (memory, synthetic, or DPSS).
	Source backend.DataSource
	// TF is the transfer function; nil selects the combustion default.
	TF render.TransferFunction
	// Transport selects local delivery or real sockets.
	Transport Transport
	// StripeLanes is the number of sockets per PE for TransportStriped
	// (default 2).
	StripeLanes int
	// ViewerShaper, when non-nil, throttles the back-end-to-viewer writes to
	// emulate a WAN between them.
	ViewerShaper *netsim.Shaper
	// FollowView makes the viewer feed best-axis hints back to the back end
	// (section 3.3 axis switching).
	FollowView bool
	// ViewAngle is the viewer's camera rotation about Y in radians.
	ViewAngle float64
	// Instrument enables NetLogger instrumentation on both components.
	Instrument bool
	// RenderLoop starts the viewer's decoupled render goroutine for the
	// duration of the run.
	RenderLoop bool
	// OnFrame, when non-nil, receives each PE's per-frame statistics as soon
	// as that PE finishes sending the frame. Called concurrently from the
	// back-end PE goroutines.
	OnFrame func(backend.FrameStats)
	// OnSlab, when non-nil, receives each rendered (or replayed) slab
	// payload pair after it has been sent; see backend.Config.OnSlab.
	// Called concurrently from the back-end PE goroutines.
	OnSlab func(light *wire.LightPayload, heavy *wire.HeavyPayload)
	// Viewers, when >= 1, runs the session through the back end's fan-out
	// stage with that many concurrently attached viewers (the paper's
	// ImmersaDesk + tiled display exhibit). Zero selects the classic
	// single-viewer pipeline.
	Viewers int
	// ViewerQueue bounds each attached viewer's send queue in (PE, frame)
	// pairs for fan-out sessions; <= 0 selects backend.DefaultViewerQueue.
	ViewerQueue int
	// RenderWorkers sizes the back end's shared render pool; <= 0 selects
	// GOMAXPROCS. See backend.Config.RenderWorkers.
	RenderWorkers int
	// OnFanout, when non-nil, receives the fan-out session's control handle
	// once the run is live, so callers can attach and detach viewers mid-run
	// and read per-viewer delivery metrics. Only invoked when Viewers >= 1.
	OnFanout func(*FanoutControl)
	// Cache, CacheDataset and CacheTF configure the content-addressed slab
	// cache in the back end; see backend.Config. A nil Cache (or empty
	// CacheDataset) disables caching for this session.
	Cache        *framecache.Cache
	CacheDataset string
	CacheTF      string
}

// SessionResult reports what a session did.
type SessionResult struct {
	Backend backend.RunStats
	// Viewer is the (primary) viewer's counter snapshot; for fan-out
	// sessions it is the first attached viewer's.
	Viewer viewer.Stats
	// Viewers reports every viewer of a fan-out session, in attach order
	// (empty for classic single-viewer sessions).
	Viewers []ViewerResult
	// Events is the merged NetLogger stream (empty unless Instrument).
	Events []netlogger.Event
	// Elapsed is the end-to-end wall-clock time of the run.
	Elapsed time.Duration
	// FinalImage is the viewer's last composited view (nil if the scene
	// stayed empty).
	FinalImage *render.Image
}

// TrafficRatio returns source-side bytes over viewer-side bytes, the pipeline
// reduction factor of experiment E10.
func (r *SessionResult) TrafficRatio() float64 {
	if r.Backend.BytesOut == 0 {
		return 0
	}
	return float64(r.Backend.BytesIn) / float64(r.Backend.BytesOut)
}

// RunSession executes a complete Visapult pipeline and blocks until every
// timestep has been loaded, rendered, transmitted and assembled in the
// viewer, or until ctx is cancelled — cancellation aborts the back end at the
// next phase boundary, tears the transport down, and returns ctx's error.
func RunSession(ctx context.Context, cfg SessionConfig) (*SessionResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.Source == nil {
		return nil, errors.New("core: SessionConfig.Source is required")
	}
	if cfg.PEs <= 0 {
		return nil, fmt.Errorf("core: PEs must be positive, got %d", cfg.PEs)
	}
	if cfg.StripeLanes <= 0 {
		cfg.StripeLanes = 2
	}
	if cfg.Viewers >= 1 {
		return runFanoutSession(ctx, cfg)
	}

	var beLogger, vLogger *netlogger.Logger
	if cfg.Instrument {
		beLogger = netlogger.New("backend-host", "backend")
		vLogger = netlogger.New("viewer-host", "viewer")
	}

	// The back end is created after the viewer so the axis-hint hook can
	// reference it; captured through this pointer.
	var be *backend.BackEnd

	vcfg := viewer.Config{
		PEs:       cfg.PEs,
		Timesteps: cfg.Timesteps,
		Logger:    vLogger,
	}
	if cfg.FollowView && cfg.Transport == TransportLocal {
		vcfg.AxisHint = func(frame int, axis volume.Axis) {
			if be != nil {
				be.SetAxis(axis)
			}
		}
	}
	vw, err := viewer.New(vcfg)
	if err != nil {
		return nil, err
	}
	vw.SetViewAngle(cfg.ViewAngle)

	tr, err := buildTransport(ctx, cfg, vw, &be)
	if err != nil {
		return nil, err
	}
	defer tr.closeAll()

	be, err = backend.New(backend.Config{
		PEs:           cfg.PEs,
		Timesteps:     cfg.Timesteps,
		Mode:          cfg.Mode,
		Axis:          cfg.Axis,
		Source:        cfg.Source,
		TF:            cfg.TF,
		Sinks:         tr.sinks,
		Logger:        beLogger,
		OnFrame:       cfg.OnFrame,
		OnSlab:        cfg.OnSlab,
		Cache:         cfg.Cache,
		CacheDataset:  cfg.CacheDataset,
		CacheTF:       cfg.CacheTF,
		RenderWorkers: cfg.RenderWorkers,
	})
	if err != nil {
		return nil, err
	}

	if cfg.RenderLoop {
		vw.StartRenderLoop(0)
		defer vw.Stop()
	}

	start := time.Now()
	beStats, runErr := be.Run(ctx)
	// Announce the end of every stream, wait for the viewer's service
	// goroutines to drain, and only then tear the sockets down.
	finishErr := tr.finish()
	serveErr := tr.serveWait()
	closeErr := tr.closeAll()
	elapsed := time.Since(start)
	if runErr != nil {
		return nil, runErr
	}
	if serveErr != nil {
		return nil, serveErr
	}
	if finishErr != nil {
		return nil, finishErr
	}
	if closeErr != nil {
		return nil, closeErr
	}

	res := &SessionResult{
		Backend: beStats,
		Viewer:  vw.Stats(),
		Elapsed: elapsed,
	}
	if img, err := vw.CompositeView(); err == nil {
		res.FinalImage = img
	}
	if cfg.Instrument {
		collector := netlogger.NewCollector()
		collector.AddLogger(beLogger)
		collector.AddLogger(vLogger)
		res.Events = collector.Events()
	}
	return res, nil
}

// transport bundles the per-PE sinks with the functions that drive the
// teardown sequence: finish announces end-of-stream, serveWait drains the
// viewer-side service goroutines, closeAll tears the sockets down.
type transport struct {
	sinks     []backend.FrameSink
	finish    func() error
	serveWait func() error
	closeAll  func() error
}

// buildTransport wires the back end's sinks to the viewer according to the
// configured transport.
func buildTransport(ctx context.Context, cfg SessionConfig, vw *viewer.Viewer, be **backend.BackEnd) (*transport, error) {
	noop := func() error { return nil }

	switch cfg.Transport {
	case TransportLocal:
		sink := viewer.NewLocalSink(vw)
		return &transport{
			sinks:     []backend.FrameSink{sink},
			finish:    noop,
			serveWait: noop,
			closeAll:  noop,
		}, nil

	case TransportTCP, TransportStriped:
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("core: listen: %w", err)
		}
		var stripeL *wire.StripeListener
		if cfg.Transport == TransportStriped {
			stripeL = wire.NewStripeListener(l, 0)
		}

		// Viewer side: accept one logical connection per PE and service it.
		serveErrs := make([]error, cfg.PEs)
		var serveWG sync.WaitGroup
		accepted := make(chan *wire.Conn, cfg.PEs)
		acceptErr := make(chan error, 1)
		acceptorDone := make(chan struct{})
		go func() {
			defer close(acceptorDone)
			for i := 0; i < cfg.PEs; i++ {
				var conn *wire.Conn
				if stripeL != nil {
					s, err := stripeL.Accept()
					if err != nil {
						acceptErr <- err
						return
					}
					conn = wire.NewConn(s)
				} else {
					c, err := l.Accept()
					if err != nil {
						acceptErr <- err
						return
					}
					conn = wire.NewConn(c)
				}
				accepted <- conn
			}
		}()

		// Back-end side: dial one logical connection per PE. On any setup
		// failure, every connection opened so far — dialed, accepted into
		// viewerConns, or still sitting in the accepted channel — must be
		// closed, or their goroutines (striped lane writers in particular)
		// outlive the failed session.
		conns := make([]*wire.Conn, cfg.PEs)
		sinks := make([]backend.FrameSink, cfg.PEs)
		viewerConns := make([]*wire.Conn, cfg.PEs)
		failCleanup := func() {
			for _, c := range conns {
				if c != nil {
					c.Close()
				}
			}
			for _, c := range viewerConns {
				if c != nil {
					c.Close()
				}
			}
			// Stop the acceptor before draining: closing the listener fails
			// its pending Accept, and joining it guarantees no connection is
			// pushed into the channel after the drain below.
			if stripeL != nil {
				stripeL.Close() // also closes partial lane conns and l
			} else {
				l.Close()
			}
			<-acceptorDone
			for {
				select {
				case c := <-accepted:
					c.Close()
				default:
					return
				}
			}
		}
		for i := 0; i < cfg.PEs; i++ {
			var rw *wire.Conn
			if cfg.Transport == TransportStriped {
				s, err := wire.DialStriped(l.Addr().String(), cfg.StripeLanes, 0)
				if err != nil {
					failCleanup()
					return nil, fmt.Errorf("core: dial striped: %w", err)
				}
				rw = wire.NewConn(s)
			} else {
				c, err := net.Dial("tcp", l.Addr().String())
				if err != nil {
					failCleanup()
					return nil, fmt.Errorf("core: dial: %w", err)
				}
				if cfg.ViewerShaper != nil {
					rw = wire.NewConn(netsim.NewShapedConn(c, cfg.ViewerShaper, 0))
				} else {
					rw = wire.NewConn(c)
				}
			}
			conns[i] = rw
			sinks[i] = rw
		}

		// Wait for the viewer side to have accepted all connections, then
		// start the service goroutines.
		for i := 0; i < cfg.PEs; i++ {
			select {
			case conn := <-accepted:
				viewerConns[i] = conn
			case err := <-acceptErr:
				failCleanup()
				return nil, fmt.Errorf("core: accept: %w", err)
			case <-ctx.Done():
				failCleanup()
				return nil, ctx.Err()
			case <-time.After(30 * time.Second):
				failCleanup()
				return nil, errors.New("core: timed out waiting for viewer connections")
			}
		}
		for i, conn := range viewerConns {
			serveWG.Add(1)
			go func(i int, conn *wire.Conn) {
				defer serveWG.Done()
				serveErrs[i] = vw.ServeConn(conn)
			}(i, conn)
		}

		// Axis hints written by the viewer come back on the back-end side of
		// each connection; forward them to the back end when FollowView is
		// set, otherwise drain them.
		var hintWG sync.WaitGroup
		for _, conn := range conns {
			hintWG.Add(1)
			go func(conn *wire.Conn) {
				defer hintWG.Done()
				for {
					m, err := conn.ReadMessage()
					if err != nil {
						return
					}
					if m.Type != wire.MsgAxisHint || !cfg.FollowView {
						continue
					}
					if hint, err := wire.DecodeAxisHint(m); err == nil && *be != nil {
						(*be).SetAxis(hint.Axis)
					}
				}
			}(conn)
		}

		var finishOnce, closeOnce sync.Once
		finish := func() error {
			var firstErr error
			finishOnce.Do(func() {
				for _, conn := range conns {
					if err := conn.SendDone(); err != nil && firstErr == nil {
						firstErr = err
					}
				}
			})
			return firstErr
		}
		closeAll := func() error {
			var firstErr error
			closeOnce.Do(func() {
				for _, conn := range conns {
					if err := conn.Close(); err != nil && firstErr == nil {
						firstErr = err
					}
				}
				// The viewer-side halves must be closed too: a striped
				// connection owns per-lane writer goroutines that only a
				// Close releases.
				for _, conn := range viewerConns {
					if conn != nil {
						conn.Close()
					}
				}
				if stripeL != nil {
					stripeL.Close()
				} else {
					l.Close()
				}
				hintWG.Wait()
			})
			return firstErr
		}
		serveWait := func() error {
			serveWG.Wait()
			return errors.Join(serveErrs...)
		}
		return &transport{sinks: sinks, finish: finish, serveWait: serveWait, closeAll: closeAll}, nil

	default:
		return nil, fmt.Errorf("core: unknown transport %d", cfg.Transport)
	}
}
