package core

import (
	"fmt"
	"strings"
)

// Table is a simple text table used by the experiment harness to print the
// rows and series the paper's figures report.
type Table struct {
	// ID is the experiment identifier (E1..E12 of DESIGN.md).
	ID string
	// Title describes what the table reproduces.
	Title string
	// Columns are the column headers.
	Columns []string
	// Rows hold the cell text, one slice per row.
	Rows [][]string
	// Notes are free-form lines printed after the table (paper-reported
	// values, calibration remarks).
	Notes []string
}

// AddRow appends one row; missing cells are padded with empty strings.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Columns))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// AddNote appends a free-form note line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table as aligned text.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// fmtSeconds formats a duration in seconds with two decimals.
func fmtSeconds(d float64) string { return fmt.Sprintf("%.2f s", d) }

// fmtMbps formats a bandwidth in megabits per second.
func fmtMbps(m float64) string { return fmt.Sprintf("%.0f Mbps", m) }
