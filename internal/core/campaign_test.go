package core

import (
	"context"
	"strings"
	"testing"
	"time"

	"visapult/internal/backend"
	"visapult/internal/dpss"
	"visapult/internal/netlogger"
	"visapult/internal/netsim"
	"visapult/internal/platform"
)

func TestCampaignValidation(t *testing.T) {
	bad := []Campaign{
		{},                              // everything missing
		{PEs: 4},                        // no timesteps
		{PEs: 4, Timesteps: 2},          // no frame size
		{Timesteps: 2, FrameBytes: 100}, // no PEs
	}
	for i, c := range bad {
		if _, err := c.Run(context.Background()); err == nil {
			t.Errorf("campaign %d: expected validation error", i)
		}
	}
}

func TestCampaignDeterministic(t *testing.T) {
	c := CPlantNTONCampaign(8, backend.Overlapped)
	a, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if a.Total != b.Total {
		t.Fatalf("same campaign produced different totals: %v vs %v", a.Total, b.Total)
	}
	if a.MeanLoad() != b.MeanLoad() || a.LoadCV() != b.LoadCV() {
		t.Fatal("same campaign produced different load statistics")
	}
}

func TestCampaignEventStreamIsWellFormed(t *testing.T) {
	res, err := FirstLightCampaign().Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Events) == 0 {
		t.Fatal("campaign produced no NetLogger events")
	}
	a := netlogger.Analyze(res.Events)
	loads := a.Phases(netlogger.BELoadStart, netlogger.BELoadEnd)
	want := res.Campaign.PEs * res.Campaign.Timesteps
	if len(loads) != want {
		t.Fatalf("got %d load phases, want %d", len(loads), want)
	}
	for _, p := range loads {
		if p.Duration() <= 0 {
			t.Fatal("non-positive load phase in event stream")
		}
	}
	// Viewer-side events must also be present for NLV-style lifelines.
	heavies := a.Phases(netlogger.VHeavyPayloadStart, netlogger.VHeavyPayloadEnd)
	if len(heavies) != want {
		t.Fatalf("got %d viewer heavy-payload phases, want %d", len(heavies), want)
	}
}

func TestFirstLightMatchesFigure10(t *testing.T) {
	r, err := RunE3()
	if err != nil {
		t.Fatal(err)
	}
	if r.LoadSeconds < 2.4 || r.LoadSeconds > 3.6 {
		t.Errorf("load time %.2f s, paper reports ~3 s", r.LoadSeconds)
	}
	if r.LoadMbps < 380 || r.LoadMbps > 480 {
		t.Errorf("achieved %.0f Mbps, paper reports ~433 Mbps", r.LoadMbps)
	}
	if r.Utilization < 0.6 || r.Utilization > 0.8 {
		t.Errorf("utilization %.2f, paper reports ~0.70", r.Utilization)
	}
	if r.RenderSeconds < 7 || r.RenderSeconds > 10 {
		t.Errorf("render time %.1f s, paper reports 8-9 s", r.RenderSeconds)
	}
}

func TestSC99MatchesReportedRates(t *testing.T) {
	r, err := RunE2()
	if err != nil {
		t.Fatal(err)
	}
	if r.CPlantMbps < 210 || r.CPlantMbps > 290 {
		t.Errorf("CPlant path %.0f Mbps, paper reports ~250 Mbps", r.CPlantMbps)
	}
	if r.ShowFloorMbps < 120 || r.ShowFloorMbps > 180 {
		t.Errorf("show-floor path %.0f Mbps, paper reports ~150 Mbps", r.ShowFloorMbps)
	}
	if r.CPlantMbps <= r.ShowFloorMbps {
		t.Error("NTON path should outperform the shared SciNet path")
	}
}

func TestE4500SerialVsOverlappedMatchesFigures12And13(t *testing.T) {
	r, err := RunE4()
	if err != nil {
		t.Fatal(err)
	}
	l, rr := r.MeanLoad.Seconds(), r.MeanRender.Seconds()
	if l < 12 || l > 18 {
		t.Errorf("L = %.1f s, paper reports ~15 s", l)
	}
	if rr < 10 || rr > 14 {
		t.Errorf("R = %.1f s, paper reports ~12 s", rr)
	}
	st, ot := r.SerialTotal.Seconds(), r.OverlappedTotal.Seconds()
	if st < 240 || st > 300 {
		t.Errorf("serial total %.0f s, paper reports ~265 s", st)
	}
	if ot < 145 || ot > 195 {
		t.Errorf("overlapped total %.0f s, paper reports ~169 s", ot)
	}
	if ot >= st {
		t.Error("overlapped must be faster than serial")
	}
	// The measured speedup should be in the ballpark of the analytic model.
	if diff := r.MeasuredSpeedup - r.PredictedSpeedup; diff > 0.25 || diff < -0.25 {
		t.Errorf("measured speedup %.2f deviates from model %.2f", r.MeasuredSpeedup, r.PredictedSpeedup)
	}
}

func TestCPlantScalingMatchesFigures14And15(t *testing.T) {
	r, err := RunE5()
	if err != nil {
		t.Fatal(err)
	}
	s4, s8 := r.Row(4, backend.Serial), r.Row(8, backend.Serial)
	o8 := r.Row(8, backend.Overlapped)
	if s4 == nil || s8 == nil || o8 == nil {
		t.Fatal("missing rows")
	}
	// Load time is network-bound: flat between 4 and 8 nodes (within 15%).
	l4, l8 := s4.MeanLoad.Seconds(), s8.MeanLoad.Seconds()
	if l8 < 0.85*l4 || l8 > 1.15*l4 {
		t.Errorf("per-frame load changed from %.2f s (4 nodes) to %.2f s (8 nodes); paper says it stays flat", l4, l8)
	}
	// Rendering halves from 4 to 8 nodes.
	r4, r8 := s4.MeanRender.Seconds(), s8.MeanRender.Seconds()
	if r8 < 0.4*r4 || r8 > 0.6*r4 {
		t.Errorf("render went from %.2f s to %.2f s; paper says it halves", r4, r8)
	}
	// Overlapped loads on single-CPU nodes are longer and more variable.
	if o8.MeanLoad <= s8.MeanLoad {
		t.Error("overlapped load should be inflated by CPU contention on CPlant")
	}
	if o8.LoadCV <= s8.LoadCV {
		t.Error("overlapped load variability should exceed serial variability on CPlant")
	}
	// Overlapping still wins overall.
	if o8.Total >= s8.Total {
		t.Error("overlapped total should still beat serial despite contention")
	}
}

func TestOnyx2ESnetMatchesFigures16And17(t *testing.T) {
	r, err := RunE6()
	if err != nil {
		t.Fatal(err)
	}
	if s := r.SerialLoad.Seconds(); s < 8.5 || s > 11.5 {
		t.Errorf("serial load %.1f s, paper reports ~10 s", s)
	}
	if r.SerialMbps < 110 || r.SerialMbps > 140 {
		t.Errorf("achieved %.0f Mbps, paper reports ~128 Mbps", r.SerialMbps)
	}
	// Load-dominated: render is shorter than load.
	if r.SerialRender >= r.SerialLoad {
		t.Error("expected a load-dominated profile on ESnet")
	}
	// SMP: overlapped load close to serial (no contention), small variability.
	if r.OverlappedLoad.Seconds() > 1.15*r.SerialLoad.Seconds() {
		t.Errorf("overlapped load %.1f s is too inflated for an SMP", r.OverlappedLoad.Seconds())
	}
	if r.OverlappedCV > 0.1 {
		t.Errorf("overlapped load CV %.2f too high for an SMP", r.OverlappedCV)
	}
	if r.OverlappedTotal >= r.SerialTotal {
		t.Error("overlapped must beat serial on the SMP")
	}
}

func TestOverlapModelValidation(t *testing.T) {
	r, err := RunE7()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range r.Rows {
		// The simulated pipeline should track the analytic model within 10%.
		ratio := row.Simulated / row.Analytic
		if ratio < 0.9 || ratio > 1.1 {
			t.Errorf("N=%d L=%.1f R=%.1f: simulated %.3f vs analytic %.3f",
				row.Timesteps, row.LoadSeconds, row.RenderSeconds, row.Simulated, row.Analytic)
		}
		// Speedup never exceeds 2x and approaches the ideal bound when L=R.
		if row.Analytic > 2 {
			t.Errorf("analytic speedup %.2f exceeds the 2x bound", row.Analytic)
		}
		if row.LoadSeconds == row.RenderSeconds {
			if diff := row.Analytic - row.Ideal; diff > 1e-9 || diff < -1e-9 {
				t.Errorf("L=R speedup %.4f != ideal %.4f", row.Analytic, row.Ideal)
			}
		}
	}
}

func TestIBRAVRArtifactsGrowOffAxisAndSwitchingBoundsThem(t *testing.T) {
	if testing.Short() {
		t.Skip("rendering sweep")
	}
	r, err := RunE8()
	if err != nil {
		t.Fatal(err)
	}
	pts := r.Points
	if len(pts) < 5 {
		t.Fatal("expected several sweep points")
	}
	if pts[0].AngleDegrees != 0 {
		t.Fatal("sweep must start at 0 degrees")
	}
	// Error grows as the view rotates off axis (compare 0 vs 45 degrees).
	var at0, at45, at75 float64
	var sw75 float64
	for _, p := range pts {
		switch p.AngleDegrees {
		case 0:
			at0 = p.RMSE
		case 45:
			at45 = p.RMSE
		case 75:
			at75 = p.RMSE
			sw75 = p.WithSwitchingRMSE
		}
	}
	if at45 <= at0 {
		t.Errorf("error at 45 degrees (%.4f) not larger than on-axis (%.4f)", at45, at0)
	}
	// Beyond 45 degrees the axis switch uses the X decomposition, so the
	// effective error is bounded by the 45-degree worst case.
	if sw75 >= at75 {
		t.Errorf("axis switching did not reduce the 75-degree error (%.4f vs %.4f)", sw75, at75)
	}
	if r.ConeDegrees < 5 || r.ConeDegrees > 40 {
		t.Errorf("artifact-free cone %.0f degrees; paper reports ~16", r.ConeDegrees)
	}
}

func TestTerascaleProjectionsMatchSection5(t *testing.T) {
	r := RunE9()
	if min := 8 * time.Minute; r.NTONTransfer < min || r.NTONTransfer > 11*time.Minute {
		t.Errorf("NTON dataset transfer %v, paper reports ~8 minutes", r.NTONTransfer)
	}
	if r.ESnetTransfer < 40*time.Minute || r.ESnetTransfer > 60*time.Minute {
		t.Errorf("ESnet dataset transfer %v, paper reports ~44 minutes", r.ESnetTransfer)
	}
	if r.NTONPerStep < 2*time.Second || r.NTONPerStep > 4*time.Second {
		t.Errorf("NTON per-step %v, paper reports ~3 s", r.NTONPerStep)
	}
	if r.ESnetPerStep < 9*time.Second || r.ESnetPerStep > 15*time.Second {
		t.Errorf("ESnet per-step %v, paper reports ~10 s", r.ESnetPerStep)
	}
	// Five timesteps per second needs roughly an OC-192 (~15x the OC-12).
	if r.MultipleOfOC12 < 9 || r.MultipleOfOC12 > 16 {
		t.Errorf("required bandwidth is %.1fx OC-12, paper reports ~15x", r.MultipleOfOC12)
	}
	if r.OC192SufficientBy < 1 {
		t.Error("an OC-192 should satisfy the 5 steps/s target")
	}
}

func TestContentionAblation(t *testing.T) {
	r, err := RunE11()
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string]E11Row{}
	for _, row := range r.Rows {
		byLabel[row.Label] = row
	}
	std := byLabel["CPlant (1 CPU/node, 1500 B MTU)"]
	jumbo := byLabel["CPlant (1 CPU/node, jumbo frames)"]
	smp := byLabel["Onyx2 SMP (shared NIC)"]
	if std.Label == "" || jumbo.Label == "" || smp.Label == "" {
		t.Fatal("missing ablation rows")
	}
	if jumbo.MeanLoad >= std.MeanLoad {
		t.Error("jumbo frames should reduce the overlapped load inflation")
	}
	if smp.LoadCV >= std.LoadCV {
		t.Error("the SMP should show less load variability than the single-CPU cluster")
	}
	if smp.SpeedupVsSerial <= 1 || std.SpeedupVsSerial <= 1 {
		t.Error("overlap should pay off on every platform")
	}
}

func TestDecompositionComparison(t *testing.T) {
	r, err := RunE12()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("expected 3 strategies, got %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Regions != 8 {
			t.Errorf("%s: %d regions, want 8", row.Strategy, row.Regions)
		}
		// LoadImbalance is max-over-mean: 1.0 means perfectly balanced.
		if row.Imbalance > 1.05 {
			t.Errorf("%s: voxel imbalance %.3f too high for the paper grid", row.Strategy, row.Imbalance)
		}
		if !row.OrderedCompose {
			t.Errorf("%s: object-order decompositions need ordered compositing", row.Strategy)
		}
	}
}

func TestCampaignDPSSCapLimitsThroughput(t *testing.T) {
	// A DPSS slower than the WAN becomes the bottleneck.
	c := FirstLightCampaign()
	c.HasDPSSCap = true
	c.DPSS = dpssSlowModel()
	res, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	unbounded, err := FirstLightCampaign().Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.LoadMbps() >= unbounded.LoadMbps() {
		t.Errorf("DPSS cap did not lower throughput: %.0f vs %.0f Mbps", res.LoadMbps(), unbounded.LoadMbps())
	}
}

func TestCampaignSlowStartAffectsFirstFrameOnly(t *testing.T) {
	c := ANLESnetCampaign(backend.Serial)
	res, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	spans := res.FrameLoadSpans()
	if len(spans) < 3 {
		t.Fatal("need at least 3 frames")
	}
	if spans[0] <= spans[1] {
		t.Error("first frame should carry the TCP slow-start penalty")
	}
	// Steady-state frames are alike.
	diff := spans[1] - spans[2]
	if diff < 0 {
		diff = -diff
	}
	if diff > spans[1]/5 {
		t.Errorf("steady-state frames differ too much: %v vs %v", spans[1], spans[2])
	}
}

func TestExperimentsRegistryRunsEverything(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	for _, e := range Experiments() {
		tbl, err := e.Run()
		if err != nil {
			t.Errorf("%s: %v", e.ID, err)
			continue
		}
		out := tbl.String()
		if !strings.Contains(out, "==") || len(tbl.Rows) == 0 {
			t.Errorf("%s: empty or malformed table:\n%s", e.ID, out)
		}
	}
}

func TestPaperDatasetTransferTimes(t *testing.T) {
	nton, esnet := PaperDatasetTransferTimes()
	if nton >= esnet {
		t.Error("NTON must move the dataset faster than ESnet")
	}
	if nton < 7*time.Minute || nton > 11*time.Minute {
		t.Errorf("NTON transfer %v out of the paper's ballpark", nton)
	}
}

// dpssSlowModel returns a deliberately underprovisioned DPSS (one server, two
// slow disks) for the bottleneck-cap test.
func dpssSlowModel() dpss.ThroughputModel {
	m := dpss.PaperWANModel()
	m.Servers = 1
	m.DisksPerServer = 2
	m.DiskMBps = 5
	return m
}

func TestCampaignCustomPlatform(t *testing.T) {
	// A platform with zero render cost turns the campaign into a pure
	// transfer measurement matching the analytic link model.
	plat := platform.Platform{
		Name: "zero-render", Kind: platform.SMP, Nodes: 1, CPUsPerNode: 4,
		RenderSecPerMVoxel: 0, NIC: netsim.GigE,
	}
	link := netsim.Link{Name: "test", Bandwidth: 100e6, MTU: 1500}
	c := Campaign{
		Name: "pure-transfer", Platform: plat, PEs: 4, Mode: backend.Serial, Timesteps: 3,
		FrameBytes: 100e6 / 8, // exactly one second per frame at 100 Mbps
		VolumeDims: [3]int{64, 64, 64},
		DataPath:   netsim.NewPath("test", link),
	}
	res, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	spans := res.FrameLoadSpans()
	for i, s := range spans {
		if s < 950*time.Millisecond || s > 1100*time.Millisecond {
			t.Errorf("frame %d load span %v, want ~1 s", i, s)
		}
	}
}
