package core

import (
	"fmt"
	"time"

	"visapult/internal/netsim"
	"visapult/internal/sim"
	"visapult/internal/stats"
)

// This file implements studies of the paper's section 5 proposals — the
// things the authors say the system needs next rather than things it already
// had. They are indexed as X-experiments (X1, X2, ...) to keep them distinct
// from the E1-E12 reproduction index.

// ---------------------------------------------------------------------------
// X1: Quality of Service / bandwidth reservation.
//
// Section 5: "In our testing we were able to completely saturate the WAN link
// in each network configuration. QoS is needed to insure that this
// application does not adversely affect other bandwidth-sensitive
// applications using the link, and to provide some minimum bandwidth
// guarantees to a Visapult session."

// QoSScenario identifies one sharing configuration of the study.
type QoSScenario string

// The three scenarios of the QoS study.
const (
	// QoSAlone is Visapult with the WAN to itself (the paper's field tests).
	QoSAlone QoSScenario = "Visapult alone"
	// QoSShared is Visapult plus background traffic with no reservation:
	// everything shares the link packet-fairly, flow by flow.
	QoSShared QoSScenario = "shared link, no QoS"
	// QoSReserved gives Visapult a hard reservation of part of the link and
	// leaves the remainder to the background traffic.
	QoSReserved QoSScenario = "QoS: 70% reserved for Visapult"
)

// QoSRow is the outcome of one scenario.
type QoSRow struct {
	Scenario QoSScenario
	// VisapultLoad is the mean per-timestep load span.
	VisapultLoad time.Duration
	// VisapultMbps is Visapult's achieved aggregate load bandwidth.
	VisapultMbps float64
	// BackgroundMbps is the aggregate bandwidth the competing applications
	// achieved while Visapult ran (zero when there are none).
	BackgroundMbps float64
	// LoadCV is the variability of Visapult's per-PE load times; reservations
	// are what make it predictable on a shared link.
	LoadCV float64
}

// X1Result is the QoS study outcome.
type X1Result struct {
	Rows []QoSRow
	// ReservedFraction is the share of the link reserved for Visapult in the
	// QoSReserved scenario.
	ReservedFraction float64
}

// qosStudyConfig fixes the study's workload: the paper's ESnet configuration
// (the link every other DOE application also wants to use).
type qosStudyConfig struct {
	link            netsim.Link
	pes             int
	frames          int
	frameBytes      int64
	backgroundFlows int
	reserved        float64
}

func defaultQoSConfig() qosStudyConfig {
	return qosStudyConfig{
		link:            netsim.ESnet,
		pes:             8,
		frames:          6,
		frameBytes:      paperFrameBytes,
		backgroundFlows: 2,
		reserved:        0.70,
	}
}

// RunX1 runs the QoS study: Visapult alone, Visapult against background
// traffic with no reservation, and Visapult with a bandwidth reservation.
func RunX1() (*X1Result, error) {
	cfg := defaultQoSConfig()
	res := &X1Result{ReservedFraction: cfg.reserved}
	for _, scenario := range []QoSScenario{QoSAlone, QoSShared, QoSReserved} {
		row, err := runQoSScenario(cfg, scenario)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Row returns the row for the given scenario, or nil.
func (r *X1Result) Row(s QoSScenario) *QoSRow {
	for i := range r.Rows {
		if r.Rows[i].Scenario == s {
			return &r.Rows[i]
		}
	}
	return nil
}

// runQoSScenario simulates one sharing configuration on the virtual clock.
func runQoSScenario(cfg qosStudyConfig, scenario QoSScenario) (QoSRow, error) {
	k := sim.NewKernel()

	// Link partitioning: with a reservation, Visapult and the background
	// traffic live on disjoint bandwidth partitions; otherwise they share one
	// link flow-fairly.
	visLinkSpec := cfg.link
	bgLinkSpec := cfg.link
	if scenario == QoSReserved {
		visLinkSpec.Bandwidth *= cfg.reserved
		visLinkSpec.Name += " (reserved share)"
		bgLinkSpec.Bandwidth *= 1 - cfg.reserved
		bgLinkSpec.Name += " (best-effort share)"
	}
	visLink := netsim.NewSharedLink(k, visLinkSpec)
	bgLink := visLink
	if scenario == QoSReserved {
		bgLink = netsim.NewSharedLink(k, bgLinkSpec)
	}

	// Visapult: one flow per PE, a barrier between timesteps, exactly like
	// the campaign simulator's load phase.
	perPE := cfg.frameBytes / int64(cfg.pes)
	barrier := sim.NewBarrier(k, cfg.pes)
	type span struct{ start, end time.Duration }
	loads := make([][]span, cfg.pes)
	visDone := sim.NewEvent(k)
	finished := 0
	for pe := 0; pe < cfg.pes; pe++ {
		pe := pe
		loads[pe] = make([]span, cfg.frames)
		k.Spawn(fmt.Sprintf("vis-pe-%d", pe), func(p *sim.Proc) {
			for t := 0; t < cfg.frames; t++ {
				start := p.Now()
				visLink.Transfer(p, perPE)
				loads[pe][t] = span{start, p.Now()}
				barrier.Await(p)
			}
			finished++
			if finished == cfg.pes {
				visDone.Signal()
			}
		})
	}

	// Background applications: bulk flows that keep sending until Visapult
	// finishes (checking between chunks). Their achieved bandwidth while
	// Visapult runs is the "adversely affect other applications" metric.
	const bgChunk = 4 << 20
	var bgBytes int64
	if scenario != QoSAlone {
		for i := 0; i < cfg.backgroundFlows; i++ {
			k.Spawn(fmt.Sprintf("background-%d", i), func(p *sim.Proc) {
				for !visDone.Signaled() {
					bgLink.Transfer(p, bgChunk)
					if !visDone.Signaled() {
						bgBytes += bgChunk
					}
				}
			})
		}
	}

	k.Run()

	// Visapult's end time is when its last PE finished its last frame.
	var visEnd time.Duration
	var perPELoads []float64
	frameSpans := make([]span, cfg.frames)
	for pe := range loads {
		for t, s := range loads[pe] {
			if s.end > visEnd {
				visEnd = s.end
			}
			perPELoads = append(perPELoads, (s.end - s.start).Seconds())
			if frameSpans[t].start == 0 || s.start < frameSpans[t].start {
				frameSpans[t].start = s.start
			}
			if s.end > frameSpans[t].end {
				frameSpans[t].end = s.end
			}
		}
	}
	var meanSpan time.Duration
	for _, fs := range frameSpans {
		meanSpan += fs.end - fs.start
	}
	meanSpan /= time.Duration(cfg.frames)

	row := QoSRow{
		Scenario:     scenario,
		VisapultLoad: meanSpan,
		VisapultMbps: stats.Mbps(cfg.frameBytes, meanSpan),
		LoadCV:       stats.CoefficientOfVariation(perPELoads),
	}
	if scenario != QoSAlone && visEnd > 0 {
		row.BackgroundMbps = stats.Mbps(bgBytes, visEnd)
	}
	return row, nil
}

// Table renders the QoS study.
func (r *X1Result) Table() *Table {
	t := &Table{
		ID:      "X1",
		Title:   "QoS / bandwidth reservation on ESnet (section 5 future work)",
		Columns: []string{"scenario", "Visapult load/frame", "Visapult Mbps", "background Mbps", "load CV"},
	}
	for _, row := range r.Rows {
		t.AddRow(string(row.Scenario), fmtSeconds(row.VisapultLoad.Seconds()),
			fmtMbps(row.VisapultMbps), fmtMbps(row.BackgroundMbps), fmt.Sprintf("%.2f", row.LoadCV))
	}
	t.AddNote("without QoS the striped Visapult flows crowd the background traffic out of the link while")
	t.AddNote("Visapult itself slows unpredictably with whatever else is running; a %.0f%% reservation bounds", r.ReservedFraction*100)
	t.AddNote("both sides: Visapult keeps a guaranteed rate and the background keeps the remainder.")
	return t
}

// Extensions lists the future-work studies, in the same shape as
// Experiments().
func Extensions() []Experiment {
	return []Experiment{
		{"x1", "QoS / bandwidth reservation", func() (*Table, error) { r, err := RunX1(); return tableOrNil(r, err) }},
	}
}
