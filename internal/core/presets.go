package core

import (
	"time"

	"visapult/internal/backend"
	"visapult/internal/datagen"
	"visapult/internal/netsim"
	"visapult/internal/platform"
)

// The presets below reproduce the paper's field-test configurations. Sizes
// follow section 4.2: a 640x256x256 single-precision grid is 160 MB per
// timestep. Timestep counts default to ten (the paper's E4500 experiment
// length); callers can raise them to the full 265-step campaign.

// paperFrameBytes is the per-timestep size of the combustion dataset.
const paperFrameBytes = 640 * 256 * 256 * 4

// paperDims are the combustion grid dimensions.
var paperDims = [3]int{640, 256, 256}

// defaultTimesteps is the campaign length used by the presets; the paper's
// overlap study (Figures 12-13) used ten timesteps.
const defaultTimesteps = 10

// FirstLightCampaign reproduces the 12 April 2000 Combustion Corridor "first
// light" run of Figure 10: data on the LBL DPSS, the serial Visapult back end
// on four CPlant nodes at SNL-CA reached over NTON (OC-12), viewer at SNL-CA.
// The post-SC99 streamlined implementation achieved about 433 Mbps, 70% of
// the OC-12 limit; Efficiency captures the remaining protocol overhead.
func FirstLightCampaign() Campaign {
	return Campaign{
		Name:       "first-light (LBL DPSS -> CPlant over NTON, serial, 4 PEs)",
		Platform:   platform.CPlant.WithNodes(4),
		PEs:        4,
		Mode:       backend.Serial,
		Timesteps:  defaultTimesteps,
		FrameBytes: paperFrameBytes,
		VolumeDims: paperDims,
		DataPath:   netsim.NewPath("LBL->NTON->SNL-CA", netsim.NTON),
		ViewerPath: netsim.NewPath("SNL-CA desktop", netsim.GigE),
		Efficiency: 0.70,
		Seed:       412,
	}
}

// SC99CPlantCampaign reproduces the SC99 demonstration path from the LBL DPSS
// to CPlant over NTON, where the pre-streamlining implementation sustained
// about 250 Mbps of the OC-48/OC-12 capacity.
func SC99CPlantCampaign() Campaign {
	c := FirstLightCampaign()
	c.Name = "sc99 (LBL DPSS -> CPlant over NTON, early implementation)"
	c.Efficiency = 250.0 / 622.0
	c.Seed = 1999
	return c
}

// SC99ShowFloorCampaign reproduces the SC99 path from the LBL DPSS to the
// 8-node Alpha Linux cluster in the LBL booth: NTON to the Oakland POP, then
// the shared SciNet show-floor network, sustaining about 150 Mbps.
func SC99ShowFloorCampaign() Campaign {
	return Campaign{
		Name:       "sc99 (LBL DPSS -> show-floor cluster over NTON+SciNet)",
		Platform:   platform.CPlant.WithNodes(8),
		PEs:        8,
		Mode:       backend.Serial,
		Timesteps:  defaultTimesteps,
		FrameBytes: paperFrameBytes,
		VolumeDims: paperDims,
		DataPath:   netsim.NewPath("LBL->NTON->SciNet", netsim.NTON, netsim.SciNet).WithShare(0.5),
		ViewerPath: netsim.NewPath("booth LAN", netsim.GigE),
		Efficiency: 0.86, // 150 Mbps of the ~175 Mbps SciNet share
		Seed:       1999,
	}
}

// E4500LANCampaign reproduces the serial-versus-overlapped study of Figures
// 12-13: an eight-processor Sun E4500 reading a large dataset from the LBL
// DPSS over gigabit ethernet, ten timesteps, L ~= 15 s and R ~= 12 s per
// timestep. The 336 MHz UltraSPARC-II hosts of that era could not drive a
// gigabit NIC anywhere near line rate; Efficiency models the host-limited
// ~85 Mbps per-frame delivery that makes the measured 15-second loads.
func E4500LANCampaign(mode backend.Mode) Campaign {
	return Campaign{
		Name:       "e4500-lan (LBL DPSS -> Sun E4500 over gigabit LAN, " + mode.String() + ")",
		Platform:   platform.E4500,
		PEs:        8,
		Mode:       mode,
		Timesteps:  10,
		FrameBytes: paperFrameBytes,
		VolumeDims: paperDims,
		DataPath:   netsim.NewPath("LBL LAN", netsim.GigE),
		ViewerPath: netsim.NewPath("LBL LAN", netsim.GigE),
		Efficiency: 0.085,
		Seed:       4500,
	}
}

// CPlantNTONCampaign reproduces the Figures 14-15 runs: the back end on
// `nodes` CPlant nodes loading from the LBL DPSS over NTON and sending
// textures back to a viewer at LBL over ESnet.
func CPlantNTONCampaign(nodes int, mode backend.Mode) Campaign {
	return Campaign{
		Name:       "cplant-nton (" + mode.String() + ")",
		Platform:   platform.CPlant.WithNodes(nodes),
		PEs:        nodes,
		Mode:       mode,
		Timesteps:  defaultTimesteps,
		FrameBytes: paperFrameBytes,
		VolumeDims: paperDims,
		DataPath:   netsim.NewPath("LBL->NTON->SNL-CA", netsim.NTON),
		ViewerPath: netsim.NewPath("SNL-CA->ESnet->LBL", netsim.ESnet),
		Efficiency: 0.70,
		Seed:       1415,
	}
}

// ANLESnetCampaign reproduces the Figures 16-17 runs: the back end on eight
// processors of the ANL SGI Onyx2, loading from the LBL DPSS over ESnet
// (about ten seconds and 128 Mbps per 160 MB timestep, slightly above what
// iperf measures thanks to parallel loading) and returning textures to a
// viewer at LBL over the same network. TCP slow start is visible on the
// first timestep.
func ANLESnetCampaign(mode backend.Mode) Campaign {
	esnet := netsim.ESnet
	esnet.Bandwidth = 130e6 // raw capacity; iperf's single stream sees ~100 Mbps
	return Campaign{
		Name:       "anl-esnet (" + mode.String() + ")",
		Platform:   platform.Onyx2.WithNodes(8),
		PEs:        8,
		Mode:       mode,
		Timesteps:  defaultTimesteps,
		FrameBytes: paperFrameBytes,
		VolumeDims: paperDims,
		DataPath:   netsim.NewPath("LBL->ESnet->ANL", esnet),
		ViewerPath: netsim.NewPath("ANL->ESnet->LBL", esnet),
		Efficiency: 0.985,
		SlowStart:  true,
		Seed:       1600,
	}
}

// PaperCombustionSource returns a synthetic stand-in for the Combustion
// Corridor dataset at a reduced resolution suitable for real (non-simulated)
// sessions: the full 640x256x256 grid is available through
// datagen.PaperCombustionConfig for callers who want paper-scale data.
func PaperCombustionSource(scale int, timesteps int) *backend.SyntheticSource {
	if scale < 1 {
		scale = 1
	}
	if timesteps < 1 {
		timesteps = 1
	}
	cfg := datagen.CombustionConfig{
		NX: 640 / scale, NY: 256 / scale, NZ: 256 / scale,
		Timesteps: timesteps,
		Seed:      2000,
	}
	return backend.NewSyntheticSource(datagen.NewCombustion(cfg))
}

// TerascaleTargetRate is the paper's stated goal of five new timesteps per
// second for the 265-step combustion dataset.
const TerascaleTargetRate = 5.0

// PaperDatasetTransferTimes returns the section 5 projection inputs: the
// 41.4 GB, 265-timestep dataset moved over NTON and over ESnet.
func PaperDatasetTransferTimes() (nton, esnet time.Duration) {
	ntonPath := netsim.NewPath("NTON", netsim.NTON)
	esnetPath := netsim.NewPath("ESnet", netsim.ESnet)
	total := int64(265) * paperFrameBytes
	return ntonPath.TransferTime(total), esnetPath.TransferTime(total)
}
