package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"visapult/internal/backend"
	"visapult/internal/netlogger"
	"visapult/internal/render"
	"visapult/internal/viewer"
	"visapult/internal/volume"
)

// ViewerResult reports one viewer of a fan-out session: its receive-side
// counters and the sender-side delivery record the fan-out kept for it.
type ViewerResult struct {
	ID       string
	Stats    viewer.Stats
	Delivery backend.ViewerDelivery
	// Err is the viewer's terminal serve error, empty for clean streams.
	Err string
}

// fanoutDrainGrace bounds how long a finishing session waits for the viewer
// send queues to flush, and for each viewer's service goroutines to unwind. A
// viewer stalled past it is abandoned and torn down by closing its
// connections.
const fanoutDrainGrace = 10 * time.Second

// FanoutControl is the live handle of a fan-out session: attach and detach
// viewers while the run executes, and read per-viewer delivery metrics. All
// methods are safe for concurrent use; the handle stays readable (Viewers)
// after the session ends, while Attach and Detach then fail.
type FanoutControl struct {
	cfg SessionConfig
	ctx context.Context
	fan *backend.Fanout
	be  **backend.BackEnd

	mu        sync.Mutex
	instances map[string]*viewerInstance
	order     []*viewerInstance
	seq       int
	closed    bool
}

// viewerInstance is one attached viewer and its transport.
type viewerInstance struct {
	id     string
	seq    int
	vw     *viewer.Viewer
	logger *netlogger.Logger
	tr     *transport

	mu       sync.Mutex
	torn     bool
	serveErr error
}

// newFanoutControl builds the control for one session.
func newFanoutControl(ctx context.Context, cfg SessionConfig, fan *backend.Fanout, be **backend.BackEnd) *FanoutControl {
	return &FanoutControl{cfg: cfg, ctx: ctx, fan: fan, be: be, instances: make(map[string]*viewerInstance)}
}

// Active reports whether the fan-out still accepts viewer operations (the
// session has not begun tearing down). A retention sweep uses it to tell a
// finished session's historical viewer records from live attachments.
func (fc *FanoutControl) Active() bool {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	return !fc.closed
}

// setAxis forwards a best-axis hint from the primary viewer to the back end.
func (fc *FanoutControl) setAxis(axis volume.Axis) {
	fc.mu.Lock()
	be := *fc.be
	fc.mu.Unlock()
	if be != nil {
		be.SetAxis(axis)
	}
}

// Attach builds a new in-process viewer (with the session's transport,
// dimensions and camera), wires it into the fan-out, and starts serving it.
// A viewer attached while the run is in flight starts receiving at the next
// frame boundary.
func (fc *FanoutControl) Attach(id string) error {
	fc.mu.Lock()
	if fc.closed {
		fc.mu.Unlock()
		return errors.New("core: fan-out session has ended, cannot attach")
	}
	if _, ok := fc.instances[id]; ok {
		fc.mu.Unlock()
		return fmt.Errorf("core: viewer %q is already attached", id)
	}
	// Reserve the id (nil entry) before dropping the lock to build the
	// viewer: a concurrent Attach with the same id must fail here, not
	// overwrite the registration below.
	fc.instances[id] = nil
	seq := fc.seq
	fc.seq++
	fc.mu.Unlock()
	unreserve := func() {
		fc.mu.Lock()
		delete(fc.instances, id)
		fc.mu.Unlock()
	}

	var logger *netlogger.Logger
	if fc.cfg.Instrument {
		logger = netlogger.New("viewer-host-"+id, "viewer")
	}
	vcfg := viewer.Config{
		PEs:       fc.cfg.PEs,
		Timesteps: fc.cfg.Timesteps,
		Logger:    logger,
	}
	// A non-nil hook keeps ServeConn from writing axis hints back over the
	// wire (nobody reads them on the fan-out's sender side); only the primary
	// viewer of a FollowView session actually steers the decomposition.
	if seq == 0 && fc.cfg.FollowView {
		vcfg.AxisHint = func(frame int, axis volume.Axis) { fc.setAxis(axis) }
	} else {
		vcfg.AxisHint = func(int, volume.Axis) {}
	}
	vw, err := viewer.New(vcfg)
	if err != nil {
		unreserve()
		return err
	}
	vw.SetViewAngle(fc.cfg.ViewAngle)

	// Reuse the single-viewer transport builder: it returns one sink per PE
	// (or one shared LocalSink) plus the teardown sequence. FollowView is
	// forced off — hints travel through the in-process hook above, never the
	// wire.
	trCfg := fc.cfg
	trCfg.FollowView = false
	tr, err := buildTransport(fc.ctx, trCfg, vw, fc.be)
	if err != nil {
		unreserve()
		return fmt.Errorf("core: building transport for viewer %q: %w", id, err)
	}
	if fc.cfg.RenderLoop {
		vw.StartRenderLoop(0)
	}

	inst := &viewerInstance{id: id, seq: seq, vw: vw, logger: logger, tr: tr}
	fc.mu.Lock()
	if fc.closed {
		delete(fc.instances, id)
		fc.mu.Unlock()
		inst.teardown(0)
		return errors.New("core: fan-out session has ended, cannot attach")
	}
	fc.instances[id] = inst
	fc.order = append(fc.order, inst)
	fc.mu.Unlock()

	if err := fc.fan.Attach(id, tr.sinks); err != nil {
		fc.mu.Lock()
		delete(fc.instances, id)
		for i, o := range fc.order {
			if o == inst {
				fc.order = append(fc.order[:i], fc.order[i+1:]...)
				break
			}
		}
		fc.mu.Unlock()
		inst.teardown(0)
		return err
	}
	return nil
}

// Detach removes a viewer from the fan-out mid-run and tears its transport
// down. Its delivery record (and receive-side statistics) remain available in
// the session result and in Viewers snapshots.
func (fc *FanoutControl) Detach(id string) error {
	fc.mu.Lock()
	inst, ok := fc.instances[id]
	if !ok || inst == nil { // nil: a concurrent Attach is still building it
		fc.mu.Unlock()
		return fmt.Errorf("core: viewer %q is not attached", id)
	}
	delete(fc.instances, id)
	fc.mu.Unlock()
	if err := fc.fan.Detach(id); err != nil {
		// The sender may already be gone (failed sink); the transport still
		// needs tearing down.
		inst.teardown(fanoutDrainGrace)
		return nil
	}
	inst.teardown(fanoutDrainGrace)
	return nil
}

// Viewers returns a snapshot of every viewer's delivery counters, in attach
// order, including viewers that already detached or failed.
func (fc *FanoutControl) Viewers() []backend.ViewerDelivery {
	return fc.fan.Viewers()
}

// close marks the control finished: subsequent Attach/Detach calls fail.
func (fc *FanoutControl) close() {
	fc.mu.Lock()
	fc.closed = true
	fc.mu.Unlock()
}

// teardown finishes one viewer's streams and unwinds its goroutines: Done
// markers first (bounded — a wedged write means the viewer is gone anyway),
// then the serve goroutines, then the sockets. Idempotent.
func (inst *viewerInstance) teardown(grace time.Duration) {
	inst.mu.Lock()
	if inst.torn {
		inst.mu.Unlock()
		return
	}
	inst.torn = true
	inst.mu.Unlock()

	done := make(chan error, 1)
	go func() {
		inst.tr.finish()
		done <- inst.tr.serveWait()
	}()
	var deadline <-chan time.Time
	if grace > 0 {
		t := time.NewTimer(grace)
		defer t.Stop()
		deadline = t.C
	}
	select {
	case err := <-done:
		inst.setServeErr(err)
		inst.tr.closeAll()
		inst.vw.Stop()
		return
	case <-deadline:
		// Wedged mid-stream: closing the connections below fails the blocked
		// reads and writes, then the goroutine above drains on its own time.
	}
	inst.tr.closeAll()
	inst.vw.Stop()
	select {
	case err := <-done:
		inst.setServeErr(err)
	case <-time.After(fanoutDrainGrace):
	}
}

func (inst *viewerInstance) setServeErr(err error) {
	inst.mu.Lock()
	if inst.serveErr == nil {
		inst.serveErr = err
	}
	inst.mu.Unlock()
}

// result snapshots one viewer's final state.
func (inst *viewerInstance) result(delivery backend.ViewerDelivery) ViewerResult {
	vr := ViewerResult{ID: inst.id, Stats: inst.vw.Stats(), Delivery: delivery}
	inst.mu.Lock()
	if inst.serveErr != nil {
		vr.Err = inst.serveErr.Error()
	}
	inst.mu.Unlock()
	return vr
}

// runFanoutSession executes a session whose back end multicasts every frame
// to cfg.Viewers concurrently attached viewers through the fan-out stage.
// The render loop never blocks on a slow or dead viewer: each viewer owns a
// bounded send queue and loses frames past it. Viewer-side stream errors are
// per-viewer results, not run failures.
func runFanoutSession(ctx context.Context, cfg SessionConfig) (*SessionResult, error) {
	fan, err := backend.NewFanout(cfg.PEs, cfg.ViewerQueue)
	if err != nil {
		return nil, err
	}
	var be *backend.BackEnd
	fc := newFanoutControl(ctx, cfg, fan, &be)
	defer fc.close()

	for i := 0; i < cfg.Viewers; i++ {
		if err := fc.Attach(fmt.Sprintf("viewer-%d", i)); err != nil {
			fc.teardownAll()
			return nil, err
		}
	}

	var beLogger *netlogger.Logger
	if cfg.Instrument {
		beLogger = netlogger.New("backend-host", "backend")
	}
	be, err = backend.New(backend.Config{
		PEs:           cfg.PEs,
		Timesteps:     cfg.Timesteps,
		Mode:          cfg.Mode,
		Axis:          cfg.Axis,
		Source:        cfg.Source,
		TF:            cfg.TF,
		Sinks:         fan.Sinks(),
		Logger:        beLogger,
		OnFrame:       cfg.OnFrame,
		OnSlab:        cfg.OnSlab,
		Cache:         cfg.Cache,
		CacheDataset:  cfg.CacheDataset,
		CacheTF:       cfg.CacheTF,
		RenderWorkers: cfg.RenderWorkers,
	})
	if err != nil {
		fc.teardownAll()
		return nil, err
	}

	if cfg.OnFanout != nil {
		cfg.OnFanout(fc)
	}

	start := time.Now()
	beStats, runErr := be.Run(ctx)
	// Flush what the queues still hold, then end every viewer's streams. A
	// sender wedged on a stalled viewer past the grace is unblocked by the
	// teardown closing its connections.
	fan.Close(fanoutDrainGrace)
	fc.close()
	results, primary, finalImg := fc.finishAll()
	elapsed := time.Since(start)
	if runErr != nil {
		return nil, runErr
	}

	res := &SessionResult{
		Backend:    beStats,
		Viewer:     primary,
		Viewers:    results,
		Elapsed:    elapsed,
		FinalImage: finalImg,
	}
	if cfg.Instrument {
		collector := netlogger.NewCollector()
		collector.AddLogger(beLogger)
		fc.mu.Lock()
		for _, inst := range fc.order {
			if inst.logger != nil {
				collector.AddLogger(inst.logger)
			}
		}
		fc.mu.Unlock()
		res.Events = collector.Events()
	}
	return res, nil
}

// teardownAll unwinds every instance without collecting results (setup
// failure path). Closing the fan first ends the already-started sender
// goroutines — their queues are empty at setup time, so the short grace is
// never consumed by a healthy sender.
func (fc *FanoutControl) teardownAll() {
	fc.close()
	fc.fan.Close(time.Second)
	fc.mu.Lock()
	order := append([]*viewerInstance(nil), fc.order...)
	fc.mu.Unlock()
	for _, inst := range order {
		inst.teardown(0)
	}
}

// finishAll tears every viewer down and assembles the per-viewer results in
// attach order, returning them with the primary viewer's stats and final
// composited view.
func (fc *FanoutControl) finishAll() ([]ViewerResult, viewer.Stats, *render.Image) {
	fc.mu.Lock()
	order := append([]*viewerInstance(nil), fc.order...)
	fc.mu.Unlock()

	var wg sync.WaitGroup
	for _, inst := range order {
		wg.Add(1)
		go func(inst *viewerInstance) {
			defer wg.Done()
			inst.teardown(fanoutDrainGrace)
		}(inst)
	}
	wg.Wait()

	// Snapshot the delivery counters only after the teardown: a sender that
	// was wedged on a stalled connection settles its final sent/dropped tally
	// when the teardown closes that connection. An id reused after a detach
	// appears more than once in the snapshot, so pair each instance with the
	// first unconsumed record carrying its id.
	deliveries := fc.fan.Viewers()
	used := make([]bool, len(deliveries))
	deliveryFor := func(id string) backend.ViewerDelivery {
		for i, d := range deliveries {
			if !used[i] && d.ID == id {
				used[i] = true
				return d
			}
		}
		return backend.ViewerDelivery{ID: id}
	}

	results := make([]ViewerResult, 0, len(order))
	var primary viewer.Stats
	var finalImg *render.Image
	for i, inst := range order {
		results = append(results, inst.result(deliveryFor(inst.id)))
		if i == 0 {
			primary = inst.vw.Stats()
			if img, err := inst.vw.CompositeView(); err == nil {
				finalImg = img
			}
		}
	}
	return results, primary, finalImg
}
