package core

import (
	"context"
	"fmt"
	"math"
	"time"

	"visapult/internal/backend"
	"visapult/internal/dpss"
	"visapult/internal/netlogger"
	"visapult/internal/netsim"
	"visapult/internal/platform"
	"visapult/internal/sim"
	"visapult/internal/stats"
)

// campaignOrigin is the wall-clock origin assigned to virtual time zero in
// campaign event logs: 12 April 2000, the paper's "first light" date.
var campaignOrigin = time.Date(2000, time.April, 12, 9, 0, 0, 0, time.UTC)

// Campaign describes one simulated field test: a compute platform running the
// Visapult back end, a WAN path from the data cache to that platform, and a
// return path to the viewer. Campaigns execute on a virtual clock
// (internal/sim), so the paper's 160 MB-per-timestep runs over OC-12 testbeds
// regenerate in milliseconds of real time while preserving every timing
// relationship the paper's NLV plots show.
type Campaign struct {
	// Name labels the campaign in logs and tables.
	Name string
	// Platform is the back-end compute platform (CPlant, Onyx2, E4500...).
	Platform platform.Platform
	// PEs is the number of back-end processing elements.
	PEs int
	// Mode selects serial or overlapped loading and rendering.
	Mode backend.Mode
	// Timesteps is the number of data frames processed.
	Timesteps int
	// FrameBytes is the raw data volume of one timestep across all PEs
	// (160 MB for the paper's combustion dataset).
	FrameBytes int64
	// VolumeDims are the source grid dimensions, used to derive per-PE
	// render cost and texture sizes; when zero they are derived from
	// FrameBytes assuming a cubical float32 grid.
	VolumeDims [3]int
	// DataPath is the network path from the data source (DPSS) to the back
	// end.
	DataPath netsim.Path
	// DPSS, when HasDPSSCap is true, caps the data source's aggregate
	// delivery rate (disk- or server-bound instead of WAN-bound).
	DPSS       dpss.ThroughputModel
	HasDPSSCap bool
	// ViewerPath is the network path from the back end to the viewer.
	ViewerPath netsim.Path
	// TexBytesPerPE overrides the per-PE heavy payload size (0 = derive from
	// VolumeDims).
	TexBytesPerPE int64
	// Efficiency scales the data path bandwidth actually achieved by the
	// implementation (1.0 = the streamlined post-SC99 code, lower values
	// reproduce the early SC99 measurements).
	Efficiency float64
	// SlowStart adds a TCP window-opening penalty to the first timestep's
	// load, visible in the paper's ESnet profiles.
	SlowStart bool
	// Seed makes the overlapped-load jitter deterministic.
	Seed int64
}

// PEFrame records the virtual-time phase boundaries of one PE processing one
// timestep.
type PEFrame struct {
	Frame, PE int
	// LoadStart/LoadEnd bracket the data transfer from the source into the
	// PE; RenderStart/RenderEnd the software volume rendering;
	// SendStart/SendEnd the texture transmission to the viewer.
	LoadStart, LoadEnd     time.Duration
	RenderStart, RenderEnd time.Duration
	SendStart, SendEnd     time.Duration
	// BytesLoaded and BytesSent are the per-phase traffic volumes.
	BytesLoaded, BytesSent int64
}

// Load returns the load phase duration.
func (f PEFrame) Load() time.Duration { return f.LoadEnd - f.LoadStart }

// Render returns the render phase duration.
func (f PEFrame) Render() time.Duration { return f.RenderEnd - f.RenderStart }

// Send returns the send phase duration.
func (f PEFrame) Send() time.Duration { return f.SendEnd - f.SendStart }

// CampaignResult is the outcome of one simulated campaign.
type CampaignResult struct {
	Campaign Campaign
	// Total is the virtual end-to-end duration of the run.
	Total time.Duration
	// PerPEFrame holds one record per (PE, timestep).
	PerPEFrame []PEFrame
	// Events is the NetLogger stream with virtual timestamps, using the
	// paper's Table 1 and Table 2 tag vocabulary.
	Events []netlogger.Event
}

// MeanLoad returns the mean per-PE load time.
func (r *CampaignResult) MeanLoad() time.Duration { return r.meanPhase(PEFrame.Load) }

// MeanRender returns the mean per-PE render time.
func (r *CampaignResult) MeanRender() time.Duration { return r.meanPhase(PEFrame.Render) }

// MeanSend returns the mean per-PE send time.
func (r *CampaignResult) MeanSend() time.Duration { return r.meanPhase(PEFrame.Send) }

func (r *CampaignResult) meanPhase(get func(PEFrame) time.Duration) time.Duration {
	if len(r.PerPEFrame) == 0 {
		return 0
	}
	var total time.Duration
	for _, f := range r.PerPEFrame {
		total += get(f)
	}
	return total / time.Duration(len(r.PerPEFrame))
}

// FrameLoadSpans returns, per timestep, the span from the first PE starting
// its load to the last PE finishing it — the quantity the paper reads off the
// BE_LOAD_START / BE_LOAD_END traces.
func (r *CampaignResult) FrameLoadSpans() []time.Duration {
	spans := make([]time.Duration, r.Campaign.Timesteps)
	starts := make([]time.Duration, r.Campaign.Timesteps)
	ends := make([]time.Duration, r.Campaign.Timesteps)
	for i := range starts {
		starts[i] = -1
	}
	for _, f := range r.PerPEFrame {
		if starts[f.Frame] < 0 || f.LoadStart < starts[f.Frame] {
			starts[f.Frame] = f.LoadStart
		}
		if f.LoadEnd > ends[f.Frame] {
			ends[f.Frame] = f.LoadEnd
		}
	}
	for i := range spans {
		spans[i] = ends[i] - starts[i]
	}
	return spans
}

// LoadMbps returns the aggregate bandwidth achieved while loading, averaged
// over timesteps: FrameBytes divided by the mean frame load span.
func (r *CampaignResult) LoadMbps() float64 {
	spans := r.FrameLoadSpans()
	if len(spans) == 0 {
		return 0
	}
	var total time.Duration
	for _, s := range spans {
		total += s
	}
	mean := total / time.Duration(len(spans))
	return stats.Mbps(r.Campaign.FrameBytes, mean)
}

// Utilization returns achieved load bandwidth over the data path's raw
// capacity (the paper's "70% utilization of the theoretical bandwidth").
func (r *CampaignResult) Utilization() float64 {
	return stats.Utilization(r.LoadMbps()*1e6, r.Campaign.DataPath.Bandwidth())
}

// LoadCV returns the coefficient of variation of per-PE load times — the
// "variability in load times from time step to time step" of Figure 15.
func (r *CampaignResult) LoadCV() float64 {
	xs := make([]float64, 0, len(r.PerPEFrame))
	for _, f := range r.PerPEFrame {
		xs = append(xs, f.Load().Seconds())
	}
	return stats.CoefficientOfVariation(xs)
}

// TimePerTimestep returns the steady-state virtual time between completed
// timesteps.
func (r *CampaignResult) TimePerTimestep() time.Duration {
	if r.Campaign.Timesteps == 0 {
		return 0
	}
	return r.Total / time.Duration(r.Campaign.Timesteps)
}

// withDefaults fills derived campaign fields.
func (c Campaign) withDefaults() (Campaign, error) {
	if c.PEs <= 0 {
		return c, fmt.Errorf("core: campaign %q needs a positive PE count", c.Name)
	}
	if c.Timesteps <= 0 {
		return c, fmt.Errorf("core: campaign %q needs a positive timestep count", c.Name)
	}
	if c.FrameBytes <= 0 {
		return c, fmt.Errorf("core: campaign %q needs a positive frame size", c.Name)
	}
	if c.Efficiency <= 0 || c.Efficiency > 1 {
		c.Efficiency = 1
	}
	if c.VolumeDims == [3]int{} {
		// Assume a cubical float32 grid of the right total size.
		n := int(math.Cbrt(float64(c.FrameBytes / 4)))
		if n < 1 {
			n = 1
		}
		c.VolumeDims = [3]int{n, n, n}
	}
	if c.TexBytesPerPE <= 0 {
		// Z-slab decomposition: each PE's texture is one X-Y cross section.
		c.TexBytesPerPE = int64(c.VolumeDims[0]) * int64(c.VolumeDims[1]) * 4
	}
	if len(c.ViewerPath.Hops) == 0 {
		c.ViewerPath = netsim.NewPath("viewer-lan", netsim.GigE)
	}
	return c, nil
}

// voxelsPerPE returns the per-PE render workload in voxels.
func (c Campaign) voxelsPerPE() int64 {
	total := int64(c.VolumeDims[0]) * int64(c.VolumeDims[1]) * int64(c.VolumeDims[2])
	return total / int64(c.PEs)
}

// effectiveDataLink folds implementation efficiency and the optional
// DPSS-side cap into a single bottleneck link shared by all PEs.
func (c Campaign) effectiveDataLink() netsim.Link {
	l := c.DataPath.AsLink()
	l.Bandwidth *= c.Efficiency
	if c.HasDPSSCap {
		limit := c.DPSS.AggregateMbps() * 1e6
		if limit > 0 && limit < l.Bandwidth {
			l.Bandwidth = limit
			l.Name = l.Name + " (DPSS-bound)"
		}
	}
	return l
}

// jitter returns a deterministic pseudo-random value in [-1, 1] for the given
// (PE, frame) pair, seeded by the campaign seed.
func (c Campaign) jitter(pe, frame int) float64 {
	x := uint64(c.Seed)*2654435761 + uint64(pe)*40503 + uint64(frame)*9176 + 12345
	// xorshift64*
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	x *= 2685821657736338717
	return float64(x%2000001)/1000000 - 1
}

// Run executes the campaign on a virtual clock and returns its result. The
// simulation itself completes in milliseconds of real time, so ctx is checked
// once before the kernel runs; a cancelled context fails the campaign without
// starting it.
func (c Campaign) Run(ctx context.Context) (*CampaignResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	c, err := c.withDefaults()
	if err != nil {
		return nil, err
	}

	k := sim.NewKernel()
	dataLink := netsim.NewSharedLink(k, c.effectiveDataLink())
	viewerLink := netsim.NewSharedLink(k, c.ViewerPath.AsLink())
	barrier := sim.NewBarrier(k, c.PEs)

	beLog := netlogger.New(c.Platform.Name, "backend")
	vLog := netlogger.New("viewer-desktop", "viewer")
	logAt := func(l *netlogger.Logger, at time.Duration, tag string, frame, pe int, bytes int64) {
		fields := []netlogger.Field{
			netlogger.Int(netlogger.FieldFrame, frame),
			netlogger.Int(netlogger.FieldPE, pe),
		}
		if bytes > 0 {
			fields = append(fields, netlogger.Int64(netlogger.FieldBytes, bytes))
		}
		l.LogAt(campaignOrigin.Add(at), tag, fields...)
	}

	loadBytes := c.FrameBytes / int64(c.PEs)
	baseRender := c.Platform.RenderTime(c.voxelsPerPE())
	overlappedAndOversubscribed := c.Mode == backend.Overlapped && c.Platform.Oversubscribed()
	slowStartPenalty := netsim.SlowStartModel{Path: c.DataPath}.FirstTransferPenalty()

	records := make([]PEFrame, 0, c.PEs*c.Timesteps)
	recordCh := make(chan PEFrame, c.PEs*c.Timesteps)

	// loadFrame performs one PE's load of one timestep in virtual time and
	// returns the phase boundaries. Called from the PE proc (serial mode) or
	// its reader proc (overlapped mode).
	loadFrame := func(p *sim.Proc, pe, frame int) (start, end time.Duration) {
		start = p.Now()
		logAt(beLog, start, netlogger.BELoadStart, frame, pe, loadBytes)
		if c.SlowStart && frame == 0 {
			p.Sleep(slowStartPenalty)
		}
		base := dataLink.Transfer(p, loadBytes)
		if overlappedAndOversubscribed {
			// Loader and renderer share the node's single CPU: the load is
			// inflated and becomes unstable (Figure 15).
			penalty := c.Platform.EffectiveOverlapPenalty() - 1
			jitterFrac := c.Platform.OverlapLoadJitter * c.jitter(pe, frame)
			extra := time.Duration((penalty + jitterFrac) * float64(base))
			if extra > 0 {
				p.Sleep(extra)
			}
		}
		end = p.Now()
		logAt(beLog, end, netlogger.BELoadEnd, frame, pe, loadBytes)
		return start, end
	}

	// renderAndSend performs one PE's render and send phases in virtual time.
	renderAndSend := func(p *sim.Proc, pe, frame int, rec *PEFrame) {
		rec.RenderStart = p.Now()
		logAt(beLog, rec.RenderStart, netlogger.BERenderStart, frame, pe, 0)
		renderDur := baseRender
		if overlappedAndOversubscribed {
			// NIC interrupt servicing for the concurrent load steals CPU
			// from the renderer.
			renderDur += c.Platform.InterruptLoad(loadBytes)
		}
		p.Sleep(renderDur)
		rec.RenderEnd = p.Now()
		logAt(beLog, rec.RenderEnd, netlogger.BERenderEnd, frame, pe, 0)

		rec.SendStart = p.Now()
		logAt(beLog, rec.SendStart, netlogger.BELightSend, frame, pe, 256)
		logAt(beLog, rec.SendStart, netlogger.BEHeavySend, frame, pe, c.TexBytesPerPE)
		logAt(vLog, rec.SendStart+c.ViewerPath.Latency(), netlogger.VFrameStart, frame, pe, 0)
		logAt(vLog, rec.SendStart+c.ViewerPath.Latency(), netlogger.VLightPayloadStart, frame, pe, 256)
		logAt(vLog, rec.SendStart+c.ViewerPath.Latency(), netlogger.VLightPayloadEnd, frame, pe, 256)
		logAt(vLog, rec.SendStart+c.ViewerPath.Latency(), netlogger.VHeavyPayloadStart, frame, pe, c.TexBytesPerPE)
		viewerLink.Transfer(p, c.TexBytesPerPE)
		rec.SendEnd = p.Now()
		logAt(beLog, rec.SendEnd, netlogger.BEHeavyEnd, frame, pe, c.TexBytesPerPE)
		arrival := rec.SendEnd + c.ViewerPath.Latency()
		logAt(vLog, arrival, netlogger.VHeavyPayloadEnd, frame, pe, c.TexBytesPerPE)
		logAt(vLog, arrival, netlogger.VFrameEnd, frame, pe, 0)
		rec.BytesLoaded = loadBytes
		rec.BytesSent = c.TexBytesPerPE + 256
	}

	for pe := 0; pe < c.PEs; pe++ {
		pe := pe
		switch c.Mode {
		case backend.Overlapped:
			// Reader proc + render proc per PE, handshaking through events
			// (the paper's semaphore pair, Appendix B).
			reqEvs := make([]*sim.Event, c.Timesteps)
			doneEvs := make([]*sim.Event, c.Timesteps)
			loads := make([][2]time.Duration, c.Timesteps)
			for t := range reqEvs {
				reqEvs[t] = sim.NewEvent(k)
				doneEvs[t] = sim.NewEvent(k)
			}
			k.Spawn(fmt.Sprintf("reader-%d", pe), func(p *sim.Proc) {
				for t := 0; t < c.Timesteps; t++ {
					p.Wait(reqEvs[t])
					s, e := loadFrame(p, pe, t)
					loads[t] = [2]time.Duration{s, e}
					doneEvs[t].Signal()
				}
			})
			k.Spawn(fmt.Sprintf("render-%d", pe), func(p *sim.Proc) {
				reqEvs[0].Signal()
				for t := 0; t < c.Timesteps; t++ {
					logAt(beLog, p.Now(), netlogger.BEFrameStart, t, pe, 0)
					p.Wait(doneEvs[t])
					if t+1 < c.Timesteps {
						reqEvs[t+1].Signal()
					}
					rec := PEFrame{Frame: t, PE: pe, LoadStart: loads[t][0], LoadEnd: loads[t][1]}
					renderAndSend(p, pe, t, &rec)
					logAt(beLog, p.Now(), netlogger.BEFrameEnd, t, pe, 0)
					recordCh <- rec
					barrier.Await(p)
				}
			})
		default:
			k.Spawn(fmt.Sprintf("pe-%d", pe), func(p *sim.Proc) {
				for t := 0; t < c.Timesteps; t++ {
					logAt(beLog, p.Now(), netlogger.BEFrameStart, t, pe, 0)
					rec := PEFrame{Frame: t, PE: pe}
					rec.LoadStart, rec.LoadEnd = loadFrame(p, pe, t)
					renderAndSend(p, pe, t, &rec)
					logAt(beLog, p.Now(), netlogger.BEFrameEnd, t, pe, 0)
					recordCh <- rec
					barrier.Await(p)
				}
			})
		}
	}

	total := k.Run()
	close(recordCh)
	for rec := range recordCh {
		records = append(records, rec)
	}

	collector := netlogger.NewCollector()
	collector.AddLogger(beLog)
	collector.AddLogger(vLog)

	return &CampaignResult{
		Campaign:   c,
		Total:      total,
		PerPEFrame: records,
		Events:     collector.Events(),
	}, nil
}
