package netsim

import (
	"math"
	"time"

	"visapult/internal/sim"
	"visapult/internal/stats"
)

// SharedLink is a processor-sharing model of a network segment running on a
// virtual clock: all concurrent transfers split the link bandwidth equally,
// and completion times are recomputed whenever a flow joins or leaves.
//
// This is the piece that reproduces the paper's saturation results: when the
// Visapult back end grows from four to eight processing elements, the
// per-element fair share halves but the aggregate stays pinned at the link
// rate, so total load time does not improve (Figure 14), whereas rendering
// time keeps scaling with the number of elements.
type SharedLink struct {
	k      *sim.Kernel
	link   Link
	flows  map[int]*flow
	nextID int
	last   time.Duration // virtual time of the last remaining-bytes update
	timer  *sim.Timer
	// Statistics.
	totalBytes     int64
	totalTransfers int
	peakConcurrent int
	busy           time.Duration
}

type flow struct {
	id        int
	remaining float64 // bits still to move
	done      *sim.Event
	bytes     int64
	started   time.Duration
}

// NewSharedLink creates a shared link on kernel k with the given description.
func NewSharedLink(k *sim.Kernel, link Link) *SharedLink {
	return &SharedLink{k: k, link: link, flows: make(map[int]*flow)}
}

// Link returns the underlying link description.
func (s *SharedLink) Link() Link { return s.link }

// Kernel returns the virtual clock this link runs on.
func (s *SharedLink) Kernel() *sim.Kernel { return s.k }

// advance applies elapsed virtual time to every active flow at the current
// fair share.
func (s *SharedLink) advance() {
	now := s.k.Now()
	elapsed := now - s.last
	s.last = now
	n := len(s.flows)
	if n == 0 || elapsed <= 0 {
		return
	}
	s.busy += elapsed
	share := s.link.Bandwidth / float64(n)
	moved := share * elapsed.Seconds()
	for _, f := range s.flows {
		f.remaining -= moved
		if f.remaining < 0 {
			f.remaining = 0
		}
	}
}

// epsilonBits is the completion threshold: flows with fewer remaining bits
// than this are considered finished. It absorbs the floating-point and
// nanosecond-quantization residue left over when completion times are rounded
// up to whole virtual nanoseconds; one bit of slack is far below anything the
// experiments measure.
const epsilonBits = 1.0

// reschedule completes any finished flows and programs the timer for the next
// completion.
func (s *SharedLink) reschedule() {
	// Complete finished flows first.
	for id, f := range s.flows {
		if f.remaining <= epsilonBits {
			delete(s.flows, id)
			f.done.Signal()
		}
	}
	if s.timer != nil {
		s.timer.Stop()
		s.timer = nil
	}
	n := len(s.flows)
	if n == 0 {
		return
	}
	minRemaining := -1.0
	for _, f := range s.flows {
		if minRemaining < 0 || f.remaining < minRemaining {
			minRemaining = f.remaining
		}
	}
	share := s.link.Bandwidth / float64(n)
	// Round the next completion up to a whole virtual nanosecond so the timer
	// always makes forward progress (a truncated-to-zero delay would spin).
	next := time.Duration(math.Ceil(minRemaining / share * float64(time.Second)))
	if next <= 0 {
		next = time.Nanosecond
	}
	s.timer = s.k.After(next, func() {
		s.advance()
		s.reschedule()
	})
}

// Transfer moves bytes across the link on behalf of process p, blocking p in
// virtual time for one propagation latency plus its fair share of the link.
// It returns the elapsed virtual time for the transfer.
func (s *SharedLink) Transfer(p *sim.Proc, bytes int64) time.Duration {
	start := p.Now()
	if s.link.Latency > 0 {
		p.Sleep(s.link.Latency)
	}
	if bytes <= 0 {
		return p.Now() - start
	}
	s.advance()
	f := &flow{
		id:        s.nextID,
		remaining: float64(bytes) * 8,
		done:      sim.NewEvent(s.k),
		bytes:     bytes,
		started:   p.Now(),
	}
	s.nextID++
	s.flows[f.id] = f
	s.totalTransfers++
	s.totalBytes += bytes
	if len(s.flows) > s.peakConcurrent {
		s.peakConcurrent = len(s.flows)
	}
	s.reschedule()
	p.Wait(f.done)
	return p.Now() - start
}

// TransferAsync starts a transfer from a timer/kernel context and returns an
// event that fires when it completes. It does not model the propagation
// latency (callers that need it should add it themselves).
func (s *SharedLink) TransferAsync(bytes int64) *sim.Event {
	done := sim.NewEvent(s.k)
	if bytes <= 0 {
		done.Signal()
		return done
	}
	s.advance()
	f := &flow{id: s.nextID, remaining: float64(bytes) * 8, done: done, bytes: bytes, started: s.k.Now()}
	s.nextID++
	s.flows[f.id] = f
	s.totalTransfers++
	s.totalBytes += bytes
	if len(s.flows) > s.peakConcurrent {
		s.peakConcurrent = len(s.flows)
	}
	s.reschedule()
	return done
}

// LinkStats summarizes the traffic a SharedLink carried.
type LinkStats struct {
	TotalBytes     int64
	Transfers      int
	PeakConcurrent int
	BusyTime       time.Duration
	// AchievedMbps is the average rate over the busy time (0 if never busy).
	AchievedMbps float64
	// UtilizationOfCapacity is AchievedMbps over the link rate, in [0,1].
	UtilizationOfCapacity float64
}

// Stats returns a snapshot of the traffic carried so far.
func (s *SharedLink) Stats() LinkStats {
	ls := LinkStats{
		TotalBytes:     s.totalBytes,
		Transfers:      s.totalTransfers,
		PeakConcurrent: s.peakConcurrent,
		BusyTime:       s.busy,
	}
	if s.busy > 0 {
		ls.AchievedMbps = stats.Mbps(s.totalBytes, s.busy)
		ls.UtilizationOfCapacity = stats.Utilization(ls.AchievedMbps*stats.Mega, s.link.Bandwidth)
	}
	return ls
}

// ActiveFlows returns the number of in-flight transfers.
func (s *SharedLink) ActiveFlows() int { return len(s.flows) }
