package netsim

import (
	"io"
	"net"
	"sync"
	"time"
)

// Shaper is a token-bucket rate limiter used to make real loopback sockets
// behave like the paper's WAN links. The live examples run the full Visapult
// stack (DPSS servers, back end, viewer) over real TCP connections, with each
// connection wrapped in a Shaper configured from a Link, so that the
// bandwidth-bound behaviour of the field tests shows up on a laptop.
//
// A single Shaper may be shared by several connections, which models several
// striped sockets contending for one WAN path.
type Shaper struct {
	mu        sync.Mutex
	rate      float64 // bytes per second
	burst     float64 // bucket size in bytes
	tokens    float64
	last      time.Time
	sleepFunc func(time.Duration) // test hook; nil means time.Sleep
}

// NewShaper creates a shaper limiting throughput to rateBytesPerSec with the
// given burst size in bytes. A non-positive rate means unlimited. A
// non-positive burst defaults to 64 KiB.
func NewShaper(rateBytesPerSec float64, burst float64) *Shaper {
	if burst <= 0 {
		burst = 64 << 10
	}
	return &Shaper{rate: rateBytesPerSec, burst: burst, tokens: burst, last: time.Now()}
}

// ShaperForLink creates a shaper whose rate matches the link bandwidth.
func ShaperForLink(l Link) *Shaper {
	return NewShaper(l.Bandwidth/8, 256<<10)
}

// Rate returns the configured rate in bytes per second (0 means unlimited).
func (s *Shaper) Rate() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rate
}

// SetRate changes the rate at runtime; non-positive means unlimited.
func (s *Shaper) SetRate(rateBytesPerSec float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rate = rateBytesPerSec
}

// Wait blocks until n bytes worth of tokens are available and consumes them.
// It returns immediately when the shaper is unlimited.
func (s *Shaper) Wait(n int) {
	for {
		d := s.reserve(n)
		if d <= 0 {
			return
		}
		if s.sleepFunc != nil {
			s.sleepFunc(d)
		} else {
			time.Sleep(d)
		}
	}
}

// reserve attempts to take n tokens; it returns 0 on success or the duration
// to wait before trying again.
func (s *Shaper) reserve(n int) time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.rate <= 0 {
		return 0
	}
	now := time.Now()
	elapsed := now.Sub(s.last).Seconds()
	s.last = now
	s.tokens += elapsed * s.rate
	if s.tokens > s.burst {
		s.tokens = s.burst
	}
	need := float64(n)
	if need > s.burst {
		// Requests larger than the bucket drain it and pay for the remainder
		// in waiting time, so huge writes are still correctly paced.
		need = s.burst
	}
	if s.tokens >= need {
		s.tokens -= float64(n)
		return 0
	}
	deficit := need - s.tokens
	wait := time.Duration(deficit / s.rate * float64(time.Second))
	if wait < time.Millisecond {
		wait = time.Millisecond
	}
	return wait
}

// ShapedConn wraps a net.Conn so that writes are paced by a Shaper and an
// optional fixed latency is added before the first byte of each write. Reads
// are not shaped (the peer's writes already are).
type ShapedConn struct {
	net.Conn
	shaper  *Shaper
	latency time.Duration
}

// NewShapedConn wraps conn with the given shaper and per-write latency.
// A nil shaper leaves the write path unshaped.
func NewShapedConn(conn net.Conn, shaper *Shaper, latency time.Duration) *ShapedConn {
	return &ShapedConn{Conn: conn, shaper: shaper, latency: latency}
}

// Write paces p through the shaper in MTU-sized chunks.
func (c *ShapedConn) Write(p []byte) (int, error) {
	if c.latency > 0 {
		time.Sleep(c.latency)
	}
	if c.shaper == nil {
		return c.Conn.Write(p)
	}
	const chunk = 32 << 10
	written := 0
	for written < len(p) {
		end := written + chunk
		if end > len(p) {
			end = len(p)
		}
		c.shaper.Wait(end - written)
		n, err := c.Conn.Write(p[written:end])
		written += n
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

// ShapedWriter wraps an io.Writer with a Shaper, for shaping non-socket
// destinations (pipes, buffers) in tests.
type ShapedWriter struct {
	w      io.Writer
	shaper *Shaper
}

// NewShapedWriter wraps w so that writes are paced by shaper.
func NewShapedWriter(w io.Writer, shaper *Shaper) *ShapedWriter {
	return &ShapedWriter{w: w, shaper: shaper}
}

// Write paces p through the shaper before writing it to the underlying
// writer.
func (w *ShapedWriter) Write(p []byte) (int, error) {
	if w.shaper != nil {
		w.shaper.Wait(len(p))
	}
	return w.w.Write(p)
}
