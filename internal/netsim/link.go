// Package netsim models the wide-area and local-area networks used in the
// Visapult field tests.
//
// The paper's campaigns ran over NTON (an OC-12 lambda between LBL and
// SNL-CA), ESnet (a shared OC-12 backbone delivering roughly 100 Mbps to the
// application between LBL and ANL), SciNet (the SC99 show-floor network) and
// gigabit-ethernet LANs. None of those testbeds exist any more, so this
// package substitutes two interchangeable implementations of the same
// behaviour:
//
//   - An analytic/simulated layer (Link, Path, SharedLink) used with the
//     internal/sim virtual clock. SharedLink is a processor-sharing flow
//     model: concurrent transfers split the bandwidth fairly, which is what
//     makes the paper's "adding back-end nodes does not reduce load time once
//     the WAN is saturated" observation come out of the model rather than
//     being baked in.
//
//   - A traffic shaper (Shaper, ShapedConn) that throttles real loopback TCP
//     connections to a configured rate so the live examples and integration
//     tests exercise real sockets with WAN-like bandwidth.
package netsim

import (
	"fmt"
	"time"

	"visapult/internal/stats"
)

// Link describes a point-to-point network segment: a capacity in bits per
// second, a one-way propagation latency, and an MTU. Link is a pure value
// type used for analytic estimates; SharedLink adds contention on a virtual
// clock.
type Link struct {
	Name      string
	Bandwidth float64 // bits per second
	Latency   time.Duration
	MTU       int // bytes per frame on the wire
}

// Standard testbed links from the paper. Bandwidths are the theoretical line
// rates discussed in the text; EffectiveESnet reflects the ~100 Mbps the
// authors measured with iperf on the shared ESnet path.
var (
	// NTON is the OC-12 (622 Mbps) path between LBL and SNL-CA: high
	// bandwidth, low latency (same metropolitan area).
	NTON = Link{Name: "NTON (OC-12)", Bandwidth: 622 * stats.Mega, Latency: 2 * time.Millisecond, MTU: 1500}
	// OC48 is the NTON backbone rate used on the SC99 show floor uplink.
	OC48 = Link{Name: "OC-48", Bandwidth: 2488 * stats.Mega, Latency: 5 * time.Millisecond, MTU: 1500}
	// OC192 is the rate the paper estimates terascale visualization needs.
	OC192 = Link{Name: "OC-192", Bandwidth: 9953 * stats.Mega, Latency: 5 * time.Millisecond, MTU: 1500}
	// ESnet is the shared LBL-ANL path; line rate OC-12 but roughly 100 Mbps
	// available to a single application, with cross-country latency.
	ESnet = Link{Name: "ESnet (shared OC-12)", Bandwidth: 100 * stats.Mega, Latency: 30 * time.Millisecond, MTU: 1500}
	// SciNet is the SC99 show-floor network; the paper attributes the lower
	// 150 Mbps SC99 rate to sharing on this segment.
	SciNet = Link{Name: "SciNet (SC99 floor)", Bandwidth: 350 * stats.Mega, Latency: 12 * time.Millisecond, MTU: 1500}
	// GigE is a local gigabit-ethernet segment (the E4500 and Onyx2 hosts).
	GigE = Link{Name: "Gigabit Ethernet LAN", Bandwidth: 1000 * stats.Mega, Latency: 200 * time.Microsecond, MTU: 1500}
	// GigEJumbo is gigabit ethernet with 9000-byte jumbo frames, which the
	// paper notes reduce interrupt overhead but are problematic over a WAN.
	GigEJumbo = Link{Name: "Gigabit Ethernet (jumbo)", Bandwidth: 1000 * stats.Mega, Latency: 200 * time.Microsecond, MTU: 9000}
)

// TransferTime returns the analytic time to move bytes over the link: one
// latency plus serialization at the link bandwidth. It ignores contention;
// use SharedLink for that.
func (l Link) TransferTime(bytes int64) time.Duration {
	if bytes <= 0 {
		return l.Latency
	}
	return l.Latency + stats.TransferTime(bytes, l.Bandwidth)
}

// Throughput returns the effective application throughput in bits per second
// for a transfer of the given size, accounting for the latency term.
func (l Link) Throughput(bytes int64) float64 {
	d := l.TransferTime(bytes)
	if d <= 0 {
		return 0
	}
	return float64(bytes) * 8 / d.Seconds()
}

// Frames returns how many link-layer frames a transfer of the given size
// requires with this link's MTU.
func (l Link) Frames(bytes int64) int64 {
	if bytes <= 0 {
		return 0
	}
	mtu := int64(l.MTU)
	if mtu <= 0 {
		mtu = 1500
	}
	return (bytes + mtu - 1) / mtu
}

// InterruptCost estimates the CPU time a receiving host spends servicing
// network interrupts for a transfer of the given size, given a per-interrupt
// service cost. The paper's section 4.4.1 attributes part of the cluster's
// loader/renderer contention to NIC interrupt load, and notes that 9 KB jumbo
// frames (versus 1.5 KB) lower it; this helper makes that effect quantitative
// for experiment E11.
func (l Link) InterruptCost(bytes int64, perInterrupt time.Duration) time.Duration {
	return time.Duration(l.Frames(bytes)) * perInterrupt
}

// String implements fmt.Stringer.
func (l Link) String() string {
	return fmt.Sprintf("%s: %s, %v latency, MTU %d", l.Name, stats.HumanRate(l.Bandwidth), l.Latency, l.MTU)
}

// Path is an ordered sequence of links between two endpoints, e.g.
// DPSS@LBL -> NTON -> Oakland POP -> SciNet -> SC99 booth. Its effective
// bandwidth is the bottleneck link and its latency is the sum of the hops.
type Path struct {
	Name  string
	Hops  []Link
	share float64 // fraction of the bottleneck available (0 means 1.0)
}

// NewPath builds a path from hops. An empty hop list yields a zero-latency,
// infinite-bandwidth path, which is never what an experiment wants, so
// callers should pass at least one hop.
func NewPath(name string, hops ...Link) Path {
	return Path{Name: name, Hops: append([]Link(nil), hops...)}
}

// WithShare returns a copy of the path whose bottleneck bandwidth is scaled
// by fraction (0 < fraction <= 1), modelling a segment shared with other
// traffic, such as SciNet during the SC99 exhibit.
func (p Path) WithShare(fraction float64) Path {
	if fraction <= 0 || fraction > 1 {
		fraction = 1
	}
	q := p
	q.share = fraction
	return q
}

// Bandwidth returns the bottleneck bandwidth of the path in bits per second,
// scaled by any configured share fraction.
func (p Path) Bandwidth() float64 {
	if len(p.Hops) == 0 {
		return 0
	}
	min := p.Hops[0].Bandwidth
	for _, h := range p.Hops[1:] {
		if h.Bandwidth < min {
			min = h.Bandwidth
		}
	}
	if p.share > 0 {
		min *= p.share
	}
	return min
}

// Latency returns the end-to-end one-way latency of the path.
func (p Path) Latency() time.Duration {
	var total time.Duration
	for _, h := range p.Hops {
		total += h.Latency
	}
	return total
}

// MTU returns the smallest MTU along the path (1500 if the path is empty).
func (p Path) MTU() int {
	mtu := 0
	for _, h := range p.Hops {
		if h.MTU > 0 && (mtu == 0 || h.MTU < mtu) {
			mtu = h.MTU
		}
	}
	if mtu == 0 {
		mtu = 1500
	}
	return mtu
}

// AsLink collapses the path into a single equivalent Link.
func (p Path) AsLink() Link {
	return Link{Name: p.Name, Bandwidth: p.Bandwidth(), Latency: p.Latency(), MTU: p.MTU()}
}

// TransferTime returns the analytic time to move bytes across the path.
func (p Path) TransferTime(bytes int64) time.Duration {
	return p.AsLink().TransferTime(bytes)
}

// RTT returns the round-trip time of the path.
func (p Path) RTT() time.Duration { return 2 * p.Latency() }

// TCPWindowLimitedThroughput returns the throughput ceiling imposed by a TCP
// window of the given size over this path (window / RTT), in bits per second.
// The paper notes that the first ESnet timestep ran slower "until the TCP
// window fully opened"; experiments use this to model slow-start ramp-up.
func (p Path) TCPWindowLimitedThroughput(windowBytes int) float64 {
	rtt := p.RTT()
	if rtt <= 0 {
		return p.Bandwidth()
	}
	limit := float64(windowBytes) * 8 / rtt.Seconds()
	if bw := p.Bandwidth(); limit > bw {
		return bw
	}
	return limit
}
