package netsim

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"visapult/internal/stats"
)

func TestLinkTransferTime(t *testing.T) {
	// 160 MB over NTON (622 Mbps) should take roughly 2.2 seconds plus
	// latency, which matches the paper's ~3 s observation once protocol
	// overhead and contention are added by higher layers.
	d := NTON.TransferTime(160 * stats.MB)
	if d < 2*time.Second || d > 3*time.Second {
		t.Errorf("160MB over NTON = %v, want ~2.2s", d)
	}
	// Zero bytes costs only latency.
	if got := NTON.TransferTime(0); got != NTON.Latency {
		t.Errorf("zero-byte transfer = %v", got)
	}
}

func TestLinkThroughputBelowCapacity(t *testing.T) {
	// Achieved throughput is always below line rate because of latency.
	thr := ESnet.Throughput(160 * stats.MB)
	if thr >= ESnet.Bandwidth {
		t.Errorf("throughput %v >= capacity %v", thr, ESnet.Bandwidth)
	}
	if thr < 0.9*ESnet.Bandwidth {
		t.Errorf("large transfer should approach capacity, got %v", thr)
	}
}

func TestLinkFrames(t *testing.T) {
	if got := GigE.Frames(1500); got != 1 {
		t.Errorf("1500B = %d frames", got)
	}
	if got := GigE.Frames(1501); got != 2 {
		t.Errorf("1501B = %d frames", got)
	}
	if got := GigE.Frames(0); got != 0 {
		t.Errorf("0B = %d frames", got)
	}
	// Jumbo frames need ~6x fewer frames.
	std := GigE.Frames(9000 * 1000)
	jumbo := GigEJumbo.Frames(9000 * 1000)
	if std < 5*jumbo {
		t.Errorf("jumbo frames should cut frame count ~6x: std=%d jumbo=%d", std, jumbo)
	}
}

func TestLinkFramesDefaultMTU(t *testing.T) {
	l := Link{Bandwidth: 1e9}
	if got := l.Frames(3000); got != 2 {
		t.Errorf("frames with default MTU = %d", got)
	}
}

func TestInterruptCostJumboVsStandard(t *testing.T) {
	per := 10 * time.Microsecond
	std := GigE.InterruptCost(160*stats.MB, per)
	jumbo := GigEJumbo.InterruptCost(160*stats.MB, per)
	if jumbo >= std {
		t.Errorf("jumbo interrupt cost %v should be less than standard %v", jumbo, std)
	}
	ratio := float64(std) / float64(jumbo)
	if ratio < 5.5 || ratio > 6.5 {
		t.Errorf("interrupt cost ratio = %v, want ~6 (9000/1500)", ratio)
	}
}

func TestLinkString(t *testing.T) {
	s := NTON.String()
	if !strings.Contains(s, "622.00 Mbps") || !strings.Contains(s, "NTON") {
		t.Errorf("link string = %q", s)
	}
}

func TestPathBottleneck(t *testing.T) {
	// LBL -> NTON -> OC-48 -> SciNet: bottleneck is SciNet.
	p := NewPath("LBL to SC99 floor", GigE, NTON, OC48, SciNet)
	if p.Bandwidth() != SciNet.Bandwidth {
		t.Errorf("bottleneck = %v, want %v", p.Bandwidth(), SciNet.Bandwidth)
	}
	wantLat := GigE.Latency + NTON.Latency + OC48.Latency + SciNet.Latency
	if p.Latency() != wantLat {
		t.Errorf("latency = %v, want %v", p.Latency(), wantLat)
	}
	if p.MTU() != 1500 {
		t.Errorf("MTU = %d", p.MTU())
	}
	if p.RTT() != 2*wantLat {
		t.Errorf("RTT = %v", p.RTT())
	}
}

func TestPathWithShare(t *testing.T) {
	p := NewPath("shared", SciNet).WithShare(0.5)
	if got := p.Bandwidth(); got != SciNet.Bandwidth/2 {
		t.Errorf("shared bandwidth = %v", got)
	}
	// Invalid shares are ignored.
	if got := NewPath("x", SciNet).WithShare(0).Bandwidth(); got != SciNet.Bandwidth {
		t.Errorf("share 0 should be ignored, got %v", got)
	}
	if got := NewPath("x", SciNet).WithShare(2).Bandwidth(); got != SciNet.Bandwidth {
		t.Errorf("share 2 should be ignored, got %v", got)
	}
}

func TestPathEmpty(t *testing.T) {
	p := NewPath("empty")
	if p.Bandwidth() != 0 {
		t.Errorf("empty path bandwidth = %v", p.Bandwidth())
	}
	if p.MTU() != 1500 {
		t.Errorf("empty path MTU = %d", p.MTU())
	}
}

func TestPathAsLinkConsistent(t *testing.T) {
	p := NewPath("LBL-ANL", GigE, ESnet)
	l := p.AsLink()
	if l.Bandwidth != p.Bandwidth() || l.Latency != p.Latency() {
		t.Errorf("AsLink mismatch: %+v vs path", l)
	}
	if p.TransferTime(stats.MB) != l.TransferTime(stats.MB) {
		t.Error("TransferTime should agree between Path and AsLink")
	}
}

func TestTCPWindowLimitedThroughput(t *testing.T) {
	p := NewPath("LBL-ANL", ESnet)
	// A tiny 64 KB window over a 60 ms RTT cannot fill 100 Mbps.
	limited := p.TCPWindowLimitedThroughput(64 << 10)
	if limited >= p.Bandwidth() {
		t.Errorf("64KB window should limit throughput below capacity, got %v", limited)
	}
	// A huge window is capped at the path bandwidth.
	if got := p.TCPWindowLimitedThroughput(64 << 20); got != p.Bandwidth() {
		t.Errorf("large window should be capped at bandwidth, got %v", got)
	}
	// Zero RTT path returns bandwidth.
	zero := NewPath("zero", Link{Bandwidth: 1e9})
	if zero.TCPWindowLimitedThroughput(1) != 1e9 {
		t.Error("zero-RTT path should return bandwidth")
	}
}

func TestTransferTimeMonotonicProperty(t *testing.T) {
	f := func(a, b uint32) bool {
		x, y := int64(a), int64(b)
		if x > y {
			x, y = y, x
		}
		return NTON.TransferTime(x) <= NTON.TransferTime(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestThroughputNeverExceedsCapacityProperty(t *testing.T) {
	f := func(b uint32) bool {
		thr := ESnet.Throughput(int64(b))
		return thr <= ESnet.Bandwidth*(1+1e-9) && !math.IsNaN(thr)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
