package netsim

import (
	"bytes"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"visapult/internal/stats"
)

func TestShaperUnlimited(t *testing.T) {
	s := NewShaper(0, 0)
	start := time.Now()
	for i := 0; i < 100; i++ {
		s.Wait(1 << 20)
	}
	if time.Since(start) > 100*time.Millisecond {
		t.Error("unlimited shaper should not block")
	}
	if s.Rate() != 0 {
		t.Errorf("rate = %v", s.Rate())
	}
}

func TestShaperApproximatesRate(t *testing.T) {
	// 10 MB/s shaper, move 2 MB => should take roughly 0.2s (allow slack for
	// the initial burst and scheduler noise).
	s := NewShaper(10*stats.MB, 64<<10)
	start := time.Now()
	total := 0
	for total < 2*stats.MB {
		s.Wait(32 << 10)
		total += 32 << 10
	}
	elapsed := time.Since(start)
	if elapsed < 100*time.Millisecond || elapsed > 600*time.Millisecond {
		t.Errorf("2MB at 10MB/s took %v, want ~200ms", elapsed)
	}
}

func TestShaperSetRate(t *testing.T) {
	s := NewShaper(1*stats.MB, 32<<10)
	s.SetRate(0)
	start := time.Now()
	s.Wait(10 * stats.MB)
	if time.Since(start) > 50*time.Millisecond {
		t.Error("rate change to unlimited should take effect")
	}
	s.SetRate(5 * stats.MB)
	if s.Rate() != 5*stats.MB {
		t.Errorf("rate = %v", s.Rate())
	}
}

func TestShaperForLink(t *testing.T) {
	s := ShaperForLink(ESnet)
	wantBytesPerSec := ESnet.Bandwidth / 8
	if s.Rate() != wantBytesPerSec {
		t.Errorf("rate = %v, want %v", s.Rate(), wantBytesPerSec)
	}
}

func TestShaperSharedAcrossWriters(t *testing.T) {
	// Two writers sharing one shaper should jointly respect the rate.
	s := NewShaper(20*stats.MB, 64<<10)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			moved := 0
			for moved < 2*stats.MB {
				s.Wait(64 << 10)
				moved += 64 << 10
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	// 4 MB total at 20 MB/s is 200 ms.
	if elapsed < 100*time.Millisecond || elapsed > 700*time.Millisecond {
		t.Errorf("4MB at 20MB/s (2 writers) took %v", elapsed)
	}
}

func TestShapedWriterDeliversAllBytes(t *testing.T) {
	var buf bytes.Buffer
	w := NewShapedWriter(&buf, NewShaper(50*stats.MB, 64<<10))
	payload := bytes.Repeat([]byte{0xAB}, 256<<10)
	n, err := w.Write(payload)
	if err != nil || n != len(payload) {
		t.Fatalf("write = %d, %v", n, err)
	}
	if !bytes.Equal(buf.Bytes(), payload) {
		t.Error("payload corrupted by shaper")
	}
}

func TestShapedWriterNilShaper(t *testing.T) {
	var buf bytes.Buffer
	w := NewShapedWriter(&buf, nil)
	if _, err := w.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "hello" {
		t.Errorf("got %q", buf.String())
	}
}

func TestShapedConnEndToEnd(t *testing.T) {
	// Real loopback TCP connection, shaped to ~8 MB/s; move 1 MB and verify
	// both integrity and that the transfer is not instantaneous.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	const payloadSize = 1 << 20
	payload := make([]byte, payloadSize)
	for i := range payload {
		payload[i] = byte(i * 31)
	}

	errCh := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			errCh <- err
			return
		}
		defer conn.Close()
		shaped := NewShapedConn(conn, NewShaper(8*stats.MB, 128<<10), 0)
		_, err = shaped.Write(payload)
		errCh <- err
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	start := time.Now()
	got, err := io.ReadAll(io.LimitReader(conn, payloadSize))
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if werr := <-errCh; werr != nil {
		t.Fatal(werr)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload corrupted over shaped connection")
	}
	// 1 MB at 8 MB/s is 125 ms; accept a broad window but reject "instant".
	if elapsed < 50*time.Millisecond {
		t.Errorf("shaped transfer finished suspiciously fast: %v", elapsed)
	}
	rate := stats.MBps(payloadSize, elapsed)
	if rate > 24 {
		t.Errorf("achieved %v MB/s, want shaped to ~8 MB/s", rate)
	}
}

func TestShapedConnUnshapedPassthrough(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		shaped := NewShapedConn(conn, nil, 0)
		shaped.Write([]byte("passthrough"))
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	got, err := io.ReadAll(io.LimitReader(conn, 11))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "passthrough" {
		t.Errorf("got %q", got)
	}
}
