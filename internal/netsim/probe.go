package netsim

import (
	"time"

	"visapult/internal/sim"
	"visapult/internal/stats"
)

// ProbeResult is the outcome of an iperf-style bandwidth measurement over a
// simulated link. The paper calibrates its expectations for the ESnet path
// with iperf ("delivers an average bandwidth of approximately 100 Mbps as
// measured with commonly available network tools, such as iperf") and then
// observes that Visapult's parallel loads slightly exceed that single-stream
// figure; the probe lets experiments reproduce that comparison.
type ProbeResult struct {
	Streams   int
	Bytes     int64
	Elapsed   time.Duration
	Mbps      float64
	PerStream []float64 // per-stream achieved Mbps
}

// Iperf measures the throughput of a shared link using the given number of
// parallel streams, each transferring bytesPerStream. It runs on its own
// kernel, so it can be called standalone.
func Iperf(link Link, streams int, bytesPerStream int64) ProbeResult {
	if streams < 1 {
		streams = 1
	}
	k := sim.NewKernel()
	shared := NewSharedLink(k, link)
	res := ProbeResult{Streams: streams, PerStream: make([]float64, streams)}
	for i := 0; i < streams; i++ {
		i := i
		k.Spawn("iperf-stream", func(p *sim.Proc) {
			d := shared.Transfer(p, bytesPerStream)
			res.PerStream[i] = stats.Mbps(bytesPerStream, d)
		})
	}
	end := k.Run()
	res.Bytes = int64(streams) * bytesPerStream
	res.Elapsed = end
	res.Mbps = stats.Mbps(res.Bytes, end)
	return res
}

// SlowStartModel approximates TCP slow-start ramp-up for the first transfer
// over a long-latency path: the effective throughput of the first
// windowGrowthRTTs round trips is halved. The paper observes that the first
// ESnet timestep loads slowly "until the TCP window fully opened"; the
// back-end simulation uses this to reproduce that first-frame penalty.
type SlowStartModel struct {
	Path             Path
	WindowGrowthRTTs int
}

// FirstTransferPenalty returns extra time to add to the first transfer of a
// session over the path.
func (m SlowStartModel) FirstTransferPenalty() time.Duration {
	rtts := m.WindowGrowthRTTs
	if rtts <= 0 {
		rtts = 10
	}
	return time.Duration(rtts) * m.Path.RTT()
}
