package netsim

import (
	"testing"
	"time"

	"visapult/internal/sim"
	"visapult/internal/stats"
)

func TestSharedLinkSingleTransferMatchesAnalytic(t *testing.T) {
	k := sim.NewKernel()
	s := NewSharedLink(k, NTON)
	var elapsed time.Duration
	k.Spawn("xfer", func(p *sim.Proc) {
		elapsed = s.Transfer(p, 160*stats.MB)
	})
	k.Run()
	want := NTON.TransferTime(160 * stats.MB)
	diff := elapsed - want
	if diff < 0 {
		diff = -diff
	}
	if diff > 10*time.Millisecond {
		t.Errorf("shared-link single transfer %v, analytic %v", elapsed, want)
	}
}

func TestSharedLinkFairSharing(t *testing.T) {
	// Two equal transfers starting together should each take ~2x the solo
	// time, and the link should finish both at the same moment.
	k := sim.NewKernel()
	s := NewSharedLink(k, GigE)
	const bytes = 50 * stats.MB
	var d1, d2 time.Duration
	k.Spawn("a", func(p *sim.Proc) { d1 = s.Transfer(p, bytes) })
	k.Spawn("b", func(p *sim.Proc) { d2 = s.Transfer(p, bytes) })
	k.Run()
	solo := GigE.TransferTime(bytes)
	if d1 < 2*solo-50*time.Millisecond || d1 > 2*solo+50*time.Millisecond {
		t.Errorf("shared transfer a = %v, want ~%v", d1, 2*solo)
	}
	diff := d1 - d2
	if diff < 0 {
		diff = -diff
	}
	if diff > 10*time.Millisecond {
		t.Errorf("equal flows should finish together: %v vs %v", d1, d2)
	}
}

func TestSharedLinkAggregateSaturation(t *testing.T) {
	// This is the paper's Figure 14 observation: with the WAN saturated,
	// doubling the number of parallel readers does not reduce the total time
	// to move a fixed amount of data.
	timeFor := func(readers int) time.Duration {
		k := sim.NewKernel()
		s := NewSharedLink(k, NTON)
		total := int64(160 * stats.MB)
		per := total / int64(readers)
		for i := 0; i < readers; i++ {
			k.Spawn("pe", func(p *sim.Proc) { s.Transfer(p, per) })
		}
		return k.Run()
	}
	t4 := timeFor(4)
	t8 := timeFor(8)
	ratio := float64(t8) / float64(t4)
	if ratio < 0.95 || ratio > 1.05 {
		t.Errorf("saturated link: 8 readers %v vs 4 readers %v (ratio %.3f), want ~equal", t8, t4, ratio)
	}
}

func TestSharedLinkLateJoiner(t *testing.T) {
	// Flow B joins halfway through flow A; A slows down after B joins.
	k := sim.NewKernel()
	link := Link{Name: "test", Bandwidth: 80 * stats.Mega, Latency: 0} // 10 decimal MB/s
	s := NewSharedLink(k, link)
	const xfer = 20 * 1000 * 1000 // 20 decimal MB: 2 s alone at this rate
	var aDone, bDone time.Duration
	k.Spawn("a", func(p *sim.Proc) {
		s.Transfer(p, xfer)
		aDone = p.Now()
	})
	k.Spawn("b", func(p *sim.Proc) {
		p.Sleep(time.Second)
		s.Transfer(p, xfer)
		bDone = p.Now()
	})
	k.Run()
	// A: 1s alone (10MB done), then shares; 10MB left at 5MB/s => 2 more s => ~3s.
	if aDone < 2900*time.Millisecond || aDone > 3100*time.Millisecond {
		t.Errorf("flow A finished at %v, want ~3s", aDone)
	}
	// B: starts at 1s with 20MB; shares until 3s (10MB done), then alone 10MB at 10MB/s => ~4s.
	if bDone < 3900*time.Millisecond || bDone > 4100*time.Millisecond {
		t.Errorf("flow B finished at %v, want ~4s", bDone)
	}
}

func TestSharedLinkZeroBytes(t *testing.T) {
	k := sim.NewKernel()
	s := NewSharedLink(k, NTON)
	var d time.Duration
	k.Spawn("z", func(p *sim.Proc) { d = s.Transfer(p, 0) })
	k.Run()
	if d != NTON.Latency {
		t.Errorf("zero-byte transfer = %v, want latency only", d)
	}
	if s.Stats().Transfers != 0 {
		t.Error("zero-byte transfer should not count")
	}
}

func TestSharedLinkStats(t *testing.T) {
	k := sim.NewKernel()
	s := NewSharedLink(k, NTON)
	for i := 0; i < 4; i++ {
		k.Spawn("pe", func(p *sim.Proc) { s.Transfer(p, 10*stats.MB) })
	}
	k.Run()
	st := s.Stats()
	if st.TotalBytes != 40*stats.MB {
		t.Errorf("total bytes = %d", st.TotalBytes)
	}
	if st.Transfers != 4 {
		t.Errorf("transfers = %d", st.Transfers)
	}
	if st.PeakConcurrent != 4 {
		t.Errorf("peak concurrency = %d", st.PeakConcurrent)
	}
	// Link should have been close to fully utilized while busy.
	if st.UtilizationOfCapacity < 0.95 || st.UtilizationOfCapacity > 1.0+1e-9 {
		t.Errorf("utilization = %v", st.UtilizationOfCapacity)
	}
	if s.ActiveFlows() != 0 {
		t.Errorf("active flows after run = %d", s.ActiveFlows())
	}
	if s.Link().Name != NTON.Name {
		t.Error("Link() accessor mismatch")
	}
	if s.Kernel() != k {
		t.Error("Kernel() accessor mismatch")
	}
}

func TestSharedLinkTransferAsync(t *testing.T) {
	k := sim.NewKernel()
	link := Link{Name: "t", Bandwidth: 80 * stats.Mega}
	s := NewSharedLink(k, link)
	var doneAt time.Duration
	k.Spawn("waiter", func(p *sim.Proc) {
		ev := s.TransferAsync(10 * 1000 * 1000) // 1 second at 10 decimal MB/s
		p.Wait(ev)
		doneAt = p.Now()
	})
	k.Run()
	if doneAt < 950*time.Millisecond || doneAt > 1050*time.Millisecond {
		t.Errorf("async transfer completed at %v, want ~1s", doneAt)
	}
	// Zero-byte async transfer completes immediately.
	ev := s.TransferAsync(0)
	if !ev.Signaled() {
		t.Error("zero-byte async transfer should complete immediately")
	}
}

func TestIperfSingleVsParallelStreams(t *testing.T) {
	single := Iperf(ESnet, 1, 64*stats.MB)
	multi := Iperf(ESnet, 8, 8*stats.MB)
	// Both should be near (just under) the 100 Mbps capacity.
	if single.Mbps < 90 || single.Mbps > 100.5 {
		t.Errorf("single-stream iperf = %.1f Mbps", single.Mbps)
	}
	if multi.Mbps < 90 || multi.Mbps > 100.5 {
		t.Errorf("8-stream iperf = %.1f Mbps", multi.Mbps)
	}
	if multi.Streams != 8 || len(multi.PerStream) != 8 {
		t.Errorf("stream bookkeeping wrong: %+v", multi)
	}
	if multi.Bytes != 64*stats.MB {
		t.Errorf("bytes = %d", multi.Bytes)
	}
	// Per-stream rates should each be roughly capacity/streams.
	for _, r := range multi.PerStream {
		if r < 9 || r > 14 {
			t.Errorf("per-stream rate = %.1f Mbps, want ~12.5", r)
		}
	}
}

func TestIperfClampsStreams(t *testing.T) {
	r := Iperf(GigE, 0, stats.MB)
	if r.Streams != 1 {
		t.Errorf("streams = %d", r.Streams)
	}
}

func TestSlowStartModel(t *testing.T) {
	m := SlowStartModel{Path: NewPath("LBL-ANL", ESnet), WindowGrowthRTTs: 10}
	pen := m.FirstTransferPenalty()
	if pen != 10*NewPath("LBL-ANL", ESnet).RTT() {
		t.Errorf("penalty = %v", pen)
	}
	// Default RTT count when unset.
	m2 := SlowStartModel{Path: NewPath("LBL-ANL", ESnet)}
	if m2.FirstTransferPenalty() <= 0 {
		t.Error("default penalty should be positive")
	}
}
