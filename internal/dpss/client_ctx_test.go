package dpss

import (
	"context"
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"
)

// stalledBlockServer is a fake DPSS block server that accepts connections and
// reads requests but, while stalled, never replies — the shape of a wedged or
// partitioned server that used to pin a back-end PE until the next frame
// boundary. Unstalled, it serves zero-filled blocks of the advertised size.
type stalledBlockServer struct {
	l       net.Listener
	stalled atomic.Bool
	block   []byte
}

func newStalledBlockServer(t *testing.T, blockSize int) *stalledBlockServer {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	s := &stalledBlockServer{l: l, block: make([]byte, blockSize)}
	s.stalled.Store(true)
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go s.serve(conn)
		}
	}()
	return s
}

func (s *stalledBlockServer) serve(conn net.Conn) {
	defer conn.Close()
	for {
		if _, _, err := readFrame(conn); err != nil {
			return
		}
		if s.stalled.Load() {
			// Swallow the request: the client's read blocks until its
			// context poisons the connection.
			continue
		}
		if err := writeFrame(conn, msgOK, s.block); err != nil {
			return
		}
	}
}

// TestReadAtContextCancelsStalledRead is the regression test for the
// context-aware DPSS read path: a cancelled context must abort a block read
// that is blocked on a stalled server immediately, not wait for the server to
// come back, and the poisoned connection must not be reused afterwards.
func TestReadAtContextCancelsStalledRead(t *testing.T) {
	const blockSize = 1024
	srv := newStalledBlockServer(t, blockSize)

	client := NewClient("127.0.0.1:1") // the master is never contacted
	defer client.Close()
	f := &File{client: client, info: DatasetInfo{
		Name: "stalled.t0000", Size: 4 * blockSize, BlockSize: blockSize,
		Servers: []string{srv.l.Addr().String()},
	}}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()

	buf := make([]byte, blockSize)
	start := time.Now()
	done := make(chan error, 1)
	go func() {
		_, err := f.ReadAtContext(ctx, buf, 0)
		done <- err
	}()
	var err error
	select {
	case err = <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("ReadAtContext did not return after cancellation: the in-flight block read was not aborted")
	}
	if err == nil {
		t.Fatal("ReadAtContext returned nil error against a stalled server")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ReadAtContext error = %v, want a context.Canceled cause", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("cancellation took %v, want prompt abort", elapsed)
	}

	// The aborted exchange left its connection mid-frame; it must have been
	// discarded. Once the server behaves, a fresh read must succeed on a
	// newly dialed connection instead of failing on the poisoned one.
	srv.stalled.Store(false)
	if _, err := f.ReadAtContext(context.Background(), buf, 0); err != nil {
		t.Fatalf("read after recovery: %v (poisoned connection reused?)", err)
	}
}

// TestReadAtContextPreCancelled: an already-cancelled context fails fast
// without touching the network.
func TestReadAtContextPreCancelled(t *testing.T) {
	srv := newStalledBlockServer(t, 64)
	client := NewClient("127.0.0.1:1")
	defer client.Close()
	f := &File{client: client, info: DatasetInfo{
		Name: "pre.t0000", Size: 64, BlockSize: 64,
		Servers: []string{srv.l.Addr().String()},
	}}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := f.ReadAtContext(ctx, make([]byte, 64), 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled read error = %v, want context.Canceled", err)
	}
}
