// Package dpss reimplements the Distributed Parallel Storage System the
// paper uses as its wide-area network data cache (section 3.5 and [1]).
//
// The DPSS is a block server: datasets too large for local disks are staged
// into the cache, and applications read arbitrary logical blocks over the
// network through a Unix-like client API (dpssOpen / dpssRead / dpssLSeek /
// dpssClose). Parallelism exists at three levels, all reproduced here:
//
//   - disk level: each block server stripes its blocks over several disks;
//   - server level: a dataset's logical blocks are striped round-robin over
//     all block servers, so a single client read fans out to every server;
//   - network level: the client library keeps one connection (and one
//     goroutine) per server, so transfers proceed in parallel, which is the
//     property the Visapult back end's parallel data loading exploits.
//
// A Master keeps the dataset catalog (logical-to-physical block mapping,
// access control, load balancing across servers); BlockServers store and
// serve the blocks; Client implements the application API. All components
// speak a small length-prefixed binary protocol over TCP and can be shaped
// with netsim to emulate WAN conditions.
package dpss

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// DefaultBlockSize is the logical block size used when a dataset does not
// specify one (64 KiB, the same order as the original DPSS).
const DefaultBlockSize = 64 << 10

// Message types exchanged between clients, the master and block servers.
const (
	// Client -> master.
	msgOpen     = byte(1) // open a dataset: payload = dataset name
	msgCreate   = byte(2) // create a dataset: payload = name + size + block size
	msgStat     = byte(3) // dataset metadata request
	msgRegister = byte(4) // block server announces itself: payload = its address
	msgList     = byte(5) // catalog listing: response = count + dataset names
	msgRemove   = byte(6) // drop a dataset from the catalog: payload = name (idempotent)

	// Client/loader -> block server.
	msgReadBlock   = byte(10) // payload = dataset name + logical block id
	msgWriteBlock  = byte(11) // payload = dataset name + logical block id + data
	msgDropDataset = byte(13) // evict a dataset's blocks: payload = dataset name; response = evicted count
	// (12 is msgReadBlockZ, the compressed read; see compress.go.)

	// Responses.
	msgOK    = byte(20)
	msgError = byte(21)
)

// Protocol errors.
var (
	ErrUnknownDataset = errors.New("dpss: unknown dataset")
	ErrDatasetExists  = errors.New("dpss: dataset already exists")
	ErrUnknownBlock   = errors.New("dpss: unknown block")
	ErrAccessDenied   = errors.New("dpss: access denied")
	ErrProtocol       = errors.New("dpss: protocol error")
)

// maxFrame bounds a single protocol frame (1 GiB) to protect against
// corrupted length prefixes.
const maxFrame = 1 << 30

// writeFrame writes a [type][len][payload] frame.
func writeFrame(w io.Writer, msgType byte, payload []byte) error {
	hdr := make([]byte, 5)
	hdr[0] = msgType
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// readFrame reads one [type][len][payload] frame.
func readFrame(r io.Reader) (msgType byte, payload []byte, err error) {
	hdr := make([]byte, 5)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > maxFrame {
		return 0, nil, fmt.Errorf("%w: frame of %d bytes", ErrProtocol, n)
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[0], payload, nil
}

// encoder/decoder helpers for composite payloads.

type encoder struct{ buf []byte }

func (e *encoder) str(s string) *encoder {
	var l [4]byte
	binary.BigEndian.PutUint32(l[:], uint32(len(s)))
	e.buf = append(e.buf, l[:]...)
	e.buf = append(e.buf, s...)
	return e
}

func (e *encoder) u64(v uint64) *encoder {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	e.buf = append(e.buf, b[:]...)
	return e
}

func (e *encoder) u32(v uint32) *encoder {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	e.buf = append(e.buf, b[:]...)
	return e
}

func (e *encoder) bytes(p []byte) *encoder {
	e.u32(uint32(len(p)))
	e.buf = append(e.buf, p...)
	return e
}

type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) str() string {
	n := d.u32()
	if d.err != nil {
		return ""
	}
	if d.off+int(n) > len(d.buf) {
		d.err = ErrProtocol
		return ""
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

func (d *decoder) u64() uint64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.buf) {
		d.err = ErrProtocol
		return 0
	}
	v := binary.BigEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

func (d *decoder) u32() uint32 {
	if d.err != nil {
		return 0
	}
	if d.off+4 > len(d.buf) {
		d.err = ErrProtocol
		return 0
	}
	v := binary.BigEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}

func (d *decoder) bytes() []byte {
	n := d.u32()
	if d.err != nil {
		return nil
	}
	if d.off+int(n) > len(d.buf) {
		d.err = ErrProtocol
		return nil
	}
	p := d.buf[d.off : d.off+int(n)]
	d.off += int(n)
	return p
}

// DatasetInfo is the catalog entry the master returns on open/stat.
type DatasetInfo struct {
	Name      string
	Size      int64
	BlockSize int
	// Servers lists the block-server addresses, in stripe order: logical
	// block i lives on Servers[i % len(Servers)].
	Servers []string
}

// NumBlocks returns the number of logical blocks in the dataset.
func (d DatasetInfo) NumBlocks() int64 {
	if d.BlockSize <= 0 {
		return 0
	}
	return (d.Size + int64(d.BlockSize) - 1) / int64(d.BlockSize)
}

// ServerFor returns the block server address that stores logical block id.
func (d DatasetInfo) ServerFor(block int64) string {
	if len(d.Servers) == 0 {
		return ""
	}
	return d.Servers[int(block%int64(len(d.Servers)))]
}

// BlockLen returns the length of logical block id (the last block may be
// short).
func (d DatasetInfo) BlockLen(block int64) int {
	if block < 0 || block >= d.NumBlocks() {
		return 0
	}
	start := block * int64(d.BlockSize)
	remain := d.Size - start
	if remain >= int64(d.BlockSize) {
		return d.BlockSize
	}
	return int(remain)
}

func encodeDatasetInfo(info DatasetInfo) []byte {
	e := &encoder{}
	e.str(info.Name).u64(uint64(info.Size)).u32(uint32(info.BlockSize)).u32(uint32(len(info.Servers)))
	for _, s := range info.Servers {
		e.str(s)
	}
	return e.buf
}

func decodeDatasetInfo(p []byte) (DatasetInfo, error) {
	d := &decoder{buf: p}
	info := DatasetInfo{
		Name:      d.str(),
		Size:      int64(d.u64()),
		BlockSize: int(d.u32()),
	}
	n := int(d.u32())
	for i := 0; i < n && d.err == nil; i++ {
		info.Servers = append(info.Servers, d.str())
	}
	if d.err != nil {
		return DatasetInfo{}, d.err
	}
	return info, nil
}
