package dpss

import (
	"bytes"
	"compress/flate"
	"context"
	"fmt"
	"io"
	"net"

	"visapult/internal/netlogger"
)

// Wire-level compression is the first of the paper's proposed DPSS
// extensions (section 5): "'wire level' compression would benefit a wide
// array of applications ... and under application control". It is implemented
// here as an optional, client-driven request type: a client configured with
// WithClientCompression asks the block servers to DEFLATE each block before
// it crosses the network and inflates it on arrival. The application controls
// the trade-off by choosing the compression level (or leaving it off), and
// the client's statistics expose the achieved on-the-wire reduction so a
// session can adapt the level to the network path.
//
// Lossy compression (the paper's other suggestion) is intentionally not
// implemented at the block layer: blocks are opaque bytes here, and lossy
// schemes only make sense with knowledge of the voxel encoding, which lives
// above the cache.

// Compressed-read protocol messages (extensions of the base protocol).
const (
	// msgReadBlockZ requests one block compressed with DEFLATE; the payload
	// is dataset name, logical block id, and the requested compression level.
	msgReadBlockZ = byte(12)
)

// WithClientCompression makes the client request DEFLATE-compressed blocks at
// the given level (1 = fastest, 9 = smallest; flate.DefaultCompression for a
// balanced setting). A level of zero or less disables compression.
func WithClientCompression(level int) ClientOption {
	return func(c *Client) {
		if level > 9 {
			level = 9
		}
		c.compress = level
	}
}

// readBlockCompressed fetches one block through the compressed-read path and
// inflates it.
func (c *Client) readBlockCompressed(ctx context.Context, info DatasetInfo, block int64) ([]byte, error) {
	e := &encoder{}
	e.str(info.Name).u64(uint64(block)).u32(uint32(c.compress))
	wire, err := c.exchange(ctx, info.ServerFor(block), msgReadBlockZ, e.buf)
	if err != nil {
		return nil, err
	}
	fr := flate.NewReader(bytes.NewReader(wire))
	data, err := io.ReadAll(fr)
	if err != nil {
		return nil, fmt.Errorf("dpss: inflating block %d of %s: %w", block, info.Name, err)
	}
	if err := fr.Close(); err != nil {
		return nil, fmt.Errorf("dpss: inflating block %d of %s: %w", block, info.Name, err)
	}
	c.mu.Lock()
	c.bytesRead += int64(len(data))
	c.compressedRaw += int64(len(data))
	c.wireBytes += int64(len(wire))
	c.reads++
	c.compressedReads++
	c.mu.Unlock()
	return data, nil
}

// handleReadCompressed serves a msgReadBlockZ request: the block is read from
// the owning disk, DEFLATE-compressed at the client-requested level, and sent.
func (s *BlockServer) handleReadCompressed(out net.Conn, payload []byte) {
	d := &decoder{buf: payload}
	dataset := d.str()
	block := int64(d.u64())
	level := int(d.u32())
	if d.err != nil {
		s.replyError(out, d.err)
		return
	}
	if level < 1 || level > 9 {
		level = flate.DefaultCompression
	}
	data, err := s.diskFor(block).ReadBlock(dataset, block)
	if err != nil {
		s.replyError(out, err)
		return
	}
	var buf bytes.Buffer
	fw, err := flate.NewWriter(&buf, level)
	if err != nil {
		s.replyError(out, fmt.Errorf("dpss: compressing block: %w", err))
		return
	}
	if _, err := fw.Write(data); err != nil {
		s.replyError(out, fmt.Errorf("dpss: compressing block: %w", err))
		return
	}
	if err := fw.Close(); err != nil {
		s.replyError(out, fmt.Errorf("dpss: compressing block: %w", err))
		return
	}
	if s.logger != nil {
		s.logger.Log("DPSS_BLOCK_READ_Z", netlogger.Str("DATASET", dataset),
			netlogger.Int64("BLOCK", block),
			netlogger.Int64(netlogger.FieldBytes, int64(buf.Len())),
			netlogger.Int64("RAW_BYTES", int64(len(data))))
	}
	s.mu.Lock()
	s.served += int64(buf.Len())
	s.mu.Unlock()
	reply(out, msgOK, buf.Bytes())
}

// CompressionRatio returns raw bytes delivered over bytes that crossed the
// wire for this client's compressed reads (1.0 when compression is off or
// nothing compressed yet).
func (c *Client) CompressionRatio() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.wireBytes == 0 || c.compressedReads == 0 {
		return 1
	}
	return float64(c.compressedRaw) / float64(c.wireBytes)
}
