package dpss

import (
	"bytes"
	"compress/flate"
	"testing"

	"visapult/internal/volume"
)

// startCompressTestCluster launches a small cluster and registers cleanup.
func startCompressTestCluster(t *testing.T) *Cluster {
	t.Helper()
	cluster, err := StartCluster(ClusterConfig{Servers: 2, DisksPerServer: 2})
	if err != nil {
		t.Fatalf("start cluster: %v", err)
	}
	t.Cleanup(func() { cluster.Close() })
	return cluster
}

// compressibleData returns data with enough structure for DEFLATE to bite: a
// volume that, like early-time combustion data, is mostly empty space with a
// small active region. (Fully-developed noise-like float fields barely
// compress losslessly, which is exactly why the paper leaves the degree of
// compression "under application control".)
func compressibleData(t *testing.T) []byte {
	t.Helper()
	v := volume.MustNew(32, 16, 16)
	for z := 4; z < 8; z++ {
		for y := 4; y < 8; y++ {
			for x := 8; x < 16; x++ {
				v.Set(x, y, z, float32(x+y+z)/64)
			}
		}
	}
	return v.Marshal()
}

func TestCompressedReadRoundTrip(t *testing.T) {
	cluster := startCompressTestCluster(t)
	loader := cluster.NewClient()
	data := compressibleData(t)
	if _, err := cluster.LoadBytes(loader, "zround", data, 8<<10); err != nil {
		t.Fatal(err)
	}
	loader.Close()

	client := cluster.NewClient(WithClientCompression(flate.BestSpeed))
	defer client.Close()
	f, err := client.Open("zround")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatalf("compressed read: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("compressed read corrupted the data")
	}
	st := client.Stats()
	if st.CompressedReads == 0 {
		t.Fatal("no reads used the compressed path")
	}
	if st.WireBytes >= st.BytesRead {
		t.Fatalf("compression did not shrink the wire traffic: %d wire vs %d raw", st.WireBytes, st.BytesRead)
	}
	if ratio := client.CompressionRatio(); ratio <= 1.05 {
		t.Fatalf("compression ratio %.2f too small for structured volume data", ratio)
	}
}

func TestCompressedAndPlainClientsCoexist(t *testing.T) {
	cluster := startCompressTestCluster(t)
	loader := cluster.NewClient()
	data := compressibleData(t)
	if _, err := cluster.LoadBytes(loader, "zmixed", data, 8<<10); err != nil {
		t.Fatal(err)
	}
	loader.Close()

	plain := cluster.NewClient()
	defer plain.Close()
	zipped := cluster.NewClient(WithClientCompression(6))
	defer zipped.Close()

	for _, c := range []*Client{plain, zipped} {
		f, err := c.Open("zmixed")
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, len(data))
		if _, err := f.ReadAt(got, 0); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("data mismatch")
		}
	}
	if plain.Stats().CompressedReads != 0 {
		t.Fatal("plain client must not use the compressed path")
	}
	if plain.CompressionRatio() != 1 {
		t.Fatal("plain client should report a unit compression ratio")
	}
	if zipped.Stats().CompressedReads == 0 {
		t.Fatal("compressed client never used the compressed path")
	}
}

func TestCompressionLevelIsClamped(t *testing.T) {
	cluster := startCompressTestCluster(t)
	loader := cluster.NewClient()
	data := compressibleData(t)
	if _, err := cluster.LoadBytes(loader, "zclamp", data, 8<<10); err != nil {
		t.Fatal(err)
	}
	loader.Close()

	// A level above 9 is clamped client-side; a bogus level inside the
	// request is clamped server-side. Both paths must still round-trip.
	client := cluster.NewClient(WithClientCompression(99))
	defer client.Close()
	f, err := client.Open("zclamp")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("clamped-level read corrupted the data")
	}
}

func TestCompressedReadUnknownDataset(t *testing.T) {
	cluster := startCompressTestCluster(t)
	client := cluster.NewClient(WithClientCompression(5))
	defer client.Close()
	if _, err := client.Open("no-such-dataset"); err == nil {
		t.Fatal("expected an error opening a missing dataset")
	}
}

func TestCompressionReducesShapedTransferTime(t *testing.T) {
	// The point of the extension: on a slow WAN, compressed blocks arrive
	// sooner. Compare wire volume rather than wall time to keep the test
	// robust: the wire volume is what a bandwidth-limited link charges for.
	cluster := startCompressTestCluster(t)
	loader := cluster.NewClient()
	data := compressibleData(t)
	if _, err := cluster.LoadBytes(loader, "zwan", data, 8<<10); err != nil {
		t.Fatal(err)
	}
	loader.Close()

	zipped := cluster.NewClient(WithClientCompression(flate.BestCompression))
	defer zipped.Close()
	f, err := zipped.Open("zwan")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(data))
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	st := zipped.Stats()
	saved := float64(st.BytesRead-st.WireBytes) / float64(st.BytesRead)
	if saved < 0.2 {
		t.Fatalf("only %.0f%% of wire traffic saved on structured volume data", saved*100)
	}
}
