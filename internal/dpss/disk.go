package dpss

import (
	"fmt"
	"sync"
	"time"
)

// Disk models one physical disk attached to a block server. Blocks are kept
// in memory (the DPSS is a cache, not an archive); an optional service-rate
// model adds a seek latency plus size/rate delay per access so that
// disk-level parallelism is observable in throughput experiments.
type Disk struct {
	mu sync.Mutex
	// blocks maps "dataset/blockID" to block contents.
	blocks map[string][]byte

	// ServiceRate is the sustained transfer rate in bytes per second; zero
	// disables the delay model (tests and functional examples).
	ServiceRate float64
	// SeekTime is the fixed per-access positioning delay.
	SeekTime time.Duration

	bytesRead    int64
	bytesWritten int64
	reads        int64
	writes       int64
}

// NewDisk returns an empty in-memory disk with no delay model.
func NewDisk() *Disk {
	return &Disk{blocks: make(map[string][]byte)}
}

// NewDiskWithModel returns a disk whose accesses are paced by the given
// service rate (bytes/second) and seek time.
func NewDiskWithModel(serviceRate float64, seek time.Duration) *Disk {
	d := NewDisk()
	d.ServiceRate = serviceRate
	d.SeekTime = seek
	return d
}

func blockKey(dataset string, block int64) string {
	return fmt.Sprintf("%s/%d", dataset, block)
}

// delay sleeps for the modelled access time of a transfer of n bytes.
func (d *Disk) delay(n int) {
	if d.SeekTime > 0 {
		time.Sleep(d.SeekTime)
	}
	if d.ServiceRate > 0 && n > 0 {
		time.Sleep(time.Duration(float64(n) / d.ServiceRate * float64(time.Second)))
	}
}

// WriteBlock stores a block (copying the data).
func (d *Disk) WriteBlock(dataset string, block int64, data []byte) {
	d.delay(len(data))
	cp := make([]byte, len(data))
	copy(cp, data)
	d.mu.Lock()
	d.blocks[blockKey(dataset, block)] = cp
	d.bytesWritten += int64(len(data))
	d.writes++
	d.mu.Unlock()
}

// ReadBlock returns a copy of a stored block, or ErrUnknownBlock.
func (d *Disk) ReadBlock(dataset string, block int64) ([]byte, error) {
	d.mu.Lock()
	data, ok := d.blocks[blockKey(dataset, block)]
	d.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s block %d", ErrUnknownBlock, dataset, block)
	}
	d.delay(len(data))
	cp := make([]byte, len(data))
	copy(cp, data)
	d.mu.Lock()
	d.bytesRead += int64(len(data))
	d.reads++
	d.mu.Unlock()
	return cp, nil
}

// HasBlock reports whether the disk stores the given block.
func (d *Disk) HasBlock(dataset string, block int64) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	_, ok := d.blocks[blockKey(dataset, block)]
	return ok
}

// DropDataset removes every block of the named dataset and returns how many
// blocks were evicted, supporting the cache role of the DPSS.
func (d *Disk) DropDataset(dataset string) int {
	prefix := dataset + "/"
	d.mu.Lock()
	defer d.mu.Unlock()
	dropped := 0
	for k := range d.blocks {
		if len(k) > len(prefix) && k[:len(prefix)] == prefix {
			delete(d.blocks, k)
			dropped++
		}
	}
	return dropped
}

// DiskStats summarizes one disk's activity.
type DiskStats struct {
	Blocks       int
	BytesStored  int64
	BytesRead    int64
	BytesWritten int64
	Reads        int64
	Writes       int64
}

// Stats returns a snapshot of the disk's counters.
func (d *Disk) Stats() DiskStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	var stored int64
	for _, b := range d.blocks {
		stored += int64(len(b))
	}
	return DiskStats{
		Blocks:       len(d.blocks),
		BytesStored:  stored,
		BytesRead:    d.bytesRead,
		BytesWritten: d.bytesWritten,
		Reads:        d.reads,
		Writes:       d.writes,
	}
}
