package dpss

import (
	"bytes"
	"fmt"
	"io"

	"visapult/internal/netsim"
	"visapult/internal/volume"
)

// Cluster is a convenience wrapper that runs a complete in-process DPSS — one
// master plus a set of block servers on loopback TCP — for examples, tests
// and the live campaigns. It corresponds to one physical DPSS deployment in
// the paper (e.g. "Berkeley Lab: .75 TB, 4 server DPSS" in the SC99 diagram).
type Cluster struct {
	Master  *Master
	Servers []*BlockServer
	// MasterAddr and ServerAddrs are the listening addresses.
	MasterAddr  string
	ServerAddrs []string
}

// ClusterConfig sizes an in-process DPSS.
type ClusterConfig struct {
	// Servers is the number of block servers (default 4, the paper's typical
	// deployment).
	Servers int
	// DisksPerServer is the number of disks per server (default 4).
	DisksPerServer int
	// ServerShaper, when non-nil, is applied to every server's responses so
	// the aggregate DPSS-to-client traffic is limited to one WAN path. A
	// single shared shaper models all servers sitting behind the same WAN
	// link, which is the paper's topology.
	ServerShaper *netsim.Shaper
	// PerConnShaper, when non-nil, gives each accepted server connection its
	// own shaper — the per-socket throughput ceiling that makes parallel
	// striped connections pay off (see WithConnShaperFactory). Takes
	// precedence over ServerShaper.
	PerConnShaper func() *netsim.Shaper
}

// StartCluster launches the master and block servers on ephemeral loopback
// ports and registers the servers with the master.
func StartCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.Servers <= 0 {
		cfg.Servers = 4
	}
	if cfg.DisksPerServer <= 0 {
		cfg.DisksPerServer = 4
	}
	c := &Cluster{Master: NewMaster()}
	masterAddr, err := c.Master.Listen("127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("dpss: starting master: %w", err)
	}
	c.MasterAddr = masterAddr
	for i := 0; i < cfg.Servers; i++ {
		opts := []ServerOption{WithDisks(cfg.DisksPerServer)}
		if cfg.ServerShaper != nil {
			opts = append(opts, WithServerShaper(cfg.ServerShaper))
		}
		if cfg.PerConnShaper != nil {
			opts = append(opts, WithConnShaperFactory(cfg.PerConnShaper))
		}
		srv := NewBlockServer(opts...)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("dpss: starting block server %d: %w", i, err)
		}
		c.Servers = append(c.Servers, srv)
		c.ServerAddrs = append(c.ServerAddrs, addr)
		c.Master.RegisterServer(addr)
	}
	return c, nil
}

// NewClient returns a client pointed at the cluster's master.
func (c *Cluster) NewClient(opts ...ClientOption) *Client {
	return NewClient(c.MasterAddr, opts...)
}

// Close shuts down every component.
func (c *Cluster) Close() error {
	var first error
	for _, s := range c.Servers {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	if c.Master != nil {
		if err := c.Master.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// TotalBytesServed sums the bytes served by all block servers.
func (c *Cluster) TotalBytesServed() int64 {
	var total int64
	for _, s := range c.Servers {
		total += s.Stats().BytesServed
	}
	return total
}

// LoadBytes creates a dataset of the given name and stores data into the
// cluster through a client, block by block. It is the "migrate the files from
// HPSS to a nearby DPSS cache" step of the paper.
func (c *Cluster) LoadBytes(client *Client, name string, data []byte, blockSize int) (DatasetInfo, error) {
	// Delegate to the streaming loader so the write path really is one block
	// per WriteAt call: handing File.WriteAt the whole dataset at once made
	// every warming call carry the full file through a single giant write.
	return c.LoadReader(client, name, bytes.NewReader(data), int64(len(data)), blockSize)
}

// LoadReader streams a dataset of known size from r into the cluster.
func (c *Cluster) LoadReader(client *Client, name string, r io.Reader, size int64, blockSize int) (DatasetInfo, error) {
	info, err := client.Create(name, size, blockSize)
	if err != nil {
		return DatasetInfo{}, err
	}
	f := &File{client: client, info: info}
	buf := make([]byte, info.BlockSize)
	var off int64
	for off < size {
		want := int64(info.BlockSize)
		if off+want > size {
			want = size - off
		}
		if _, err := io.ReadFull(r, buf[:want]); err != nil {
			return DatasetInfo{}, fmt.Errorf("dpss: loading %q at offset %d: %w", name, off, err)
		}
		if _, err := f.WriteAt(buf[:want], off); err != nil {
			return DatasetInfo{}, err
		}
		off += want
	}
	return info, nil
}

// LoadVolume stores an encoded volume as a dataset named name.
func (c *Cluster) LoadVolume(client *Client, name string, v *volume.Volume, blockSize int) (DatasetInfo, error) {
	return c.LoadBytes(client, name, v.Marshal(), blockSize)
}

// TimestepDatasetName is the naming convention for time-varying datasets
// staged into the cache: one dataset per timestep.
func TimestepDatasetName(base string, timestep int) string {
	return fmt.Sprintf("%s.t%04d", base, timestep)
}
