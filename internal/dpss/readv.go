package dpss

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Protocol v2: the striped, pipelined read path.
//
// The paper's DPSS client keeps several parallel TCP streams per block server
// and pipelines block requests over them so the WAN pipe stays full. Wire v2
// reproduces that: requests carry a client-chosen sequence number, the server
// answers out of order as its disks allow, and a vectored read (msgReadv)
// batches many small (block, offset, length) extents into one exchange so the
// general row-by-row region case costs a handful of frames instead of one
// round-trip per row.
//
// Negotiation is a client-side probe: a v2 client opens each stripe
// connection with msgHello. A v2 server replies msgOK with its wire version;
// a v1 server falls through its message switch and replies msgError
// ("unexpected message"), which the client treats as "speak v1 on this
// server" — lock-step request/response per stripe, still parallel across
// stripes. The server itself stays stateless about versions: it simply
// understands both message families on any connection.
const (
	// Client -> block server (v2).
	msgHello = byte(14) // payload = client wire version (u32); response = msgOK + server version (u32)
	msgRead2 = byte(15) // payload = seq (u32) + dataset name + logical block id
	msgReadv = byte(16) // payload = seq (u32) + dataset name + extent count + extents

	// Block server -> client (v2). Both carry the request's seq first.
	msgOK2    = byte(22) // payload = seq (u32) + data
	msgError2 = byte(23) // payload = seq (u32) + error string
)

// Wire protocol versions for the block-server data path.
const (
	wireV1 = 1
	wireV2 = 2
)

// Vectored-read bounds. A msgReadv request may carry at most MaxReadvExtents
// extents and its response at most maxReadvBytes of data, so one exchange
// never turns into an unbounded frame; the client splits larger extent lists
// into several batches and the server rejects requests over the limits.
const (
	// MaxReadvExtents bounds the extent count in one msgReadv exchange.
	MaxReadvExtents = 4096
	// maxReadvBytes bounds the data volume returned by one msgReadv exchange.
	maxReadvBytes = 4 << 20
)

// Extent names one contiguous byte range of a dataset for a vectored
// scatter read: Len bytes starting at absolute dataset offset Off, delivered
// into Dst (whose length must equal Len). The client splits extents at block
// boundaries internally; callers work in flat dataset offsets.
type Extent struct {
	Off int64
	Len int
	Dst []byte
}

// blockExtent is one extent after splitting at block boundaries: a range
// within a single logical block, scattered into dst.
type blockExtent struct {
	block int64
	off   uint32 // offset within the block
	n     uint32 // length
	dst   []byte // nil on the server side
}

// appendReadvRequest encodes a msgReadv payload (after the seq prefix the
// stripe layer adds): dataset name, extent count, then (block u64, off u32,
// len u32) per extent.
func appendReadvRequest(buf []byte, dataset string, exts []blockExtent) []byte {
	e := &encoder{buf: buf}
	e.str(dataset).u32(uint32(len(exts)))
	for _, x := range exts {
		e.u64(uint64(x.block)).u32(x.off).u32(x.n)
	}
	return e.buf
}

// decodeReadvRequest decodes a msgReadv payload (seq already stripped). It is
// deliberately paranoid — the extent count, per-extent lengths and the total
// response volume are all bounded before any allocation, so a hostile frame
// cannot balloon server memory. Exercised directly by FuzzReadvRequestDecode.
func decodeReadvRequest(payload []byte) (dataset string, exts []blockExtent, err error) {
	d := &decoder{buf: payload}
	dataset = d.str()
	n := d.u32()
	if d.err != nil {
		return "", nil, d.err
	}
	if n == 0 {
		return "", nil, fmt.Errorf("%w: empty readv", ErrProtocol)
	}
	if n > MaxReadvExtents {
		return "", nil, fmt.Errorf("%w: readv of %d extents (max %d)", ErrProtocol, n, MaxReadvExtents)
	}
	if remain := len(payload) - d.off; remain != int(n)*16 {
		return "", nil, fmt.Errorf("%w: readv of %d extents carries %d trailing bytes", ErrProtocol, n, remain)
	}
	exts = make([]blockExtent, 0, n)
	var total uint64
	for i := uint32(0); i < n; i++ {
		x := blockExtent{block: int64(d.u64()), off: d.u32(), n: d.u32()}
		if x.block < 0 || x.n == 0 || uint64(x.off)+uint64(x.n) > maxFrame {
			return "", nil, fmt.Errorf("%w: bad extent (block %d, off %d, len %d)", ErrProtocol, x.block, x.off, x.n)
		}
		total += uint64(x.n)
		exts = append(exts, x)
	}
	if d.err != nil {
		return "", nil, d.err
	}
	// A single extent may exceed the batch byte bound (a dataset with blocks
	// larger than maxReadvBytes still needs whole-block reads); anything the
	// client could have split further must respect it.
	if total > maxReadvBytes && n > 1 {
		return "", nil, fmt.Errorf("%w: readv response of %d bytes (max %d)", ErrProtocol, total, maxReadvBytes)
	}
	return dataset, exts, nil
}

// scatterExtents reads exactly the concatenated extent data from r directly
// into each destination slice — the zero-copy half of ReadvScatter: block
// bytes go from the socket straight into the caller's buffers with no
// intermediate per-block allocation. refresh, when non-nil, is invoked before
// each extent so the stripe reader can extend its read deadline on long
// responses. Exercised directly by FuzzReadvResponseScatter.
func scatterExtents(r io.Reader, dsts [][]byte, refresh func()) error {
	for _, dst := range dsts {
		if refresh != nil {
			refresh()
		}
		if _, err := io.ReadFull(r, dst); err != nil {
			return err
		}
	}
	return nil
}

// appendHello encodes a msgHello payload.
func appendHello(buf []byte, version uint32) []byte {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], version)
	return append(buf, b[:]...)
}

// decodeHello decodes a msgHello payload or a hello msgOK response. Anything
// but exactly one u32 is a protocol error — which the client also uses to
// classify pre-v2 fakes that answer hello with block data.
func decodeHello(payload []byte) (uint32, error) {
	if len(payload) != 4 {
		return 0, fmt.Errorf("%w: hello payload of %d bytes", ErrProtocol, len(payload))
	}
	return binary.BigEndian.Uint32(payload), nil
}

// splitExtents validates caller extents against the dataset layout and splits
// them at block boundaries, appending per-server batches to per. Extents may
// be in any order and may overlap; each must lie within [0, info.Size) and
// carry a Dst of exactly Len bytes.
func splitExtents(info DatasetInfo, exts []Extent, per map[string][]blockExtent) error {
	blockSize := int64(info.BlockSize)
	if blockSize <= 0 {
		return fmt.Errorf("dpss: dataset %s has no block size", info.Name)
	}
	for _, x := range exts {
		if x.Len == 0 {
			continue
		}
		if x.Off < 0 || x.Len < 0 || x.Off+int64(x.Len) > info.Size {
			return fmt.Errorf("dpss: extent [%d,+%d) outside dataset %s (%d bytes)", x.Off, x.Len, info.Name, info.Size)
		}
		if len(x.Dst) != x.Len {
			return fmt.Errorf("dpss: extent [%d,+%d) has %d-byte destination", x.Off, x.Len, len(x.Dst))
		}
		off, dst := x.Off, x.Dst
		for len(dst) > 0 {
			block := off / blockSize
			inBlock := off - block*blockSize
			n := blockSize - inBlock
			if n > int64(len(dst)) {
				n = int64(len(dst))
			}
			addr := info.ServerFor(block)
			per[addr] = append(per[addr], blockExtent{
				block: block, off: uint32(inBlock), n: uint32(n), dst: dst[:n],
			})
			off += n
			dst = dst[n:]
		}
	}
	return nil
}
