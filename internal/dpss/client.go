package dpss

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"time"

	"visapult/internal/netlogger"
	"visapult/internal/netsim"
)

// Client is the DPSS client library: the Go equivalent of the paper's
// dpssOpen / dpssRead / dpssLSeek / dpssClose API. The client keeps one TCP
// connection per block server and issues block requests to all servers in
// parallel, so a single large read engages every server (and every disk
// behind it) at once — "the speed of the client scales with the speed of the
// server, assuming the client host is powerful enough".
type Client struct {
	masterAddr string
	shaper     *netsim.Shaper
	latency    time.Duration
	logger     *netlogger.Logger
	// compress, when positive, requests DEFLATE-compressed blocks at that
	// level (the section 5 "wire level compression" extension).
	compress int
	// opTimeout bounds every request/response exchange whose context carries
	// no deadline of its own; 0 disables the bound.
	opTimeout time.Duration
	// stripes is how many parallel connections the client keeps per block
	// server for reads; window bounds pipelined requests in flight per
	// stripe. See WithStripes / WithStripeWindow.
	stripes int
	window  int

	mu     sync.Mutex
	master net.Conn
	conns  map[string]*serverConn
	pools  map[string]*stripePool
	closed bool

	bytesRead       int64
	reads           int64
	wireBytes       int64
	compressedRaw   int64
	compressedReads int64
}

// DefaultOpTimeout is the per-exchange deadline applied when neither the
// caller's context nor WithClientTimeout supplies one. A master or block
// server that stops mid-frame (wedged process, dead link with no RST) fails
// the exchange within this bound instead of blocking the caller forever.
const DefaultOpTimeout = 30 * time.Second

// serverConn serializes request/response exchanges on one block-server
// connection. Parallelism across servers comes from having one of these per
// server, mirroring the original client's thread-per-server design.
type serverConn struct {
	// opTimeout mirrors Client.opTimeout for exchanges whose context has no
	// deadline; set at dial time, read-only afterwards.
	opTimeout time.Duration

	mu   sync.Mutex
	conn net.Conn
	out  io.Writer
}

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithClientShaper paces all of the client's outbound traffic with one
// shaper; combined with a server-side shaper this brackets a WAN emulation.
func WithClientShaper(sh *netsim.Shaper) ClientOption {
	return func(c *Client) { c.shaper = sh }
}

// WithClientLatency adds a fixed delay before each request, emulating WAN
// round-trip latency on the request path.
func WithClientLatency(d time.Duration) ClientOption {
	return func(c *Client) { c.latency = d }
}

// WithClientLogger attaches NetLogger instrumentation to the client.
func WithClientLogger(l *netlogger.Logger) ClientOption {
	return func(c *Client) { c.logger = l }
}

// WithClientTimeout overrides DefaultOpTimeout as the bound on exchanges
// whose context carries no deadline. d <= 0 disables the bound entirely —
// exchanges then block until the peer responds, the connection dies, or the
// caller's context fires.
func WithClientTimeout(d time.Duration) ClientOption {
	return func(c *Client) {
		if d <= 0 {
			d = 0
		}
		c.opTimeout = d
	}
}

// NewClient creates a client for the master at masterAddr. No connection is
// made until the first call.
func NewClient(masterAddr string, opts ...ClientOption) *Client {
	c := &Client{
		masterAddr: masterAddr,
		conns:      make(map[string]*serverConn),
		pools:      make(map[string]*stripePool),
		opTimeout:  DefaultOpTimeout,
		stripes:    DefaultStripes,
		window:     DefaultStripeWindow,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// masterConn lazily dials the master.
func (c *Client) masterConn() (net.Conn, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, errors.New("dpss: client closed")
	}
	if c.master != nil {
		return c.master, nil
	}
	conn, err := net.Dial("tcp", c.masterAddr)
	if err != nil {
		return nil, fmt.Errorf("dpss: dialing master %s: %w", c.masterAddr, err)
	}
	c.master = conn
	return conn, nil
}

// masterCall performs one synchronous request/response with the master,
// bounded by the client's op timeout. An exchange that fails at the I/O level
// leaves the connection mid-frame, so it is dropped; the next call re-dials.
func (c *Client) masterCall(msgType byte, payload []byte) ([]byte, error) {
	conn, err := c.masterConn()
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.opTimeout > 0 {
		conn.SetDeadline(time.Now().Add(c.opTimeout)) //nolint:errcheck // the exchange below surfaces a dead conn
	}
	if err := writeFrame(conn, msgType, payload); err != nil {
		c.dropMasterLocked(conn)
		return nil, err
	}
	respType, resp, err := readFrame(conn)
	if err != nil {
		c.dropMasterLocked(conn)
		return nil, err
	}
	if respType == msgError {
		return nil, interpretError(string(resp))
	}
	return resp, nil
}

// dropMasterLocked closes and forgets the master connection after a failed
// exchange left it mid-frame. The identity check keeps a stale drop from
// tearing down a replacement dialed in the meantime.
func (c *Client) dropMasterLocked(conn net.Conn) {
	conn.Close()
	if c.master == conn {
		c.master = nil
	}
}

// interpretError maps an error string from the wire back to a sentinel error
// where possible so callers can use errors.Is.
func interpretError(msg string) error {
	switch {
	case strings.Contains(msg, ErrUnknownDataset.Error()):
		return fmt.Errorf("%w (%s)", ErrUnknownDataset, msg)
	case strings.Contains(msg, ErrDatasetExists.Error()):
		return fmt.Errorf("%w (%s)", ErrDatasetExists, msg)
	case strings.Contains(msg, ErrUnknownBlock.Error()):
		return fmt.Errorf("%w (%s)", ErrUnknownBlock, msg)
	case strings.Contains(msg, ErrAccessDenied.Error()):
		return fmt.Errorf("%w (%s)", ErrAccessDenied, msg)
	default:
		return errors.New(msg)
	}
}

// serverConnFor lazily dials a block server.
func (c *Client) serverConnFor(addr string) (*serverConn, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, errors.New("dpss: client closed")
	}
	if sc, ok := c.conns[addr]; ok {
		return sc, nil
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dpss: dialing block server %s: %w", addr, err)
	}
	var out io.Writer = conn
	if c.shaper != nil || c.latency > 0 {
		out = netsim.NewShapedConn(conn, c.shaper, c.latency)
	}
	sc := &serverConn{opTimeout: c.opTimeout, conn: conn, out: out}
	c.conns[addr] = sc
	return sc, nil
}

// connError marks an exchange failure that left the connection mid-frame:
// the conn must be discarded, not returned to the pool.
type connError struct{ err error }

func (e *connError) Error() string { return e.err.Error() }
func (e *connError) Unwrap() error { return e.err }

// callContext performs one synchronous block request with cancellation: a ctx
// cancelled mid-exchange poisons the connection with an immediate deadline,
// failing the blocked read or write right away instead of at the next frame
// boundary. A ctx with no deadline of its own gets the client's op timeout,
// so an exchange is never unbounded. Either way a failed exchange leaves the
// connection mid-frame and unusable; the error is a *connError and the caller
// must discard the conn (see Client.exchange / dropServerConn).
func (sc *serverConn) callContext(ctx context.Context, msgType byte, payload []byte) ([]byte, error) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	deadline, ok := ctx.Deadline()
	if !ok && sc.opTimeout > 0 {
		deadline, ok = time.Now().Add(sc.opTimeout), true
	}
	if ok {
		sc.conn.SetDeadline(deadline) //nolint:errcheck // the exchange below surfaces a dead conn
	} else {
		// Clear any deadline a previous exchange left behind.
		sc.conn.SetDeadline(time.Time{}) //nolint:errcheck
	}
	stop := context.AfterFunc(ctx, func() { sc.conn.SetDeadline(time.Unix(1, 0)) })
	defer stop()
	if err := writeFrame(sc.out, msgType, payload); err != nil {
		return nil, &connError{ctxPreferred(ctx, err)}
	}
	respType, resp, err := readFrame(sc.conn)
	if err != nil {
		return nil, &connError{ctxPreferred(ctx, err)}
	}
	if respType == msgError {
		return nil, interpretError(string(resp))
	}
	return resp, nil
}

// exchange runs one request/response against the block server at addr,
// discarding the pooled connection when the exchange broke it (I/O-level
// failure, or a fired context whose poison deadline may land late).
func (c *Client) exchange(ctx context.Context, addr string, msgType byte, payload []byte) ([]byte, error) {
	sc, err := c.serverConnFor(addr)
	if err != nil {
		return nil, err
	}
	resp, err := sc.callContext(ctx, msgType, payload)
	var ce *connError
	// Once the context has fired the connection must go even when the
	// exchange itself squeaked through: the cancellation's AfterFunc may
	// have set (or still be setting) the poison deadline, which would fail
	// every later exchange on a pooled connection.
	if errors.As(err, &ce) || ctx.Err() != nil {
		c.dropServerConn(addr, sc)
	}
	return resp, err
}

// ctxPreferred surfaces the context's cancellation as the error cause when an
// I/O failure was (most likely) induced by it, so callers can errors.Is
// against context.Canceled instead of parsing deadline errors.
func ctxPreferred(ctx context.Context, err error) error {
	if ctxErr := ctx.Err(); ctxErr != nil {
		return fmt.Errorf("dpss: read aborted: %w", ctxErr)
	}
	return err
}

// Create registers a new dataset with the master and returns its layout.
func (c *Client) Create(name string, size int64, blockSize int) (DatasetInfo, error) {
	e := &encoder{}
	e.str(name).u64(uint64(size)).u32(uint32(blockSize))
	resp, err := c.masterCall(msgCreate, e.buf)
	if err != nil {
		return DatasetInfo{}, err
	}
	return decodeDatasetInfo(resp)
}

// Open looks a dataset up with the master and returns a File handle with
// Unix-like semantics.
func (c *Client) Open(name string) (*File, error) {
	e := &encoder{}
	e.str(name)
	resp, err := c.masterCall(msgOpen, e.buf)
	if err != nil {
		return nil, err
	}
	info, err := decodeDatasetInfo(resp)
	if err != nil {
		return nil, err
	}
	if c.logger != nil {
		c.logger.Log("DPSS_OPEN", netlogger.Str("DATASET", name), netlogger.Int64(netlogger.FieldBytes, info.Size))
	}
	return &File{client: c, info: info}, nil
}

// ListDatasets returns the master's catalog: every dataset name the cluster
// currently holds, sorted. The fabric layer uses it to build a federation-wide
// catalog view, and it doubles as a cheap liveness probe (any response proves
// the master is up).
func (c *Client) ListDatasets() ([]string, error) {
	resp, err := c.masterCall(msgList, nil)
	if err != nil {
		return nil, err
	}
	d := &decoder{buf: resp}
	n := int(d.u32())
	names := make([]string, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		names = append(names, d.str())
	}
	if d.err != nil {
		return nil, d.err
	}
	return names, nil
}

// Remove deletes a dataset from the cluster: its blocks are evicted from
// every stripe server (best-effort — a dark server simply keeps stale blocks
// that the catalog no longer maps) and then the master's catalog entry is
// dropped. Removing a dataset the cluster does not hold is a no-op, so the
// drain-to-empty path can re-run after a partial failure.
func (c *Client) Remove(name string) error {
	// Compatibility shim: each exchange below is still bounded by the
	// client's op timeout.
	return c.RemoveContext(context.Background(), name) //vislint:ignore ctxbackground ctx-less legacy API; see RemoveContext
}

// RemoveContext is Remove under a context: cancelling ctx aborts the eviction
// or catalog exchange in flight.
func (c *Client) RemoveContext(ctx context.Context, name string) error {
	info, err := c.Stat(name)
	if errors.Is(err, ErrUnknownDataset) {
		return nil
	}
	if err != nil {
		return err
	}
	seen := make(map[string]bool, len(info.Servers))
	for _, addr := range info.Servers {
		if seen[addr] {
			continue
		}
		seen[addr] = true
		e := &encoder{}
		e.str(name)
		c.exchange(ctx, addr, msgDropDataset, e.buf) //nolint:errcheck // best-effort eviction
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	e := &encoder{}
	e.str(name)
	_, err = c.masterCall(msgRemove, e.buf)
	return err
}

// Stat returns a dataset's layout without opening it.
func (c *Client) Stat(name string) (DatasetInfo, error) {
	e := &encoder{}
	e.str(name)
	resp, err := c.masterCall(msgStat, e.buf)
	if err != nil {
		return DatasetInfo{}, err
	}
	return decodeDatasetInfo(resp)
}

// dropServerConn closes and forgets a server connection a cancelled exchange
// left mid-frame. The sc identity check keeps a stale drop from tearing down
// a replacement connection dialed in the meantime.
func (c *Client) dropServerConn(addr string, sc *serverConn) {
	c.mu.Lock()
	if cur, ok := c.conns[addr]; ok && cur == sc {
		delete(c.conns, addr)
	}
	c.mu.Unlock()
	sc.conn.Close()
}

// writeBlock stores one logical block on its server, bounded by ctx and the
// client's op timeout like every other exchange.
func (c *Client) writeBlock(ctx context.Context, info DatasetInfo, block int64, data []byte) error {
	e := &encoder{}
	e.str(info.Name).u64(uint64(block)).bytes(data)
	_, err := c.exchange(ctx, info.ServerFor(block), msgWriteBlock, e.buf)
	return err
}

// ClientStats summarizes client activity.
type ClientStats struct {
	// BytesRead is the raw (decompressed) data volume delivered to callers.
	BytesRead int64
	Reads     int64
	Servers   int
	// WireBytes is the volume that actually crossed the network for
	// compressed reads; CompressedReads counts how many block reads used the
	// wire-level compression extension.
	WireBytes       int64
	CompressedReads int64
}

// Stats returns a snapshot of the client's counters.
func (c *Client) Stats() ClientStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	servers := make(map[string]struct{}, len(c.conns)+len(c.pools))
	for addr := range c.conns {
		servers[addr] = struct{}{}
	}
	for addr := range c.pools {
		servers[addr] = struct{}{}
	}
	return ClientStats{
		BytesRead: c.bytesRead, Reads: c.reads, Servers: len(servers),
		WireBytes: c.wireBytes, CompressedReads: c.compressedReads,
	}
}

// Close tears down every connection, failing any exchange still in flight.
func (c *Client) Close() error {
	c.mu.Lock()
	c.closed = true
	var first error
	if c.master != nil {
		if err := c.master.Close(); err != nil && first == nil {
			first = err
		}
		c.master = nil
	}
	for addr, sc := range c.conns {
		if err := sc.conn.Close(); err != nil && first == nil {
			first = err
		}
		delete(c.conns, addr)
	}
	pools := make([]*stripePool, 0, len(c.pools))
	for addr, p := range c.pools {
		pools = append(pools, p)
		delete(c.pools, addr)
	}
	c.mu.Unlock()
	// Stripe teardown resolves in-flight calls (sends on their resp
	// channels), so it happens outside the client lock.
	errClosed := errors.New("dpss: client closed")
	for _, p := range pools {
		for _, s := range p.stripes {
			s.close(errClosed)
		}
	}
	return first
}

// File is an open dataset with Unix-like read semantics (the dpssRead /
// dpssLSeek of the original API), implementing io.Reader, io.ReaderAt and
// io.Seeker.
type File struct {
	client *Client
	info   DatasetInfo
	mu     sync.Mutex
	offset int64
}

// Info returns the dataset layout.
func (f *File) Info() DatasetInfo { return f.info }

// Size returns the dataset size in bytes.
func (f *File) Size() int64 { return f.info.Size }

// ReadAt reads len(p) bytes starting at offset off, fetching every involved
// block from its server in parallel. It implements io.ReaderAt, whose
// signature has no context; each block exchange is still bounded by the
// client's op timeout.
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	return f.ReadAtContext(context.Background(), p, off) //vislint:ignore ctxbackground io.ReaderAt compatibility shim; see ReadAtContext
}

// ReadAtContext is ReadAt under a context: cancelling ctx aborts the block
// exchanges in flight (each blocked read fails immediately) rather than
// letting them run to completion. It is a single-extent ReadvScatter, so a
// large read is pipelined over the per-server stripe pools under a bounded
// in-flight window — never a goroutine per block.
func (f *File) ReadAtContext(ctx context.Context, p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("dpss: negative offset %d", off)
	}
	if off >= f.info.Size {
		return 0, io.EOF
	}
	want := int64(len(p))
	if off+want > f.info.Size {
		want = f.info.Size - off
	}
	if want == 0 {
		return 0, nil
	}
	ext := [1]Extent{{Off: off, Len: int(want), Dst: p[:want]}}
	if err := f.client.readvScatter(ctx, f.info, ext[:]); err != nil {
		return 0, err
	}
	if want < int64(len(p)) {
		return int(want), io.EOF
	}
	return int(want), nil
}

// Read reads from the current offset, advancing it. It implements io.Reader.
func (f *File) Read(p []byte) (int, error) {
	f.mu.Lock()
	off := f.offset
	f.mu.Unlock()
	n, err := f.ReadAt(p, off)
	f.mu.Lock()
	f.offset = off + int64(n)
	f.mu.Unlock()
	return n, err
}

// Seek implements io.Seeker (the dpssLSeek of the original API).
func (f *File) Seek(offset int64, whence int) (int64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	var next int64
	switch whence {
	case io.SeekStart:
		next = offset
	case io.SeekCurrent:
		next = f.offset + offset
	case io.SeekEnd:
		next = f.info.Size + offset
	default:
		return 0, fmt.Errorf("dpss: bad whence %d", whence)
	}
	if next < 0 {
		return 0, fmt.Errorf("dpss: negative resulting offset %d", next)
	}
	f.offset = next
	return next, nil
}

// Close releases the handle. The client's connections stay up for other
// files.
func (f *File) Close() error { return nil }

// WriteAt stores len(p) bytes at offset off, used by the dataset loader. The
// write must be block-aligned except for the final partial block. It
// implements io.WriterAt, whose signature has no context; each block exchange
// is still bounded by the client's op timeout.
func (f *File) WriteAt(p []byte, off int64) (int, error) {
	return f.WriteAtContext(context.Background(), p, off) //vislint:ignore ctxbackground io.WriterAt compatibility shim; see WriteAtContext
}

// WriteAtContext is WriteAt under a context: cancelling ctx aborts the block
// exchange in flight (a blocked write fails immediately) rather than letting
// the remaining blocks go out.
func (f *File) WriteAtContext(ctx context.Context, p []byte, off int64) (int, error) {
	if off%int64(f.info.BlockSize) != 0 {
		return 0, fmt.Errorf("dpss: write offset %d not block-aligned", off)
	}
	blockSize := int64(f.info.BlockSize)
	written := 0
	for written < len(p) {
		block := (off + int64(written)) / blockSize
		end := written + f.info.BlockSize
		if end > len(p) {
			end = len(p)
		}
		if err := f.client.writeBlock(ctx, f.info, block, p[written:end]); err != nil {
			return written, err
		}
		written = end
	}
	return written, nil
}
