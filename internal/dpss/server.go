package dpss

import (
	"errors"
	"fmt"
	"net"
	"sync"

	"visapult/internal/netlogger"
	"visapult/internal/netsim"
)

// BlockServer is one DPSS block server: it owns a set of disks (blocks are
// striped across them by logical block number) and serves read/write block
// requests over TCP. A typical DPSS deployment in the paper was four such
// servers, each with several disk controllers and several disks per
// controller.
type BlockServer struct {
	mu     sync.Mutex
	disks  []*Disk
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
	shaper *netsim.Shaper
	// connShaper, when set, gives each accepted connection its own shaper.
	connShaper func() *netsim.Shaper
	logger     *netlogger.Logger
	// pipeWorkers bounds per-connection service concurrency on the v2
	// pipelined path; see WithPipelineWorkers.
	pipeWorkers int
	served      int64 // bytes sent to clients
	stored      int64 // bytes written by loaders
	reqs        int64
	errored     int64
}

// ServerOption configures a BlockServer.
type ServerOption func(*BlockServer)

// WithDisks sets the number of disks (default 4) using the default in-memory
// disk with no delay model.
func WithDisks(n int) ServerOption {
	return func(s *BlockServer) {
		if n < 1 {
			n = 1
		}
		s.disks = make([]*Disk, n)
		for i := range s.disks {
			s.disks[i] = NewDisk()
		}
	}
}

// WithDiskModels sets explicit disks (with service-rate models).
func WithDiskModels(disks ...*Disk) ServerOption {
	return func(s *BlockServer) {
		if len(disks) > 0 {
			s.disks = disks
		}
	}
}

// WithServerShaper rate-limits the server's responses, emulating the
// server-side network interface.
func WithServerShaper(sh *netsim.Shaper) ServerOption {
	return func(s *BlockServer) { s.shaper = sh }
}

// WithConnShaperFactory gives every accepted connection its own shaper — the
// per-socket throughput ceiling of a window-limited WAN path, the very effect
// the paper's parallel striped sockets exist to overcome. Contrast
// WithServerShaper, whose single shared shaper models the aggregate link;
// when both are set the per-connection shaper wins.
func WithConnShaperFactory(f func() *netsim.Shaper) ServerOption {
	return func(s *BlockServer) { s.connShaper = f }
}

// WithServerLogger attaches a NetLogger logger for server-side events.
func WithServerLogger(l *netlogger.Logger) ServerOption {
	return func(s *BlockServer) { s.logger = l }
}

// NewBlockServer creates a block server with the given options (4 in-memory
// disks by default).
func NewBlockServer(opts ...ServerOption) *BlockServer {
	s := &BlockServer{conns: make(map[net.Conn]struct{}), pipeWorkers: DefaultPipelineWorkers}
	WithDisks(4)(s)
	for _, o := range opts {
		o(s)
	}
	return s
}

// NumDisks returns how many disks the server stripes over.
func (s *BlockServer) NumDisks() int { return len(s.disks) }

// diskFor returns the disk that stores the given logical block, striping
// round-robin by block number.
func (s *BlockServer) diskFor(block int64) *Disk {
	return s.disks[int(block%int64(len(s.disks)))]
}

// Listen starts the server on addr ("127.0.0.1:0" for an ephemeral port) and
// returns the bound address.
func (s *BlockServer) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

// Addr returns the listening address ("" if not listening).
func (s *BlockServer) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

func (s *BlockServer) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return
			}
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return
			}
			continue
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *BlockServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	var out net.Conn = conn
	if s.connShaper != nil {
		if sh := s.connShaper(); sh != nil {
			out = netsim.NewShapedConn(conn, sh, 0)
		}
	} else if s.shaper != nil {
		out = netsim.NewShapedConn(conn, s.shaper, 0)
	}
	// pipe serves this conn's sequenced (v2) requests out of order through a
	// bounded worker pool; created on the first such request, joined on exit.
	var pipe *connPipeline
	defer func() {
		if pipe != nil {
			pipe.stop()
		}
	}()
	for {
		msgType, payload, err := readFrame(conn) //vislint:ignore boundedio idle request loop: a block-server connection legitimately waits forever for its client's next request
		if err != nil {
			return
		}
		s.mu.Lock()
		s.reqs++
		s.mu.Unlock()
		switch msgType {
		case msgReadBlock:
			s.handleRead(out, payload)
		case msgReadBlockZ:
			s.handleReadCompressed(out, payload)
		case msgWriteBlock:
			s.handleWrite(out, payload)
		case msgDropDataset:
			s.handleDrop(out, payload)
		case msgHello:
			s.handleHello(out, payload)
		case msgRead2, msgReadv:
			if pipe == nil {
				pipe = s.startPipeline(out)
			}
			pipe.enqueue(msgType, payload)
		default:
			s.replyError(out, fmt.Errorf("%w: unexpected message %d", ErrProtocol, msgType))
		}
	}
}

func (s *BlockServer) handleRead(out net.Conn, payload []byte) {
	d := &decoder{buf: payload}
	dataset := d.str()
	block := int64(d.u64())
	if d.err != nil {
		s.replyError(out, d.err)
		return
	}
	data, err := s.diskFor(block).ReadBlock(dataset, block)
	if err != nil {
		s.replyError(out, err)
		return
	}
	if s.logger != nil {
		s.logger.Log("DPSS_BLOCK_READ", netlogger.Str("DATASET", dataset),
			netlogger.Int64("BLOCK", block), netlogger.Int64(netlogger.FieldBytes, int64(len(data))))
	}
	s.mu.Lock()
	s.served += int64(len(data))
	s.mu.Unlock()
	reply(out, msgOK, data)
}

func (s *BlockServer) handleWrite(out net.Conn, payload []byte) {
	d := &decoder{buf: payload}
	dataset := d.str()
	block := int64(d.u64())
	data := d.bytes()
	if d.err != nil {
		s.replyError(out, d.err)
		return
	}
	s.diskFor(block).WriteBlock(dataset, block, data)
	s.mu.Lock()
	s.stored += int64(len(data))
	s.mu.Unlock()
	reply(out, msgOK, nil)
}

// handleDrop serves a msgDropDataset request: every block of the dataset is
// evicted from the server's disks (the cache-eviction half of a dataset
// removal; the master's catalog entry goes separately via msgRemove).
func (s *BlockServer) handleDrop(out net.Conn, payload []byte) {
	d := &decoder{buf: payload}
	dataset := d.str()
	if d.err != nil {
		s.replyError(out, d.err)
		return
	}
	dropped := s.DropDataset(dataset)
	e := &encoder{}
	e.u32(uint32(dropped))
	reply(out, msgOK, e.buf)
}

func (s *BlockServer) replyError(out net.Conn, err error) {
	s.mu.Lock()
	s.errored++
	s.mu.Unlock()
	reply(out, msgError, []byte(err.Error()))
}

// ServerStats summarizes a block server's activity.
type ServerStats struct {
	Requests     int64
	Errors       int64
	BytesServed  int64
	BytesStored  int64
	Disks        int
	BlocksStored int
}

// Stats returns a snapshot of the server's counters.
func (s *BlockServer) Stats() ServerStats {
	s.mu.Lock()
	st := ServerStats{
		Requests:    s.reqs,
		Errors:      s.errored,
		BytesServed: s.served,
		BytesStored: s.stored,
		Disks:       len(s.disks),
	}
	s.mu.Unlock()
	for _, d := range s.disks {
		st.BlocksStored += d.Stats().Blocks
	}
	return st
}

// DropDataset evicts a dataset from all of the server's disks.
func (s *BlockServer) DropDataset(dataset string) int {
	total := 0
	for _, d := range s.disks {
		total += d.DropDataset(dataset)
	}
	return total
}

// Close stops the listener and tears down open connections.
func (s *BlockServer) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return err
}
