package dpss

import (
	"bytes"
	"testing"
)

// FuzzReadvRequestDecode hammers the server-side msgReadv request decoder
// with hostile extent counts, lying length fields and truncations. Whatever
// comes in, the decoder must either reject it or return a request the server
// can serve within its resource bounds — never panic, never admit an extent
// table that disagrees with the protocol limits.
func FuzzReadvRequestDecode(f *testing.F) {
	valid := appendReadvRequest(nil, "combustion.t0001", []blockExtent{
		{block: 0, off: 0, n: 4096},
		{block: 1, off: 128, n: 64},
		{block: 7, off: 65024, n: 512},
	})
	f.Add(valid)
	f.Add(valid[:len(valid)-5]) // truncated extent table
	f.Add(valid[:3])            // truncated dataset name
	f.Add([]byte{})
	// A count field claiming far more extents than the payload carries.
	lying := append([]byte(nil), valid...)
	lying[len(lying)-4*16-4] = 0xFF
	f.Add(lying)
	f.Fuzz(func(t *testing.T, data []byte) {
		dataset, exts, err := decodeReadvRequest(data)
		if err != nil {
			return
		}
		if dataset == "" {
			t.Fatal("accepted request with empty dataset name")
		}
		if len(exts) == 0 || len(exts) > MaxReadvExtents {
			t.Fatalf("accepted %d extents, protocol bound is [1,%d]", len(exts), MaxReadvExtents)
		}
		var total uint64
		for _, x := range exts {
			if x.block < 0 {
				t.Fatalf("accepted negative block %d", x.block)
			}
			if x.n == 0 {
				t.Fatal("accepted empty extent")
			}
			if uint64(x.off)+uint64(x.n) > maxFrame {
				t.Fatalf("accepted extent [%d,+%d) beyond the frame bound", x.off, x.n)
			}
			total += uint64(x.n)
		}
		if total > maxReadvBytes && len(exts) > 1 {
			t.Fatalf("accepted %d-extent request of %d bytes, response bound is %d", len(exts), total, maxReadvBytes)
		}
	})
}

// FuzzReadvResponseScatter feeds arbitrary response bodies — including ones
// shorter than the extent table demands — through the zero-copy scatter
// loop. A short body must surface as an error with no write outside any
// destination slice; a sufficient body must land byte-exact.
func FuzzReadvResponseScatter(f *testing.F) {
	f.Add([]byte{}, uint16(3))
	f.Add(patternData(4096), uint16(5))
	f.Add(patternData(257), uint16(1))
	f.Add(patternData(64<<10), uint16(63))
	f.Fuzz(func(t *testing.T, body []byte, pieces uint16) {
		n := int(pieces%64) + 1
		sizes := make([]int, n)
		total := 0
		for i := range sizes {
			sizes[i] = (i*31+7)%257 + 1
			total += sizes[i]
		}
		buf := make([]byte, total)
		dsts := make([][]byte, n)
		off := 0
		for i, sz := range sizes {
			dsts[i] = buf[off : off+sz]
			off += sz
		}
		refreshes := 0
		err := scatterExtents(bytes.NewReader(body), dsts, func() { refreshes++ })
		if total > len(body) {
			if err == nil {
				t.Fatalf("scattered %d bytes out of a %d-byte body without error", total, len(body))
			}
			return
		}
		if err != nil {
			t.Fatalf("body of %d bytes covers %d-byte extent table, got error %v", len(body), total, err)
		}
		if !bytes.Equal(buf, body[:total]) {
			t.Fatal("scattered bytes differ from the response body")
		}
		if refreshes != n {
			t.Fatalf("deadline refreshed %d times for %d extents", refreshes, n)
		}
	})
}
