package dpss

import (
	"bytes"
	"context"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// oddExtents cuts [0, size) into pieceLen-byte extents (the last one short),
// all scattering into one destination buffer. An odd pieceLen makes pieces
// straddle block boundaries.
func oddExtents(dst []byte, pieceLen int) []Extent {
	var exts []Extent
	for off := 0; off < len(dst); off += pieceLen {
		end := off + pieceLen
		if end > len(dst) {
			end = len(dst)
		}
		exts = append(exts, Extent{Off: int64(off), Len: end - off, Dst: dst[off:end]})
	}
	return exts
}

func patternData(n int) []byte {
	data := make([]byte, n)
	for i := range data {
		data[i] = byte(i*7 + i/251)
	}
	return data
}

// TestReadvScatterEndToEnd stages a multi-block dataset on a live cluster and
// reads it back through the vectored scatter path with extents that straddle
// block and server boundaries, over several stripes — the pipelined v2 wire.
func TestReadvScatterEndToEnd(t *testing.T) {
	c := startTestCluster(t, ClusterConfig{Servers: 3, DisksPerServer: 2})
	data := patternData(300*1024 + 17)
	client := c.NewClient(WithStripes(3))
	defer client.Close()
	if _, err := c.LoadBytes(client, "vec", data, 8<<10); err != nil {
		t.Fatal(err)
	}
	f, err := client.Open("vec")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := f.ReadvScatter(context.Background(), oddExtents(got, 4093)); err != nil {
		t.Fatalf("ReadvScatter: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("vectored read returned different bytes")
	}

	// The stripe pool negotiated v2 and actually moved bytes.
	stats := client.StripeStats()
	if len(stats) == 0 {
		t.Fatal("no stripe stats after a vectored read")
	}
	var total int64
	for _, st := range stats {
		if st.Wire != wireV2 {
			t.Fatalf("stripe %+v negotiated wire %d, want %d", st, st.Wire, wireV2)
		}
		total += st.Bytes
	}
	if total < int64(len(data)) {
		t.Fatalf("stripes carried %d bytes, want >= %d", total, len(data))
	}

	// A single-stripe client completes the same read (the -stripes 1 interop
	// guarantee).
	one := c.NewClient(WithStripes(1))
	defer one.Close()
	f1, err := one.Open("vec")
	if err != nil {
		t.Fatal(err)
	}
	got1 := make([]byte, len(data))
	if err := f1.ReadvScatter(context.Background(), oddExtents(got1, 8191)); err != nil {
		t.Fatalf("single-stripe ReadvScatter: %v", err)
	}
	if !bytes.Equal(got1, data) {
		t.Fatal("single-stripe vectored read returned different bytes")
	}
}

// v1BlockServer is a fake pre-v2 DPSS block server: it answers msgReadBlock
// and msgWriteBlock lock-step and replies msgError to anything newer —
// exactly how an old server greets a msgHello probe. It also tracks the peak
// number of reads in service at once, the lever the bounded-fan-out
// regression test asserts on.
type v1BlockServer struct {
	l    net.Listener
	disk *Disk
	hold time.Duration

	mu       sync.Mutex
	inflight int
	peak     int
}

func newV1BlockServer(t *testing.T, hold time.Duration) *v1BlockServer {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	s := &v1BlockServer{l: l, disk: NewDisk(), hold: hold}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go s.serve(conn)
		}
	}()
	return s
}

func (s *v1BlockServer) serve(conn net.Conn) {
	defer conn.Close()
	for {
		msgType, payload, err := readFrame(conn)
		if err != nil {
			return
		}
		switch msgType {
		case msgReadBlock:
			s.track(1)
			d := &decoder{buf: payload}
			dataset := d.str()
			block := int64(d.u64())
			var data []byte
			if d.err == nil {
				data, err = s.disk.ReadBlock(dataset, block)
			} else {
				err = d.err
			}
			if s.hold > 0 {
				time.Sleep(s.hold)
			}
			s.track(-1)
			if err != nil {
				writeFrame(conn, msgError, []byte(err.Error())) //nolint:errcheck
				continue
			}
			if werr := writeFrame(conn, msgOK, data); werr != nil {
				return
			}
		default:
			// A pre-v2 server has no idea what msgHello or msgReadv are.
			if werr := writeFrame(conn, msgError, []byte("dpss: unexpected message")); werr != nil {
				return
			}
		}
	}
}

func (s *v1BlockServer) track(d int) {
	s.mu.Lock()
	s.inflight += d
	if s.inflight > s.peak {
		s.peak = s.inflight
	}
	s.mu.Unlock()
}

func (s *v1BlockServer) peakInflight() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.peak
}

// v1File wires a File directly to a fake v1 server (no master involved),
// pre-loading the fake's disk with the dataset's blocks.
func v1File(t *testing.T, srv *v1BlockServer, client *Client, name string, data []byte, blockSize int) *File {
	t.Helper()
	for b := 0; b*blockSize < len(data); b++ {
		end := (b + 1) * blockSize
		if end > len(data) {
			end = len(data)
		}
		srv.disk.WriteBlock(name, int64(b), data[b*blockSize:end])
	}
	return &File{client: client, info: DatasetInfo{
		Name: name, Size: int64(len(data)), BlockSize: blockSize,
		Servers: []string{srv.l.Addr().String()},
	}}
}

// TestReadvScatterV1Fallback proves the transparent downgrade: against a
// server that predates the vectored protocol the same ReadvScatter call
// completes every extent via lock-step whole-block reads, and the stripe
// stats record the negotiated v1 wire.
func TestReadvScatterV1Fallback(t *testing.T) {
	srv := newV1BlockServer(t, 0)
	client := NewClient("127.0.0.1:1", WithStripes(2)) // master never contacted
	defer client.Close()
	data := patternData(100 * 1024)
	f := v1File(t, srv, client, "legacy", data, 4<<10)

	got := make([]byte, len(data))
	if err := f.ReadvScatter(context.Background(), oddExtents(got, 3001)); err != nil {
		t.Fatalf("ReadvScatter against v1 server: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("v1 fallback returned different bytes")
	}
	for _, st := range client.StripeStats() {
		if st.Wire != wireV1 {
			t.Fatalf("stripe %+v negotiated wire %d, want %d (v1 fallback)", st, st.Wire, wireV1)
		}
	}

	// The plain ReadAtContext path rides the same machinery.
	buf := make([]byte, 10_000)
	if n, err := f.ReadAtContext(context.Background(), buf, 1234); err != nil || n != len(buf) {
		t.Fatalf("ReadAtContext via v1 fallback: n=%d err=%v", n, err)
	}
	if !bytes.Equal(buf, data[1234:1234+len(buf)]) {
		t.Fatal("ReadAtContext via v1 fallback returned different bytes")
	}
}

// TestReadAtContextBoundedFanout is the regression test for the old
// goroutine-per-block fan-out: a 64-block read through a 2-stripe client must
// never have more than 2 reads in service at the server at once. The fake
// holds each read open briefly so any unbounded fan-out would be caught
// red-handed.
func TestReadAtContextBoundedFanout(t *testing.T) {
	const (
		blockSize = 2 << 10
		blocks    = 64
		stripes   = 2
	)
	srv := newV1BlockServer(t, 2*time.Millisecond)
	client := NewClient("127.0.0.1:1", WithStripes(stripes))
	defer client.Close()
	data := patternData(blocks * blockSize)
	f := v1File(t, srv, client, "bounded", data, blockSize)

	got := make([]byte, len(data))
	n, err := f.ReadAtContext(context.Background(), got, 0)
	if err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if n != len(data) || !bytes.Equal(got, data) {
		t.Fatalf("read %d bytes, equal=%v", n, bytes.Equal(got[:n], data[:n]))
	}
	if peak := srv.peakInflight(); peak > stripes {
		t.Fatalf("peak of %d reads in service, want <= %d (stripe-bounded fan-out)", peak, stripes)
	}
}

// TestReadvScatterSteadyStateAllocs pins the zero-copy promise: once the
// pools are warm, a vectored read's allocation count must not scale with the
// number of blocks it touches.
func TestReadvScatterSteadyStateAllocs(t *testing.T) {
	c := startTestCluster(t, ClusterConfig{Servers: 1, DisksPerServer: 2})
	const (
		blockSize = 4 << 10
		blocks    = 256
	)
	data := patternData(blocks * blockSize)
	client := c.NewClient(WithStripes(2))
	defer client.Close()
	if _, err := c.LoadBytes(client, "allocs", data, blockSize); err != nil {
		t.Fatal(err)
	}
	f, err := client.Open("allocs")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	exts := oddExtents(got, 4093)
	// Warm: version negotiation, connection dials, pool population.
	for i := 0; i < 3; i++ {
		if err := f.ReadvScatter(context.Background(), exts); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(10, func() {
		if err := f.ReadvScatter(context.Background(), exts); err != nil {
			t.Fatal(err)
		}
	})
	if !bytes.Equal(got, data) {
		t.Fatal("steady-state vectored read returned different bytes")
	}
	// AllocsPerRun counts the whole process, and the in-process block server
	// legitimately copies each block off its disk (~3 allocs/block server
	// side). The regression this guards against — the old goroutine + frame
	// buffer + response copy per block on the CLIENT — would push this well
	// past the bound; the client scatter path itself is pinned at zero by
	// TestScatterExtentsZeroAlloc.
	if perBlock := allocs / blocks; perBlock >= 6 {
		t.Fatalf("%.1f allocs per vectored read (%.2f per block), want < 6 per block", allocs, perBlock)
	}
}

// TestScatterExtentsZeroAlloc pins the zero-copy delivery path: scattering a
// response body into caller destinations allocates nothing — bytes go from
// the reader straight into the destination slices.
func TestScatterExtentsZeroAlloc(t *testing.T) {
	body := patternData(64 << 10)
	dsts := make([][]byte, 0, 64)
	buf := make([]byte, len(body))
	for off := 0; off < len(buf); off += 1021 {
		end := off + 1021
		if end > len(buf) {
			end = len(buf)
		}
		dsts = append(dsts, buf[off:end])
	}
	r := bytes.NewReader(body)
	refresh := func() {}
	allocs := testing.AllocsPerRun(100, func() {
		r.Reset(body)
		if err := scatterExtents(r, dsts, refresh); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("scatterExtents allocated %.1f times per call, want 0", allocs)
	}
	if !bytes.Equal(buf, body) {
		t.Fatal("scatter produced different bytes")
	}
}
