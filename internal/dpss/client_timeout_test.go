package dpss

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"
)

// TestWriteAtTimesOutAgainstStalledServer is the regression test for the
// operation-timeout write path: a block write whose server accepts the frame
// but never acknowledges it must fail within the client's op timeout even
// when the caller supplied no context deadline at all — before the timeout
// existed, this write pinned its goroutine forever.
func TestWriteAtTimesOutAgainstStalledServer(t *testing.T) {
	const blockSize = 1024
	srv := newStalledBlockServer(t, blockSize)

	client := NewClient("127.0.0.1:1", WithClientTimeout(150*time.Millisecond))
	defer client.Close()
	f := &File{client: client, info: DatasetInfo{
		Name: "wstall.t0000", Size: 4 * blockSize, BlockSize: blockSize,
		Servers: []string{srv.l.Addr().String()},
	}}

	buf := make([]byte, blockSize)
	start := time.Now()
	done := make(chan error, 1)
	go func() {
		_, err := f.WriteAtContext(context.Background(), buf, 0)
		done <- err
	}()
	var err error
	select {
	case err = <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("WriteAtContext did not return: the stalled block write was not bounded by the op timeout")
	}
	if err == nil {
		t.Fatal("WriteAtContext returned nil error against a stalled server")
	}
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("WriteAtContext error = %v, want a net timeout", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("stalled write took %v to fail, want roughly the 150ms op timeout", elapsed)
	}

	// The timed-out exchange died mid-conversation; its connection must have
	// been discarded. Once the server behaves, a fresh write succeeds on a
	// newly dialed connection instead of failing on the poisoned one.
	srv.stalled.Store(false)
	if _, err := f.WriteAtContext(context.Background(), buf, 0); err != nil {
		t.Fatalf("write after recovery: %v (poisoned connection reused?)", err)
	}
}

// TestWriteAtContextDeadlineBeatsOpTimeout: a caller context deadline shorter
// than the op timeout wins, and the error carries the context cause.
func TestWriteAtContextDeadlineBeatsOpTimeout(t *testing.T) {
	const blockSize = 256
	srv := newStalledBlockServer(t, blockSize)

	client := NewClient("127.0.0.1:1", WithClientTimeout(30*time.Second))
	defer client.Close()
	f := &File{client: client, info: DatasetInfo{
		Name: "wctx.t0000", Size: blockSize, BlockSize: blockSize,
		Servers: []string{srv.l.Addr().String()},
	}}

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := f.WriteAtContext(ctx, make([]byte, blockSize), 0)
	if err == nil {
		t.Fatal("WriteAtContext returned nil error against a stalled server")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("WriteAtContext error = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("context-bounded write took %v, want roughly the 100ms context deadline", elapsed)
	}
}
