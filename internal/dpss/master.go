package dpss

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"
)

// respWriteTimeout bounds one response write on a master or block-server
// connection: a client that stops draining cannot pin a serve loop (and the
// per-conn goroutine behind it) forever.
const respWriteTimeout = 30 * time.Second

// reply writes one response frame under a write deadline. Errors are
// deliberately dropped: a dead or stalled client surfaces on the serve
// loop's next read, which tears the connection down.
func reply(conn net.Conn, msgType byte, payload []byte) {
	conn.SetWriteDeadline(time.Now().Add(respWriteTimeout)) //nolint:errcheck
	writeFrame(conn, msgType, payload)                      //nolint:errcheck
}

// Master is the DPSS master: it keeps the dataset catalog, decides block
// placement (logical-to-physical mapping via round-robin striping over the
// registered block servers), performs access control, and answers client
// open/stat requests. It never touches block data itself — that flows
// directly between clients and block servers, which is what lets the DPSS
// scale by adding servers.
type Master struct {
	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
	servers  []string
	datasets map[string]DatasetInfo
	// allowed is the access-control list: empty means open access, otherwise
	// only listed client host prefixes may open datasets.
	allowed []string
	opens   int64
	denials int64
}

// NewMaster creates a master with no registered servers or datasets.
func NewMaster() *Master {
	return &Master{
		conns:    make(map[net.Conn]struct{}),
		datasets: make(map[string]DatasetInfo),
	}
}

// RegisterServer adds a block server address to the stripe set. Servers
// registered after a dataset is created do not affect that dataset's layout.
func (m *Master) RegisterServer(addr string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, s := range m.servers {
		if s == addr {
			return
		}
	}
	m.servers = append(m.servers, addr)
}

// Servers returns the registered block-server addresses in stripe order.
func (m *Master) Servers() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]string(nil), m.servers...)
}

// AllowClients installs an access-control list of client address prefixes
// (e.g. "127.0.0.1"). With an empty list all clients are allowed.
func (m *Master) AllowClients(prefixes ...string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.allowed = append([]string(nil), prefixes...)
}

// CreateDataset registers a dataset of the given size and block size
// (DefaultBlockSize if 0) and returns its placement info. It fails if no
// block servers are registered or the dataset already exists.
func (m *Master) CreateDataset(name string, size int64, blockSize int) (DatasetInfo, error) {
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	if size < 0 {
		return DatasetInfo{}, fmt.Errorf("dpss: negative dataset size %d", size)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.servers) == 0 {
		return DatasetInfo{}, errors.New("dpss: no block servers registered")
	}
	if _, exists := m.datasets[name]; exists {
		return DatasetInfo{}, fmt.Errorf("%w: %q", ErrDatasetExists, name)
	}
	info := DatasetInfo{
		Name:      name,
		Size:      size,
		BlockSize: blockSize,
		Servers:   append([]string(nil), m.servers...),
	}
	m.datasets[name] = info
	return info, nil
}

// Lookup returns a dataset's placement info.
func (m *Master) Lookup(name string) (DatasetInfo, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	info, ok := m.datasets[name]
	if !ok {
		return DatasetInfo{}, fmt.Errorf("%w: %q", ErrUnknownDataset, name)
	}
	return info, nil
}

// RemoveDataset drops a dataset from the catalog (blocks on the servers are
// the caller's to evict).
func (m *Master) RemoveDataset(name string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.datasets, name)
}

// Datasets returns the catalog's dataset names, sorted.
func (m *Master) Datasets() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.datasets))
	for n := range m.datasets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Listen starts serving the master protocol on addr and returns the bound
// address.
func (m *Master) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	m.mu.Lock()
	m.ln = ln
	m.mu.Unlock()
	m.wg.Add(1)
	go m.acceptLoop(ln)
	return ln.Addr().String(), nil
}

// Addr returns the master's listening address.
func (m *Master) Addr() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.ln == nil {
		return ""
	}
	return m.ln.Addr().String()
}

func (m *Master) acceptLoop(ln net.Listener) {
	defer m.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return
			}
			m.mu.Lock()
			closed := m.closed
			m.mu.Unlock()
			if closed {
				return
			}
			continue
		}
		m.mu.Lock()
		if m.closed {
			m.mu.Unlock()
			conn.Close()
			return
		}
		m.conns[conn] = struct{}{}
		m.mu.Unlock()
		m.wg.Add(1)
		go m.serveConn(conn)
	}
}

// clientAllowed applies the access-control list to a remote address.
func (m *Master) clientAllowed(remote string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.allowed) == 0 {
		return true
	}
	host, _, err := net.SplitHostPort(remote)
	if err != nil {
		host = remote
	}
	for _, p := range m.allowed {
		if len(host) >= len(p) && host[:len(p)] == p {
			return true
		}
	}
	return false
}

func (m *Master) serveConn(conn net.Conn) {
	defer m.wg.Done()
	defer func() {
		conn.Close()
		m.mu.Lock()
		delete(m.conns, conn)
		m.mu.Unlock()
	}()
	for {
		msgType, payload, err := readFrame(conn) //vislint:ignore boundedio idle request loop: a master connection legitimately waits forever for its client's next request
		if err != nil {
			return
		}
		switch msgType {
		case msgOpen, msgStat:
			if !m.clientAllowed(conn.RemoteAddr().String()) {
				m.mu.Lock()
				m.denials++
				m.mu.Unlock()
				reply(conn, msgError, []byte(ErrAccessDenied.Error()))
				continue
			}
			d := &decoder{buf: payload}
			name := d.str()
			info, err := m.Lookup(name)
			if err != nil {
				reply(conn, msgError, []byte(err.Error()))
				continue
			}
			m.mu.Lock()
			m.opens++
			m.mu.Unlock()
			reply(conn, msgOK, encodeDatasetInfo(info))
		case msgCreate:
			d := &decoder{buf: payload}
			name := d.str()
			size := int64(d.u64())
			blockSize := int(d.u32())
			info, err := m.CreateDataset(name, size, blockSize)
			if err != nil {
				reply(conn, msgError, []byte(err.Error()))
				continue
			}
			reply(conn, msgOK, encodeDatasetInfo(info))
		case msgRegister:
			d := &decoder{buf: payload}
			m.RegisterServer(d.str())
			reply(conn, msgOK, nil)
		case msgRemove:
			d := &decoder{buf: payload}
			m.RemoveDataset(d.str())
			reply(conn, msgOK, nil)
		case msgList:
			names := m.Datasets()
			e := &encoder{}
			e.u32(uint32(len(names)))
			for _, n := range names {
				e.str(n)
			}
			reply(conn, msgOK, e.buf)
		default:
			reply(conn, msgError, []byte(ErrProtocol.Error()))
		}
	}
}

// MasterStats summarizes master activity.
type MasterStats struct {
	Servers  int
	Datasets int
	Opens    int64
	Denials  int64
}

// Stats returns a snapshot of the master's counters.
func (m *Master) Stats() MasterStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return MasterStats{
		Servers:  len(m.servers),
		Datasets: len(m.datasets),
		Opens:    m.opens,
		Denials:  m.denials,
	}
}

// Close stops the master.
func (m *Master) Close() error {
	m.mu.Lock()
	m.closed = true
	ln := m.ln
	conns := make([]net.Conn, 0, len(m.conns))
	for c := range m.conns {
		conns = append(conns, c)
	}
	m.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	m.wg.Wait()
	return err
}
