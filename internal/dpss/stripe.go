package dpss

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"visapult/internal/netsim"
)

// This file is the client half of the striped, pipelined data path (see
// readv.go for the wire format). Each block server gets a stripePool of
// persistent connections; against a v2 server every stripe pipelines
// seq-correlated requests under a bounded in-flight window, and against a v1
// server the stripes fall back to lock-step exchanges — still parallel
// across the pool. A connection that fails mid-exchange is torn down and the
// next use of its stripe dials a replacement.

// DefaultStripes is how many parallel connections the client keeps per block
// server unless WithStripes overrides it.
const DefaultStripes = 4

// DefaultStripeWindow is the default bound on pipelined requests in flight
// per stripe.
const DefaultStripeWindow = 32

// WithStripes sets how many parallel connections ("stripes") the client
// keeps to each block server (minimum 1) — the paper's parallel-socket
// striped transfers. Block reads fan out over every stripe; writes, drops
// and compressed reads keep their own lock-step connection.
func WithStripes(n int) ClientOption {
	return func(c *Client) {
		if n >= 1 {
			c.stripes = n
		}
	}
}

// WithStripeWindow bounds how many pipelined requests one stripe may have in
// flight (minimum 1). The window replaces the old goroutine-per-block
// fan-out: a full window blocks the issuer, so a large read keeps at most
// stripes x window exchanges outstanding per server.
func WithStripeWindow(n int) ClientOption {
	return func(c *Client) {
		if n >= 1 {
			c.window = n
		}
	}
}

// stripePool is the set of stripe connections to one block server, plus the
// server's negotiated wire version.
type stripePool struct {
	c    *Client
	addr string

	mu  sync.Mutex
	ver int // negotiated wire version; 0 = not yet probed (guarded by mu)

	stripes []*stripe     // fixed at construction
	next    atomic.Uint32 // round-robin batch cursor
}

// stripe is one persistent connection slot in a pool: the conn itself (re-
// dialed after failures), its in-flight window, and transfer counters.
type stripe struct {
	pool *stripePool
	idx  int

	window chan struct{} // in-flight slots on the pipelined path

	connMu sync.Mutex  // guards cur and serializes frame writes / v1 exchanges
	cur    *stripeConn // guarded by connMu

	bytes atomic.Int64 // block bytes delivered on this stripe
	reads atomic.Int64 // exchanges completed
	fails atomic.Int64 // conns torn down mid-exchange
}

// stripeConn is one live connection of a stripe with its pipelining state.
// A fresh stripeConn replaces a dead one; the pending map never migrates, so
// a killed conn's bookkeeping cannot leak into its replacement.
type stripeConn struct {
	s    *stripe
	conn net.Conn
	out  io.Writer

	mu      sync.Mutex
	cond    *sync.Cond             // signalled when pending grows or the conn dies (guarded by mu)
	pending map[uint32]*stripeCall // guarded by mu
	nextSeq uint32                 // guarded by mu
	dead    bool                   // guarded by mu
}

// stripeCall is one in-flight pipelined request.
type stripeCall struct {
	sc  *stripeConn
	seq uint32
	// dsts are the scatter destinations, in wire order. delivering marks the
	// reader actively writing into them; cancelled marks a withdrawn call
	// whose late response must be drained without touching them. All three
	// are guarded by stripeConn.mu.
	dsts       [][]byte
	delivering bool
	cancelled  bool
	resp       chan error    // buffered (cap 1); receives the call's resolution exactly once
	done       chan struct{} // closed when the call resolves
}

// poolFor returns (creating if needed) the stripe pool for addr.
func (c *Client) poolFor(addr string) (*stripePool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, errors.New("dpss: client closed")
	}
	if p, ok := c.pools[addr]; ok {
		return p, nil
	}
	n := c.stripes
	if n < 1 {
		n = 1
	}
	w := c.window
	if w < 1 {
		w = 1
	}
	p := &stripePool{c: c, addr: addr, stripes: make([]*stripe, n)}
	for i := range p.stripes {
		p.stripes[i] = &stripe{pool: p, idx: i, window: make(chan struct{}, w)}
	}
	c.pools[addr] = p
	return p, nil
}

// pick returns the next stripe round-robin.
func (p *stripePool) pick() *stripe {
	return p.stripes[int(p.next.Add(1))%len(p.stripes)]
}

// version returns the server's negotiated wire version, probing it with a
// hello exchange on first use. The result is cached for the client's
// lifetime; a failed probe (timeout, refused conn) caches nothing so the
// next read retries.
func (p *stripePool) version(ctx context.Context) (int, error) {
	p.mu.Lock()
	v := p.ver
	p.mu.Unlock()
	if v != 0 {
		return v, nil
	}
	v, err := p.probeVersion(ctx)
	if err != nil {
		return 0, err
	}
	p.mu.Lock()
	if p.ver == 0 {
		p.ver = v
	}
	v = p.ver
	p.mu.Unlock()
	return v, nil
}

// probeVersion performs the hello exchange on a throwaway connection. Only a
// completed exchange classifies the server: a msgError reply (a v1 server's
// "unexpected message") or a reply that is not exactly one version word (a
// pre-v2 fake answering every request with block data) means v1; an I/O
// failure stays an error so a dead server is not misread as old.
func (p *stripePool) probeVersion(ctx context.Context) (int, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", p.addr)
	if err != nil {
		return 0, fmt.Errorf("dpss: dialing block server %s: %w", p.addr, err)
	}
	defer conn.Close()
	deadline, ok := ctx.Deadline()
	if !ok && p.c.opTimeout > 0 {
		deadline, ok = time.Now().Add(p.c.opTimeout), true
	}
	if ok {
		conn.SetDeadline(deadline) //nolint:errcheck // the exchange below surfaces a dead conn
	}
	stop := context.AfterFunc(ctx, func() { conn.SetDeadline(time.Unix(1, 0)) })
	defer stop()
	if err := writeFrame(p.c.wrapConn(conn), msgHello, appendHello(nil, wireV2)); err != nil {
		return 0, ctxPreferred(ctx, err)
	}
	respType, resp, err := readFrame(conn)
	if err != nil {
		return 0, ctxPreferred(ctx, err)
	}
	if respType != msgOK {
		return wireV1, nil
	}
	v, err := decodeHello(resp)
	if err != nil || v < wireV2 {
		return wireV1, nil
	}
	return wireV2, nil
}

// wrapConn applies the client's WAN emulation (shaper, request latency) to a
// freshly dialed conn's write side.
func (c *Client) wrapConn(conn net.Conn) io.Writer {
	if c.shaper != nil || c.latency > 0 {
		return netsim.NewShapedConn(conn, c.shaper, c.latency)
	}
	return conn
}

// connect returns the stripe's live connection, dialing a replacement when a
// previous failure poisoned it. On the pipelined path every fresh conn gets
// a reader goroutine that pumps responses until the conn dies.
func (s *stripe) connect(ctx context.Context, pipelined bool) (*stripeConn, error) {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	return s.connectLocked(ctx, pipelined)
}

func (s *stripe) connectLocked(ctx context.Context, pipelined bool) (*stripeConn, error) {
	if s.cur != nil {
		return s.cur, nil
	}
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", s.pool.addr)
	if err != nil {
		return nil, fmt.Errorf("dpss: dialing block server %s (stripe %d): %w", s.pool.addr, s.idx, err)
	}
	sc := &stripeConn{
		s:       s,
		conn:    conn,
		out:     s.pool.c.wrapConn(conn),
		pending: make(map[uint32]*stripeCall),
	}
	sc.cond = sync.NewCond(&sc.mu)
	s.cur = sc
	if pipelined {
		go sc.readLoop()
	}
	return sc, nil
}

// dropConn detaches a dead conn from its stripe so the next use re-dials.
// The identity check keeps a stale drop from tearing down a replacement.
func (s *stripe) dropConn(sc *stripeConn) {
	s.connMu.Lock()
	if s.cur == sc {
		s.cur = nil
	}
	s.connMu.Unlock()
}

// dropLocked is dropConn for callers already holding connMu (the lock-step
// path, which owns the conn for its whole exchange).
func (s *stripe) dropLocked(sc *stripeConn) {
	if s.cur == sc {
		s.cur = nil
	}
	sc.conn.Close()
}

// release returns one in-flight window slot.
func (s *stripe) release() { <-s.window }

// start acquires a window slot and launches one pipelined exchange. The
// returned call owns the slot until it resolves; on error the slot has
// already been released.
func (s *stripe) start(ctx context.Context, msgType byte, payload []byte, dsts [][]byte) (*stripeCall, error) {
	select {
	case s.window <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	sc, err := s.connect(ctx, true)
	if err != nil {
		s.release()
		return nil, err
	}
	return sc.send(ctx, msgType, payload, dsts)
}

// send registers a pipelined call and writes its request frame (seq prefix +
// payload) under the stripe's write lock with a write deadline, so a wedged
// peer cannot pin the sender. The payload buffer is fully consumed before
// send returns and may be reused by the caller.
func (sc *stripeConn) send(ctx context.Context, msgType byte, payload []byte, dsts [][]byte) (*stripeCall, error) {
	s := sc.s
	sc.mu.Lock()
	if sc.dead {
		sc.mu.Unlock()
		s.release()
		return nil, &connError{errors.New("dpss: stripe connection closed")}
	}
	sc.nextSeq++
	call := &stripeCall{
		sc: sc, seq: sc.nextSeq, dsts: dsts,
		resp: make(chan error, 1), done: make(chan struct{}),
	}
	sc.pending[call.seq] = call
	sc.cond.Signal()
	sc.mu.Unlock()

	s.connMu.Lock()
	deadline, ok := ctx.Deadline()
	if !ok && s.pool.c.opTimeout > 0 {
		deadline, ok = time.Now().Add(s.pool.c.opTimeout), true
	}
	if ok {
		sc.conn.SetWriteDeadline(deadline) //nolint:errcheck // the write below surfaces a dead conn
	} else {
		sc.conn.SetWriteDeadline(time.Time{}) //nolint:errcheck
	}
	err := writeFrameSeq(sc.out, msgType, call.seq, payload)
	s.connMu.Unlock()
	if err != nil {
		err = &connError{ctxPreferred(ctx, err)}
		sc.kill(err)
		return nil, err
	}
	return call, nil
}

// writeFrameSeq writes a [type][len][seq][payload] frame without gluing seq
// and payload into a fresh buffer.
func writeFrameSeq(w io.Writer, msgType byte, seq uint32, payload []byte) error {
	var hdr [9]byte
	hdr[0] = msgType
	binary.BigEndian.PutUint32(hdr[1:5], uint32(len(payload)+4))
	binary.BigEndian.PutUint32(hdr[5:9], seq)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// readLoop is the stripe's response pump: it sleeps until a call is pending
// (responses only ever follow requests, so an idle conn arms no deadline and
// burns no CPU), then reads one response frame and resolves the matching
// call, scattering block data straight into the caller's buffers. Any I/O or
// protocol failure kills the conn and fails every pending call; the next use
// of the stripe dials a replacement.
func (sc *stripeConn) readLoop() {
	c := sc.s.pool.c
	var hdr [9]byte
	for {
		if !sc.awaitPending() {
			return
		}
		// The whole header must arrive within one op timeout once requests
		// are outstanding; deliver refreshes the deadline per extent for
		// large scattered payloads.
		if c.opTimeout > 0 {
			sc.conn.SetReadDeadline(time.Now().Add(c.opTimeout)) //nolint:errcheck // the read below surfaces a dead conn
		} else {
			sc.conn.SetReadDeadline(time.Time{}) //nolint:errcheck
		}
		if _, err := io.ReadFull(sc.conn, hdr[:]); err != nil {
			sc.kill(&connError{err})
			return
		}
		msgType := hdr[0]
		n := binary.BigEndian.Uint32(hdr[1:5])
		seq := binary.BigEndian.Uint32(hdr[5:9])
		if n < 4 || n > maxFrame {
			sc.kill(&connError{fmt.Errorf("%w: response frame of %d bytes", ErrProtocol, n)})
			return
		}
		remain := int64(n) - 4
		sc.mu.Lock()
		call := sc.pending[seq]
		var cancelled bool
		if call != nil {
			call.delivering = true
			cancelled = call.cancelled
		}
		sc.mu.Unlock()
		if call == nil {
			sc.kill(&connError{fmt.Errorf("%w: response for unknown request %d", ErrProtocol, seq)})
			return
		}
		callErr, fatal := sc.deliver(call, msgType, remain, cancelled)
		sc.finish(call, callErr)
		if fatal != nil {
			sc.kill(&connError{fatal})
			return
		}
	}
}

// awaitPending blocks until a call is pending or the conn is dead, reporting
// whether the pump should keep reading.
func (sc *stripeConn) awaitPending() bool {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	for len(sc.pending) == 0 && !sc.dead {
		sc.cond.Wait()
	}
	return !sc.dead
}

// deliver consumes one response body. callErr is the call's resolution;
// fatal, when non-nil, means the conn is out of sync or broken and must die.
// A server-side error reply (msgError2) resolves only its call — the conn
// stays healthy for the other in-flight requests.
func (sc *stripeConn) deliver(call *stripeCall, msgType byte, remain int64, cancelled bool) (callErr, fatal error) {
	conn, c := sc.conn, sc.s.pool.c
	refresh := func() {
		if c.opTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(c.opTimeout)) //nolint:errcheck // the reads below surface a dead conn
		}
	}
	if cancelled {
		// The caller withdrew: drain the late response so the conn stays
		// usable for the other in-flight calls, touching nothing of the
		// caller's buffers.
		if _, err := io.CopyN(io.Discard, conn, remain); err != nil {
			return err, err
		}
		return context.Canceled, nil
	}
	switch msgType {
	case msgOK2:
		var want int64
		for _, d := range call.dsts {
			want += int64(len(d))
		}
		if remain != want {
			err := fmt.Errorf("%w: scatter response of %d bytes, requested %d", ErrProtocol, remain, want)
			return err, err
		}
		if err := scatterExtents(conn, call.dsts, refresh); err != nil {
			return err, err
		}
		sc.s.bytes.Add(want)
		return nil, nil
	case msgError2:
		if remain > 1<<20 {
			err := fmt.Errorf("%w: oversized error reply (%d bytes)", ErrProtocol, remain)
			return err, err
		}
		msg := make([]byte, remain)
		if _, err := io.ReadFull(conn, msg); err != nil {
			return err, err
		}
		return interpretError(string(msg)), nil
	default:
		err := fmt.Errorf("%w: unexpected response type %d", ErrProtocol, msgType)
		return err, err
	}
}

// finish resolves one call: it leaves the pending set, its waiter receives
// err, and its window slot returns to the stripe.
func (sc *stripeConn) finish(call *stripeCall, err error) {
	sc.mu.Lock()
	delete(sc.pending, call.seq)
	sc.mu.Unlock()
	close(call.done)
	call.resp <- err
	sc.s.reads.Add(1)
	sc.s.release()
}

// kill marks the conn dead, closes it, detaches it from its stripe and fails
// every pending call. A call the reader is actively delivering into is left
// for the reader itself to resolve — its in-progress scatter fails when the
// closed conn's read errors — so no two goroutines ever race on one call's
// buffers.
func (sc *stripeConn) kill(err error) {
	sc.mu.Lock()
	if sc.dead {
		sc.mu.Unlock()
		return
	}
	sc.dead = true
	var victims []*stripeCall
	for seq, call := range sc.pending {
		if call.delivering {
			continue
		}
		delete(sc.pending, seq)
		victims = append(victims, call)
	}
	sc.cond.Broadcast()
	sc.mu.Unlock()
	sc.conn.Close()
	sc.s.dropConn(sc)
	for _, call := range victims {
		close(call.done)
		call.resp <- err
		sc.s.release()
	}
	sc.s.fails.Add(1)
}

// wait blocks for the call's resolution. On ctx cancellation the call is
// withdrawn: if its response is not yet being delivered it is tombstoned
// (the reader later drains the bytes without touching the caller's buffers);
// if delivery has begun, the conn is poisoned and wait blocks until the
// delivery attempt finishes. Either way, once wait returns no goroutine will
// write into the call's destination slices.
func (call *stripeCall) wait(ctx context.Context) error {
	select {
	case err := <-call.resp:
		return err
	case <-ctx.Done():
	}
	sc := call.sc
	sc.mu.Lock()
	if cur, ok := sc.pending[call.seq]; ok && cur == call {
		if !call.delivering {
			call.cancelled = true
			call.dsts = nil
			sc.mu.Unlock()
			return ctx.Err()
		}
		sc.mu.Unlock()
		// Delivery raced the cancellation: poison the read so a mid-scatter
		// reader aborts promptly, then wait for it to let go of the buffers.
		// (The pump re-arms the deadline before its next header read, so a
		// poison that lands after a completed delivery is harmless.)
		sc.conn.SetReadDeadline(time.Unix(1, 0)) //nolint:errcheck
		<-call.done
		<-call.resp
		return ctx.Err()
	}
	sc.mu.Unlock()
	// Resolved between the select and the lock; drain the slot's send.
	<-call.resp
	return ctx.Err()
}

// callV1 performs one lock-step request/response on the stripe's conn — the
// pre-v2 protocol, still parallel across the pool's stripes. As with
// serverConn.callContext, a ctx fired mid-exchange poisons the conn with an
// immediate deadline and any failure discards the conn.
func (s *stripe) callV1(ctx context.Context, msgType byte, payload []byte) ([]byte, error) {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sc, err := s.connectLocked(ctx, false)
	if err != nil {
		return nil, err
	}
	deadline, ok := ctx.Deadline()
	if !ok && s.pool.c.opTimeout > 0 {
		deadline, ok = time.Now().Add(s.pool.c.opTimeout), true
	}
	if ok {
		sc.conn.SetDeadline(deadline) //nolint:errcheck // the exchange below surfaces a dead conn
	} else {
		sc.conn.SetDeadline(time.Time{}) //nolint:errcheck
	}
	stop := context.AfterFunc(ctx, func() { sc.conn.SetDeadline(time.Unix(1, 0)) })
	defer stop()
	if err := writeFrame(sc.out, msgType, payload); err != nil {
		s.dropLocked(sc)
		s.fails.Add(1)
		return nil, &connError{ctxPreferred(ctx, err)}
	}
	respType, resp, err := readFrame(sc.conn)
	if err != nil {
		s.dropLocked(sc)
		s.fails.Add(1)
		return nil, &connError{ctxPreferred(ctx, err)}
	}
	if ctx.Err() != nil {
		// The poison AfterFunc may have fired (or still be firing): the conn
		// cannot be pooled even though the exchange squeaked through.
		s.dropLocked(sc)
	}
	if respType == msgError {
		return nil, interpretError(string(resp))
	}
	s.reads.Add(1)
	s.bytes.Add(int64(len(resp)))
	return resp, nil
}

// close tears down the stripe's live conn (if any), failing its in-flight
// calls.
func (s *stripe) close(err error) {
	s.connMu.Lock()
	sc := s.cur
	s.cur = nil
	s.connMu.Unlock()
	if sc != nil {
		sc.kill(err)
	}
}

// StripeStat describes one stripe connection's activity, for the per-stripe
// throughput gauges in visapultd's /metrics and dpssctl's status columns.
type StripeStat struct {
	Server    string `json:"server"`
	Stripe    int    `json:"stripe"`
	Wire      int    `json:"wire"` // negotiated protocol version (0 until probed)
	Connected bool   `json:"connected"`
	Bytes     int64  `json:"bytes"`    // block bytes delivered on this stripe
	Reads     int64  `json:"reads"`    // exchanges completed on this stripe
	Failures  int64  `json:"failures"` // conns torn down mid-exchange
}

// StripeStats snapshots per-stripe transfer counters for every block server
// the client has read from, sorted by server address then stripe index.
func (c *Client) StripeStats() []StripeStat {
	c.mu.Lock()
	pools := make([]*stripePool, 0, len(c.pools))
	for _, p := range c.pools {
		pools = append(pools, p)
	}
	c.mu.Unlock()
	out := make([]StripeStat, 0, len(pools)*DefaultStripes)
	for _, p := range pools {
		p.mu.Lock()
		ver := p.ver
		p.mu.Unlock()
		for _, s := range p.stripes {
			s.connMu.Lock()
			connected := s.cur != nil
			s.connMu.Unlock()
			out = append(out, StripeStat{
				Server: p.addr, Stripe: s.idx, Wire: ver, Connected: connected,
				Bytes: s.bytes.Load(), Reads: s.reads.Load(), Failures: s.fails.Load(),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Server != out[j].Server {
			return out[i].Server < out[j].Server
		}
		return out[i].Stripe < out[j].Stripe
	})
	return out
}
