// Package fabric federates several DPSS clusters into one logical data
// cache — the paper's Combustion Corridor topology, where terascale datasets
// were staged from HPSS into multiple geographically distinct DPSS caches
// (Berkeley, Sandia, ANL) and the back end read from whichever cache was
// close and healthy.
//
// A Fabric manages N named clusters (each one master plus its block servers,
// reached through the ordinary dpss.Client). Datasets are placed with
// rendezvous (highest-random-weight) hashing of the dataset name over the
// cluster names, so every process that knows the member list — the staging
// pipeline, a local back end, a remote worker resolving the same serialized
// federation config — computes the same placement without any coordination.
// Time-varying datasets are sharded at timestep granularity: each
// dpss.TimestepDatasetName dataset hashes independently, spreading a
// time-series across the federation.
//
// Writes go to the first R writable clusters in rendezvous order; reads walk
// the same order, healthy clusters first, failing over transparently when a
// replica is dark or wedged. A failed (or per-attempt-timeout aborted) read
// marks its cluster unhealthy with exponential backoff; a later successful
// exchange — a read that got through, or an explicit Probe — restores it.
//
// Placement is versioned with epochs: each epoch names the member subset
// eligible for new placements, and advancing the epoch (the first step of a
// rebalance, drain-to-empty, or repair after an outage) re-hashes every
// dataset over the new eligible set. While a migration is in flight — the
// window between AdvanceEpoch and SealEpoch — reads consult the union of the
// current and the previous epoch's placements, so a run that opened a dataset
// under the old epoch never loses a replica it was using. The rebalance
// engine in rebalance.go moves the data; this file keeps the bookkeeping.
package fabric

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"visapult/internal/dpss"
)

// Fabric error conditions.
var (
	// ErrNoClusters: the fabric was built with no members.
	ErrNoClusters = errors.New("fabric: no clusters configured")
	// ErrUnknownCluster: a named cluster is not a member of the fabric.
	ErrUnknownCluster = errors.New("fabric: unknown cluster")
	// ErrAllReplicasFailed: every replica of a dataset failed a read or open;
	// the wrapped message lists the per-cluster errors.
	ErrAllReplicasFailed = errors.New("fabric: all replicas failed")
)

// ClusterSpec names one member cluster and its master address.
type ClusterSpec struct {
	// Name is the stable federation-wide identity the placement hash uses
	// ("berkeley", "sandia", ...). Renaming a cluster moves data.
	Name string
	// Master is the cluster's master address (host:port).
	Master string
}

// Config sizes a Fabric.
type Config struct {
	// Clusters are the member clusters. At least one is required.
	Clusters []ClusterSpec
	// Replication is the number of clusters each dataset is written to
	// (default 2, capped at the member count).
	Replication int
	// AttemptTimeout bounds one read attempt against one replica; past it the
	// attempt is aborted (through the context-aware client read), the cluster
	// is marked unhealthy, and the read fails over to the next replica. Zero
	// disables the bound: an attempt then fails only on an I/O error or the
	// caller's own context.
	AttemptTimeout time.Duration
	// BackoffBase and BackoffMax shape the unhealthy-cluster backoff window:
	// failure n keeps the cluster demoted for min(BackoffBase << (n-1),
	// BackoffMax). Defaults: 250ms base, 15s max.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Stripes is how many parallel connections each member client keeps per
	// block server (the paper's striped-socket transfers). Zero keeps the
	// dpss client's default; ClientOptions can still override per cluster.
	Stripes int
	// ClientOptions, when non-nil, supplies extra dpss.ClientOptions for the
	// named cluster's client (shapers, compression, instrumentation).
	ClientOptions func(cluster string) []dpss.ClientOption
	// Epoch, when non-nil, seeds the fabric's placement epoch instead of the
	// default (version 0, every member eligible). A remote worker resolving a
	// serialized federation passes the scheduler's epoch state here so both
	// sides compute identical placements mid-migration.
	Epoch *EpochState
}

// EpochState is the serializable snapshot of the fabric's placement epochs:
// everything another process needs to compute the same placements, including
// the previous epoch a migration is still draining from.
type EpochState struct {
	// Version counts epoch advances; 0 is the birth epoch.
	Version int
	// Eligible is the member subset new placements hash over, in
	// configuration order. Empty means every member.
	Eligible []string
	// PrevEligible is the previous epoch's eligible set, non-empty only while
	// a migration is in flight (between AdvanceEpoch and SealEpoch). Reads
	// consult the union of both epochs' placements during that window.
	PrevEligible []string
}

// Migrating reports whether the state describes an in-flight migration.
func (e EpochState) Migrating() bool { return len(e.PrevEligible) > 0 }

// member is one cluster plus its client and health record.
type member struct {
	name   string
	master string

	mu sync.Mutex
	// guarded by mu
	client *dpss.Client
	// guarded by mu
	healthy bool
	// failures counts consecutive failures; reset by any success.
	// guarded by mu
	failures int
	// guarded by mu
	downUntil time.Time
	// guarded by mu
	lastErr string
	// guarded by mu
	drained bool
}

// Fabric is a federation of DPSS clusters behind one placement and failover
// layer. All methods are safe for concurrent use.
type Fabric struct {
	cfg     Config
	members []*member
	byName  map[string]*member

	mu sync.Mutex
	// guarded by mu
	closed bool
	// epochVersion, eligible and prevEligible are the placement epoch
	// bookkeeping (see EpochState). eligible is never empty; prevEligible is
	// nil outside a migration window.
	epochVersion int      // guarded by mu
	eligible     []string // guarded by mu
	prevEligible []string // guarded by mu
	// rebalancing serializes the rebalance engine: one migration at a time.
	// guarded by mu
	rebalancing bool
}

// New validates cfg and builds a fabric. No connection is made until first
// use, so a fabric over dark clusters constructs fine and reports them
// unhealthy when touched.
func New(cfg Config) (*Fabric, error) {
	if len(cfg.Clusters) == 0 {
		return nil, ErrNoClusters
	}
	if cfg.Replication <= 0 {
		cfg.Replication = 2
	}
	if cfg.Replication > len(cfg.Clusters) {
		cfg.Replication = len(cfg.Clusters)
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 250 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 15 * time.Second
	}
	f := &Fabric{cfg: cfg, byName: make(map[string]*member)}
	for _, cs := range cfg.Clusters {
		if cs.Name == "" || cs.Master == "" {
			return nil, fmt.Errorf("fabric: cluster needs both a name and a master address, got %+v", cs)
		}
		if _, dup := f.byName[cs.Name]; dup {
			return nil, fmt.Errorf("fabric: duplicate cluster name %q", cs.Name)
		}
		m := &member{name: cs.Name, master: cs.Master, healthy: true}
		f.members = append(f.members, m)
		f.byName[cs.Name] = m
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.eligible = f.memberNames()
	if cfg.Epoch != nil {
		cur, err := f.validEligible(cfg.Epoch.Eligible)
		if err != nil {
			return nil, err
		}
		prev, err := f.validEligible(cfg.Epoch.PrevEligible)
		if err != nil {
			return nil, err
		}
		f.epochVersion = cfg.Epoch.Version
		if len(cur) > 0 {
			f.eligible = cur
		}
		if cfg.Epoch.Migrating() {
			f.prevEligible = prev
		}
	}
	return f, nil
}

// memberNames returns every member name in configuration order.
func (f *Fabric) memberNames() []string {
	names := make([]string, len(f.members))
	for i, m := range f.members {
		names[i] = m.name
	}
	return names
}

// validEligible checks that every name in the list is a member and returns a
// copy in configuration order (placement hashes are order-independent, but a
// canonical order keeps snapshots comparable).
func (f *Fabric) validEligible(names []string) ([]string, error) {
	if len(names) == 0 {
		return nil, nil
	}
	set := make(map[string]bool, len(names))
	for _, n := range names {
		if _, ok := f.byName[n]; !ok {
			return nil, fmt.Errorf("%w: %q in epoch eligible set", ErrUnknownCluster, n)
		}
		set[n] = true
	}
	out := make([]string, 0, len(set))
	for _, m := range f.members {
		if set[m.name] {
			out = append(out, m.name)
		}
	}
	return out, nil
}

// Replication returns the effective replication factor.
func (f *Fabric) Replication() int { return f.cfg.Replication }

// ClusterNames returns the member names in configuration order.
func (f *Fabric) ClusterNames() []string { return f.memberNames() }

// clientFor lazily builds the named member's client.
func (m *member) clientFor(cfg Config) *dpss.Client {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.client == nil {
		var opts []dpss.ClientOption
		if cfg.AttemptTimeout > 0 {
			// Align the client's own per-exchange bound with the fabric's
			// attempt bound, so even the ctx-less master exchanges (Stat,
			// Remove's catalog drop) fail over within AttemptTimeout.
			opts = append(opts, dpss.WithClientTimeout(cfg.AttemptTimeout))
		}
		if cfg.Stripes > 0 {
			opts = append(opts, dpss.WithStripes(cfg.Stripes))
		}
		if cfg.ClientOptions != nil {
			opts = append(opts, cfg.ClientOptions(m.name)...)
		}
		m.client = dpss.NewClient(m.master, opts...)
	}
	return m.client
}

// ---------------------------------------------------------------------------
// Placement.

// rendezvousScore is the highest-random-weight score of (dataset, cluster).
func rendezvousScore(dataset, cluster string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(dataset))
	h.Write([]byte{0})
	h.Write([]byte(cluster))
	return h.Sum64()
}

// rendezvousOrder sorts the given cluster names by their rendezvous score for
// the dataset, highest first. The order depends only on the dataset name and
// the cluster names — every process hashing the same set computes the same
// list, which is what lets placement survive serialization to remote workers.
func rendezvousOrder(dataset string, names []string) []string {
	type scored struct {
		name  string
		score uint64
	}
	ss := make([]scored, len(names))
	for i, n := range names {
		ss[i] = scored{n, rendezvousScore(dataset, n)}
	}
	sort.Slice(ss, func(i, j int) bool {
		if ss[i].score != ss[j].score {
			return ss[i].score > ss[j].score
		}
		return ss[i].name < ss[j].name
	})
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = s.name
	}
	return out
}

// Lookup returns every member cluster in the dataset's rendezvous order: the
// spill order reads ultimately fall back to. Placement-relevant subsets (the
// current epoch's eligible clusters) come first through readSet/Placement;
// Lookup itself is epoch-independent and covers the whole federation.
func (f *Fabric) Lookup(dataset string) []string {
	return rendezvousOrder(dataset, f.memberNames())
}

// Epoch returns the current placement epoch state.
func (f *Fabric) Epoch() EpochState {
	f.mu.Lock()
	defer f.mu.Unlock()
	return EpochState{
		Version:      f.epochVersion,
		Eligible:     append([]string(nil), f.eligible...),
		PrevEligible: append([]string(nil), f.prevEligible...),
	}
}

// AdvanceEpoch opens a new placement epoch over the given eligible member
// subset (nil or empty selects every member). The superseded epoch is kept as
// the previous epoch until SealEpoch, so in-flight reads keep consulting the
// placements they opened under. It returns the new state.
func (f *Fabric) AdvanceEpoch(eligible []string) (EpochState, error) {
	cur, err := f.validEligible(eligible)
	if err != nil {
		return EpochState{}, err
	}
	if len(cur) == 0 {
		cur = f.memberNames()
	}
	f.mu.Lock()
	f.prevEligible = f.eligible
	f.eligible = cur
	f.epochVersion++
	f.mu.Unlock()
	return f.Epoch(), nil
}

// SealEpoch ends the migration window: the previous epoch's placements stop
// being consulted. The rebalance engine calls it once every dataset has been
// re-replicated onto its current-epoch placement.
func (f *Fabric) SealEpoch() {
	f.mu.Lock()
	f.prevEligible = nil
	f.mu.Unlock()
}

// epochSets returns the current and (possibly nil) previous eligible sets.
func (f *Fabric) epochSets() (cur, prev []string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.eligible, f.prevEligible
}

// placementOver returns the dataset's placement over one eligible set: the
// first Replication clusters in the set's rendezvous order that are neither
// drained nor inside their failure backoff. When an outage inside the epoch
// leaves fewer than R of them available, the placement spills to available
// members *outside* the eligible set (federation-wide rendezvous order) — an
// epoch narrowed for a drain must not strand new data below R while healthy
// members exist elsewhere — and only then falls back to the nominal head of
// the eligible order rather than refusing to place.
func (f *Fabric) placementOver(dataset string, eligible []string) []string {
	now := time.Now()
	order := rendezvousOrder(dataset, eligible)
	r := f.cfg.Replication
	if r > len(f.members) {
		r = len(f.members)
	}
	out := make([]string, 0, r)
	for _, name := range order {
		if len(out) == r {
			break
		}
		if f.byName[name].available(now) {
			out = append(out, name)
		}
	}
	if len(out) < r { // spill beyond the epoch to healthy members
		for _, name := range f.Lookup(dataset) {
			if len(out) == r {
				break
			}
			if !contains(order, name) && f.byName[name].available(now) {
				out = append(out, name)
			}
		}
	}
	for _, name := range order { // not enough live clusters anywhere: fill nominally
		if len(out) == r {
			break
		}
		if !contains(out, name) {
			out = append(out, name)
		}
	}
	return out
}

// Placement returns the clusters a new dataset of this name is written to
// right now: the placement over the current epoch's eligible members. Writes
// always land on the new epoch — that is what drains data off members the
// epoch excluded.
func (f *Fabric) Placement(dataset string) []string {
	cur, _ := f.epochSets()
	return f.placementOver(dataset, cur)
}

// readSet returns every member in the dataset's read-priority order: the
// current epoch's placement first, then — during a migration — the previous
// epoch's placement (the replicas an in-flight run may still be using), then
// the rest of the federation as spill. readOrder re-sorts the result by
// health; this function fixes the placement-priority backbone.
func (f *Fabric) readSet(dataset string) []string {
	cur, prev := f.epochSets()
	out := f.placementOver(dataset, cur)
	if prev != nil {
		for _, name := range f.placementOver(dataset, prev) {
			if !contains(out, name) {
				out = append(out, name)
			}
		}
	}
	for _, name := range f.Lookup(dataset) {
		if !contains(out, name) {
			out = append(out, name)
		}
	}
	return out
}

func contains(ss []string, s string) bool {
	for _, v := range ss {
		if v == s {
			return true
		}
	}
	return false
}

// available reports whether the member should take new work at t: not
// drained and not inside a failure backoff window.
func (m *member) available(t time.Time) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return !m.drained && (m.healthy || t.After(m.downUntil))
}

// ---------------------------------------------------------------------------
// Health.

// ClusterHealth is a point-in-time snapshot of one member's health record.
type ClusterHealth struct {
	Name    string
	Master  string
	Healthy bool
	Drained bool
	// Failures counts consecutive failed exchanges; zero when healthy.
	Failures int
	// DownUntil is when the failure backoff expires and the cluster becomes
	// eligible for reads and placement again (its next exchange doubles as
	// the recovery probe). Zero when healthy.
	DownUntil time.Time
	LastError string
}

// Health returns a snapshot of every member, in configuration order.
func (f *Fabric) Health() []ClusterHealth {
	out := make([]ClusterHealth, len(f.members))
	for i, m := range f.members {
		m.mu.Lock()
		out[i] = ClusterHealth{
			Name: m.name, Master: m.master,
			Healthy: m.healthy, Drained: m.drained,
			Failures: m.failures, DownUntil: m.downUntil, LastError: m.lastErr,
		}
		m.mu.Unlock()
	}
	return out
}

// markFailure records a failed exchange with the member: consecutive failures
// back the cluster off exponentially, bounded by BackoffMax.
func (f *Fabric) markFailure(m *member, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.failures++
	backoff := f.cfg.BackoffBase << (m.failures - 1)
	if backoff > f.cfg.BackoffMax || backoff <= 0 {
		backoff = f.cfg.BackoffMax
	}
	m.healthy = false
	m.downUntil = time.Now().Add(backoff)
	if err != nil {
		m.lastErr = err.Error()
	}
}

// markSuccess records a successful exchange, restoring full health.
func (f *Fabric) markSuccess(m *member) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.healthy = true
	m.failures = 0
	m.downUntil = time.Time{}
	m.lastErr = ""
}

// Drain administratively removes a cluster from new placements and demotes
// it to last resort for reads, without touching the data it already holds —
// the first step of decommissioning or maintenance.
func (f *Fabric) Drain(cluster string) error {
	m, ok := f.byName[cluster]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownCluster, cluster)
	}
	m.mu.Lock()
	m.drained = true
	m.mu.Unlock()
	return nil
}

// Undrain returns a drained cluster to service.
func (f *Fabric) Undrain(cluster string) error {
	m, ok := f.byName[cluster]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownCluster, cluster)
	}
	m.mu.Lock()
	m.drained = false
	m.mu.Unlock()
	return nil
}

// Probe checks every member's master with a catalog request and updates the
// health records: any response proves the master up, a connection failure or
// a request outliving ctx marks it down (the caller's own cancellation,
// unlike its deadline, blames nobody). It returns the refreshed snapshot.
func (f *Fabric) Probe(ctx context.Context) []ClusterHealth {
	var wg sync.WaitGroup
	for _, m := range f.members {
		if ctx.Err() != nil {
			break
		}
		wg.Add(1)
		go func(m *member) {
			defer wg.Done()
			if _, err := f.listOn(ctx, m); err != nil {
				if !errors.Is(err, context.Canceled) {
					f.markFailure(m, err)
					m.resetClient()
				}
				return
			}
			f.markSuccess(m)
		}(m)
	}
	wg.Wait()
	return f.Health()
}

// resetClient discards the member's client so the next exchange re-dials;
// used after connection-level failures, whose poisoned sockets would
// otherwise fail every later call.
func (m *member) resetClient() {
	m.mu.Lock()
	c := m.client
	m.client = nil
	m.mu.Unlock()
	if c != nil {
		c.Close()
	}
}

// openOn opens a dataset on one member, bounded by ctx and the fabric's
// AttemptTimeout. The master protocol itself has no cancellation, so a
// wedged master (accepting socket, frozen process) would otherwise pin the
// failover loop in a deadline-free dial or read; here the bound tears the
// member's client down, which fails the blocked exchange immediately.
func (f *Fabric) openOn(ctx context.Context, m *member, name string) (*dpss.File, error) {
	client := m.clientFor(f.cfg)
	if f.cfg.AttemptTimeout <= 0 && ctx.Done() == nil {
		return client.Open(name)
	}
	actx := ctx
	cancel := func() {}
	if f.cfg.AttemptTimeout > 0 {
		actx, cancel = context.WithTimeout(ctx, f.cfg.AttemptTimeout)
	}
	defer cancel()
	type result struct {
		df  *dpss.File
		err error
	}
	ch := make(chan result, 1)
	go func() {
		df, err := client.Open(name)
		ch <- result{df, err}
	}()
	select {
	case r := <-ch:
		return r.df, r.err
	case <-actx.Done():
		m.resetClient() // unblocks the exchange; the goroutine then finishes
		<-ch
		return nil, fmt.Errorf("fabric: opening %q on %s: %w", name, m.name, actx.Err())
	}
}

// createOn is the dataset-create request with the same bound as openOn.
func (f *Fabric) createOn(ctx context.Context, m *member, name string, size int64, blockSize int) (dpss.DatasetInfo, error) {
	client := m.clientFor(f.cfg)
	type result struct {
		info dpss.DatasetInfo
		err  error
	}
	ch := make(chan result, 1)
	go func() {
		info, err := client.Create(name, size, blockSize)
		ch <- result{info, err}
	}()
	actx := ctx
	cancel := func() {}
	if f.cfg.AttemptTimeout > 0 {
		actx, cancel = context.WithTimeout(ctx, f.cfg.AttemptTimeout)
	}
	defer cancel()
	select {
	case r := <-ch:
		return r.info, r.err
	case <-actx.Done():
		m.resetClient()
		<-ch
		return dpss.DatasetInfo{}, actx.Err()
	}
}

// listOn is the master catalog request with the same bound as openOn.
func (f *Fabric) listOn(ctx context.Context, m *member) ([]string, error) {
	client := m.clientFor(f.cfg)
	type result struct {
		names []string
		err   error
	}
	ch := make(chan result, 1)
	go func() {
		names, err := client.ListDatasets()
		ch <- result{names, err}
	}()
	select {
	case r := <-ch:
		return r.names, r.err
	case <-ctx.Done():
		m.resetClient()
		<-ch
		return nil, ctx.Err()
	}
}

// readOrder sorts the dataset's rendezvous order for a read: available
// clusters first (placement order preserved within each class), then
// backed-off ones, drained last. Everything stays in the list — a demoted
// cluster is still attempted as last resort, and succeeding there restores
// it, which is what makes the next read after an outage the recovery probe.
func (f *Fabric) readOrder(replicas []string) []*member {
	now := time.Now()
	var avail, down, drained []*member
	for _, name := range replicas {
		m, ok := f.byName[name]
		if !ok {
			continue
		}
		m.mu.Lock()
		isDrained := m.drained
		isDown := !m.healthy && now.Before(m.downUntil)
		m.mu.Unlock()
		switch {
		case isDrained:
			drained = append(drained, m)
		case isDown:
			down = append(down, m)
		default:
			avail = append(avail, m)
		}
	}
	out := append(avail, down...)
	return append(out, drained...)
}

// ---------------------------------------------------------------------------
// Datasets: staging and catalog.

// Create registers a dataset on each of its placement clusters and returns
// the clusters that accepted it, in placement order. Creation is best-effort
// per replica: as long as one cluster accepts, the dataset exists (with
// reduced redundancy); with zero acceptors the first error is returned.
func (f *Fabric) Create(ctx context.Context, name string, size int64, blockSize int) ([]string, error) {
	placement := f.Placement(name)
	var accepted []string
	var firstErr error
	for _, cluster := range placement {
		if err := ctx.Err(); err != nil {
			return accepted, err
		}
		m := f.byName[cluster]
		if _, err := f.createOn(ctx, m, name, size, blockSize); err != nil {
			// Idempotent re-create: a cluster already holding the dataset is
			// an acceptor (re-staging overwrites its blocks), not a failure.
			if !errors.Is(err, dpss.ErrDatasetExists) {
				if !errors.Is(err, context.Canceled) {
					f.markFailure(m, err)
					m.resetClient()
				}
				if firstErr == nil {
					firstErr = fmt.Errorf("fabric: creating %q on %s: %w", name, cluster, err)
				}
				continue
			}
		}
		f.markSuccess(m)
		accepted = append(accepted, cluster)
	}
	if len(accepted) == 0 {
		if firstErr == nil {
			firstErr = fmt.Errorf("fabric: creating %q: no placement clusters", name)
		}
		return nil, firstErr
	}
	return accepted, nil
}

// StageOn writes a dataset's bytes to one named cluster, block by block (the
// dataset must have been created there first). onChunk, when non-nil, is
// called after every block write with the cumulative byte count — the
// per-cluster progress feed of the warming pipeline.
func (f *Fabric) StageOn(ctx context.Context, cluster, name string, data []byte, onChunk func(staged int64)) error {
	m, ok := f.byName[cluster]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownCluster, cluster)
	}
	file, err := f.openOn(ctx, m, name)
	if err != nil {
		if !errors.Is(err, context.Canceled) {
			f.markFailure(m, err)
			m.resetClient()
		}
		return fmt.Errorf("fabric: opening %q on %s: %w", name, cluster, err)
	}
	blockSize := file.Info().BlockSize
	var off int64
	for off < int64(len(data)) {
		if err := ctx.Err(); err != nil {
			return err
		}
		end := off + int64(blockSize)
		if end > int64(len(data)) {
			end = int64(len(data))
		}
		if _, err := file.WriteAt(data[off:end], off); err != nil {
			f.markFailure(m, err)
			m.resetClient()
			return fmt.Errorf("fabric: writing %q block at %d on %s: %w", name, off, cluster, err)
		}
		off = end
		if onChunk != nil {
			onChunk(off)
		}
	}
	f.markSuccess(m)
	return nil
}

// LoadBytes creates a dataset and writes data to all of its replicas
// concurrently, returning the clusters that hold a complete copy. Like
// Create it degrades rather than fails: an error is returned only when no
// replica ends up complete.
func (f *Fabric) LoadBytes(ctx context.Context, name string, data []byte, blockSize int) ([]string, error) {
	accepted, err := f.Create(ctx, name, int64(len(data)), blockSize)
	if err != nil {
		return nil, err
	}
	type result struct {
		cluster string
		err     error
	}
	results := make(chan result, len(accepted))
	for _, cluster := range accepted {
		go func(cluster string) {
			results <- result{cluster, f.StageOn(ctx, cluster, name, data, nil)}
		}(cluster)
	}
	var complete []string
	var firstErr error
	for range accepted {
		r := <-results
		if r.err != nil {
			if firstErr == nil {
				firstErr = r.err
			}
			continue
		}
		complete = append(complete, r.cluster)
	}
	if len(complete) == 0 {
		return nil, firstErr
	}
	sort.Strings(complete)
	return complete, nil
}

// DatasetReplicas describes one dataset's presence across the federation.
type DatasetReplicas struct {
	Name string
	// Clusters holds the dataset, in rendezvous (read-priority) order.
	Clusters []string
}

// Datasets returns the federation-wide catalog: the union of every reachable
// member's catalog (masters that do not answer are skipped and marked
// unhealthy), each dataset annotated with the clusters holding it.
func (f *Fabric) Datasets(ctx context.Context) []DatasetReplicas {
	out, _ := f.catalogScan(ctx)
	return out
}

// catalogScan is Datasets plus the set of members that answered the scan —
// the rebalance planner restricts copy targets to them, so a freshly dead
// cluster whose backoff already expired is never chosen to receive data it
// cannot take.
func (f *Fabric) catalogScan(ctx context.Context) ([]DatasetReplicas, map[string]bool) {
	holders := make(map[string][]string)
	live := make(map[string]bool, len(f.members))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, m := range f.members {
		if ctx.Err() != nil {
			break
		}
		wg.Add(1)
		go func(m *member) {
			defer wg.Done()
			names, err := f.listOn(ctx, m)
			if err != nil {
				if !errors.Is(err, context.Canceled) {
					f.markFailure(m, err)
					m.resetClient()
				}
				return
			}
			f.markSuccess(m)
			mu.Lock()
			live[m.name] = true
			for _, n := range names {
				holders[n] = append(holders[n], m.name)
			}
			mu.Unlock()
		}(m)
	}
	wg.Wait()
	out := make([]DatasetReplicas, 0, len(holders))
	for name, clusters := range holders {
		// Order holders by the dataset's read priority (epoch-aware).
		order := f.readSet(name)
		sorted := make([]string, 0, len(clusters))
		for _, c := range order {
			if contains(clusters, c) {
				sorted = append(sorted, c)
			}
		}
		out = append(out, DatasetReplicas{Name: name, Clusters: sorted})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, live
}

// ---------------------------------------------------------------------------
// Reads: replica-aware open and failover.

// File is an open federated dataset: reads walk the replica list in health
// order and fail over transparently. It implements io.ReaderAt and the
// context-aware read the back end's sources use.
type File struct {
	fb   *Fabric
	name string
	info dpss.DatasetInfo

	mu sync.Mutex
	// per-cluster handles, lazily opened
	// guarded by mu
	files map[string]*dpss.File
}

// Open resolves the dataset against its replicas (first responder wins) and
// returns a failover-capable handle. Every replica down or ignorant of the
// dataset yields ErrAllReplicasFailed with the per-cluster detail. The handle
// is epoch-conscious: each read re-resolves the replica priority against the
// fabric's current (and, mid-migration, previous) placement epoch, so an
// epoch advanced after Open neither aborts the handle nor hides the replicas
// it was reading from.
func (f *Fabric) Open(ctx context.Context, name string) (*File, error) {
	var errs []string
	for _, m := range f.readOrder(f.readSet(name)) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		df, err := f.openOn(ctx, m, name)
		if err != nil {
			if errors.Is(err, dpss.ErrUnknownDataset) {
				// A cluster that answered "unknown dataset" is healthy — it
				// just never received a copy (spilled placement) — and the
				// completed exchange restores a backed-off member.
				f.markSuccess(m)
			} else if !errors.Is(err, context.Canceled) {
				f.markFailure(m, err)
				m.resetClient()
			}
			errs = append(errs, fmt.Sprintf("%s: %v", m.name, err))
			continue
		}
		f.markSuccess(m)
		file := &File{fb: f, name: name, info: df.Info(),
			files: map[string]*dpss.File{m.name: df}}
		return file, nil
	}
	return nil, fmt.Errorf("%w: opening %q: [%s]", ErrAllReplicasFailed, name, strings.Join(errs, "; "))
}

// Info returns the dataset layout (as reported by the replica that answered
// Open).
func (f *File) Info() dpss.DatasetInfo { return f.info }

// Size returns the dataset size in bytes.
func (f *File) Size() int64 { return f.info.Size }

// handle returns (opening if needed) this dataset's handle on one cluster.
// The open is bounded like any other replica attempt, so a wedged master
// cannot pin the failover loop.
func (f *File) handle(ctx context.Context, m *member) (*dpss.File, error) {
	f.mu.Lock()
	if df, ok := f.files[m.name]; ok {
		f.mu.Unlock()
		return df, nil
	}
	f.mu.Unlock()
	df, err := f.fb.openOn(ctx, m, f.name)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	f.files[m.name] = df
	f.mu.Unlock()
	return df, nil
}

// forgetHandle forgets this dataset's handle on one cluster so the next
// attempt re-opens it; the cluster's client is left alone.
func (f *File) forgetHandle(m *member) {
	f.mu.Lock()
	delete(f.files, m.name)
	f.mu.Unlock()
}

// dropHandle is forgetHandle plus a client reset, for failures whose
// connections must not be reused.
func (f *File) dropHandle(m *member) {
	f.forgetHandle(m)
	m.resetClient()
}

// ReadAt reads len(p) bytes at offset off with replica failover. It
// implements io.ReaderAt, whose signature has no context; each replica
// attempt is still bounded by the fabric's AttemptTimeout.
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	return f.ReadAtContext(context.Background(), p, off) //vislint:ignore ctxbackground io.ReaderAt compatibility shim; see ReadAtContext
}

// ReadAtContext is ReadAt under a context. Replicas are tried in health
// order; one attempt is bounded by the fabric's AttemptTimeout (when set),
// so a read wedged on a stalled block server is aborted in flight — the
// PR 3 context-aware client read — its cluster marked unhealthy, and the
// same range re-read from the next replica. Cancelling ctx itself aborts the
// whole read without blaming the replica. With every replica failed the
// error is ErrAllReplicasFailed carrying the per-cluster detail — a fully
// dark dataset reports, it does not hang.
func (f *File) ReadAtContext(ctx context.Context, p []byte, off int64) (int, error) {
	// Re-resolve the replica priority per read: an epoch advance mid-run must
	// steer this handle to the new placement without invalidating it, and the
	// migration window keeps the old epoch's replicas in the set.
	order := f.fb.readOrder(f.fb.readSet(f.name))
	var errs []string
	for _, m := range order {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		df, err := f.handle(ctx, m)
		if err == nil {
			attemptCtx := ctx
			cancel := func() {}
			if f.fb.cfg.AttemptTimeout > 0 {
				attemptCtx, cancel = context.WithTimeout(ctx, f.fb.cfg.AttemptTimeout)
			}
			n, rerr := df.ReadAtContext(attemptCtx, p, off)
			cancel()
			if rerr == nil || rerr == io.EOF {
				f.fb.markSuccess(m)
				return n, rerr
			}
			err = rerr
		}
		if ctxErr := ctx.Err(); ctxErr != nil { // the caller's own cancellation
			return 0, ctxErr
		}
		if errors.Is(err, dpss.ErrUnknownDataset) {
			// Healthy cluster without a copy: the completed exchange restores
			// a backed-off member; forget the handle so a later staging is
			// picked up.
			f.fb.markSuccess(m)
			f.forgetHandle(m)
		} else {
			f.fb.markFailure(m, err)
			f.dropHandle(m)
		}
		errs = append(errs, fmt.Sprintf("%s: %v", m.name, err))
	}
	return 0, fmt.Errorf("%w: reading %q at %d: [%s]", ErrAllReplicasFailed, f.name, off, strings.Join(errs, "; "))
}

// ReadvScatter reads every extent into its destination slice in one
// vectored, striped pass (see dpss.File.ReadvScatter) with replica failover:
// a batch that fails mid-read — a cluster killed while extents are in
// flight — is retried in full against the next replica, so destinations are
// simply overwritten with the same bytes and the caller never observes a
// torn extent. Error accounting mirrors ReadAtContext: a failed attempt
// marks its cluster unhealthy, a healthy cluster without a copy stays
// healthy, and with every replica failed the error is ErrAllReplicasFailed.
func (f *File) ReadvScatter(ctx context.Context, exts []dpss.Extent) error {
	order := f.fb.readOrder(f.fb.readSet(f.name))
	var errs []string
	for _, m := range order {
		if err := ctx.Err(); err != nil {
			return err
		}
		df, err := f.handle(ctx, m)
		if err == nil {
			attemptCtx := ctx
			cancel := func() {}
			if f.fb.cfg.AttemptTimeout > 0 {
				attemptCtx, cancel = context.WithTimeout(ctx, f.fb.cfg.AttemptTimeout)
			}
			rerr := df.ReadvScatter(attemptCtx, exts)
			cancel()
			if rerr == nil {
				f.fb.markSuccess(m)
				return nil
			}
			err = rerr
		}
		if ctxErr := ctx.Err(); ctxErr != nil { // the caller's own cancellation
			return ctxErr
		}
		if errors.Is(err, dpss.ErrUnknownDataset) {
			f.fb.markSuccess(m)
			f.forgetHandle(m)
		} else {
			f.fb.markFailure(m, err)
			f.dropHandle(m)
		}
		errs = append(errs, fmt.Sprintf("%s: %v", m.name, err))
	}
	return fmt.Errorf("%w: vectored read of %q: [%s]", ErrAllReplicasFailed, f.name, strings.Join(errs, "; "))
}

// StripeStats returns every member client's per-stripe transfer counters,
// keyed by cluster name. Clusters whose client has not been built (never
// read from) are omitted.
func (f *Fabric) StripeStats() map[string][]dpss.StripeStat {
	out := make(map[string][]dpss.StripeStat, len(f.members))
	for _, m := range f.members {
		m.mu.Lock()
		c := m.client
		m.mu.Unlock()
		if c == nil {
			continue
		}
		if st := c.StripeStats(); len(st) > 0 {
			out[m.name] = st
		}
	}
	return out
}

// Stripes returns the configured per-server stripe count (0 = client
// default).
func (f *Fabric) Stripes() int { return f.cfg.Stripes }

// Close releases the handle. The fabric's connections stay up for other
// files.
func (f *File) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	for name, df := range f.files {
		df.Close()
		delete(f.files, name)
	}
	return nil
}

// Close tears down every member client.
func (f *Fabric) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	f.mu.Unlock()
	var first error
	for _, m := range f.members {
		m.mu.Lock()
		c := m.client
		m.client = nil
		m.mu.Unlock()
		if c != nil {
			if err := c.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}
