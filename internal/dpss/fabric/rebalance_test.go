package fabric

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"visapult/internal/dpss"
)

// stageSeries stages a few small datasets and returns their names and the
// staged payload (identical for all of them, varied by first byte).
func stageSeries(t *testing.T, fb *Fabric, base string, n int) ([]string, [][]byte) {
	t.Helper()
	ctx := context.Background()
	names := make([]string, n)
	payloads := make([][]byte, n)
	for i := 0; i < n; i++ {
		data := make([]byte, 48*1024)
		for j := range data {
			data[j] = byte((j + i*7) % 251)
		}
		names[i] = dpss.TimestepDatasetName(base, i)
		payloads[i] = data
		if _, err := fb.LoadBytes(ctx, names[i], data, 16*1024); err != nil {
			t.Fatalf("staging %s: %v", names[i], err)
		}
	}
	return names, payloads
}

// holdersOf returns the clusters of the federation catalog holding name.
func holdersOf(t *testing.T, fb *Fabric, name string) []string {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for _, d := range fb.Datasets(ctx) {
		if d.Name == name {
			return d.Clusters
		}
	}
	return nil
}

func TestEpochAdvanceRedirectsPlacementAndKeepsReadsAlive(t *testing.T) {
	fb, _ := startFederation(t, 3, 2, time.Second)
	ctx := context.Background()
	names, payloads := stageSeries(t, fb, "epoch", 2)

	// Open a handle under the birth epoch.
	f, err := fb.Open(ctx, names[0])
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	oldPlacement := fb.Placement(names[0])
	// Advance the epoch without the dataset's primary: new placements must
	// avoid it, but the open handle (and fresh opens) must keep reading the
	// old replicas through the migration window.
	var eligible []string
	for _, c := range fb.ClusterNames() {
		if c != oldPlacement[0] {
			eligible = append(eligible, c)
		}
	}
	state, err := fb.AdvanceEpoch(eligible)
	if err != nil {
		t.Fatal(err)
	}
	if state.Version != 1 || !state.Migrating() {
		t.Fatalf("epoch after advance = %+v, want version 1 mid-migration", state)
	}
	for _, c := range fb.Placement(names[0]) {
		if c == oldPlacement[0] {
			t.Fatalf("new-epoch placement %v still uses excluded cluster %s", fb.Placement(names[0]), oldPlacement[0])
		}
	}

	got := make([]byte, len(payloads[0]))
	if _, err := f.ReadAtContext(ctx, got, 0); err != nil {
		t.Fatalf("read through open handle mid-migration: %v", err)
	}
	f2, err := fb.Open(ctx, names[1])
	if err != nil {
		t.Fatalf("fresh open mid-migration: %v", err)
	}
	f2.Close()

	fb.SealEpoch()
	if e := fb.Epoch(); e.Migrating() {
		t.Fatalf("epoch still migrating after seal: %+v", e)
	}

	// Epoch state round-trips through Config: a second fabric seeded with the
	// serialized state computes identical placements (the remote-worker
	// contract).
	var specs []ClusterSpec
	for _, c := range fb.ClusterNames() {
		specs = append(specs, ClusterSpec{Name: c, Master: "127.0.0.1:1"})
	}
	st := fb.Epoch()
	fb2, err := New(Config{Clusters: specs, Replication: 2, Epoch: &st})
	if err != nil {
		t.Fatal(err)
	}
	defer fb2.Close()
	for i := 0; i < 16; i++ {
		name := dpss.TimestepDatasetName("agree", i)
		p1, p2 := fb.Placement(name), fb2.Placement(name)
		if fmt.Sprint(p1) != fmt.Sprint(p2) {
			t.Fatalf("placement disagrees across serialized epoch: %v vs %v", p1, p2)
		}
	}

	if _, err := fb.AdvanceEpoch([]string{"not-a-member"}); !errors.Is(err, ErrUnknownCluster) {
		t.Fatalf("AdvanceEpoch(bogus) = %v, want ErrUnknownCluster", err)
	}
}

func TestRebalanceMigratesOntoNewEpoch(t *testing.T) {
	fb, _ := startFederation(t, 3, 2, time.Second)
	names, payloads := stageSeries(t, fb, "rebal", 4)

	// Administratively drain c0, then rebalance: every dataset must end up
	// fully placed on the remaining members, with per-move progress reported.
	if err := fb.Drain("c0"); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var sawCopying, sawDone bool
	report, err := fb.Rebalance(context.Background(), RebalanceOptions{
		OnMove: func(mv DatasetMove) {
			mu.Lock()
			defer mu.Unlock()
			switch mv.State {
			case MoveCopying:
				sawCopying = true
			case MoveDone:
				sawDone = true
				if mv.Copied != mv.Bytes || mv.Bytes == 0 {
					t.Errorf("done move %+v has copied %d of %d bytes", mv, mv.Copied, mv.Bytes)
				}
			}
		},
	})
	if err != nil {
		t.Fatalf("Rebalance: %v", err)
	}
	if report.Kind != KindRebalance || report.Epoch != 1 {
		t.Fatalf("report = %+v, want kind rebalance on epoch 1", report)
	}
	if e := fb.Epoch(); e.Migrating() {
		t.Fatalf("epoch not sealed after successful rebalance: %+v", e)
	}
	// Some dataset's placement must have shifted off c0 — and all of them
	// must now hold full current-epoch placements.
	for _, name := range names {
		placement := fb.Placement(name)
		holders := holdersOf(t, fb, name)
		for _, want := range placement {
			if !contains(holders, want) {
				t.Fatalf("%s placement %v not covered by holders %v after rebalance", name, placement, holders)
			}
			if want == "c0" {
				t.Fatalf("%s placed on drained c0 after rebalance", name)
			}
		}
	}
	// Moves actually moved data, and it reads back intact everywhere.
	moved := false
	for _, mv := range report.Moves {
		if mv.State == MoveDone {
			moved = true
		}
	}
	if !moved || !sawCopying || !sawDone {
		t.Fatalf("no completed moves observed: report %+v (copying %v done %v)", report.Moves, sawCopying, sawDone)
	}
	ctx := context.Background()
	for i, name := range names {
		f, err := fb.Open(ctx, name)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, len(payloads[i]))
		if _, err := f.ReadAtContext(ctx, got, 0); err != nil {
			t.Fatalf("reading %s after rebalance: %v", name, err)
		}
		f.Close()
		for j := range got {
			if got[j] != payloads[i][j] {
				t.Fatalf("%s byte %d = %d, want %d after rebalance", name, j, got[j], payloads[i][j])
			}
		}
	}
}

func TestRepairRestoresReplicationFactor(t *testing.T) {
	fb, clusters := startFederation(t, 3, 2, 500*time.Millisecond)
	names, payloads := stageSeries(t, fb, "repair", 4)

	// Kill c0 outright: every dataset it replicated is now below R.
	clusters[0].Close()
	degraded := 0
	for _, name := range names {
		if len(holdersOf(t, fb, name)) < 2 {
			degraded++
		}
	}
	if degraded == 0 {
		t.Fatal("killing c0 degraded nothing; placement never used it?")
	}

	report, err := fb.Repair(context.Background(), RebalanceOptions{})
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	if report.Kind != KindRepair {
		t.Fatalf("report kind = %q, want repair", report.Kind)
	}
	// Repair never advances the epoch.
	if e := fb.Epoch(); e.Version != 0 || e.Migrating() {
		t.Fatalf("repair moved the epoch: %+v", e)
	}
	ctx := context.Background()
	for i, name := range names {
		holders := holdersOf(t, fb, name)
		if len(holders) < 2 {
			t.Fatalf("%s has %d live replicas after repair, want 2 (holders %v)", name, len(holders), holders)
		}
		f, err := fb.Open(ctx, name)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, len(payloads[i]))
		if _, err := f.ReadAtContext(ctx, got, 0); err != nil {
			t.Fatalf("reading %s after repair: %v", name, err)
		}
		f.Close()
	}
}

func TestDrainToEmptyLeavesZeroDatasetsAndReadersAlive(t *testing.T) {
	fb, clusters := startFederation(t, 3, 2, time.Second)
	names, payloads := stageSeries(t, fb, "empty", 4)

	// A reader hammers the series concurrently with the drain; it must never
	// see an error.
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	readErr := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := make([]byte, len(payloads[0]))
		for i := 0; ctx.Err() == nil; i++ {
			name := names[i%len(names)]
			f, err := fb.Open(context.Background(), name)
			if err != nil {
				readErr <- fmt.Errorf("open %s: %w", name, err)
				return
			}
			_, err = f.ReadAtContext(context.Background(), buf, 0)
			f.Close()
			if err != nil {
				readErr <- fmt.Errorf("read %s: %w", name, err)
				return
			}
		}
	}()

	report, err := fb.DrainToEmpty(context.Background(), "c1", RebalanceOptions{})
	cancel()
	wg.Wait()
	select {
	case err := <-readErr:
		t.Fatalf("concurrent reader failed during drain-to-empty: %v", err)
	default:
	}
	if err != nil {
		t.Fatalf("DrainToEmpty: %v", err)
	}
	if report.Kind != KindDrain {
		t.Fatalf("report kind = %q, want drain", report.Kind)
	}

	// The drained cluster holds nothing.
	var c1 *dpss.Cluster
	for i, cl := range clusters {
		if fmt.Sprintf("c%d", i) == "c1" {
			c1 = cl
		}
	}
	if held := c1.Master.Datasets(); len(held) != 0 {
		t.Fatalf("drained cluster still catalogs %v, want none", held)
	}
	if report.Removed == 0 {
		t.Fatalf("report.Removed = 0; drain removed nothing (report %+v)", report)
	}
	// Its block servers evicted the data too, not just the catalog entries.
	if blocks := c1.Servers[0].Stats().BlocksStored + c1.Servers[1].Stats().BlocksStored; blocks != 0 {
		t.Fatalf("drained cluster still stores %d blocks", blocks)
	}
	// Everything still reads back intact, and placements avoid c1.
	for i, name := range names {
		for _, c := range fb.Placement(name) {
			if c == "c1" {
				t.Fatalf("%s still placed on drained c1", name)
			}
		}
		f, err := fb.Open(context.Background(), name)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, len(payloads[i]))
		if _, err := f.ReadAtContext(context.Background(), got, 0); err != nil {
			t.Fatalf("reading %s after drain-to-empty: %v", name, err)
		}
		f.Close()
		for j := range got {
			if got[j] != payloads[i][j] {
				t.Fatalf("%s byte %d corrupted after drain-to-empty", name, j)
			}
		}
	}
	if e := fb.Epoch(); e.Version != 1 || e.Migrating() {
		t.Fatalf("epoch after drain-to-empty = %+v, want sealed version 1", e)
	}
}

func TestRebalanceSerializedPerFabric(t *testing.T) {
	fb, _ := startFederation(t, 2, 2, time.Second)
	stageSeries(t, fb, "serial", 1)
	if !fb.beginRebalance() {
		t.Fatal("could not claim the engine slot")
	}
	if _, err := fb.Repair(context.Background(), RebalanceOptions{}); !errors.Is(err, ErrRebalanceActive) {
		t.Fatalf("Repair while engine busy = %v, want ErrRebalanceActive", err)
	}
	fb.endRebalance()
	if _, err := fb.Repair(context.Background(), RebalanceOptions{}); err != nil {
		t.Fatalf("Repair after release: %v", err)
	}
}

// TestCopyDatasetFailsOverMidCopy kills the source cluster mid-copy; the move
// must resume from the surviving holder at the failed block, not restart or
// fail.
func TestCopyDatasetFailsOverMidCopy(t *testing.T) {
	fb, clusters := startFederation(t, 3, 2, 300*time.Millisecond)
	ctx := context.Background()
	data := make([]byte, 128*1024)
	for i := range data {
		data[i] = byte(i % 241)
	}
	if _, err := fb.LoadBytes(ctx, "mid.t0000", data, 8*1024); err != nil {
		t.Fatal(err)
	}
	holders := holdersOf(t, fb, "mid.t0000")
	if len(holders) != 2 {
		t.Fatalf("holders = %v, want 2", holders)
	}
	var target string
	for _, c := range fb.ClusterNames() {
		if !contains(holders, c) {
			target = c
		}
	}

	// Kill the preferred source after the first block lands, so the copy
	// fails over to the second holder partway through.
	var once sync.Once
	killed := make(chan string, 1)
	mv := fb.copyDataset(ctx, "mid.t0000", holders, target, func(mv DatasetMove) {
		if mv.State == MoveCopying && mv.Copied > 0 {
			once.Do(func() {
				for i := range clusters {
					if fmt.Sprintf("c%d", i) == mv.From {
						clusters[i].Close()
						killed <- mv.From
					}
				}
			})
		}
	})
	if mv.State != MoveDone {
		t.Fatalf("move = %+v, want done after mid-copy source kill", mv)
	}
	select {
	case from := <-killed:
		if mv.From == from {
			t.Fatalf("move still reports dead source %s after failover", from)
		}
	default:
		t.Fatal("kill hook never fired")
	}
	if mv.Copied != int64(len(data)) {
		t.Fatalf("copied %d bytes, want %d", mv.Copied, len(data))
	}
	// The target's copy is complete and intact: read it via a direct client.
	var tcl *dpss.Cluster
	for i := range clusters {
		if fmt.Sprintf("c%d", i) == target {
			tcl = clusters[i]
		}
	}
	client := tcl.NewClient()
	defer client.Close()
	f, err := client.Open("mid.t0000")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != data[i] {
			t.Fatalf("byte %d = %d, want %d on migration target", i, got[i], data[i])
		}
	}
}

// TestRepairSpillsBeyondNarrowedEpoch is the regression for the live
// scenario that motivated placement spill: after a drain-to-empty narrows
// the epoch to [a, b], the drained member is undrained and b dies — repair
// must restore R by spilling onto the healthy member outside the epoch's
// eligible set, not report "nothing to do" while every dataset sits at one
// replica.
func TestRepairSpillsBeyondNarrowedEpoch(t *testing.T) {
	fb, clusters := startFederation(t, 3, 2, 500*time.Millisecond)
	names, _ := stageSeries(t, fb, "spill", 3)

	if _, err := fb.DrainToEmpty(context.Background(), "c2", RebalanceOptions{}); err != nil {
		t.Fatalf("DrainToEmpty: %v", err)
	}
	if err := fb.Undrain("c2"); err != nil {
		t.Fatal(err)
	}
	// Kill one of the two remaining epoch members: every dataset drops to a
	// single live replica, and the only healthy target is outside the epoch.
	clusters[1].Close()

	if _, err := fb.Repair(context.Background(), RebalanceOptions{}); err != nil {
		t.Fatalf("Repair: %v", err)
	}
	for _, name := range names {
		holders := holdersOf(t, fb, name)
		if len(holders) < 2 {
			t.Fatalf("%s has %d live replicas after spill repair, want 2 (holders %v)", name, len(holders), holders)
		}
		if !contains(holders, "c2") && !contains(holders, "c0") {
			t.Fatalf("%s holders %v never spilled to a healthy member", name, holders)
		}
	}
}

// TestDrainToEmptyRefusesToDeleteLastCopy is the data-loss regression: when
// the rest of the federation is dark, the move plan is vacuously empty — the
// drain must then refuse to delete the member's copies rather than report a
// "successful" drain that destroyed the only replica.
func TestDrainToEmptyRefusesToDeleteLastCopy(t *testing.T) {
	fb, clusters := startFederation(t, 2, 1, 300*time.Millisecond)
	ctx := context.Background()
	data := make([]byte, 32*1024)
	if _, err := fb.LoadBytes(ctx, "last.t0000", data, 8*1024); err != nil {
		t.Fatal(err)
	}
	holder := holdersOf(t, fb, "last.t0000")[0]
	// Kill the only other cluster, then try to drain the holder to empty.
	var holderCluster *dpss.Cluster
	for i, cl := range clusters {
		if fmt.Sprintf("c%d", i) == holder {
			holderCluster = cl
		} else {
			cl.Close()
		}
	}
	report, err := fb.DrainToEmpty(ctx, holder, RebalanceOptions{})
	if err == nil {
		t.Fatalf("DrainToEmpty of the last live copy succeeded: %+v", report)
	}
	if report != nil && report.Removed != 0 {
		t.Fatalf("drain removed %d copies despite having nowhere to put them", report.Removed)
	}
	// The only copy survives.
	if held := holderCluster.Master.Datasets(); len(held) != 1 || held[0] != "last.t0000" {
		t.Fatalf("holder catalogs %v after refused drain, want the surviving copy", held)
	}
	// The member stays drained, but its data is intact and still readable as
	// the last resort.
	f, err := fb.Open(ctx, "last.t0000")
	if err != nil {
		t.Fatalf("open after refused drain: %v", err)
	}
	f.Close()
}
