package fabric

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"visapult/internal/dpss"
)

// startFederation launches n in-process clusters and a fabric over them.
func startFederation(t *testing.T, n, replication int, attempt time.Duration) (*Fabric, []*dpss.Cluster) {
	t.Helper()
	clusters := make([]*dpss.Cluster, n)
	var specs []ClusterSpec
	for i := 0; i < n; i++ {
		cl, err := dpss.StartCluster(dpss.ClusterConfig{Servers: 2, DisksPerServer: 2})
		if err != nil {
			t.Fatalf("starting cluster %d: %v", i, err)
		}
		t.Cleanup(func() { cl.Close() })
		clusters[i] = cl
		specs = append(specs, ClusterSpec{Name: fmt.Sprintf("c%d", i), Master: cl.MasterAddr})
	}
	fb, err := New(Config{
		Clusters: specs, Replication: replication, AttemptTimeout: attempt,
		BackoffBase: 20 * time.Millisecond, BackoffMax: time.Second,
	})
	if err != nil {
		t.Fatalf("building fabric: %v", err)
	}
	t.Cleanup(func() { fb.Close() })
	return fb, clusters
}

func TestLookupDeterministicAndSharded(t *testing.T) {
	specs := []ClusterSpec{
		{Name: "berkeley", Master: "127.0.0.1:1"},
		{Name: "sandia", Master: "127.0.0.1:2"},
		{Name: "anl", Master: "127.0.0.1:3"},
	}
	fb1, err := New(Config{Clusters: specs, Replication: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer fb1.Close()
	// A second fabric with the members listed in a different order must agree
	// on every placement: that is what lets a remote worker resolve the same
	// federation from a serialized spec.
	fb2, err := New(Config{Clusters: []ClusterSpec{specs[2], specs[0], specs[1]}, Replication: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer fb2.Close()

	primaries := make(map[string]int)
	for ts := 0; ts < 64; ts++ {
		name := dpss.TimestepDatasetName("combustion", ts)
		o1, o2 := fb1.Lookup(name), fb2.Lookup(name)
		if len(o1) != 3 || len(o2) != 3 {
			t.Fatalf("Lookup(%q) lengths = %d, %d, want 3", name, len(o1), len(o2))
		}
		for i := range o1 {
			if o1[i] != o2[i] {
				t.Fatalf("Lookup(%q) disagrees across member order: %v vs %v", name, o1, o2)
			}
		}
		primaries[o1[0]]++
	}
	// Timestep-granular sharding: the primaries must spread across the
	// federation, not pile on one cluster.
	if len(primaries) != 3 {
		t.Fatalf("64 timesteps used only %d of 3 clusters as primary: %v", len(primaries), primaries)
	}
}

func TestLoadBytesReplicatesAndReads(t *testing.T) {
	fb, clusters := startFederation(t, 3, 2, 0)
	ctx := context.Background()

	data := make([]byte, 300*1024)
	for i := range data {
		data[i] = byte(i * 7)
	}
	replicas, err := fb.LoadBytes(ctx, "vol.t0000", data, 64*1024)
	if err != nil {
		t.Fatalf("LoadBytes: %v", err)
	}
	if len(replicas) != 2 {
		t.Fatalf("LoadBytes wrote %d replicas, want 2: %v", len(replicas), replicas)
	}
	// Both replica clusters hold real bytes; the third cluster holds none.
	var holding int
	for _, cl := range clusters {
		if cl.TotalBytesServed() > 0 {
			t.Fatalf("cluster served bytes before any read")
		}
		names := cl.Master.Datasets()
		if len(names) > 0 {
			holding++
		}
	}
	if holding != 2 {
		t.Fatalf("%d clusters hold the dataset, want 2", holding)
	}

	f, err := fb.Open(ctx, "vol.t0000")
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer f.Close()
	got := make([]byte, len(data))
	if _, err := f.ReadAtContext(ctx, got, 0); err != nil {
		t.Fatalf("ReadAtContext: %v", err)
	}
	for i := range got {
		if got[i] != data[i] {
			t.Fatalf("byte %d = %d, want %d", i, got[i], data[i])
		}
	}

	// Re-staging the same dataset is idempotent, not a health event.
	if _, err := fb.LoadBytes(ctx, "vol.t0000", data, 64*1024); err != nil {
		t.Fatalf("re-staging: %v", err)
	}
	for _, h := range fb.Health() {
		if !h.Healthy {
			t.Fatalf("cluster %s unhealthy after idempotent re-stage: %+v", h.Name, h)
		}
	}
}

func TestFailoverToReplicaOnKilledCluster(t *testing.T) {
	fb, clusters := startFederation(t, 2, 2, time.Second)
	ctx := context.Background()

	data := make([]byte, 200*1024)
	for i := range data {
		data[i] = byte(i)
	}
	if _, err := fb.LoadBytes(ctx, "kill.t0000", data, 32*1024); err != nil {
		t.Fatalf("LoadBytes: %v", err)
	}
	f, err := fb.Open(ctx, "kill.t0000")
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer f.Close()

	// Kill the cluster the read path prefers for this dataset.
	primary := fb.Lookup("kill.t0000")[0]
	for i, cl := range clusters {
		if fmt.Sprintf("c%d", i) == primary {
			cl.Close()
		}
	}

	got := make([]byte, len(data))
	if _, err := f.ReadAtContext(ctx, got, 0); err != nil {
		t.Fatalf("ReadAtContext after killing primary: %v", err)
	}
	for i := range got {
		if got[i] != data[i] {
			t.Fatalf("byte %d = %d, want %d after failover", i, got[i], data[i])
		}
	}
	var sawUnhealthy bool
	for _, h := range fb.Health() {
		if h.Name == primary {
			sawUnhealthy = !h.Healthy && h.Failures > 0
		}
	}
	if !sawUnhealthy {
		t.Fatalf("killed primary %s not marked unhealthy: %+v", primary, fb.Health())
	}
}

// stalledServer accepts block-server connections and swallows requests
// without ever replying — a wedged, not dead, replica.
type stalledServer struct {
	l     net.Listener
	seen  atomic.Int64
	block []byte
}

func newStalledServer(t *testing.T) *stalledServer {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &stalledServer{l: l}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				buf := make([]byte, 4096)
				for {
					if _, err := conn.Read(buf); err != nil {
						return
					}
					s.seen.Add(1)
				}
			}()
		}
	}()
	return s
}

func TestStalledClusterFailsOverWithinAttemptTimeout(t *testing.T) {
	// Cluster c0 is a master whose only block server stalls; c1 is a real
	// cluster. Every block read against c0 wedges until the per-attempt
	// timeout aborts it in flight and the read completes from c1.
	stall := newStalledServer(t)
	master := dpss.NewMaster()
	masterAddr, err := master.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { master.Close() })
	master.RegisterServer(stall.l.Addr().String())

	healthy, err := dpss.StartCluster(dpss.ClusterConfig{Servers: 2, DisksPerServer: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { healthy.Close() })

	fb, err := New(Config{
		Clusters: []ClusterSpec{
			{Name: "stalled", Master: masterAddr},
			{Name: "healthy", Master: healthy.MasterAddr},
		},
		Replication: 2, AttemptTimeout: 150 * time.Millisecond,
		BackoffBase: 20 * time.Millisecond, BackoffMax: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fb.Close() })

	// Stage through the healthy cluster only (the stalled one cannot take
	// writes), then register the dataset on the stalled master so reads
	// believe it holds a copy.
	data := make([]byte, 64*1024)
	for i := range data {
		data[i] = byte(i % 251)
	}
	client := healthy.NewClient()
	t.Cleanup(func() { client.Close() })
	if _, err := healthy.LoadBytes(client, "wedge.t0000", data, 16*1024); err != nil {
		t.Fatal(err)
	}
	if _, err := master.CreateDataset("wedge.t0000", int64(len(data)), 16*1024); err != nil {
		t.Fatal(err)
	}

	f, err := fb.Open(context.Background(), "wedge.t0000")
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer f.Close()

	start := time.Now()
	got := make([]byte, len(data))
	if _, err := f.ReadAtContext(context.Background(), got, 0); err != nil {
		t.Fatalf("ReadAtContext: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("failover took %v, want well under 2s", elapsed)
	}
	for i := range got {
		if got[i] != data[i] {
			t.Fatalf("byte %d = %d, want %d after stalled failover", i, got[i], data[i])
		}
	}
	// If the stalled cluster was this dataset's read primary, it must now be
	// marked unhealthy; either way the read completed from the replica.
	if order := fb.Lookup("wedge.t0000"); order[0] == "stalled" {
		var h ClusterHealth
		for _, ch := range fb.Health() {
			if ch.Name == "stalled" {
				h = ch
			}
		}
		if h.Healthy {
			t.Fatalf("stalled primary still marked healthy: %+v", h)
		}
		if stall.seen.Load() == 0 {
			t.Fatalf("stalled server never saw the attempt")
		}
	}
}

func TestFullyDarkDatasetReturnsDescriptiveError(t *testing.T) {
	fb, clusters := startFederation(t, 2, 2, 200*time.Millisecond)
	ctx := context.Background()

	data := make([]byte, 32*1024)
	if _, err := fb.LoadBytes(ctx, "dark.t0000", data, 16*1024); err != nil {
		t.Fatal(err)
	}
	f, err := fb.Open(ctx, "dark.t0000")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for _, cl := range clusters {
		cl.Close()
	}

	done := make(chan error, 1)
	go func() {
		_, err := f.ReadAtContext(ctx, make([]byte, len(data)), 0)
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, ErrAllReplicasFailed) {
			t.Fatalf("error = %v, want ErrAllReplicasFailed", err)
		}
		for _, name := range fb.ClusterNames() {
			if !strings.Contains(err.Error(), name) {
				t.Fatalf("error %q does not name cluster %s", err, name)
			}
		}
	case <-time.After(5 * time.Second):
		t.Fatal("fully dark dataset read hung instead of failing")
	}

	// Opening a never-staged dataset on a dark federation reports too.
	if _, err := fb.Open(ctx, "never.staged"); !errors.Is(err, ErrAllReplicasFailed) {
		t.Fatalf("Open on dark federation = %v, want ErrAllReplicasFailed", err)
	}
}

func TestDrainExcludesFromPlacementAndProbeRecovers(t *testing.T) {
	fb, _ := startFederation(t, 3, 2, 0)
	ctx := context.Background()

	victim := fb.Lookup("drain.t0000")[0]
	if err := fb.Drain(victim); err != nil {
		t.Fatal(err)
	}
	placement := fb.Placement("drain.t0000")
	for _, c := range placement {
		if c == victim {
			t.Fatalf("drained cluster %s still in placement %v", victim, placement)
		}
	}
	if _, err := fb.LoadBytes(ctx, "drain.t0000", make([]byte, 8*1024), 4*1024); err != nil {
		t.Fatal(err)
	}
	// Reads still resolve (the copies exist on the spill clusters).
	f, err := fb.Open(ctx, "drain.t0000")
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := fb.Undrain(victim); err != nil {
		t.Fatal(err)
	}
	if err := fb.Drain("nonexistent"); !errors.Is(err, ErrUnknownCluster) {
		t.Fatalf("Drain(nonexistent) = %v, want ErrUnknownCluster", err)
	}

	// Probe restores a cluster whose failure was transient.
	m := fb.byName[victim]
	fb.markFailure(m, errors.New("synthetic"))
	if healthOf(fb.Health(), victim).Healthy {
		t.Fatalf("markFailure did not demote %s", victim)
	}
	fb.Probe(ctx)
	if h := healthOf(fb.Health(), victim); !h.Healthy || h.Failures != 0 {
		t.Fatalf("probe did not recover %s: %+v", victim, h)
	}
}

func healthOf(hs []ClusterHealth, name string) ClusterHealth {
	for _, h := range hs {
		if h.Name == name {
			return h
		}
	}
	return ClusterHealth{}
}

func TestUnknownDatasetAnswerRestoresBackedOffCluster(t *testing.T) {
	fb, _ := startFederation(t, 2, 2, 0)
	m := fb.byName["c0"]
	fb.markFailure(m, errors.New("synthetic outage"))
	if healthOf(fb.Health(), "c0").Healthy {
		t.Fatal("markFailure did not demote c0")
	}
	// Opening a dataset nobody holds still exchanges with every master; the
	// "unknown dataset" answer from c0 is a completed round-trip and must
	// restore it — recovery does not require a read of data it holds.
	if _, err := fb.Open(context.Background(), "nobody.has.this"); !errors.Is(err, ErrAllReplicasFailed) {
		t.Fatalf("Open = %v, want ErrAllReplicasFailed", err)
	}
	if h := healthOf(fb.Health(), "c0"); !h.Healthy || h.Failures != 0 {
		t.Fatalf("answered exchange did not restore c0: %+v", h)
	}
}

// TestReadOrderDemotesDrainedAndBackedOff is the regression contract of the
// read path's health sort: available clusters first, backed-off ones next,
// drained last — with Undrain restoring full preference — and a Drain issued
// mid-read never aborts an already-open File.
func TestReadOrderDemotesDrainedAndBackedOff(t *testing.T) {
	fb, _ := startFederation(t, 3, 3, time.Second)
	ctx := context.Background()

	data := make([]byte, 64*1024)
	for i := range data {
		data[i] = byte(i % 199)
	}
	if _, err := fb.LoadBytes(ctx, "order.t0000", data, 16*1024); err != nil {
		t.Fatal(err)
	}
	nominal := fb.Lookup("order.t0000")

	names := func(ms []*member) []string {
		out := make([]string, len(ms))
		for i, m := range ms {
			out[i] = m.name
		}
		return out
	}

	// Baseline: all healthy, readOrder preserves the placement order.
	got := names(fb.readOrder(nominal))
	for i := range nominal {
		if got[i] != nominal[i] {
			t.Fatalf("healthy readOrder = %v, want placement order %v", got, nominal)
		}
	}

	// Drain the primary and back off the secondary: the order must become
	// [third, backed-off second, drained first] — demoted clusters stay in
	// the list as last resorts, they never vanish.
	if err := fb.Drain(nominal[0]); err != nil {
		t.Fatal(err)
	}
	fb.markFailure(fb.byName[nominal[1]], errors.New("synthetic outage"))
	got = names(fb.readOrder(nominal))
	want := []string{nominal[2], nominal[1], nominal[0]}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("demoted readOrder = %v, want %v", got, want)
		}
	}

	// Undrain restores the drained cluster's placement preference (the
	// backed-off one stays demoted until its window expires or it answers).
	if err := fb.Undrain(nominal[0]); err != nil {
		t.Fatal(err)
	}
	got = names(fb.readOrder(nominal))
	want = []string{nominal[0], nominal[2], nominal[1]}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("post-undrain readOrder = %v, want %v", got, want)
		}
	}
	fb.markSuccess(fb.byName[nominal[1]])

	// A Drain landing between two reads of an open File must not abort it:
	// the handle keeps reading (from the drained replica if it is the only
	// holder, per last-resort semantics).
	f, err := fb.Open(ctx, "order.t0000")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 16*1024)
	if _, err := f.ReadAtContext(ctx, buf, 0); err != nil {
		t.Fatalf("pre-drain read: %v", err)
	}
	for _, c := range fb.ClusterNames() {
		if err := fb.Drain(c); err != nil { // drain the whole federation
			t.Fatal(err)
		}
	}
	if _, err := f.ReadAtContext(ctx, buf, 16*1024); err != nil {
		t.Fatalf("mid-read Drain aborted the open File: %v", err)
	}
	for i := range buf {
		if buf[i] != data[16*1024+i] {
			t.Fatalf("byte %d read through drained federation = %d, want %d", i, buf[i], data[16*1024+i])
		}
	}
}

func TestCallerCancellationIsNotFailover(t *testing.T) {
	fb, _ := startFederation(t, 2, 2, 0)
	bg := context.Background()
	data := make([]byte, 64*1024)
	if _, err := fb.LoadBytes(bg, "cancel.t0000", data, 16*1024); err != nil {
		t.Fatal(err)
	}
	f, err := fb.Open(bg, "cancel.t0000")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ctx, cancel := context.WithCancel(bg)
	cancel()
	if _, err := f.ReadAtContext(ctx, make([]byte, 16), 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled read = %v, want context.Canceled", err)
	}
	for _, h := range fb.Health() {
		if !h.Healthy {
			t.Fatalf("caller cancellation blamed cluster %s: %+v", h.Name, h)
		}
	}
}
