package fabric

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"visapult/internal/dpss"
)

// ErrRebalanceActive: a migration is already running on this fabric handle;
// the engine serializes them because two concurrent epoch advances would
// leave reads with no consistent previous epoch to fall back to.
var ErrRebalanceActive = errors.New("fabric: a rebalance is already in progress")

// Rebalance kinds, recorded in reports and surfaced by the admin plane.
const (
	// KindRebalance: explicit full migration onto a fresh epoch.
	KindRebalance = "rebalance"
	// KindRepair: restore the replication factor of under-replicated datasets.
	KindRepair = "repair"
	// KindDrain: drain-to-empty — migrate everything off one member, then
	// delete its copies.
	KindDrain = "drain"
)

// MoveState is the lifecycle of one dataset move.
type MoveState string

// Move states. A move is one (dataset, target cluster) copy.
const (
	MovePending MoveState = "pending"
	MoveCopying MoveState = "copying"
	MoveDone    MoveState = "done"
	MoveFailed  MoveState = "failed"
)

// DatasetMove is the progress record of copying one dataset onto one target
// cluster. The engine streams the dataset block-by-block from whichever live
// holder answers (rotating to the next holder when one fails mid-copy, and
// resuming at the failed block rather than from zero).
type DatasetMove struct {
	// Dataset is the dataset being copied; To the cluster receiving it.
	Dataset string
	To      string
	// From is the holder the bytes are currently streaming from (it can
	// change mid-move when a holder dies and the copy fails over).
	From string
	// Bytes is the dataset size; Copied the bytes landed on To so far.
	Bytes  int64
	Copied int64
	State  MoveState
	// Error is why the move failed; empty otherwise.
	Error string
}

// RebalanceOptions shapes one engine run.
type RebalanceOptions struct {
	// OnMove, when non-nil, receives a copy of a move's record every time it
	// changes: state transitions and per-block progress. It is called
	// concurrently from the copy goroutines.
	OnMove func(DatasetMove)
	// Parallel bounds the number of datasets migrating at once (default 2 —
	// enough to overlap two cluster links without flooding the federation).
	Parallel int
}

// RebalanceReport summarizes one engine run.
type RebalanceReport struct {
	// Kind is KindRebalance, KindRepair or KindDrain.
	Kind string
	// Epoch is the placement epoch version the run migrated onto.
	Epoch int
	// Datasets counts the catalog entries examined; most runs move only a
	// subset of them.
	Datasets int
	// Moves are the final records of every (dataset, target) copy attempted.
	Moves []DatasetMove
	// Removed counts the dataset copies deleted off the drained member
	// (drain-to-empty only).
	Removed int
	// Bytes is the total volume migrated; Elapsed the wall-clock time.
	Bytes   int64
	Elapsed time.Duration
}

// Failed counts the moves that did not complete.
func (r *RebalanceReport) Failed() int {
	n := 0
	for _, mv := range r.Moves {
		if mv.State == MoveFailed {
			n++
		}
	}
	return n
}

// RateMBps returns the aggregate migration rate in megabytes per second.
func (r *RebalanceReport) RateMBps() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Bytes) / (1 << 20) / r.Elapsed.Seconds()
}

// beginRebalance claims the single engine slot; endRebalance releases it.
func (f *Fabric) beginRebalance() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.rebalancing {
		return false
	}
	f.rebalancing = true
	return true
}

func (f *Fabric) endRebalance() {
	f.mu.Lock()
	f.rebalancing = false
	f.mu.Unlock()
}

// Rebalancing reports whether an engine run is in flight.
func (f *Fabric) Rebalancing() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.rebalancing
}

// undrainedMembers returns the members not administratively drained.
func (f *Fabric) undrainedMembers() []string {
	var out []string
	for _, m := range f.members {
		m.mu.Lock()
		drained := m.drained
		m.mu.Unlock()
		if !drained {
			out = append(out, m.name)
		}
	}
	return out
}

// moveTask is one dataset's migration plan: the live holders to stream from
// and the placement targets missing a copy.
type moveTask struct {
	name    string
	sources []string
	targets []string
}

// planMoves scans the federation catalog and returns one task per dataset
// whose current-epoch placement is missing copies. With repairOnly set, only
// datasets below the replication factor are planned (the repair trigger);
// otherwise every placement gap is (the rebalance/drain triggers).
func (f *Fabric) planMoves(ctx context.Context, repairOnly bool) ([]moveTask, int) {
	catalog, live := f.catalogScan(ctx)
	var tasks []moveTask
	for _, d := range catalog {
		placement := f.Placement(d.Name)
		var missing []string
		for _, want := range placement {
			// Only members that answered the scan can receive copies: a dead
			// cluster resurfacing in the placement (expired backoff) must not
			// be chosen as a target, or every move to it would fail.
			if live[want] && !contains(d.Clusters, want) {
				missing = append(missing, want)
			}
		}
		if len(missing) == 0 {
			continue
		}
		if repairOnly {
			// Below-R only: a dataset with R live copies parked off its
			// nominal placement is a rebalance concern, not a repair one.
			r := f.cfg.Replication
			if len(placement) < r {
				r = len(placement)
			}
			if len(d.Clusters) >= r {
				continue
			}
			if keep := r - len(d.Clusters); keep < len(missing) {
				missing = missing[:keep]
			}
		}
		tasks = append(tasks, moveTask{name: d.Name, sources: d.Clusters, targets: missing})
	}
	sort.Slice(tasks, func(i, j int) bool { return tasks[i].name < tasks[j].name })
	return tasks, len(catalog)
}

// Rebalance migrates the whole federation onto a fresh placement epoch: the
// epoch advances over the currently undrained members, every dataset whose
// new placement is missing a copy is streamed block-by-block onto it, and —
// when every move lands — the epoch is sealed. While the migration runs,
// reads consult both epochs, so concurrent runs never lose a replica they
// were using. On partial failure the epoch stays unsealed (the old placements
// remain readable) and the report carries the per-move errors.
func (f *Fabric) Rebalance(ctx context.Context, opts RebalanceOptions) (*RebalanceReport, error) {
	if !f.beginRebalance() {
		return nil, ErrRebalanceActive
	}
	defer f.endRebalance()
	state, err := f.AdvanceEpoch(f.undrainedMembers())
	if err != nil {
		return nil, err
	}
	report := &RebalanceReport{Kind: KindRebalance, Epoch: state.Version}
	if err := f.executePlan(ctx, report, opts, false); err != nil {
		return report, err
	}
	f.SealEpoch()
	return report, nil
}

// Repair restores the replication factor of every dataset that lost replicas
// to a dead cluster: datasets below R are re-replicated from their surviving
// holders onto healthy members. Placement epochs are untouched — repair fills
// the availability-aware placement the readers already walk, so the new
// copies are found without any epoch coordination.
func (f *Fabric) Repair(ctx context.Context, opts RebalanceOptions) (*RebalanceReport, error) {
	if !f.beginRebalance() {
		return nil, ErrRebalanceActive
	}
	defer f.endRebalance()
	report := &RebalanceReport{Kind: KindRepair, Epoch: f.Epoch().Version}
	return report, f.executePlan(ctx, report, opts, true)
}

// DrainToEmpty escalates Drain into a full decommission: the member stops
// taking new placements, the epoch advances without it, every dataset it
// holds is re-replicated onto the new epoch's placement, and finally its
// copies are deleted — when it returns without error the drained cluster
// reports zero datasets. Concurrent readers never error: during the migration
// they read the union of both epochs, and the deletes only run after every
// move landed.
func (f *Fabric) DrainToEmpty(ctx context.Context, cluster string, opts RebalanceOptions) (*RebalanceReport, error) {
	m, ok := f.byName[cluster]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownCluster, cluster)
	}
	if !f.beginRebalance() {
		return nil, ErrRebalanceActive
	}
	defer f.endRebalance()
	if err := f.Drain(cluster); err != nil {
		return nil, err
	}
	eligible := f.undrainedMembers()
	if len(eligible) == 0 {
		return nil, fmt.Errorf("fabric: draining %q would empty the whole federation", cluster)
	}
	state, err := f.AdvanceEpoch(eligible)
	if err != nil {
		return nil, err
	}
	report := &RebalanceReport{Kind: KindDrain, Epoch: state.Version}
	if err := f.executePlan(ctx, report, opts, false); err != nil {
		return report, err
	}
	// Every planned move landed — but a plan can be vacuously empty (targets
	// filtered out because the rest of the federation was dark), so deletion
	// is gated per dataset on a fresh scan proving another live cluster holds
	// a copy. A copy that cannot be verified elsewhere stays on the drained
	// member and fails the drain instead of becoming data loss.
	catalog, _ := f.catalogScan(ctx)
	elsewhere := make(map[string]bool)
	for _, d := range catalog {
		for _, c := range d.Clusters {
			if c != cluster {
				elsewhere[d.Name] = true
			}
		}
	}
	held, err := f.listOn(ctx, m)
	if err != nil {
		return report, fmt.Errorf("fabric: listing %q for removal: %w", cluster, err)
	}
	var stranded []string
	for _, name := range held {
		if err := ctx.Err(); err != nil {
			return report, err
		}
		if !elsewhere[name] {
			stranded = append(stranded, name)
			continue
		}
		if err := f.removeOn(ctx, m, name); err != nil {
			return report, fmt.Errorf("fabric: removing %q from %s: %w", name, cluster, err)
		}
		report.Removed++
	}
	if len(stranded) > 0 {
		return report, fmt.Errorf("fabric: draining %q: %d datasets have no live copy elsewhere, keeping them: %s",
			cluster, len(stranded), strings.Join(stranded, ", "))
	}
	f.SealEpoch()
	return report, nil
}

// executePlan plans and runs the moves, filling the report. It returns the
// first move error (with every move still attempted) or ctx's error.
func (f *Fabric) executePlan(ctx context.Context, report *RebalanceReport, opts RebalanceOptions, repairOnly bool) error {
	start := time.Now()
	defer func() { report.Elapsed = time.Since(start) }()
	tasks, examined := f.planMoves(ctx, repairOnly)
	report.Datasets = examined

	parallel := opts.Parallel
	if parallel <= 0 {
		parallel = 2
	}
	var (
		mu       sync.Mutex
		firstErr error
	)
	sem := make(chan struct{}, parallel)
	var wg sync.WaitGroup
	for _, task := range tasks {
		wg.Add(1)
		go func(task moveTask) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			// One dataset's targets fill sequentially: the second copy can
			// stream from the first once it lands, and a dataset never
			// competes with itself for a link.
			for _, target := range task.targets {
				mv := f.copyDataset(ctx, task.name, task.sources, target, opts.OnMove)
				mu.Lock()
				report.Moves = append(report.Moves, mv)
				if mv.State == MoveDone {
					report.Bytes += mv.Copied
				} else if firstErr == nil {
					firstErr = fmt.Errorf("fabric: moving %q to %s: %s", mv.Dataset, mv.To, mv.Error)
				}
				mu.Unlock()
			}
		}(task)
	}
	wg.Wait()
	sort.Slice(report.Moves, func(i, j int) bool {
		if report.Moves[i].Dataset != report.Moves[j].Dataset {
			return report.Moves[i].Dataset < report.Moves[j].Dataset
		}
		return report.Moves[i].To < report.Moves[j].To
	})
	if err := ctx.Err(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// copyDataset streams one dataset onto the target cluster, block by block:
// each block is read from the current source holder (one attempt bounded by
// the fabric's AttemptTimeout) and written to the target. When a source fails
// mid-copy the engine rotates to the next holder and resumes at the failed
// block — the copy never restarts from zero. The returned move records the
// final state; onMove (when non-nil) observed every step of it.
func (f *Fabric) copyDataset(ctx context.Context, name string, sources []string, target string, onMove func(DatasetMove)) DatasetMove {
	mv := DatasetMove{Dataset: name, To: target, State: MovePending}
	emit := func() {
		if onMove != nil {
			onMove(mv)
		}
	}
	fail := func(err error) DatasetMove {
		mv.State = MoveFailed
		mv.Error = err.Error()
		emit()
		return mv
	}
	emit()

	tm, ok := f.byName[target]
	if !ok {
		return fail(fmt.Errorf("%w: %q", ErrUnknownCluster, target))
	}
	// Open the first answering source holder (the target never doubles as its
	// own source).
	var (
		src     *dpss.File
		srcMem  *member
		srcErrs []string
	)
	candidates := make([]string, 0, len(sources))
	for _, s := range sources {
		if s != target {
			candidates = append(candidates, s)
		}
	}
	nextSource := 0
	openNext := func() bool {
		for nextSource < len(candidates) {
			m, ok := f.byName[candidates[nextSource]]
			nextSource++
			if !ok {
				continue
			}
			df, err := f.openOn(ctx, m, name)
			if err != nil {
				if errors.Is(err, dpss.ErrUnknownDataset) {
					f.markSuccess(m)
				} else if !errors.Is(err, context.Canceled) {
					f.markFailure(m, err)
					m.resetClient()
				}
				srcErrs = append(srcErrs, fmt.Sprintf("%s: %v", m.name, err))
				continue
			}
			f.markSuccess(m)
			src, srcMem = df, m
			mv.From = m.name
			return true
		}
		return false
	}
	if !openNext() {
		return fail(fmt.Errorf("no live holder: [%s]", strings.Join(srcErrs, "; ")))
	}
	info := src.Info()
	mv.Bytes = info.Size

	// Create on the target — idempotent, so a re-run after a partial failure
	// resumes into the same dataset rather than erroring out.
	if _, err := f.createOn(ctx, tm, name, info.Size, info.BlockSize); err != nil && !errors.Is(err, dpss.ErrDatasetExists) {
		if !errors.Is(err, context.Canceled) {
			f.markFailure(tm, err)
			tm.resetClient()
		}
		return fail(fmt.Errorf("creating on %s: %v", target, err))
	}
	dst, err := f.openOn(ctx, tm, name)
	if err != nil {
		if !errors.Is(err, context.Canceled) {
			f.markFailure(tm, err)
			tm.resetClient()
		}
		return fail(fmt.Errorf("opening on %s: %v", target, err))
	}
	defer dst.Close()
	defer func() {
		if src != nil {
			src.Close()
		}
	}()

	mv.State = MoveCopying
	emit()
	buf := make([]byte, info.BlockSize)
	var off int64
	for off < info.Size {
		if err := ctx.Err(); err != nil {
			return fail(err)
		}
		want := int64(info.BlockSize)
		if off+want > info.Size {
			want = info.Size - off
		}
		// Read the block from the current source, rotating holders on
		// failure; the offset does not advance until a holder delivers it.
		for {
			actx := ctx
			cancel := func() {}
			if f.cfg.AttemptTimeout > 0 {
				actx, cancel = context.WithTimeout(ctx, f.cfg.AttemptTimeout)
			}
			n, rerr := src.ReadAtContext(actx, buf[:want], off)
			cancel()
			if (rerr == nil || rerr == io.EOF) && int64(n) == want {
				f.markSuccess(srcMem)
				break
			}
			if err := ctx.Err(); err != nil { // the caller's own cancellation
				return fail(err)
			}
			if rerr == nil {
				rerr = fmt.Errorf("short block read: %d of %d bytes", n, want)
			}
			f.markFailure(srcMem, rerr)
			srcMem.resetClient()
			srcErrs = append(srcErrs, fmt.Sprintf("%s: %v", srcMem.name, rerr))
			src.Close()
			src = nil
			if !openNext() {
				return fail(fmt.Errorf("block at %d: no holder left: [%s]", off, strings.Join(srcErrs, "; ")))
			}
			emit() // mv.From changed
		}
		if err := f.writeBlockOn(ctx, tm, dst, buf[:want], off); err != nil {
			f.markFailure(tm, err)
			tm.resetClient()
			return fail(fmt.Errorf("writing block at %d to %s: %v", off, target, err))
		}
		off += want
		mv.Copied = off
		emit()
	}
	f.markSuccess(tm)
	mv.State = MoveDone
	emit()
	return mv
}

// writeBlockOn writes one block to the target member with the same bound as
// every other member exchange: a wedged target cluster (accepting socket,
// frozen process) fails the move within AttemptTimeout instead of pinning
// the engine — and a pinned engine would hold the single rebalance slot
// forever, wedging every later Rebalance/Repair/DrainToEmpty. The context
// cancellation rides the client's own in-exchange abort (WriteAtContext
// poisons the blocked connection), so no watchdog goroutine is needed.
func (f *Fabric) writeBlockOn(ctx context.Context, m *member, dst *dpss.File, p []byte, off int64) error {
	actx := ctx
	cancel := func() {}
	if f.cfg.AttemptTimeout > 0 {
		actx, cancel = context.WithTimeout(ctx, f.cfg.AttemptTimeout)
	}
	defer cancel()
	_, err := dst.WriteAtContext(actx, p, off)
	if actx.Err() != nil {
		m.resetClient()
	}
	return err
}

// removeOn deletes one dataset from one member, bounded like every other
// member exchange so a wedged master cannot pin the drain.
func (f *Fabric) removeOn(ctx context.Context, m *member, name string) error {
	client := m.clientFor(f.cfg)
	actx := ctx
	cancel := func() {}
	if f.cfg.AttemptTimeout > 0 {
		actx, cancel = context.WithTimeout(ctx, f.cfg.AttemptTimeout)
	}
	defer cancel()
	err := client.RemoveContext(actx, name)
	if actx.Err() != nil {
		m.resetClient()
	}
	return err
}
