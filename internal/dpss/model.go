package dpss

import (
	"visapult/internal/netsim"
	"visapult/internal/stats"
)

// ThroughputModel is the analytic performance model of a DPSS deployment,
// used by experiment E1 to reproduce the paper's headline numbers: "Current
// performance results are 980 Mbps across a LAN and 570 Mbps across a WAN"
// and "a four-server DPSS ... can deliver throughput of over 150 megabytes
// per second by providing parallel access to 15-20 disks".
//
// Aggregate throughput is the minimum of three aggregated stages:
// disks (servers x disksPerServer x per-disk rate), server NICs
// (servers x NIC rate), and the client's WAN/LAN path.
type ThroughputModel struct {
	Servers        int
	DisksPerServer int
	// DiskMBps is the sustained per-disk transfer rate in megabytes/second
	// (commodity disks of the era sustained roughly 10 MB/s).
	DiskMBps float64
	// ServerNIC is each block server's network interface.
	ServerNIC netsim.Link
	// ClientPath is the network path between the DPSS and the client.
	ClientPath netsim.Path
	// ProtocolEfficiency discounts protocol/TCP overhead (default 0.9).
	ProtocolEfficiency float64
}

// PaperLANModel returns the configuration of the paper's LAN measurement: a
// four-server DPSS with five disks per server, read by a client with a single
// gigabit-ethernet interface. The measured 980 Mbps is the client NIC running
// at near line rate, which is why ProtocolEfficiency is high here — striped
// parallel TCP streams on a LAN lose very little to protocol overhead.
func PaperLANModel() ThroughputModel {
	return ThroughputModel{
		Servers:            4,
		DisksPerServer:     5,
		DiskMBps:           10,
		ServerNIC:          netsim.GigE,
		ClientPath:         netsim.NewPath("LAN", netsim.GigE),
		ProtocolEfficiency: 0.98,
	}
}

// PaperWANModel returns the configuration of the paper's WAN measurement:
// the same DPSS reached across an OC-12 testbed.
func PaperWANModel() ThroughputModel {
	return ThroughputModel{
		Servers:        4,
		DisksPerServer: 5,
		DiskMBps:       10,
		ServerNIC:      netsim.GigE,
		ClientPath:     netsim.NewPath("WAN", netsim.NTON),
	}
}

// DiskAggregateMbps returns the disk-stage ceiling in Mbps.
func (m ThroughputModel) DiskAggregateMbps() float64 {
	return float64(m.Servers*m.DisksPerServer) * m.DiskMBps * 8 * float64(stats.MB) / stats.Mega
}

// ServerNICAggregateMbps returns the server-NIC-stage ceiling in Mbps.
func (m ThroughputModel) ServerNICAggregateMbps() float64 {
	return float64(m.Servers) * m.ServerNIC.Bandwidth / stats.Mega
}

// ClientPathMbps returns the client-path ceiling in Mbps.
func (m ThroughputModel) ClientPathMbps() float64 {
	return m.ClientPath.Bandwidth() / stats.Mega
}

// AggregateMbps returns the deliverable client throughput in Mbps: the
// bottleneck of the three stages, discounted by protocol efficiency.
func (m ThroughputModel) AggregateMbps() float64 {
	eff := m.ProtocolEfficiency
	if eff <= 0 || eff > 1 {
		eff = 0.9
	}
	min := m.DiskAggregateMbps()
	if v := m.ServerNICAggregateMbps(); v < min {
		min = v
	}
	if v := m.ClientPathMbps(); v < min {
		min = v
	}
	return min * eff
}

// AggregateMBps returns the deliverable throughput in megabytes per second.
func (m ThroughputModel) AggregateMBps() float64 {
	return m.AggregateMbps() * stats.Mega / 8 / float64(stats.MB)
}

// DiskAggregateMBps returns the disk-stage capacity in megabytes per second —
// what the deployment could deliver to enough parallel clients, independent
// of any single client's network path. This is the paper's "over 150
// megabytes per second by providing parallel access to 15-20 disks" figure.
func (m ThroughputModel) DiskAggregateMBps() float64 {
	return m.DiskAggregateMbps() * stats.Mega / 8 / float64(stats.MB)
}

// Bottleneck names the limiting stage of the deployment.
func (m ThroughputModel) Bottleneck() string {
	disk := m.DiskAggregateMbps()
	nic := m.ServerNICAggregateMbps()
	path := m.ClientPathMbps()
	switch {
	case disk <= nic && disk <= path:
		return "disks"
	case nic <= disk && nic <= path:
		return "server NICs"
	default:
		return "client path"
	}
}

// WithServers returns a copy of the model scaled to n servers, the scaling
// knob the paper highlights ("the ability to increase performance by
// increasing the number of parallel disk servers").
func (m ThroughputModel) WithServers(n int) ThroughputModel {
	if n < 1 {
		n = 1
	}
	out := m
	out.Servers = n
	return out
}
