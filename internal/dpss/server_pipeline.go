package dpss

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"time"
)

// DefaultPipelineWorkers is how many v2 requests one client connection may
// have in service concurrently unless WithPipelineWorkers overrides it.
const DefaultPipelineWorkers = 4

// WithPipelineWorkers sets the per-connection service concurrency of the v2
// pipelined path (minimum 1): a bounded queue feeds this many workers, so
// the server answers sequenced requests out of order as its disks allow
// while a flood of requests can never spawn unbounded goroutines.
func WithPipelineWorkers(n int) ServerOption {
	return func(s *BlockServer) {
		if n >= 1 {
			s.pipeWorkers = n
		}
	}
}

// handleHello answers a v2 client's version probe. (A v1 server predates
// this message and answers msgError through its default case — exactly the
// signal the client's transparent fallback keys on.)
func (s *BlockServer) handleHello(out net.Conn, payload []byte) {
	if _, err := decodeHello(payload); err != nil {
		s.replyError(out, err)
		return
	}
	reply(out, msgOK, appendHello(nil, wireV2))
}

// connPipeline serves one connection's sequenced (v2) requests: a bounded
// queue feeds a small worker pool, replies serialize over the conn under a
// write lock, and requests complete in whatever order the disks allow. It is
// created lazily on the first v2 request and joined when the conn's read
// loop exits.
type connPipeline struct {
	s   *BlockServer
	out net.Conn
	req chan pipeReq
	wg  sync.WaitGroup
	wmu sync.Mutex // serializes response writes on out
}

type pipeReq struct {
	msgType byte
	payload []byte
}

// startPipeline spins up the worker pool for one connection.
func (s *BlockServer) startPipeline(out net.Conn) *connPipeline {
	workers := s.pipeWorkers
	if workers < 1 {
		workers = DefaultPipelineWorkers
	}
	p := &connPipeline{s: s, out: out, req: make(chan pipeReq, 2*workers)}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for r := range p.req {
				p.serve(r)
			}
		}()
	}
	return p
}

// enqueue hands one request to the pool, blocking (backpressure on the
// conn's read loop) when all workers are busy and the queue is full.
func (p *connPipeline) enqueue(msgType byte, payload []byte) {
	p.req <- pipeReq{msgType: msgType, payload: payload}
}

// stop closes the queue and joins the workers; called when the conn's read
// loop exits.
func (p *connPipeline) stop() {
	close(p.req)
	p.wg.Wait()
}

// serve dispatches one sequenced request. Every v2 request leads with the
// u32 sequence number its response must echo.
func (p *connPipeline) serve(r pipeReq) {
	if len(r.payload) < 4 {
		p.replyErr2(0, fmt.Errorf("%w: sequenced request of %d bytes", ErrProtocol, len(r.payload)))
		return
	}
	seq := binary.BigEndian.Uint32(r.payload)
	body := r.payload[4:]
	switch r.msgType {
	case msgRead2:
		p.serveRead2(seq, body)
	case msgReadv:
		p.serveReadv(seq, body)
	}
}

// serveRead2 answers a pipelined single-block read.
func (p *connPipeline) serveRead2(seq uint32, body []byte) {
	d := &decoder{buf: body}
	dataset := d.str()
	block := int64(d.u64())
	if d.err != nil {
		p.replyErr2(seq, d.err)
		return
	}
	data, err := p.s.diskFor(block).ReadBlock(dataset, block)
	if err != nil {
		p.replyErr2(seq, err)
		return
	}
	p.s.mu.Lock()
	p.s.served += int64(len(data))
	p.s.mu.Unlock()
	p.reply2(msgOK2, seq, data)
}

// serveReadv answers a vectored read: every extent is cut from its block
// (each distinct block is read from disk once — the client sends extents in
// block order) and the concatenated data streams back in one bounded write.
func (p *connPipeline) serveReadv(seq uint32, body []byte) {
	dataset, exts, err := decodeReadvRequest(body)
	if err != nil {
		p.replyErr2(seq, err)
		return
	}
	parts := make([][]byte, 0, len(exts))
	var total int64
	lastBlock := int64(-1)
	var lastData []byte
	for _, x := range exts {
		if x.block != lastBlock {
			data, err := p.s.diskFor(x.block).ReadBlock(dataset, x.block)
			if err != nil {
				p.replyErr2(seq, err)
				return
			}
			lastBlock, lastData = x.block, data
		}
		if int(x.off)+int(x.n) > len(lastData) {
			p.replyErr2(seq, fmt.Errorf("%w: extent [%d,+%d) outside block %d (%d bytes)",
				ErrProtocol, x.off, x.n, x.block, len(lastData)))
			return
		}
		parts = append(parts, lastData[x.off:int(x.off)+int(x.n)])
		total += int64(x.n)
	}
	p.s.mu.Lock()
	p.s.served += total
	p.s.mu.Unlock()
	p.reply2(msgOK2, seq, parts...)
}

func (p *connPipeline) replyErr2(seq uint32, err error) {
	p.s.mu.Lock()
	p.s.errored++
	p.s.mu.Unlock()
	p.reply2(msgError2, seq, []byte(err.Error()))
}

// reply2 writes one sequenced response frame as a single bounded gathered
// write: header+seq, then every part, via net.Buffers — no concatenation
// copy on the server side either.
func (p *connPipeline) reply2(msgType byte, seq uint32, parts ...[]byte) {
	total := 4
	for _, q := range parts {
		total += len(q)
	}
	var hdr [9]byte
	hdr[0] = msgType
	binary.BigEndian.PutUint32(hdr[1:5], uint32(total))
	binary.BigEndian.PutUint32(hdr[5:9], seq)
	bufs := make(net.Buffers, 0, len(parts)+1)
	bufs = append(bufs, hdr[:])
	for _, q := range parts {
		if len(q) > 0 {
			bufs = append(bufs, q)
		}
	}
	p.wmu.Lock()
	defer p.wmu.Unlock()
	p.out.SetWriteDeadline(time.Now().Add(respWriteTimeout)) //nolint:errcheck
	bufs.WriteTo(p.out)                                      //nolint:errcheck // a dead conn fails the client's exchange; nothing to do server-side
}
