package dpss

import (
	"context"
	"fmt"
	"sync"
)

// ReadvScatter reads every extent into its destination slice in one vectored
// pass: extents are split at block boundaries, grouped per block server,
// batched into msgReadv exchanges and striped over each server's connection
// pool. A v2 server streams each batch back in a single bounded write and
// the client scatters the bytes straight from the socket into the caller's
// buffers — no per-block allocation. Against a v1 server the client falls
// back transparently to lock-step whole-block reads, still fanned out over
// the stripe pool.
//
// On error some destinations may hold partial data, but by the time the call
// returns no goroutine will write into any destination slice again, so
// callers may pool and reuse their buffers immediately.
func (f *File) ReadvScatter(ctx context.Context, exts []Extent) error {
	return f.client.readvScatter(ctx, f.info, exts)
}

// perServerPool recycles the per-call scatter plan (server address -> block
// extents) so steady-state vectored reads do not allocate per block.
var perServerPool = sync.Pool{
	New: func() any { return make(map[string][]blockExtent) },
}

func putPerServer(m map[string][]blockExtent) {
	for k, v := range m {
		for i := range v {
			v[i].dst = nil // drop references into caller buffers
		}
		m[k] = v[:0]
	}
	perServerPool.Put(m)
}

// dstsPool recycles the per-batch destination tables handed to the stripe
// layer.
var dstsPool = sync.Pool{
	New: func() any {
		s := make([][]byte, 0, 256)
		return &s
	},
}

// reqBufPool recycles msgReadv request encode buffers.
var reqBufPool = sync.Pool{
	New: func() any {
		s := make([]byte, 0, 1024)
		return &s
	},
}

func (c *Client) readvScatter(ctx context.Context, info DatasetInfo, exts []Extent) error {
	if len(exts) == 0 {
		return nil
	}
	if c.compress > 0 {
		return c.scatterCompressed(ctx, info, exts)
	}
	per := perServerPool.Get().(map[string][]blockExtent)
	defer putPerServer(per)
	if err := splitExtents(info, exts, per); err != nil {
		return err
	}
	if len(per) == 1 {
		for addr, list := range per {
			return c.scatterServer(ctx, info, addr, list)
		}
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for addr, list := range per {
		if len(list) == 0 {
			continue
		}
		addr, list := addr, list
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := c.scatterServer(ctx, info, addr, list); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// scatterServer serves one server's share of a vectored read, choosing the
// pipelined or the lock-step path by the server's negotiated wire version.
func (c *Client) scatterServer(ctx context.Context, info DatasetInfo, addr string, list []blockExtent) error {
	if len(list) == 0 {
		return nil
	}
	p, err := c.poolFor(addr)
	if err != nil {
		return err
	}
	ver, err := p.version(ctx)
	if err != nil {
		return err
	}
	if ver < wireV2 {
		return c.scatterServerV1(ctx, p, info, list)
	}
	return c.scatterServerV2(ctx, p, info, list)
}

// scatterServerV2 batches the extent list under the protocol's extent-count
// and byte bounds, stripes the batches round-robin over the pool, pipelines
// them all, then waits for every response. Batches already in flight are
// always waited for — even after an error — so the no-writes-after-return
// guarantee holds.
func (c *Client) scatterServerV2(ctx context.Context, p *stripePool, info DatasetInfo, list []blockExtent) error {
	type batch struct {
		call  *stripeCall
		dsts  *[][]byte
		bytes int64
		reads int64
	}
	reqBuf := reqBufPool.Get().(*[]byte)
	defer reqBufPool.Put(reqBuf)
	// Size batches so a region spreads over the whole stripe pool: one
	// maxReadvBytes batch would ride a single socket and leave the other
	// stripes idle, re-creating exactly the single-stream ceiling the
	// stripes exist to break. Aim for two batches per stripe (so each
	// socket also pipelines), bounded below so small reads do not shatter
	// into per-extent exchanges.
	total := 0
	for i := range list {
		total += int(list[i].n)
	}
	target := maxReadvBytes
	if n := len(p.stripes); n > 1 {
		const minBatch = 64 << 10
		t := total / (2 * n)
		if t < minBatch {
			t = minBatch
		}
		if t < target {
			target = t
		}
	}
	var (
		started  []batch
		firstErr error
	)
	for start := 0; start < len(list) && firstErr == nil; {
		end, size := start, 0
		for end < len(list) && end-start < MaxReadvExtents {
			if size+int(list[end].n) > target && end > start {
				break
			}
			size += int(list[end].n)
			end++
		}
		chunk := list[start:end]
		start = end

		dsts := dstsPool.Get().(*[][]byte)
		*dsts = (*dsts)[:0]
		for _, x := range chunk {
			*dsts = append(*dsts, x.dst)
		}
		var (
			call *stripeCall
			err  error
		)
		if len(chunk) == 1 && chunk[0].off == 0 && int(chunk[0].n) == info.BlockLen(chunk[0].block) {
			// A single whole block: the simple pipelined read.
			e := encoder{buf: (*reqBuf)[:0]}
			e.str(info.Name)
			e.u64(uint64(chunk[0].block))
			*reqBuf = e.buf
			call, err = p.pick().start(ctx, msgRead2, *reqBuf, *dsts)
		} else {
			*reqBuf = appendReadvRequest((*reqBuf)[:0], info.Name, chunk)
			call, err = p.pick().start(ctx, msgReadv, *reqBuf, *dsts)
		}
		if err != nil {
			*dsts = (*dsts)[:0]
			dstsPool.Put(dsts)
			firstErr = err
			break
		}
		started = append(started, batch{call: call, dsts: dsts, bytes: int64(size), reads: int64(len(chunk))})
	}

	var doneBytes, doneReads int64
	for _, b := range started {
		err := b.call.wait(ctx)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
		} else {
			doneBytes += b.bytes
			doneReads += b.reads
		}
		// The stripe layer guarantees nothing touches the destination table
		// once wait returns, so it can be recycled here.
		clear(*b.dsts)
		*b.dsts = (*b.dsts)[:0]
		dstsPool.Put(b.dsts)
	}
	if doneReads > 0 {
		c.mu.Lock()
		c.bytesRead += doneBytes
		c.reads += doneReads
		c.mu.Unlock()
	}
	return firstErr
}

// scatterServerV1 serves a scatter batch from a v1 block server: whole-block
// lock-step reads fanned out over the stripe pool, copied into the
// destinations. One round-trip and one allocation per distinct block — the
// old cost model — but correct against any pre-v2 server.
func (c *Client) scatterServerV1(ctx context.Context, p *stripePool, info DatasetInfo, list []blockExtent) error {
	byBlock := make(map[int64][]blockExtent, len(list))
	order := make([]int64, 0, len(list))
	for _, x := range list {
		if _, ok := byBlock[x.block]; !ok {
			order = append(order, x.block)
		}
		byBlock[x.block] = append(byBlock[x.block], x)
	}
	err := c.scatterBlockwise(ctx, byBlock, order, len(p.stripes), func(worker int, block int64) ([]byte, error) {
		e := &encoder{}
		e.str(info.Name)
		e.u64(uint64(block))
		data, err := p.stripes[worker].callV1(ctx, msgReadBlock, e.buf)
		if err != nil {
			return nil, err
		}
		c.mu.Lock()
		c.bytesRead += int64(len(data))
		c.reads++
		c.mu.Unlock()
		return data, nil
	})
	return err
}

// scatterCompressed serves a vectored read for a compression-enabled client:
// whole blocks travel the DEFLATE read path (which keeps its own lock-step
// control connection and wire statistics) and the extents are copied out of
// the inflated blocks, with the same bounded fan-out as the v1 path.
func (c *Client) scatterCompressed(ctx context.Context, info DatasetInfo, exts []Extent) error {
	per := perServerPool.Get().(map[string][]blockExtent)
	defer putPerServer(per)
	if err := splitExtents(info, exts, per); err != nil {
		return err
	}
	byBlock := make(map[int64][]blockExtent)
	order := make([]int64, 0, len(byBlock))
	for _, list := range per {
		for _, x := range list {
			if _, ok := byBlock[x.block]; !ok {
				order = append(order, x.block)
			}
			byBlock[x.block] = append(byBlock[x.block], x)
		}
	}
	workers := c.stripes
	if workers < 1 {
		workers = 1
	}
	return c.scatterBlockwise(ctx, byBlock, order, workers, func(_ int, block int64) ([]byte, error) {
		return c.readBlockCompressed(ctx, info, block)
	})
}

// scatterBlockwise fetches each block of byBlock once through read (with a
// bounded worker fan-out — never a goroutine per block) and copies the
// block's extents into their destinations. After the first error remaining
// blocks are skipped, not fetched.
func (c *Client) scatterBlockwise(ctx context.Context, byBlock map[int64][]blockExtent, order []int64, workers int, read func(worker int, block int64) ([]byte, error)) error {
	if workers > len(order) {
		workers = len(order)
	}
	if workers < 1 {
		workers = 1
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	failed := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return firstErr != nil
	}
	blockCh := make(chan int64)
	for i := 0; i < workers; i++ {
		worker := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for block := range blockCh {
				if failed() {
					continue
				}
				data, err := read(worker, block)
				if err != nil {
					fail(err)
					continue
				}
				for _, x := range byBlock[block] {
					if int(x.off)+int(x.n) > len(data) {
						fail(fmt.Errorf("%w: block %d returned %d bytes, extent wants [%d,+%d)",
							ErrProtocol, block, len(data), x.off, x.n))
						break
					}
					copy(x.dst, data[x.off:int(x.off)+int(x.n)])
				}
			}
		}()
	}
	for _, b := range order {
		blockCh <- b
	}
	close(blockCh)
	wg.Wait()
	return firstErr
}
