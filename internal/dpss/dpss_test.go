package dpss

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"
	"time"

	"visapult/internal/netsim"
	"visapult/internal/stats"
	"visapult/internal/volume"
)

// --- protocol -------------------------------------------------------------

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("hello dpss")
	if err := writeFrame(&buf, msgReadBlock, payload); err != nil {
		t.Fatal(err)
	}
	msgType, got, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if msgType != msgReadBlock || !bytes.Equal(got, payload) {
		t.Errorf("round trip = %d %q", msgType, got)
	}
}

func TestFrameEmptyPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, msgOK, nil); err != nil {
		t.Fatal(err)
	}
	msgType, got, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if msgType != msgOK || len(got) != 0 {
		t.Error("empty frame round trip")
	}
}

func TestFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	writeFrame(&buf, msgOK, []byte("data"))
	raw := buf.Bytes()
	if _, _, err := readFrame(bytes.NewReader(raw[:3])); err == nil {
		t.Error("truncated header should fail")
	}
	if _, _, err := readFrame(bytes.NewReader(raw[:6])); err == nil {
		t.Error("truncated payload should fail")
	}
}

func TestFrameOversizeRejected(t *testing.T) {
	hdr := []byte{msgOK, 0xFF, 0xFF, 0xFF, 0xFF}
	if _, _, err := readFrame(bytes.NewReader(hdr)); !errors.Is(err, ErrProtocol) {
		t.Errorf("oversize frame error = %v", err)
	}
}

func TestEncoderDecoderRoundTrip(t *testing.T) {
	e := &encoder{}
	e.str("dataset").u64(123456789).u32(4096).bytes([]byte{1, 2, 3})
	d := &decoder{buf: e.buf}
	if d.str() != "dataset" || d.u64() != 123456789 || d.u32() != 4096 {
		t.Error("scalar round trip")
	}
	if !bytes.Equal(d.bytes(), []byte{1, 2, 3}) {
		t.Error("bytes round trip")
	}
	if d.err != nil {
		t.Errorf("decoder error = %v", d.err)
	}
	// Reading past the end sets the error.
	d.u64()
	if d.err == nil {
		t.Error("overread should set error")
	}
}

func TestDatasetInfoEncodingRoundTrip(t *testing.T) {
	info := DatasetInfo{
		Name: "combustion.t0001", Size: 160 << 20, BlockSize: 64 << 10,
		Servers: []string{"10.0.0.1:7001", "10.0.0.2:7001", "10.0.0.3:7001", "10.0.0.4:7001"},
	}
	got, err := decodeDatasetInfo(encodeDatasetInfo(info))
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != info.Name || got.Size != info.Size || got.BlockSize != info.BlockSize {
		t.Errorf("round trip = %+v", got)
	}
	if len(got.Servers) != 4 || got.Servers[2] != "10.0.0.3:7001" {
		t.Errorf("servers = %v", got.Servers)
	}
	if _, err := decodeDatasetInfo([]byte{1, 2}); err == nil {
		t.Error("garbage should fail to decode")
	}
}

func TestDatasetInfoBlockMath(t *testing.T) {
	info := DatasetInfo{Name: "d", Size: 100, BlockSize: 32, Servers: []string{"a", "b", "c"}}
	if info.NumBlocks() != 4 {
		t.Errorf("blocks = %d", info.NumBlocks())
	}
	if info.BlockLen(0) != 32 || info.BlockLen(3) != 4 {
		t.Errorf("block lens = %d %d", info.BlockLen(0), info.BlockLen(3))
	}
	if info.BlockLen(4) != 0 || info.BlockLen(-1) != 0 {
		t.Error("out-of-range block len should be 0")
	}
	if info.ServerFor(0) != "a" || info.ServerFor(1) != "b" || info.ServerFor(3) != "a" {
		t.Error("round-robin striping wrong")
	}
	if (DatasetInfo{}).NumBlocks() != 0 {
		t.Error("zero block size should have 0 blocks")
	}
	if (DatasetInfo{}).ServerFor(0) != "" {
		t.Error("no servers should return empty address")
	}
}

func TestDatasetInfoStripingProperty(t *testing.T) {
	f := func(sizeRaw uint32, blockSizeRaw uint16, serverCount uint8) bool {
		size := int64(sizeRaw%10_000_000) + 1
		blockSize := int(blockSizeRaw%8192) + 1
		n := int(serverCount%8) + 1
		servers := make([]string, n)
		for i := range servers {
			servers[i] = string(rune('a' + i))
		}
		info := DatasetInfo{Name: "p", Size: size, BlockSize: blockSize, Servers: servers}
		// Sum of block lengths equals the dataset size, and every block maps
		// to a registered server.
		var total int64
		for b := int64(0); b < info.NumBlocks(); b++ {
			total += int64(info.BlockLen(b))
			if info.ServerFor(b) == "" {
				return false
			}
		}
		return total == size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// --- disk ------------------------------------------------------------------

func TestDiskReadWriteEvict(t *testing.T) {
	d := NewDisk()
	d.WriteBlock("ds", 0, []byte{1, 2, 3})
	d.WriteBlock("ds", 1, []byte{4})
	d.WriteBlock("other", 0, []byte{9})
	got, err := d.ReadBlock("ds", 0)
	if err != nil || !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("read = %v %v", got, err)
	}
	// Mutating the returned slice must not corrupt the stored block.
	got[0] = 99
	again, _ := d.ReadBlock("ds", 0)
	if again[0] != 1 {
		t.Error("disk returned aliased storage")
	}
	if _, err := d.ReadBlock("ds", 7); !errors.Is(err, ErrUnknownBlock) {
		t.Errorf("missing block error = %v", err)
	}
	if !d.HasBlock("ds", 1) || d.HasBlock("ds", 2) {
		t.Error("HasBlock wrong")
	}
	if dropped := d.DropDataset("ds"); dropped != 2 {
		t.Errorf("dropped = %d", dropped)
	}
	if d.HasBlock("ds", 0) || !d.HasBlock("other", 0) {
		t.Error("drop should only evict the named dataset")
	}
	st := d.Stats()
	if st.Writes != 3 || st.Reads != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestDiskServiceModelDelays(t *testing.T) {
	d := NewDiskWithModel(1*stats.MB, 5*time.Millisecond) // 1 MB/s + 5ms seek
	data := make([]byte, 100<<10)                         // 100 KB -> ~100ms transfer
	start := time.Now()
	d.WriteBlock("ds", 0, data)
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Errorf("modelled write returned too quickly: %v", elapsed)
	}
}

// --- master ----------------------------------------------------------------

func TestMasterCatalog(t *testing.T) {
	m := NewMaster()
	if _, err := m.CreateDataset("x", 100, 0); err == nil {
		t.Error("create with no servers should fail")
	}
	m.RegisterServer("s1:1")
	m.RegisterServer("s2:1")
	m.RegisterServer("s1:1") // duplicate ignored
	if len(m.Servers()) != 2 {
		t.Errorf("servers = %v", m.Servers())
	}
	info, err := m.CreateDataset("x", 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if info.BlockSize != DefaultBlockSize || len(info.Servers) != 2 {
		t.Errorf("info = %+v", info)
	}
	if _, err := m.CreateDataset("x", 50, 0); err == nil {
		t.Error("duplicate dataset should fail")
	}
	if _, err := m.CreateDataset("neg", -1, 0); err == nil {
		t.Error("negative size should fail")
	}
	if _, err := m.Lookup("nope"); !errors.Is(err, ErrUnknownDataset) {
		t.Error("unknown dataset lookup")
	}
	if got := m.Datasets(); len(got) != 1 || got[0] != "x" {
		t.Errorf("datasets = %v", got)
	}
	m.RemoveDataset("x")
	if len(m.Datasets()) != 0 {
		t.Error("remove failed")
	}
}

// --- end-to-end cluster -----------------------------------------------------

func startTestCluster(t *testing.T, cfg ClusterConfig) *Cluster {
	t.Helper()
	c, err := StartCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestClusterLoadAndReadBack(t *testing.T) {
	c := startTestCluster(t, ClusterConfig{Servers: 3, DisksPerServer: 2})
	client := c.NewClient()
	defer client.Close()

	data := make([]byte, 300*1024+17) // deliberately not block aligned
	for i := range data {
		data[i] = byte(i*7 + i/251)
	}
	info, err := c.LoadBytes(client, "testset", data, 32<<10)
	if err != nil {
		t.Fatal(err)
	}
	if info.NumBlocks() != 10 {
		t.Errorf("blocks = %d", info.NumBlocks())
	}

	f, err := client.Open("testset")
	if err != nil {
		t.Fatal(err)
	}
	if f.Size() != int64(len(data)) {
		t.Errorf("size = %d", f.Size())
	}
	got := make([]byte, len(data))
	n, err := f.ReadAt(got, 0)
	if err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if n != len(data) || !bytes.Equal(got, data) {
		t.Fatalf("read back %d bytes, equal=%v", n, bytes.Equal(got, data))
	}
	// Every server should have stored and served some blocks (striping).
	for i, s := range c.Servers {
		st := s.Stats()
		if st.BlocksStored == 0 {
			t.Errorf("server %d stored no blocks", i)
		}
		if st.BytesServed == 0 {
			t.Errorf("server %d served no bytes", i)
		}
	}
	if c.TotalBytesServed() < int64(len(data)) {
		t.Error("total served should cover the dataset")
	}
	cs := client.Stats()
	if cs.Servers != 3 || cs.BytesRead < int64(len(data)) {
		t.Errorf("client stats = %+v", cs)
	}
}

// TestClientRemoveEvictsCatalogAndBlocks covers the removal protocol the
// fabric's drain-to-empty relies on: Remove drops the master's catalog entry
// AND evicts the blocks from every stripe server, and removing a dataset the
// cluster never held is a harmless no-op.
func TestClientRemoveEvictsCatalogAndBlocks(t *testing.T) {
	c := startTestCluster(t, ClusterConfig{Servers: 2, DisksPerServer: 2})
	client := c.NewClient()
	defer client.Close()

	data := make([]byte, 96*1024)
	for i := range data {
		data[i] = byte(i)
	}
	if _, err := c.LoadBytes(client, "victim", data, 16<<10); err != nil {
		t.Fatal(err)
	}
	if _, err := c.LoadBytes(client, "survivor", data, 16<<10); err != nil {
		t.Fatal(err)
	}

	if err := client.Remove("victim"); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if _, err := client.Stat("victim"); !errors.Is(err, ErrUnknownDataset) {
		t.Fatalf("Stat after Remove = %v, want ErrUnknownDataset", err)
	}
	// Only the survivor's blocks remain on the servers.
	want := int((int64(len(data)) + (16 << 10) - 1) / (16 << 10))
	total := 0
	for _, s := range c.Servers {
		total += s.Stats().BlocksStored
	}
	if total != want {
		t.Fatalf("servers store %d blocks after Remove, want %d (survivor only)", total, want)
	}
	// The survivor still reads back.
	f, err := client.Open("survivor")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := f.ReadAt(got, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("survivor corrupted by Remove of its neighbor")
	}
	// Idempotent: removing again (or a never-staged name) is a no-op.
	if err := client.Remove("victim"); err != nil {
		t.Fatalf("second Remove = %v, want nil", err)
	}
	if err := client.Remove("never.staged"); err != nil {
		t.Fatalf("Remove(never.staged) = %v, want nil", err)
	}
}

func TestClusterBlockLevelAccess(t *testing.T) {
	// The point of the DPSS over an archive: read a small piece of a large
	// dataset without transferring the whole thing.
	c := startTestCluster(t, ClusterConfig{Servers: 4, DisksPerServer: 2})
	client := c.NewClient()
	defer client.Close()

	data := make([]byte, 1<<20)
	for i := range data {
		data[i] = byte(i % 253)
	}
	if _, err := c.LoadBytes(client, "big", data, 16<<10); err != nil {
		t.Fatal(err)
	}
	f, err := client.Open("big")
	if err != nil {
		t.Fatal(err)
	}
	servedBefore := c.TotalBytesServed()
	piece := make([]byte, 10_000)
	if _, err := f.ReadAt(piece, 500_000); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !bytes.Equal(piece, data[500_000:510_000]) {
		t.Error("partial read returned wrong bytes")
	}
	servedDelta := c.TotalBytesServed() - servedBefore
	if servedDelta >= int64(len(data))/2 {
		t.Errorf("block-level read transferred %d bytes; should be far less than the dataset", servedDelta)
	}
}

func TestFileReadSeekSemantics(t *testing.T) {
	c := startTestCluster(t, ClusterConfig{Servers: 2, DisksPerServer: 1})
	client := c.NewClient()
	defer client.Close()
	data := []byte("The Distributed Parallel Storage System is a data block server.")
	if _, err := c.LoadBytes(client, "text", data, 8); err != nil {
		t.Fatal(err)
	}
	f, err := client.Open("text")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 3)
	if _, err := f.Read(buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "The" {
		t.Errorf("first read = %q", buf)
	}
	if _, err := f.Read(buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != " Di" {
		t.Errorf("second read = %q", buf)
	}
	if pos, err := f.Seek(4, io.SeekStart); err != nil || pos != 4 {
		t.Fatalf("seek = %d %v", pos, err)
	}
	big := make([]byte, 11)
	if _, err := f.Read(big); err != nil {
		t.Fatal(err)
	}
	if string(big) != "Distributed" {
		t.Errorf("after seek = %q", big)
	}
	if pos, _ := f.Seek(-6, io.SeekEnd); pos != int64(len(data)-6) {
		t.Errorf("seek end = %d", pos)
	}
	tail, _ := io.ReadAll(f)
	if string(tail) != "erver." {
		t.Errorf("tail = %q", tail)
	}
	if _, err := f.Seek(0, 99); err == nil {
		t.Error("bad whence should fail")
	}
	if _, err := f.Seek(-100, io.SeekStart); err == nil {
		t.Error("negative offset should fail")
	}
	// Reads past EOF.
	if _, err := f.ReadAt(buf, f.Size()+10); err != io.EOF {
		t.Errorf("read past EOF = %v", err)
	}
	if _, err := f.ReadAt(buf, -1); err == nil {
		t.Error("negative ReadAt offset should fail")
	}
	if err := f.Close(); err != nil {
		t.Error(err)
	}
}

func TestOpenUnknownDataset(t *testing.T) {
	c := startTestCluster(t, ClusterConfig{Servers: 1, DisksPerServer: 1})
	client := c.NewClient()
	defer client.Close()
	if _, err := client.Open("missing"); !errors.Is(err, ErrUnknownDataset) {
		t.Errorf("error = %v", err)
	}
}

func TestStatAndVolumeRoundTrip(t *testing.T) {
	c := startTestCluster(t, ClusterConfig{Servers: 2, DisksPerServer: 2})
	client := c.NewClient()
	defer client.Close()

	v := volume.MustNew(16, 8, 8)
	for i := range v.Data {
		v.Data[i] = float32(i)
	}
	if _, err := c.LoadVolume(client, TimestepDatasetName("combustion", 3), v, 4<<10); err != nil {
		t.Fatal(err)
	}
	info, err := client.Stat("combustion.t0003")
	if err != nil {
		t.Fatal(err)
	}
	if info.Size != volume.EncodedSize(16, 8, 8) {
		t.Errorf("size = %d", info.Size)
	}
	f, err := client.Open("combustion.t0003")
	if err != nil {
		t.Fatal(err)
	}
	raw := make([]byte, info.Size)
	if _, err := f.ReadAt(raw, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	got, err := volume.Unmarshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.At(15, 7, 7) != v.At(15, 7, 7) {
		t.Error("volume round trip through DPSS corrupted data")
	}
}

func TestAccessControl(t *testing.T) {
	c := startTestCluster(t, ClusterConfig{Servers: 1, DisksPerServer: 1})
	client := c.NewClient()
	defer client.Close()
	if _, err := c.LoadBytes(client, "secret", []byte("data"), 4); err != nil {
		t.Fatal(err)
	}
	// Deny everyone (no loopback prefix matches "10.").
	c.Master.AllowClients("10.")
	denied := c.NewClient()
	defer denied.Close()
	if _, err := denied.Open("secret"); !errors.Is(err, ErrAccessDenied) {
		t.Errorf("expected access denied, got %v", err)
	}
	// Allow loopback again.
	c.Master.AllowClients("127.0.0.1")
	allowed := c.NewClient()
	defer allowed.Close()
	if _, err := allowed.Open("secret"); err != nil {
		t.Errorf("loopback client should be allowed: %v", err)
	}
	if c.Master.Stats().Denials == 0 {
		t.Error("denial counter should have incremented")
	}
}

func TestLoadReader(t *testing.T) {
	c := startTestCluster(t, ClusterConfig{Servers: 2, DisksPerServer: 1})
	client := c.NewClient()
	defer client.Close()
	data := bytes.Repeat([]byte("0123456789"), 1000)
	info, err := c.LoadReader(client, "stream", bytes.NewReader(data), int64(len(data)), 1<<10)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size != int64(len(data)) {
		t.Errorf("size = %d", info.Size)
	}
	f, _ := client.Open("stream")
	got := make([]byte, len(data))
	f.ReadAt(got, 0)
	if !bytes.Equal(got, data) {
		t.Error("stream load corrupted data")
	}
	// Short reader should fail cleanly.
	if _, err := c.LoadReader(client, "short", bytes.NewReader(data[:10]), 100, 16); err == nil {
		t.Error("short reader should fail")
	}
}

func TestShapedClusterThroughputIsLimited(t *testing.T) {
	// Emulate a WAN: all block servers behind a single shaper at ~16 MB/s.
	shaper := netsim.NewShaper(16*stats.MB, 256<<10)
	c := startTestCluster(t, ClusterConfig{Servers: 4, DisksPerServer: 2, ServerShaper: shaper})
	client := c.NewClient()
	defer client.Close()
	data := make([]byte, 4*stats.MB)
	if _, err := c.LoadBytes(client, "wan", data, 64<<10); err != nil {
		t.Fatal(err)
	}
	f, _ := client.Open("wan")
	buf := make([]byte, len(data))
	start := time.Now()
	if _, err := f.ReadAt(buf, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	rate := stats.MBps(int64(len(data)), elapsed)
	if rate > 32 {
		t.Errorf("shaped DPSS delivered %.1f MB/s, want <= ~2x the 16 MB/s shaping rate", rate)
	}
	if elapsed < 100*time.Millisecond {
		t.Errorf("shaped read finished suspiciously fast: %v", elapsed)
	}
}

func TestWriteAtAlignment(t *testing.T) {
	c := startTestCluster(t, ClusterConfig{Servers: 1, DisksPerServer: 1})
	client := c.NewClient()
	defer client.Close()
	info, err := client.Create("w", 100, 16)
	if err != nil {
		t.Fatal(err)
	}
	f := &File{client: client, info: info}
	if _, err := f.WriteAt([]byte("x"), 5); err == nil {
		t.Error("unaligned write should fail")
	}
}

// --- analytic model ---------------------------------------------------------

func TestPaperLANThroughput(t *testing.T) {
	m := PaperLANModel()
	mbps := m.AggregateMbps()
	// Paper: 980 Mbps across a LAN (a single gigabit client NIC at line rate).
	if mbps < 900 || mbps > 1000 {
		t.Errorf("LAN model = %.0f Mbps, paper reports 980", mbps)
	}
}

func TestPaperWANThroughput(t *testing.T) {
	m := PaperWANModel()
	mbps := m.AggregateMbps()
	// Paper: 570 Mbps across a WAN (an OC-12 path).
	if mbps < 450 || mbps > 622 {
		t.Errorf("WAN model = %.0f Mbps, paper reports 570", mbps)
	}
	if m.Bottleneck() != "client path" {
		t.Errorf("WAN bottleneck = %s", m.Bottleneck())
	}
}

func TestFourServerTerabyteDPSSDelivers150MBps(t *testing.T) {
	// Paper: "A four-server DPSS with a capacity of one Terabyte ... can thus
	// deliver throughput of over 150 megabytes per second by providing
	// parallel access to 15-20 disks."
	m := PaperLANModel()
	if m.Servers*m.DisksPerServer < 15 || m.Servers*m.DisksPerServer > 20 {
		t.Errorf("disk count = %d, want 15-20", m.Servers*m.DisksPerServer)
	}
	if m.DiskAggregateMBps() < 150 {
		t.Errorf("disk aggregate = %.0f MB/s, want > 150", m.DiskAggregateMBps())
	}
}

func TestThroughputScalesWithServers(t *testing.T) {
	base := PaperLANModel()
	// Make the client path wide so server count is the bottleneck.
	base.ClientPath = netsim.NewPath("wide", netsim.OC192)
	one := base.WithServers(1).AggregateMbps()
	two := base.WithServers(2).AggregateMbps()
	four := base.WithServers(4).AggregateMbps()
	if !(two > 1.8*one && four > 3.5*one) {
		t.Errorf("scaling broken: 1=%0.f 2=%0.f 4=%0.f Mbps", one, two, four)
	}
	if base.WithServers(0).Servers != 1 {
		t.Error("WithServers(0) should clamp to 1")
	}
}

func TestBottleneckIdentification(t *testing.T) {
	m := PaperLANModel()
	m.DiskMBps = 1 // starve the disks
	if m.Bottleneck() != "disks" {
		t.Errorf("bottleneck = %s", m.Bottleneck())
	}
	m = PaperLANModel()
	m.ServerNIC = netsim.Link{Name: "slow", Bandwidth: 10 * stats.Mega}
	if m.Bottleneck() != "server NICs" {
		t.Errorf("bottleneck = %s", m.Bottleneck())
	}
}
