package backend

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"visapult/internal/amr"
	"visapult/internal/backend/framecache"
	"visapult/internal/ibr"
	"visapult/internal/netlogger"
	"visapult/internal/render"
	"visapult/internal/volume"
	"visapult/internal/wire"
)

// Mode selects how each PE schedules data loading relative to rendering.
type Mode int

// Execution modes of the back end (section 4.3 and Appendix B).
const (
	// Serial loads the data for timestep t, renders it, sends it, and only
	// then begins loading timestep t+1: Ts = N * (L + R).
	Serial Mode = iota
	// Overlapped runs a detached reader goroutine per PE that loads timestep
	// t+1 while timestep t is being rendered, sharing the loaded buffer with
	// the renderer (the paper's pthread + shared-memory design):
	// To = N * max(L, R) + min(L, R).
	Overlapped
	// OverlappedProcessPair is the MPI-only alternative Appendix B discusses
	// and rejects: reader and renderer are separate processes, so every
	// loaded timestep must be transmitted (copied) from one to the other.
	// The pipeline structure is identical to Overlapped; the extra per-frame
	// copy is what the paper "consciously chose to avoid".
	OverlappedProcessPair
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Overlapped:
		return "overlapped"
	case OverlappedProcessPair:
		return "overlapped-process-pair"
	default:
		return "serial"
	}
}

// overlapped reports whether the mode uses a pipelined reader.
func (m Mode) overlapped() bool { return m == Overlapped || m == OverlappedProcessPair }

// FrameSink receives the per-frame output of one PE. *wire.Conn implements it
// for real network transport; the viewer package and tests provide in-process
// implementations.
type FrameSink interface {
	SendLight(*wire.LightPayload) error
	SendHeavy(*wire.HeavyPayload) error
}

// NullSink discards everything sent to it; benchmarks that measure only the
// load/render pipeline use it in place of a viewer.
type NullSink struct {
	bytes atomic.Int64
}

// SendLight implements FrameSink.
func (n *NullSink) SendLight(lp *wire.LightPayload) error {
	n.bytes.Add(lp.WireSize())
	return nil
}

// SendHeavy implements FrameSink.
func (n *NullSink) SendHeavy(hp *wire.HeavyPayload) error {
	n.bytes.Add(hp.WireSize())
	return nil
}

// Bytes returns the total payload bytes the sink has absorbed.
func (n *NullSink) Bytes() int64 { return n.bytes.Load() }

// Config describes one back-end run.
type Config struct {
	// PEs is the number of processing elements (the paper uses 4 and 8).
	PEs int
	// Timesteps bounds the number of frames processed; 0 means every
	// timestep the data source offers.
	Timesteps int
	// Mode selects serial or overlapped loading and rendering.
	Mode Mode
	// Axis is the initial slab decomposition axis. The viewer may change it
	// between frames through SetAxis (the IBRAVR axis-switching remedy).
	Axis volume.Axis
	// Source supplies the raw data.
	Source DataSource
	// TF is the volume rendering transfer function; nil selects the
	// combustion default.
	TF render.TransferFunction
	// Sinks receives each PE's output. Provide either one sink per PE (the
	// paper's one-connection-per-PE layout) or a single sink shared by all.
	Sinks []FrameSink
	// Logger receives NetLogger events; nil disables instrumentation.
	Logger *netlogger.Logger
	// OnFrame, when non-nil, is called once per (PE, timestep) as soon as
	// that PE has finished sending the frame. Run managers use it to stream
	// live per-frame metrics; it is called from the PE goroutines and must be
	// safe for concurrent use.
	OnFrame func(FrameStats)
	// OnSlab, when non-nil, receives every rendered (or cache-replayed)
	// slab payload pair as soon as it has been sent, for runs not shipping
	// AMR grids or elevation maps. Dispatch workers use it to stream raw
	// slab textures back to the scheduler's frame cache. The payloads are
	// immutable shared data; the hook is called from the PE goroutines and
	// must be safe for concurrent use.
	OnSlab func(light *wire.LightPayload, heavy *wire.HeavyPayload)
	// Grid, when non-nil, builds an AMR hierarchy over each PE's slab and
	// ships its wireframe with the heavy payload (Figure 3).
	Grid *amr.Config
	// Elevation, when true, ships the quadmesh elevation map of the IBRAVR
	// depth extension with each texture.
	Elevation bool
	// Cache, when non-nil, serves rendered slab payloads content-addressed by
	// (CacheDataset + decomposition, timestep, CacheTF) and absorbs freshly
	// rendered ones, so a replay of the same dataset skips both the data
	// source and the raycaster. Caching additionally requires a non-empty
	// CacheDataset and is disabled for runs shipping AMR grids or elevation
	// maps (their extra payloads are not part of the cache identity).
	Cache *framecache.Cache
	// CacheDataset names the voxel content this run renders (source kind,
	// dims, seed, ...); empty disables the cache for this run.
	CacheDataset string
	// CacheTF is the canonical transfer-function string of this run.
	CacheTF string
	// RenderWorkers sizes the shared render pool every PE's raycasts are
	// tiled across: min(GOMAXPROCS, RenderWorkers) goroutines, <= 0 selecting
	// GOMAXPROCS. One pool serves all PEs, so concurrent slab renders share
	// the machine instead of oversubscribing it. The pool is bit-exact at any
	// worker count; this knob never changes pixels.
	RenderWorkers int
}

// FrameStats records what one PE did for one timestep.
type FrameStats struct {
	Frame int
	PE    int
	// Load, Render and Send are the wall-clock durations of the three
	// phases. In overlapped mode Load is the reader goroutine's time for
	// this frame's data, which may have run concurrently with an earlier
	// frame's Render.
	Load   time.Duration
	Render time.Duration
	Send   time.Duration
	// Copy is the reader-to-renderer data transmission time paid per frame
	// by the OverlappedProcessPair mode (zero for the other modes).
	Copy time.Duration
	// BytesLoaded is the raw data volume fetched from the data source.
	BytesLoaded int64
	// BytesSent is the light + heavy payload volume shipped to the viewer.
	BytesSent int64
	// TilesSkipped counts the macrocell segments the raycaster's empty-space
	// skipping removed while rendering this frame (zero on cache hits).
	TilesSkipped int
	// CacheHit reports that this frame was served from the slab-texture
	// cache: no data was loaded and the raycaster never ran (Load, Render and
	// BytesLoaded are zero).
	CacheHit bool
}

// RunStats aggregates a whole back-end run.
type RunStats struct {
	Mode      Mode
	PEs       int
	Frames    int
	Elapsed   time.Duration
	PerFrame  []FrameStats
	BytesIn   int64
	BytesOut  int64
	AxisFlips int
}

// MeanLoad returns the mean per-PE, per-frame load time.
func (rs RunStats) MeanLoad() time.Duration {
	return rs.meanPhase(func(f FrameStats) time.Duration { return f.Load })
}

// MeanRender returns the mean per-PE, per-frame render time.
func (rs RunStats) MeanRender() time.Duration {
	return rs.meanPhase(func(f FrameStats) time.Duration { return f.Render })
}

// MeanSend returns the mean per-PE, per-frame send time.
func (rs RunStats) MeanSend() time.Duration {
	return rs.meanPhase(func(f FrameStats) time.Duration { return f.Send })
}

// MeanCopy returns the mean per-PE, per-frame reader-to-renderer copy time
// (nonzero only in OverlappedProcessPair mode).
func (rs RunStats) MeanCopy() time.Duration {
	return rs.meanPhase(func(f FrameStats) time.Duration { return f.Copy })
}

func (rs RunStats) meanPhase(get func(FrameStats) time.Duration) time.Duration {
	if len(rs.PerFrame) == 0 {
		return 0
	}
	var total time.Duration
	for _, f := range rs.PerFrame {
		total += get(f)
	}
	return total / time.Duration(len(rs.PerFrame))
}

// BackEnd is one configured back-end run. Create it with New, optionally feed
// it axis hints with SetAxis, and execute it with Run.
type BackEnd struct {
	cfg Config
	tf  render.TransferFunction
	// lut is cfg.TF quantized once per run; every PE's raycasts read it.
	lut *render.LUT
	// pool is the shared render pool, created by Run before the PE goroutines
	// start and closed after they join.
	pool *render.Pool

	nx, ny, nz int
	frames     int

	// pendingAxis is the most recent viewer hint; it is latched into
	// frameAxis at each frame barrier so that all PEs decompose the same way.
	pendingAxis atomic.Int32
	frameAxis   volume.Axis
	axisFlips   int

	mu       sync.Mutex
	perFrame []FrameStats
	// contributed tracks every cache key this run has fed slabs into, so an
	// aborted run can abandon its partial assemblies instead of stranding
	// them in the cache's pending map forever. guarded by mu
	contributed map[framecache.Key]struct{}
}

// New validates the configuration and prepares a back end.
func New(cfg Config) (*BackEnd, error) {
	if cfg.Source == nil {
		return nil, errors.New("backend: Config.Source is required")
	}
	if cfg.PEs <= 0 {
		return nil, fmt.Errorf("backend: PEs must be positive, got %d", cfg.PEs)
	}
	switch len(cfg.Sinks) {
	case 1, cfg.PEs:
	case 0:
		return nil, errors.New("backend: at least one FrameSink is required")
	default:
		return nil, fmt.Errorf("backend: got %d sinks, want 1 or %d", len(cfg.Sinks), cfg.PEs)
	}
	nx, ny, nz := cfg.Source.Dims()
	frames := cfg.Source.Timesteps()
	if cfg.Timesteps > 0 && cfg.Timesteps < frames {
		frames = cfg.Timesteps
	}
	if frames <= 0 {
		return nil, errors.New("backend: data source has no timesteps")
	}
	tf := cfg.TF
	if tf == nil {
		tf = render.DefaultCombustionTF()
	}
	if cfg.RenderWorkers < 0 {
		return nil, fmt.Errorf("backend: RenderWorkers must be non-negative, got %d", cfg.RenderWorkers)
	}
	b := &BackEnd{cfg: cfg, tf: tf, lut: render.BuildLUT(tf), nx: nx, ny: ny, nz: nz, frames: frames, frameAxis: cfg.Axis}
	b.pendingAxis.Store(int32(cfg.Axis))
	return b, nil
}

// SetAxis records a viewer hint: the axis whose slab decomposition best
// matches the current view. It takes effect at the next frame boundary.
func (b *BackEnd) SetAxis(a volume.Axis) { b.pendingAxis.Store(int32(a)) }

// Axis returns the decomposition axis currently in effect.
func (b *BackEnd) Axis() volume.Axis {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.frameAxis
}

// Frames returns the number of timesteps the run will process.
func (b *BackEnd) Frames() int { return b.frames }

// Config returns the run's configuration.
func (b *BackEnd) Config() Config { return b.cfg }

// sink returns the FrameSink PE rank should send to.
func (b *BackEnd) sink(rank int) FrameSink {
	if len(b.cfg.Sinks) == 1 {
		return b.cfg.Sinks[0]
	}
	return b.cfg.Sinks[rank]
}

// log emits a NetLogger event if instrumentation is enabled.
func (b *BackEnd) log(tag string, frame, pe int, bytes int64) {
	if b.cfg.Logger == nil {
		return
	}
	fields := []netlogger.Field{
		netlogger.Int(netlogger.FieldFrame, frame),
		netlogger.Int(netlogger.FieldPE, pe),
	}
	if bytes > 0 {
		fields = append(fields, netlogger.Int64(netlogger.FieldBytes, bytes))
	}
	b.cfg.Logger.Log(tag, fields...)
}

// latchAxis runs at each frame barrier: the pending viewer hint becomes the
// decomposition axis for the next frame.
func (b *BackEnd) latchAxis() {
	next := volume.Axis(b.pendingAxis.Load())
	b.mu.Lock()
	if next != b.frameAxis {
		b.axisFlips++
		b.frameAxis = next
	}
	b.mu.Unlock()
}

// loadedFrame is one timestep's worth of data for one PE, produced by the
// loader (inline in serial mode, the reader goroutine in overlapped mode).
type loadedFrame struct {
	frame  int
	axis   volume.Axis
	region volume.Region
	vol    *volume.Volume
	// cells is vol's min/max macrocell summary, built once per loaded
	// timestep by the loader so the renderer's empty-space skipping never
	// pays the scan. It summarizes values only, so it remains valid for the
	// process-pair mode's deep copy of vol.
	cells *render.Macrocells
	bytes int64
	dur   time.Duration
	// copyDur is the reader-to-renderer transmission cost paid in
	// OverlappedProcessPair mode.
	copyDur time.Duration
	err     error
	// cached carries the finished payloads when the frame was served from the
	// slab-texture cache (hit true); vol stays nil and no render happens.
	cached framecache.Slab
	hit    bool
}

// cacheKey addresses this run's slab of the given frame in the shared cache,
// folding the decomposition (axis, PE count) into the dataset identity so a
// run decomposing differently never sees another run's slabs. ok is false
// when caching is disabled for this run.
func (b *BackEnd) cacheKey(frame int, axis volume.Axis) (framecache.Key, bool) {
	if b.cfg.Cache == nil || b.cfg.CacheDataset == "" || b.cfg.Grid != nil || b.cfg.Elevation {
		return framecache.Key{}, false
	}
	return framecache.Key{
		Dataset:  framecache.DatasetKey(b.cfg.CacheDataset, int(axis), b.cfg.PEs),
		Timestep: frame,
		TF:       b.cfg.CacheTF,
	}, true
}

// load fetches one PE's slab of one timestep and logs the load phase. A
// cancelled ctx aborts a network-backed load in flight.
func (b *BackEnd) load(ctx context.Context, rank, frame int, axis volume.Axis) loadedFrame {
	if key, ok := b.cacheKey(frame, axis); ok {
		if slab, hit := b.cfg.Cache.Slab(key, rank); hit {
			return loadedFrame{frame: frame, axis: axis, cached: slab, hit: true}
		}
	}
	regions := volume.Slabs(b.nx, b.ny, b.nz, axis, b.cfg.PEs)
	region := regions[rank]
	b.log(netlogger.BELoadStart, frame, rank, region.Bytes())
	start := time.Now()
	vol, bytes, err := b.cfg.Source.LoadRegion(ctx, frame, region)
	var cells *render.Macrocells
	if err == nil && vol != nil {
		// Summarize on the loader side: in overlapped mode this overlaps the
		// previous frame's render, so the raycaster gets skipping for free.
		cells = render.BuildMacrocells(vol)
	}
	dur := time.Since(start)
	b.log(netlogger.BELoadEnd, frame, rank, bytes)
	return loadedFrame{frame: frame, axis: axis, region: region, vol: vol, cells: cells, bytes: bytes, dur: dur, err: err}
}

// renderAndSend renders one loaded slab and ships the light and heavy
// payloads to the viewer, returning the per-frame statistics. The raycast is
// tiled across the shared render pool (built from the run's LUT, skipping
// empty space through the loader-built macrocells) and draws its image from
// the free list, so steady-state frames allocate only their wire payloads.
// A ctx cancelled mid-frame abandons the remaining tiles and returns the
// context error.
func (b *BackEnd) renderAndSend(ctx context.Context, rank int, lf loadedFrame) (FrameStats, error) {
	fs := FrameStats{Frame: lf.frame, PE: rank, Load: lf.dur, Copy: lf.copyDur, BytesLoaded: lf.bytes, CacheHit: lf.hit}
	if lf.err != nil {
		return fs, fmt.Errorf("backend: PE %d frame %d load: %w", rank, lf.frame, lf.err)
	}

	var light *wire.LightPayload
	var heavy *wire.HeavyPayload
	if lf.hit {
		// Cache hit: the finished payloads were rendered by an earlier run of
		// the same content identity. The raycaster never runs.
		light, heavy = lf.cached.Light, lf.cached.Heavy
	} else {
		// Render phase.
		b.log(netlogger.BERenderStart, lf.frame, rank, 0)
		renderStart := time.Now()
		full := volume.Region{X1: lf.vol.NX, Y1: lf.vol.NY, Z1: lf.vol.NZ}
		img := render.GetImage(render.PlaneDims(full, lf.axis))
		st, rerr := b.pool.RenderSlab(ctx, lf.vol, full, b.lut, lf.cells, lf.axis, img)
		if rerr != nil {
			render.PutImage(img)
			return fs, fmt.Errorf("backend: PE %d frame %d render: %w", rank, lf.frame, rerr)
		}
		fs.TilesSkipped = st.TilesSkipped
		var grid []amr.Segment
		if b.cfg.Grid != nil {
			h := amr.Build(lf.vol, *b.cfg.Grid)
			grid = h.WireframeSegments()
		}
		var elev []float32
		if b.cfg.Elevation {
			elev = ibr.QuadmeshElevation(lf.vol, full, b.tf, lf.axis)
		}
		fs.Render = time.Since(renderStart)
		b.log(netlogger.BERenderEnd, lf.frame, rank, 0)

		// Payload assembly: place the slab-center quad in source-volume
		// coordinates so the viewer's scene graph lines up across PEs.
		cx, cy, cz := lf.region.Center()
		rx, ry, rz := lf.region.Dims()
		var width, height, depth float64
		switch lf.axis {
		case volume.AxisX:
			width, height, depth = float64(ry), float64(rz), float64(rx)
		case volume.AxisY:
			width, height, depth = float64(rx), float64(rz), float64(ry)
		default:
			width, height, depth = float64(rx), float64(ry), float64(rz)
		}
		heavy = &wire.HeavyPayload{
			Frame: lf.frame, PE: rank,
			TexWidth: img.W, TexHeight: img.H,
			Texture:   img.ToRGBA8(),
			Grid:      grid,
			Elevation: elev,
		}
		light = &wire.LightPayload{
			Frame: lf.frame, PE: rank,
			SlabIndex: rank, SlabCount: b.cfg.PEs,
			Axis:     lf.axis,
			TexWidth: img.W, TexHeight: img.H, BytesPerPixel: 4,
			CenterX: cx, CenterY: cy, CenterZ: cz,
			Width: width, Height: height, Depth: depth,
			HeavyBytes:   heavy.WireSize(),
			GridSegments: len(grid),
			HasElevation: elev != nil,
		}
		// The payloads hold their own RGBA8 copy; the float image goes back
		// to the free list for the next frame.
		render.PutImage(img)
		if key, ok := b.cacheKey(lf.frame, lf.axis); ok {
			// Cached payloads are shared by reference across future runs and
			// their fan-out viewers; they are immutable from here on — which
			// is what lets this insert transfer ownership instead of copying.
			b.cfg.Cache.PutSlabOwned(key, rank, b.cfg.PEs, framecache.Slab{Light: light, Heavy: heavy})
			b.mu.Lock()
			if b.contributed == nil {
				b.contributed = make(map[framecache.Key]struct{})
			}
			b.contributed[key] = struct{}{}
			b.mu.Unlock()
		}
	}

	// Send phase: light payload (metadata) then heavy payload (texture).
	sink := b.sink(rank)
	sendStart := time.Now()
	b.log(netlogger.BELightSend, lf.frame, rank, light.WireSize())
	if err := sink.SendLight(light); err != nil {
		return fs, fmt.Errorf("backend: PE %d frame %d send light: %w", rank, lf.frame, err)
	}
	b.log(netlogger.BELightEnd, lf.frame, rank, light.WireSize())
	b.log(netlogger.BEHeavySend, lf.frame, rank, heavy.WireSize())
	if err := sink.SendHeavy(heavy); err != nil {
		return fs, fmt.Errorf("backend: PE %d frame %d send heavy: %w", rank, lf.frame, err)
	}
	b.log(netlogger.BEHeavyEnd, lf.frame, rank, heavy.WireSize())
	fs.Send = time.Since(sendStart)
	fs.BytesSent = light.WireSize() + heavy.WireSize()
	if b.cfg.OnSlab != nil && b.cfg.Grid == nil && !b.cfg.Elevation {
		b.cfg.OnSlab(light, heavy)
	}
	return fs, nil
}

// record appends one PE-frame record to the run statistics and feeds the
// OnFrame hook.
func (b *BackEnd) record(fs FrameStats) {
	b.mu.Lock()
	b.perFrame = append(b.perFrame, fs)
	b.mu.Unlock()
	if b.cfg.OnFrame != nil {
		b.cfg.OnFrame(fs)
	}
}

// Run executes the back end: one goroutine per PE, a frame barrier between
// timesteps (the paper's MPI barrier of Figure 18), and — in overlapped mode
// — one reader goroutine per PE. It returns aggregate statistics; the first
// PE error aborts the run. Cancelling ctx aborts the run at the next phase
// boundary: the barrier releases every PE, the reader goroutines are signalled
// to stop, and Run returns ctx.Err().
func (b *BackEnd) Run(ctx context.Context) (RunStats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	b.latchAxis()

	// One render pool for the whole run: every PE tiles its raycasts across
	// it, bounding total render parallelism at min(GOMAXPROCS, RenderWorkers)
	// regardless of PE count. Closed only after every PE goroutine has
	// joined, so no render is in flight at Close.
	b.pool = render.NewPool(b.cfg.RenderWorkers)
	defer b.pool.Close()

	barrier := newCyclicBarrier(b.cfg.PEs, b.latchAxis)
	// A cancelled context releases every PE blocked at the barrier.
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			barrier.Abort()
		case <-watchDone:
		}
	}()

	errs := make([]error, b.cfg.PEs)
	var wg sync.WaitGroup
	for rank := 0; rank < b.cfg.PEs; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			if b.cfg.Mode.overlapped() {
				errs[rank] = b.runPEOverlapped(ctx, rank, barrier)
			} else {
				errs[rank] = b.runPESerial(ctx, rank, barrier)
			}
		}(rank)
	}
	wg.Wait()

	b.mu.Lock()
	rs := RunStats{
		Mode:      b.cfg.Mode,
		PEs:       b.cfg.PEs,
		Frames:    b.frames,
		Elapsed:   time.Since(start),
		PerFrame:  append([]FrameStats(nil), b.perFrame...),
		AxisFlips: b.axisFlips,
	}
	b.mu.Unlock()
	for _, f := range rs.PerFrame {
		rs.BytesIn += f.BytesLoaded
		rs.BytesOut += f.BytesSent
	}
	// When a PE failed, a context error outranks it: every PE reports
	// errAborted once the watcher trips the barrier, which would mask the
	// cause. A run whose PEs all finished cleanly stays a success even if
	// ctx expired in the instant after the last frame.
	for _, peErr := range errs {
		if peErr == nil {
			continue
		}
		// The run is aborting: any frame it only partially assembled in the
		// shared cache will never complete. Abandon those assemblies so they
		// do not sit in the cache's pending map for the daemon's lifetime.
		b.abandonContributed()
		if err := ctx.Err(); err != nil {
			return rs, err
		}
		return rs, peErr
	}
	return rs, nil
}

// abandonContributed drops this run's unfinished frame assemblies from the
// shared cache. Completed (resident) frames are untouched — Abandon only
// affects the pending map — so concurrent runs sharing the cache lose at
// most the frames this run was mid-way through contributing.
func (b *BackEnd) abandonContributed() {
	b.mu.Lock()
	keys := make([]framecache.Key, 0, len(b.contributed))
	for key := range b.contributed {
		keys = append(keys, key)
	}
	b.mu.Unlock()
	for _, key := range keys {
		b.cfg.Cache.Abandon(key)
	}
}

// runPESerial is the serial per-PE loop: load, render, send, barrier.
func (b *BackEnd) runPESerial(ctx context.Context, rank int, barrier *cyclicBarrier) error {
	for frame := 0; frame < b.frames; frame++ {
		if err := ctx.Err(); err != nil {
			barrier.Abort()
			return err
		}
		axis := b.Axis()
		b.log(netlogger.BEFrameStart, frame, rank, 0)
		lf := b.load(ctx, rank, frame, axis)
		fs, err := b.renderAndSend(ctx, rank, lf)
		if err != nil {
			barrier.Abort()
			return err
		}
		b.record(fs)
		b.log(netlogger.BEFrameEnd, frame, rank, 0)
		if aborted := barrier.Await(); aborted {
			return errAborted
		}
	}
	return nil
}

// runPEOverlapped is the overlapped per-PE loop of Appendix B: a reader
// goroutine loads timestep t+1 while the render goroutine processes timestep
// t. The request and result channels play the role of the paper's SystemV
// semaphores A and B; Go's garbage-collected slab volumes replace the
// explicit double-buffered shared memory block.
//
// Unlike the paper's detached pthread, the reader is joined before the PE
// returns: a failed PE, a closed viewer sink, or a cancelled context stops
// the reader instead of leaking it past the end of the run.
func (b *BackEnd) runPEOverlapped(ctx context.Context, rank int, barrier *cyclicBarrier) error {
	req := make(chan struct {
		frame int
		axis  volume.Axis
	}, 1)
	res := make(chan loadedFrame, 1)
	done := make(chan struct{})
	readerDone := make(chan struct{})

	// Join the reader on every exit path: close(done) releases it from any
	// channel operation, then wait for it to finish (a load already in
	// flight completes first; the data sources bound that time). The join is
	// bounded: a source whose read hangs without a deadline cannot observe
	// any stop signal, and leaking that one goroutine beats hanging the
	// whole run — and with it the caller that owns the source and would
	// close it.
	defer func() {
		close(done)
		close(req)
		select {
		case <-readerDone:
		default:
			t := time.NewTimer(readerJoinGrace)
			defer t.Stop()
			select {
			case <-readerDone:
			case <-t.C:
			}
		}
	}()

	// Reader goroutine (the paper's reader pthread). In process-pair mode
	// the reader stands in for a separate MPI rank, so the loaded timestep is
	// transmitted (deep-copied) to the renderer instead of shared — the extra
	// cost Appendix B avoids with the threaded design.
	go func() {
		defer close(readerDone)
		for {
			select {
			case r, ok := <-req:
				if !ok {
					return
				}
				lf := b.load(ctx, rank, r.frame, r.axis)
				if b.cfg.Mode == OverlappedProcessPair && lf.err == nil && !lf.hit {
					copyStart := time.Now()
					lf.vol = lf.vol.Clone()
					lf.copyDur = time.Since(copyStart)
				}
				select {
				case res <- lf:
				case <-done:
					return
				case <-ctx.Done():
					return
				}
			case <-done:
				return
			case <-ctx.Done():
				return
			}
		}
	}()

	// Prime the pipeline with frame 0 (the render process "first requests
	// data from time step zero").
	req <- struct {
		frame int
		axis  volume.Axis
	}{0, b.Axis()}

	for frame := 0; frame < b.frames; frame++ {
		b.log(netlogger.BEFrameStart, frame, rank, 0)
		var lf loadedFrame
		select {
		case lf = <-res:
		case <-ctx.Done():
			barrier.Abort()
			return ctx.Err()
		}
		// Immediately request the next timestep so loading overlaps the
		// rendering below. The axis hint latched at the last barrier applies.
		if frame+1 < b.frames {
			req <- struct {
				frame int
				axis  volume.Axis
			}{frame + 1, b.Axis()}
		}
		fs, err := b.renderAndSend(ctx, rank, lf)
		if err != nil {
			barrier.Abort()
			return err
		}
		b.record(fs)
		b.log(netlogger.BEFrameEnd, frame, rank, 0)
		if aborted := barrier.Await(); aborted {
			return errAborted
		}
	}
	return nil
}

// errAborted is returned by PEs that stopped because another PE failed.
var errAborted = errors.New("backend: run aborted by peer PE failure")

// readerJoinGrace bounds how long an exiting PE waits for its reader
// goroutine once the stop signal is posted. Normal loads finish well inside
// it; only a source read hung without a deadline exhausts it, and that
// reader is then deliberately detached.
const readerJoinGrace = 5 * time.Second

// cyclicBarrier synchronizes the PE goroutines at each frame boundary and
// runs an action (axis latching) exactly once per cycle. Abort releases all
// waiters with an aborted indication so a failing PE does not hang the rest.
type cyclicBarrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	parties int
	count   int
	gen     int
	aborted bool
	action  func()
}

func newCyclicBarrier(parties int, action func()) *cyclicBarrier {
	b := &cyclicBarrier{parties: parties, action: action}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Await blocks until all parties arrive (or the barrier is aborted) and
// reports whether the barrier was aborted.
func (b *cyclicBarrier) Await() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.aborted {
		return true
	}
	gen := b.gen
	b.count++
	if b.count == b.parties {
		if b.action != nil {
			b.action()
		}
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		return b.aborted
	}
	for gen == b.gen && !b.aborted {
		b.cond.Wait()
	}
	return b.aborted
}

// Abort permanently releases the barrier; all current and future waiters
// return immediately with the aborted indication.
func (b *cyclicBarrier) Abort() {
	b.mu.Lock()
	b.aborted = true
	b.cond.Broadcast()
	b.mu.Unlock()
}
