package backend

import (
	"context"
	"fmt"
	"sync"

	"visapult/internal/dpss"
	"visapult/internal/dpss/fabric"
	"visapult/internal/volume"
)

// FabricSource reads timesteps from a federated DPSS fabric: the same
// block-level region reads as DPSSSource, but every read is replica-aware —
// a timestep dataset is looked up across the federation's clusters and a
// dark or wedged replica fails over to the next one mid-run. This is the
// Combustion Corridor configuration: multiple caches warmed from the
// archive, the back end reading from whichever is close and healthy.
type FabricSource struct {
	fb    *fabric.Fabric
	base  string
	nx    int
	ny    int
	nz    int
	steps int

	mu    sync.Mutex
	files map[int]*fabric.File
}

// NewFabricSource builds a source reading from the given fabric. base is the
// dataset base name passed to dpss.TimestepDatasetName; dims are the volume
// dimensions of every timestep; steps is the number of timesteps warmed into
// the federation.
func NewFabricSource(fb *fabric.Fabric, base string, nx, ny, nz, steps int) (*FabricSource, error) {
	if fb == nil {
		return nil, fmt.Errorf("backend: nil DPSS fabric")
	}
	if nx <= 0 || ny <= 0 || nz <= 0 || steps <= 0 {
		return nil, fmt.Errorf("backend: invalid fabric source geometry %dx%dx%d x %d steps", nx, ny, nz, steps)
	}
	return &FabricSource{fb: fb, base: base, nx: nx, ny: ny, nz: nz, steps: steps,
		files: make(map[int]*fabric.File)}, nil
}

// Fabric returns the federation this source reads from.
func (d *FabricSource) Fabric() *fabric.Fabric { return d.fb }

// Dims implements DataSource.
func (d *FabricSource) Dims() (int, int, int) { return d.nx, d.ny, d.nz }

// Timesteps implements DataSource.
func (d *FabricSource) Timesteps() int { return d.steps }

// StepBytes implements DataSource.
func (d *FabricSource) StepBytes() int64 {
	return int64(d.nx) * int64(d.ny) * int64(d.nz) * 4
}

// file returns (opening if needed) the federated handle for timestep t.
func (d *FabricSource) file(ctx context.Context, t int) (*fabric.File, error) {
	d.mu.Lock()
	if f, ok := d.files[t]; ok {
		d.mu.Unlock()
		return f, nil
	}
	d.mu.Unlock()
	// Open outside the lock: it may walk several replicas of a degraded
	// federation, and one slow timestep must not serialize the other PEs.
	f, err := d.fb.Open(ctx, dpss.TimestepDatasetName(d.base, t))
	if err != nil {
		return nil, fmt.Errorf("backend: open timestep %d: %w", t, err)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if prev, ok := d.files[t]; ok { // another PE won the race
		f.Close()
		return prev, nil
	}
	d.files[t] = f
	return f, nil
}

// headerBytes is the size of the volume serialization header preceding the
// voxel data in each dataset.
func (d *FabricSource) headerBytes() int64 {
	return volume.EncodedSize(d.nx, d.ny, d.nz) - d.StepBytes()
}

// LoadRegion implements DataSource. The returned byte count is the number of
// voxel-data bytes requested from the federation; which cluster served them
// is the fabric's concern.
func (d *FabricSource) LoadRegion(ctx context.Context, t int, r volume.Region) (*volume.Volume, int64, error) {
	if t < 0 || t >= d.steps {
		return nil, 0, fmt.Errorf("backend: timestep %d out of range [0,%d)", t, d.steps)
	}
	f, err := d.file(ctx, t)
	if err != nil {
		return nil, 0, err
	}
	raw, n, err := readRegionAt(ctx, f, d.headerBytes(), d.nx, d.ny, r)
	if err != nil {
		return nil, n, err
	}
	rx, ry, rz := r.Dims()
	sub, err := volume.FromData(rx, ry, rz, raw)
	if err != nil {
		return nil, n, err
	}
	return sub, n, nil
}

// Close closes all cached federated handles; the fabric itself stays up.
func (d *FabricSource) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, f := range d.files {
		f.Close()
	}
	d.files = make(map[int]*fabric.File)
	return nil
}

// Compile-time interface check.
var _ DataSource = (*FabricSource)(nil)
