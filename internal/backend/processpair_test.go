package backend

import (
	"context"
	"testing"
	"time"

	"visapult/internal/volume"
	"visapult/internal/wire"
)

func TestProcessPairMatchesOverlappedOutput(t *testing.T) {
	// The MPI-style process-pair variant must produce byte-identical textures
	// to the threaded overlapped variant; only its cost differs.
	const pes, steps = 2, 3
	src := memSource(t, steps, 16, 12, 8)
	run := func(mode Mode) map[[2]int]*wire.HeavyPayload {
		sink := &collectSink{}
		be, err := New(Config{PEs: pes, Source: src, Sinks: []FrameSink{sink}, Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := be.Run(context.Background()); err != nil {
			t.Fatalf("run %v: %v", mode, err)
		}
		sink.mu.Lock()
		defer sink.mu.Unlock()
		out := make(map[[2]int]*wire.HeavyPayload)
		for _, hp := range sink.heavies {
			out[[2]int{hp.Frame, hp.PE}] = hp
		}
		return out
	}
	threaded := run(Overlapped)
	pair := run(OverlappedProcessPair)
	if len(threaded) != len(pair) {
		t.Fatalf("payload count mismatch: %d vs %d", len(threaded), len(pair))
	}
	for key, hp := range threaded {
		other, ok := pair[key]
		if !ok {
			t.Fatalf("process-pair run missing frame %d PE %d", key[0], key[1])
		}
		if string(hp.Texture) != string(other.Texture) {
			t.Fatalf("texture mismatch for frame %d PE %d", key[0], key[1])
		}
	}
}

func TestProcessPairPaysCopyCost(t *testing.T) {
	src := memSource(t, 3, 32, 32, 16)
	runStats := func(mode Mode) RunStats {
		be, err := New(Config{PEs: 1, Source: src, Sinks: []FrameSink{&NullSink{}}, Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		rs, err := be.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return rs
	}
	threaded := runStats(Overlapped)
	pair := runStats(OverlappedProcessPair)
	if threaded.MeanCopy() != 0 {
		t.Fatalf("threaded overlap should not pay a copy cost, got %v", threaded.MeanCopy())
	}
	if pair.MeanCopy() <= 0 {
		t.Fatal("process-pair mode should record a nonzero copy cost")
	}
	for _, f := range pair.PerFrame {
		if f.Copy <= 0 {
			t.Fatalf("frame %d has no copy cost recorded", f.Frame)
		}
	}
	var serial RunStats
	serial = runStats(Serial)
	if serial.MeanCopy() != 0 {
		t.Fatal("serial mode should not pay a copy cost")
	}
}

func TestModeStringAndOverlappedHelper(t *testing.T) {
	if OverlappedProcessPair.String() != "overlapped-process-pair" {
		t.Fatalf("unexpected mode string %q", OverlappedProcessPair.String())
	}
	if !OverlappedProcessPair.overlapped() || !Overlapped.overlapped() || Serial.overlapped() {
		t.Fatal("overlapped() helper misclassifies modes")
	}
}

func TestProcessPairAxisSwitchStillWorks(t *testing.T) {
	src := memSource(t, 2, 16, 12, 8)
	sink := &collectSink{}
	be, err := New(Config{PEs: 2, Source: src, Sinks: []FrameSink{sink}, Mode: OverlappedProcessPair, Axis: volume.AxisZ})
	if err != nil {
		t.Fatal(err)
	}
	be.SetAxis(volume.AxisY)
	rs, err := be.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rs.AxisFlips != 1 {
		t.Fatalf("axis flips = %d, want 1", rs.AxisFlips)
	}
	if rs.Elapsed <= 0 || rs.Elapsed > time.Minute {
		t.Fatalf("implausible elapsed time %v", rs.Elapsed)
	}
}
