package backend

import (
	"context"
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"visapult/internal/amr"
	"visapult/internal/backend/framecache"
	"visapult/internal/datagen"
	"visapult/internal/netlogger"
	"visapult/internal/render"
	"visapult/internal/volume"
	"visapult/internal/wire"
)

// testVolume returns a small volume with a recognizable gradient.
func testVolume(nx, ny, nz int) *volume.Volume {
	v := volume.MustNew(nx, ny, nz)
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				v.Set(x, y, z, float32(x+y+z)/float32(nx+ny+nz))
			}
		}
	}
	return v
}

// collectSink records every payload it receives, in arrival order.
type collectSink struct {
	mu      sync.Mutex
	lights  []*wire.LightPayload
	heavies []*wire.HeavyPayload
}

func (c *collectSink) SendLight(lp *wire.LightPayload) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lights = append(c.lights, lp)
	return nil
}

func (c *collectSink) SendHeavy(hp *wire.HeavyPayload) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.heavies = append(c.heavies, hp)
	return nil
}

func (c *collectSink) counts() (int, int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.lights), len(c.heavies)
}

// failSink fails every heavy send, to exercise error propagation.
type failSink struct{}

func (failSink) SendLight(*wire.LightPayload) error { return nil }
func (failSink) SendHeavy(*wire.HeavyPayload) error { return errors.New("sink unavailable") }

func memSource(t *testing.T, steps, nx, ny, nz int) *MemorySource {
	t.Helper()
	vols := make([]*volume.Volume, steps)
	for i := range vols {
		vols[i] = testVolume(nx, ny, nz)
	}
	src, err := NewMemorySource(vols...)
	if err != nil {
		t.Fatalf("memory source: %v", err)
	}
	return src
}

func TestNewValidation(t *testing.T) {
	src := memSource(t, 1, 8, 8, 8)
	sink := &NullSink{}
	cases := []struct {
		name string
		cfg  Config
	}{
		{"nil source", Config{PEs: 2, Sinks: []FrameSink{sink}}},
		{"zero PEs", Config{Source: src, Sinks: []FrameSink{sink}}},
		{"no sinks", Config{Source: src, PEs: 2}},
		{"wrong sink count", Config{Source: src, PEs: 3, Sinks: []FrameSink{sink, sink}}},
	}
	for _, tc := range cases {
		if _, err := New(tc.cfg); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
	if _, err := New(Config{Source: src, PEs: 2, Sinks: []FrameSink{sink}}); err != nil {
		t.Errorf("valid shared-sink config rejected: %v", err)
	}
}

func TestSerialRunDeliversEveryFrameAndPE(t *testing.T) {
	const pes, steps = 4, 3
	src := memSource(t, steps, 16, 12, 8)
	sink := &collectSink{}
	be, err := New(Config{
		PEs: pes, Source: src, Sinks: []FrameSink{sink},
		Mode: Serial, Axis: volume.AxisZ,
	})
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	rs, err := be.Run(context.Background())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	nl, nh := sink.counts()
	if nl != pes*steps || nh != pes*steps {
		t.Fatalf("got %d light / %d heavy payloads, want %d each", nl, nh, pes*steps)
	}
	if rs.Frames != steps || rs.PEs != pes || len(rs.PerFrame) != pes*steps {
		t.Fatalf("run stats %+v inconsistent", rs)
	}
	if rs.BytesIn == 0 || rs.BytesOut == 0 {
		t.Fatal("expected nonzero traffic counters")
	}
	// Every (frame, PE) pair must appear exactly once.
	seen := make(map[[2]int]bool)
	for _, f := range rs.PerFrame {
		key := [2]int{f.Frame, f.PE}
		if seen[key] {
			t.Fatalf("duplicate record for frame %d PE %d", f.Frame, f.PE)
		}
		seen[key] = true
	}
}

func TestSlabTexturesCompositeToFullRender(t *testing.T) {
	// The defining property of the architecture: compositing the per-PE slab
	// textures reproduces (to within compositing error) a full-volume render.
	const pes = 4
	v := testVolume(24, 16, 16)
	src, err := NewMemorySource(v)
	if err != nil {
		t.Fatal(err)
	}
	sink := &collectSink{}
	be, err := New(Config{PEs: pes, Source: src, Sinks: []FrameSink{sink}, Axis: volume.AxisZ})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := be.Run(context.Background()); err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(sink.heavies) != pes {
		t.Fatalf("got %d heavy payloads, want %d", len(sink.heavies), pes)
	}
	// Rebuild images in slab order (PE rank == slab index along Z, back
	// slabs have higher Z). Composite back-to-front.
	images := make([]*render.Image, pes)
	for i, hp := range sink.heavies {
		img, err := render.FromRGBA8(hp.TexWidth, hp.TexHeight, hp.Texture)
		if err != nil {
			t.Fatalf("texture %d: %v", i, err)
		}
		images[hp.PE] = img
	}
	// Back-to-front along +Z means highest slab index first.
	ordered := make([]*render.Image, 0, pes)
	for i := pes - 1; i >= 0; i-- {
		ordered = append(ordered, images[i])
	}
	composite, err := render.CompositeBackToFront(ordered)
	if err != nil {
		t.Fatalf("composite: %v", err)
	}
	full, _ := render.RenderFull(v, render.DefaultCombustionTF(), volume.AxisZ)
	rmse, err := composite.RMSE(full)
	if err != nil {
		t.Fatalf("rmse: %v", err)
	}
	// RGBA8 quantization plus compositing-order error stays small.
	if rmse > 0.06 {
		t.Fatalf("slab composite deviates from full render: RMSE %.4f", rmse)
	}
}

func TestOverlappedMatchesSerialOutput(t *testing.T) {
	const pes, steps = 2, 4
	src := memSource(t, steps, 16, 8, 8)
	run := func(mode Mode) []*wire.HeavyPayload {
		sink := &collectSink{}
		be, err := New(Config{PEs: pes, Source: src, Sinks: []FrameSink{sink}, Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := be.Run(context.Background()); err != nil {
			t.Fatalf("run %v: %v", mode, err)
		}
		// Index by (frame, PE) for comparison.
		byKey := make(map[[2]int]*wire.HeavyPayload)
		sink.mu.Lock()
		defer sink.mu.Unlock()
		for _, hp := range sink.heavies {
			byKey[[2]int{hp.Frame, hp.PE}] = hp
		}
		out := make([]*wire.HeavyPayload, 0, len(byKey))
		for f := 0; f < steps; f++ {
			for pe := 0; pe < pes; pe++ {
				out = append(out, byKey[[2]int{f, pe}])
			}
		}
		return out
	}
	serial := run(Serial)
	overlapped := run(Overlapped)
	if len(serial) != len(overlapped) {
		t.Fatalf("payload count mismatch: %d vs %d", len(serial), len(overlapped))
	}
	for i := range serial {
		if serial[i] == nil || overlapped[i] == nil {
			t.Fatalf("missing payload at %d", i)
		}
		if string(serial[i].Texture) != string(overlapped[i].Texture) {
			t.Fatalf("texture mismatch between serial and overlapped at %d", i)
		}
	}
}

func TestOverlappedIsNotSlowerThanSerial(t *testing.T) {
	// With a deliberately slow data source (sleep-injected, standing in for
	// a WAN load) and a slow downstream (standing in for render + transmit),
	// the overlapped pipeline must beat the serial one by a visible margin.
	// This is the paper's Figure 12-vs-13 experiment in miniature: with
	// L ~= R, the speedup approaches 2N/(N+1).
	const steps = 6
	const phase = 20 * time.Millisecond
	base := memSource(t, steps, 16, 16, 8)
	slow := &delaySource{DataSource: base, delay: phase}

	elapsed := func(mode Mode) time.Duration {
		sink := &slowSink{delay: phase}
		be, err := New(Config{PEs: 1, Source: slow, Sinks: []FrameSink{sink}, Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		rs, err := be.Run(context.Background())
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		return rs.Elapsed
	}
	serial := elapsed(Serial)
	overlapped := elapsed(Overlapped)
	// Theory: serial ~= steps*2*phase, overlapped ~= (steps+1)*phase. Demand
	// at least a 20% improvement to keep the test robust under load.
	if float64(overlapped) > 0.8*float64(serial) {
		t.Fatalf("overlapped (%v) not sufficiently faster than serial (%v)", overlapped, serial)
	}
}

// delaySource injects a fixed delay into every load, standing in for a slow
// WAN link.
type delaySource struct {
	DataSource
	delay time.Duration
}

func (d *delaySource) LoadRegion(ctx context.Context, t int, r volume.Region) (*volume.Volume, int64, error) {
	time.Sleep(d.delay)
	return d.DataSource.LoadRegion(ctx, t, r)
}

// slowSink injects a fixed delay into every heavy send, standing in for the
// non-load half (render + transmit) of the per-frame pipeline.
type slowSink struct {
	NullSink
	delay time.Duration
}

func (s *slowSink) SendHeavy(hp *wire.HeavyPayload) error {
	time.Sleep(s.delay)
	return s.NullSink.SendHeavy(hp)
}

func TestNetLoggerInstrumentation(t *testing.T) {
	const pes, steps = 2, 2
	src := memSource(t, steps, 12, 8, 8)
	logger := netlogger.New("testhost", "backend")
	be, err := New(Config{PEs: pes, Source: src, Sinks: []FrameSink{&NullSink{}}, Logger: logger})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := be.Run(context.Background()); err != nil {
		t.Fatalf("run: %v", err)
	}
	a := netlogger.Analyze(logger.Events())
	loads := a.Phases(netlogger.BELoadStart, netlogger.BELoadEnd)
	renders := a.Phases(netlogger.BERenderStart, netlogger.BERenderEnd)
	if len(loads) != pes*steps || len(renders) != pes*steps {
		t.Fatalf("got %d load / %d render phases, want %d each", len(loads), len(renders), pes*steps)
	}
	for _, p := range loads {
		if p.Duration() < 0 {
			t.Fatal("negative load phase duration")
		}
	}
}

func TestAxisSwitchTakesEffectAtFrameBoundary(t *testing.T) {
	const pes, steps = 2, 3
	src := memSource(t, steps, 16, 12, 8)
	sink := &collectSink{}
	be, err := New(Config{PEs: pes, Source: src, Sinks: []FrameSink{sink}, Axis: volume.AxisZ})
	if err != nil {
		t.Fatal(err)
	}
	// Hint a new axis before the run starts: all frames should use it, and
	// exactly one flip should be recorded.
	be.SetAxis(volume.AxisX)
	rs, err := be.Run(context.Background())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if rs.AxisFlips != 1 {
		t.Fatalf("axis flips = %d, want 1", rs.AxisFlips)
	}
	sink.mu.Lock()
	defer sink.mu.Unlock()
	for _, lp := range sink.lights {
		if lp.Axis != volume.AxisX {
			t.Fatalf("frame %d PE %d used axis %v, want X", lp.Frame, lp.PE, lp.Axis)
		}
	}
}

func TestGridAndElevationPayloads(t *testing.T) {
	src := memSource(t, 1, 16, 16, 8)
	sink := &collectSink{}
	be, err := New(Config{
		PEs: 2, Source: src, Sinks: []FrameSink{sink},
		Grid:      &amr.Config{RefineThreshold: 0.3, MaxLevels: 2, MinBoxSize: 2},
		Elevation: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := be.Run(context.Background()); err != nil {
		t.Fatalf("run: %v", err)
	}
	sink.mu.Lock()
	defer sink.mu.Unlock()
	for _, hp := range sink.heavies {
		if len(hp.Elevation) != hp.TexWidth*hp.TexHeight {
			t.Fatalf("elevation map has %d entries, want %d", len(hp.Elevation), hp.TexWidth*hp.TexHeight)
		}
	}
	foundGrid := false
	for _, lp := range sink.lights {
		if lp.GridSegments > 0 {
			foundGrid = true
		}
		if !lp.HasElevation {
			t.Fatal("light payload does not announce elevation map")
		}
	}
	if !foundGrid {
		t.Fatal("no light payload announced grid segments")
	}
}

func TestSendFailureAbortsAllPEs(t *testing.T) {
	src := memSource(t, 4, 12, 8, 8)
	be, err := New(Config{PEs: 3, Source: src, Sinks: []FrameSink{failSink{}}})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := be.Run(context.Background())
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("expected run to fail when the sink fails")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("run hung after sink failure (barrier not released)")
	}
}

func TestPerPESinks(t *testing.T) {
	const pes = 3
	src := memSource(t, 2, 12, 9, 6)
	sinks := make([]FrameSink, pes)
	collectors := make([]*collectSink, pes)
	for i := range sinks {
		collectors[i] = &collectSink{}
		sinks[i] = collectors[i]
	}
	be, err := New(Config{PEs: pes, Source: src, Sinks: sinks})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := be.Run(context.Background()); err != nil {
		t.Fatalf("run: %v", err)
	}
	for i, c := range collectors {
		nl, nh := c.counts()
		if nl != 2 || nh != 2 {
			t.Fatalf("sink %d received %d light / %d heavy, want 2 each", i, nl, nh)
		}
		c.mu.Lock()
		for _, hp := range c.heavies {
			if hp.PE != i {
				t.Fatalf("sink %d received payload from PE %d", i, hp.PE)
			}
		}
		c.mu.Unlock()
	}
}

func TestTimestepsLimit(t *testing.T) {
	src := memSource(t, 5, 8, 8, 8)
	sink := &collectSink{}
	be, err := New(Config{PEs: 1, Source: src, Sinks: []FrameSink{sink}, Timesteps: 2})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := be.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rs.Frames != 2 {
		t.Fatalf("frames = %d, want 2", rs.Frames)
	}
}

func TestSyntheticSourceCachesTimestep(t *testing.T) {
	gen := datagen.NewCombustion(datagen.CombustionConfig{NX: 16, NY: 8, NZ: 8, Timesteps: 2, Seed: 1})
	src := NewSyntheticSource(gen)
	nx, ny, nz := src.Dims()
	if nx != 16 || ny != 8 || nz != 8 {
		t.Fatalf("dims = %d %d %d", nx, ny, nz)
	}
	r := volume.Region{X1: nx, Y1: ny, Z1: 4}
	a, bytesA, err := src.LoadRegion(context.Background(), 0, r)
	if err != nil {
		t.Fatal(err)
	}
	bRegion := volume.Region{X1: nx, Y1: ny, Z0: 4, Z1: 8}
	b, _, err := src.LoadRegion(context.Background(), 0, bRegion)
	if err != nil {
		t.Fatal(err)
	}
	if bytesA != r.Bytes() {
		t.Fatalf("bytes = %d, want %d", bytesA, r.Bytes())
	}
	if a.Len() == 0 || b.Len() == 0 {
		t.Fatal("empty subvolumes")
	}
	if _, _, err := src.LoadRegion(context.Background(), 99, r); err == nil {
		t.Fatal("expected error for out-of-range timestep")
	}
}

func TestMemorySourceValidation(t *testing.T) {
	if _, err := NewMemorySource(); err == nil {
		t.Fatal("expected error for empty source")
	}
	a := volume.MustNew(4, 4, 4)
	b := volume.MustNew(4, 4, 5)
	if _, err := NewMemorySource(a, b); err == nil {
		t.Fatal("expected error for mismatched dimensions")
	}
	src, err := NewMemorySource(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := src.LoadRegion(context.Background(), 3, volume.Region{X1: 4, Y1: 4, Z1: 4}); err == nil {
		t.Fatal("expected error for out-of-range timestep")
	}
}

func TestModeString(t *testing.T) {
	if Serial.String() != "serial" || Overlapped.String() != "overlapped" {
		t.Fatal("unexpected Mode strings")
	}
}

func TestRunStatsMeans(t *testing.T) {
	rs := RunStats{PerFrame: []FrameStats{
		{Load: 10 * time.Millisecond, Render: 20 * time.Millisecond, Send: 2 * time.Millisecond},
		{Load: 30 * time.Millisecond, Render: 40 * time.Millisecond, Send: 4 * time.Millisecond},
	}}
	if rs.MeanLoad() != 20*time.Millisecond {
		t.Fatalf("mean load = %v", rs.MeanLoad())
	}
	if rs.MeanRender() != 30*time.Millisecond {
		t.Fatalf("mean render = %v", rs.MeanRender())
	}
	if rs.MeanSend() != 3*time.Millisecond {
		t.Fatalf("mean send = %v", rs.MeanSend())
	}
	var empty RunStats
	if empty.MeanLoad() != 0 {
		t.Fatal("empty stats should have zero means")
	}
}

func TestCyclicBarrierReleasesAllParties(t *testing.T) {
	const parties, rounds = 5, 20
	actionRuns := 0
	b := newCyclicBarrier(parties, func() { actionRuns++ })
	var wg sync.WaitGroup
	for i := 0; i < parties; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if aborted := b.Await(); aborted {
					t.Error("unexpected abort")
					return
				}
			}
		}()
	}
	wg.Wait()
	if actionRuns != rounds {
		t.Fatalf("barrier action ran %d times, want %d", actionRuns, rounds)
	}
}

func TestCyclicBarrierAbort(t *testing.T) {
	b := newCyclicBarrier(2, nil)
	done := make(chan bool, 1)
	go func() { done <- b.Await() }()
	b.Abort()
	select {
	case aborted := <-done:
		if !aborted {
			t.Fatal("waiter not told about abort")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("abort did not release waiter")
	}
	if !b.Await() {
		t.Fatal("post-abort Await should report aborted")
	}
}

func TestLoadRegionDecompositionCoversVolumeProperty(t *testing.T) {
	// For any PE count and axis, the per-PE loads cover every voxel exactly
	// once (no duplication, no gaps) — the invariant behind the O(n^3) vs
	// O(n^2) traffic argument.
	src := memSource(t, 1, 20, 14, 10)
	nx, ny, nz := src.Dims()
	f := func(pesRaw, axisRaw uint8) bool {
		pes := int(pesRaw)%6 + 1
		axis := volume.Axis(int(axisRaw) % 3)
		regions := volume.Slabs(nx, ny, nz, axis, pes)
		var total int64
		for _, r := range regions {
			sub, bytes, err := src.LoadRegion(context.Background(), 0, r)
			if err != nil {
				return false
			}
			if sub.SizeBytes() != bytes {
				return false
			}
			total += bytes
		}
		return total == int64(nx)*int64(ny)*int64(nz)*4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// gatedSource serves rank 0's regions normally but holds rank 1's load until
// the gate closes, then fails it — so rank 0 contributes its slab to the
// cache's pending assembly and rank 1 never does.
type gatedSource struct {
	*MemorySource
	gate chan struct{}
}

func (s *gatedSource) LoadRegion(ctx context.Context, t int, r volume.Region) (*volume.Volume, int64, error) {
	if r.Z0 != 0 { // rank 1's slab of the AxisZ decomposition
		select {
		case <-s.gate:
			return nil, 0, errors.New("injected load failure")
		case <-ctx.Done():
			return nil, 0, ctx.Err()
		}
	}
	return s.MemorySource.LoadRegion(ctx, t, r)
}

// gateClosingSink closes the gate when the first light payload is sent —
// which happens strictly after the sending PE's PutSlabOwned contribution.
type gateClosingSink struct {
	gate chan struct{}
	once sync.Once
}

func (s *gateClosingSink) SendLight(*wire.LightPayload) error {
	s.once.Do(func() { close(s.gate) })
	return nil
}
func (s *gateClosingSink) SendHeavy(*wire.HeavyPayload) error { return nil }

// Regression: a run aborted between its PEs' PutSlab contributions used to
// strand the partial frame assembly in the cache's pending map forever. The
// teardown path must abandon every assembly the run contributed to.
func TestAbortedRunAbandonsPendingAssemblies(t *testing.T) {
	cache := framecache.New(1 << 20)
	gate := make(chan struct{})
	src := &gatedSource{MemorySource: memSource(t, 3, 12, 9, 6), gate: gate}
	sinks := []FrameSink{&gateClosingSink{gate: gate}, &collectSink{}}
	be, err := New(Config{
		PEs: 2, Source: src, Sinks: sinks, Axis: volume.AxisZ,
		Cache: cache, CacheDataset: "mem/12x9x6", CacheTF: "default",
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := be.Run(context.Background()); err == nil {
		t.Fatal("aborted run reported success")
	}
	st := cache.Stats()
	if st.PendingEntries != 0 || st.PendingBytes != 0 {
		t.Fatalf("aborted run stranded pending assemblies: %+v", st)
	}
	if st.Abandoned == 0 {
		t.Fatalf("no assembly abandoned — PE 0's contribution leaked elsewhere: %+v", st)
	}
	if st.Entries != 0 {
		t.Fatalf("partial frame completed somehow: %+v", st)
	}
}
