package backend

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"visapult/internal/wire"
)

// Fanout is the viewer multicast stage of the back end: one run renders each
// frame once and the fanout ships the per-slab textures to every attached
// viewer. It reproduces the paper's marquee exhibit — a single Visapult back
// end feeding both an ImmersaDesk and a tiled display at once — generalized
// to N viewers that may attach and detach while the run executes.
//
// Each attached viewer owns a bounded send queue drained by a dedicated
// sender goroutine, so the render loop never blocks on a slow or dead viewer:
// Publish is non-blocking, and a viewer whose queue is full loses frames (the
// per-viewer drop counter records how many) instead of stalling the PEs —
// the same decoupling the paper applies between the viewer's render thread
// and network arrival, applied in the other direction.
//
// A viewer that attaches mid-run starts receiving at the next frame boundary:
// frames older than the highest frame the back end has begun publishing are
// never queued for it, so every viewer observes a clean suffix of the frame
// sequence rather than a torn frame with some slabs missing.
type Fanout struct {
	pes   int
	queue int

	mu      sync.Mutex
	viewers map[string]*fanViewer // guarded by mu
	// history retains detached viewers whose id was reused by a later
	// Attach (keyed out of the live map), so no attachment's record ever
	// vanishes from Viewers snapshots. Live pointers, not eager snapshots:
	// a retired sender still draining (a wedged Detach that timed out)
	// keeps updating its counters, and the snapshot must see the final
	// tally.
	// guarded by mu
	history []*fanViewer
	order   int // guarded by mu
	// maxFrame is the highest frame number any PE has published so far; -1
	// until the first publish. Late attaches start at maxFrame+1.
	// guarded by mu
	maxFrame int
	closed   bool // guarded by mu
}

// DefaultViewerQueue bounds a viewer's send queue when no bound is given:
// enough to absorb transient jitter for several frames of a multi-PE run
// without letting a dead viewer pin unbounded texture memory.
const DefaultViewerQueue = 32

// ViewerDelivery is a snapshot of one attached viewer's delivery counters.
type ViewerDelivery struct {
	// ID names the viewer (unique among currently attached viewers).
	ID string
	// Attached is when the viewer joined the fan-out.
	Attached time.Time
	// StartFrame is the first frame the viewer was eligible to receive
	// (non-zero for viewers that attached mid-run).
	StartFrame int
	// FramesSent counts (PE, frame) texture pairs actually delivered.
	FramesSent int
	// FramesDropped counts pairs lost to a full queue or a failed sink.
	FramesDropped int
	// QueueDepth is the number of pairs waiting in the send queue.
	QueueDepth int
	// BytesSent is the payload volume delivered to this viewer.
	BytesSent int64
	// Detached is true once the viewer left the fan-out (explicitly, or
	// because its sink failed).
	Detached bool
	// Error is why the viewer's sender stopped, empty for healthy or
	// explicitly detached viewers.
	Error string
}

// fanViewer is the fan-out's record of one attached viewer.
type fanViewer struct {
	id    string
	seq   int
	sinks []FrameSink
	ch    chan fanItem
	stop  chan struct{} // closed by Detach to halt the sender immediately
	done  chan struct{} // closed by the sender on exit

	attached   time.Time
	startFrame int

	// The counters below are guarded by the owning Fanout's mu.
	sent     int
	dropped  int
	bytes    int64
	detached bool
	err      error
}

// fanItem is one queued (PE, frame) texture pair.
type fanItem struct {
	pe    int
	light *wire.LightPayload
	heavy *wire.HeavyPayload
}

// sink returns the FrameSink PE rank's payloads go to for this viewer.
func (v *fanViewer) sink(rank int) FrameSink {
	if len(v.sinks) == 1 {
		return v.sinks[0]
	}
	return v.sinks[rank]
}

// NewFanout builds a fan-out stage for a back end with the given PE count.
// queue bounds each viewer's send queue in (PE, frame) pairs; <= 0 selects
// DefaultViewerQueue.
func NewFanout(pes, queue int) (*Fanout, error) {
	if pes <= 0 {
		return nil, fmt.Errorf("backend: fanout PEs must be positive, got %d", pes)
	}
	if queue <= 0 {
		queue = DefaultViewerQueue
	}
	return &Fanout{pes: pes, queue: queue, viewers: make(map[string]*fanViewer), maxFrame: -1}, nil
}

// PEs returns the PE count the fan-out was built for.
func (f *Fanout) PEs() int { return f.pes }

// Sinks returns the per-PE FrameSinks the back end writes into — pass them
// as Config.Sinks. Each sink pairs a PE's light payload with the heavy
// payload that follows it and publishes the pair to every attached viewer.
func (f *Fanout) Sinks() []FrameSink {
	sinks := make([]FrameSink, f.pes)
	for i := range sinks {
		sinks[i] = &fanoutPESink{f: f, rank: i}
	}
	return sinks
}

// Attach registers a viewer under id with one FrameSink per PE (or a single
// sink shared by all PEs) and starts its sender goroutine. A viewer attached
// while the run is in flight receives frames from the next frame boundary on.
func (f *Fanout) Attach(id string, sinks []FrameSink) error {
	if id == "" {
		return errors.New("backend: fanout viewer id must not be empty")
	}
	switch len(sinks) {
	case 1, f.pes:
	default:
		return fmt.Errorf("backend: viewer %q: got %d sinks, want 1 or %d", id, len(sinks), f.pes)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return fmt.Errorf("backend: fanout is closed, cannot attach viewer %q", id)
	}
	if old, ok := f.viewers[id]; ok {
		if !old.detached {
			return fmt.Errorf("backend: viewer %q is already attached", id)
		}
		// The id is being reused; retire the detached attachment instead of
		// silently discarding its record.
		f.history = append(f.history, old)
	}
	v := &fanViewer{
		id:         id,
		seq:        f.order,
		sinks:      sinks,
		ch:         make(chan fanItem, f.queue),
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
		attached:   time.Now(),
		startFrame: f.maxFrame + 1,
	}
	f.order++
	f.viewers[id] = v
	go f.sendLoop(v)
	return nil
}

// detachGrace bounds how long Detach waits for the viewer's sender to stop.
// A sender wedged in a blocking sink write cannot observe the stop signal
// until its connection is torn down — which the caller does after Detach —
// so Detach must not wait on it unboundedly.
const detachGrace = 2 * time.Second

// Detach removes a viewer from the fan-out, stopping its sender. Frames still
// queued are discarded (counted as drops). The viewer stops receiving
// immediately; the sender itself is waited for up to a bounded grace — one
// wedged in a blocking sink write exits once the caller tears that sink's
// connection down. Detaching an unknown or already detached viewer is an
// error so control planes can surface typos.
func (f *Fanout) Detach(id string) error {
	f.mu.Lock()
	v, ok := f.viewers[id]
	if !ok || v.detached {
		f.mu.Unlock()
		return fmt.Errorf("backend: viewer %q is not attached", id)
	}
	v.detached = true
	close(v.stop)
	f.mu.Unlock()
	select {
	case <-v.done:
	case <-time.After(detachGrace):
	}
	return nil
}

// publish fans one (PE, frame) pair out to every eligible viewer without
// blocking: a full queue drops the pair for that viewer only. It never
// returns an error — viewer failures are per-viewer state, invisible to the
// render loop.
func (f *Fanout) publish(pe int, lp *wire.LightPayload, hp *wire.HeavyPayload) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return
	}
	if lp.Frame > f.maxFrame {
		f.maxFrame = lp.Frame
	}
	for _, v := range f.viewers {
		if v.detached || lp.Frame < v.startFrame {
			continue
		}
		select {
		case v.ch <- fanItem{pe: pe, light: lp, heavy: hp}:
		default:
			v.dropped++
		}
	}
}

// sendLoop is one viewer's sender goroutine: it drains the queue into the
// viewer's sinks until the queue is closed (orderly end of run), the viewer
// is detached, or a sink fails.
func (f *Fanout) sendLoop(v *fanViewer) {
	defer close(v.done)
	// Whatever is still queued when the sender stops early (detach, sink
	// failure) was never delivered; count it as dropped. Publishing to this
	// viewer has stopped by then (detached is set under f.mu before stop is
	// closed), so the drain is exact.
	defer func() {
		f.mu.Lock()
		defer f.mu.Unlock()
		for {
			select {
			case _, ok := <-v.ch:
				if !ok {
					return
				}
				v.dropped++
			default:
				return
			}
		}
	}()
	for {
		select {
		case <-v.stop:
			return
		case item, ok := <-v.ch:
			if !ok {
				return
			}
			if err := f.sendItem(v, item); err != nil {
				// The pair in flight was never delivered either.
				f.mu.Lock()
				v.dropped++
				f.mu.Unlock()
				f.fail(v, err)
				return
			}
		}
	}
}

// sendItem ships one pair to the viewer's sink for the item's PE.
func (f *Fanout) sendItem(v *fanViewer, item fanItem) error {
	sink := v.sink(item.pe)
	if err := sink.SendLight(item.light); err != nil {
		return fmt.Errorf("backend: viewer %q PE %d frame %d light: %w", v.id, item.pe, item.light.Frame, err)
	}
	if err := sink.SendHeavy(item.heavy); err != nil {
		return fmt.Errorf("backend: viewer %q PE %d frame %d heavy: %w", v.id, item.pe, item.heavy.Frame, err)
	}
	f.mu.Lock()
	v.sent++
	v.bytes += item.light.WireSize() + item.heavy.WireSize()
	f.mu.Unlock()
	return nil
}

// fail marks a viewer's sender dead: the viewer is detached so the render
// loop stops queueing for it, and anything still queued counts as dropped.
func (f *Fanout) fail(v *fanViewer, err error) {
	f.mu.Lock()
	if !v.detached {
		v.detached = true
		v.err = err
	}
	f.mu.Unlock()
}

// Close ends the fan-out: no further publishes or attaches are accepted, the
// queues already accumulated are flushed to their viewers, and Close waits up
// to grace for the senders to drain (grace <= 0 waits indefinitely). A sender
// wedged on a stalled sink past the grace is abandoned — tearing down the
// sink (closing its connection) is what unblocks and ends it. Close reports
// whether every sender finished in time.
func (f *Fanout) Close(grace time.Duration) bool {
	f.mu.Lock()
	if !f.closed {
		f.closed = true
		for _, v := range f.viewers {
			if !v.detached {
				// Safe: publish never sends once closed is set, and both run
				// under f.mu.
				close(v.ch)
			}
		}
	}
	viewers := make([]*fanViewer, 0, len(f.viewers))
	for _, v := range f.viewers {
		viewers = append(viewers, v)
	}
	f.mu.Unlock()

	// One absolute deadline shared by all waits: a one-shot timer channel
	// would be consumed by the first overdue sender and leave later waits
	// blocking forever.
	var deadline time.Time
	if grace > 0 {
		deadline = time.Now().Add(grace)
	}
	all := true
	for _, v := range viewers {
		if grace <= 0 {
			<-v.done
			continue
		}
		remaining := time.Until(deadline)
		if remaining <= 0 {
			select {
			case <-v.done:
			default:
				all = false
			}
			continue
		}
		t := time.NewTimer(remaining)
		select {
		case <-v.done:
			t.Stop()
		case <-t.C:
			all = false
		}
	}
	return all
}

// deliveryLocked snapshots one viewer's counters with f.mu held.
func (f *Fanout) deliveryLocked(v *fanViewer) ViewerDelivery {
	d := ViewerDelivery{
		ID:            v.id,
		Attached:      v.attached,
		StartFrame:    v.startFrame,
		FramesSent:    v.sent,
		FramesDropped: v.dropped,
		QueueDepth:    len(v.ch),
		BytesSent:     v.bytes,
		Detached:      v.detached,
	}
	if v.err != nil {
		d.Error = v.err.Error()
	}
	return d
}

// Viewers returns a snapshot of every attachment's delivery counters, in
// attach order. Detached and failed viewers stay in the snapshot — including
// earlier attachments of a since-reused id — so a control plane can report
// what happened to them.
func (f *Fanout) Viewers() []ViewerDelivery {
	f.mu.Lock()
	defer f.mu.Unlock()
	all := make([]*fanViewer, 0, len(f.history)+len(f.viewers))
	all = append(all, f.history...)
	for _, v := range f.viewers {
		all = append(all, v)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].seq < all[j].seq })
	out := make([]ViewerDelivery, len(all))
	for i, v := range all {
		out[i] = f.deliveryLocked(v)
	}
	return out
}

// fanoutPESink is the FrameSink one PE writes into: it pairs the PE's light
// payload with the heavy payload that follows (the back end's send-order
// invariant) and publishes the pair. Each PE goroutine owns its sink, so the
// pending field needs no lock.
type fanoutPESink struct {
	f       *Fanout
	rank    int
	pending *wire.LightPayload
}

// SendLight implements FrameSink.
func (s *fanoutPESink) SendLight(lp *wire.LightPayload) error {
	if lp == nil {
		return errors.New("backend: fanout: nil light payload")
	}
	if s.pending != nil {
		return fmt.Errorf("backend: fanout: PE %d sent light payload for frame %d before heavy payload for frame %d",
			s.rank, lp.Frame, s.pending.Frame)
	}
	s.pending = lp
	return nil
}

// SendHeavy implements FrameSink.
func (s *fanoutPESink) SendHeavy(hp *wire.HeavyPayload) error {
	if hp == nil {
		return errors.New("backend: fanout: nil heavy payload")
	}
	if s.pending == nil {
		return fmt.Errorf("backend: fanout: PE %d sent heavy payload for frame %d with no preceding metadata", s.rank, hp.Frame)
	}
	lp := s.pending
	s.pending = nil
	s.f.publish(s.rank, lp, hp)
	return nil
}
