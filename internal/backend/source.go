// Package backend implements the Visapult back end: a parallel software
// volume rendering engine (section 3.4 and Appendices A and B of the paper).
//
// The back end is organized as a set of processing elements (PEs), the
// analogue of the paper's MPI processes. The source volume is slab-decomposed
// across the PEs; each PE loads its slab from a data source (typically the
// DPSS network cache), software-renders it to a semi-transparent texture, and
// ships the texture plus metadata to the Visapult viewer over the wire
// protocol. Two execution modes are provided:
//
//   - Serial: each PE loads its data for timestep t, then renders it, then
//     sends it — the implementation profiled in Figures 12, 14 and 16.
//   - Overlapped: each PE runs a detached reader goroutine (the paper's
//     pthread) that loads timestep t+1 into a second buffer while the render
//     goroutine renders timestep t, coordinated by a request/result channel
//     pair that plays the role of the paper's SystemV semaphore pair — the
//     implementation profiled in Figures 13, 15 and 17.
//
// Every phase is instrumented with NetLogger events using the tag vocabulary
// of the paper's Table 2, so NLV-style lifeline analysis works on real runs.
package backend

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"visapult/internal/datagen"
	"visapult/internal/dpss"
	"visapult/internal/volume"
)

// DataSource supplies the raw scientific data the back end visualizes. The
// paper's back end "reads raw scientific data from one of a number of
// different data sources"; implementations here cover in-memory data,
// synthetic generators, and the DPSS network cache.
type DataSource interface {
	// Dims returns the source volume dimensions.
	Dims() (nx, ny, nz int)
	// Timesteps returns the number of timesteps available.
	Timesteps() int
	// StepBytes returns the raw size of one timestep, the quantity the
	// paper's bandwidth figures are computed from (160 MB per step for the
	// combustion dataset).
	StepBytes() int64
	// LoadRegion loads the given region of timestep t and returns it as a
	// standalone sub-volume, along with the number of bytes that crossed the
	// data-source boundary to satisfy the request. Cancelling ctx aborts a
	// network-backed load in flight (a DPSS block read mid-transfer) instead
	// of at the next frame boundary; in-memory sources only check it on
	// entry.
	LoadRegion(ctx context.Context, t int, r volume.Region) (*volume.Volume, int64, error)
}

// MemorySource serves timesteps already resident in memory. It is the
// fastest source and is used by tests and by the viewer-side quickstart
// example where no network cache is involved.
type MemorySource struct {
	steps []*volume.Volume
}

// NewMemorySource builds a source from pre-generated volumes. All volumes
// must share the same dimensions.
func NewMemorySource(steps ...*volume.Volume) (*MemorySource, error) {
	if len(steps) == 0 {
		return nil, fmt.Errorf("backend: memory source needs at least one timestep")
	}
	nx, ny, nz := steps[0].NX, steps[0].NY, steps[0].NZ
	for i, s := range steps {
		if s.NX != nx || s.NY != ny || s.NZ != nz {
			return nil, fmt.Errorf("backend: timestep %d is %dx%dx%d, want %dx%dx%d",
				i, s.NX, s.NY, s.NZ, nx, ny, nz)
		}
	}
	return &MemorySource{steps: steps}, nil
}

// Dims implements DataSource.
func (m *MemorySource) Dims() (int, int, int) {
	return m.steps[0].NX, m.steps[0].NY, m.steps[0].NZ
}

// Timesteps implements DataSource.
func (m *MemorySource) Timesteps() int { return len(m.steps) }

// StepBytes implements DataSource.
func (m *MemorySource) StepBytes() int64 { return m.steps[0].SizeBytes() }

// LoadRegion implements DataSource.
func (m *MemorySource) LoadRegion(ctx context.Context, t int, r volume.Region) (*volume.Volume, int64, error) {
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	if t < 0 || t >= len(m.steps) {
		return nil, 0, fmt.Errorf("backend: timestep %d out of range [0,%d)", t, len(m.steps))
	}
	sub, err := r.Extract(m.steps[t])
	if err != nil {
		return nil, 0, err
	}
	return sub, r.Bytes(), nil
}

// SyntheticSource adapts a datagen generator (combustion or cosmology) to the
// DataSource interface. Generated timesteps are cached so that the PEs of one
// back end, which all load the same timestep concurrently, share a single
// generation pass.
type SyntheticSource struct {
	gen datagen.Source

	mu     sync.Mutex
	cached int
	vol    *volume.Volume
}

// NewSyntheticSource wraps a datagen source.
func NewSyntheticSource(gen datagen.Source) *SyntheticSource {
	return &SyntheticSource{gen: gen, cached: -1}
}

// Dims implements DataSource.
func (s *SyntheticSource) Dims() (int, int, int) {
	v := s.step(0)
	return v.NX, v.NY, v.NZ
}

// Timesteps implements DataSource.
func (s *SyntheticSource) Timesteps() int { return s.gen.Timesteps() }

// StepBytes implements DataSource.
func (s *SyntheticSource) StepBytes() int64 { return s.gen.StepBytes() }

// step returns the cached volume for timestep t, generating it if necessary.
func (s *SyntheticSource) step(t int) *volume.Volume {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cached != t {
		s.vol = s.gen.Generate(t)
		s.cached = t
	}
	return s.vol
}

// LoadRegion implements DataSource.
func (s *SyntheticSource) LoadRegion(ctx context.Context, t int, r volume.Region) (*volume.Volume, int64, error) {
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	if t < 0 || t >= s.gen.Timesteps() {
		return nil, 0, fmt.Errorf("backend: timestep %d out of range [0,%d)", t, s.gen.Timesteps())
	}
	sub, err := r.Extract(s.step(t))
	if err != nil {
		return nil, 0, err
	}
	return sub, r.Bytes(), nil
}

// DPSSSource reads timesteps from a DPSS cache through the block-level client
// API — the configuration of all of the paper's field tests. Each timestep is
// a separate dataset in the cache (created with dpss.Cluster.LoadVolume or
// dpssctl), named by dpss.TimestepDatasetName.
//
// Region reads exploit the DPSS's block-level access: only the byte ranges
// covering the requested region cross the network, not the whole file. For
// slab decompositions along Z this is a single contiguous range; for other
// axes it degenerates to one read per row, which is exactly the access
// pattern the paper's block cache is designed to serve.
type DPSSSource struct {
	client *dpss.Client
	base   string
	nx     int
	ny     int
	nz     int
	steps  int

	mu    sync.Mutex
	files map[int]*dpss.File
}

// NewDPSSSource builds a source reading from the given client. base is the
// dataset base name passed to dpss.TimestepDatasetName; dims are the volume
// dimensions of every timestep; steps is the number of timesteps staged in
// the cache.
func NewDPSSSource(client *dpss.Client, base string, nx, ny, nz, steps int) (*DPSSSource, error) {
	if client == nil {
		return nil, fmt.Errorf("backend: nil DPSS client")
	}
	if nx <= 0 || ny <= 0 || nz <= 0 || steps <= 0 {
		return nil, fmt.Errorf("backend: invalid DPSS source geometry %dx%dx%d x %d steps", nx, ny, nz, steps)
	}
	return &DPSSSource{client: client, base: base, nx: nx, ny: ny, nz: nz, steps: steps,
		files: make(map[int]*dpss.File)}, nil
}

// Dims implements DataSource.
func (d *DPSSSource) Dims() (int, int, int) { return d.nx, d.ny, d.nz }

// Timesteps implements DataSource.
func (d *DPSSSource) Timesteps() int { return d.steps }

// StepBytes implements DataSource.
func (d *DPSSSource) StepBytes() int64 {
	return int64(d.nx) * int64(d.ny) * int64(d.nz) * 4
}

// file returns (opening if needed) the DPSS file handle for timestep t.
func (d *DPSSSource) file(t int) (*dpss.File, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if f, ok := d.files[t]; ok {
		return f, nil
	}
	f, err := d.client.Open(dpss.TimestepDatasetName(d.base, t))
	if err != nil {
		return nil, fmt.Errorf("backend: open timestep %d: %w", t, err)
	}
	d.files[t] = f
	return f, nil
}

// headerBytes is the size of the volume serialization header preceding the
// voxel data in each DPSS dataset.
func (d *DPSSSource) headerBytes() int64 {
	return volume.EncodedSize(d.nx, d.ny, d.nz) - d.StepBytes()
}

// LoadRegion implements DataSource. The returned byte count is the number of
// voxel-data bytes actually requested from the cache.
func (d *DPSSSource) LoadRegion(ctx context.Context, t int, r volume.Region) (*volume.Volume, int64, error) {
	if t < 0 || t >= d.steps {
		return nil, 0, fmt.Errorf("backend: timestep %d out of range [0,%d)", t, d.steps)
	}
	f, err := d.file(t)
	if err != nil {
		return nil, 0, err
	}
	raw, n, err := readRegionAt(ctx, f, d.headerBytes(), d.nx, d.ny, r)
	if err != nil {
		return nil, n, err
	}
	rx, ry, rz := r.Dims()
	sub, err := volume.FromData(rx, ry, rz, raw)
	if err != nil {
		return nil, n, err
	}
	return sub, n, nil
}

// Close closes all cached file handles.
func (d *DPSSSource) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, f := range d.files {
		f.Close()
	}
	d.files = make(map[int]*dpss.File)
	return nil
}

// readerAt is the subset of dpss.File (and fabric.File) LoadRegion needs;
// taking an interface keeps readRegionAt testable without a live cluster.
type readerAt interface {
	ReadvScatter(ctx context.Context, exts []dpss.Extent) error
}

// slabPool recycles the raw byte slab a region is scattered into before
// decoding, so steady-state region loads allocate only the float32 output.
var slabPool = sync.Pool{
	New: func() any {
		s := []byte(nil)
		return &s
	},
}

// extentPool recycles the extent list handed to ReadvScatter.
var extentPool = sync.Pool{
	New: func() any {
		s := make([]dpss.Extent, 0, 64)
		return &s
	},
}

// readRegionAt reads the float32 voxels of region r from a serialized volume
// of size nx x ny x * starting at hdr bytes into the file. The whole region is
// expressed as one extent list — one extent for a full-XY-plane slab, one per
// z for full-X rows, one per (y,z) row in the general case — and fetched in a
// single vectored ReadvScatter call, which the DPSS client batches into a
// handful of wire exchanges and scatters straight into a pooled byte slab.
// Cancelling ctx aborts the read in flight.
func readRegionAt(ctx context.Context, f readerAt, hdr int64, nx, ny int, r volume.Region) ([]float32, int64, error) {
	rx, ry, rz := r.Dims()
	if rx <= 0 || ry <= 0 || rz <= 0 {
		return nil, 0, fmt.Errorf("backend: empty region %v", r)
	}
	out := make([]float32, rx*ry*rz)
	need := len(out) * 4

	slabp := slabPool.Get().(*[]byte)
	defer slabPool.Put(slabp)
	if cap(*slabp) < need {
		*slabp = make([]byte, need)
	}
	slab := (*slabp)[:need]

	extp := extentPool.Get().(*[]dpss.Extent)
	defer func() {
		clear(*extp) // drop slab references so the pool entry pins nothing
		*extp = (*extp)[:0]
		extentPool.Put(extp)
	}()
	exts := (*extp)[:0]

	switch {
	case r.X0 == 0 && r.X1 == nx && r.Y0 == 0 && r.Y1 == ny:
		// Full XY planes: one contiguous extent for the whole slab.
		off := hdr + int64(r.Z0)*int64(nx)*int64(ny)*4
		exts = append(exts, dpss.Extent{Off: off, Len: need, Dst: slab})
	case r.X0 == 0 && r.X1 == nx:
		// Full X rows: one contiguous extent per z of the Y span.
		rowLen := rx * ry * 4
		for z := 0; z < rz; z++ {
			off := hdr + (int64(r.Z0+z)*int64(nx)*int64(ny)+int64(r.Y0)*int64(nx))*4
			exts = append(exts, dpss.Extent{Off: off, Len: rowLen, Dst: slab[z*rowLen : (z+1)*rowLen]})
		}
	default:
		// General case: one extent per (y, z) row.
		rowLen := rx * 4
		for z := 0; z < rz; z++ {
			for y := 0; y < ry; y++ {
				off := hdr + ((int64(r.Z0+z)*int64(ny)+int64(r.Y0+y))*int64(nx)+int64(r.X0))*4
				i := (z*ry + y) * rowLen
				exts = append(exts, dpss.Extent{Off: off, Len: rowLen, Dst: slab[i : i+rowLen]})
			}
		}
	}
	*extp = exts

	if err := f.ReadvScatter(ctx, exts); err != nil {
		return nil, 0, err
	}
	// Bulk little-endian decode (the volume serialization byte order).
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(slab[i*4:]))
	}
	return out, int64(need), nil
}

// Compile-time interface checks.
var (
	_ DataSource = (*MemorySource)(nil)
	_ DataSource = (*SyntheticSource)(nil)
	_ DataSource = (*DPSSSource)(nil)
)
