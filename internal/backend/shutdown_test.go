package backend

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"visapult/internal/datagen"
	"visapult/internal/volume"
	"visapult/internal/wire"
)

// brokenSink fails every send, standing in for a viewer whose connection
// died mid-run.
type brokenSink struct{}

var errSinkDown = errors.New("sink down")

func (brokenSink) SendLight(*wire.LightPayload) error { return errSinkDown }
func (brokenSink) SendHeavy(*wire.HeavyPayload) error { return errSinkDown }

// slowLoadSource delays every load so readers are reliably in flight when
// the run aborts.
type slowLoadSource struct {
	DataSource
	delay time.Duration
	loads atomic.Int64
}

func (s *slowLoadSource) LoadRegion(ctx context.Context, t int, r volume.Region) (*volume.Volume, int64, error) {
	s.loads.Add(1)
	time.Sleep(s.delay)
	return s.DataSource.LoadRegion(ctx, t, r)
}

// waitGoroutines polls until the goroutine count settles back to the
// baseline (or times out).
func waitGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	var after int
	for time.Now().Before(deadline) {
		runtime.GC()
		after = runtime.NumGoroutine()
		if after <= before {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d before, %d after", before, after)
}

func newSlowSource(steps int, delay time.Duration) *slowLoadSource {
	gen := datagen.NewCombustion(datagen.CombustionConfig{
		NX: 24, NY: 16, NZ: 16, Timesteps: steps, Seed: 7,
	})
	return &slowLoadSource{DataSource: NewSyntheticSource(gen), delay: delay}
}

// TestOverlappedFailedSinkJoinsReaders is the regression test for the
// detached-reader leak: a PE whose sink fails must stop and join its reader
// goroutine instead of leaving it loading timesteps nobody will render.
func TestOverlappedFailedSinkJoinsReaders(t *testing.T) {
	before := runtime.NumGoroutine()
	src := newSlowSource(50, 5*time.Millisecond)
	be, err := New(Config{
		PEs: 4, Mode: Overlapped, Source: src,
		Sinks: []FrameSink{brokenSink{}},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = be.Run(context.Background())
	if !errors.Is(err, errSinkDown) {
		t.Fatalf("Run returned %v, want the sink failure", err)
	}
	waitGoroutines(t, before)
	// The readers must not have churned through the whole dataset after the
	// abort: at most frame 0 and the prefetched frame 1 per PE.
	if loads := src.loads.Load(); loads > 4*2 {
		t.Errorf("readers performed %d loads after the sink died, want <= 8", loads)
	}
}

// TestOverlappedContextCancelJoinsReaders cancels an overlapped run mid-way
// and checks both the PE goroutines and their readers exit.
func TestOverlappedContextCancelJoinsReaders(t *testing.T) {
	before := runtime.NumGoroutine()
	src := newSlowSource(100, 5*time.Millisecond)
	be, err := New(Config{
		PEs: 2, Mode: Overlapped, Source: src,
		Sinks: []FrameSink{&NullSink{}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = be.Run(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run returned %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("cancelled run took %v", elapsed)
	}
	waitGoroutines(t, before)
}

// TestSerialContextCancel covers the serial loop's ctx check.
func TestSerialContextCancel(t *testing.T) {
	src := newSlowSource(100, 5*time.Millisecond)
	be, err := New(Config{
		PEs: 2, Mode: Serial, Source: src,
		Sinks: []FrameSink{&NullSink{}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	if _, err := be.Run(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Run returned %v, want context.Canceled", err)
	}
}

// TestOnFrameHook checks the per-frame hook fires once per (PE, timestep).
func TestOnFrameHook(t *testing.T) {
	var calls atomic.Int64
	src := newSlowSource(3, 0)
	be, err := New(Config{
		PEs: 2, Mode: Overlapped, Source: src,
		Sinks:   []FrameSink{&NullSink{}},
		OnFrame: func(FrameStats) { calls.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := be.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 2*3 {
		t.Errorf("OnFrame fired %d times, want 6", got)
	}
}
