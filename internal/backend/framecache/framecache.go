// Package framecache is the content-addressed slab-texture cache behind the
// scheduler's run coalescing: rendered frames are keyed by (dataset identity,
// timestep, transfer-function hash), so a replay of an already-rendered spec —
// or a viewer scrubbing back and forth across timesteps — is served the
// finished light/heavy payload pair without touching the data source or the
// raycaster. This is the same data-reduction instinct the paper applies
// between source and viewer (ship textures, not volumes), applied in time:
// never render the same pixels twice.
//
// The cache is bounded in bytes and evicts least-recently-used whole frames.
// Entries are immutable once inserted: every consumer shares the same payload
// pointers, exactly like the fan-out stage shares one rendered frame across
// attached viewers.
package framecache

import (
	"container/list"
	"sync"

	"visapult/internal/wire"
)

// Key addresses one cached frame: the canonical dataset identity (source
// kind, dimensions, seed, decomposition), the timestep, and the
// transfer-function hash. Everything that changes the rendered pixels must be
// folded into one of the three components by the caller.
type Key struct {
	Dataset  string
	Timestep int
	TF       string
}

// Slab is one PE's rendered contribution to a frame: the metadata payload and
// the texture payload, exactly as they go on the wire. Cached slabs are
// shared between runs and must not be mutated.
type Slab struct {
	Light *wire.LightPayload
	Heavy *wire.HeavyPayload
}

// bytes returns the payload volume the slab pins in memory, measured in wire
// bytes (the texture dominates).
func (s Slab) bytes() int64 {
	var n int64
	if s.Light != nil {
		n += s.Light.WireSize()
	}
	if s.Heavy != nil {
		n += s.Heavy.WireSize()
	}
	return n
}

// Stats is a point-in-time snapshot of the cache's counters.
type Stats struct {
	// Hits and Misses count Slab lookups; a replayed frame scores one hit
	// per PE per timestep.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// Evictions counts frames discarded to make room (not flushed ones).
	Evictions int64 `json:"evictions"`
	// Entries and Bytes describe the current residency; Capacity is the
	// configured byte bound.
	Entries  int   `json:"entries"`
	Bytes    int64 `json:"bytes"`
	Capacity int64 `json:"capacity"`
}

// entry is one fully assembled cached frame: every PE's slab.
type entry struct {
	key   Key
	slabs []Slab
	bytes int64
}

// pending accumulates a frame's slabs until every PE rank has contributed;
// only complete frames enter the LRU, so a run that dies mid-frame never
// leaves a torn entry behind.
type pending struct {
	slabs []Slab
	have  int
}

// Cache is a byte-bounded LRU of rendered frames. All methods are safe for
// concurrent use; the zero value is not usable — construct with New.
type Cache struct {
	mu       sync.Mutex
	capacity int64                 // guarded by mu
	lru      *list.List            // guarded by mu; front = most recent
	entries  map[Key]*list.Element // guarded by mu
	building map[Key]*pending      // guarded by mu
	bytes    int64                 // guarded by mu
	hits     int64                 // guarded by mu
	misses   int64                 // guarded by mu
	evicted  int64                 // guarded by mu
}

// New builds a cache bounded to capacity bytes of payload data. capacity <= 0
// returns a nil cache, which every method treats as "caching disabled".
func New(capacity int64) *Cache {
	if capacity <= 0 {
		return nil
	}
	return &Cache{
		capacity: capacity,
		lru:      list.New(),
		entries:  make(map[Key]*list.Element),
		building: make(map[Key]*pending),
	}
}

// Slab returns PE rank's cached slab of the keyed frame, if the whole frame
// is resident. Lookups against a nil cache miss without counting.
func (c *Cache) Slab(key Key, rank int) (Slab, bool) {
	if c == nil {
		return Slab{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return Slab{}, false
	}
	e := el.Value.(*entry)
	if rank < 0 || rank >= len(e.slabs) {
		c.misses++
		return Slab{}, false
	}
	c.lru.MoveToFront(el)
	c.hits++
	return e.slabs[rank], true
}

// PutSlab contributes PE rank's rendered slab to the keyed frame. The frame
// enters the cache once all total ranks have contributed; a frame larger than
// the whole cache is discarded rather than inserted. No-op on a nil cache.
func (c *Cache) PutSlab(key Key, rank, total int, slab Slab) {
	if c == nil || rank < 0 || total <= 0 || rank >= total || slab.Light == nil || slab.Heavy == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, resident := c.entries[key]; resident {
		return
	}
	p, ok := c.building[key]
	if !ok {
		p = &pending{slabs: make([]Slab, total)}
		c.building[key] = p
	}
	if len(p.slabs) != total { // conflicting decomposition: start over
		p = &pending{slabs: make([]Slab, total)}
		c.building[key] = p
	}
	if p.slabs[rank].Heavy == nil {
		p.have++
	}
	p.slabs[rank] = slab
	if p.have < total {
		return
	}
	delete(c.building, key)
	e := &entry{key: key, slabs: p.slabs}
	for _, s := range p.slabs {
		e.bytes += s.bytes()
	}
	if e.bytes > c.capacity {
		return
	}
	c.entries[key] = c.lru.PushFront(e)
	c.bytes += e.bytes
	for c.bytes > c.capacity {
		c.evictOldestLocked()
	}
}

// evictOldestLocked drops the least-recently-used frame; c.mu must be held.
func (c *Cache) evictOldestLocked() {
	el := c.lru.Back()
	if el == nil {
		return
	}
	e := c.lru.Remove(el).(*entry)
	delete(c.entries, e.key)
	c.bytes -= e.bytes
	c.evicted++
}

// Clear flushes every resident frame and in-flight assembly, keeping the
// hit/miss/eviction counters. No-op on a nil cache.
func (c *Cache) Clear() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lru.Init()
	c.entries = make(map[Key]*list.Element)
	c.building = make(map[Key]*pending)
	c.bytes = 0
}

// Stats snapshots the cache counters. A nil cache reports all zeros.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evicted,
		Entries:   c.lru.Len(),
		Bytes:     c.bytes,
		Capacity:  c.capacity,
	}
}
