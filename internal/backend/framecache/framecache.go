// Package framecache is the content-addressed slab-texture cache behind the
// scheduler's run coalescing: rendered frames are keyed by (dataset identity,
// timestep, transfer-function hash), so a replay of an already-rendered spec —
// or a viewer scrubbing back and forth across timesteps — is served the
// finished light/heavy payload pair without touching the data source or the
// raycaster. This is the same data-reduction instinct the paper applies
// between source and viewer (ship textures, not volumes), applied in time:
// never render the same pixels twice.
//
// The cache is bounded in bytes and evicts least-recently-used whole frames.
// Entries are immutable once inserted: every consumer shares the same payload
// pointers, exactly like the fan-out stage shares one rendered frame across
// attached viewers. Because entries are shared, the cache owns its bytes:
// PutSlab deep-copies payloads on insert, and producers that can prove they
// are handing over freshly built payloads use PutSlabOwned to skip the copy.
package framecache

import (
	"container/list"
	"fmt"
	"sync"

	"visapult/internal/amr"
	"visapult/internal/wire"
)

// Key addresses one cached frame: the canonical dataset identity (source
// kind, dimensions, seed, decomposition), the timestep, and the
// transfer-function hash. Everything that changes the rendered pixels must be
// folded into one of the three components by the caller.
type Key struct {
	Dataset  string
	Timestep int
	TF       string
}

// DatasetKey folds the slab decomposition parameters into a cache dataset
// identity. Both the back end's own insert path and the dispatcher's remote
// slab-delivery path build keys through this, so a slab rendered on a worker
// is replayable by any node that derives the same identity.
func DatasetKey(dataset string, axis, pes int) string {
	return fmt.Sprintf("%s|axis=%d|pes=%d", dataset, axis, pes)
}

// Slab is one PE's rendered contribution to a frame: the metadata payload and
// the texture payload, exactly as they go on the wire. Cached slabs are
// shared between runs and must not be mutated.
type Slab struct {
	Light *wire.LightPayload
	Heavy *wire.HeavyPayload
}

// bytes returns the payload volume the slab pins in memory, measured in wire
// bytes (the texture dominates).
func (s Slab) bytes() int64 {
	var n int64
	if s.Light != nil {
		n += s.Light.WireSize()
	}
	if s.Heavy != nil {
		n += s.Heavy.WireSize()
	}
	return n
}

// clone deep-copies the slab so the cache's copy shares no bytes with the
// caller's. Producers reuse payload buffers frame to frame (and the v2
// dispatch wire pools them), so an aliased insert would let a recycled
// buffer silently corrupt cached textures.
func (s Slab) clone() Slab {
	var out Slab
	if s.Light != nil {
		lp := *s.Light
		out.Light = &lp
	}
	if s.Heavy != nil {
		hp := *s.Heavy
		hp.Texture = append([]byte(nil), s.Heavy.Texture...)
		if s.Heavy.Grid != nil {
			hp.Grid = append([]amr.Segment(nil), s.Heavy.Grid...)
		}
		if s.Heavy.Elevation != nil {
			hp.Elevation = append([]float32(nil), s.Heavy.Elevation...)
		}
		out.Heavy = &hp
	}
	return out
}

// Stats is a point-in-time snapshot of the cache's counters.
type Stats struct {
	// Hits and Misses count Slab lookups; a replayed frame scores one hit
	// per PE per timestep.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// Evictions counts frames discarded to make room (not flushed ones).
	Evictions int64 `json:"evictions"`
	// Entries and Bytes describe the current residency; Capacity is the
	// configured byte bound.
	Entries  int   `json:"entries"`
	Bytes    int64 `json:"bytes"`
	Capacity int64 `json:"capacity"`
	// PendingEntries and PendingBytes describe in-flight frame assemblies
	// that have not yet seen every PE rank; Abandoned counts assemblies
	// dropped before completing (cancelled runs, pending-bound sweeps).
	PendingEntries int   `json:"pendingEntries"`
	PendingBytes   int64 `json:"pendingBytes"`
	Abandoned      int64 `json:"abandoned"`
}

// entry is one fully assembled cached frame: every PE's slab.
type entry struct {
	key   Key
	slabs []Slab
	bytes int64
}

// pending accumulates a frame's slabs until every PE rank has contributed;
// only complete frames enter the LRU, so a run that dies mid-frame never
// leaves a torn entry behind.
type pending struct {
	slabs []Slab
	have  int
	bytes int64
}

// maxPendingAssemblies bounds how many frames may be mid-assembly at once.
// Runs contribute a handful of concurrent frames each; anything beyond this
// is leaked state from dead runs, swept oldest-first.
const maxPendingAssemblies = 64

// Cache is a byte-bounded LRU of rendered frames. All methods are safe for
// concurrent use; the zero value is not usable — construct with New.
type Cache struct {
	mu       sync.Mutex
	capacity int64                 // guarded by mu
	lru      *list.List            // guarded by mu; front = most recent
	entries  map[Key]*list.Element // guarded by mu
	building map[Key]*pending      // guarded by mu
	// buildOrder lists in-flight assemblies oldest-first, so the pending
	// sweep and Clear can drain them deterministically. guarded by mu
	buildOrder []Key
	buildBytes int64 // guarded by mu; bytes pinned by in-flight assemblies
	bytes      int64 // guarded by mu
	hits       int64 // guarded by mu
	misses     int64 // guarded by mu
	evicted    int64 // guarded by mu
	abandoned  int64 // guarded by mu
}

// New builds a cache bounded to capacity bytes of payload data. capacity <= 0
// returns a nil cache, which every method treats as "caching disabled".
func New(capacity int64) *Cache {
	if capacity <= 0 {
		return nil
	}
	return &Cache{
		capacity: capacity,
		lru:      list.New(),
		entries:  make(map[Key]*list.Element),
		building: make(map[Key]*pending),
	}
}

// Slab returns PE rank's cached slab of the keyed frame, if the whole frame
// is resident. Lookups against a nil cache miss without counting.
func (c *Cache) Slab(key Key, rank int) (Slab, bool) {
	if c == nil {
		return Slab{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return Slab{}, false
	}
	e := el.Value.(*entry)
	if rank < 0 || rank >= len(e.slabs) {
		c.misses++
		return Slab{}, false
	}
	c.lru.MoveToFront(el)
	c.hits++
	return e.slabs[rank], true
}

// PutSlab contributes PE rank's rendered slab to the keyed frame. The slab is
// deep-copied on insert — the cache never aliases caller-owned buffers, so
// the caller is free to recycle or mutate its payloads afterwards. The frame
// enters the cache once all total ranks have contributed; a frame larger than
// the whole cache is discarded rather than inserted. No-op on a nil cache.
func (c *Cache) PutSlab(key Key, rank, total int, slab Slab) {
	if c == nil || rank < 0 || total <= 0 || rank >= total || slab.Light == nil || slab.Heavy == nil {
		return
	}
	// Clone outside the lock: the copy is the expensive part.
	c.put(key, rank, total, slab.clone())
}

// PutSlabOwned is PutSlab with transfer of ownership: the caller asserts the
// payloads are freshly built, reach no other consumer, and will never be
// mutated again — so the cache may retain them without the defensive copy.
// The back end's render path and the dispatcher's slab-delivery decode path
// qualify; anything recycling buffers must use PutSlab.
func (c *Cache) PutSlabOwned(key Key, rank, total int, slab Slab) {
	if c == nil || rank < 0 || total <= 0 || rank >= total || slab.Light == nil || slab.Heavy == nil {
		return
	}
	c.put(key, rank, total, slab)
}

func (c *Cache) put(key Key, rank, total int, slab Slab) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, resident := c.entries[key]; resident {
		return
	}
	p, ok := c.building[key]
	if !ok {
		p = &pending{slabs: make([]Slab, total)}
		c.building[key] = p
		c.buildOrder = append(c.buildOrder, key)
	}
	if len(p.slabs) != total { // conflicting decomposition: start over
		c.buildBytes -= p.bytes
		p = &pending{slabs: make([]Slab, total)}
		c.building[key] = p
	}
	if p.slabs[rank].Heavy == nil {
		p.have++
	} else {
		old := p.slabs[rank].bytes()
		p.bytes -= old
		c.buildBytes -= old
	}
	p.slabs[rank] = slab
	sb := slab.bytes()
	p.bytes += sb
	c.buildBytes += sb
	if p.have < total {
		c.sweepPendingLocked(key)
		return
	}
	c.removePendingLocked(key, p)
	e := &entry{key: key, slabs: p.slabs, bytes: p.bytes}
	if e.bytes > c.capacity {
		return
	}
	c.entries[key] = c.lru.PushFront(e)
	c.bytes += e.bytes
	for c.bytes > c.capacity {
		c.evictOldestLocked()
	}
}

// Abandon drops the keyed frame's in-flight assembly, if any. Run teardown
// paths call this for every frame they contributed to, so a run cancelled
// mid-frame does not strand its partial slabs in the pending map for the
// daemon's lifetime. A completed (resident) frame is unaffected.
func (c *Cache) Abandon(key Key) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.dropPendingLocked(key)
}

// dropPendingLocked abandons one in-flight assembly and counts it;
// c.mu must be held. No-op when the key has no pending assembly.
func (c *Cache) dropPendingLocked(key Key) {
	p, ok := c.building[key]
	if !ok {
		return
	}
	c.removePendingLocked(key, p)
	c.abandoned++
}

// removePendingLocked detaches an assembly from the pending bookkeeping
// without counting it as abandoned (completion also comes through here);
// c.mu must be held.
func (c *Cache) removePendingLocked(key Key, p *pending) {
	delete(c.building, key)
	c.buildBytes -= p.bytes
	for i, k := range c.buildOrder {
		if k == key {
			c.buildOrder = append(c.buildOrder[:i], c.buildOrder[i+1:]...)
			break
		}
	}
}

// sweepPendingLocked bounds the pending map by count and bytes, dropping the
// oldest assemblies first while sparing current (the frame being contributed
// to right now — abandoning it would make its remaining ranks rebuild it
// forever). c.mu must be held.
func (c *Cache) sweepPendingLocked(current Key) {
	for len(c.building) > maxPendingAssemblies || c.buildBytes > c.capacity {
		victim, ok := c.oldestPendingLocked(current)
		if !ok {
			return
		}
		c.dropPendingLocked(victim)
	}
}

// oldestPendingLocked returns the oldest in-flight assembly other than spare.
func (c *Cache) oldestPendingLocked(spare Key) (Key, bool) {
	for _, k := range c.buildOrder {
		if k != spare {
			return k, true
		}
	}
	return Key{}, false
}

// evictOldestLocked drops the least-recently-used frame; c.mu must be held.
func (c *Cache) evictOldestLocked() {
	el := c.lru.Back()
	if el == nil {
		return
	}
	e := c.lru.Remove(el).(*entry)
	delete(c.entries, e.key)
	c.bytes -= e.bytes
	c.evicted++
}

// Clear flushes every resident frame and in-flight assembly, keeping the
// hit/miss/eviction counters. No-op on a nil cache.
func (c *Cache) Clear() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lru.Init()
	c.entries = make(map[Key]*list.Element)
	c.building = make(map[Key]*pending)
	c.buildOrder = nil
	c.buildBytes = 0
	c.bytes = 0
}

// Stats snapshots the cache counters. A nil cache reports all zeros.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:           c.hits,
		Misses:         c.misses,
		Evictions:      c.evicted,
		Entries:        c.lru.Len(),
		Bytes:          c.bytes,
		Capacity:       c.capacity,
		PendingEntries: len(c.building),
		PendingBytes:   c.buildBytes,
		Abandoned:      c.abandoned,
	}
}
