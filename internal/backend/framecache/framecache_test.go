package framecache

import (
	"fmt"
	"testing"

	"visapult/internal/wire"
)

// slab builds a test slab whose heavy payload carries a texture of n bytes
// (n must be a multiple of 4 to stay a valid RGBA buffer).
func slab(frame, pe, texBytes int) Slab {
	return Slab{
		Light: &wire.LightPayload{Frame: frame, PE: pe, TexWidth: texBytes / 4, TexHeight: 1, BytesPerPixel: 4},
		Heavy: &wire.HeavyPayload{Frame: frame, PE: pe, TexWidth: texBytes / 4, TexHeight: 1, Texture: make([]byte, texBytes)},
	}
}

func key(ts int) Key { return Key{Dataset: "combustion/64x64x64", Timestep: ts, TF: "fire"} }

// putFrame inserts a complete 2-PE frame for timestep ts.
func putFrame(c *Cache, ts, texBytes int) {
	for pe := 0; pe < 2; pe++ {
		c.PutSlab(key(ts), pe, 2, slab(ts, pe, texBytes))
	}
}

func TestCacheHitMiss(t *testing.T) {
	c := New(1 << 20)
	if _, ok := c.Slab(key(0), 0); ok {
		t.Fatal("empty cache reported a hit")
	}
	putFrame(c, 0, 1024)
	for pe := 0; pe < 2; pe++ {
		s, ok := c.Slab(key(0), pe)
		if !ok {
			t.Fatalf("PE %d: expected hit after PutSlab", pe)
		}
		if s.Heavy.PE != pe || s.Heavy.Frame != 0 {
			t.Fatalf("PE %d: wrong slab returned: frame %d pe %d", pe, s.Heavy.Frame, s.Heavy.PE)
		}
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 2 hits, 1 miss, 1 entry", st)
	}
	if st.Bytes <= 0 || st.Bytes > st.Capacity {
		t.Fatalf("implausible byte accounting: %+v", st)
	}
}

func TestCachePartialFrameNeverServed(t *testing.T) {
	c := New(1 << 20)
	c.PutSlab(key(0), 0, 2, slab(0, 0, 1024)) // only PE 0 of 2
	if _, ok := c.Slab(key(0), 0); ok {
		t.Fatal("partial frame served from cache")
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("partial frame counted as entry: %+v", st)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// Each 2-PE frame is ~2x2 KiB plus headers; cap the cache so only two
	// frames fit.
	frameBytes := slab(0, 0, 2048).bytes() * 2
	c := New(frameBytes*2 + frameBytes/2)
	putFrame(c, 0, 2048)
	putFrame(c, 1, 2048)
	// Touch frame 0 so frame 1 is the LRU victim.
	if _, ok := c.Slab(key(0), 0); !ok {
		t.Fatal("frame 0 missing before eviction")
	}
	putFrame(c, 2, 2048)
	if _, ok := c.Slab(key(1), 0); ok {
		t.Fatal("LRU frame 1 survived eviction")
	}
	if _, ok := c.Slab(key(0), 0); !ok {
		t.Fatal("recently used frame 0 was evicted")
	}
	if _, ok := c.Slab(key(2), 0); !ok {
		t.Fatal("newest frame 2 was evicted")
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats = %+v, want 1 eviction, 2 entries", st)
	}
}

func TestCacheOversizedFrameSkipped(t *testing.T) {
	c := New(256) // smaller than one frame
	putFrame(c, 0, 4096)
	if st := c.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("oversized frame was inserted: %+v", st)
	}
}

func TestCacheClear(t *testing.T) {
	c := New(1 << 20)
	putFrame(c, 0, 1024)
	c.Slab(key(0), 0)
	c.Clear()
	if st := c.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("Clear left residency: %+v", st)
	}
	if st := c.Stats(); st.Hits != 1 {
		t.Fatalf("Clear reset counters: %+v", st)
	}
	if _, ok := c.Slab(key(0), 0); ok {
		t.Fatal("cleared frame still served")
	}
}

func TestCacheNilSafe(t *testing.T) {
	var c *Cache
	if _, ok := c.Slab(key(0), 0); ok {
		t.Fatal("nil cache reported a hit")
	}
	c.PutSlab(key(0), 0, 1, slab(0, 0, 64))
	c.Clear()
	if st := c.Stats(); st != (Stats{}) {
		t.Fatalf("nil cache stats = %+v, want zeros", st)
	}
	if New(0) != nil {
		t.Fatal("New(0) should disable caching with a nil cache")
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := New(1 << 22)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				ts := (g*200 + i) % 32
				for pe := 0; pe < 2; pe++ {
					c.PutSlab(key(ts), pe, 2, slab(ts, pe, 512))
					c.Slab(key(ts), pe)
				}
				if i%50 == 0 {
					c.Stats()
				}
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	st := c.Stats()
	if st.Entries == 0 {
		t.Fatalf("no entries after concurrent load: %+v", st)
	}
	if st.Entries > 32 {
		t.Fatalf("more entries than distinct keys: %+v", st)
	}
}

func TestCacheDistinctTFDistinctEntries(t *testing.T) {
	c := New(1 << 20)
	k1 := Key{Dataset: "d", Timestep: 0, TF: "fire"}
	k2 := Key{Dataset: "d", Timestep: 0, TF: "cool"}
	c.PutSlab(k1, 0, 1, slab(0, 0, 256))
	if _, ok := c.Slab(k2, 0); ok {
		t.Fatal("transfer-function change hit the old entry")
	}
	c.PutSlab(k2, 0, 1, slab(0, 0, 256))
	if st := c.Stats(); st.Entries != 2 {
		t.Fatalf("want 2 entries for 2 TF hashes, got %+v", st)
	}
}

func TestCacheDecompositionChangeRestartsAssembly(t *testing.T) {
	c := New(1 << 20)
	k := key(0)
	c.PutSlab(k, 0, 4, slab(0, 0, 256))
	// Same key, different total: the stale partial must not merge.
	c.PutSlab(k, 0, 2, slab(0, 0, 256))
	c.PutSlab(k, 1, 2, slab(0, 1, 256))
	s, ok := c.Slab(k, 1)
	if !ok {
		t.Fatal("frame with restarted assembly never completed")
	}
	if s.Heavy.PE != 1 {
		t.Fatalf("wrong slab: %+v", s.Heavy.PE)
	}
}

func BenchmarkCacheSlab(b *testing.B) {
	c := New(1 << 24)
	for ts := 0; ts < 16; ts++ {
		putFrame(c, ts, 4096)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Slab(key(i%16), i%2); !ok {
			b.Fatal("unexpected miss")
		}
	}
}

func ExampleCache() {
	c := New(1 << 20)
	k := Key{Dataset: "combustion/64x64x64/ts4", Timestep: 2, TF: "fire"}
	c.PutSlab(k, 0, 1, slab(2, 0, 1024))
	_, hit := c.Slab(k, 0)
	fmt.Println(hit)
	// Output: true
}

// Regression: PutSlab used to store the caller's payload slices uncopied, so
// a back end recycling its texture buffer between frames silently corrupted
// cached entries. The cache must deep-copy on insert.
func TestPutSlabCopiesCallerBuffers(t *testing.T) {
	c := New(1 << 20)
	s0 := slab(0, 0, 1024)
	for i := range s0.Heavy.Texture {
		s0.Heavy.Texture[i] = 0xAB
	}
	c.PutSlab(key(0), 0, 2, s0)
	// Mutate everything the caller handed in before the frame completes.
	for i := range s0.Heavy.Texture {
		s0.Heavy.Texture[i] = 0xEE
	}
	s0.Light.Frame = 999
	s0.Heavy.TexWidth = 1
	c.PutSlab(key(0), 1, 2, slab(0, 1, 1024))
	got, ok := c.Slab(key(0), 0)
	if !ok {
		t.Fatal("completed frame missing")
	}
	if got.Light.Frame != 0 {
		t.Fatalf("cached light payload tracked caller mutation: Frame = %d", got.Light.Frame)
	}
	for i, b := range got.Heavy.Texture {
		if b != 0xAB {
			t.Fatalf("cached texture byte %d = %#x, tracked caller mutation", i, b)
		}
	}
}

// PutSlabOwned is the documented ownership transfer: no defensive copy, the
// cache retains exactly the payloads it was handed.
func TestPutSlabOwnedRetainsPayloads(t *testing.T) {
	c := New(1 << 20)
	s0, s1 := slab(0, 0, 1024), slab(0, 1, 1024)
	c.PutSlabOwned(key(0), 0, 2, s0)
	c.PutSlabOwned(key(0), 1, 2, s1)
	got, ok := c.Slab(key(0), 0)
	if !ok {
		t.Fatal("completed frame missing")
	}
	if got.Heavy != s0.Heavy {
		t.Fatal("PutSlabOwned copied the payload it was given ownership of")
	}
}

// Regression: a cancelled run used to strand its partial frame assembly in
// the pending map forever. Abandon (wired into run teardown) must drain it.
func TestAbandonDrainsPendingAssembly(t *testing.T) {
	c := New(1 << 20)
	c.PutSlab(key(0), 0, 4, slab(0, 0, 1024)) // rank 0 of 4, then the run dies
	st := c.Stats()
	if st.PendingEntries != 1 || st.PendingBytes <= 0 {
		t.Fatalf("pending assembly not tracked: %+v", st)
	}
	c.Abandon(key(0))
	st = c.Stats()
	if st.PendingEntries != 0 || st.PendingBytes != 0 || st.Abandoned != 1 {
		t.Fatalf("Abandon left pending state: %+v", st)
	}
	// Abandoning again, or a key never built, is a no-op.
	c.Abandon(key(0))
	c.Abandon(key(7))
	if st = c.Stats(); st.Abandoned != 1 {
		t.Fatalf("no-op Abandon counted: %+v", st)
	}
	// The frame can still assemble cleanly afterwards.
	putFrame(c, 0, 1024)
	if _, ok := c.Slab(key(0), 0); !ok {
		t.Fatal("frame cannot assemble after Abandon")
	}
}

// An abandoned key's resident (completed) entry is unaffected.
func TestAbandonSparesResidentFrames(t *testing.T) {
	c := New(1 << 20)
	putFrame(c, 0, 1024)
	c.Abandon(key(0))
	if _, ok := c.Slab(key(0), 0); !ok {
		t.Fatal("Abandon evicted a completed frame")
	}
}

// Even without Abandon, dead runs' partial assemblies must not accumulate
// without bound: the pending map is swept oldest-first past its count bound.
func TestPendingAssemblyCountBound(t *testing.T) {
	c := New(1 << 30)
	for ts := 0; ts < maxPendingAssemblies+10; ts++ {
		c.PutSlab(key(ts), 0, 2, slab(ts, 0, 256)) // never completed
	}
	st := c.Stats()
	if st.PendingEntries > maxPendingAssemblies {
		t.Fatalf("pending map grew past bound: %+v", st)
	}
	if st.Abandoned != 10 {
		t.Fatalf("sweep abandoned %d assemblies, want 10: %+v", st.Abandoned, st)
	}
}

// The pending map is also byte-bounded (at the cache capacity), and the sweep
// spares the frame currently being contributed to.
func TestPendingAssemblyByteBoundSparesCurrent(t *testing.T) {
	one := slab(0, 0, 4096).bytes()
	c := New(3 * one)
	c.PutSlab(key(0), 0, 2, slab(0, 0, 4096))
	c.PutSlab(key(1), 0, 2, slab(1, 0, 4096))
	c.PutSlab(key(2), 0, 2, slab(2, 0, 4096))
	c.PutSlab(key(3), 0, 2, slab(3, 0, 4096)) // pushes bytes past capacity
	st := c.Stats()
	if st.PendingBytes > st.Capacity {
		t.Fatalf("pending bytes exceed capacity: %+v", st)
	}
	// Key 3 (current) must have survived; the oldest assemblies were swept.
	c.PutSlab(key(3), 1, 2, slab(3, 1, 4096))
	if _, ok := c.Slab(key(3), 0); !ok {
		t.Fatal("sweep dropped the assembly being contributed to")
	}
}
