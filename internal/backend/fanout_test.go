package backend

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"visapult/internal/volume"
	"visapult/internal/wire"
)

// recordSink collects delivered (frame, PE) pairs; optionally it blocks until
// released, standing in for a stalled viewer connection.
type recordSink struct {
	mu      sync.Mutex
	got     [][2]int // (frame, pe) in arrival order
	pending *wire.LightPayload

	block   chan struct{} // non-nil: SendHeavy waits until closed
	failErr error
}

func (r *recordSink) SendLight(lp *wire.LightPayload) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.failErr != nil {
		return r.failErr
	}
	r.pending = lp
	return nil
}

func (r *recordSink) SendHeavy(hp *wire.HeavyPayload) error {
	if r.block != nil {
		<-r.block
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.failErr != nil {
		return r.failErr
	}
	r.got = append(r.got, [2]int{hp.Frame, hp.PE})
	r.pending = nil
	return nil
}

func (r *recordSink) pairs() [][2]int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([][2]int(nil), r.got...)
}

// publishFrame pushes one full frame (all PEs) through the fan-out's sinks.
func publishFrame(t *testing.T, sinks []FrameSink, frame int) {
	t.Helper()
	for pe, s := range sinks {
		lp := &wire.LightPayload{Frame: frame, PE: pe, SlabIndex: pe, SlabCount: len(sinks), TexWidth: 1, TexHeight: 1, BytesPerPixel: 4}
		hp := &wire.HeavyPayload{Frame: frame, PE: pe, TexWidth: 1, TexHeight: 1, Texture: []byte{0, 0, 0, 0}}
		if err := s.SendLight(lp); err != nil {
			t.Fatalf("SendLight frame %d PE %d: %v", frame, pe, err)
		}
		if err := s.SendHeavy(hp); err != nil {
			t.Fatalf("SendHeavy frame %d PE %d: %v", frame, pe, err)
		}
	}
}

func waitDelivered(t *testing.T, f *Fanout, id string, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		for _, d := range f.Viewers() {
			if d.ID == id && d.FramesSent >= want {
				return
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("viewer %q never reached %d delivered pairs: %+v", id, want, f.Viewers())
}

func TestFanoutMulticastsToAllViewers(t *testing.T) {
	const pes, frames = 3, 4
	f, err := NewFanout(pes, 0)
	if err != nil {
		t.Fatal(err)
	}
	var sinksA, sinksB, sinksC recordSink
	for id, rs := range map[string]*recordSink{"a": &sinksA, "b": &sinksB, "c": &sinksC} {
		if err := f.Attach(id, []FrameSink{rs}); err != nil {
			t.Fatalf("attach %s: %v", id, err)
		}
	}
	out := f.Sinks()
	for frame := 0; frame < frames; frame++ {
		publishFrame(t, out, frame)
	}
	if !f.Close(5 * time.Second) {
		t.Fatal("Close did not drain all senders")
	}
	for id, rs := range map[string]*recordSink{"a": &sinksA, "b": &sinksB, "c": &sinksC} {
		if got := len(rs.pairs()); got != pes*frames {
			t.Errorf("viewer %s received %d pairs, want %d", id, got, pes*frames)
		}
	}
	for _, d := range f.Viewers() {
		if d.FramesSent != pes*frames || d.FramesDropped != 0 {
			t.Errorf("viewer %s delivery = %+v, want %d sent, 0 dropped", d.ID, d, pes*frames)
		}
	}
}

func TestFanoutStalledViewerDropsWithoutBlockingPublish(t *testing.T) {
	const pes = 2
	const queue = 2
	f, err := NewFanout(pes, queue)
	if err != nil {
		t.Fatal(err)
	}
	healthy := &recordSink{}
	stalled := &recordSink{block: make(chan struct{})}
	if err := f.Attach("healthy", []FrameSink{healthy}); err != nil {
		t.Fatal(err)
	}
	if err := f.Attach("stalled", []FrameSink{stalled}); err != nil {
		t.Fatal(err)
	}
	out := f.Sinks()

	// Publish far more than the stalled viewer's queue can hold, pacing on
	// the healthy viewer (the analogue of the render loop's frame cadence).
	// Publishing must never block on the stalled one — this test hangs if it
	// does.
	const frames = 10
	done := make(chan struct{})
	go func() {
		defer close(done)
		for frame := 0; frame < frames; frame++ {
			publishFrame(t, out, frame)
			waitDelivered(t, f, "healthy", (frame+1)*pes)
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("publishing blocked on a stalled viewer")
	}
	close(stalled.block) // release the stalled sender so Close can drain
	if !f.Close(5 * time.Second) {
		t.Fatal("Close did not drain after unblocking")
	}

	var sd, hd ViewerDelivery
	for _, d := range f.Viewers() {
		switch d.ID {
		case "stalled":
			sd = d
		case "healthy":
			hd = d
		}
	}
	if hd.FramesDropped != 0 || hd.FramesSent != pes*frames {
		t.Errorf("healthy viewer delivery = %+v, want all %d pairs", hd, pes*frames)
	}
	if sd.FramesDropped == 0 {
		t.Errorf("stalled viewer dropped nothing: %+v", sd)
	}
	if sd.FramesSent+sd.FramesDropped != pes*frames {
		t.Errorf("stalled viewer sent %d + dropped %d, want %d total", sd.FramesSent, sd.FramesDropped, pes*frames)
	}
}

func TestFanoutLateAttachStartsAtNextFrameBoundary(t *testing.T) {
	const pes = 2
	f, err := NewFanout(pes, 0)
	if err != nil {
		t.Fatal(err)
	}
	early := &recordSink{}
	if err := f.Attach("early", []FrameSink{early}); err != nil {
		t.Fatal(err)
	}
	out := f.Sinks()
	publishFrame(t, out, 0)
	// Tear the boundary: frame 1 published by PE 0 only, then the attach.
	lp := &wire.LightPayload{Frame: 1, PE: 0, TexWidth: 1, TexHeight: 1, BytesPerPixel: 4}
	hp := &wire.HeavyPayload{Frame: 1, PE: 0, TexWidth: 1, TexHeight: 1, Texture: []byte{0, 0, 0, 0}}
	if err := out[0].SendLight(lp); err != nil {
		t.Fatal(err)
	}
	if err := out[0].SendHeavy(hp); err != nil {
		t.Fatal(err)
	}

	late := &recordSink{}
	if err := f.Attach("late", []FrameSink{late}); err != nil {
		t.Fatal(err)
	}
	// Rest of frame 1, then frames 2 and 3.
	lp2 := &wire.LightPayload{Frame: 1, PE: 1, TexWidth: 1, TexHeight: 1, BytesPerPixel: 4}
	hp2 := &wire.HeavyPayload{Frame: 1, PE: 1, TexWidth: 1, TexHeight: 1, Texture: []byte{0, 0, 0, 0}}
	if err := out[1].SendLight(lp2); err != nil {
		t.Fatal(err)
	}
	if err := out[1].SendHeavy(hp2); err != nil {
		t.Fatal(err)
	}
	publishFrame(t, out, 2)
	publishFrame(t, out, 3)
	if !f.Close(5 * time.Second) {
		t.Fatal("Close did not drain")
	}

	for _, pair := range late.pairs() {
		if pair[0] < 2 {
			t.Errorf("late viewer received frame %d PE %d, want nothing before frame 2", pair[0], pair[1])
		}
	}
	if got := len(late.pairs()); got != 2*pes {
		t.Errorf("late viewer received %d pairs, want %d (frames 2-3, all PEs)", got, 2*pes)
	}
	if got := len(early.pairs()); got != 4*pes {
		t.Errorf("early viewer received %d pairs, want %d", got, 4*pes)
	}
	for _, d := range f.Viewers() {
		if d.ID == "late" && d.StartFrame != 2 {
			t.Errorf("late viewer StartFrame = %d, want 2", d.StartFrame)
		}
	}
}

func TestFanoutFailedSinkDetachesViewer(t *testing.T) {
	f, err := NewFanout(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	bad := &recordSink{failErr: errors.New("connection reset")}
	good := &recordSink{}
	if err := f.Attach("bad", []FrameSink{bad}); err != nil {
		t.Fatal(err)
	}
	if err := f.Attach("good", []FrameSink{good}); err != nil {
		t.Fatal(err)
	}
	out := f.Sinks()
	for frame := 0; frame < 5; frame++ {
		publishFrame(t, out, frame)
	}
	waitDelivered(t, f, "good", 5)
	if !f.Close(5 * time.Second) {
		t.Fatal("Close did not drain")
	}
	var bd ViewerDelivery
	for _, d := range f.Viewers() {
		if d.ID == "bad" {
			bd = d
		}
	}
	if !bd.Detached || bd.Error == "" || !strings.Contains(bd.Error, "connection reset") {
		t.Errorf("failed viewer delivery = %+v, want detached with the sink error", bd)
	}
}

func TestFanoutDetachAndReuseID(t *testing.T) {
	f, err := NewFanout(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	first := &recordSink{}
	if err := f.Attach("v", []FrameSink{first}); err != nil {
		t.Fatal(err)
	}
	if err := f.Attach("v", []FrameSink{&recordSink{}}); err == nil {
		t.Fatal("double attach under one id succeeded")
	}
	publishFrame(t, f.Sinks(), 0)
	waitDelivered(t, f, "v", 1)
	if err := f.Detach("v"); err != nil {
		t.Fatalf("detach: %v", err)
	}
	if err := f.Detach("v"); err == nil {
		t.Fatal("double detach succeeded")
	}
	// The id is reusable after detach; the old attachment's record is
	// retired into the snapshot history, not discarded.
	second := &recordSink{}
	if err := f.Attach("v", []FrameSink{second}); err != nil {
		t.Fatalf("re-attach after detach: %v", err)
	}
	publishFrame(t, f.Sinks(), 1)
	waitDelivered(t, f, "v", 1)
	f.Close(5 * time.Second)
	if got := len(second.pairs()); got != 1 {
		t.Errorf("re-attached viewer received %d pairs, want 1", got)
	}
	vds := f.Viewers()
	if len(vds) != 2 {
		t.Fatalf("snapshot has %d records after id reuse, want both attachments: %+v", len(vds), vds)
	}
	if !vds[0].Detached || vds[0].FramesSent != 1 {
		t.Errorf("retired record = %+v, want the first attachment's counters", vds[0])
	}
	if vds[1].Detached || vds[1].FramesSent != 1 {
		t.Errorf("live record = %+v, want the second attachment's counters", vds[1])
	}
}

// TestFanoutDrivenByBackEnd runs a real BackEnd against the fan-out: every
// viewer sees every (PE, frame) pair and the run statistics are unaffected by
// the number of viewers.
func TestFanoutDrivenByBackEnd(t *testing.T) {
	vol := volume.MustNew(8, 8, 8)
	src, err := NewMemorySource(vol, vol, vol)
	if err != nil {
		t.Fatal(err)
	}
	const pes = 2
	f, err := NewFanout(pes, 0)
	if err != nil {
		t.Fatal(err)
	}
	viewers := []*recordSink{{}, {}, {}}
	for i, rs := range viewers {
		if err := f.Attach(string(rune('a'+i)), []FrameSink{rs}); err != nil {
			t.Fatal(err)
		}
	}
	be, err := New(Config{PEs: pes, Source: src, Sinks: f.Sinks()})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := be.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !f.Close(5 * time.Second) {
		t.Fatal("Close did not drain")
	}
	want := pes * stats.Frames
	for i, rs := range viewers {
		if got := len(rs.pairs()); got != want {
			t.Errorf("viewer %d received %d pairs, want %d", i, got, want)
		}
	}
}
