package render

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"visapult/internal/volume"
)

// Pool fans one slab render across a bounded set of worker goroutines by
// splitting the image plane into row-tiles. It is designed to be shared: the
// back end owns one pool and every PE submits to it, so concurrent PEs never
// oversubscribe the machine. Output is deterministic — tiles are disjoint
// row ranges of one image, so the assembled pixels are independent of
// scheduling order — and per-tile RenderStats are merged atomically.
//
// The submitting goroutine always renders tiles itself alongside the
// workers (work donation), so a render completes even when every pool
// worker is busy with other slabs; the pool bounds parallelism, it is never
// a deadlock point.
type Pool struct {
	workers int
	tasks   chan *renderJob
	wg      sync.WaitGroup // joins the worker goroutines on Close
	closed  atomic.Bool
}

// Package-level occupancy gauges, aggregated across all pools so the daemons
// can expose render-pool occupancy on /metrics without threading pool
// handles through every layer.
var (
	poolLiveWorkers atomic.Int64
	poolBusyWorkers atomic.Int64
	poolQueuedJobs  atomic.Int64
	poolFrames      atomic.Int64
	poolTiles       atomic.Int64
)

// PoolStats is a snapshot of render-pool occupancy across the process.
type PoolStats struct {
	// Workers is the number of live pool worker goroutines.
	Workers int64 `json:"workers"`
	// Busy is how many of them are currently rendering tiles.
	Busy int64 `json:"busy"`
	// Queued is the number of submitted slab renders not yet picked up by
	// any worker (the submitter may still be draining them itself).
	Queued int64 `json:"queued"`
	// Frames and Tiles count completed slab renders and rendered tiles.
	Frames int64 `json:"frames"`
	Tiles  int64 `json:"tiles"`
}

// GlobalPoolStats returns process-wide render-pool occupancy.
func GlobalPoolStats() PoolStats {
	return PoolStats{
		Workers: poolLiveWorkers.Load(),
		Busy:    poolBusyWorkers.Load(),
		Queued:  poolQueuedJobs.Load(),
		Frames:  poolFrames.Load(),
		Tiles:   poolTiles.Load(),
	}
}

// renderJob is one slab render in flight: immutable inputs plus the shared
// tile cursor and stat accumulators the participants race on (atomically).
type renderJob struct {
	vol   *volume.Volume
	geom  slabGeom
	lut   *LUT
	cells *Macrocells
	img   *Image
	ctx   context.Context

	rowsPerTile int
	tiles       int
	next        atomic.Int64 // next unclaimed tile index
	cancelled   atomic.Bool

	rays, samples, nonEmpty, early, skipped atomic.Int64

	// helpers joins the pool workers that picked this job up; the submitter
	// waits on it after draining its own share of tiles.
	helpers sync.WaitGroup
}

// jobFreeList recycles renderJob structs so steady-state submission
// allocates nothing per frame.
var jobFreeList = sync.Pool{New: func() any { return new(renderJob) }}

// NewPool starts a render pool with min(GOMAXPROCS, workers) goroutines
// (workers <= 0 selects GOMAXPROCS). Close must be called exactly once,
// after every in-flight RenderSlab call has returned.
func NewPool(workers int) *Pool {
	maxp := runtime.GOMAXPROCS(0)
	if workers <= 0 || workers > maxp {
		workers = maxp
	}
	p := &Pool{workers: workers, tasks: make(chan *renderJob, workers)}
	p.wg.Add(workers)
	poolLiveWorkers.Add(int64(workers))
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			// Lifecycle: ranges until Close closes tasks; queued jobs are
			// drained before exit, so a submitted job is never orphaned.
			for job := range p.tasks {
				poolQueuedJobs.Add(-1)
				poolBusyWorkers.Add(1)
				job.drain()
				poolBusyWorkers.Add(-1)
				job.helpers.Done()
			}
		}()
	}
	return p
}

// Workers returns the pool's goroutine count.
func (p *Pool) Workers() int { return p.workers }

// Close stops the worker goroutines and waits for them to exit. No
// RenderSlab call may be in flight or issued afterwards.
func (p *Pool) Close() {
	if p.closed.Swap(true) {
		return
	}
	close(p.tasks)
	p.wg.Wait()
	poolLiveWorkers.Add(-int64(p.workers))
}

// RenderSlab renders the region of v viewed along axis into img (dimensions
// must equal imagePlaneDims(r, axis); pixels must be zero — use GetImage),
// fanning row-tiles across the pool workers plus the calling goroutine. The
// pixels are bit-identical to the serial RenderSlabLUT call with the same
// arguments, whatever the worker count or schedule.
//
// Cancellation is checked between tiles: when ctx is done the remaining
// tiles are abandoned and the context error is returned; the image contents
// are then undefined and must not be shipped (but may still be PutImage'd).
func (p *Pool) RenderSlab(ctx context.Context, v *volume.Volume, r volume.Region, lut *LUT, cells *Macrocells, axis volume.Axis, img *Image) (RenderStats, error) {
	start := time.Now()
	g := slabGeometry(v, r, axis, cells)
	if w, h := imagePlaneDims(r, axis); img.W != w || img.H != h {
		return RenderStats{}, fmt.Errorf("render: pool image is %dx%d, slab needs %dx%d", img.W, img.H, w, h)
	}
	job := jobFreeList.Get().(*renderJob)
	job.vol, job.geom, job.lut, job.cells, job.img, job.ctx = v, g, lut, cells, img, ctx
	job.next.Store(0)
	job.cancelled.Store(false)
	job.rays.Store(0)
	job.samples.Store(0)
	job.nonEmpty.Store(0)
	job.early.Store(0)
	job.skipped.Store(0)

	// Aim for a few tiles per participant so claim-order imbalance (rays
	// that early-terminate are cheaper) evens out, with at least one row per
	// tile.
	job.rowsPerTile = g.dv / (4 * p.workers)
	if job.rowsPerTile < 1 {
		job.rowsPerTile = 1
	}
	job.tiles = (g.dv + job.rowsPerTile - 1) / job.rowsPerTile

	// Offer the job to up to workers-many helpers without blocking: if the
	// pool is saturated by other slabs, the submitter just renders alone.
	// helpers.Add precedes each send so Done can never race ahead of it.
	for offered := 0; offered < p.workers && offered+1 < job.tiles; offered++ {
		job.helpers.Add(1)
		select {
		case p.tasks <- job:
			poolQueuedJobs.Add(1)
		default:
			job.helpers.Done()
			offered = p.workers // stop offering
		}
	}

	job.drain() // work donation: the submitter renders too
	job.helpers.Wait()

	var err error
	if job.cancelled.Load() {
		err = ctx.Err()
		if err == nil {
			err = context.Canceled
		}
	}
	st := RenderStats{
		Rays:             int(job.rays.Load()),
		Samples:          int(job.samples.Load()),
		NonEmptySamples:  int(job.nonEmpty.Load()),
		EarlyTerminated:  int(job.early.Load()),
		TilesSkipped:     int(job.skipped.Load()),
		OutputPixelBytes: img.Bytes(),
		WallTime:         time.Since(start),
	}
	job.vol, job.lut, job.cells, job.img, job.ctx = nil, nil, nil, nil, nil
	jobFreeList.Put(job)
	if err == nil {
		poolFrames.Add(1)
	}
	return st, err
}

// drain claims and renders tiles until none remain or the job's context is
// cancelled. Stats accumulate in a tile-local RenderStats and merge once per
// tile, keeping the per-sample path free of atomics.
func (j *renderJob) drain() {
	for {
		t := int(j.next.Add(1)) - 1
		if t >= j.tiles {
			return
		}
		if j.ctx != nil && j.ctx.Err() != nil {
			j.cancelled.Store(true)
			return
		}
		v0 := t * j.rowsPerTile
		v1 := v0 + j.rowsPerTile
		if v1 > j.geom.dv {
			v1 = j.geom.dv
		}
		var st RenderStats
		renderRowsLUT(j.vol, j.geom, j.lut, j.cells, j.img, v0, v1, &st)
		j.rays.Add(int64(st.Rays))
		j.samples.Add(int64(st.Samples))
		j.nonEmpty.Add(int64(st.NonEmptySamples))
		j.early.Add(int64(st.EarlyTerminated))
		j.skipped.Add(int64(st.TilesSkipped))
		poolTiles.Add(1)
	}
}
