package render

import (
	"context"
	"math"
	"sync"
	"testing"

	"visapult/internal/datagen"
	"visapult/internal/volume"
)

// equivVolume is large enough to span several macrocells on every axis with
// odd remainders, so block-boundary arithmetic is exercised.
func equivVolume() *volume.Volume {
	gen := datagen.NewCombustion(datagen.CombustionConfig{NX: 41, NY: 35, NZ: 29, Timesteps: 2, Seed: 7})
	return gen.Generate(1)
}

// equivTFs returns the transfer functions the equivalence suite sweeps: the
// branchy default, a trivially smooth one, a piecewise table, and an
// all-transparent function (skipping should remove everything).
func equivTFs() map[string]TransferFunction {
	return map[string]TransferFunction{
		"fire":      DefaultCombustionTF(),
		"grayscale": Grayscale{},
		"piecewise": Piecewise{Points: []ControlPoint{
			{Value: 0.1, A: 0},
			{Value: 0.3, R: 0.2, G: 0.4, B: 0.9, A: 0.35},
			{Value: 0.8, R: 1, G: 0.6, B: 0.1, A: 0.9},
		}},
		"transparent": Piecewise{Points: []ControlPoint{{Value: 0, A: 0}, {Value: 1, A: 0}}},
	}
}

func equivRegions(v *volume.Volume) map[string]volume.Region {
	return map[string]volume.Region{
		"full":     {X1: v.NX, Y1: v.NY, Z1: v.NZ},
		"sub-odd":  {X0: 3, X1: v.NX - 2, Y0: 1, Y1: v.NY - 4, Z0: 5, Z1: v.NZ - 1},
		"size-one": {X0: 17, X1: 18, Y0: 16, Y1: 17, Z0: 15, Z1: 16},
		"thin":     {X1: v.NX, Y1: v.NY, Z0: v.NZ / 2, Z1: v.NZ/2 + 1},
	}
}

func samePix(t *testing.T, want, got *Image, label string) {
	t.Helper()
	if want.W != got.W || want.H != got.H {
		t.Fatalf("%s: size %dx%d vs %dx%d", label, want.W, want.H, got.W, got.H)
	}
	for i := range want.Pix {
		if want.Pix[i] != got.Pix[i] {
			t.Fatalf("%s: pixel float %d differs: %v vs %v", label, i, want.Pix[i], got.Pix[i])
		}
	}
}

// TestRenderSlabLUTEquivalence is the golden suite of the optimized kernel:
// for every axis, region and transfer function, the LUT path (with and
// without empty-space skipping) must reproduce the scalar RenderSlab driven
// by the same LUT bit-for-bit.
func TestRenderSlabLUTEquivalence(t *testing.T) {
	v := equivVolume()
	cells := BuildMacrocells(v)
	axes := map[string]volume.Axis{"x": volume.AxisX, "y": volume.AxisY, "z": volume.AxisZ}
	for tfName, tf := range equivTFs() {
		lut := BuildLUT(tf)
		for rName, r := range equivRegions(v) {
			for aName, axis := range axes {
				label := tfName + "/" + rName + "/" + aName
				want, wantSt := RenderSlab(v, r, lut, axis)
				got, gotSt := RenderSlabLUT(v, r, lut, nil, axis)
				samePix(t, want, got, label+"/no-skip")
				if wantSt.Rays != gotSt.Rays || wantSt.Samples != gotSt.Samples ||
					wantSt.NonEmptySamples != gotSt.NonEmptySamples ||
					wantSt.EarlyTerminated != gotSt.EarlyTerminated {
					t.Errorf("%s: stats diverge without skipping: %+v vs %+v", label, wantSt, gotSt)
				}
				skip, skipSt := RenderSlabLUT(v, r, lut, cells, axis)
				samePix(t, want, skip, label+"/skip")
				if skipSt.NonEmptySamples != wantSt.NonEmptySamples {
					t.Errorf("%s: skipping changed NonEmptySamples: %d vs %d",
						label, skipSt.NonEmptySamples, wantSt.NonEmptySamples)
				}
			}
		}
	}
}

// TestRenderSlabLUTEarlyTermination forces the 0.98 cutoff and checks the
// optimized path terminates rays at the identical sample.
func TestRenderSlabLUTEarlyTermination(t *testing.T) {
	v, err := volume.New(40, 24, 24)
	if err != nil {
		t.Fatal(err)
	}
	for i := range v.Data {
		v.Data[i] = 0.9
	}
	lut := BuildLUT(Piecewise{Points: []ControlPoint{{Value: 0, R: 1, A: 0.7}, {Value: 1, R: 1, A: 0.7}}})
	cells := BuildMacrocells(v)
	full := volume.Region{X1: v.NX, Y1: v.NY, Z1: v.NZ}
	for _, axis := range []volume.Axis{volume.AxisX, volume.AxisY, volume.AxisZ} {
		want, wantSt := RenderSlab(v, full, lut, axis)
		if wantSt.EarlyTerminated != wantSt.Rays {
			t.Fatalf("axis %v: oracle did not early-terminate every ray", axis)
		}
		got, gotSt := RenderSlabLUT(v, full, lut, cells, axis)
		samePix(t, want, got, "early")
		if gotSt.EarlyTerminated != wantSt.EarlyTerminated || gotSt.Samples != wantSt.Samples {
			t.Errorf("axis %v: termination stats %+v vs %+v", axis, gotSt, wantSt)
		}
	}
}

// TestRenderSlabLUTAllTransparentSkipsEverything checks the degenerate
// volume: when the LUT maps the whole value range to zero opacity, skipping
// removes every sample and the image stays fully transparent.
func TestRenderSlabLUTAllTransparentSkipsEverything(t *testing.T) {
	v := equivVolume()
	cells := BuildMacrocells(v)
	lut := BuildLUT(Piecewise{Points: []ControlPoint{{Value: 0, A: 0}, {Value: 1, A: 0}}})
	full := volume.Region{X1: v.NX, Y1: v.NY, Z1: v.NZ}
	img, st := RenderSlabLUT(v, full, lut, cells, volume.AxisZ)
	for i, p := range img.Pix {
		if p != 0 {
			t.Fatalf("pixel float %d = %v on all-transparent volume", i, p)
		}
	}
	if st.Samples != 0 || st.TilesSkipped == 0 {
		t.Errorf("expected all samples skipped, got %+v", st)
	}
}

// TestRenderSlabLUTNaNBlocksNeverSkipped poisons part of the volume with NaN
// and checks the optimized path still matches the oracle exactly: NaN blocks
// record inverted ranges and always march.
func TestRenderSlabLUTNaNBlocksNeverSkipped(t *testing.T) {
	v := equivVolume()
	nan := float32(math.NaN())
	for i := 0; i < len(v.Data); i += 97 {
		v.Data[i] = nan
	}
	cells := BuildMacrocells(v)
	lut := BuildLUT(DefaultCombustionTF())
	full := volume.Region{X1: v.NX, Y1: v.NY, Z1: v.NZ}
	for _, axis := range []volume.Axis{volume.AxisX, volume.AxisY, volume.AxisZ} {
		want, _ := RenderSlab(v, full, lut, axis)
		got, _ := RenderSlabLUT(v, full, lut, cells, axis)
		samePix(t, want, got, "nan")
	}
}

// TestPoolEquivalence proves the tiled parallel path is deterministic and
// bit-identical to the serial kernels at several worker counts.
func TestPoolEquivalence(t *testing.T) {
	v := equivVolume()
	cells := BuildMacrocells(v)
	lut := BuildLUT(DefaultCombustionTF())
	full := volume.Region{X1: v.NX, Y1: v.NY, Z1: v.NZ}
	for _, workers := range []int{1, 2, 4} {
		p := NewPool(workers)
		for _, axis := range []volume.Axis{volume.AxisX, volume.AxisY, volume.AxisZ} {
			want, wantSt := RenderSlab(v, full, lut, axis)
			img := GetImage(imagePlaneDims(full, axis))
			st, err := p.RenderSlab(context.Background(), v, full, lut, cells, axis, img)
			if err != nil {
				t.Fatalf("workers=%d axis=%v: %v", workers, axis, err)
			}
			samePix(t, want, img, "pool")
			if st.Rays != wantSt.Rays || st.NonEmptySamples != wantSt.NonEmptySamples {
				t.Errorf("workers=%d axis=%v: stats %+v vs %+v", workers, axis, st, wantSt)
			}
			PutImage(img)
		}
		p.Close()
	}
}

// TestPoolSharedAcrossPEs races several "processing elements" over one pool,
// the way the back end uses it; run under -race this is the data-race proof.
func TestPoolSharedAcrossPEs(t *testing.T) {
	v := equivVolume()
	cells := BuildMacrocells(v)
	lut := BuildLUT(DefaultCombustionTF())
	full := volume.Region{X1: v.NX, Y1: v.NY, Z1: v.NZ}
	want, _ := RenderSlab(v, full, lut, volume.AxisZ)
	p := NewPool(2)
	defer p.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for pe := 0; pe < 8; pe++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for frame := 0; frame < 3; frame++ {
				img := GetImage(imagePlaneDims(full, volume.AxisZ))
				_, err := p.RenderSlab(context.Background(), v, full, lut, cells, volume.AxisZ, img)
				if err != nil {
					errs <- err
					return
				}
				for i := range want.Pix {
					if want.Pix[i] != img.Pix[i] {
						t.Errorf("pe image diverged at float %d", i)
						break
					}
				}
				PutImage(img)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestPoolCancelMidFrame submits a render with an already-expiring context
// and checks the pool reports the context error instead of a full frame.
func TestPoolCancelMidFrame(t *testing.T) {
	v := equivVolume()
	lut := BuildLUT(DefaultCombustionTF())
	full := volume.Region{X1: v.NX, Y1: v.NY, Z1: v.NZ}
	p := NewPool(2)
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	img := GetImage(imagePlaneDims(full, volume.AxisZ))
	defer PutImage(img)
	if _, err := p.RenderSlab(ctx, v, full, lut, nil, volume.AxisZ, img); err == nil {
		t.Fatal("cancelled render returned nil error")
	}
}

// TestPoolImageSizeMismatch checks the defensive dimension guard.
func TestPoolImageSizeMismatch(t *testing.T) {
	v := equivVolume()
	lut := BuildLUT(DefaultCombustionTF())
	full := volume.Region{X1: v.NX, Y1: v.NY, Z1: v.NZ}
	p := NewPool(1)
	defer p.Close()
	img := NewImage(3, 3)
	if _, err := p.RenderSlab(context.Background(), v, full, lut, nil, volume.AxisZ, img); err == nil {
		t.Fatal("mismatched image accepted")
	}
}

// indirectTF hides a Piecewise behind another type so BuildLUT takes the
// generic per-entry path, giving a reference table for the segment walk.
type indirectTF struct{ pw Piecewise }

func (i indirectTF) Map(v float32) (r, g, b, a float32) { return i.pw.Map(v) }

// TestLUTPiecewiseSegmentWalkMatchesGeneric pins that the O(points + size)
// segment walk fills exactly the table the per-entry evaluation would.
func TestLUTPiecewiseSegmentWalkMatchesGeneric(t *testing.T) {
	cases := map[string]Piecewise{
		"ramp": {Points: []ControlPoint{{Value: 0, A: 0}, {Value: 1, R: 1, A: 1}}},
		"steps": {Points: []ControlPoint{
			{Value: 0.2, R: 0.1, A: 0.1},
			{Value: 0.2001, R: 0.9, A: 0.8},
			{Value: 0.7, B: 1, A: 0.3},
		}},
		"interior": {Points: []ControlPoint{{Value: 0.4, G: 1, A: 0.5}, {Value: 0.6, R: 1, A: 0.9}}},
		"single":   {Points: []ControlPoint{{Value: 0.5, R: 1, G: 1, B: 1, A: 1}}},
		"empty":    {},
	}
	for name, pw := range cases {
		fast := BuildLUT(pw)
		ref := BuildLUT(indirectTF{pw})
		if fast.Tab != ref.Tab {
			for i := range fast.Tab {
				if fast.Tab[i] != ref.Tab[i] {
					t.Fatalf("%s: table entry %d: %v vs %v", name, i, fast.Tab[i], ref.Tab[i])
				}
			}
		}
		if fast.opaque != ref.opaque {
			t.Errorf("%s: opacity prefix counts differ", name)
		}
	}
}

// TestLUTMapMatchesLookup checks LUT.Map against direct quantization of the
// source function, including the NaN and out-of-range clamps.
func TestLUTMapMatchesLookup(t *testing.T) {
	lut := BuildLUT(DefaultCombustionTF())
	values := []float32{-1, 0, 0.25, 0.5, 0.999, 1, 2, float32(math.NaN())}
	for _, v := range values {
		r, g, b, a := lut.Map(v)
		i := lutIndex(v) * 4
		if r != lut.Tab[i] || g != lut.Tab[i+1] || b != lut.Tab[i+2] || a != lut.Tab[i+3] {
			t.Errorf("Map(%v) disagrees with table entry", v)
		}
	}
	if lutIndex(float32(math.NaN())) != 0 || lutIndex(-5) != 0 || lutIndex(7) != LUTSize-1 {
		t.Error("lutIndex clamp broken")
	}
}

// TestLUTRangeEmpty pins the O(1) range classification against brute force.
func TestLUTRangeEmpty(t *testing.T) {
	lut := BuildLUT(DefaultCombustionTF()) // transparent below its threshold
	cases := []struct{ lo, hi float32 }{
		{0, 0.01}, {0, 0.04}, {0.02, 0.03}, {0, 0.5}, {0.1, 0.9}, {0.9, 1},
	}
	for _, c := range cases {
		want := true
		for i := lutIndex(c.lo); i <= lutIndex(c.hi); i++ {
			if lut.Tab[i*4+3] > 0 {
				want = false
				break
			}
		}
		if got := lut.RangeEmpty(c.lo, c.hi); got != want {
			t.Errorf("RangeEmpty(%v, %v) = %v, brute force %v", c.lo, c.hi, got, want)
		}
	}
	if lut.RangeEmpty(1, -1) {
		t.Error("inverted (NaN-poisoned) range must never be skippable")
	}
}

// TestMacrocellRanges checks block ranges against brute force on an odd-size
// volume, including the NaN poisoning rule.
func TestMacrocellRanges(t *testing.T) {
	v := equivVolume()
	v.Data[v.Index(1, 2, 3)] = float32(math.NaN())
	m := BuildMacrocells(v)
	for bz := 0; bz < m.BZ; bz++ {
		for by := 0; by < m.BY; by++ {
			for bx := 0; bx < m.BX; bx++ {
				lo, hi := float32(math.Inf(1)), float32(math.Inf(-1))
				sawNaN := false
				for z := bz * MacroBlock; z < (bz+1)*MacroBlock && z < v.NZ; z++ {
					for y := by * MacroBlock; y < (by+1)*MacroBlock && y < v.NY; y++ {
						for x := bx * MacroBlock; x < (bx+1)*MacroBlock && x < v.NX; x++ {
							val := v.At(x, y, z)
							if val != val {
								sawNaN = true
								continue
							}
							if val < lo {
								lo = val
							}
							if val > hi {
								hi = val
							}
						}
					}
				}
				gotLo, gotHi := m.Range(bx*MacroBlock, by*MacroBlock, bz*MacroBlock)
				if sawNaN {
					if gotLo <= gotHi {
						t.Fatalf("block %d,%d,%d: NaN block not poisoned: [%v, %v]", bx, by, bz, gotLo, gotHi)
					}
				} else if gotLo != lo || gotHi != hi {
					t.Fatalf("block %d,%d,%d: range [%v, %v], want [%v, %v]", bx, by, bz, gotLo, gotHi, lo, hi)
				}
			}
		}
	}
}

// linearPiecewiseMap is the historical O(points) scan Piecewise.Map replaced
// with a binary search, kept verbatim as the reference semantics.
func linearPiecewiseMap(t Piecewise, v float32) (r, g, b, a float32) {
	pts := t.Points
	if len(pts) == 0 {
		return 0, 0, 0, 0
	}
	v = clamp01(v)
	if v <= pts[0].Value {
		p := pts[0]
		return p.R, p.G, p.B, p.A
	}
	for i := 1; i < len(pts); i++ {
		if v <= pts[i].Value {
			p0, p1 := pts[i-1], pts[i]
			span := p1.Value - p0.Value
			var f float32
			if span > 0 {
				f = (v - p0.Value) / span
			}
			return p0.R + f*(p1.R-p0.R),
				p0.G + f*(p1.G-p0.G),
				p0.B + f*(p1.B-p0.B),
				p0.A + f*(p1.A-p0.A)
		}
	}
	p := pts[len(pts)-1]
	return p.R, p.G, p.B, p.A
}

// TestPiecewiseBinarySearchMatchesLinearReference pins that the binary-search
// Map is bit-exact against the linear scan it replaced, on every valid table
// shape (Check-passing points), over a dense sweep of lookup values.
func TestPiecewiseBinarySearchMatchesLinearReference(t *testing.T) {
	tables := map[string]Piecewise{
		"two":     {Points: []ControlPoint{{Value: 0.1, R: 1, A: 0.2}, {Value: 0.9, B: 1, A: 1}}},
		"single":  {Points: []ControlPoint{{Value: 0.5, G: 1, A: 0.7}}},
		"many":    {},
		"tight":   {Points: []ControlPoint{{Value: 0.3, A: 0.1}, {Value: 0.3000001, R: 1, A: 0.9}, {Value: 0.8, A: 0.2}}},
		"endless": {Points: []ControlPoint{{Value: 0, A: 0.5}, {Value: 1, R: 1, A: 1}}},
	}
	many := &Piecewise{}
	for i := 0; i < 17; i++ {
		f := float32(i) / 16
		many.Points = append(many.Points, ControlPoint{Value: f * f, R: f, G: 1 - f, B: f * 0.5, A: f})
	}
	tables["many"] = *many

	for name, pw := range tables {
		if len(pw.Points) > 0 {
			if _, _, ok := pw.Check(); !ok {
				t.Fatalf("%s: test table violates the Map precondition", name)
			}
		}
		for i := -8; i <= LUTSize+8; i++ {
			v := float32(i) / LUTSize
			gr, gg, gb, ga := pw.Map(v)
			wr, wg, wb, wa := linearPiecewiseMap(pw, v)
			if gr != wr || gg != wg || gb != wb || ga != wa {
				t.Fatalf("%s: Map(%v) = (%v,%v,%v,%v), linear reference (%v,%v,%v,%v)",
					name, v, gr, gg, gb, ga, wr, wg, wb, wa)
			}
		}
		// The exact control-point values themselves are the boundary cases the
		// search invariant is most sensitive to.
		for _, p := range pw.Points {
			gr, gg, gb, ga := pw.Map(p.Value)
			wr, wg, wb, wa := linearPiecewiseMap(pw, p.Value)
			if gr != wr || gg != wg || gb != wb || ga != wa {
				t.Fatalf("%s: Map at control point %v diverges from the linear reference", name, p.Value)
			}
		}
	}
}

// TestImageFreeListReturnsZeroedImages pins the GetImage contract the
// kernels rely on: recycled images come back transparent black.
func TestImageFreeListReturnsZeroedImages(t *testing.T) {
	im := GetImage(8, 6)
	im.Fill(0.5, 0.5, 0.5, 0.5)
	PutImage(im)
	re := GetImage(4, 4) // smaller: must reslice and zero the recycled array
	for i, p := range re.Pix {
		if p != 0 {
			t.Fatalf("recycled pixel float %d = %v", i, p)
		}
	}
	if re.W != 4 || re.H != 4 || len(re.Pix) != 64 {
		t.Fatalf("recycled image shape %dx%d len %d", re.W, re.H, len(re.Pix))
	}
	PutImage(re)
	PutImage(nil) // must be a no-op
}
