package render

import "visapult/internal/volume"

// MacroBlock is the edge length of one macrocell: the volume is partitioned
// into MacroBlock^3 blocks whose value ranges are precomputed once per
// loaded timestep, so rays can skip whole blocks that the active transfer
// function maps to zero opacity (empty-space skipping).
const MacroBlock = 16

// Macrocells is the min/max summary grid of one volume. It depends only on
// the voxel data — not on the transfer function or view axis — so the back
// end builds it once per loaded timestep (on the loader side, overlapping
// the previous frame's render) and reuses it for every ray of every view.
type Macrocells struct {
	// BX, BY, BZ are the grid dimensions in blocks (ceil(dim/MacroBlock)).
	BX, BY, BZ int
	// Min and Max hold each block's value range, indexed
	// bx + by*BX + bz*BX*BY. A block containing NaN records an inverted
	// range (Min > Max), which no skip test accepts — its samples always
	// reach the per-sample path, exactly like the scalar kernel.
	Min, Max []float32
}

// BuildMacrocells summarizes v into a macrocell grid.
func BuildMacrocells(v *volume.Volume) *Macrocells {
	bx := (v.NX + MacroBlock - 1) / MacroBlock
	by := (v.NY + MacroBlock - 1) / MacroBlock
	bz := (v.NZ + MacroBlock - 1) / MacroBlock
	m := &Macrocells{BX: bx, BY: by, BZ: bz,
		Min: make([]float32, bx*by*bz),
		Max: make([]float32, bx*by*bz)}
	first := make([]bool, bx*by*bz)
	nan := make([]bool, bx*by*bz)
	data := v.Data
	nx, ny := v.NX, v.NY
	for z := 0; z < v.NZ; z++ {
		bzOff := (z / MacroBlock) * bx * by
		for y := 0; y < ny; y++ {
			row := (z*ny + y) * nx
			bRow := bzOff + (y/MacroBlock)*bx
			for x := 0; x < nx; x++ {
				val := data[row+x]
				b := bRow + x/MacroBlock
				if val != val {
					nan[b] = true
					continue
				}
				if !first[b] {
					first[b] = true
					m.Min[b], m.Max[b] = val, val
					continue
				}
				if val < m.Min[b] {
					m.Min[b] = val
				}
				if val > m.Max[b] {
					m.Max[b] = val
				}
			}
		}
	}
	for b := range nan {
		if nan[b] || !first[b] {
			m.Min[b], m.Max[b] = 1, -1 // inverted: never skipped
		}
	}
	return m
}

// Range returns the value range of the block containing voxel (x, y, z).
// An inverted range (min > max) marks a block that must not be skipped.
func (m *Macrocells) Range(x, y, z int) (min, max float32) {
	b := x/MacroBlock + (y/MacroBlock)*m.BX + (z/MacroBlock)*m.BX*m.BY
	return m.Min[b], m.Max[b]
}
