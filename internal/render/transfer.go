package render

// TransferFunction maps a scalar voxel value (nominally in [0, 1]) to an RGBA
// color with straight alpha. It is the classic volume-rendering transfer
// function of Drebin/Carpenter/Hanrahan, which the paper cites as the basis
// of its software renderer.
type TransferFunction interface {
	Map(v float32) (r, g, b, a float32)
}

// Grayscale is a linear gray ramp whose opacity scales with the value.
type Grayscale struct {
	// OpacityScale multiplies the per-sample alpha (default treated as 1).
	OpacityScale float32
}

// Map implements TransferFunction.
func (t Grayscale) Map(v float32) (r, g, b, a float32) {
	scale := t.OpacityScale
	if scale == 0 {
		scale = 1
	}
	v = clamp01(v)
	return v, v, v, v * scale
}

// FireTF is a black-body style colormap (black, red, orange, yellow, white)
// suited to the combustion data: cold gas is transparent, the reaction front
// glows.
type FireTF struct {
	// Threshold below which samples are fully transparent (default 0.05).
	Threshold float32
	// OpacityScale multiplies per-sample alpha (default 0.7).
	OpacityScale float32
}

// Map implements TransferFunction.
func (t FireTF) Map(v float32) (r, g, b, a float32) {
	thr := t.Threshold
	if thr == 0 {
		thr = 0.05
	}
	scale := t.OpacityScale
	if scale == 0 {
		scale = 0.7
	}
	v = clamp01(v)
	if v < thr {
		return 0, 0, 0, 0
	}
	// Piecewise ramp through black -> red -> orange -> yellow -> white.
	switch {
	case v < 0.25:
		r = v / 0.25
	case v < 0.5:
		r = 1
		g = (v - 0.25) / 0.25 * 0.5
	case v < 0.75:
		r = 1
		g = 0.5 + (v-0.5)/0.25*0.5
	default:
		r = 1
		g = 1
		b = (v - 0.75) / 0.25
	}
	a = (v - thr) / (1 - thr) * scale
	return r, g, b, clamp01(a)
}

// CoolTF is a blue/white colormap for the cosmology density field: low
// density is deep blue and translucent, high density is bright white.
type CoolTF struct {
	OpacityScale float32
}

// Map implements TransferFunction.
func (t CoolTF) Map(v float32) (r, g, b, a float32) {
	scale := t.OpacityScale
	if scale == 0 {
		scale = 0.5
	}
	v = clamp01(v)
	return v, v * 0.8, 0.4 + 0.6*v, v * scale
}

// Piecewise is a table-driven transfer function: control points are linearly
// interpolated. Points must be supplied with increasing Value; lookups clamp
// to the ends.
type Piecewise struct {
	Points []ControlPoint
}

// ControlPoint is one (value -> color) entry of a Piecewise transfer function.
type ControlPoint struct {
	Value      float32
	R, G, B, A float32
}

// Map implements TransferFunction. It requires the control points to be
// sorted by strictly increasing Value (see Piecewise.Check); under that
// precondition the binary search below selects exactly the segment the
// historical linear scan did, with the same interpolation expressions.
func (t Piecewise) Map(v float32) (r, g, b, a float32) {
	pts := t.Points
	if len(pts) == 0 {
		return 0, 0, 0, 0
	}
	v = clamp01(v)
	if v <= pts[0].Value {
		p := pts[0]
		return p.R, p.G, p.B, p.A
	}
	if v > pts[len(pts)-1].Value {
		p := pts[len(pts)-1]
		return p.R, p.G, p.B, p.A
	}
	// Lower bound: smallest i >= 1 with v <= pts[i].Value. The loop keeps the
	// invariant pts[lo].Value < v <= pts[hi].Value.
	lo, hi := 0, len(pts)-1
	for hi-lo > 1 {
		mid := int(uint(lo+hi) >> 1)
		if v <= pts[mid].Value {
			hi = mid
		} else {
			lo = mid
		}
	}
	p0, p1 := pts[lo], pts[hi]
	span := p1.Value - p0.Value
	var f float32
	if span > 0 {
		f = (v - p0.Value) / span
	}
	return p0.R + f*(p1.R-p0.R),
		p0.G + f*(p1.G-p0.G),
		p0.B + f*(p1.B-p0.B),
		p0.A + f*(p1.A-p0.A)
}

// Check verifies Map's precondition: control-point Values must be sorted in
// strictly increasing order (sorted and deduplicated). It returns the index
// of the first offending point and whether it is a duplicate of — or out of
// order with — its predecessor; ok is true for a valid table. The facade
// surfaces violations through RunSpec.Validate as a typed field error.
func (t Piecewise) Check() (index int, duplicate bool, ok bool) {
	for i := 1; i < len(t.Points); i++ {
		if t.Points[i].Value == t.Points[i-1].Value {
			return i, true, false
		}
		if t.Points[i].Value < t.Points[i-1].Value {
			return i, false, false
		}
	}
	return 0, false, true
}

// DefaultCombustionTF returns the transfer function the examples use for the
// synthetic combustion data.
func DefaultCombustionTF() TransferFunction { return FireTF{} }

// DefaultCosmologyTF returns the transfer function the examples use for the
// synthetic cosmology data.
func DefaultCosmologyTF() TransferFunction { return CoolTF{} }

func clamp01(v float32) float32 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
