package render

// TransferFunction maps a scalar voxel value (nominally in [0, 1]) to an RGBA
// color with straight alpha. It is the classic volume-rendering transfer
// function of Drebin/Carpenter/Hanrahan, which the paper cites as the basis
// of its software renderer.
type TransferFunction interface {
	Map(v float32) (r, g, b, a float32)
}

// Grayscale is a linear gray ramp whose opacity scales with the value.
type Grayscale struct {
	// OpacityScale multiplies the per-sample alpha (default treated as 1).
	OpacityScale float32
}

// Map implements TransferFunction.
func (t Grayscale) Map(v float32) (r, g, b, a float32) {
	scale := t.OpacityScale
	if scale == 0 {
		scale = 1
	}
	v = clamp01(v)
	return v, v, v, v * scale
}

// FireTF is a black-body style colormap (black, red, orange, yellow, white)
// suited to the combustion data: cold gas is transparent, the reaction front
// glows.
type FireTF struct {
	// Threshold below which samples are fully transparent (default 0.05).
	Threshold float32
	// OpacityScale multiplies per-sample alpha (default 0.7).
	OpacityScale float32
}

// Map implements TransferFunction.
func (t FireTF) Map(v float32) (r, g, b, a float32) {
	thr := t.Threshold
	if thr == 0 {
		thr = 0.05
	}
	scale := t.OpacityScale
	if scale == 0 {
		scale = 0.7
	}
	v = clamp01(v)
	if v < thr {
		return 0, 0, 0, 0
	}
	// Piecewise ramp through black -> red -> orange -> yellow -> white.
	switch {
	case v < 0.25:
		r = v / 0.25
	case v < 0.5:
		r = 1
		g = (v - 0.25) / 0.25 * 0.5
	case v < 0.75:
		r = 1
		g = 0.5 + (v-0.5)/0.25*0.5
	default:
		r = 1
		g = 1
		b = (v - 0.75) / 0.25
	}
	a = (v - thr) / (1 - thr) * scale
	return r, g, b, clamp01(a)
}

// CoolTF is a blue/white colormap for the cosmology density field: low
// density is deep blue and translucent, high density is bright white.
type CoolTF struct {
	OpacityScale float32
}

// Map implements TransferFunction.
func (t CoolTF) Map(v float32) (r, g, b, a float32) {
	scale := t.OpacityScale
	if scale == 0 {
		scale = 0.5
	}
	v = clamp01(v)
	return v, v * 0.8, 0.4 + 0.6*v, v * scale
}

// Piecewise is a table-driven transfer function: control points are linearly
// interpolated. Points must be supplied with increasing Value; lookups clamp
// to the ends.
type Piecewise struct {
	Points []ControlPoint
}

// ControlPoint is one (value -> color) entry of a Piecewise transfer function.
type ControlPoint struct {
	Value      float32
	R, G, B, A float32
}

// Map implements TransferFunction.
func (t Piecewise) Map(v float32) (r, g, b, a float32) {
	pts := t.Points
	if len(pts) == 0 {
		return 0, 0, 0, 0
	}
	v = clamp01(v)
	if v <= pts[0].Value {
		p := pts[0]
		return p.R, p.G, p.B, p.A
	}
	for i := 1; i < len(pts); i++ {
		if v <= pts[i].Value {
			lo, hi := pts[i-1], pts[i]
			span := hi.Value - lo.Value
			var f float32
			if span > 0 {
				f = (v - lo.Value) / span
			}
			return lo.R + f*(hi.R-lo.R),
				lo.G + f*(hi.G-lo.G),
				lo.B + f*(hi.B-lo.B),
				lo.A + f*(hi.A-lo.A)
		}
	}
	p := pts[len(pts)-1]
	return p.R, p.G, p.B, p.A
}

// DefaultCombustionTF returns the transfer function the examples use for the
// synthetic combustion data.
func DefaultCombustionTF() TransferFunction { return FireTF{} }

// DefaultCosmologyTF returns the transfer function the examples use for the
// synthetic cosmology data.
func DefaultCosmologyTF() TransferFunction { return CoolTF{} }

func clamp01(v float32) float32 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
