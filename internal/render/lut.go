package render

// Transfer-function lookup tables. The scalar raycaster pays an interface
// call per sample (tf.Map); BuildLUT quantizes any TransferFunction into a
// fixed table once per run, turning that call into an array load. The table
// stores straight-alpha RGBA — not premultiplied — deliberately: the
// optimized march loops reuse the scalar kernel's exact accumulation
// expressions on the table entries, which is what keeps the fast path
// bit-exact against RenderSlab driven by the same LUT (the equivalence
// oracle). A premultiplied table would reassociate the (1-accA)*a*r product
// and drift in the last ulp.

// LUTSize is the number of quantization bins of a transfer-function LUT.
// 4096 bins resolve value steps of ~2.4e-4, far below what an 8-bit output
// texture can express.
const LUTSize = 4096

// LUT is a TransferFunction quantized into LUTSize straight-alpha RGBA
// entries. Entry i holds the color at value i/(LUTSize-1); lookups round to
// the nearest entry. A LUT is itself a TransferFunction, and it is the
// reference the optimized kernels are bit-exact against: for any volume,
// RenderSlab(v, r, lut, axis) and the LUT-driven fast paths produce
// identical pixels.
type LUT struct {
	// Tab is the interleaved RGBA table: entry i at Tab[i*4 .. i*4+3].
	Tab [LUTSize * 4]float32
	// opaque[i] counts entries j < i with alpha > 0, so any index range can
	// be classified as all-transparent in O(1) — the query empty-space
	// skipping asks per macrocell.
	opaque [LUTSize + 1]int32
}

// lutIndex maps a voxel value to its table entry: clamp to [0, 1], scale to
// the table, round to nearest. NaN maps to entry 0 so the conversion is
// defined; LUT.Map and the march loops share this function, which is what
// makes them agree sample-for-sample.
func lutIndex(v float32) int {
	if !(v > 0) { // negatives and NaN
		return 0
	}
	if v > 1 {
		v = 1
	}
	return int(v*(LUTSize-1) + 0.5)
}

// BuildLUT quantizes tf into a lookup table. A Piecewise transfer function
// is built by walking its control-point segments in step with the table —
// O(points + LUTSize) — instead of evaluating a per-entry search; every
// other TransferFunction is sampled per entry. A nil tf builds the default
// combustion colormap.
func BuildLUT(tf TransferFunction) *LUT {
	if tf == nil {
		tf = DefaultCombustionTF()
	}
	l := &LUT{}
	if pw, ok := tf.(Piecewise); ok {
		l.fillPiecewise(pw)
	} else {
		for i := 0; i < LUTSize; i++ {
			v := float32(i) / (LUTSize - 1)
			r, g, b, a := tf.Map(v)
			l.Tab[i*4+0] = r
			l.Tab[i*4+1] = g
			l.Tab[i*4+2] = b
			l.Tab[i*4+3] = a
		}
	}
	for i := 0; i < LUTSize; i++ {
		l.opaque[i+1] = l.opaque[i]
		if l.Tab[i*4+3] > 0 {
			l.opaque[i+1]++
		}
	}
	return l
}

// fillPiecewise builds the table by advancing one segment cursor as the
// entry value sweeps 0 -> 1, computing each entry with exactly the
// interpolation expressions Piecewise.Map uses so the two agree bitwise.
func (l *LUT) fillPiecewise(t Piecewise) {
	pts := t.Points
	if len(pts) == 0 {
		return // all transparent black, matching Map's empty-table answer
	}
	seg := 1 // candidate upper control point
	for i := 0; i < LUTSize; i++ {
		v := float32(i) / (LUTSize - 1)
		var r, g, b, a float32
		switch {
		case v <= pts[0].Value:
			p := pts[0]
			r, g, b, a = p.R, p.G, p.B, p.A
		default:
			for seg < len(pts) && v > pts[seg].Value {
				seg++
			}
			if seg == len(pts) {
				p := pts[len(pts)-1]
				r, g, b, a = p.R, p.G, p.B, p.A
				break
			}
			lo, hi := pts[seg-1], pts[seg]
			span := hi.Value - lo.Value
			var f float32
			if span > 0 {
				f = (v - lo.Value) / span
			}
			r = lo.R + f*(hi.R-lo.R)
			g = lo.G + f*(hi.G-lo.G)
			b = lo.B + f*(hi.B-lo.B)
			a = lo.A + f*(hi.A-lo.A)
		}
		l.Tab[i*4+0] = r
		l.Tab[i*4+1] = g
		l.Tab[i*4+2] = b
		l.Tab[i*4+3] = a
	}
}

// Map implements TransferFunction with a table lookup, making the LUT usable
// anywhere a transfer function is — including as the scalar oracle the
// optimized kernels are verified against.
func (l *LUT) Map(v float32) (r, g, b, a float32) {
	i := lutIndex(v) * 4
	return l.Tab[i], l.Tab[i+1], l.Tab[i+2], l.Tab[i+3]
}

// RangeEmpty reports whether every value in [lo, hi] maps to zero (or
// negative) opacity under the LUT. lutIndex is monotone, so the quantized
// images of the interval all land in [lutIndex(lo), lutIndex(hi)] and a
// prefix-count subtraction answers the query in O(1). Empty-space skipping
// may therefore drop a macrocell with this range without changing a single
// output pixel: the scalar kernel would have discarded each of its samples
// at the alpha test anyway.
func (l *LUT) RangeEmpty(lo, hi float32) bool {
	i0, i1 := lutIndex(lo), lutIndex(hi)
	if i1 < i0 { // inverted range (NaN endpoints): never skip
		return false
	}
	return l.opaque[i1+1] == l.opaque[i0]
}
