package render

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"visapult/internal/datagen"
	"visapult/internal/volume"
)

func TestImageBasics(t *testing.T) {
	im := NewImage(4, 3)
	if im.W != 4 || im.H != 3 || len(im.Pix) != 48 {
		t.Fatalf("image = %+v", im)
	}
	im.Set(2, 1, 0.1, 0.2, 0.3, 0.4)
	r, g, b, a := im.At(2, 1)
	if r != 0.1 || g != 0.2 || b != 0.3 || a != 0.4 {
		t.Error("set/at mismatch")
	}
	if im.Bytes() != 192 {
		t.Errorf("bytes = %d", im.Bytes())
	}
	c := im.Clone()
	c.Set(2, 1, 0, 0, 0, 0)
	if _, _, _, a := im.At(2, 1); a != 0.4 {
		t.Error("clone shares storage")
	}
	// Degenerate sizes clamp to 1x1.
	if tiny := NewImage(0, -3); tiny.W != 1 || tiny.H != 1 {
		t.Error("degenerate image size should clamp")
	}
}

func TestOverPixelOpaqueAndTransparent(t *testing.T) {
	// Opaque source completely covers destination.
	r, g, b, a := OverPixel(1, 0, 0, 1, 0, 1, 0, 1)
	if r != 1 || g != 0 || b != 0 || a != 1 {
		t.Errorf("opaque over = %v %v %v %v", r, g, b, a)
	}
	// Transparent source leaves destination.
	r, g, b, a = OverPixel(1, 1, 1, 0, 0, 0.5, 0, 0.5)
	if r != 0 || g != 0.5 || b != 0 || a != 0.5 {
		t.Errorf("transparent over = %v %v %v %v", r, g, b, a)
	}
	// Both transparent.
	_, _, _, a = OverPixel(1, 1, 1, 0, 1, 1, 1, 0)
	if a != 0 {
		t.Errorf("transparent+transparent alpha = %v", a)
	}
	// 50% white over opaque black = 50% gray, still opaque.
	r, g, b, a = OverPixel(1, 1, 1, 0.5, 0, 0, 0, 1)
	if math.Abs(float64(r)-0.5) > 1e-6 || a != 1 {
		t.Errorf("half-white over black = %v %v %v %v", r, g, b, a)
	}
}

func TestOverPixelAlphaMonotoneProperty(t *testing.T) {
	// Compositing can never reduce coverage: out alpha >= max(src, dst) - eps.
	f := func(sa, da uint8) bool {
		s := float32(sa) / 255
		d := float32(da) / 255
		_, _, _, out := OverPixel(0.5, 0.5, 0.5, s, 0.2, 0.2, 0.2, d)
		maxIn := s
		if d > maxIn {
			maxIn = d
		}
		return out >= maxIn-1e-6 && out <= 1+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestImageOverSizeMismatch(t *testing.T) {
	a := NewImage(2, 2)
	b := NewImage(3, 2)
	if err := a.Over(b); !errors.Is(err, ErrImageSize) {
		t.Errorf("err = %v", err)
	}
	if _, err := a.RMSE(b); !errors.Is(err, ErrImageSize) {
		t.Errorf("rmse err = %v", err)
	}
}

func TestCompositeBackToFront(t *testing.T) {
	far := NewImage(2, 2)
	far.Fill(0, 0, 1, 1) // opaque blue background
	near := NewImage(2, 2)
	near.Set(0, 0, 1, 0, 0, 1) // one opaque red pixel
	out, err := CompositeBackToFront([]*Image{far, near})
	if err != nil {
		t.Fatal(err)
	}
	if r, _, b, _ := out.At(0, 0); r != 1 || b != 0 {
		t.Error("near layer should win where opaque")
	}
	if _, _, b, _ := out.At(1, 1); b != 1 {
		t.Error("background should show through transparent pixels")
	}
	if _, err := CompositeBackToFront(nil); err == nil {
		t.Error("empty composite should fail")
	}
}

func TestRMSEAndMeanAlpha(t *testing.T) {
	a := NewImage(2, 2)
	b := NewImage(2, 2)
	if rmse, _ := a.RMSE(b); rmse != 0 {
		t.Error("identical images should have zero RMSE")
	}
	b.Fill(1, 1, 1, 1)
	rmse, _ := a.RMSE(b)
	if rmse != 1 {
		t.Errorf("all-channels-different RMSE = %v", rmse)
	}
	if b.MeanAlpha() != 1 || a.MeanAlpha() != 0 {
		t.Error("mean alpha")
	}
}

func TestToRGBA8RoundTrip(t *testing.T) {
	im := NewImage(3, 2)
	im.Set(0, 0, 0.25, 0.5, 0.75, 1)
	im.Set(2, 1, 1.5, -0.5, 0, 0.5) // out-of-range values clamp
	data := im.ToRGBA8()
	if len(data) != 3*2*4 {
		t.Fatalf("len = %d", len(data))
	}
	back, err := FromRGBA8(3, 2, data)
	if err != nil {
		t.Fatal(err)
	}
	if r, _, _, _ := back.At(2, 1); r != 1 {
		t.Errorf("clamped value = %v", r)
	}
	if r, g, _, _ := back.At(0, 0); math.Abs(float64(r)-0.25) > 0.01 || math.Abs(float64(g)-0.5) > 0.01 {
		t.Error("8-bit round trip lost too much precision")
	}
	if _, err := FromRGBA8(3, 2, data[:5]); err == nil {
		t.Error("short buffer should fail")
	}
}

func TestWritePPM(t *testing.T) {
	im := NewImage(2, 2)
	im.Fill(1, 0, 0, 1)
	var buf bytes.Buffer
	if err := im.WritePPM(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "P6\n2 2\n255\n") {
		t.Errorf("header = %q", buf.String()[:12])
	}
	if buf.Len() != 11+2*2*3 {
		t.Errorf("ppm size = %d", buf.Len())
	}
}

func TestShiftX(t *testing.T) {
	im := NewImage(4, 1)
	im.Set(1, 0, 1, 1, 1, 1)
	right := im.ShiftX(2)
	if _, _, _, a := right.At(3, 0); a != 1 {
		t.Error("shift right lost pixel")
	}
	if _, _, _, a := right.At(1, 0); a != 0 {
		t.Error("original position should be cleared")
	}
	left := im.ShiftX(-1)
	if _, _, _, a := left.At(0, 0); a != 1 {
		t.Error("shift left lost pixel")
	}
	off := im.ShiftX(10)
	if off.MeanAlpha() != 0 {
		t.Error("shifting beyond width should empty the image")
	}
}

func TestTransferFunctions(t *testing.T) {
	for _, tf := range []TransferFunction{Grayscale{}, FireTF{}, CoolTF{}, DefaultCombustionTF(), DefaultCosmologyTF()} {
		for _, v := range []float32{-1, 0, 0.01, 0.3, 0.5, 0.9, 1, 2} {
			r, g, b, a := tf.Map(v)
			for _, c := range []float32{r, g, b, a} {
				if c < 0 || c > 1 {
					t.Errorf("%T.Map(%v) out of range: %v %v %v %v", tf, v, r, g, b, a)
				}
			}
		}
		// Higher values should be at least as opaque as low ones.
		_, _, _, aLo := tf.Map(0.2)
		_, _, _, aHi := tf.Map(0.9)
		if aHi < aLo {
			t.Errorf("%T: opacity not monotone (%v < %v)", tf, aHi, aLo)
		}
	}
}

func TestFireTFThreshold(t *testing.T) {
	tf := FireTF{Threshold: 0.3}
	if _, _, _, a := tf.Map(0.2); a != 0 {
		t.Error("below-threshold samples should be transparent")
	}
	if _, _, _, a := tf.Map(0.9); a <= 0 {
		t.Error("above-threshold samples should be visible")
	}
}

func TestPiecewiseTF(t *testing.T) {
	tf := Piecewise{Points: []ControlPoint{
		{Value: 0, A: 0},
		{Value: 0.5, R: 1, A: 0.5},
		{Value: 1, R: 1, G: 1, B: 1, A: 1},
	}}
	if _, _, _, a := tf.Map(0); a != 0 {
		t.Error("at first point")
	}
	r, _, _, a := tf.Map(0.25)
	if math.Abs(float64(r)-0.5) > 1e-6 || math.Abs(float64(a)-0.25) > 1e-6 {
		t.Errorf("interpolated = %v %v", r, a)
	}
	if r, g, b, a := tf.Map(2); r != 1 || g != 1 || b != 1 || a != 1 {
		t.Error("clamp to last point")
	}
	empty := Piecewise{}
	if _, _, _, a := empty.Map(0.5); a != 0 {
		t.Error("empty piecewise should be transparent")
	}
}

func testVolume() *volume.Volume {
	gen := datagen.NewCombustion(datagen.CombustionConfig{NX: 24, NY: 20, NZ: 16, Timesteps: 4, Seed: 11})
	return gen.Generate(2)
}

func TestRenderSlabDimensions(t *testing.T) {
	v := testVolume()
	full := volume.Region{X1: v.NX, Y1: v.NY, Z1: v.NZ}
	cases := []struct {
		axis volume.Axis
		w, h int
	}{
		{volume.AxisZ, 24, 20},
		{volume.AxisY, 24, 16},
		{volume.AxisX, 20, 16},
	}
	for _, c := range cases {
		img, st := RenderSlab(v, full, FireTF{}, c.axis)
		if img.W != c.w || img.H != c.h {
			t.Errorf("axis %v: image %dx%d, want %dx%d", c.axis, img.W, img.H, c.w, c.h)
		}
		if st.Rays != c.w*c.h {
			t.Errorf("axis %v: rays = %d", c.axis, st.Rays)
		}
		if st.Samples == 0 || st.NonEmptySamples == 0 {
			t.Errorf("axis %v: no samples taken", c.axis)
		}
		if img.MeanAlpha() <= 0 {
			t.Errorf("axis %v: rendering is empty", c.axis)
		}
	}
}

func TestRenderSlabEmptyVolumeIsTransparent(t *testing.T) {
	v := volume.MustNew(8, 8, 8) // all zeros
	full := volume.Region{X1: 8, Y1: 8, Z1: 8}
	img, st := RenderSlab(v, full, FireTF{}, volume.AxisZ)
	if img.MeanAlpha() != 0 {
		t.Error("empty volume should render transparent")
	}
	if st.NonEmptySamples != 0 {
		t.Error("no non-empty samples expected")
	}
}

func TestRenderSlabEarlyTermination(t *testing.T) {
	v := volume.MustNew(8, 8, 32)
	v.Fill(1) // fully opaque everywhere
	full := volume.Region{X1: 8, Y1: 8, Z1: 32}
	_, st := RenderSlab(v, full, Grayscale{}, volume.AxisZ)
	if st.EarlyTerminated != st.Rays {
		t.Errorf("early terminated %d of %d rays", st.EarlyTerminated, st.Rays)
	}
	// Early termination means far fewer samples than rays x depth.
	if st.Samples >= st.Rays*32 {
		t.Errorf("samples = %d, early termination had no effect", st.Samples)
	}
}

func TestSlabDecompositionCompositesToFullRender(t *testing.T) {
	// The defining property of the object-order algorithm: rendering slabs
	// independently and compositing them in depth order reproduces the
	// single-pass rendering.
	v := testVolume()
	tf := FireTF{}
	for _, slabCount := range []int{1, 2, 4, 8} {
		regions := volume.SlabsOf(v, volume.AxisZ, slabCount)
		images, _ := RenderSlabs(v, regions, tf, volume.AxisZ)
		composite, err := CompositeSlabs(images)
		if err != nil {
			t.Fatal(err)
		}
		reference, _ := RenderFull(v, tf, volume.AxisZ)
		rmse, err := composite.RMSE(reference)
		if err != nil {
			t.Fatal(err)
		}
		if rmse > 0.02 {
			t.Errorf("%d slabs: composite differs from reference, RMSE = %v", slabCount, rmse)
		}
	}
}

func TestRenderSlabsAggregateStats(t *testing.T) {
	v := testVolume()
	regions := volume.SlabsOf(v, volume.AxisZ, 4)
	_, st := RenderSlabs(v, regions, FireTF{}, volume.AxisZ)
	if st.Rays != 4*24*20 {
		t.Errorf("aggregate rays = %d", st.Rays)
	}
	if st.OutputPixelBytes != 4*int64(24*20*4*4) {
		t.Errorf("output bytes = %d", st.OutputPixelBytes)
	}
}

func TestViewerPayloadMuchSmallerThanVolume(t *testing.T) {
	// The architectural claim behind Visapult: the viewer-bound data is
	// O(n^2) while the source data is O(n^3).
	v := testVolume()
	regions := volume.SlabsOf(v, volume.AxisZ, 4)
	images, _ := RenderSlabs(v, regions, FireTF{}, volume.AxisZ)
	var viewerBytes int64
	for _, img := range images {
		viewerBytes += int64(len(img.ToRGBA8()))
	}
	if viewerBytes*4 > v.SizeBytes() {
		t.Errorf("viewer payload %d should be much smaller than volume %d", viewerBytes, v.SizeBytes())
	}
}

func TestRenderRotatedYZeroAngleMatchesAxisAligned(t *testing.T) {
	v := testVolume()
	tf := FireTF{}
	rotated, st := RenderRotatedY(v, tf, 0)
	reference, _ := RenderFull(v, tf, volume.AxisZ)
	if rotated.W != reference.W || rotated.H != reference.H {
		t.Fatalf("rotated dims %dx%d vs reference %dx%d", rotated.W, rotated.H, reference.W, reference.H)
	}
	rmse, err := rotated.RMSE(reference)
	if err != nil {
		t.Fatal(err)
	}
	// Interpolation differences allow a small tolerance.
	if rmse > 0.08 {
		t.Errorf("zero-angle rotated render differs from axis-aligned: RMSE = %v", rmse)
	}
	if st.Rays != v.NX*v.NY {
		t.Errorf("rays = %d", st.Rays)
	}
}

func TestRenderRotatedYChangesWithAngle(t *testing.T) {
	v := testVolume()
	tf := FireTF{}
	a0, _ := RenderRotatedY(v, tf, 0)
	a30, _ := RenderRotatedY(v, tf, 30*math.Pi/180)
	rmse, err := a0.RMSE(a30)
	if err != nil {
		t.Fatal(err)
	}
	if rmse == 0 {
		t.Error("rotating the view should change the image")
	}
}
