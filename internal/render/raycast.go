package render

import (
	"math"

	"visapult/internal/volume"
)

// The renderer uses an orthographic camera at minus-infinity on the view
// axis, looking in the positive axis direction: voxels with a smaller
// coordinate along the view axis are nearer the eye. Per-slab images are
// accumulated front-to-back with Porter-Duff "under"; multi-slab recombination
// therefore composites slabs in decreasing-coordinate order (farthest first)
// with "over".

// imagePlaneDims returns the image width and height for a region viewed along
// axis: the two remaining axes map to (x, y) of the image.
func imagePlaneDims(r volume.Region, axis volume.Axis) (w, h int) {
	nx, ny, nz := r.Dims()
	switch axis {
	case volume.AxisX:
		return ny, nz
	case volume.AxisY:
		return nx, nz
	default:
		return nx, ny
	}
}

// RenderStats reports the work a rendering call performed; experiment E12
// uses it to compare decomposition strategies.
type RenderStats struct {
	Rays             int
	Samples          int
	NonEmptySamples  int
	EarlyTerminated  int
	OutputPixelBytes int64
}

// RenderSlab volume-renders the given region of v viewed along axis, using
// one ray per image pixel and one sample per voxel step. It returns the
// rendered image and the work statistics.
//
// This is the per-PE workhorse of the Visapult back end: each processing
// element calls it on its slab of the domain decomposition, producing the
// semi-transparent texture shipped to the viewer.
func RenderSlab(v *volume.Volume, r volume.Region, tf TransferFunction, axis volume.Axis) (*Image, RenderStats) {
	w, h := imagePlaneDims(r, axis)
	img := NewImage(w, h)
	var st RenderStats
	st.OutputPixelBytes = img.Bytes()

	// Iteration orders: for each pixel (u, w), march along the view axis.
	var du, dv, dd int // extents along image-u, image-v and depth
	switch axis {
	case volume.AxisX:
		du, dv, dd = r.Y1-r.Y0, r.Z1-r.Z0, r.X1-r.X0
	case volume.AxisY:
		du, dv, dd = r.X1-r.X0, r.Z1-r.Z0, r.Y1-r.Y0
	default:
		du, dv, dd = r.X1-r.X0, r.Y1-r.Y0, r.Z1-r.Z0
	}
	// voxelAt maps (u, v, depth) in region-local coordinates to the voxel.
	voxelAt := func(u, vv, d int) float32 {
		switch axis {
		case volume.AxisX:
			return v.At(r.X0+d, r.Y0+u, r.Z0+vv)
		case volume.AxisY:
			return v.At(r.X0+u, r.Y0+d, r.Z0+vv)
		default:
			return v.At(r.X0+u, r.Y0+vv, r.Z0+d)
		}
	}

	const opacityCutoff = 0.98
	for vv := 0; vv < dv; vv++ {
		for u := 0; u < du; u++ {
			st.Rays++
			var accR, accG, accB, accA float32
			for d := 0; d < dd; d++ {
				st.Samples++
				val := voxelAt(u, vv, d)
				sr, sg, sb, sa := tf.Map(val)
				if sa <= 0 {
					continue
				}
				st.NonEmptySamples++
				// Front-to-back "under" accumulation with straight alpha.
				accR += (1 - accA) * sa * sr
				accG += (1 - accA) * sa * sg
				accB += (1 - accA) * sa * sb
				accA += (1 - accA) * sa
				if accA >= opacityCutoff {
					st.EarlyTerminated++
					break
				}
			}
			if accA > 0 {
				img.Set(u, vv, accR/accA, accG/accA, accB/accA, accA)
			}
		}
	}
	return img, st
}

// RenderSlabs renders each region of a slab decomposition and returns the
// per-slab images in the same order as the regions, along with aggregate
// statistics. All regions must share the same perpendicular extents (which
// slab decompositions guarantee), so the images are composable.
func RenderSlabs(v *volume.Volume, regions []volume.Region, tf TransferFunction, axis volume.Axis) ([]*Image, RenderStats) {
	images := make([]*Image, len(regions))
	var total RenderStats
	for i, r := range regions {
		img, st := RenderSlab(v, r, tf, axis)
		images[i] = img
		total.Rays += st.Rays
		total.Samples += st.Samples
		total.NonEmptySamples += st.NonEmptySamples
		total.EarlyTerminated += st.EarlyTerminated
		total.OutputPixelBytes += st.OutputPixelBytes
	}
	return images, total
}

// CompositeSlabs recombines per-slab images produced by RenderSlabs into the
// full axis-aligned view. Slab regions are ordered by increasing coordinate
// (nearest first, given the camera convention above), so the composite runs
// over them in reverse: farthest slab first.
func CompositeSlabs(images []*Image) (*Image, error) {
	reversed := make([]*Image, len(images))
	for i, img := range images {
		reversed[len(images)-1-i] = img
	}
	return CompositeBackToFront(reversed)
}

// RenderFull renders the entire volume along axis in a single pass (no
// decomposition). It is the reference against which decomposed + recombined
// renderings are validated.
func RenderFull(v *volume.Volume, tf TransferFunction, axis volume.Axis) (*Image, RenderStats) {
	full := volume.Region{X1: v.NX, Y1: v.NY, Z1: v.NZ}
	return RenderSlab(v, full, tf, axis)
}

// RenderRotatedY ray-casts the whole volume with the viewing direction
// rotated by angle (radians) about the vertical (Y) axis away from the +Z
// axis, using an orthographic camera. The image is NX x NY pixels, matching
// the axis-aligned Z view, so it can be compared directly against IBR
// approximations of the same view. It is the "ground truth" renderer for
// experiment E8 (IBRAVR off-axis artifacts, paper Figure 6).
func RenderRotatedY(v *volume.Volume, tf TransferFunction, angle float64) (*Image, RenderStats) {
	w, h := v.NX, v.NY
	img := NewImage(w, h)
	var st RenderStats
	st.OutputPixelBytes = img.Bytes()

	sin, cos := math.Sin(angle), math.Cos(angle)
	// Camera basis: view direction d, image-plane right vector u (both in the
	// XZ plane), up vector along +Y.
	dirX, dirZ := sin, cos
	rightX, rightZ := cos, -sin
	cx := float64(v.NX) / 2
	cy := float64(v.NY) / 2
	cz := float64(v.NZ) / 2
	// March far enough to cross the volume at any rotation.
	depth := int(math.Ceil(math.Hypot(float64(v.NX), float64(v.NZ))))
	const opacityCutoff = 0.98

	for py := 0; py < h; py++ {
		for px := 0; px < w; px++ {
			st.Rays++
			// Ray origin on the image plane through the volume center.
			ox := cx + (float64(px)-float64(w)/2)*rightX - float64(depth)/2*dirX
			oy := cy + (float64(py) - float64(h)/2)
			oz := cz + (float64(px)-float64(w)/2)*rightZ - float64(depth)/2*dirZ
			var accR, accG, accB, accA float32
			for step := 0; step < depth; step++ {
				x := ox + float64(step)*dirX
				y := oy
				z := oz + float64(step)*dirZ
				if x < 0 || y < 0 || z < 0 || x > float64(v.NX-1) || y > float64(v.NY-1) || z > float64(v.NZ-1) {
					continue
				}
				st.Samples++
				val := v.Sample(x, y, z)
				sr, sg, sb, sa := tf.Map(val)
				if sa <= 0 {
					continue
				}
				st.NonEmptySamples++
				accR += (1 - accA) * sa * sr
				accG += (1 - accA) * sa * sg
				accB += (1 - accA) * sa * sb
				accA += (1 - accA) * sa
				if accA >= opacityCutoff {
					st.EarlyTerminated++
					break
				}
			}
			if accA > 0 {
				img.Set(px, py, accR/accA, accG/accA, accB/accA, accA)
			}
		}
	}
	return img, st
}
