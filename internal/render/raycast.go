package render

import (
	"math"
	"time"

	"visapult/internal/volume"
)

// The renderer uses an orthographic camera at minus-infinity on the view
// axis, looking in the positive axis direction: voxels with a smaller
// coordinate along the view axis are nearer the eye. Per-slab images are
// accumulated front-to-back with Porter-Duff "under"; multi-slab recombination
// therefore composites slabs in decreasing-coordinate order (farthest first)
// with "over".

// imagePlaneDims returns the image width and height for a region viewed along
// axis: the two remaining axes map to (x, y) of the image.
func imagePlaneDims(r volume.Region, axis volume.Axis) (w, h int) {
	nx, ny, nz := r.Dims()
	switch axis {
	case volume.AxisX:
		return ny, nz
	case volume.AxisY:
		return nx, nz
	default:
		return nx, ny
	}
}

// PlaneDims returns the image width and height a render of region r viewed
// along axis produces — the dimensions to request from GetImage when
// rendering through Pool.RenderSlab or RenderSlabLUTInto.
func PlaneDims(r volume.Region, axis volume.Axis) (w, h int) {
	return imagePlaneDims(r, axis)
}

// RenderStats reports the work a rendering call performed; experiment E12
// uses it to compare decomposition strategies.
//
// The scalar kernels count every marched voxel in Samples; the LUT kernels
// count only the samples they actually evaluated, with the blocks removed by
// empty-space skipping reported in TilesSkipped instead — so Samples +
// (skipped voxels) in the optimized path corresponds to the scalar Samples.
type RenderStats struct {
	Rays             int
	Samples          int
	NonEmptySamples  int
	EarlyTerminated  int
	OutputPixelBytes int64
	// TilesSkipped counts the per-ray macrocell segments dropped by
	// empty-space skipping (always zero on the scalar paths).
	TilesSkipped int
	// WallTime is the elapsed wall-clock duration of the call, set by the
	// LUT/pool entry points (zero on the scalar paths).
	WallTime time.Duration
}

// add accumulates other into st (WallTime sums; callers that want the
// per-slab maximum keep their own).
func (st *RenderStats) add(other RenderStats) {
	st.Rays += other.Rays
	st.Samples += other.Samples
	st.NonEmptySamples += other.NonEmptySamples
	st.EarlyTerminated += other.EarlyTerminated
	st.OutputPixelBytes += other.OutputPixelBytes
	st.TilesSkipped += other.TilesSkipped
	st.WallTime += other.WallTime
}

// RenderSlab volume-renders the given region of v viewed along axis, using
// one ray per image pixel and one sample per voxel step. It returns the
// rendered image and the work statistics.
//
// This is the per-PE workhorse of the Visapult back end: each processing
// element calls it on its slab of the domain decomposition, producing the
// semi-transparent texture shipped to the viewer.
func RenderSlab(v *volume.Volume, r volume.Region, tf TransferFunction, axis volume.Axis) (*Image, RenderStats) {
	w, h := imagePlaneDims(r, axis)
	img := NewImage(w, h)
	var st RenderStats
	st.OutputPixelBytes = img.Bytes()

	// Iteration orders: for each pixel (u, w), march along the view axis.
	var du, dv, dd int // extents along image-u, image-v and depth
	switch axis {
	case volume.AxisX:
		du, dv, dd = r.Y1-r.Y0, r.Z1-r.Z0, r.X1-r.X0
	case volume.AxisY:
		du, dv, dd = r.X1-r.X0, r.Z1-r.Z0, r.Y1-r.Y0
	default:
		du, dv, dd = r.X1-r.X0, r.Y1-r.Y0, r.Z1-r.Z0
	}
	// voxelAt maps (u, v, depth) in region-local coordinates to the voxel.
	voxelAt := func(u, vv, d int) float32 {
		switch axis {
		case volume.AxisX:
			return v.At(r.X0+d, r.Y0+u, r.Z0+vv)
		case volume.AxisY:
			return v.At(r.X0+u, r.Y0+d, r.Z0+vv)
		default:
			return v.At(r.X0+u, r.Y0+vv, r.Z0+d)
		}
	}

	const opacityCutoff = 0.98
	for vv := 0; vv < dv; vv++ {
		for u := 0; u < du; u++ {
			st.Rays++
			var accR, accG, accB, accA float32
			for d := 0; d < dd; d++ {
				st.Samples++
				val := voxelAt(u, vv, d)
				sr, sg, sb, sa := tf.Map(val)
				if sa <= 0 {
					continue
				}
				st.NonEmptySamples++
				// Front-to-back "under" accumulation with straight alpha.
				accR += (1 - accA) * sa * sr
				accG += (1 - accA) * sa * sg
				accB += (1 - accA) * sa * sb
				accA += (1 - accA) * sa
				if accA >= opacityCutoff {
					st.EarlyTerminated++
					break
				}
			}
			if accA > 0 {
				img.Set(u, vv, accR/accA, accG/accA, accB/accA, accA)
			}
		}
	}
	return img, st
}

// slabGeom binds one (volume, region, axis) render to flat-array iteration:
// precomputed strides into Volume.Data plus the absolute origin coordinates
// needed for macrocell lookups. Binding the axis switch here — once per slab,
// not once per sample — is what makes the LUT march loops monomorphic.
type slabGeom struct {
	du, dv, dd int // extents along image-u, image-v and depth
	base       int // linear index of the region origin voxel
	su, sv, sd int // Data strides per unit step of u, v, depth
	// Absolute volume coordinates of the region origin along the image-u,
	// image-v and depth axes, for locating macrocell blocks.
	uOrg, vOrg, dOrg int
	// Macrocell-grid strides per block step along u, v and depth.
	ubs, vbs, dbs int
}

// slabGeometry maps a region viewed along axis onto strided iteration over
// v.Data. The volume is X-fastest row-major, so the depth axis of an AxisX
// view marches with stride 1 (memory-contiguous); AxisY marches with stride
// NX and AxisZ with stride NX*NY. Block strides are filled against cells'
// grid when non-nil.
func slabGeometry(v *volume.Volume, r volume.Region, axis volume.Axis, cells *Macrocells) slabGeom {
	sx, sy, sz := 1, v.NX, v.NX*v.NY
	g := slabGeom{base: r.X0 + r.Y0*sy + r.Z0*sz}
	bx, bxy := 0, 0
	if cells != nil {
		bx, bxy = cells.BX, cells.BX*cells.BY
	}
	switch axis {
	case volume.AxisX: // image-u = y, image-v = z, depth = x (stride 1)
		g.du, g.dv, g.dd = r.Y1-r.Y0, r.Z1-r.Z0, r.X1-r.X0
		g.su, g.sv, g.sd = sy, sz, sx
		g.uOrg, g.vOrg, g.dOrg = r.Y0, r.Z0, r.X0
		g.ubs, g.vbs, g.dbs = bx, bxy, 1
	case volume.AxisY: // image-u = x, image-v = z, depth = y
		g.du, g.dv, g.dd = r.X1-r.X0, r.Z1-r.Z0, r.Y1-r.Y0
		g.su, g.sv, g.sd = sx, sz, sy
		g.uOrg, g.vOrg, g.dOrg = r.X0, r.Z0, r.Y0
		g.ubs, g.vbs, g.dbs = 1, bxy, bx
	default: // AxisZ: image-u = x, image-v = y, depth = z
		g.du, g.dv, g.dd = r.X1-r.X0, r.Y1-r.Y0, r.Z1-r.Z0
		g.su, g.sv, g.sd = sx, sy, sz
		g.uOrg, g.vOrg, g.dOrg = r.X0, r.Y0, r.Z0
		g.ubs, g.vbs, g.dbs = 1, bx, bxy
	}
	return g
}

// marchRay1 is the stride-1 march: the depth axis is memory-contiguous
// (AxisX views), so the ray reads data[idx0 : idx0+dd] sequentially. It
// accumulates with the exact expressions of the scalar kernel — the alpha
// test, the (1-accA)*sa*c products and the 0.98 cutoff — on LUT entries, so
// its output is bit-identical to RenderSlab driven by the same LUT.
func marchRay1(data []float32, lut *LUT, idx0, dd int, st *RenderStats) (accR, accG, accB, accA float32) {
	const opacityCutoff = 0.98
	ray := data[idx0 : idx0+dd]
	for _, val := range ray {
		st.Samples++
		ti := lutIndex(val) * 4
		sa := lut.Tab[ti+3]
		if sa <= 0 {
			continue
		}
		st.NonEmptySamples++
		accR += (1 - accA) * sa * lut.Tab[ti]
		accG += (1 - accA) * sa * lut.Tab[ti+1]
		accB += (1 - accA) * sa * lut.Tab[ti+2]
		accA += (1 - accA) * sa
		if accA >= opacityCutoff {
			st.EarlyTerminated++
			break
		}
	}
	return
}

// marchRayN is the strided march for AxisY/AxisZ views (depth stride NX or
// NX*NY). Same accumulation contract as marchRay1.
func marchRayN(data []float32, lut *LUT, idx0, sd, dd int, st *RenderStats) (accR, accG, accB, accA float32) {
	const opacityCutoff = 0.98
	idx := idx0
	for d := 0; d < dd; d++ {
		st.Samples++
		val := data[idx]
		idx += sd
		ti := lutIndex(val) * 4
		sa := lut.Tab[ti+3]
		if sa <= 0 {
			continue
		}
		st.NonEmptySamples++
		accR += (1 - accA) * sa * lut.Tab[ti]
		accG += (1 - accA) * sa * lut.Tab[ti+1]
		accB += (1 - accA) * sa * lut.Tab[ti+2]
		accA += (1 - accA) * sa
		if accA >= opacityCutoff {
			st.EarlyTerminated++
			break
		}
	}
	return
}

// renderRowsLUT renders image rows [v0, v1) of the slab bound by g into img,
// merging the tile's work counters into st. With cells non-nil each ray walks
// its macrocell segments and skips those whose value range is transparent
// under the LUT: every sample in a skipped segment would have failed the
// sa <= 0 test anyway, so skipping changes no pixel — only the Samples /
// TilesSkipped accounting. Rays resolve their block row once per ray; only
// the depth block index advances inside the march.
func renderRowsLUT(v *volume.Volume, g slabGeom, lut *LUT, cells *Macrocells, img *Image, v0, v1 int, st *RenderStats) {
	data := v.Data
	const opacityCutoff = 0.98
	for vv := v0; vv < v1; vv++ {
		rowIdx := g.base + vv*g.sv
		vBlock := ((g.vOrg + vv) / MacroBlock) * g.vbs
		for u := 0; u < g.du; u++ {
			st.Rays++
			idx0 := rowIdx + u*g.su
			var accR, accG, accB, accA float32
			if cells == nil {
				if g.sd == 1 {
					accR, accG, accB, accA = marchRay1(data, lut, idx0, g.dd, st)
				} else {
					accR, accG, accB, accA = marchRayN(data, lut, idx0, g.sd, g.dd, st)
				}
			} else {
				blockRow := vBlock + ((g.uOrg+u)/MacroBlock)*g.ubs
				d := 0
			ray:
				for d < g.dd {
					// Current absolute depth coordinate and the end of its block.
					dc := g.dOrg + d
					dNext := d + MacroBlock - dc%MacroBlock
					if dNext > g.dd {
						dNext = g.dd
					}
					b := blockRow + (dc/MacroBlock)*g.dbs
					if lo, hi := cells.Min[b], cells.Max[b]; lo <= hi && lut.RangeEmpty(lo, hi) {
						st.TilesSkipped++
						d = dNext
						continue
					}
					if g.sd == 1 {
						seg := data[idx0+d : idx0+dNext]
						for _, val := range seg {
							st.Samples++
							ti := lutIndex(val) * 4
							sa := lut.Tab[ti+3]
							if sa <= 0 {
								continue
							}
							st.NonEmptySamples++
							accR += (1 - accA) * sa * lut.Tab[ti]
							accG += (1 - accA) * sa * lut.Tab[ti+1]
							accB += (1 - accA) * sa * lut.Tab[ti+2]
							accA += (1 - accA) * sa
							if accA >= opacityCutoff {
								st.EarlyTerminated++
								break ray
							}
						}
					} else {
						idx := idx0 + d*g.sd
						for ; d < dNext; d++ {
							st.Samples++
							val := data[idx]
							idx += g.sd
							ti := lutIndex(val) * 4
							sa := lut.Tab[ti+3]
							if sa <= 0 {
								continue
							}
							st.NonEmptySamples++
							accR += (1 - accA) * sa * lut.Tab[ti]
							accG += (1 - accA) * sa * lut.Tab[ti+1]
							accB += (1 - accA) * sa * lut.Tab[ti+2]
							accA += (1 - accA) * sa
							if accA >= opacityCutoff {
								st.EarlyTerminated++
								break ray
							}
						}
					}
					d = dNext
				}
			}
			if accA > 0 {
				img.Set(u, vv, accR/accA, accG/accA, accB/accA, accA)
			}
		}
	}
}

// RenderSlabLUT is the single-goroutine optimized raycaster: the LUT replaces
// the per-sample transfer-function call, the march loops index Volume.Data by
// precomputed stride, and a non-nil cells grid enables empty-space skipping.
// Its pixels are bit-identical to RenderSlab(v, r, lut, axis); Samples and
// TilesSkipped account for skipped work as described on RenderStats.
func RenderSlabLUT(v *volume.Volume, r volume.Region, lut *LUT, cells *Macrocells, axis volume.Axis) (*Image, RenderStats) {
	w, h := imagePlaneDims(r, axis)
	img := NewImage(w, h)
	st := RenderSlabLUTInto(v, r, lut, cells, axis, img)
	return img, st
}

// RenderSlabLUTInto renders into a caller-provided image (typically from
// GetImage) whose dimensions must match imagePlaneDims(r, axis) and whose
// pixels must be zero. It is the allocation-free core of the optimized path.
func RenderSlabLUTInto(v *volume.Volume, r volume.Region, lut *LUT, cells *Macrocells, axis volume.Axis, img *Image) RenderStats {
	start := time.Now()
	g := slabGeometry(v, r, axis, cells)
	var st RenderStats
	renderRowsLUT(v, g, lut, cells, img, 0, g.dv, &st)
	st.OutputPixelBytes = img.Bytes()
	st.WallTime = time.Since(start)
	return st
}

// RenderSlabs renders each region of a slab decomposition and returns the
// per-slab images in the same order as the regions, along with aggregate
// statistics. All regions must share the same perpendicular extents (which
// slab decompositions guarantee), so the images are composable.
func RenderSlabs(v *volume.Volume, regions []volume.Region, tf TransferFunction, axis volume.Axis) ([]*Image, RenderStats) {
	images := make([]*Image, len(regions))
	var total RenderStats
	for i, r := range regions {
		img, st := RenderSlab(v, r, tf, axis)
		images[i] = img
		total.Rays += st.Rays
		total.Samples += st.Samples
		total.NonEmptySamples += st.NonEmptySamples
		total.EarlyTerminated += st.EarlyTerminated
		total.OutputPixelBytes += st.OutputPixelBytes
	}
	return images, total
}

// CompositeSlabs recombines per-slab images produced by RenderSlabs into the
// full axis-aligned view. Slab regions are ordered by increasing coordinate
// (nearest first, given the camera convention above), so the composite runs
// over them in reverse: farthest slab first.
func CompositeSlabs(images []*Image) (*Image, error) {
	reversed := make([]*Image, len(images))
	for i, img := range images {
		reversed[len(images)-1-i] = img
	}
	return CompositeBackToFront(reversed)
}

// RenderFull renders the entire volume along axis in a single pass (no
// decomposition). It is the reference against which decomposed + recombined
// renderings are validated.
func RenderFull(v *volume.Volume, tf TransferFunction, axis volume.Axis) (*Image, RenderStats) {
	full := volume.Region{X1: v.NX, Y1: v.NY, Z1: v.NZ}
	return RenderSlab(v, full, tf, axis)
}

// RenderRotatedY ray-casts the whole volume with the viewing direction
// rotated by angle (radians) about the vertical (Y) axis away from the +Z
// axis, using an orthographic camera. The image is NX x NY pixels, matching
// the axis-aligned Z view, so it can be compared directly against IBR
// approximations of the same view. It is the "ground truth" renderer for
// experiment E8 (IBRAVR off-axis artifacts, paper Figure 6).
func RenderRotatedY(v *volume.Volume, tf TransferFunction, angle float64) (*Image, RenderStats) {
	w, h := v.NX, v.NY
	img := NewImage(w, h)
	var st RenderStats
	st.OutputPixelBytes = img.Bytes()

	sin, cos := math.Sin(angle), math.Cos(angle)
	// Camera basis: view direction d, image-plane right vector u (both in the
	// XZ plane), up vector along +Y.
	dirX, dirZ := sin, cos
	rightX, rightZ := cos, -sin
	cx := float64(v.NX) / 2
	cy := float64(v.NY) / 2
	cz := float64(v.NZ) / 2
	// March far enough to cross the volume at any rotation.
	depth := int(math.Ceil(math.Hypot(float64(v.NX), float64(v.NZ))))
	const opacityCutoff = 0.98

	for py := 0; py < h; py++ {
		for px := 0; px < w; px++ {
			st.Rays++
			// Ray origin on the image plane through the volume center.
			ox := cx + (float64(px)-float64(w)/2)*rightX - float64(depth)/2*dirX
			oy := cy + (float64(py) - float64(h)/2)
			oz := cz + (float64(px)-float64(w)/2)*rightZ - float64(depth)/2*dirZ
			var accR, accG, accB, accA float32
			for step := 0; step < depth; step++ {
				x := ox + float64(step)*dirX
				y := oy
				z := oz + float64(step)*dirZ
				if x < 0 || y < 0 || z < 0 || x > float64(v.NX-1) || y > float64(v.NY-1) || z > float64(v.NZ-1) {
					continue
				}
				st.Samples++
				val := v.Sample(x, y, z)
				sr, sg, sb, sa := tf.Map(val)
				if sa <= 0 {
					continue
				}
				st.NonEmptySamples++
				accR += (1 - accA) * sa * sr
				accG += (1 - accA) * sa * sg
				accB += (1 - accA) * sa * sb
				accA += (1 - accA) * sa
				if accA >= opacityCutoff {
					st.EarlyTerminated++
					break
				}
			}
			if accA > 0 {
				img.Set(px, py, accR/accA, accG/accA, accB/accA, accA)
			}
		}
	}
	return img, st
}
