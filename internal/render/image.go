// Package render implements the software volume rendering engine the Visapult
// back end runs on each processing element: transfer functions, axis-aligned
// ray casting over a slab of the domain decomposition, Porter-Duff "over"
// compositing of the resulting semi-transparent images, and a small float
// RGBA image type that doubles as the texture payload shipped to the viewer.
package render

import (
	"errors"
	"fmt"
	"io"
	"math"
	"sync"
)

// Image is a float32 RGBA image with straight (non-premultiplied) alpha,
// stored row-major, four channels per pixel. Channel values are nominally in
// [0, 1].
type Image struct {
	W, H int
	Pix  []float32
}

// NewImage allocates a transparent black image.
func NewImage(w, h int) *Image {
	if w < 1 {
		w = 1
	}
	if h < 1 {
		h = 1
	}
	return &Image{W: w, H: h, Pix: make([]float32, w*h*4)}
}

// idx returns the base index of pixel (x, y).
func (im *Image) idx(x, y int) int { return (y*im.W + x) * 4 }

// At returns the RGBA value at (x, y). No bounds checking.
func (im *Image) At(x, y int) (r, g, b, a float32) {
	i := im.idx(x, y)
	return im.Pix[i], im.Pix[i+1], im.Pix[i+2], im.Pix[i+3]
}

// Set stores an RGBA value at (x, y). No bounds checking.
func (im *Image) Set(x, y int, r, g, b, a float32) {
	i := im.idx(x, y)
	im.Pix[i], im.Pix[i+1], im.Pix[i+2], im.Pix[i+3] = r, g, b, a
}

// Clone returns a deep copy.
func (im *Image) Clone() *Image {
	out := &Image{W: im.W, H: im.H, Pix: make([]float32, len(im.Pix))}
	copy(out.Pix, im.Pix)
	return out
}

// Fill sets every pixel to the given color.
func (im *Image) Fill(r, g, b, a float32) {
	for i := 0; i < len(im.Pix); i += 4 {
		im.Pix[i], im.Pix[i+1], im.Pix[i+2], im.Pix[i+3] = r, g, b, a
	}
}

// Bytes returns the storage size of the pixel data in bytes.
func (im *Image) Bytes() int64 { return int64(len(im.Pix)) * 4 }

// OverPixel composites src over dst (Porter-Duff "over" with straight alpha)
// and returns the result.
func OverPixel(srcR, srcG, srcB, srcA, dstR, dstG, dstB, dstA float32) (r, g, b, a float32) {
	outA := srcA + dstA*(1-srcA)
	if outA <= 0 {
		return 0, 0, 0, 0
	}
	r = (srcR*srcA + dstR*dstA*(1-srcA)) / outA
	g = (srcG*srcA + dstG*dstA*(1-srcA)) / outA
	b = (srcB*srcA + dstB*dstA*(1-srcA)) / outA
	return r, g, b, outA
}

// ErrImageSize reports mismatched image dimensions in a compositing call.
var ErrImageSize = errors.New("render: image dimensions differ")

// Over composites src over im in place (im is the background). The images
// must have identical dimensions.
func (im *Image) Over(src *Image) error {
	if im.W != src.W || im.H != src.H {
		return fmt.Errorf("%w: %dx%d over %dx%d", ErrImageSize, src.W, src.H, im.W, im.H)
	}
	for i := 0; i < len(im.Pix); i += 4 {
		r, g, b, a := OverPixel(
			src.Pix[i], src.Pix[i+1], src.Pix[i+2], src.Pix[i+3],
			im.Pix[i], im.Pix[i+1], im.Pix[i+2], im.Pix[i+3])
		im.Pix[i], im.Pix[i+1], im.Pix[i+2], im.Pix[i+3] = r, g, b, a
	}
	return nil
}

// CompositeBackToFront layers images in slice order: images[0] is the
// farthest layer, images[len-1] the nearest. All images must share
// dimensions. The result is a new image; the inputs are unmodified.
//
// This is the ordered recombination step that object-order parallel volume
// rendering requires (paper section 3.2), and it is exactly what the viewer's
// IBR compositor does with the per-slab textures.
func CompositeBackToFront(images []*Image) (*Image, error) {
	if len(images) == 0 {
		return nil, errors.New("render: no images to composite")
	}
	out := images[0].Clone()
	for _, layer := range images[1:] {
		if err := out.Over(layer); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// RMSE returns the root-mean-square difference between two images over all
// four channels, in [0, ~1]. It is the artifact metric used for experiment
// E8 (IBRAVR off-axis error).
func (im *Image) RMSE(other *Image) (float64, error) {
	if im.W != other.W || im.H != other.H {
		return 0, fmt.Errorf("%w: %dx%d vs %dx%d", ErrImageSize, im.W, im.H, other.W, other.H)
	}
	var sum float64
	for i := range im.Pix {
		d := float64(im.Pix[i] - other.Pix[i])
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(im.Pix))), nil
}

// MeanAlpha returns the average alpha of the image, a cheap "how much stuff
// is visible" measure used in tests.
func (im *Image) MeanAlpha() float64 {
	var sum float64
	for i := 3; i < len(im.Pix); i += 4 {
		sum += float64(im.Pix[i])
	}
	return sum / float64(im.W*im.H)
}

// ToRGBA8 converts the image to 8-bit RGBA bytes (clamping to [0,1]), the
// format the wire protocol ships to the viewer as a texture.
func (im *Image) ToRGBA8() []byte {
	out := make([]byte, im.W*im.H*4)
	for i, f := range im.Pix {
		if f < 0 {
			f = 0
		}
		if f > 1 {
			f = 1
		}
		out[i] = byte(f*255 + 0.5)
	}
	return out
}

// FromRGBA8 builds a float image from 8-bit RGBA bytes.
func FromRGBA8(w, h int, data []byte) (*Image, error) {
	if len(data) != w*h*4 {
		return nil, fmt.Errorf("render: RGBA8 buffer length %d does not match %dx%d", len(data), w, h)
	}
	im := NewImage(w, h)
	for i, b := range data {
		im.Pix[i] = float32(b) / 255
	}
	return im, nil
}

// WritePPM writes the image as a binary PPM (P6) file, dropping alpha. This
// gives the examples a zero-dependency way to emit viewable renderings.
func (im *Image) WritePPM(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "P6\n%d %d\n255\n", im.W, im.H); err != nil {
		return err
	}
	row := make([]byte, im.W*3)
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			r, g, b, a := im.At(x, y)
			// Composite over black so transparent regions render dark.
			row[x*3+0] = clamp8(r * a)
			row[x*3+1] = clamp8(g * a)
			row[x*3+2] = clamp8(b * a)
		}
		if _, err := w.Write(row); err != nil {
			return err
		}
	}
	return nil
}

func clamp8(f float32) byte {
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	return byte(f*255 + 0.5)
}

// imageFreeList recycles *Image values across frames so steady-state
// rendering allocates nothing per frame. Entries keep their Pix capacity;
// GetImage reslices and zeroes rather than reallocating.
var imageFreeList = sync.Pool{New: func() any { return new(Image) }}

// GetImage returns a transparent black w x h image, reusing a pooled backing
// array when one with sufficient capacity is available. Pass the image to
// PutImage when its pixels are no longer referenced.
func GetImage(w, h int) *Image {
	if w < 1 {
		w = 1
	}
	if h < 1 {
		h = 1
	}
	im := imageFreeList.Get().(*Image)
	n := w * h * 4
	if cap(im.Pix) < n {
		im.Pix = make([]float32, n)
	} else {
		im.Pix = im.Pix[:n]
		clear(im.Pix)
	}
	im.W, im.H = w, h
	return im
}

// PutImage returns an image obtained from GetImage to the free list. The
// caller must not retain im or its Pix slice afterwards. A nil image is
// ignored, so deferred returns on error paths stay unconditional.
func PutImage(im *Image) {
	if im == nil {
		return
	}
	imageFreeList.Put(im)
}

// ShiftX returns a copy of the image translated horizontally by dx pixels
// (positive moves content right); exposed pixels become transparent. The IBR
// compositor uses this to approximate texture-mapped slab quads under small
// off-axis rotations.
func (im *Image) ShiftX(dx int) *Image {
	out := NewImage(im.W, im.H)
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			sx := x - dx
			if sx < 0 || sx >= im.W {
				continue
			}
			r, g, b, a := im.At(sx, y)
			out.Set(x, y, r, g, b, a)
		}
	}
	return out
}
