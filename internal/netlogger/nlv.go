package netlogger

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// NLVOptions controls rendering of an ASCII lifeline plot.
type NLVOptions struct {
	// Width is the number of character columns used for the time axis
	// (default 100).
	Width int
	// TagOrder fixes the vertical order of tags (bottom of the paper's plots
	// is the first element here). Tags present in the log but not listed are
	// appended. If empty, tags appear in first-appearance order.
	TagOrder []string
	// Marker is the rune used to plot an event (default 'o').
	Marker rune
}

// RenderNLV renders a textual approximation of an NLV plot: one row per tag,
// one column per time bucket, with a marker wherever at least one event with
// that tag falls in the bucket. It is the moral equivalent of the paper's
// Figures 10 and 12-17 and is what the nlv command prints.
func RenderNLV(events []Event, opts NLVOptions) string {
	if opts.Width <= 0 {
		opts.Width = 100
	}
	if opts.Marker == 0 {
		opts.Marker = 'o'
	}
	a := Analyze(events)
	if len(a.Events()) == 0 {
		return "(empty event log)\n"
	}
	span := a.Span()
	if span <= 0 {
		span = time.Second
	}

	// Assemble the tag rows.
	order := append([]string(nil), opts.TagOrder...)
	listed := make(map[string]bool, len(order))
	for _, t := range order {
		listed[t] = true
	}
	for _, t := range a.Tags() {
		if !listed[t] {
			order = append(order, t)
		}
	}

	// Column for each event.
	colOf := func(e Event) int {
		frac := float64(a.Elapsed(e.Time)) / float64(span)
		col := int(frac * float64(opts.Width-1))
		if col < 0 {
			col = 0
		}
		if col >= opts.Width {
			col = opts.Width - 1
		}
		return col
	}

	rows := make(map[string][]rune, len(order))
	for _, t := range order {
		row := make([]rune, opts.Width)
		for i := range row {
			row[i] = '.'
		}
		rows[t] = row
	}
	for _, e := range a.Events() {
		row, ok := rows[e.Tag]
		if !ok {
			continue
		}
		row[colOf(e)] = opts.Marker
	}

	labelWidth := 0
	for _, t := range order {
		if len(t) > labelWidth {
			labelWidth = len(t)
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "NLV lifeline plot: %d events over %s\n", len(a.Events()), span.Round(time.Millisecond))
	// Top-to-bottom print, but the paper lists the first tag at the bottom,
	// so print in reverse order.
	for i := len(order) - 1; i >= 0; i-- {
		t := order[i]
		fmt.Fprintf(&b, "%-*s |%s|\n", labelWidth, t, string(rows[t]))
	}
	// Time axis.
	fmt.Fprintf(&b, "%-*s +%s+\n", labelWidth, "", strings.Repeat("-", opts.Width))
	fmt.Fprintf(&b, "%-*s 0%*s\n", labelWidth, "", opts.Width, fmt.Sprintf("%.1fs", span.Seconds()))
	return b.String()
}

// WriteCSV exports events as CSV with columns
// elapsed_seconds,host,prog,pe,frame,tag,bytes — a convenient form for
// re-plotting the lifelines with external tools.
func WriteCSV(w io.Writer, events []Event) error {
	a := Analyze(events)
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"elapsed_seconds", "host", "prog", "pe", "frame", "tag", "bytes"}); err != nil {
		return err
	}
	for _, e := range a.Events() {
		rec := []string{
			strconv.FormatFloat(a.Elapsed(e.Time).Seconds(), 'f', 6, 64),
			e.Host,
			e.Prog,
			strconv.Itoa(e.PE()),
			strconv.Itoa(e.Frame()),
			e.Tag,
			strconv.FormatInt(e.Bytes(), 10),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// PhaseReport renders a human-readable table of phase summaries for the
// standard back-end and viewer phases found in the log. It is used by the
// nlv tool and by EXPERIMENTS.md generation.
func PhaseReport(events []Event) string {
	a := Analyze(events)
	type pair struct{ name, start, end string }
	pairs := []pair{
		{"BE load", BELoadStart, BELoadEnd},
		{"BE render", BERenderStart, BERenderEnd},
		{"BE heavy send", BEHeavySend, BEHeavyEnd},
		{"BE frame", BEFrameStart, BEFrameEnd},
		{"Viewer light payload", VLightPayloadStart, VLightPayloadEnd},
		{"Viewer heavy payload", VHeavyPayloadStart, VHeavyPayloadEnd},
		{"Viewer frame", VFrameStart, VFrameEnd},
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %6s %10s %10s %10s %8s %12s\n",
		"phase", "count", "mean", "min", "max", "cov", "agg Mbps")
	for _, p := range pairs {
		s := a.SummarizePhase(p.start, p.end)
		if s.Count == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-22s %6d %10s %10s %10s %8.3f %12.1f\n",
			p.name, s.Count,
			s.Mean.Round(time.Millisecond),
			s.Min.Round(time.Millisecond),
			s.Max.Round(time.Millisecond),
			s.CoV, s.AggregateMbps)
	}
	return b.String()
}
