package netlogger

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// buildSyntheticRun fabricates a back-end/viewer event log shaped like the
// paper's serial runs: per frame, load (L) then render (R) then heavy send,
// on each of numPEs back-end workers, plus matching viewer receive events.
func buildSyntheticRun(frames, numPEs int, load, render, send time.Duration) []Event {
	origin := time.Date(2000, 4, 12, 10, 0, 0, 0, time.UTC)
	var events []Event
	for pe := 0; pe < numPEs; pe++ {
		be := New("cplant", "backend-worker")
		t := origin
		for f := 0; f < frames; f++ {
			be.LogAt(t, BEFrameStart, Int(FieldFrame, f), Int(FieldPE, pe))
			be.LogAt(t, BELoadStart, Int(FieldFrame, f), Int(FieldPE, pe))
			t = t.Add(load)
			be.LogAt(t, BELoadEnd, Int(FieldFrame, f), Int(FieldPE, pe), Int64(FieldBytes, 40<<20))
			be.LogAt(t, BERenderStart, Int(FieldFrame, f), Int(FieldPE, pe))
			t = t.Add(render)
			be.LogAt(t, BERenderEnd, Int(FieldFrame, f), Int(FieldPE, pe))
			be.LogAt(t, BEHeavySend, Int(FieldFrame, f), Int(FieldPE, pe))
			t = t.Add(send)
			be.LogAt(t, BEHeavyEnd, Int(FieldFrame, f), Int(FieldPE, pe), Int64(FieldBytes, 1<<20))
			be.LogAt(t, BEFrameEnd, Int(FieldFrame, f), Int(FieldPE, pe))
		}
		events = append(events, be.Events()...)
	}
	viewer := New("desktop", "viewer-worker")
	t := origin
	for f := 0; f < frames; f++ {
		viewer.LogAt(t, VFrameStart, Int(FieldFrame, f), Int(FieldPE, 0))
		t = t.Add(load + render)
		viewer.LogAt(t, VHeavyPayloadStart, Int(FieldFrame, f), Int(FieldPE, 0))
		t = t.Add(send)
		viewer.LogAt(t, VHeavyPayloadEnd, Int(FieldFrame, f), Int(FieldPE, 0), Int64(FieldBytes, 1<<20))
		viewer.LogAt(t, VFrameEnd, Int(FieldFrame, f), Int(FieldPE, 0))
	}
	return append(events, viewer.Events()...)
}

func TestAnalyzeEmptyLog(t *testing.T) {
	a := Analyze(nil)
	if a.Span() != 0 {
		t.Error("empty span should be 0")
	}
	if len(a.Tags()) != 0 {
		t.Error("no tags expected")
	}
	if len(a.Phases(BELoadStart, BELoadEnd)) != 0 {
		t.Error("no phases expected")
	}
}

func TestPhasesMatchedPerFrameAndPE(t *testing.T) {
	events := buildSyntheticRun(3, 4, 2*time.Second, time.Second, 500*time.Millisecond)
	a := Analyze(events)
	loads := a.Phases(BELoadStart, BELoadEnd)
	if len(loads) != 12 { // 3 frames x 4 PEs
		t.Fatalf("load phases = %d, want 12", len(loads))
	}
	for _, p := range loads {
		if p.Duration() != 2*time.Second {
			t.Errorf("load duration = %v (frame %d pe %d)", p.Duration(), p.Frame, p.PE)
		}
		if p.Bytes != 40<<20 {
			t.Errorf("bytes = %d", p.Bytes)
		}
		if p.Mbps() <= 0 {
			t.Errorf("mbps = %v", p.Mbps())
		}
	}
	renders := a.PhaseDurations(BERenderStart, BERenderEnd)
	if len(renders) != 12 {
		t.Fatalf("render phases = %d", len(renders))
	}
	for _, d := range renders {
		if d != time.Second {
			t.Errorf("render duration = %v", d)
		}
	}
}

func TestPhasesUnmatchedStartDropped(t *testing.T) {
	l := New("h", "p")
	base := time.Unix(100, 0).UTC()
	l.LogAt(base, BELoadStart, Int(FieldFrame, 0), Int(FieldPE, 0))
	// End for a different frame: must not pair.
	l.LogAt(base.Add(time.Second), BELoadEnd, Int(FieldFrame, 1), Int(FieldPE, 0))
	a := Analyze(l.Events())
	if got := len(a.Phases(BELoadStart, BELoadEnd)); got != 0 {
		t.Errorf("phases = %d, want 0", got)
	}
}

func TestSummarizePhase(t *testing.T) {
	events := buildSyntheticRun(5, 2, 3*time.Second, 2*time.Second, time.Second)
	a := Analyze(events)
	s := a.SummarizePhase(BELoadStart, BELoadEnd)
	if s.Count != 10 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Mean != 3*time.Second || s.Min != 3*time.Second || s.Max != 3*time.Second {
		t.Errorf("mean/min/max = %v/%v/%v", s.Mean, s.Min, s.Max)
	}
	if s.CoV != 0 {
		t.Errorf("constant durations should have zero CoV, got %v", s.CoV)
	}
	if s.AggregateMbps <= 0 {
		t.Errorf("aggregate Mbps = %v", s.AggregateMbps)
	}
	empty := a.SummarizePhase("NO_SUCH", "TAGS")
	if empty.Count != 0 {
		t.Error("empty phase should have zero count")
	}
}

func TestFrameSpan(t *testing.T) {
	events := buildSyntheticRun(2, 3, time.Second, time.Second, time.Second)
	a := Analyze(events)
	spans := a.FrameSpan(BEFrameStart, BEFrameEnd)
	if len(spans) != 2 {
		t.Fatalf("frame spans = %d", len(spans))
	}
	for f, d := range spans {
		if d != 3*time.Second {
			t.Errorf("frame %d span = %v, want 3s", f, d)
		}
	}
}

func TestTagsAndFilters(t *testing.T) {
	events := buildSyntheticRun(1, 1, time.Second, time.Second, time.Second)
	a := Analyze(events)
	tags := a.Tags()
	if len(tags) < 10 {
		t.Errorf("tags = %v", tags)
	}
	if got := a.FilterTag(BELoadEnd); len(got) != 1 {
		t.Errorf("FilterTag = %d", len(got))
	}
	if got := a.FilterProg("viewer-worker"); len(got) != 4 {
		t.Errorf("FilterProg = %d", len(got))
	}
	if got := a.FilterProg("nonexistent"); len(got) != 0 {
		t.Errorf("FilterProg nonexistent = %d", len(got))
	}
}

func TestOverlapFractionSerialVsOverlapped(t *testing.T) {
	origin := time.Date(2000, 4, 12, 0, 0, 0, 0, time.UTC)
	mk := func(overlapped bool) []Event {
		l := New("host", "backend-worker")
		t := origin
		for f := 0; f < 4; f++ {
			l.LogAt(t, BELoadStart, Int(FieldFrame, f), Int(FieldPE, 0))
			loadEnd := t.Add(2 * time.Second)
			l.LogAt(loadEnd, BELoadEnd, Int(FieldFrame, f), Int(FieldPE, 0))
			var renderStart time.Time
			if overlapped && f > 0 {
				// render frame f-1 while loading frame f
				renderStart = t
			} else {
				renderStart = loadEnd
			}
			l.LogAt(renderStart, BERenderStart, Int(FieldFrame, f), Int(FieldPE, 0))
			l.LogAt(renderStart.Add(2*time.Second), BERenderEnd, Int(FieldFrame, f), Int(FieldPE, 0))
			if overlapped {
				t = loadEnd
			} else {
				t = renderStart.Add(2 * time.Second)
			}
		}
		return l.Events()
	}
	serial := Analyze(mk(false)).OverlapFraction(BELoadStart, BELoadEnd, BERenderStart, BERenderEnd)
	overlapped := Analyze(mk(true)).OverlapFraction(BELoadStart, BELoadEnd, BERenderStart, BERenderEnd)
	if serial != 0 {
		t.Errorf("serial overlap fraction = %v, want 0", serial)
	}
	if overlapped <= serial {
		t.Errorf("overlapped fraction %v should exceed serial %v", overlapped, serial)
	}
}

func TestLifelinesGrouping(t *testing.T) {
	events := buildSyntheticRun(1, 3, time.Second, time.Second, time.Second)
	a := Analyze(events)
	lines := a.Lifelines()
	// 3 backend PEs + 1 viewer stream.
	if len(lines) != 4 {
		t.Fatalf("lifelines = %d", len(lines))
	}
	// Sorted by prog: backend-worker before viewer-worker, PEs ascending.
	if lines[0].Prog != "backend-worker" || lines[0].PE != 0 {
		t.Errorf("first lifeline = %+v", lines[0])
	}
	if lines[3].Prog != "viewer-worker" {
		t.Errorf("last lifeline = %+v", lines[3])
	}
	for _, ll := range lines {
		if len(ll.Events) == 0 {
			t.Error("lifeline with no events")
		}
	}
}

func TestRenderNLV(t *testing.T) {
	events := buildSyntheticRun(3, 2, time.Second, time.Second, time.Second)
	out := RenderNLV(events, NLVOptions{Width: 60, TagOrder: BackEndTags})
	if !strings.Contains(out, BELoadStart) || !strings.Contains(out, BEFrameEnd) {
		t.Errorf("plot missing tag rows:\n%s", out)
	}
	if !strings.Contains(out, "o") {
		t.Error("plot has no event markers")
	}
	// The first tag in TagOrder must be printed on the last (bottom) tag row.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	bottomTagRow := lines[len(lines)-3]
	if !strings.HasPrefix(bottomTagRow, BEFrameStart) {
		t.Errorf("bottom row = %q, want %s first", bottomTagRow, BEFrameStart)
	}
}

func TestRenderNLVEmpty(t *testing.T) {
	out := RenderNLV(nil, NLVOptions{})
	if !strings.Contains(out, "empty") {
		t.Errorf("empty log rendering = %q", out)
	}
}

func TestRenderNLVDefaultsAndUnlistedTags(t *testing.T) {
	l := New("h", "p")
	l.LogAt(time.Unix(0, 0).UTC(), "CUSTOM_TAG")
	l.LogAt(time.Unix(1, 0).UTC(), "OTHER_TAG")
	out := RenderNLV(l.Events(), NLVOptions{TagOrder: []string{"OTHER_TAG"}})
	if !strings.Contains(out, "CUSTOM_TAG") {
		t.Error("unlisted tags should still be rendered")
	}
}

func TestWriteCSV(t *testing.T) {
	events := buildSyntheticRun(2, 1, time.Second, time.Second, time.Second)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, events); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(events)+1 {
		t.Fatalf("csv lines = %d, want %d", len(lines), len(events)+1)
	}
	if !strings.HasPrefix(lines[0], "elapsed_seconds,host,prog") {
		t.Errorf("header = %q", lines[0])
	}
	// First data row should be at elapsed 0.
	if !strings.HasPrefix(lines[1], "0.000000,") {
		t.Errorf("first row = %q", lines[1])
	}
}

func TestPhaseReport(t *testing.T) {
	events := buildSyntheticRun(3, 2, 2*time.Second, time.Second, 500*time.Millisecond)
	report := PhaseReport(events)
	for _, want := range []string{"BE load", "BE render", "BE heavy send", "Viewer heavy payload"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
	// Phases with no events should be omitted, not rendered as zero rows.
	if strings.Contains(report, "Viewer light payload") {
		t.Errorf("report should omit absent phases:\n%s", report)
	}
}

func TestElapsedAndSpan(t *testing.T) {
	events := buildSyntheticRun(2, 1, time.Second, time.Second, time.Second)
	a := Analyze(events)
	if a.Elapsed(a.Origin()) != 0 {
		t.Error("elapsed at origin should be 0")
	}
	if a.Span() != 6*time.Second {
		t.Errorf("span = %v, want 6s", a.Span())
	}
}
