package netlogger

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Clock supplies timestamps for emitted events. The default is time.Now;
// simulated experiments install a virtual clock so that event timestamps are
// expressed in virtual seconds from the start of a campaign, exactly like the
// elapsed-time axis in the paper's NLV figures.
type Clock func() time.Time

// Logger emits NetLogger events on behalf of one component (one back-end PE,
// the viewer master, a DPSS server, ...). It always keeps an in-memory copy
// of what it emitted and can additionally stream ULM lines to any number of
// sinks (files, TCP connections to a netlogd daemon).
//
// Logger is safe for concurrent use.
type Logger struct {
	mu     sync.Mutex
	host   string
	prog   string
	clock  Clock
	sinks  []io.Writer
	events []Event
	level  int
}

// Option configures a Logger.
type Option func(*Logger)

// WithClock installs a custom timestamp source.
func WithClock(c Clock) Option {
	return func(l *Logger) {
		if c != nil {
			l.clock = c
		}
	}
}

// WithSink adds a destination that receives one ULM line per event.
func WithSink(w io.Writer) Option {
	return func(l *Logger) {
		if w != nil {
			l.sinks = append(l.sinks, w)
		}
	}
}

// WithLevel sets the LVL value stamped on events (default 1).
func WithLevel(level int) Option {
	return func(l *Logger) { l.level = level }
}

// New creates a Logger for the given host and program name.
func New(host, prog string, opts ...Option) *Logger {
	l := &Logger{host: host, prog: prog, clock: time.Now, level: 1}
	for _, o := range opts {
		o(l)
	}
	return l
}

// Host returns the host name stamped on events.
func (l *Logger) Host() string { return l.host }

// Prog returns the program name stamped on events.
func (l *Logger) Prog() string { return l.prog }

// AddSink attaches an additional sink at runtime.
func (l *Logger) AddSink(w io.Writer) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if w != nil {
		l.sinks = append(l.sinks, w)
	}
}

// Log emits an event with the given tag and fields and returns it.
func (l *Logger) Log(tag string, fields ...Field) Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	e := Event{
		Time:   l.clock(),
		Host:   l.host,
		Prog:   l.prog,
		Tag:    tag,
		Level:  l.level,
		Fields: make(map[string]string, len(fields)),
	}
	for _, f := range fields {
		e.Fields[f.Key] = f.Value
	}
	l.events = append(l.events, e)
	line := e.ULM() + "\n"
	for _, s := range l.sinks {
		io.WriteString(s, line) //nolint:errcheck // best-effort monitoring path
	}
	return e
}

// LogAt emits an event with an explicit timestamp, bypassing the clock. The
// simulated campaigns use this to stamp events with virtual time.
func (l *Logger) LogAt(ts time.Time, tag string, fields ...Field) Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	e := Event{
		Time:   ts,
		Host:   l.host,
		Prog:   l.prog,
		Tag:    tag,
		Level:  l.level,
		Fields: make(map[string]string, len(fields)),
	}
	for _, f := range fields {
		e.Fields[f.Key] = f.Value
	}
	l.events = append(l.events, e)
	line := e.ULM() + "\n"
	for _, s := range l.sinks {
		io.WriteString(s, line) //nolint:errcheck
	}
	return e
}

// Events returns a copy of every event emitted so far.
func (l *Logger) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, len(l.events))
	copy(out, l.events)
	return out
}

// Len returns the number of events emitted so far.
func (l *Logger) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// Reset discards the in-memory event history (sinks are unaffected).
func (l *Logger) Reset() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = nil
}

// Collector merges events from many Loggers (and raw event slices) into one
// ordered log, mirroring the single netlogd event file the original toolkit
// accumulates for a distributed run.
type Collector struct {
	mu     sync.Mutex
	events []Event
}

// NewCollector returns an empty Collector.
func NewCollector() *Collector { return &Collector{} }

// Add appends events to the collector.
func (c *Collector) Add(events ...Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.events = append(c.events, events...)
}

// AddLogger appends the full history of a Logger.
func (c *Collector) AddLogger(l *Logger) { c.Add(l.Events()...) }

// Events returns all collected events sorted by timestamp.
func (c *Collector) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Event, len(c.events))
	copy(out, c.events)
	SortByTime(out)
	return out
}

// Len returns the number of collected events.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.events)
}

// WriteULM writes the collected events, time-sorted, one ULM line per event.
func (c *Collector) WriteULM(w io.Writer) error {
	for _, e := range c.Events() {
		if _, err := fmt.Fprintln(w, e.ULM()); err != nil {
			return err
		}
	}
	return nil
}

// sinkWriteTimeout bounds one buffered write+flush to a netlogd daemon: a
// wedged daemon breaks the sink instead of stalling the instrumented
// application at its next Log call.
const sinkWriteTimeout = 10 * time.Second

// DialSink connects to a netlogd daemon and returns a writer suitable for
// WithSink/AddSink. The returned writer buffers lines and is safe for
// concurrent use by a single Logger (which serializes writes itself).
func DialSink(addr string) (io.WriteCloser, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netlogger: dial %s: %w", addr, err)
	}
	conn.SetWriteDeadline(time.Now().Add(sinkWriteTimeout)) //nolint:errcheck // re-armed per Write
	return &connSink{conn: conn, bw: bufio.NewWriter(conn)}, nil
}

type connSink struct {
	mu   sync.Mutex
	conn net.Conn
	bw   *bufio.Writer
}

func (s *connSink) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.conn.SetWriteDeadline(time.Now().Add(sinkWriteTimeout)) //nolint:errcheck // a dead conn surfaces on the flush below
	n, err := s.bw.Write(p)
	if err != nil {
		return n, err
	}
	return n, s.bw.Flush()
}

func (s *connSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.bw.Flush() //nolint:errcheck
	return s.conn.Close()
}
