package netlogger

import (
	"bufio"
	"errors"
	"io"
	"net"
	"sync"
)

// Daemon is the netlogd event collection service: distributed Visapult
// components dial it (see DialSink) and stream ULM lines; the daemon
// accumulates them into a single event log for later analysis, exactly as the
// original NetLogger daemon did for the paper's field tests.
type Daemon struct {
	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	events   []Event
	parseErr int
	closed   bool
	wg       sync.WaitGroup
}

// NewDaemon returns a daemon that is not yet listening.
func NewDaemon() *Daemon { return &Daemon{conns: make(map[net.Conn]struct{})} }

// Listen starts accepting connections on addr (e.g. "127.0.0.1:0"). It
// returns the bound address. Serving happens on background goroutines; call
// Close to stop.
func (d *Daemon) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	d.mu.Lock()
	d.ln = ln
	d.mu.Unlock()
	d.wg.Add(1)
	go d.acceptLoop(ln)
	return ln.Addr().String(), nil
}

// Addr returns the listening address, or "" if not listening.
func (d *Daemon) Addr() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.ln == nil {
		return ""
	}
	return d.ln.Addr().String()
}

func (d *Daemon) acceptLoop(ln net.Listener) {
	defer d.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return
			}
			d.mu.Lock()
			closed := d.closed
			d.mu.Unlock()
			if closed {
				return
			}
			continue
		}
		d.mu.Lock()
		if d.closed {
			d.mu.Unlock()
			conn.Close()
			return
		}
		d.conns[conn] = struct{}{}
		d.mu.Unlock()
		d.wg.Add(1)
		go d.serveConn(conn)
	}
}

func (d *Daemon) serveConn(conn net.Conn) {
	defer d.wg.Done()
	defer func() {
		conn.Close()
		d.mu.Lock()
		delete(d.conns, conn)
		d.mu.Unlock()
	}()
	//vislint:ignore boundedio idle ingest loop: a netlogd connection legitimately waits forever for the instrumented app's next log line
	d.Ingest(conn) //nolint:errcheck // connection teardown is expected
}

// Ingest consumes ULM lines from r until EOF, accumulating parsed events.
// It is exported so that tests and the nlv tool can feed the daemon from
// files as well as sockets.
func (d *Daemon) Ingest(r io.Reader) error {
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 64<<10), 1<<20)
	for scanner.Scan() {
		line := scanner.Text()
		if line == "" {
			continue
		}
		e, err := ParseULM(line)
		d.mu.Lock()
		if err != nil {
			d.parseErr++
		} else {
			d.events = append(d.events, e)
		}
		d.mu.Unlock()
	}
	return scanner.Err()
}

// Events returns the accumulated events sorted by timestamp.
func (d *Daemon) Events() []Event {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]Event, len(d.events))
	copy(out, d.events)
	SortByTime(out)
	return out
}

// Len returns the number of events accumulated so far.
func (d *Daemon) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.events)
}

// ParseErrors returns the number of malformed lines received.
func (d *Daemon) ParseErrors() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.parseErr
}

// Close stops the listener and waits for connection handlers to drain.
// Events already accumulated remain available.
func (d *Daemon) Close() error {
	d.mu.Lock()
	d.closed = true
	ln := d.ln
	conns := make([]net.Conn, 0, len(d.conns))
	for c := range d.conns {
		conns = append(conns, c)
	}
	d.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	d.wg.Wait()
	return err
}
