package netlogger

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func fixedClock(start time.Time, step time.Duration) Clock {
	i := 0
	var mu sync.Mutex
	return func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		t := start.Add(time.Duration(i) * step)
		i++
		return t
	}
}

func TestLoggerEmitsAndRetains(t *testing.T) {
	l := New("viz1", "viewer-master")
	l.Log(VFrameStart, Int(FieldFrame, 0))
	l.Log(VFrameEnd, Int(FieldFrame, 0))
	if l.Len() != 2 {
		t.Fatalf("len = %d", l.Len())
	}
	evs := l.Events()
	if evs[0].Host != "viz1" || evs[0].Prog != "viewer-master" {
		t.Errorf("identity = %+v", evs[0])
	}
	if evs[0].Tag != VFrameStart || evs[1].Tag != VFrameEnd {
		t.Errorf("tags = %v", evs)
	}
	if l.Host() != "viz1" || l.Prog() != "viewer-master" {
		t.Error("accessors")
	}
}

func TestLoggerEventsReturnsCopy(t *testing.T) {
	l := New("h", "p")
	l.Log("A")
	evs := l.Events()
	evs[0].Tag = "MUTATED"
	if l.Events()[0].Tag != "A" {
		t.Error("Events must return a copy")
	}
}

func TestLoggerSinkReceivesULM(t *testing.T) {
	var buf bytes.Buffer
	l := New("h", "p", WithSink(&buf), WithLevel(3))
	l.Log(BELoadStart, Int(FieldFrame, 1), Int(FieldPE, 0))
	line := strings.TrimSpace(buf.String())
	e, err := ParseULM(line)
	if err != nil {
		t.Fatalf("sink line unparseable: %v", err)
	}
	if e.Tag != BELoadStart || e.Level != 3 || e.Frame() != 1 {
		t.Errorf("parsed = %+v", e)
	}
}

func TestLoggerAddSink(t *testing.T) {
	l := New("h", "p")
	l.Log("BEFORE")
	var buf bytes.Buffer
	l.AddSink(&buf)
	l.AddSink(nil) // ignored
	l.Log("AFTER")
	if strings.Contains(buf.String(), "BEFORE") {
		t.Error("sink should only receive events after attachment")
	}
	if !strings.Contains(buf.String(), "AFTER") {
		t.Error("sink did not receive event")
	}
}

func TestLoggerWithClock(t *testing.T) {
	start := time.Date(2000, 4, 12, 0, 0, 0, 0, time.UTC)
	l := New("h", "p", WithClock(fixedClock(start, time.Second)))
	e1 := l.Log("A")
	e2 := l.Log("B")
	if !e1.Time.Equal(start) || !e2.Time.Equal(start.Add(time.Second)) {
		t.Errorf("clock not honored: %v %v", e1.Time, e2.Time)
	}
	// nil clock option is ignored.
	l2 := New("h", "p", WithClock(nil))
	if l2.Log("X").Time.IsZero() {
		t.Error("nil clock should fall back to time.Now")
	}
}

func TestLoggerLogAt(t *testing.T) {
	l := New("h", "p")
	ts := time.Date(1999, 11, 14, 12, 0, 0, 0, time.UTC)
	e := l.LogAt(ts, BERenderEnd, Int(FieldFrame, 5))
	if !e.Time.Equal(ts) {
		t.Errorf("LogAt time = %v", e.Time)
	}
	if e.Frame() != 5 {
		t.Errorf("frame = %d", e.Frame())
	}
}

func TestLoggerReset(t *testing.T) {
	l := New("h", "p")
	l.Log("A")
	l.Reset()
	if l.Len() != 0 {
		t.Error("reset did not clear events")
	}
}

func TestLoggerConcurrentUse(t *testing.T) {
	l := New("h", "p")
	var wg sync.WaitGroup
	const goroutines = 8
	const perG = 200
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				l.Log(BEFrameStart, Int(FieldFrame, i), Int(FieldPE, g))
			}
		}(g)
	}
	wg.Wait()
	if l.Len() != goroutines*perG {
		t.Fatalf("len = %d, want %d", l.Len(), goroutines*perG)
	}
}

func TestCollectorMergesAndSorts(t *testing.T) {
	start := time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC)
	backend := New("cplant", "backend-worker", WithClock(fixedClock(start.Add(time.Second), time.Second)))
	viewer := New("desktop", "viewer-master", WithClock(fixedClock(start, 3*time.Second)))
	backend.Log(BELoadStart)
	backend.Log(BELoadEnd)
	viewer.Log(VFrameStart)
	viewer.Log(VFrameEnd)

	c := NewCollector()
	c.AddLogger(backend)
	c.AddLogger(viewer)
	if c.Len() != 4 {
		t.Fatalf("len = %d", c.Len())
	}
	evs := c.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].Time.Before(evs[i-1].Time) {
			t.Fatal("collector events not sorted")
		}
	}
	var buf bytes.Buffer
	if err := c.WriteULM(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseLog(buf.String())
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != 4 {
		t.Fatalf("round-trip parsed %d events", len(parsed))
	}
}

func TestDaemonCollectsFromTCPClients(t *testing.T) {
	d := NewDaemon()
	addr, err := d.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if d.Addr() != addr {
		t.Errorf("Addr = %q want %q", d.Addr(), addr)
	}

	sink, err := DialSink(addr)
	if err != nil {
		t.Fatal(err)
	}
	l := New("backend", "backend-worker", WithSink(sink))
	for frame := 0; frame < 5; frame++ {
		l.Log(BELoadStart, Int(FieldFrame, frame), Int(FieldPE, 0))
		l.Log(BELoadEnd, Int(FieldFrame, frame), Int(FieldPE, 0), Int64(FieldBytes, 1<<20))
	}
	sink.Close()

	deadline := time.Now().Add(2 * time.Second)
	for d.Len() < 10 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if d.Len() != 10 {
		t.Fatalf("daemon accumulated %d events, want 10", d.Len())
	}
	if d.ParseErrors() != 0 {
		t.Errorf("parse errors = %d", d.ParseErrors())
	}
	evs := d.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].Time.Before(evs[i-1].Time) {
			t.Fatal("daemon events not sorted")
		}
	}
}

func TestDaemonReadFromCountsParseErrors(t *testing.T) {
	d := NewDaemon()
	good := Event{Time: time.Unix(0, 0).UTC(), Tag: "OK"}.ULM()
	input := good + "\nnot a ulm line\n" + good + "\n"
	if err := d.Ingest(strings.NewReader(input)); err != nil {
		t.Fatal(err)
	}
	if d.Len() != 2 {
		t.Errorf("events = %d", d.Len())
	}
	if d.ParseErrors() != 1 {
		t.Errorf("parse errors = %d", d.ParseErrors())
	}
}

func TestDaemonCloseWithOpenClients(t *testing.T) {
	d := NewDaemon()
	addr, err := d.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sink, err := DialSink(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	// Close must not hang even though a client connection is still open.
	done := make(chan struct{})
	go func() {
		d.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(3 * time.Second):
		t.Fatal("Daemon.Close hung with an open client connection")
	}
}
