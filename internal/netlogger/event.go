// Package netlogger is a Go reimplementation of the NetLogger methodology the
// paper uses for end-to-end performance analysis of the distributed Visapult
// pipeline (section 3.6 and every profile figure).
//
// Instrumented components emit precision-timestamped events ("BE_LOAD_START",
// "V_FRAME_END", ...) either to an in-process collector or over TCP to a
// netlogd daemon. The analysis side parses the accumulated event log, pairs
// START/END tags into phase durations, and renders NLV-style lifeline plots
// (as ASCII art or CSV) — the same artefacts as the paper's Figures 10-17.
//
// Events are encoded in the ULM (Universal Logger Message) keyword=value
// format used by the original NetLogger toolkit.
package netlogger

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Standard Visapult back-end event tags (Table 2 of the paper).
const (
	BEFrameStart  = "BE_FRAME_START"  // top of the per-timestep loop in each PE
	BELoadStart   = "BE_LOAD_START"   // PE is about to load its subset of volume data
	BELoadEnd     = "BE_LOAD_END"     // volume data load and format conversion completed
	BELightSend   = "BE_LIGHT_SEND"   // start transmitting visualization metadata to the viewer
	BELightEnd    = "BE_LIGHT_END"    // metadata transmission complete
	BERenderStart = "BE_RENDER_START" // start of parallel volume rendering
	BERenderEnd   = "BE_RENDER_END"   // all rendering complete
	BEHeavySend   = "BE_HEAVY_SEND"   // start transmitting visualization data (textures, grids)
	BEHeavyEnd    = "BE_HEAVY_END"    // end of visualization data transmission
	BEFrameEnd    = "BE_FRAME_END"    // end of processing for this timestep
)

// Standard Visapult viewer event tags (Table 1 of the paper).
const (
	VFrameStart        = "V_FRAME_START"
	VLightPayloadStart = "V_LIGHTPAYLOAD_START"
	VLightPayloadEnd   = "V_LIGHTPAYLOAD_END"
	VHeavyPayloadStart = "V_HEAVYPAYLOAD_START"
	VHeavyPayloadEnd   = "V_HEAVYPAYLOAD_END"
	VFrameEnd          = "V_FRAME_END"
)

// BackEndTags lists the back-end tags in the vertical order the paper's NLV
// plots use (bottom to top).
var BackEndTags = []string{
	BEFrameStart, BELoadStart, BELoadEnd, BELightSend, BELightEnd,
	BERenderStart, BERenderEnd, BEHeavySend, BEHeavyEnd, BEFrameEnd,
}

// ViewerTags lists the viewer tags in NLV plot order.
var ViewerTags = []string{
	VFrameStart, VLightPayloadStart, VLightPayloadEnd,
	VHeavyPayloadStart, VHeavyPayloadEnd, VFrameEnd,
}

// Well-known field keys attached to events.
const (
	FieldFrame = "FRAME" // timestep / data frame number
	FieldPE    = "PE"    // back-end processing element rank
	FieldBytes = "BYTES" // payload size associated with the event
)

// Event is one NetLogger event.
type Event struct {
	Time   time.Time
	Host   string
	Prog   string
	Tag    string
	Level  int
	Fields map[string]string
}

// Field is a key/value pair attached to an event.
type Field struct {
	Key   string
	Value string
}

// Int returns a Field with an integer value.
func Int(key string, v int) Field { return Field{Key: key, Value: strconv.Itoa(v)} }

// Int64 returns a Field with an int64 value.
func Int64(key string, v int64) Field { return Field{Key: key, Value: strconv.FormatInt(v, 10)} }

// Str returns a Field with a string value.
func Str(key, v string) Field { return Field{Key: key, Value: v} }

// Frame returns the event's FRAME field as an integer, or -1 if absent or
// malformed.
func (e Event) Frame() int {
	v, ok := e.Fields[FieldFrame]
	if !ok {
		return -1
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return -1
	}
	return n
}

// PE returns the event's PE field as an integer, or -1 if absent or
// malformed.
func (e Event) PE() int {
	v, ok := e.Fields[FieldPE]
	if !ok {
		return -1
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return -1
	}
	return n
}

// Bytes returns the event's BYTES field, or 0 if absent.
func (e Event) Bytes() int64 {
	v, ok := e.Fields[FieldBytes]
	if !ok {
		return 0
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return 0
	}
	return n
}

// ulmTimeLayout is the NetLogger ULM timestamp format: UTC with microsecond
// resolution.
const ulmTimeLayout = "20060102150405.000000"

// ULM encodes the event as a single Universal Logger Message line (without a
// trailing newline). Field keys are emitted in sorted order so the encoding
// is deterministic.
func (e Event) ULM() string {
	var b strings.Builder
	fmt.Fprintf(&b, "DATE=%s", e.Time.UTC().Format(ulmTimeLayout))
	fmt.Fprintf(&b, " HOST=%s", sanitize(e.Host))
	fmt.Fprintf(&b, " PROG=%s", sanitize(e.Prog))
	fmt.Fprintf(&b, " LVL=%d", e.Level)
	fmt.Fprintf(&b, " NL.EVNT=%s", sanitize(e.Tag))
	keys := make([]string, 0, len(e.Fields))
	for k := range e.Fields {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, " %s=%s", sanitize(k), sanitize(e.Fields[k]))
	}
	return b.String()
}

// sanitize removes whitespace and '=' from ULM tokens so lines stay parseable.
func sanitize(s string) string {
	if s == "" {
		return "-"
	}
	return strings.Map(func(r rune) rune {
		switch r {
		case ' ', '\t', '\n', '\r', '=':
			return '_'
		}
		return r
	}, s)
}

// ParseULM parses one ULM line back into an Event. Unknown keys become
// Fields entries. Lines that do not contain DATE and NL.EVNT are rejected.
func ParseULM(line string) (Event, error) {
	e := Event{Fields: make(map[string]string)}
	sawDate, sawTag := false, false
	for _, tok := range strings.Fields(line) {
		eq := strings.IndexByte(tok, '=')
		if eq < 0 {
			return Event{}, fmt.Errorf("netlogger: malformed token %q", tok)
		}
		key, val := tok[:eq], tok[eq+1:]
		switch key {
		case "DATE":
			ts, err := time.Parse(ulmTimeLayout, val)
			if err != nil {
				return Event{}, fmt.Errorf("netlogger: bad DATE %q: %w", val, err)
			}
			e.Time = ts.UTC()
			sawDate = true
		case "HOST":
			e.Host = val
		case "PROG":
			e.Prog = val
		case "LVL":
			lvl, err := strconv.Atoi(val)
			if err != nil {
				return Event{}, fmt.Errorf("netlogger: bad LVL %q", val)
			}
			e.Level = lvl
		case "NL.EVNT":
			e.Tag = val
			sawTag = true
		default:
			e.Fields[key] = val
		}
	}
	if !sawDate || !sawTag {
		return Event{}, fmt.Errorf("netlogger: line missing DATE or NL.EVNT: %q", line)
	}
	return e, nil
}

// ParseLog parses a whole log (one ULM line per row), skipping blank lines.
// It stops at the first malformed line and returns the events parsed so far
// together with the error.
func ParseLog(text string) ([]Event, error) {
	var events []Event
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		e, err := ParseULM(line)
		if err != nil {
			return events, err
		}
		events = append(events, e)
	}
	return events, nil
}

// SortByTime sorts events in ascending timestamp order (stable, so same-time
// events keep their emission order).
func SortByTime(events []Event) {
	sort.SliceStable(events, func(i, j int) bool { return events[i].Time.Before(events[j].Time) })
}
