package netlogger

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestULMRoundTrip(t *testing.T) {
	e := Event{
		Time:  time.Date(2000, 4, 12, 9, 30, 15, 123456000, time.UTC),
		Host:  "cplant-node-3",
		Prog:  "backend-worker",
		Tag:   BELoadEnd,
		Level: 1,
		Fields: map[string]string{
			FieldFrame: "7",
			FieldPE:    "3",
			FieldBytes: "41943040",
		},
	}
	line := e.ULM()
	got, err := ParseULM(line)
	if err != nil {
		t.Fatalf("ParseULM: %v", err)
	}
	if !got.Time.Equal(e.Time) {
		t.Errorf("time = %v, want %v", got.Time, e.Time)
	}
	if got.Host != e.Host || got.Prog != e.Prog || got.Tag != e.Tag || got.Level != e.Level {
		t.Errorf("identity fields differ: %+v", got)
	}
	if got.Frame() != 7 || got.PE() != 3 || got.Bytes() != 41943040 {
		t.Errorf("field accessors: frame=%d pe=%d bytes=%d", got.Frame(), got.PE(), got.Bytes())
	}
}

func TestULMDeterministicFieldOrder(t *testing.T) {
	e := Event{
		Time: time.Unix(0, 0).UTC(), Host: "h", Prog: "p", Tag: "T",
		Fields: map[string]string{"Z": "1", "A": "2", "M": "3"},
	}
	first := e.ULM()
	for i := 0; i < 10; i++ {
		if e.ULM() != first {
			t.Fatal("ULM encoding is not deterministic")
		}
	}
	if !strings.Contains(first, "A=2 M=3 Z=1") {
		t.Errorf("fields not sorted: %q", first)
	}
}

func TestULMSanitizesTokens(t *testing.T) {
	e := Event{
		Time: time.Unix(0, 0).UTC(), Host: "bad host", Prog: "a=b", Tag: "TAG WITH SPACE",
	}
	line := e.ULM()
	got, err := ParseULM(line)
	if err != nil {
		t.Fatalf("sanitized line should parse: %v (%q)", err, line)
	}
	if strings.ContainsAny(got.Host, " =") || strings.ContainsAny(got.Tag, " =") {
		t.Errorf("sanitization failed: %+v", got)
	}
}

func TestULMEmptyFieldsBecomeDash(t *testing.T) {
	e := Event{Time: time.Unix(0, 0).UTC(), Tag: "X"}
	line := e.ULM()
	got, err := ParseULM(line)
	if err != nil {
		t.Fatal(err)
	}
	if got.Host != "-" || got.Prog != "-" {
		t.Errorf("empty host/prog should encode as '-': %+v", got)
	}
}

func TestParseULMErrors(t *testing.T) {
	cases := []string{
		"",
		"no equals sign here",
		"DATE=20000412093015.123456", // missing NL.EVNT
		"NL.EVNT=FOO",                // missing DATE
		"DATE=notadate NL.EVNT=FOO",  // bad date
		"DATE=20000412093015.123456 NL.EVNT=F LVL=x", // bad level
	}
	for _, c := range cases {
		if _, err := ParseULM(c); err == nil {
			t.Errorf("ParseULM(%q) should fail", c)
		}
	}
}

func TestEventAccessorsAbsent(t *testing.T) {
	e := Event{Fields: map[string]string{}}
	if e.Frame() != -1 || e.PE() != -1 || e.Bytes() != 0 {
		t.Errorf("absent fields: frame=%d pe=%d bytes=%d", e.Frame(), e.PE(), e.Bytes())
	}
	e.Fields[FieldFrame] = "xyz"
	if e.Frame() != -1 {
		t.Error("malformed FRAME should return -1")
	}
}

func TestParseLog(t *testing.T) {
	l := New("host", "prog")
	l.Log(BEFrameStart, Int(FieldFrame, 0))
	l.Log(BEFrameEnd, Int(FieldFrame, 0))
	var b strings.Builder
	for _, e := range l.Events() {
		b.WriteString(e.ULM() + "\n\n") // blank lines should be skipped
	}
	events, err := ParseLog(b.String())
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("parsed %d events", len(events))
	}
	if events[0].Tag != BEFrameStart || events[1].Tag != BEFrameEnd {
		t.Errorf("tags = %v %v", events[0].Tag, events[1].Tag)
	}
}

func TestParseLogStopsAtMalformedLine(t *testing.T) {
	text := Event{Time: time.Unix(0, 0).UTC(), Tag: "OK"}.ULM() + "\ngarbage line\n"
	events, err := ParseLog(text)
	if err == nil {
		t.Fatal("expected error")
	}
	if len(events) != 1 {
		t.Fatalf("events before error = %d", len(events))
	}
}

func TestSortByTimeStable(t *testing.T) {
	base := time.Unix(1000, 0).UTC()
	events := []Event{
		{Time: base.Add(2 * time.Second), Tag: "C"},
		{Time: base, Tag: "A1"},
		{Time: base, Tag: "A2"},
		{Time: base.Add(time.Second), Tag: "B"},
	}
	SortByTime(events)
	wantTags := []string{"A1", "A2", "B", "C"}
	for i, w := range wantTags {
		if events[i].Tag != w {
			t.Fatalf("order = %v", events)
		}
	}
}

func TestULMRoundTripProperty(t *testing.T) {
	f := func(frame uint16, pe uint8, bytes uint32, secs uint32) bool {
		e := Event{
			Time:  time.Unix(int64(secs), int64(frame)*1000).UTC(),
			Host:  "host",
			Prog:  "prog",
			Tag:   BEHeavyEnd,
			Level: 1,
			Fields: map[string]string{
				FieldFrame: Int(FieldFrame, int(frame)).Value,
				FieldPE:    Int(FieldPE, int(pe)).Value,
				FieldBytes: Int64(FieldBytes, int64(bytes)).Value,
			},
		}
		got, err := ParseULM(e.ULM())
		if err != nil {
			return false
		}
		return got.Frame() == int(frame) && got.PE() == int(pe) && got.Bytes() == int64(bytes) &&
			got.Time.Equal(e.Time.Truncate(time.Microsecond))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStandardTagLists(t *testing.T) {
	if len(BackEndTags) != 10 {
		t.Errorf("backend tags = %d", len(BackEndTags))
	}
	if len(ViewerTags) != 6 {
		t.Errorf("viewer tags = %d", len(ViewerTags))
	}
	if BackEndTags[0] != BEFrameStart || ViewerTags[len(ViewerTags)-1] != VFrameEnd {
		t.Error("tag ordering does not match the paper's tables")
	}
}

func TestFieldConstructors(t *testing.T) {
	if f := Int("N", 42); f.Key != "N" || f.Value != "42" {
		t.Errorf("Int = %+v", f)
	}
	if f := Int64("B", 1<<40); f.Value != "1099511627776" {
		t.Errorf("Int64 = %+v", f)
	}
	if f := Str("S", "v"); f.Value != "v" {
		t.Errorf("Str = %+v", f)
	}
}
