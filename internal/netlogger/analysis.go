package netlogger

import (
	"fmt"
	"sort"
	"time"

	"visapult/internal/stats"
)

// Phase is one matched START/END interval extracted from an event log: for
// example, BE_LOAD_START to BE_LOAD_END for frame 3 on PE 1.
type Phase struct {
	StartTag string
	EndTag   string
	Host     string
	Prog     string
	PE       int
	Frame    int
	Start    time.Time
	End      time.Time
	Bytes    int64 // from the END event's BYTES field, if present
}

// Duration returns the phase's elapsed time.
func (p Phase) Duration() time.Duration { return p.End.Sub(p.Start) }

// Mbps returns the phase's throughput if a byte count is attached, else 0.
func (p Phase) Mbps() float64 { return stats.Mbps(p.Bytes, p.Duration()) }

// Analysis provides queries over a time-sorted NetLogger event log. It is the
// programmatic equivalent of reading an NLV plot.
type Analysis struct {
	events []Event
	origin time.Time
}

// Analyze builds an Analysis over a copy of events, sorted by time. The
// origin (time zero of the run) is the earliest event timestamp.
func Analyze(events []Event) *Analysis {
	sorted := make([]Event, len(events))
	copy(sorted, events)
	SortByTime(sorted)
	a := &Analysis{events: sorted}
	if len(sorted) > 0 {
		a.origin = sorted[0].Time
	}
	return a
}

// Events returns the sorted events underlying the analysis.
func (a *Analysis) Events() []Event { return a.events }

// Origin returns the timestamp treated as elapsed-time zero.
func (a *Analysis) Origin() time.Time { return a.origin }

// Elapsed converts an absolute event time to elapsed time from the origin.
func (a *Analysis) Elapsed(t time.Time) time.Duration { return t.Sub(a.origin) }

// Span returns the total elapsed time covered by the log.
func (a *Analysis) Span() time.Duration {
	if len(a.events) == 0 {
		return 0
	}
	return a.events[len(a.events)-1].Time.Sub(a.origin)
}

// Tags returns the distinct tags present, in first-appearance order.
func (a *Analysis) Tags() []string {
	seen := make(map[string]bool)
	var tags []string
	for _, e := range a.events {
		if !seen[e.Tag] {
			seen[e.Tag] = true
			tags = append(tags, e.Tag)
		}
	}
	return tags
}

// FilterTag returns the events carrying the given tag.
func (a *Analysis) FilterTag(tag string) []Event {
	var out []Event
	for _, e := range a.events {
		if e.Tag == tag {
			out = append(out, e)
		}
	}
	return out
}

// FilterProg returns the events emitted by the given program.
func (a *Analysis) FilterProg(prog string) []Event {
	var out []Event
	for _, e := range a.events {
		if e.Prog == prog {
			out = append(out, e)
		}
	}
	return out
}

// streamKey identifies one lifeline: a (host, prog, PE) triple, which is how
// the paper's plots separate backend-worker / backend-master / viewer traces.
type streamKey struct {
	host string
	prog string
	pe   int
}

// Phases pairs startTag/endTag events into phases. Pairing is done per
// (host, prog, PE, frame): each start is matched with the first later end
// carrying the same identity. Unmatched starts are dropped.
func (a *Analysis) Phases(startTag, endTag string) []Phase {
	type pending struct {
		ev Event
	}
	open := make(map[string]pending)
	var phases []Phase
	keyOf := func(e Event) string {
		return fmt.Sprintf("%s|%s|%d|%d", e.Host, e.Prog, e.PE(), e.Frame())
	}
	for _, e := range a.events {
		switch e.Tag {
		case startTag:
			open[keyOf(e)] = pending{ev: e}
		case endTag:
			k := keyOf(e)
			st, ok := open[k]
			if !ok {
				continue
			}
			delete(open, k)
			phases = append(phases, Phase{
				StartTag: startTag,
				EndTag:   endTag,
				Host:     e.Host,
				Prog:     e.Prog,
				PE:       e.PE(),
				Frame:    e.Frame(),
				Start:    st.ev.Time,
				End:      e.Time,
				Bytes:    e.Bytes(),
			})
		}
	}
	sort.Slice(phases, func(i, j int) bool { return phases[i].Start.Before(phases[j].Start) })
	return phases
}

// PhaseDurations returns just the durations of the matched phases.
func (a *Analysis) PhaseDurations(startTag, endTag string) []time.Duration {
	phases := a.Phases(startTag, endTag)
	out := make([]time.Duration, len(phases))
	for i, p := range phases {
		out[i] = p.Duration()
	}
	return out
}

// PhaseSeconds returns phase durations as float64 seconds, convenient for
// stats.Summarize.
func (a *Analysis) PhaseSeconds(startTag, endTag string) []float64 {
	phases := a.Phases(startTag, endTag)
	out := make([]float64, len(phases))
	for i, p := range phases {
		out[i] = p.Duration().Seconds()
	}
	return out
}

// PhaseSummary describes one phase type across a whole run.
type PhaseSummary struct {
	StartTag string
	EndTag   string
	Count    int
	Total    time.Duration
	Mean     time.Duration
	Min      time.Duration
	Max      time.Duration
	// CoV is the coefficient of variation of the phase durations; the paper
	// uses load-time variability as the signature of CPU contention on
	// cluster nodes.
	CoV float64
	// AggregateMbps is total bytes moved over total phase time, when the END
	// events carry BYTES fields.
	AggregateMbps float64
}

// SummarizePhase computes a PhaseSummary for the given tag pair.
func (a *Analysis) SummarizePhase(startTag, endTag string) PhaseSummary {
	phases := a.Phases(startTag, endTag)
	s := PhaseSummary{StartTag: startTag, EndTag: endTag, Count: len(phases)}
	if len(phases) == 0 {
		return s
	}
	var totalBytes int64
	secs := make([]float64, len(phases))
	s.Min = phases[0].Duration()
	for i, p := range phases {
		d := p.Duration()
		s.Total += d
		if d < s.Min {
			s.Min = d
		}
		if d > s.Max {
			s.Max = d
		}
		secs[i] = d.Seconds()
		totalBytes += p.Bytes
	}
	s.Mean = s.Total / time.Duration(len(phases))
	s.CoV = stats.CoefficientOfVariation(secs)
	if totalBytes > 0 && s.Total > 0 {
		s.AggregateMbps = stats.Mbps(totalBytes, s.Total)
	}
	return s
}

// FrameSpan returns, per frame number, the elapsed time between the first
// startTag event and the last endTag event for that frame across all PEs —
// the per-timestep wall-clock the paper's figures show.
func (a *Analysis) FrameSpan(startTag, endTag string) map[int]time.Duration {
	firstStart := make(map[int]time.Time)
	lastEnd := make(map[int]time.Time)
	for _, e := range a.events {
		f := e.Frame()
		if f < 0 {
			continue
		}
		switch e.Tag {
		case startTag:
			if t, ok := firstStart[f]; !ok || e.Time.Before(t) {
				firstStart[f] = e.Time
			}
		case endTag:
			if t, ok := lastEnd[f]; !ok || e.Time.After(t) {
				lastEnd[f] = e.Time
			}
		}
	}
	out := make(map[int]time.Duration)
	for f, st := range firstStart {
		if en, ok := lastEnd[f]; ok && !en.Before(st) {
			out[f] = en.Sub(st)
		}
	}
	return out
}

// OverlapFraction measures how much of the log's total span had both an
// open (loadStart..loadEnd) phase and an open (renderStart..renderEnd) phase
// in flight simultaneously, as a fraction of the span. A serial back end
// yields ~0; a fully overlapped back end approaches min(L,R)/max span.
func (a *Analysis) OverlapFraction(loadStart, loadEnd, renderStart, renderEnd string) float64 {
	span := a.Span()
	if span <= 0 {
		return 0
	}
	loads := a.Phases(loadStart, loadEnd)
	renders := a.Phases(renderStart, renderEnd)
	var overlap time.Duration
	for _, l := range loads {
		for _, r := range renders {
			s := l.Start
			if r.Start.After(s) {
				s = r.Start
			}
			e := l.End
			if r.End.Before(e) {
				e = r.End
			}
			if e.After(s) {
				overlap += e.Sub(s)
			}
		}
	}
	frac := overlap.Seconds() / span.Seconds()
	if frac > 1 {
		frac = 1
	}
	return frac
}

// Lifeline is a single trace in an NLV plot: one (host, prog, PE) stream with
// its ordered events.
type Lifeline struct {
	Host   string
	Prog   string
	PE     int
	Events []Event
}

// Lifelines groups events into per-stream lifelines ordered by prog, host,
// then PE, mirroring the legend grouping in the paper's figures
// (backend-worker, backend-master, viewer-master, viewer-worker).
func (a *Analysis) Lifelines() []Lifeline {
	byKey := make(map[streamKey][]Event)
	var keys []streamKey
	for _, e := range a.events {
		k := streamKey{host: e.Host, prog: e.Prog, pe: e.PE()}
		if _, ok := byKey[k]; !ok {
			keys = append(keys, k)
		}
		byKey[k] = append(byKey[k], e)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].prog != keys[j].prog {
			return keys[i].prog < keys[j].prog
		}
		if keys[i].host != keys[j].host {
			return keys[i].host < keys[j].host
		}
		return keys[i].pe < keys[j].pe
	})
	out := make([]Lifeline, 0, len(keys))
	for _, k := range keys {
		out = append(out, Lifeline{Host: k.host, Prog: k.prog, PE: k.pe, Events: byKey[k]})
	}
	return out
}
