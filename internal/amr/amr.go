// Package amr builds adaptive-mesh-refinement grid hierarchies over a scalar
// volume and converts them to line-segment geometry.
//
// The paper's combustion dataset comes from an AMR code; Figure 3 shows the
// Visapult viewer rendering the adaptive, hierarchical grids (as vector line
// geometry) simultaneously with the volume rendering. Here the hierarchy is
// reconstructed from the data itself: boxes are refined wherever the field
// varies strongly, which reproduces grids that hug the reaction front, and
// the resulting boxes are turned into the line segments the viewer's scene
// graph draws and the back end ships as part of the "heavy payload".
package amr

import (
	"fmt"
	"math"

	"visapult/internal/volume"
)

// Box is one AMR patch: a region at a given refinement level.
type Box struct {
	Level  int
	Region volume.Region
}

// Hierarchy is a multi-level AMR grid hierarchy.
type Hierarchy struct {
	// Levels[0] holds the coarsest boxes; each finer level refines cells of
	// the previous one.
	Levels [][]Box
}

// Config controls hierarchy construction.
type Config struct {
	// MaxLevels is the number of refinement levels to build (default 3).
	MaxLevels int
	// CoarseBoxes is the number of boxes along each axis at level 0
	// (default 4, i.e. 4x4x4 = 64 candidate coarse boxes).
	CoarseBoxes int
	// RefineThreshold is the value-range threshold above which a box is
	// subdivided (default 0.2): a box whose (max-min) exceeds it is refined.
	RefineThreshold float64
	// MinBoxSize stops refinement when a box edge would fall below this many
	// voxels (default 4).
	MinBoxSize int
}

func (c Config) withDefaults() Config {
	if c.MaxLevels <= 0 {
		c.MaxLevels = 3
	}
	if c.CoarseBoxes <= 0 {
		c.CoarseBoxes = 4
	}
	if c.RefineThreshold <= 0 {
		c.RefineThreshold = 0.2
	}
	if c.MinBoxSize <= 0 {
		c.MinBoxSize = 4
	}
	return c
}

// Build constructs an AMR hierarchy over v: the volume is tiled with coarse
// boxes, and any box whose value range exceeds the refinement threshold is
// recursively split in half along each axis (producing up to 8 children) for
// up to MaxLevels levels.
func Build(v *volume.Volume, cfg Config) *Hierarchy {
	cfg = cfg.withDefaults()
	h := &Hierarchy{Levels: make([][]Box, 0, cfg.MaxLevels)}

	coarse := volume.Blocks(v.NX, v.NY, v.NZ, cfg.CoarseBoxes, cfg.CoarseBoxes, cfg.CoarseBoxes)
	level0 := make([]Box, 0, len(coarse))
	for _, r := range coarse {
		level0 = append(level0, Box{Level: 0, Region: r})
	}
	h.Levels = append(h.Levels, level0)

	current := level0
	for level := 1; level < cfg.MaxLevels; level++ {
		var next []Box
		for _, b := range current {
			if !needsRefinement(v, b.Region, cfg.RefineThreshold) {
				continue
			}
			for _, child := range split8(b.Region, cfg.MinBoxSize) {
				next = append(next, Box{Level: level, Region: child})
			}
		}
		if len(next) == 0 {
			break
		}
		h.Levels = append(h.Levels, next)
		current = next
	}
	return h
}

// needsRefinement reports whether the value range inside the region exceeds
// the threshold.
func needsRefinement(v *volume.Volume, r volume.Region, threshold float64) bool {
	var min, max float32
	first := true
	for z := r.Z0; z < r.Z1; z++ {
		for y := r.Y0; y < r.Y1; y++ {
			base := v.Index(r.X0, y, z)
			for x := 0; x < r.X1-r.X0; x++ {
				val := v.Data[base+x]
				if first {
					min, max = val, val
					first = false
					continue
				}
				if val < min {
					min = val
				}
				if val > max {
					max = val
				}
				if float64(max-min) > threshold {
					return true
				}
			}
		}
	}
	return float64(max-min) > threshold
}

// split8 splits a region in half along each axis whose extent allows it,
// producing up to 8 children. Axes shorter than 2*minSize are not split.
func split8(r volume.Region, minSize int) []volume.Region {
	splitAxis := func(lo, hi int) [][2]int {
		if hi-lo >= 2*minSize {
			mid := (lo + hi) / 2
			return [][2]int{{lo, mid}, {mid, hi}}
		}
		return [][2]int{{lo, hi}}
	}
	xs := splitAxis(r.X0, r.X1)
	ys := splitAxis(r.Y0, r.Y1)
	zs := splitAxis(r.Z0, r.Z1)
	var out []volume.Region
	for _, xr := range xs {
		for _, yr := range ys {
			for _, zr := range zs {
				out = append(out, volume.Region{
					X0: xr[0], X1: xr[1],
					Y0: yr[0], Y1: yr[1],
					Z0: zr[0], Z1: zr[1],
				})
			}
		}
	}
	return out
}

// NumLevels returns the number of levels actually built.
func (h *Hierarchy) NumLevels() int { return len(h.Levels) }

// NumBoxes returns the total number of boxes across all levels.
func (h *Hierarchy) NumBoxes() int {
	n := 0
	for _, lv := range h.Levels {
		n += len(lv)
	}
	return n
}

// Boxes returns every box in the hierarchy, coarsest level first.
func (h *Hierarchy) Boxes() []Box {
	var out []Box
	for _, lv := range h.Levels {
		out = append(out, lv...)
	}
	return out
}

// BoxesAt returns the boxes at the given level (nil if the level was not
// built).
func (h *Hierarchy) BoxesAt(level int) []Box {
	if level < 0 || level >= len(h.Levels) {
		return nil
	}
	return h.Levels[level]
}

// Point3 is a point in voxel coordinates.
type Point3 struct {
	X, Y, Z float32
}

// Segment is a line segment between two points, tagged with its AMR level so
// the viewer can color levels differently.
type Segment struct {
	A, B  Point3
	Level int
}

// WireframeSegments converts the hierarchy's boxes into the 12-edge wireframe
// line segments the Visapult viewer renders as the grid overlay. This is the
// "vector geometry (line segments) representing the adaptive grid" of
// Figure 3.
func (h *Hierarchy) WireframeSegments() []Segment {
	var out []Segment
	for _, b := range h.Boxes() {
		out = append(out, BoxEdges(b)...)
	}
	return out
}

// BoxEdges returns the 12 edges of one box.
func BoxEdges(b Box) []Segment {
	r := b.Region
	x0, y0, z0 := float32(r.X0), float32(r.Y0), float32(r.Z0)
	x1, y1, z1 := float32(r.X1), float32(r.Y1), float32(r.Z1)
	corners := [8]Point3{
		{x0, y0, z0}, {x1, y0, z0}, {x1, y1, z0}, {x0, y1, z0},
		{x0, y0, z1}, {x1, y0, z1}, {x1, y1, z1}, {x0, y1, z1},
	}
	edges := [12][2]int{
		{0, 1}, {1, 2}, {2, 3}, {3, 0}, // bottom
		{4, 5}, {5, 6}, {6, 7}, {7, 4}, // top
		{0, 4}, {1, 5}, {2, 6}, {3, 7}, // verticals
	}
	out := make([]Segment, 0, 12)
	for _, e := range edges {
		out = append(out, Segment{A: corners[e[0]], B: corners[e[1]], Level: b.Level})
	}
	return out
}

// GeometryBytes estimates the wire size of the hierarchy's line geometry
// (two 3-float points plus a level int per segment), which the paper notes is
// "typically tens of kilobytes for the AMR grid data per timestep".
func (h *Hierarchy) GeometryBytes() int64 {
	const perSegment = 2*3*4 + 4
	return int64(len(h.WireframeSegments())) * perSegment
}

// RefinedFraction returns, for a given level, the fraction of the domain
// volume covered by that level's boxes — a measure of how focused the
// refinement is (near 0 means the level hugs small features).
func (h *Hierarchy) RefinedFraction(level int, v *volume.Volume) float64 {
	boxes := h.BoxesAt(level)
	if len(boxes) == 0 || v.Len() == 0 {
		return 0
	}
	covered := 0
	for _, b := range boxes {
		covered += b.Region.Voxels()
	}
	f := float64(covered) / float64(v.Len())
	return math.Min(f, 1)
}

// String implements fmt.Stringer.
func (h *Hierarchy) String() string {
	return fmt.Sprintf("AMR hierarchy: %d levels, %d boxes, %d segments",
		h.NumLevels(), h.NumBoxes(), len(h.WireframeSegments()))
}
