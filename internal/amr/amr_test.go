package amr

import (
	"strings"
	"testing"

	"visapult/internal/datagen"
	"visapult/internal/volume"
)

func flameVolume() *volume.Volume {
	c := datagen.NewCombustion(datagen.CombustionConfig{NX: 32, NY: 32, NZ: 32, Timesteps: 10, Seed: 4})
	return c.Generate(5)
}

func TestBuildOnUniformVolumeDoesNotRefine(t *testing.T) {
	v := volume.MustNew(32, 32, 32)
	v.Fill(0.5)
	h := Build(v, Config{})
	if h.NumLevels() != 1 {
		t.Errorf("uniform volume produced %d levels, want 1", h.NumLevels())
	}
	if len(h.BoxesAt(0)) != 64 {
		t.Errorf("coarse boxes = %d, want 64", len(h.BoxesAt(0)))
	}
}

func TestBuildRefinesNearFront(t *testing.T) {
	v := flameVolume()
	h := Build(v, Config{MaxLevels: 3, CoarseBoxes: 4, RefineThreshold: 0.2, MinBoxSize: 2})
	if h.NumLevels() < 2 {
		t.Fatalf("flame volume should refine: levels = %d", h.NumLevels())
	}
	// The refined levels should cover a minority of the domain (refinement
	// hugs the front, it does not blanket the volume).
	frac := h.RefinedFraction(1, v)
	if frac <= 0 || frac >= 1 {
		t.Errorf("level-1 coverage fraction = %v, want in (0,1)", frac)
	}
	if h.NumBoxes() <= 64 {
		t.Errorf("total boxes = %d, should exceed the 64 coarse boxes", h.NumBoxes())
	}
}

func TestBuildLevelZeroTilesVolume(t *testing.T) {
	v := flameVolume()
	h := Build(v, Config{CoarseBoxes: 4})
	var regions []volume.Region
	for _, b := range h.BoxesAt(0) {
		regions = append(regions, b.Region)
	}
	if !volume.CoverageComplete(v.NX, v.NY, v.NZ, regions) {
		t.Error("level-0 boxes must tile the volume")
	}
}

func TestBuildRespectsMaxLevels(t *testing.T) {
	v := flameVolume()
	h := Build(v, Config{MaxLevels: 2, MinBoxSize: 1, RefineThreshold: 0.05})
	if h.NumLevels() > 2 {
		t.Errorf("levels = %d, want <= 2", h.NumLevels())
	}
}

func TestBuildDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.MaxLevels != 3 || cfg.CoarseBoxes != 4 || cfg.RefineThreshold != 0.2 || cfg.MinBoxSize != 4 {
		t.Errorf("defaults = %+v", cfg)
	}
}

func TestChildrenNestInsideParents(t *testing.T) {
	v := flameVolume()
	h := Build(v, Config{MaxLevels: 3, MinBoxSize: 2})
	if h.NumLevels() < 2 {
		t.Skip("no refinement occurred")
	}
	for _, child := range h.BoxesAt(1) {
		contained := false
		cx, cy, cz := child.Region.Center()
		for _, parent := range h.BoxesAt(0) {
			if parent.Region.Contains(int(cx), int(cy), int(cz)) {
				contained = true
				break
			}
		}
		if !contained {
			t.Fatalf("child box %v not inside any level-0 box", child.Region)
		}
	}
}

func TestSplit8RespectsMinSize(t *testing.T) {
	r := volume.Region{X1: 16, Y1: 16, Z1: 3}
	children := split8(r, 4)
	// Z extent 3 < 2*4 so Z is not split: 2x2x1 = 4 children.
	if len(children) != 4 {
		t.Fatalf("children = %d, want 4", len(children))
	}
	var back []volume.Region
	back = append(back, children...)
	if !volume.CoverageComplete(16, 16, 3, offsetRegions(back)) {
		t.Error("children must tile the parent")
	}
}

// offsetRegions is the identity here (regions are already absolute); kept as
// a helper to make the intent of the coverage check explicit.
func offsetRegions(rs []volume.Region) []volume.Region { return rs }

func TestSplit8TooSmallReturnsSelf(t *testing.T) {
	r := volume.Region{X1: 4, Y1: 4, Z1: 4}
	children := split8(r, 4)
	if len(children) != 1 || children[0] != r {
		t.Errorf("small region should not split: %v", children)
	}
}

func TestBoxEdges(t *testing.T) {
	b := Box{Level: 2, Region: volume.Region{X0: 1, X1: 3, Y0: 1, Y1: 3, Z0: 1, Z1: 3}}
	edges := BoxEdges(b)
	if len(edges) != 12 {
		t.Fatalf("edges = %d", len(edges))
	}
	for _, e := range edges {
		if e.Level != 2 {
			t.Error("edge should carry box level")
		}
		if e.A == e.B {
			t.Error("degenerate edge")
		}
	}
	// Total edge length of a 2x2x2 cube wireframe is 12 * 2 = 24.
	var total float32
	for _, e := range edges {
		dx := e.B.X - e.A.X
		dy := e.B.Y - e.A.Y
		dz := e.B.Z - e.A.Z
		if dx < 0 {
			dx = -dx
		}
		if dy < 0 {
			dy = -dy
		}
		if dz < 0 {
			dz = -dz
		}
		total += dx + dy + dz
	}
	if total != 24 {
		t.Errorf("total manhattan edge length = %v, want 24", total)
	}
}

func TestWireframeSegmentsAndGeometryBytes(t *testing.T) {
	v := flameVolume()
	h := Build(v, Config{MaxLevels: 3, MinBoxSize: 2})
	segs := h.WireframeSegments()
	if len(segs) != 12*h.NumBoxes() {
		t.Errorf("segments = %d, want %d", len(segs), 12*h.NumBoxes())
	}
	if h.GeometryBytes() != int64(len(segs))*28 {
		t.Errorf("geometry bytes = %d", h.GeometryBytes())
	}
	// The paper says the grid geometry is "tens of kilobytes" per timestep:
	// confirm the synthetic hierarchy is in the same rough class (well under
	// a megabyte, far smaller than the 128 KB volume itself at this size).
	if h.GeometryBytes() <= 0 || h.GeometryBytes() > 1<<20 {
		t.Errorf("geometry bytes = %d, want small overlay geometry", h.GeometryBytes())
	}
}

func TestBoxesAtOutOfRange(t *testing.T) {
	h := Build(volume.MustNew(8, 8, 8), Config{})
	if h.BoxesAt(-1) != nil || h.BoxesAt(10) != nil {
		t.Error("out-of-range levels should return nil")
	}
}

func TestHierarchyString(t *testing.T) {
	h := Build(flameVolume(), Config{})
	s := h.String()
	if !strings.Contains(s, "levels") || !strings.Contains(s, "boxes") {
		t.Errorf("string = %q", s)
	}
}

func TestRefinedFractionEdgeCases(t *testing.T) {
	h := Build(volume.MustNew(8, 8, 8), Config{})
	if h.RefinedFraction(5, volume.MustNew(8, 8, 8)) != 0 {
		t.Error("missing level should have 0 coverage")
	}
	if h.RefinedFraction(0, volume.MustNew(8, 8, 8)) != 1 {
		t.Error("level 0 should cover the whole volume")
	}
}
