// Package wire implements the custom TCP-based protocol the Visapult back
// end and viewer speak to each other (section 3.4 and Appendix A of the
// paper).
//
// Per timestep, every back-end processing element sends the viewer two
// payloads:
//
//   - a "light payload": visualization metadata — texture size, bytes per
//     pixel, and the geometric placement of the slab-center quad in the 3-D
//     scene. The paper notes this is on the order of 256 bytes.
//   - a "heavy payload": the visualization data proper — the rendered slab
//     texture, optional AMR grid line segments, and an optional elevation
//     (quadmesh) map. Typically 0.25-1 MB per texture, tens of kilobytes of
//     geometry.
//
// The viewer may send small control messages upstream, most importantly the
// best view axis computed per frame (section 3.3), which the back end uses to
// pick an X-, Y- or Z-axis-aligned slab decomposition.
//
// Payloads travel inside length-prefixed, CRC-protected frames (framing.go),
// optionally over several sockets striped into one logical stream
// (stripe.go).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"visapult/internal/amr"
	"visapult/internal/volume"
)

// Protocol errors.
var (
	// ErrChecksum reports a frame whose payload failed CRC validation.
	ErrChecksum = errors.New("wire: payload checksum mismatch")
	// ErrTruncated reports a payload shorter than its fixed header requires.
	ErrTruncated = errors.New("wire: truncated payload")
	// ErrBadMagic reports a stream that does not start with the protocol magic.
	ErrBadMagic = errors.New("wire: bad protocol magic")
)

// LightPayload is the per-frame visualization metadata one back-end PE sends
// ahead of its heavy payload (Table 1: V_LIGHTPAYLOAD_*).
type LightPayload struct {
	// Frame is the timestep this payload belongs to.
	Frame int
	// PE is the back-end processing element rank that produced it.
	PE int
	// SlabIndex and SlabCount locate the PE's slab in the decomposition.
	SlabIndex int
	SlabCount int
	// Axis is the slab decomposition axis in use for this frame.
	Axis volume.Axis
	// TexWidth, TexHeight and BytesPerPixel describe the texture that will
	// arrive in the heavy payload.
	TexWidth      int
	TexHeight     int
	BytesPerPixel int
	// CenterX/Y/Z, Width, Height and Depth place the slab-center quad in the
	// 3-D scene, in voxel coordinates of the source volume.
	CenterX, CenterY, CenterZ float64
	Width, Height, Depth      float64
	// HeavyBytes announces the size of the heavy payload that follows, so the
	// viewer can report transfer progress.
	HeavyBytes int64
	// GridSegments is the number of AMR wireframe segments in the heavy
	// payload (zero when the frame carries no grid geometry).
	GridSegments int
	// HasElevation is true when the heavy payload carries a quadmesh
	// elevation map (the IBRAVR depth extension).
	HasElevation bool
}

// lightFixedSize is the encoded size of a LightPayload: eight 32-bit fields,
// six 64-bit geometry floats, one 64-bit byte count, one 32-bit segment
// count, one flag byte.
const lightFixedSize = 8*4 + 6*8 + 8 + 4 + 1

// MarshalBinary encodes the light payload into the compact fixed-size form
// sent on the wire.
func (lp *LightPayload) MarshalBinary() ([]byte, error) {
	return lp.AppendBinary(make([]byte, 0, lightFixedSize))
}

// AppendBinary appends the wire form to buf and returns the extended slice,
// so hot paths (the v2 dispatch slab frames) can encode into pooled buffers
// without a per-payload allocation.
func (lp *LightPayload) AppendBinary(buf []byte) ([]byte, error) {
	start := len(buf)
	var scratch [8]byte
	put32 := func(v int) {
		binary.BigEndian.PutUint32(scratch[:4], uint32(int32(v)))
		buf = append(buf, scratch[:4]...)
	}
	putF := func(v float64) {
		binary.BigEndian.PutUint64(scratch[:], math.Float64bits(v))
		buf = append(buf, scratch[:]...)
	}
	put32(lp.Frame)
	put32(lp.PE)
	put32(lp.SlabIndex)
	put32(lp.SlabCount)
	put32(int(lp.Axis))
	put32(lp.TexWidth)
	put32(lp.TexHeight)
	put32(lp.BytesPerPixel)
	putF(lp.CenterX)
	putF(lp.CenterY)
	putF(lp.CenterZ)
	putF(lp.Width)
	putF(lp.Height)
	putF(lp.Depth)
	binary.BigEndian.PutUint64(scratch[:], uint64(lp.HeavyBytes))
	buf = append(buf, scratch[:]...)
	put32(lp.GridSegments)
	var elev byte
	if lp.HasElevation {
		elev = 1
	}
	buf = append(buf, elev)
	if len(buf)-start != lightFixedSize {
		return nil, fmt.Errorf("wire: internal size mismatch (%d != %d)", len(buf)-start, lightFixedSize)
	}
	return buf, nil
}

// UnmarshalBinary decodes a light payload previously produced by
// MarshalBinary.
func (lp *LightPayload) UnmarshalBinary(data []byte) error {
	if len(data) < lightFixedSize {
		return fmt.Errorf("%w: light payload %d bytes, need %d", ErrTruncated, len(data), lightFixedSize)
	}
	off := 0
	get32 := func() int {
		v := int(int32(binary.BigEndian.Uint32(data[off:])))
		off += 4
		return v
	}
	getF := func() float64 {
		v := math.Float64frombits(binary.BigEndian.Uint64(data[off:]))
		off += 8
		return v
	}
	lp.Frame = get32()
	lp.PE = get32()
	lp.SlabIndex = get32()
	lp.SlabCount = get32()
	lp.Axis = volume.Axis(get32())
	lp.TexWidth = get32()
	lp.TexHeight = get32()
	lp.BytesPerPixel = get32()
	lp.CenterX = getF()
	lp.CenterY = getF()
	lp.CenterZ = getF()
	lp.Width = getF()
	lp.Height = getF()
	lp.Depth = getF()
	lp.HeavyBytes = int64(binary.BigEndian.Uint64(data[off:]))
	off += 8
	lp.GridSegments = get32()
	lp.HasElevation = data[off] == 1
	return nil
}

// WireSize returns the encoded size of the light payload in bytes. The paper
// quotes "on the order of 256 bytes"; this implementation uses a fixed 101.
func (lp *LightPayload) WireSize() int64 { return lightFixedSize }

// segmentWireSize is the encoded size of one AMR wireframe segment: two
// float32 endpoints (24 bytes) plus a 32-bit refinement level.
const segmentWireSize = 6*4 + 4

// HeavyPayload is the per-frame visualization data one back-end PE sends: the
// rendered slab texture plus optional grid geometry and elevation map
// (Table 1: V_HEAVYPAYLOAD_*).
type HeavyPayload struct {
	// Frame and PE identify the timestep and producer, and must match the
	// preceding light payload.
	Frame int
	PE    int
	// TexWidth and TexHeight are the texture dimensions in pixels.
	TexWidth  int
	TexHeight int
	// Texture is the rendered slab image as packed RGBA, 4 bytes per pixel.
	Texture []byte
	// Grid is the AMR hierarchy wireframe rendered alongside the volume
	// (Figure 3), as world-space line segments.
	Grid []amr.Segment
	// Elevation is the optional quadmesh elevation map of the IBRAVR depth
	// extension, one float per texture pixel, or nil.
	Elevation []float32
}

// WireSize returns the number of payload bytes the heavy payload occupies on
// the wire (excluding frame headers).
func (hp *HeavyPayload) WireSize() int64 {
	n := int64(6 * 4) // fixed header: frame, pe, w, h, grid count, elev count
	n += int64(len(hp.Texture))
	n += int64(len(hp.Grid)) * segmentWireSize
	n += int64(len(hp.Elevation)) * 4
	return n
}

// MarshalBinary encodes the heavy payload.
func (hp *HeavyPayload) MarshalBinary() ([]byte, error) {
	if hp.TexWidth < 0 || hp.TexHeight < 0 {
		return nil, fmt.Errorf("wire: negative texture dimensions %dx%d", hp.TexWidth, hp.TexHeight)
	}
	if want := hp.TexWidth * hp.TexHeight * 4; len(hp.Texture) != want {
		return nil, fmt.Errorf("wire: texture is %d bytes, want %d for %dx%d RGBA",
			len(hp.Texture), want, hp.TexWidth, hp.TexHeight)
	}
	buf := make([]byte, 0, hp.WireSize())
	var w32 [4]byte
	app32 := func(v int) {
		binary.BigEndian.PutUint32(w32[:], uint32(int32(v)))
		buf = append(buf, w32[:]...)
	}
	app32(hp.Frame)
	app32(hp.PE)
	app32(hp.TexWidth)
	app32(hp.TexHeight)
	app32(len(hp.Grid))
	app32(len(hp.Elevation))
	buf = append(buf, hp.Texture...)
	appF := func(v float32) {
		binary.BigEndian.PutUint32(w32[:], math.Float32bits(v))
		buf = append(buf, w32[:]...)
	}
	for _, s := range hp.Grid {
		appF(s.A.X)
		appF(s.A.Y)
		appF(s.A.Z)
		appF(s.B.X)
		appF(s.B.Y)
		appF(s.B.Z)
		app32(s.Level)
	}
	for _, e := range hp.Elevation {
		binary.BigEndian.PutUint32(w32[:], math.Float32bits(e))
		buf = append(buf, w32[:]...)
	}
	return buf, nil
}

// UnmarshalBinary decodes a heavy payload previously produced by
// MarshalBinary.
func (hp *HeavyPayload) UnmarshalBinary(data []byte) error {
	const hdr = 6 * 4
	if len(data) < hdr {
		return fmt.Errorf("%w: heavy payload %d bytes, need at least %d", ErrTruncated, len(data), hdr)
	}
	off := 0
	get32 := func() int {
		v := int(int32(binary.BigEndian.Uint32(data[off:])))
		off += 4
		return v
	}
	hp.Frame = get32()
	hp.PE = get32()
	hp.TexWidth = get32()
	hp.TexHeight = get32()
	nGrid := get32()
	nElev := get32()
	if hp.TexWidth < 0 || hp.TexHeight < 0 || nGrid < 0 || nElev < 0 {
		return fmt.Errorf("wire: heavy payload header has negative counts")
	}
	// The counts are untrusted until checked against len(data); do the size
	// arithmetic in 64 bits so a hostile header cannot overflow int into a
	// negative slice bound. A texture needs 4 bytes per pixel, so any pixel
	// count beyond len(data) is already truncated — rejecting it here keeps
	// the 4x product below from overflowing too.
	texPixels := int64(hp.TexWidth) * int64(hp.TexHeight)
	if texPixels > int64(len(data)) {
		return fmt.Errorf("%w: heavy payload %d bytes, header promises %d-pixel texture", ErrTruncated, len(data), texPixels)
	}
	texBytes := int(texPixels) * 4
	need := int64(hdr) + int64(texBytes) + int64(nGrid)*segmentWireSize + int64(nElev)*4
	if int64(len(data)) < need {
		return fmt.Errorf("%w: heavy payload %d bytes, header promises %d", ErrTruncated, len(data), need)
	}
	hp.Texture = append([]byte(nil), data[off:off+texBytes]...)
	off += texBytes
	getF := func() float32 {
		v := math.Float32frombits(binary.BigEndian.Uint32(data[off:]))
		off += 4
		return v
	}
	hp.Grid = make([]amr.Segment, nGrid)
	for i := range hp.Grid {
		hp.Grid[i].A = amr.Point3{X: getF(), Y: getF(), Z: getF()}
		hp.Grid[i].B = amr.Point3{X: getF(), Y: getF(), Z: getF()}
		hp.Grid[i].Level = get32()
	}
	if nElev > 0 {
		hp.Elevation = make([]float32, nElev)
		for i := range hp.Elevation {
			hp.Elevation[i] = math.Float32frombits(binary.BigEndian.Uint32(data[off:]))
			off += 4
		}
	} else {
		hp.Elevation = nil
	}
	return nil
}

// Config is exchanged once at connection setup (the "Exchange Config Data"
// step of Figure 18): the back end announces the run geometry so the viewer
// can size its scene graph and per-PE service threads.
type Config struct {
	// PEs is the number of back-end processing elements that will connect.
	PEs int
	// Timesteps is the number of data frames the run will produce.
	Timesteps int
	// VolumeNX/NY/NZ are the source volume dimensions.
	VolumeNX, VolumeNY, VolumeNZ int
	// Axis is the initial slab decomposition axis.
	Axis volume.Axis
	// Dataset is a human-readable dataset name carried for logging.
	Dataset string
}

// MarshalBinary encodes the config message.
func (c *Config) MarshalBinary() ([]byte, error) {
	name := []byte(c.Dataset)
	buf := make([]byte, 7*4+len(name))
	fields := []int{c.PEs, c.Timesteps, c.VolumeNX, c.VolumeNY, c.VolumeNZ, int(c.Axis), len(name)}
	for i, v := range fields {
		binary.BigEndian.PutUint32(buf[i*4:], uint32(int32(v)))
	}
	copy(buf[7*4:], name)
	return buf, nil
}

// UnmarshalBinary decodes a config message.
func (c *Config) UnmarshalBinary(data []byte) error {
	if len(data) < 7*4 {
		return fmt.Errorf("%w: config %d bytes, need %d", ErrTruncated, len(data), 7*4)
	}
	get := func(i int) int { return int(int32(binary.BigEndian.Uint32(data[i*4:]))) }
	c.PEs = get(0)
	c.Timesteps = get(1)
	c.VolumeNX = get(2)
	c.VolumeNY = get(3)
	c.VolumeNZ = get(4)
	c.Axis = volume.Axis(get(5))
	nameLen := get(6)
	if nameLen < 0 || 7*4+nameLen > len(data) {
		return fmt.Errorf("%w: config name length %d exceeds payload", ErrTruncated, nameLen)
	}
	c.Dataset = string(data[7*4 : 7*4+nameLen])
	return nil
}

// AxisHint is the viewer-to-back-end control message carrying the best view
// axis for the next frame (section 3.3: "the Visapult viewer computes the
// best view axis, and transmits this information to the back end").
type AxisHint struct {
	// Frame is the frame from which the hint was computed.
	Frame int
	// Axis is the axis whose slab decomposition best matches the current
	// view direction.
	Axis volume.Axis
}

// MarshalBinary encodes the axis hint.
func (a *AxisHint) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 8)
	binary.BigEndian.PutUint32(buf, uint32(int32(a.Frame)))
	binary.BigEndian.PutUint32(buf[4:], uint32(int32(a.Axis)))
	return buf, nil
}

// UnmarshalBinary decodes an axis hint.
func (a *AxisHint) UnmarshalBinary(data []byte) error {
	if len(data) < 8 {
		return fmt.Errorf("%w: axis hint %d bytes, need 8", ErrTruncated, len(data))
	}
	a.Frame = int(int32(binary.BigEndian.Uint32(data)))
	a.Axis = volume.Axis(int32(binary.BigEndian.Uint32(data[4:])))
	return nil
}
