package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// The paper's viewer receives data "over multiple simultaneous network
// connections (implemented with a custom TCP-based protocol over striped
// sockets)". A Stripe reproduces that transport: one logical byte stream
// carried over N parallel sockets. The writer chops the stream into
// sequence-numbered chunks distributed round-robin over the sockets; the
// reader pulls chunks from every socket concurrently and reassembles them in
// sequence order. Striping lets a single logical connection fill a
// long-fat-pipe WAN when one TCP stream's window would not.

// DefaultChunkSize is the striping granularity used when none is specified.
const DefaultChunkSize = 64 << 10

// stripeMagic opens the per-socket handshake of a striped dial.
var stripeMagic = [8]byte{'V', 'S', 'P', 'S', 'T', 'R', 'P', '1'}

// stripeGroupCounter disambiguates stripe groups originating from the same
// process.
var stripeGroupCounter atomic.Uint32

// chunk is one striped unit in flight between writer and reader goroutines.
type chunk struct {
	seq  uint64
	data []byte
	eof  bool
}

// Stripe is a logical bidirectional byte stream carried over several
// underlying connections. It implements io.ReadWriteCloser and is intended to
// be wrapped by NewConn. A Stripe supports one concurrent reader and one
// concurrent writer, matching the Conn contract.
type Stripe struct {
	conns     []io.ReadWriteCloser
	chunkSize int

	// Write side.
	wmu    sync.Mutex
	wseq   uint64
	wq     []chan chunk
	wg     sync.WaitGroup
	werrMu sync.Mutex
	werr   error
	closed bool

	// Read side.
	readOnce sync.Once
	rch      chan chunk
	rerrCh   chan error
	rbuf     map[uint64][]byte
	rnext    uint64
	rpending []byte
	reof     int // number of sockets that reached EOF
	rerr     error
}

// NewStripe builds a Stripe over the given connections. chunkSize <= 0 uses
// DefaultChunkSize. The connection order must match on both ends only in
// count, not in index: reassembly is driven entirely by sequence numbers.
func NewStripe(conns []io.ReadWriteCloser, chunkSize int) (*Stripe, error) {
	if len(conns) == 0 {
		return nil, errors.New("wire: stripe needs at least one connection")
	}
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	s := &Stripe{
		conns:     conns,
		chunkSize: chunkSize,
		wq:        make([]chan chunk, len(conns)),
		rch:       make(chan chunk, 4*len(conns)),
		rerrCh:    make(chan error, len(conns)),
		rbuf:      make(map[uint64][]byte),
	}
	for i := range conns {
		s.wq[i] = make(chan chunk, 4)
		s.wg.Add(1)
		go s.writeLoop(i)
	}
	return s, nil
}

// Lanes returns the number of underlying connections.
func (s *Stripe) Lanes() int { return len(s.conns) }

// writeLoop drains one socket's chunk queue, preserving per-socket order.
func (s *Stripe) writeLoop(i int) {
	defer s.wg.Done()
	w := s.conns[i]
	var hdr [12]byte
	for c := range s.wq[i] {
		binary.BigEndian.PutUint64(hdr[:8], c.seq)
		if c.eof {
			binary.BigEndian.PutUint32(hdr[8:], 0xFFFFFFFF)
			if _, err := w.Write(hdr[:]); err != nil {
				s.setWriteErr(err)
			}
			continue
		}
		binary.BigEndian.PutUint32(hdr[8:], uint32(len(c.data)))
		if _, err := w.Write(hdr[:]); err != nil {
			s.setWriteErr(err)
			continue
		}
		if _, err := w.Write(c.data); err != nil {
			s.setWriteErr(err)
		}
	}
}

func (s *Stripe) setWriteErr(err error) {
	s.werrMu.Lock()
	if s.werr == nil {
		s.werr = err
	}
	s.werrMu.Unlock()
}

func (s *Stripe) writeErr() error {
	s.werrMu.Lock()
	defer s.werrMu.Unlock()
	return s.werr
}

// Write chops p into chunks and distributes them round-robin over the
// underlying connections. It returns len(p) unless a previous chunk already
// failed to send.
func (s *Stripe) Write(p []byte) (int, error) {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	if s.closed {
		return 0, errors.New("wire: write on closed stripe")
	}
	if err := s.writeErr(); err != nil {
		return 0, err
	}
	total := len(p)
	for len(p) > 0 {
		n := s.chunkSize
		if n > len(p) {
			n = len(p)
		}
		data := make([]byte, n)
		copy(data, p[:n])
		lane := int(s.wseq % uint64(len(s.conns)))
		s.wq[lane] <- chunk{seq: s.wseq, data: data}
		s.wseq++
		p = p[n:]
	}
	return total, nil
}

// readLoop pulls chunks off one socket and forwards them to the reassembly
// channel until EOF or error.
func (s *Stripe) readLoop(i int) {
	r := s.conns[i]
	var hdr [12]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, net.ErrClosed) {
				s.rerrCh <- io.EOF
			} else {
				s.rerrCh <- err
			}
			return
		}
		seq := binary.BigEndian.Uint64(hdr[:8])
		n := binary.BigEndian.Uint32(hdr[8:])
		if n == 0xFFFFFFFF {
			// End-of-stream marker for the whole stripe.
			s.rerrCh <- io.EOF
			return
		}
		if n > uint32(maxFramePayload) {
			s.rerrCh <- fmt.Errorf("wire: stripe chunk of %d bytes exceeds limit", n)
			return
		}
		data := make([]byte, n)
		if _, err := io.ReadFull(r, data); err != nil {
			s.rerrCh <- err
			return
		}
		s.rch <- chunk{seq: seq, data: data}
	}
}

// startReaders lazily launches one reader goroutine per socket the first time
// Read is called, so a write-only user never spawns them.
func (s *Stripe) startReaders() {
	s.readOnce.Do(func() {
		for i := range s.conns {
			go s.readLoop(i)
		}
	})
}

// Read reassembles the striped stream in sequence order.
func (s *Stripe) Read(p []byte) (int, error) {
	s.startReaders()
	for {
		if len(s.rpending) > 0 {
			n := copy(p, s.rpending)
			s.rpending = s.rpending[n:]
			return n, nil
		}
		if data, ok := s.rbuf[s.rnext]; ok {
			delete(s.rbuf, s.rnext)
			s.rnext++
			s.rpending = data
			continue
		}
		// Drain chunks that have already arrived before acting on errors or
		// end-of-stream signals: each lane queues all of its data chunks
		// before it reports EOF, so an end-of-stream marker must never
		// overtake data still sitting in the reassembly channel.
		select {
		case c := <-s.rch:
			s.rbuf[c.seq] = c.data
			continue
		default:
		}
		if s.rerr != nil {
			return 0, s.rerr
		}
		if s.reof >= len(s.conns) {
			return 0, io.EOF
		}
		select {
		case c := <-s.rch:
			s.rbuf[c.seq] = c.data
		case err := <-s.rerrCh:
			if err == io.EOF {
				s.reof++
			} else {
				s.rerr = err
			}
		}
	}
}

// Close flushes the write side, sends end-of-stream markers on every lane and
// closes the underlying connections.
func (s *Stripe) Close() error {
	s.wmu.Lock()
	if s.closed {
		s.wmu.Unlock()
		return nil
	}
	s.closed = true
	for i := range s.wq {
		s.wq[i] <- chunk{seq: s.wseq, eof: true}
		close(s.wq[i])
	}
	s.wmu.Unlock()
	s.wg.Wait()
	var firstErr error
	for _, c := range s.conns {
		if err := c.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if werr := s.writeErr(); werr != nil && firstErr == nil {
		firstErr = werr
	}
	return firstErr
}

// DialStriped opens n parallel TCP connections to addr and returns them as a
// single logical Stripe. The remote end must accept them with a
// StripeListener.
func DialStriped(addr string, n, chunkSize int) (*Stripe, error) {
	if n < 1 {
		n = 1
	}
	group := stripeGroupCounter.Add(1)
	nonce := uint32(time.Now().UnixNano())
	conns := make([]io.ReadWriteCloser, 0, n)
	cleanup := func() {
		for _, c := range conns {
			c.Close()
		}
	}
	for i := 0; i < n; i++ {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			cleanup()
			return nil, fmt.Errorf("wire: dial stripe lane %d: %w", i, err)
		}
		var hello [20]byte
		copy(hello[:8], stripeMagic[:])
		binary.BigEndian.PutUint32(hello[8:], group)
		binary.BigEndian.PutUint32(hello[12:], nonce)
		binary.BigEndian.PutUint16(hello[16:], uint16(i))
		binary.BigEndian.PutUint16(hello[18:], uint16(n))
		// Bound the handshake: a lane whose peer stalls before reading the
		// hello must not pin the dial forever. Cleared once the lane joins
		// the stripe — steady-state deadlines belong to the stripe's owner.
		c.SetDeadline(time.Now().Add(10 * time.Second)) //nolint:errcheck
		if _, err := c.Write(hello[:]); err != nil {
			c.Close()
			cleanup()
			return nil, fmt.Errorf("wire: stripe handshake: %w", err)
		}
		c.SetDeadline(time.Time{}) //nolint:errcheck
		conns = append(conns, c)
	}
	return NewStripe(conns, chunkSize)
}

// StripeListener groups incoming striped connections back into logical
// Stripes. Each call to Accept blocks until every lane of the next stripe
// group has arrived.
type StripeListener struct {
	l         net.Listener
	chunkSize int

	mu      sync.Mutex
	partial map[uint64][]laneConn
	ready   chan []laneConn
	errCh   chan error
	started bool
	closed  bool
}

type laneConn struct {
	index int
	total int
	conn  net.Conn
}

// NewStripeListener wraps a net.Listener. chunkSize <= 0 uses
// DefaultChunkSize.
func NewStripeListener(l net.Listener, chunkSize int) *StripeListener {
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	return &StripeListener{
		l:         l,
		chunkSize: chunkSize,
		partial:   make(map[uint64][]laneConn),
		ready:     make(chan []laneConn, 8),
		errCh:     make(chan error, 1),
	}
}

// Addr returns the listener's address.
func (sl *StripeListener) Addr() net.Addr { return sl.l.Addr() }

// acceptLoop performs handshakes and groups lanes by (group, nonce).
func (sl *StripeListener) acceptLoop() {
	for {
		c, err := sl.l.Accept()
		if err != nil {
			sl.errCh <- err
			return
		}
		go sl.handshake(c)
	}
}

func (sl *StripeListener) handshake(c net.Conn) {
	var hello [20]byte
	c.SetReadDeadline(time.Now().Add(10 * time.Second))
	if _, err := io.ReadFull(c, hello[:]); err != nil {
		c.Close()
		return
	}
	c.SetReadDeadline(time.Time{})
	if string(hello[:8]) != string(stripeMagic[:]) {
		c.Close()
		return
	}
	group := binary.BigEndian.Uint32(hello[8:])
	nonce := binary.BigEndian.Uint32(hello[12:])
	index := int(binary.BigEndian.Uint16(hello[16:]))
	total := int(binary.BigEndian.Uint16(hello[18:]))
	if total < 1 || index < 0 || index >= total {
		c.Close()
		return
	}
	key := uint64(group)<<32 | uint64(nonce)
	sl.mu.Lock()
	sl.partial[key] = append(sl.partial[key], laneConn{index: index, total: total, conn: c})
	lanes := sl.partial[key]
	complete := len(lanes) == total
	if complete {
		delete(sl.partial, key)
	}
	sl.mu.Unlock()
	if complete {
		sort.Slice(lanes, func(i, j int) bool { return lanes[i].index < lanes[j].index })
		sl.ready <- lanes
	}
}

// Accept returns the next fully assembled Stripe.
func (sl *StripeListener) Accept() (*Stripe, error) {
	sl.mu.Lock()
	if !sl.started {
		sl.started = true
		go sl.acceptLoop()
	}
	sl.mu.Unlock()
	select {
	case lanes := <-sl.ready:
		conns := make([]io.ReadWriteCloser, len(lanes))
		for i, lc := range lanes {
			conns[i] = lc.conn
		}
		return NewStripe(conns, sl.chunkSize)
	case err := <-sl.errCh:
		return nil, err
	}
}

// Close stops the listener. Already-accepted stripes stay usable.
func (sl *StripeListener) Close() error {
	sl.mu.Lock()
	if sl.closed {
		sl.mu.Unlock()
		return nil
	}
	sl.closed = true
	for _, lanes := range sl.partial {
		for _, lc := range lanes {
			lc.conn.Close()
		}
	}
	sl.partial = make(map[uint64][]laneConn)
	sl.mu.Unlock()
	return sl.l.Close()
}
