package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
)

// MessageType identifies the kind of payload carried by a frame.
type MessageType byte

// Message types of the back-end / viewer protocol.
const (
	// MsgConfig carries a Config and is the first message on a connection.
	MsgConfig MessageType = 1
	// MsgLight carries a LightPayload (visualization metadata).
	MsgLight MessageType = 2
	// MsgHeavy carries a HeavyPayload (texture, grid geometry, elevation).
	MsgHeavy MessageType = 3
	// MsgAxisHint carries an AxisHint from the viewer back to the back end.
	MsgAxisHint MessageType = 4
	// MsgDone announces the orderly end of a stream (all timesteps sent).
	MsgDone MessageType = 5
)

// String implements fmt.Stringer.
func (t MessageType) String() string {
	switch t {
	case MsgConfig:
		return "CONFIG"
	case MsgLight:
		return "LIGHT"
	case MsgHeavy:
		return "HEAVY"
	case MsgAxisHint:
		return "AXIS_HINT"
	case MsgDone:
		return "DONE"
	default:
		return fmt.Sprintf("MessageType(%d)", byte(t))
	}
}

// frameHeaderSize is the fixed per-frame overhead: type (1), length (4),
// CRC-32 (4).
const frameHeaderSize = 9

// maxFramePayload bounds a single frame to protect against corrupted length
// prefixes; 1 GiB is far above any texture the viewer will ever receive.
const maxFramePayload = 1 << 30

// Message is one decoded protocol frame.
type Message struct {
	Type    MessageType
	Payload []byte
}

// Conn frames messages onto an underlying byte stream. It is the "custom
// TCP-based protocol" of section 3.4 reduced to its essentials: typed,
// length-prefixed, CRC-protected frames. A Conn may wrap a single net.Conn or
// a striped stream (see Stripe).
//
// WriteMessage and ReadMessage are individually safe for concurrent use; a
// single Conn supports one writer goroutine and one reader goroutine
// operating simultaneously.
type Conn struct {
	wmu sync.Mutex
	w   *bufio.Writer
	rmu sync.Mutex
	r   *bufio.Reader

	closer io.Closer

	bytesOut int64
	bytesIn  int64
	msgsOut  int64
	msgsIn   int64
}

// NewConn wraps rw in the Visapult framing protocol. If rw also implements
// io.Closer, Close forwards to it.
func NewConn(rw io.ReadWriter) *Conn {
	c := &Conn{
		w: bufio.NewWriterSize(rw, 64<<10),
		r: bufio.NewReaderSize(rw, 64<<10),
	}
	if cl, ok := rw.(io.Closer); ok {
		c.closer = cl
	}
	return c
}

// WriteMessage frames and sends one message.
func (c *Conn) WriteMessage(t MessageType, payload []byte) error {
	if len(payload) > maxFramePayload {
		return fmt.Errorf("wire: payload of %d bytes exceeds frame limit", len(payload))
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	var hdr [frameHeaderSize]byte
	hdr[0] = byte(t)
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[5:], crc32.ChecksumIEEE(payload))
	if _, err := c.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("wire: write header: %w", err)
	}
	if _, err := c.w.Write(payload); err != nil {
		return fmt.Errorf("wire: write payload: %w", err)
	}
	if err := c.w.Flush(); err != nil {
		return fmt.Errorf("wire: flush: %w", err)
	}
	c.bytesOut += int64(frameHeaderSize + len(payload))
	c.msgsOut++
	return nil
}

// ReadMessage reads the next frame, validating its checksum.
func (c *Conn) ReadMessage() (Message, error) {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(c.r, hdr[:]); err != nil {
		if err == io.EOF {
			return Message{}, io.EOF
		}
		return Message{}, fmt.Errorf("wire: read header: %w", err)
	}
	t := MessageType(hdr[0])
	n := binary.BigEndian.Uint32(hdr[1:])
	want := binary.BigEndian.Uint32(hdr[5:])
	if n > maxFramePayload {
		return Message{}, fmt.Errorf("wire: frame of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(c.r, payload); err != nil {
		return Message{}, fmt.Errorf("wire: read payload: %w", err)
	}
	if crc32.ChecksumIEEE(payload) != want {
		return Message{}, ErrChecksum
	}
	c.bytesIn += int64(frameHeaderSize) + int64(n)
	c.msgsIn++
	return Message{Type: t, Payload: payload}, nil
}

// SendConfig sends a MsgConfig frame.
func (c *Conn) SendConfig(cfg *Config) error {
	b, err := cfg.MarshalBinary()
	if err != nil {
		return err
	}
	return c.WriteMessage(MsgConfig, b)
}

// SendLight sends a MsgLight frame.
func (c *Conn) SendLight(lp *LightPayload) error {
	b, err := lp.MarshalBinary()
	if err != nil {
		return err
	}
	return c.WriteMessage(MsgLight, b)
}

// SendHeavy sends a MsgHeavy frame.
func (c *Conn) SendHeavy(hp *HeavyPayload) error {
	b, err := hp.MarshalBinary()
	if err != nil {
		return err
	}
	return c.WriteMessage(MsgHeavy, b)
}

// SendAxisHint sends a MsgAxisHint frame.
func (c *Conn) SendAxisHint(h *AxisHint) error {
	b, err := h.MarshalBinary()
	if err != nil {
		return err
	}
	return c.WriteMessage(MsgAxisHint, b)
}

// SendDone sends a MsgDone frame announcing the orderly end of the stream.
func (c *Conn) SendDone() error {
	return c.WriteMessage(MsgDone, nil)
}

// Stats describes the traffic a Conn has carried so far.
type Stats struct {
	BytesOut    int64
	BytesIn     int64
	MessagesOut int64
	MessagesIn  int64
}

// Stats returns a snapshot of the connection's traffic counters. It must not
// be called concurrently with WriteMessage or ReadMessage on the same side.
func (c *Conn) Stats() Stats {
	return Stats{BytesOut: c.bytesOut, BytesIn: c.bytesIn, MessagesOut: c.msgsOut, MessagesIn: c.msgsIn}
}

// Close closes the underlying stream if it supports closing.
func (c *Conn) Close() error {
	if c.closer != nil {
		return c.closer.Close()
	}
	return nil
}

// DecodeLight decodes the payload of a MsgLight message.
func DecodeLight(m Message) (*LightPayload, error) {
	if m.Type != MsgLight {
		return nil, fmt.Errorf("wire: expected LIGHT message, got %v", m.Type)
	}
	lp := new(LightPayload)
	if err := lp.UnmarshalBinary(m.Payload); err != nil {
		return nil, err
	}
	return lp, nil
}

// DecodeHeavy decodes the payload of a MsgHeavy message.
func DecodeHeavy(m Message) (*HeavyPayload, error) {
	if m.Type != MsgHeavy {
		return nil, fmt.Errorf("wire: expected HEAVY message, got %v", m.Type)
	}
	hp := new(HeavyPayload)
	if err := hp.UnmarshalBinary(m.Payload); err != nil {
		return nil, err
	}
	return hp, nil
}

// DecodeConfig decodes the payload of a MsgConfig message.
func DecodeConfig(m Message) (*Config, error) {
	if m.Type != MsgConfig {
		return nil, fmt.Errorf("wire: expected CONFIG message, got %v", m.Type)
	}
	cfg := new(Config)
	if err := cfg.UnmarshalBinary(m.Payload); err != nil {
		return nil, err
	}
	return cfg, nil
}

// DecodeAxisHint decodes the payload of a MsgAxisHint message.
func DecodeAxisHint(m Message) (*AxisHint, error) {
	if m.Type != MsgAxisHint {
		return nil, fmt.Errorf("wire: expected AXIS_HINT message, got %v", m.Type)
	}
	h := new(AxisHint)
	if err := h.UnmarshalBinary(m.Payload); err != nil {
		return nil, err
	}
	return h, nil
}
