package wire

import (
	"bytes"
	"io"
	"net"
	"reflect"
	"sync"
	"testing"
	"testing/quick"

	"visapult/internal/amr"
	"visapult/internal/volume"
)

func sampleLight() *LightPayload {
	return &LightPayload{
		Frame: 7, PE: 3, SlabIndex: 3, SlabCount: 8,
		Axis: volume.AxisZ, TexWidth: 640, TexHeight: 256, BytesPerPixel: 4,
		CenterX: 320, CenterY: 128, CenterZ: 112,
		Width: 640, Height: 256, Depth: 32,
		HeavyBytes: 640 * 256 * 4, GridSegments: 12, HasElevation: true,
	}
}

func sampleHeavy(w, h int) *HeavyPayload {
	tex := make([]byte, w*h*4)
	for i := range tex {
		tex[i] = byte(i * 31)
	}
	return &HeavyPayload{
		Frame: 7, PE: 3, TexWidth: w, TexHeight: h,
		Texture: tex,
		Grid: []amr.Segment{
			{A: amr.Point3{X: 0, Y: 0, Z: 0}, B: amr.Point3{X: 1, Y: 2, Z: 3}},
			{A: amr.Point3{X: 4, Y: 5, Z: 6}, B: amr.Point3{X: 7, Y: 8, Z: 9}},
		},
		Elevation: []float32{0.5, 1.5, -2.25, 0},
	}
}

func TestLightPayloadRoundTrip(t *testing.T) {
	lp := sampleLight()
	b, err := lp.MarshalBinary()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if int64(len(b)) != lp.WireSize() {
		t.Fatalf("encoded size %d != WireSize %d", len(b), lp.WireSize())
	}
	var got LightPayload
	if err := got.UnmarshalBinary(b); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(*lp, got) {
		t.Fatalf("round trip mismatch:\n  in  %+v\n  out %+v", *lp, got)
	}
}

func TestLightPayloadIsSmall(t *testing.T) {
	// The paper: visualization metadata "is on the order of 256 bytes."
	lp := sampleLight()
	if lp.WireSize() > 256 {
		t.Fatalf("light payload is %d bytes, want <= 256", lp.WireSize())
	}
}

func TestLightPayloadTruncated(t *testing.T) {
	var lp LightPayload
	if err := lp.UnmarshalBinary(make([]byte, 10)); err == nil {
		t.Fatal("expected error for truncated light payload")
	}
}

func TestHeavyPayloadRoundTrip(t *testing.T) {
	hp := sampleHeavy(16, 8)
	b, err := hp.MarshalBinary()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if int64(len(b)) != hp.WireSize() {
		t.Fatalf("encoded size %d != WireSize %d", len(b), hp.WireSize())
	}
	var got HeavyPayload
	if err := got.UnmarshalBinary(b); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(*hp, got) {
		t.Fatal("heavy payload round trip mismatch")
	}
}

func TestHeavyPayloadNoGridNoElevation(t *testing.T) {
	hp := &HeavyPayload{Frame: 1, PE: 0, TexWidth: 4, TexHeight: 4, Texture: make([]byte, 64)}
	b, err := hp.MarshalBinary()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var got HeavyPayload
	if err := got.UnmarshalBinary(b); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(got.Grid) != 0 || got.Elevation != nil {
		t.Fatalf("expected empty grid and nil elevation, got %d grid, %v elevation", len(got.Grid), got.Elevation)
	}
}

func TestHeavyPayloadBadTextureSize(t *testing.T) {
	hp := &HeavyPayload{TexWidth: 4, TexHeight: 4, Texture: make([]byte, 3)}
	if _, err := hp.MarshalBinary(); err == nil {
		t.Fatal("expected error for texture size mismatch")
	}
}

func TestHeavyPayloadTruncated(t *testing.T) {
	hp := sampleHeavy(8, 8)
	b, _ := hp.MarshalBinary()
	var got HeavyPayload
	if err := got.UnmarshalBinary(b[:len(b)-5]); err == nil {
		t.Fatal("expected error for truncated heavy payload")
	}
	if err := got.UnmarshalBinary(b[:3]); err == nil {
		t.Fatal("expected error for truncated header")
	}
}

func TestConfigRoundTrip(t *testing.T) {
	cfg := &Config{PEs: 8, Timesteps: 265, VolumeNX: 640, VolumeNY: 256, VolumeNZ: 256,
		Axis: volume.AxisY, Dataset: "combustion-640x256x256"}
	b, err := cfg.MarshalBinary()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var got Config
	if err := got.UnmarshalBinary(b); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(*cfg, got) {
		t.Fatalf("config mismatch: %+v vs %+v", *cfg, got)
	}
}

func TestConfigTruncated(t *testing.T) {
	var c Config
	if err := c.UnmarshalBinary(make([]byte, 8)); err == nil {
		t.Fatal("expected error for truncated config")
	}
}

func TestAxisHintRoundTrip(t *testing.T) {
	h := &AxisHint{Frame: 12, Axis: volume.AxisX}
	b, err := h.MarshalBinary()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var got AxisHint
	if err := got.UnmarshalBinary(b); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if got != *h {
		t.Fatalf("axis hint mismatch: %+v vs %+v", *h, got)
	}
	if err := got.UnmarshalBinary(b[:4]); err == nil {
		t.Fatal("expected error for truncated axis hint")
	}
}

// duplexPipe builds an in-memory bidirectional byte stream.
type pipeEnd struct {
	r *io.PipeReader
	w *io.PipeWriter
}

func (p pipeEnd) Read(b []byte) (int, error)  { return p.r.Read(b) }
func (p pipeEnd) Write(b []byte) (int, error) { return p.w.Write(b) }
func (p pipeEnd) Close() error                { p.r.Close(); return p.w.Close() }

func duplexPipe() (pipeEnd, pipeEnd) {
	ar, bw := io.Pipe()
	br, aw := io.Pipe()
	return pipeEnd{r: ar, w: aw}, pipeEnd{r: br, w: bw}
}

func TestConnMessageRoundTrip(t *testing.T) {
	a, b := duplexPipe()
	sender, receiver := NewConn(a), NewConn(b)

	done := make(chan error, 1)
	go func() {
		if err := sender.SendConfig(&Config{PEs: 2, Timesteps: 3, VolumeNX: 8, VolumeNY: 8, VolumeNZ: 8, Dataset: "d"}); err != nil {
			done <- err
			return
		}
		if err := sender.SendLight(sampleLight()); err != nil {
			done <- err
			return
		}
		if err := sender.SendHeavy(sampleHeavy(8, 4)); err != nil {
			done <- err
			return
		}
		done <- sender.SendDone()
	}()

	m, err := receiver.ReadMessage()
	if err != nil || m.Type != MsgConfig {
		t.Fatalf("config: %v %v", m.Type, err)
	}
	if _, err := DecodeConfig(m); err != nil {
		t.Fatalf("decode config: %v", err)
	}
	m, err = receiver.ReadMessage()
	if err != nil || m.Type != MsgLight {
		t.Fatalf("light: %v %v", m.Type, err)
	}
	lp, err := DecodeLight(m)
	if err != nil || lp.Frame != 7 {
		t.Fatalf("decode light: %+v %v", lp, err)
	}
	m, err = receiver.ReadMessage()
	if err != nil || m.Type != MsgHeavy {
		t.Fatalf("heavy: %v %v", m.Type, err)
	}
	hp, err := DecodeHeavy(m)
	if err != nil || hp.TexWidth != 8 || hp.TexHeight != 4 {
		t.Fatalf("decode heavy: %+v %v", hp, err)
	}
	m, err = receiver.ReadMessage()
	if err != nil || m.Type != MsgDone {
		t.Fatalf("done: %v %v", m.Type, err)
	}
	if err := <-done; err != nil {
		t.Fatalf("sender: %v", err)
	}
	st := receiver.Stats()
	if st.MessagesIn != 4 || st.BytesIn == 0 {
		t.Fatalf("unexpected receiver stats %+v", st)
	}
}

func TestConnChecksumDetectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	c := NewConn(struct {
		io.Reader
		io.Writer
	}{&buf, &buf})
	if err := c.SendLight(sampleLight()); err != nil {
		t.Fatalf("send: %v", err)
	}
	// Corrupt one payload byte (past the 9-byte header).
	raw := buf.Bytes()
	raw[frameHeaderSize+2] ^= 0xFF
	c2 := NewConn(struct {
		io.Reader
		io.Writer
	}{bytes.NewReader(raw), io.Discard})
	if _, err := c2.ReadMessage(); err != ErrChecksum {
		t.Fatalf("expected ErrChecksum, got %v", err)
	}
}

func TestConnEOF(t *testing.T) {
	c := NewConn(struct {
		io.Reader
		io.Writer
	}{bytes.NewReader(nil), io.Discard})
	if _, err := c.ReadMessage(); err != io.EOF {
		t.Fatalf("expected io.EOF, got %v", err)
	}
}

func TestDecodeWrongType(t *testing.T) {
	m := Message{Type: MsgLight}
	if _, err := DecodeHeavy(m); err == nil {
		t.Fatal("DecodeHeavy should reject LIGHT message")
	}
	if _, err := DecodeConfig(m); err == nil {
		t.Fatal("DecodeConfig should reject LIGHT message")
	}
	if _, err := DecodeAxisHint(m); err == nil {
		t.Fatal("DecodeAxisHint should reject LIGHT message")
	}
	m.Type = MsgHeavy
	if _, err := DecodeLight(m); err == nil {
		t.Fatal("DecodeLight should reject HEAVY message")
	}
}

func TestMessageTypeString(t *testing.T) {
	cases := map[MessageType]string{
		MsgConfig: "CONFIG", MsgLight: "LIGHT", MsgHeavy: "HEAVY",
		MsgAxisHint: "AXIS_HINT", MsgDone: "DONE", MessageType(99): "MessageType(99)",
	}
	for mt, want := range cases {
		if got := mt.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", mt, got, want)
		}
	}
}

func TestStripedStreamOverTCP(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	sl := NewStripeListener(l, 1024)
	defer sl.Close()

	const lanes = 4
	payload := make([]byte, 1<<20)
	for i := range payload {
		payload[i] = byte(i * 7)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	var recvErr error
	var received []byte
	go func() {
		defer wg.Done()
		s, err := sl.Accept()
		if err != nil {
			recvErr = err
			return
		}
		defer s.Close()
		received, recvErr = io.ReadAll(s)
	}()

	s, err := DialStriped(l.Addr().String(), lanes, 1024)
	if err != nil {
		t.Fatalf("dial striped: %v", err)
	}
	if s.Lanes() != lanes {
		t.Fatalf("lanes = %d, want %d", s.Lanes(), lanes)
	}
	if _, err := s.Write(payload); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	wg.Wait()
	if recvErr != nil {
		t.Fatalf("receive: %v", recvErr)
	}
	if !bytes.Equal(received, payload) {
		t.Fatalf("striped stream corrupted: got %d bytes, want %d", len(received), len(payload))
	}
}

func TestStripedConnCarriesProtocol(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	sl := NewStripeListener(l, 4096)
	defer sl.Close()

	type result struct {
		hp  *HeavyPayload
		err error
	}
	resCh := make(chan result, 1)
	go func() {
		s, err := sl.Accept()
		if err != nil {
			resCh <- result{err: err}
			return
		}
		conn := NewConn(s)
		m, err := conn.ReadMessage()
		if err != nil {
			resCh <- result{err: err}
			return
		}
		hp, err := DecodeHeavy(m)
		resCh <- result{hp: hp, err: err}
	}()

	s, err := DialStriped(l.Addr().String(), 3, 4096)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	conn := NewConn(s)
	want := sampleHeavy(64, 32)
	if err := conn.SendHeavy(want); err != nil {
		t.Fatalf("send heavy: %v", err)
	}
	r := <-resCh
	if r.err != nil {
		t.Fatalf("receive: %v", r.err)
	}
	if !bytes.Equal(r.hp.Texture, want.Texture) {
		t.Fatal("texture corrupted across striped connection")
	}
	conn.Close()
}

func TestStripeSingleLane(t *testing.T) {
	a, b := duplexPipe()
	s, err := NewStripe([]io.ReadWriteCloser{a}, 16)
	if err != nil {
		t.Fatalf("new stripe: %v", err)
	}
	r, err := NewStripe([]io.ReadWriteCloser{b}, 16)
	if err != nil {
		t.Fatalf("new stripe: %v", err)
	}
	msg := []byte("hello across a single-lane stripe, longer than one chunk")
	go func() {
		s.Write(msg)
		s.Close()
	}()
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(r, got); err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("got %q want %q", got, msg)
	}
}

func TestStripeRequiresConnections(t *testing.T) {
	if _, err := NewStripe(nil, 0); err == nil {
		t.Fatal("expected error for empty connection list")
	}
}

func TestStripeWriteAfterClose(t *testing.T) {
	a, b := duplexPipe()
	// Drain the peer side so Close's end-of-stream marker does not block on
	// the unbuffered in-memory pipe (a real TCP socket would buffer it).
	go io.Copy(io.Discard, b.r) //nolint:errcheck // drained until pipe closes
	s, err := NewStripe([]io.ReadWriteCloser{a}, 16)
	if err != nil {
		t.Fatalf("new stripe: %v", err)
	}
	s.Close()
	if _, err := s.Write([]byte("x")); err == nil {
		t.Fatal("expected error writing to closed stripe")
	}
	// Double close is a no-op.
	if err := s.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

func TestLightPayloadRoundTripProperty(t *testing.T) {
	f := func(frame, pe uint8, slab uint8, w, h uint16, cx, cy, cz float64, heavy uint32, elev bool) bool {
		in := LightPayload{
			Frame: int(frame), PE: int(pe), SlabIndex: int(slab), SlabCount: int(slab) + 1,
			Axis: volume.Axis(int(pe) % 3), TexWidth: int(w), TexHeight: int(h), BytesPerPixel: 4,
			CenterX: cx, CenterY: cy, CenterZ: cz, Width: 1, Height: 2, Depth: 3,
			HeavyBytes: int64(heavy), GridSegments: int(slab), HasElevation: elev,
		}
		b, err := in.MarshalBinary()
		if err != nil {
			return false
		}
		var out LightPayload
		if err := out.UnmarshalBinary(b); err != nil {
			return false
		}
		return reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStripeReassemblyProperty(t *testing.T) {
	// For any payload and lane count, a stripe round trip through in-memory
	// pipes reproduces the payload exactly.
	f := func(data []byte, lanesRaw uint8, chunkRaw uint8) bool {
		lanes := int(lanesRaw)%4 + 1
		chunk := int(chunkRaw)%128 + 1
		aEnds := make([]io.ReadWriteCloser, lanes)
		bEnds := make([]io.ReadWriteCloser, lanes)
		for i := 0; i < lanes; i++ {
			a, b := duplexPipe()
			aEnds[i], bEnds[i] = a, b
		}
		ws, err := NewStripe(aEnds, chunk)
		if err != nil {
			return false
		}
		rs, err := NewStripe(bEnds, chunk)
		if err != nil {
			return false
		}
		go func() {
			ws.Write(data)
			ws.Close()
		}()
		got, err := io.ReadAll(rs)
		if err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
